// Package prefdb is a preference-aware relational database engine in pure
// Go, reproducing "Towards Preference-aware Relational Databases"
// (Arvanitis & Koutrika, ICDE 2012).
//
// prefdb extends a small relational engine with the paper's preference
// framework: tuples carry score-confidence pairs (p-relations), queries
// embed preference triples (condition, scoring function, confidence)
// through a PREFERRING clause, and a prefer operator λ evaluates them
// inside the query plan. Preference evaluation is separate from tuple
// filtering (top-k, confidence thresholds, skylines, ranking), and queries
// can be executed with the paper's strategies — Bottom-Up, Group Bottom-Up
// and Filter-then-Prefer — or with plug-in baselines for comparison.
//
// Quick start:
//
//	db := prefdb.Open()
//	db.Exec(`CREATE TABLE movies (m_id INT, title TEXT, year INT, PRIMARY KEY (m_id))`)
//	db.Exec(`INSERT INTO movies VALUES (1, 'Gran Torino', 2008)`)
//	res, err := db.Exec(`
//	    SELECT title FROM movies
//	    PREFERRING year >= 2000 SCORE recency(year, 2011) CONF 0.9 ON movies
//	    TOP 10 BY score`)
//
// See the examples directory for complete programs and EXPERIMENTS.md for
// the reproduction of the paper's evaluation.
package prefdb

import (
	"io"

	"prefdb/internal/catalog"
	"prefdb/internal/datagen"
	"prefdb/internal/engine"
	"prefdb/internal/exec"
	"prefdb/internal/parser"
	"prefdb/internal/pref"
	"prefdb/internal/prel"
	"prefdb/internal/profile"
	"prefdb/internal/qualitative"
	"prefdb/internal/types"
)

// DB is a prefdb database instance; create one with Open.
type DB = engine.DB

// Result is the answer to a statement: a p-relation plus execution stats.
type Result = engine.Result

// Mode selects the query evaluation strategy.
type Mode = engine.Mode

// Evaluation strategies (§VI-B of the paper) and plug-in baselines.
const (
	// ModeGBU is Group Bottom-Up, the paper's best strategy (default).
	ModeGBU = engine.ModeGBU
	// ModeBU is the operator-at-a-time Bottom-Up strategy.
	ModeBU = engine.ModeBU
	// ModeFtP is Filter-then-Prefer.
	ModeFtP = engine.ModeFtP
	// ModeNative runs the extended plan as one pipeline.
	ModeNative = engine.ModeNative
	// ModePluginNaive issues one conventional query per preference.
	ModePluginNaive = engine.ModePluginNaive
	// ModePluginMerged issues a single disjunctive conventional query.
	ModePluginMerged = engine.ModePluginMerged
)

// PRelation is a materialized preference-aware relation.
type PRelation = prel.PRelation

// Row is one tuple with its score-confidence pair.
type Row = prel.Row

// SC is a score-confidence pair ⟨S, C⟩; the zero value is ⟨⊥, 0⟩.
type SC = types.SC

// Value is a relational scalar (NULL, INT, FLOAT, TEXT or BOOL).
type Value = types.Value

// Stats counts execution cost drivers (materialized tuples, native calls,
// index probes, prefer evaluations).
type Stats = exec.Stats

// DatagenConfig parameterizes the synthetic dataset generators.
type DatagenConfig = datagen.Config

// Open creates an empty in-memory database with the GBU strategy and the
// preference-aware optimizer enabled.
func Open() *DB { return engine.Open() }

// ParseMode resolves an evaluation mode by name ("gbu", "ftp",
// "plugin-naive", ...).
func ParseMode(name string) (Mode, error) { return engine.ParseMode(name) }

// Modes lists every evaluation mode.
func Modes() []Mode { return engine.Modes() }

// LoadIMDB populates db with the synthetic movie dataset (schema of the
// paper's Fig. 1) and returns per-table sizes.
func LoadIMDB(db *DB, cfg DatagenConfig) (map[string]int, error) {
	return loadInto(db.Catalog(), cfg, datagen.LoadIMDB)
}

// LoadDBLP populates db with the synthetic bibliography dataset (schema of
// the paper's Fig. 8) and returns per-table sizes.
func LoadDBLP(db *DB, cfg DatagenConfig) (map[string]int, error) {
	return loadInto(db.Catalog(), cfg, datagen.LoadDBLP)
}

func loadInto(cat *catalog.Catalog, cfg datagen.Config, load func(*catalog.Catalog, datagen.Config) (datagen.Sizes, error)) (map[string]int, error) {
	sizes, err := load(cat, cfg)
	if err != nil {
		return nil, err
	}
	return map[string]int(sizes), nil
}

// Int, Float, Str and Bool build values for programmatic row handling.
func Int(v int64) Value     { return types.Int(v) }
func Float(v float64) Value { return types.Float(v) }
func Str(v string) Value    { return types.Str(v) }
func Bool(v bool) Value     { return types.Bool(v) }

// Null returns the NULL value.
func Null() Value { return types.Null() }

// Preference is a preference triple (σ_φ, S, C): conditional part, scoring
// part and confidence (Definition 1 of the paper).
type Preference = pref.Preference

// ProfileStore is a per-user preference repository; applications register
// collected preferences and QueryForUser integrates the applicable ones
// automatically.
type ProfileStore = profile.Store

// NewProfileStore returns an empty preference repository.
func NewProfileStore() *ProfileStore { return profile.NewStore() }

// ParsePreference parses a preference in the PREFERRING clause syntax,
// e.g. "genre = 'Comedy' SCORE 1 CONF 0.8 ON genres AS comedies".
func ParsePreference(clause string) (Preference, error) {
	pc, err := parser.ParsePreference(clause)
	if err != nil {
		return Preference{}, err
	}
	p := Preference{Name: pc.Name, On: pc.On, Cond: pc.Cond, Score: pc.Score, Conf: pc.Conf}
	if err := p.Validate(); err != nil {
		return Preference{}, err
	}
	return p, nil
}

// Save serializes db (schemas, keys, indexes, rows) to w; restore with
// Load.
func Save(db *DB, w io.Writer) error { return db.Save(w) }

// Load restores a database previously written by Save.
func Load(r io.Reader) (*DB, error) { return engine.Load(r) }

// QualitativeOrder builds qualitative preference relations ("Comedy is
// preferred over Drama") and compiles them into the quantitative triples
// of the paper's model — scores decrease with depth in the partial order.
type QualitativeOrder = qualitative.Order

// NewQualitativeOrder starts an empty qualitative preference relation over
// one attribute of one relation; add statements with Prefer/Chain and turn
// it into preferences with Compile.
func NewQualitativeOrder(relation, attr string) *QualitativeOrder {
	return qualitative.NewOrder(relation, attr)
}
