// Package prefdb is a preference-aware relational database engine in pure
// Go, reproducing "Towards Preference-aware Relational Databases"
// (Arvanitis & Koutrika, ICDE 2012).
//
// prefdb extends a small relational engine with the paper's preference
// framework: tuples carry score-confidence pairs (p-relations), queries
// embed preference triples (condition, scoring function, confidence)
// through a PREFERRING clause, and a prefer operator λ evaluates them
// inside the query plan. Preference evaluation is separate from tuple
// filtering (top-k, confidence thresholds, skylines, ranking), and queries
// can be executed with the paper's strategies — Bottom-Up, Group Bottom-Up
// and Filter-then-Prefer — or with plug-in baselines for comparison.
//
// Quick start:
//
//	db := prefdb.Open()
//	db.ExecContext(ctx, `CREATE TABLE movies (m_id INT, title TEXT, year INT, PRIMARY KEY (m_id))`)
//	db.ExecContext(ctx, `INSERT INTO movies VALUES (1, 'Gran Torino', 2008)`)
//	res, err := db.QueryContext(ctx, `
//	    SELECT title FROM movies
//	    PREFERRING year >= 2000 SCORE recency(year, 2011) CONF 0.9 ON movies
//	    TOP 10 BY score`,
//	    prefdb.WithTimeout(time.Second), prefdb.WithMaxRows(100_000))
//
// Queries run under a context.Context with optional per-query budgets
// (wall-clock, materialized rows/cells, estimated memory); lifecycle
// failures match ErrCanceled, ErrDeadlineExceeded and ErrResourceExhausted
// via errors.Is and carry the execution Stats at failure.
//
// # Sessions
//
// Multi-user applications work through sessions: NewSession derives a
// handle carrying per-session defaults (evaluation mode, workers, budgets,
// a bound user profile), and any number of sessions share one DB. Options
// resolve through the precedence chain
//
//	Open defaults < session defaults < per-query options
//
// The same Session interface is served remotely: run cmd/prefdbserver and
// connect with Dial — embedded and networked callers are interchangeable.
// StreamContext returns results row-by-row so large result sets never
// materialize in the serving layer:
//
//	sess := prefdb.NewSession(db, prefdb.WithWorkers(2))
//	rows, err := sess.StreamContext(ctx, sql)
//	...
//	defer rows.Close()
//	for rows.Next() {
//	    use(rows.Row()) // valid only until the next Next
//	}
//	err = rows.Err()
//
// See the examples directory for complete programs and EXPERIMENTS.md for
// the reproduction of the paper's evaluation.
package prefdb

import (
	"context"
	"io"
	"time"

	"prefdb/internal/catalog"
	"prefdb/internal/datagen"
	"prefdb/internal/engine"
	"prefdb/internal/exec"
	"prefdb/internal/parser"
	"prefdb/internal/pref"
	"prefdb/internal/prel"
	"prefdb/internal/profile"
	"prefdb/internal/qualitative"
	"prefdb/internal/types"
	"prefdb/internal/wire"
)

// DB is a prefdb database instance; create one with Open.
type DB = engine.DB

// Result is the answer to a statement: a p-relation plus execution stats.
type Result = engine.Result

// Mode selects the query evaluation strategy.
type Mode = engine.Mode

// Evaluation strategies (§VI-B of the paper) and plug-in baselines.
const (
	// ModeGBU is Group Bottom-Up, the paper's best strategy (default).
	ModeGBU = engine.ModeGBU
	// ModeBU is the operator-at-a-time Bottom-Up strategy.
	ModeBU = engine.ModeBU
	// ModeFtP is Filter-then-Prefer.
	ModeFtP = engine.ModeFtP
	// ModeNative runs the extended plan as one pipeline.
	ModeNative = engine.ModeNative
	// ModePluginNaive issues one conventional query per preference.
	ModePluginNaive = engine.ModePluginNaive
	// ModePluginMerged issues a single disjunctive conventional query.
	ModePluginMerged = engine.ModePluginMerged
)

// PRelation is a materialized preference-aware relation.
type PRelation = prel.PRelation

// Row is one tuple with its score-confidence pair.
type Row = prel.Row

// SC is a score-confidence pair ⟨S, C⟩; the zero value is ⟨⊥, 0⟩.
type SC = types.SC

// Value is a relational scalar (NULL, INT, FLOAT, TEXT or BOOL).
type Value = types.Value

// Stats counts execution cost drivers (materialized tuples, native calls,
// index probes, prefer evaluations).
type Stats = exec.Stats

// DatagenConfig parameterizes the synthetic dataset generators.
type DatagenConfig = datagen.Config

// Open creates an empty in-memory database with the GBU strategy and the
// preference-aware optimizer enabled; options override the defaults.
func Open(opts ...OpenOption) *DB { return engine.Open(opts...) }

// --- sessions ---

// Rows is a streaming statement result: rows arrive one at a time, so
// large result sets never materialize in the serving layer. Returned by
// Session.StreamContext and Stmt.StreamContext on both the embedded and
// the network paths.
type Rows = engine.Rows

// Session is a per-user (or per-connection) query handle carrying default
// options; both the embedded engine (NewSession) and the network client
// (Dial) implement it, so application code is agnostic to where the
// database runs. Sessions are safe for concurrent use.
type Session interface {
	// ExecContext executes any statement (DDL, DML or query).
	ExecContext(ctx context.Context, sql string, opts ...QueryOption) (*Result, error)
	// QueryContext executes a preferential query, materializing the result.
	QueryContext(ctx context.Context, sql string, opts ...QueryOption) (*Result, error)
	// StreamContext executes any statement, streaming result rows.
	StreamContext(ctx context.Context, sql string, opts ...QueryOption) (Rows, error)
	// Prepare compiles a query for repeated execution under the session
	// defaults.
	Prepare(sql string) (Stmt, error)
	// Close releases the session; running statements are not interrupted
	// (cancel their contexts for that).
	Close() error
}

// Stmt is a prepared statement usable for repeated execution; per-run
// options override the owning session's defaults.
type Stmt interface {
	// RunContext executes the statement, materializing the result.
	RunContext(ctx context.Context, opts ...QueryOption) (*Result, error)
	// StreamContext executes the statement, streaming result rows.
	StreamContext(ctx context.Context, opts ...QueryOption) (Rows, error)
	// Close releases the statement (server-side state for remote sessions).
	Close() error
}

// ErrSessionClosed reports use of a closed session.
var ErrSessionClosed = engine.ErrSessionClosed

// NewSession derives an embedded session on db whose defaults layer over
// the Open defaults; per-query options override both:
//
//	Open defaults < session defaults < per-query options
func NewSession(db *DB, defaults ...QueryOption) Session {
	return localSession{db.NewSession(defaults...)}
}

// localSession adapts *engine.Session to the Session interface (Go has no
// covariant returns, so Prepare needs a shim from *Prepared to Stmt).
type localSession struct {
	*engine.Session
}

func (s localSession) Prepare(sql string) (Stmt, error) {
	p, err := s.Session.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// DialOption configures a network session (Dial).
type DialOption = wire.DialOption

// WithToken authenticates the connection against a server started with an
// auth token.
func WithToken(token string) DialOption { return wire.WithToken(token) }

// WithSessionDefaults sets the remote session's default options — the
// session layer of the precedence chain, exactly as NewSession's
// arguments are for an embedded session.
func WithSessionDefaults(opts ...QueryOption) DialOption {
	return wire.WithSessionDefaults(opts...)
}

// Dial connects to a prefdb server (cmd/prefdbserver) and returns a
// network-backed Session: the same interface NewSession returns embedded,
// with identical results, options, precedence and error structure
// (lifecycle failures still match ErrCanceled etc. and carry their
// GuardError). WithProfile is the one embedded-only option — profiles
// live with the application, not the server.
//
// One statement is in flight per connection at a time; concurrent calls
// serialize. Open one connection per concurrent statement (the server
// multiplexes sessions cheaply). Canceling a statement's context cancels
// it server-side mid-query.
func Dial(addr string, opts ...DialOption) (Session, error) {
	c, err := wire.Dial(addr, opts...)
	if err != nil {
		return nil, err
	}
	return remoteSession{c}, nil
}

// remoteSession adapts *wire.Client to the Session interface.
type remoteSession struct {
	*wire.Client
}

func (s remoteSession) Prepare(sql string) (Stmt, error) {
	p, err := s.Client.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// --- query lifecycle: options and sentinel errors ---

// QueryOption configures a single query execution on the context-aware
// entry points (DB.ExecContext, DB.QueryContext, Prepared.RunContext).
type QueryOption = engine.QueryOption

// OpenOption configures a database at Open or Load time, replacing direct
// struct-field pokes on DB.
type OpenOption = engine.OpenOption

// WithMode selects the evaluation strategy for one query, overriding the
// database default.
func WithMode(m Mode) QueryOption { return engine.WithMode(m) }

// WithTimeout bounds one query's wall-clock time; expiry fails the query
// with ErrDeadlineExceeded.
func WithTimeout(d time.Duration) QueryOption { return engine.WithTimeout(d) }

// WithWorkers sets the executor pool width for one query (0 = GOMAXPROCS,
// 1 = sequential).
func WithWorkers(n int) QueryOption { return engine.WithWorkers(n) }

// WithMaxRows caps the tuples one query may materialize (intermediate
// relations included); exceeding it fails with ErrResourceExhausted.
func WithMaxRows(n int) QueryOption { return engine.WithMaxRows(n) }

// WithMaxCells caps the attribute values (rows × width) one query may
// materialize; exceeding it fails with ErrResourceExhausted.
func WithMaxCells(n int) QueryOption { return engine.WithMaxCells(n) }

// WithMemoryBudget caps one query's estimated materialized bytes;
// exceeding it fails with ErrResourceExhausted.
func WithMemoryBudget(bytes int64) QueryOption { return engine.WithMemoryBudget(bytes) }

// WithProfile integrates the user's applicable profile preferences into
// the query. As a session default it makes the session the paper's
// per-user interface: every query runs under that user's profile.
// Embedded-only: remote sessions reject it, since profiles live with the
// application, not the server.
func WithProfile(store *ProfileStore, user string, contexts ...string) QueryOption {
	return engine.WithProfile(store, user, contexts...)
}

// CacheMode selects whether prefer operators memoize per-key score
// contributions (the preference score cache).
type CacheMode = engine.CacheMode

// Score-cache modes.
const (
	// CacheAuto follows the optimizer's per-operator hints (default).
	CacheAuto = engine.CacheAuto
	// CacheOff disables score memoization.
	CacheOff = engine.CacheOff
	// CacheOn forces score memoization on every prefer operator.
	CacheOn = engine.CacheOn
)

// ParseCacheMode resolves a score-cache mode by name ("auto", "off", "on").
func ParseCacheMode(name string) (CacheMode, error) { return engine.ParseCacheMode(name) }

// CacheModes lists every score-cache mode.
func CacheModes() []CacheMode { return engine.CacheModes() }

// WithScoreCache selects the preference score-cache mode for one query,
// overriding the database default.
func WithScoreCache(m CacheMode) QueryOption { return engine.WithScoreCache(m) }

// BatchMode selects the executor's evaluation style: vectorized over row
// batches with selection vectors, or row-at-a-time.
type BatchMode = engine.BatchMode

// Batch modes.
const (
	// BatchOn evaluates supported operators vectorized (default).
	BatchOn = engine.BatchOn
	// BatchOff forces the row-at-a-time path.
	BatchOff = engine.BatchOff
)

// ParseBatchMode resolves a batch mode by name ("on", "off").
func ParseBatchMode(name string) (BatchMode, error) { return engine.ParseBatchMode(name) }

// BatchModes lists every batch mode.
func BatchModes() []BatchMode { return engine.BatchModes() }

// WithBatch selects the execution style for one query, overriding the
// database default. Results, order and stats (modulo the diagnostic batch
// counter) are identical in both modes.
func WithBatch(m BatchMode) QueryOption { return engine.WithBatch(m) }

// WithBatchSize overrides the vectorized path's rows-per-batch block size
// for one query (0 = the executor default).
func WithBatchSize(n int) QueryOption { return engine.WithBatchSize(n) }

// ColstoreMode selects the storage side batch scans read: the columnar
// segment store with zone-map pruning, or the row heap.
type ColstoreMode = engine.ColstoreMode

// Colstore modes.
const (
	// ColstoreOff keeps batch scans on the row heap (default).
	ColstoreOff = engine.ColstoreOff
	// ColstoreOn serves sealed pages from the columnar segment store,
	// skipping segments whose zone maps disprove the filter.
	ColstoreOn = engine.ColstoreOn
	// ColstoreRows serves sealed pages from the columnar segment store
	// but packs row views up front instead of handing kernels direct
	// column vectors (the pre-direct baseline).
	ColstoreRows = engine.ColstoreRows
)

// ParseColstoreMode resolves a colstore mode by name ("on", "rows", "off").
func ParseColstoreMode(name string) (ColstoreMode, error) { return engine.ParseColstoreMode(name) }

// ColstoreModes lists every colstore mode.
func ColstoreModes() []ColstoreMode { return engine.ColstoreModes() }

// WithColstore selects the batch-scan storage side for one query,
// overriding the database default. Results, order and stats (modulo the
// diagnostic segment counters) are identical in both modes.
func WithColstore(m ColstoreMode) QueryOption { return engine.WithColstore(m) }

// WithDefaultMode sets the database's default evaluation strategy.
func WithDefaultMode(m Mode) OpenOption { return engine.WithDefaultMode(m) }

// WithDefaultWorkers sets the database's default executor pool width.
func WithDefaultWorkers(n int) OpenOption { return engine.WithDefaultWorkers(n) }

// WithOptimizer toggles the preference-aware query optimizer (on by
// default).
func WithOptimizer(enabled bool) OpenOption { return engine.WithOptimizer(enabled) }

// WithDefaultScoreCache sets the database's default score-cache mode.
func WithDefaultScoreCache(m CacheMode) OpenOption { return engine.WithDefaultScoreCache(m) }

// WithDefaultBatch sets the database's default execution style.
func WithDefaultBatch(m BatchMode) OpenOption { return engine.WithDefaultBatch(m) }

// WithDefaultColstore sets the database's default batch-scan storage side.
func WithDefaultColstore(m ColstoreMode) OpenOption { return engine.WithDefaultColstore(m) }

// Sentinel errors returned (wrapped in a *GuardError) when a query's
// lifecycle guard trips; match them with errors.Is. Context-caused
// failures also match context.Canceled / context.DeadlineExceeded.
var (
	// ErrCanceled reports that the query's context was canceled.
	ErrCanceled = exec.ErrCanceled
	// ErrDeadlineExceeded reports that the query's deadline passed.
	ErrDeadlineExceeded = exec.ErrDeadlineExceeded
	// ErrResourceExhausted reports that a per-query budget (rows, cells,
	// memory) was exceeded.
	ErrResourceExhausted = exec.ErrResourceExhausted
)

// GuardError is the structured lifecycle failure: the tripped limit, the
// budget and observed value, and the execution Stats at failure. Retrieve
// it with errors.As.
type GuardError = exec.GuardError

// ParseMode resolves an evaluation mode by name ("gbu", "ftp",
// "plugin-naive", ...).
func ParseMode(name string) (Mode, error) { return engine.ParseMode(name) }

// Modes lists every evaluation mode.
func Modes() []Mode { return engine.Modes() }

// LoadIMDB populates db with the synthetic movie dataset (schema of the
// paper's Fig. 1) and returns per-table sizes.
func LoadIMDB(db *DB, cfg DatagenConfig) (map[string]int, error) {
	return loadInto(db.Catalog(), cfg, datagen.LoadIMDB)
}

// LoadDBLP populates db with the synthetic bibliography dataset (schema of
// the paper's Fig. 8) and returns per-table sizes.
func LoadDBLP(db *DB, cfg DatagenConfig) (map[string]int, error) {
	return loadInto(db.Catalog(), cfg, datagen.LoadDBLP)
}

func loadInto(cat *catalog.Catalog, cfg datagen.Config, load func(*catalog.Catalog, datagen.Config) (datagen.Sizes, error)) (map[string]int, error) {
	sizes, err := load(cat, cfg)
	if err != nil {
		return nil, err
	}
	return map[string]int(sizes), nil
}

// Int, Float, Str and Bool build values for programmatic row handling.
func Int(v int64) Value     { return types.Int(v) }
func Float(v float64) Value { return types.Float(v) }
func Str(v string) Value    { return types.Str(v) }
func Bool(v bool) Value     { return types.Bool(v) }

// Null returns the NULL value.
func Null() Value { return types.Null() }

// Preference is a preference triple (σ_φ, S, C): conditional part, scoring
// part and confidence (Definition 1 of the paper).
type Preference = pref.Preference

// ProfileStore is a per-user preference repository; applications register
// collected preferences and QueryForUser integrates the applicable ones
// automatically.
type ProfileStore = profile.Store

// NewProfileStore returns an empty preference repository.
func NewProfileStore() *ProfileStore { return profile.NewStore() }

// ParsePreference parses a preference in the PREFERRING clause syntax,
// e.g. "genre = 'Comedy' SCORE 1 CONF 0.8 ON genres AS comedies".
func ParsePreference(clause string) (Preference, error) {
	pc, err := parser.ParsePreference(clause)
	if err != nil {
		return Preference{}, err
	}
	p := Preference{Name: pc.Name, On: pc.On, Cond: pc.Cond, Score: pc.Score, Conf: pc.Conf}
	if err := p.Validate(); err != nil {
		return Preference{}, err
	}
	return p, nil
}

// Save serializes db (schemas, keys, indexes, rows) to w; restore with
// Load.
func Save(db *DB, w io.Writer) error { return db.Save(w) }

// Load restores a database previously written by Save; options apply as
// in Open.
func Load(r io.Reader, opts ...OpenOption) (*DB, error) { return engine.Load(r, opts...) }

// QualitativeOrder builds qualitative preference relations ("Comedy is
// preferred over Drama") and compiles them into the quantitative triples
// of the paper's model — scores decrease with depth in the partial order.
type QualitativeOrder = qualitative.Order

// NewQualitativeOrder starts an empty qualitative preference relation over
// one attribute of one relation; add statements with Prefer/Chain and turn
// it into preferences with Compile.
func NewQualitativeOrder(relation, attr string) *QualitativeOrder {
	return qualitative.NewOrder(relation, attr)
}
