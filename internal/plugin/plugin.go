// Package plugin implements the pure plug-in approach to preferential
// query processing that the paper uses as its baseline (§II, §VII): the
// preferences are integrated as standard query conditions producing a set
// of new conventional queries (Rewrite), the queries are executed over the
// database engine (Materialize), and the partial results are combined into
// a single answer in the middleware (Aggregate).
//
// Two variants are provided:
//
//   - Naive issues one conventional query per preference — the direct
//     translation, whose cost grows linearly with the number of
//     preferences;
//   - Merged applies the classic coarse-grained plug-in optimization of
//     reducing the number of queries sent to the DBMS: a single query with
//     the disjunction of all preference conditions, with per-preference
//     scoring done in the middleware.
package plugin

import (
	"fmt"

	"prefdb/internal/algebra"
	"prefdb/internal/exec"
	"prefdb/internal/expr"
	"prefdb/internal/pref"
	"prefdb/internal/prel"
	"prefdb/internal/types"
)

// Runner executes preferential plans with the plug-in strategy.
type Runner struct {
	// Exec provides the conventional database engine the plug-in sits on
	// top of. The runner only sends it prefer-free plans.
	Exec *exec.Executor
	// Merged selects the single-disjunctive-query variant.
	Merged bool
}

// Name identifies the variant in reports.
func (r *Runner) Name() string {
	if r.Merged {
		return "plugin-merged"
	}
	return "plugin-naive"
}

// Run evaluates an extended query plan: the preference and filtering
// operators are peeled off, the remaining conventional query part is
// executed through the engine (rewritten per variant), and scores are
// aggregated in the middleware before filtering.
func (r *Runner) Run(plan algebra.Node) (*prel.PRelation, error) {
	// Peel filtering operators (applied last, in the middleware).
	var filters []algebra.Node
	core := plan
	for {
		switch core.(type) {
		case *algebra.TopK, *algebra.Threshold, *algebra.Skyline,
			*algebra.Rank, *algebra.OrderBy, *algebra.Limit:
			filters = append(filters, core)
			core = core.Children()[0]
			continue
		}
		break
	}

	// Collect preferences and strip them from the conventional part.
	var prefs []pref.Preference
	algebra.Walk(core, func(n algebra.Node) bool {
		if p, ok := n.(*algebra.Prefer); ok {
			prefs = append(prefs, p.P)
		}
		return true
	})
	qnp := algebra.Transform(core, func(n algebra.Node) algebra.Node {
		if p, ok := n.(*algebra.Prefer); ok {
			return p.Input
		}
		return n
	})

	// Materialize the full conventional answer (preference evaluation never
	// disqualifies tuples, so the complete result set is always needed).
	all, err := r.Exec.Materialize(qnp)
	if err != nil {
		return nil, err
	}

	scores := prel.NewScoreRelation()
	if r.Merged {
		err = r.runMerged(qnp, prefs, scores)
	} else {
		err = r.runNaive(qnp, prefs, scores)
	}
	if err != nil {
		return nil, err
	}

	// Attach aggregated pairs to the full answer.
	out := prel.New(all.Schema)
	for _, row := range all.Rows {
		row.SC = scores.Get(row.Tuple)
		out.Append(row)
	}

	// Apply filtering in the middleware.
	cur := out
	for i := len(filters) - 1; i >= 0; i-- {
		node := filters[i].WithChildren([]algebra.Node{&algebra.Values{Rel: cur, Label: "plugin"}})
		cur, err = r.Exec.Evaluate(node)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// runNaive issues one rewritten query per preference: Q_i adds the
// preference's conditional part as a standard selection over the
// conventional query, then scores the returned tuples.
func (r *Runner) runNaive(qnp algebra.Node, prefs []pref.Preference, scores *prel.ScoreRelation) error {
	for _, p := range prefs {
		q := &algebra.Select{Cond: p.Cond, Input: qnp}
		partial, err := r.Exec.Materialize(q)
		if err != nil {
			return fmt.Errorf("plugin: rewritten query for %s: %w", p.Label(), err)
		}
		scoreFn, err := expr.Compile(p.Score, partial.Schema, r.Exec.Funcs)
		if err != nil {
			return fmt.Errorf("plugin: scoring %s: %w", p.Label(), err)
		}
		seen := map[string]bool{}
		for _, row := range partial.Rows {
			key := prel.Fingerprint(row.Tuple)
			if seen[key] {
				continue // a preference scores each distinct tuple once
			}
			seen[key] = true
			if v := scoreFn.Eval(row.Tuple); !v.IsNull() && v.IsNumeric() {
				scores.Combine(row.Tuple, types.NewSC(pref.Clamp01(v.AsFloat()), p.Conf), r.Exec.Agg.Combine)
			}
		}
	}
	return nil
}

// runMerged issues a single query selecting the disjunction of all
// preference conditions, then evaluates each preference's conditional and
// scoring parts in the middleware.
func (r *Runner) runMerged(qnp algebra.Node, prefs []pref.Preference, scores *prel.ScoreRelation) error {
	if len(prefs) == 0 {
		return nil
	}
	var disj expr.Node
	for _, p := range prefs {
		if disj == nil {
			disj = p.Cond
		} else {
			disj = expr.Bin{Op: expr.OpOr, L: disj, R: p.Cond}
		}
	}
	q := &algebra.Select{Cond: disj, Input: qnp}
	partial, err := r.Exec.Materialize(q)
	if err != nil {
		return fmt.Errorf("plugin: merged query: %w", err)
	}
	type compiled struct {
		cond  *expr.Compiled
		score *expr.Compiled
		conf  float64
	}
	cs := make([]compiled, len(prefs))
	for i, p := range prefs {
		cond, err := expr.CompileCondition(p.Cond, partial.Schema, r.Exec.Funcs)
		if err != nil {
			return fmt.Errorf("plugin: condition of %s: %w", p.Label(), err)
		}
		score, err := expr.Compile(p.Score, partial.Schema, r.Exec.Funcs)
		if err != nil {
			return fmt.Errorf("plugin: scoring %s: %w", p.Label(), err)
		}
		cs[i] = compiled{cond: cond, score: score, conf: p.Conf}
	}
	seen := map[string]bool{}
	for _, row := range partial.Rows {
		key := prel.Fingerprint(row.Tuple)
		if seen[key] {
			continue
		}
		seen[key] = true
		for _, c := range cs {
			if !c.cond.Truthy(row.Tuple) {
				continue
			}
			if v := c.score.Eval(row.Tuple); !v.IsNull() && v.IsNumeric() {
				scores.Combine(row.Tuple, types.NewSC(pref.Clamp01(v.AsFloat()), c.conf), r.Exec.Agg.Combine)
			}
		}
	}
	return nil
}
