package plugin

import (
	"testing"

	"prefdb/internal/algebra"
	"prefdb/internal/catalog"
	"prefdb/internal/exec"
	"prefdb/internal/expr"
	"prefdb/internal/pref"
	"prefdb/internal/schema"
	"prefdb/internal/types"
)

func movieDB(t testing.TB) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	movies := schema.New(
		schema.Column{Name: "m_id", Kind: types.KindInt},
		schema.Column{Name: "title", Kind: types.KindString},
		schema.Column{Name: "year", Kind: types.KindInt},
		schema.Column{Name: "duration", Kind: types.KindInt},
		schema.Column{Name: "d_id", Kind: types.KindInt},
	).WithKey("m_id")
	genres := schema.New(
		schema.Column{Name: "m_id", Kind: types.KindInt},
		schema.Column{Name: "genre", Kind: types.KindString},
	).WithKey("m_id", "genre")
	mt, _ := c.CreateTable("movies", movies)
	gt, _ := c.CreateTable("genres", genres)
	genreNames := []string{"Drama", "Comedy", "Action"}
	for i := 0; i < 60; i++ {
		mt.Insert([]types.Value{
			types.Int(int64(i)), types.Str("t"), types.Int(int64(1990 + i%30)),
			types.Int(int64(90 + i%60)), types.Int(int64(i % 7)),
		})
		gt.Insert([]types.Value{types.Int(int64(i)), types.Str(genreNames[i%3])})
	}
	return c
}

func testPlan() algebra.Node {
	p1 := pref.Constant("p1", "genres", expr.Eq("genre", types.Str("Comedy")), 1, 0.8)
	p2 := pref.New("p2", "movies", expr.Cmp("year", expr.OpGe, types.Int(2005)), pref.Recency("year", 2020), 0.9)
	core := &algebra.Prefer{P: p2, Input: &algebra.Prefer{P: p1, Input: &algebra.Join{
		Cond:  expr.Bin{Op: expr.OpEq, L: expr.ColRef("movies.m_id"), R: expr.ColRef("genres.m_id")},
		Left:  &algebra.Scan{Table: "movies"},
		Right: &algebra.Scan{Table: "genres"},
	}}}
	return &algebra.TopK{K: 10, By: algebra.ByScore, Input: core}
}

func TestPluginMatchesNative(t *testing.T) {
	plan := testPlan()
	eRef := exec.New(movieDB(t))
	ref, err := eRef.Run(plan, exec.Native)
	if err != nil {
		t.Fatal(err)
	}
	for _, merged := range []bool{false, true} {
		r := &Runner{Exec: exec.New(movieDB(t)), Merged: merged}
		got, err := r.Run(plan)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if diff := ref.Diff(got, 1e-9); diff != "" {
			t.Errorf("%s differs from native: %s", r.Name(), diff)
		}
	}
}

func TestPluginNoPreferences(t *testing.T) {
	plan := &algebra.Select{Cond: expr.Cmp("year", expr.OpGe, types.Int(2015)), Input: &algebra.Scan{Table: "movies"}}
	for _, merged := range []bool{false, true} {
		r := &Runner{Exec: exec.New(movieDB(t)), Merged: merged}
		got, err := r.Run(plan)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if got.Len() != 10 {
			t.Errorf("%s: rows = %d, want 10", r.Name(), got.Len())
		}
		for _, row := range got.Rows {
			if !row.SC.IsBottom() {
				t.Errorf("%s: unexpected score %v", r.Name(), row.SC)
			}
		}
	}
}

func TestPluginNativeCallCounts(t *testing.T) {
	plan := testPlan()
	naive := &Runner{Exec: exec.New(movieDB(t))}
	if _, err := naive.Run(plan); err != nil {
		t.Fatal(err)
	}
	// One query for the full answer plus one per preference.
	if got := naive.Exec.Stats().NativeCalls; got != 3 {
		t.Errorf("naive native calls = %d, want 3", got)
	}
	merged := &Runner{Exec: exec.New(movieDB(t)), Merged: true}
	if _, err := merged.Run(plan); err != nil {
		t.Fatal(err)
	}
	// One query for the full answer plus one merged disjunctive query.
	if got := merged.Exec.Stats().NativeCalls; got != 2 {
		t.Errorf("merged native calls = %d, want 2", got)
	}
}

func TestPluginNaiveScalesWithPreferences(t *testing.T) {
	// The defining cost signature: naive issues λ+1 queries.
	for _, n := range []int{1, 4, 8} {
		var core algebra.Node = &algebra.Scan{Table: "movies"}
		for i := 0; i < n; i++ {
			p := pref.Constant("p", "movies", expr.Eq("d_id", types.Int(int64(i))), 1, 0.5)
			core = &algebra.Prefer{P: p, Input: core}
		}
		r := &Runner{Exec: exec.New(movieDB(t))}
		if _, err := r.Run(core); err != nil {
			t.Fatal(err)
		}
		if got := r.Exec.Stats().NativeCalls; got != n+1 {
			t.Errorf("λ=%d: native calls = %d, want %d", n, got, n+1)
		}
		m := &Runner{Exec: exec.New(movieDB(t)), Merged: true}
		if _, err := m.Run(core); err != nil {
			t.Fatal(err)
		}
		if got := m.Exec.Stats().NativeCalls; got != 2 {
			t.Errorf("λ=%d merged: native calls = %d, want 2", n, got)
		}
	}
}

func TestPluginWithFiltersAndAggregates(t *testing.T) {
	// Threshold filter and F_max both flow through the plug-in path.
	p1 := pref.Constant("p1", "genres", expr.Eq("genre", types.Str("Drama")), 0.9, 0.7)
	p2 := pref.Constant("p2", "genres", expr.Eq("genre", types.Str("Comedy")), 0.8, 0.9)
	core := &algebra.Prefer{P: p2, Input: &algebra.Prefer{P: p1, Input: &algebra.Scan{Table: "genres"}}}
	plan := &algebra.Threshold{By: algebra.ByConf, Op: expr.OpGt, Value: 0, Input: core}

	eRef := exec.New(movieDB(t))
	eRef.Agg = pref.FMax{}
	ref, err := eRef.Run(plan, exec.Native)
	if err != nil {
		t.Fatal(err)
	}
	for _, merged := range []bool{false, true} {
		ex := exec.New(movieDB(t))
		ex.Agg = pref.FMax{}
		r := &Runner{Exec: ex, Merged: merged}
		got, err := r.Run(plan)
		if err != nil {
			t.Fatal(err)
		}
		if diff := ref.Diff(got, 1e-9); diff != "" {
			t.Errorf("%s with FMax differs: %s", r.Name(), diff)
		}
	}
}

func TestPluginName(t *testing.T) {
	if (&Runner{}).Name() != "plugin-naive" || (&Runner{Merged: true}).Name() != "plugin-merged" {
		t.Error("names wrong")
	}
}
