// Package schema describes relation schemas: ordered, typed, qualified
// columns, primary keys, and the schema algebra used by joins and
// projections.
package schema

import (
	"fmt"
	"strings"

	"prefdb/internal/types"
)

// Column is one attribute of a relation schema.
type Column struct {
	// Table is the qualifier (base-table name or alias); may be empty for
	// computed columns.
	Table string
	// Name is the attribute name.
	Name string
	// Kind is the declared type.
	Kind types.Kind
}

// QualifiedName renders table.name, or just name when unqualified.
func (c Column) QualifiedName() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// Schema is an ordered list of columns plus primary-key metadata.
type Schema struct {
	Columns []Column
	// Key holds the ordinal positions of the primary-key columns, in key
	// order. For derived relations (joins) this is the concatenation of the
	// input keys, as the paper's composite score-relation keys require.
	Key []int
}

// New builds a schema from columns with no key.
func New(cols ...Column) *Schema { return &Schema{Columns: cols} }

// WithKey returns the schema with the primary key set to the named columns.
// It panics if a key column does not exist (schemas are built by trusted
// code; the parser validates user input earlier).
func (s *Schema) WithKey(names ...string) *Schema {
	s.Key = s.Key[:0]
	for _, n := range names {
		idx := s.MustIndexOf(n)
		s.Key = append(s.Key, idx)
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// IndexOf resolves a (possibly qualified) column reference to its ordinal.
// Unqualified names match any table qualifier; the error reports ambiguity
// when more than one column matches.
func (s *Schema) IndexOf(table, name string) (int, error) {
	found := -1
	for i, c := range s.Columns {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if table != "" && !strings.EqualFold(c.Table, table) {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("schema: ambiguous column reference %q", Column{Table: table, Name: name}.QualifiedName())
		}
		found = i
	}
	if found < 0 {
		return -1, fmt.Errorf("schema: unknown column %q", Column{Table: table, Name: name}.QualifiedName())
	}
	return found, nil
}

// MustIndexOf resolves a column given as "name" or "table.name", panicking
// on failure. For internal plan construction only.
func (s *Schema) MustIndexOf(ref string) int {
	table, name := SplitRef(ref)
	idx, err := s.IndexOf(table, name)
	if err != nil {
		panic(err)
	}
	return idx
}

// SplitRef splits "table.name" into its parts; a bare "name" yields an
// empty table.
func SplitRef(ref string) (table, name string) {
	if i := strings.IndexByte(ref, '.'); i >= 0 {
		return ref[:i], ref[i+1:]
	}
	return "", ref
}

// Project returns a new schema containing the columns at the given ordinals,
// preserving any key columns that survive the projection (remapped).
func (s *Schema) Project(ordinals []int) *Schema {
	out := &Schema{Columns: make([]Column, len(ordinals))}
	remap := make(map[int]int, len(ordinals))
	for i, o := range ordinals {
		out.Columns[i] = s.Columns[o]
		if _, dup := remap[o]; !dup {
			remap[o] = i
		}
	}
	keyOK := len(s.Key) > 0
	for _, k := range s.Key {
		if _, ok := remap[k]; !ok {
			keyOK = false
			break
		}
	}
	if keyOK {
		for _, k := range s.Key {
			out.Key = append(out.Key, remap[k])
		}
	}
	return out
}

// Concat returns the schema of a product/join of s then o; the key is the
// composite of both keys (when both have one).
func (s *Schema) Concat(o *Schema) *Schema {
	out := &Schema{Columns: make([]Column, 0, len(s.Columns)+len(o.Columns))}
	out.Columns = append(out.Columns, s.Columns...)
	out.Columns = append(out.Columns, o.Columns...)
	if len(s.Key) > 0 && len(o.Key) > 0 {
		out.Key = append(out.Key, s.Key...)
		for _, k := range o.Key {
			out.Key = append(out.Key, k+len(s.Columns))
		}
	}
	return out
}

// Rename returns a copy of the schema with every column's table qualifier
// replaced by alias.
func (s *Schema) Rename(alias string) *Schema {
	out := &Schema{Columns: make([]Column, len(s.Columns)), Key: append([]int(nil), s.Key...)}
	for i, c := range s.Columns {
		c.Table = alias
		out.Columns[i] = c
	}
	return out
}

// Clone returns a deep copy.
func (s *Schema) Clone() *Schema {
	return &Schema{
		Columns: append([]Column(nil), s.Columns...),
		Key:     append([]int(nil), s.Key...),
	}
}

// EqualLayout reports whether two schemas have the same column kinds in the
// same order (union-compatibility).
func (s *Schema) EqualLayout(o *Schema) bool {
	if len(s.Columns) != len(o.Columns) {
		return false
	}
	for i := range s.Columns {
		if s.Columns[i].Kind != o.Columns[i].Kind {
			return false
		}
	}
	return true
}

// HasKey reports whether a primary key is known.
func (s *Schema) HasKey() bool { return len(s.Key) > 0 }

// KeyOf extracts the key values from a tuple laid out by this schema.
func (s *Schema) KeyOf(tuple []types.Value) []types.Value {
	key := make([]types.Value, len(s.Key))
	for i, k := range s.Key {
		key[i] = tuple[k]
	}
	return key
}

// String renders the schema as (table.col TYPE, ...).
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.QualifiedName())
		b.WriteByte(' ')
		b.WriteString(c.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}
