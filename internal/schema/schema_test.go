package schema

import (
	"testing"

	"prefdb/internal/types"
)

func moviesSchema() *Schema {
	return New(
		Column{"movies", "m_id", types.KindInt},
		Column{"movies", "title", types.KindString},
		Column{"movies", "year", types.KindInt},
		Column{"movies", "duration", types.KindInt},
		Column{"movies", "d_id", types.KindInt},
	).WithKey("m_id")
}

func TestQualifiedName(t *testing.T) {
	c := Column{"movies", "title", types.KindString}
	if c.QualifiedName() != "movies.title" {
		t.Errorf("got %q", c.QualifiedName())
	}
	c.Table = ""
	if c.QualifiedName() != "title" {
		t.Errorf("got %q", c.QualifiedName())
	}
}

func TestIndexOf(t *testing.T) {
	s := moviesSchema()
	if idx, err := s.IndexOf("", "title"); err != nil || idx != 1 {
		t.Errorf("IndexOf title = (%d, %v)", idx, err)
	}
	if idx, err := s.IndexOf("movies", "year"); err != nil || idx != 2 {
		t.Errorf("IndexOf movies.year = (%d, %v)", idx, err)
	}
	if idx, err := s.IndexOf("MOVIES", "YEAR"); err != nil || idx != 2 {
		t.Errorf("case-insensitive IndexOf = (%d, %v)", idx, err)
	}
	if _, err := s.IndexOf("", "nope"); err == nil {
		t.Error("expected error for unknown column")
	}
	if _, err := s.IndexOf("directors", "title"); err == nil {
		t.Error("expected error for wrong qualifier")
	}
}

func TestIndexOfAmbiguous(t *testing.T) {
	s := New(
		Column{"a", "id", types.KindInt},
		Column{"b", "id", types.KindInt},
	)
	if _, err := s.IndexOf("", "id"); err == nil {
		t.Error("expected ambiguity error")
	}
	if idx, err := s.IndexOf("b", "id"); err != nil || idx != 1 {
		t.Errorf("qualified lookup = (%d, %v)", idx, err)
	}
}

func TestMustIndexOfAndSplitRef(t *testing.T) {
	s := moviesSchema()
	if s.MustIndexOf("movies.d_id") != 4 {
		t.Error("MustIndexOf qualified failed")
	}
	if s.MustIndexOf("duration") != 3 {
		t.Error("MustIndexOf unqualified failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown ref")
		}
	}()
	s.MustIndexOf("nope")
}

func TestProject(t *testing.T) {
	s := moviesSchema()
	p := s.Project([]int{1, 0})
	if p.Len() != 2 || p.Columns[0].Name != "title" || p.Columns[1].Name != "m_id" {
		t.Fatalf("projected schema = %v", p)
	}
	// Key m_id survives at position 1.
	if !p.HasKey() || p.Key[0] != 1 {
		t.Errorf("projected key = %v", p.Key)
	}
	// Dropping the key column loses the key.
	p2 := s.Project([]int{1, 2})
	if p2.HasKey() {
		t.Error("key should be lost when key column projected away")
	}
}

func TestConcat(t *testing.T) {
	m := moviesSchema()
	d := New(
		Column{"directors", "d_id", types.KindInt},
		Column{"directors", "director", types.KindString},
	).WithKey("d_id")
	j := m.Concat(d)
	if j.Len() != 7 {
		t.Fatalf("concat len = %d", j.Len())
	}
	if idx, err := j.IndexOf("directors", "d_id"); err != nil || idx != 5 {
		t.Errorf("directors.d_id = (%d, %v)", idx, err)
	}
	// Composite key: movies.m_id (0) + directors.d_id (5).
	if len(j.Key) != 2 || j.Key[0] != 0 || j.Key[1] != 5 {
		t.Errorf("composite key = %v", j.Key)
	}
	// Concat with keyless input drops the key.
	j2 := m.Concat(New(Column{"x", "v", types.KindInt}))
	if j2.HasKey() {
		t.Error("concat with keyless schema should have no key")
	}
}

func TestRenameAndClone(t *testing.T) {
	s := moviesSchema()
	r := s.Rename("m")
	for _, c := range r.Columns {
		if c.Table != "m" {
			t.Fatalf("rename failed: %v", c)
		}
	}
	if s.Columns[0].Table != "movies" {
		t.Error("rename mutated original")
	}
	c := s.Clone()
	c.Columns[0].Name = "zzz"
	c.Key[0] = 3
	if s.Columns[0].Name != "m_id" || s.Key[0] != 0 {
		t.Error("clone is not deep")
	}
}

func TestEqualLayout(t *testing.T) {
	a := New(Column{"", "x", types.KindInt}, Column{"", "y", types.KindString})
	b := New(Column{"t", "p", types.KindInt}, Column{"t", "q", types.KindString})
	c := New(Column{"", "x", types.KindInt})
	d := New(Column{"", "x", types.KindString}, Column{"", "y", types.KindString})
	if !a.EqualLayout(b) {
		t.Error("same layout should be equal")
	}
	if a.EqualLayout(c) || a.EqualLayout(d) {
		t.Error("different layouts should differ")
	}
}

func TestKeyOf(t *testing.T) {
	s := moviesSchema()
	tuple := []types.Value{types.Int(7), types.Str("t"), types.Int(2011), types.Int(120), types.Int(1)}
	key := s.KeyOf(tuple)
	if len(key) != 1 || key[0].AsInt() != 7 {
		t.Errorf("KeyOf = %v", key)
	}
}

func TestString(t *testing.T) {
	s := New(Column{"t", "a", types.KindInt}, Column{"", "b", types.KindString})
	want := "(t.a INT, b TEXT)"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
