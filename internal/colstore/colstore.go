// Package colstore implements the read-optimized side of a prefdb table:
// an immutable, typed columnar segment store compacted from sealed heap
// pages. Each segment covers a fixed page-aligned row range as typed
// column vectors (int64/float64 slices, dictionary-encoded strings, bools)
// with null and deleted bitmaps, plus a per-column zone map (min/max, null
// count, live count) that lets scans skip whole segments against sargable
// filter conjuncts before any kernel runs.
//
// A Store is built from a heap at one table version and never mutated;
// DML invalidates it through the catalog's atomic version counters and a
// later read rebuilds. Hot write paths therefore stay on the row heap, and
// readers see segments plus the heap tail (pages ≥ SealedPages).
package colstore

import (
	"prefdb/internal/debug"
	"prefdb/internal/schema"
	"prefdb/internal/storage"
	"prefdb/internal/types"
)

// SegmentPages is how many sealed heap pages one segment covers
// (SegmentPages × storage.PageSize rows), balancing zone-map resolution
// against per-segment overhead.
const SegmentPages = 16

// Zone summarizes one column of one segment for pruning: the min/max over
// the segment's live non-null values plus null/non-null live counts. Valid
// is true only for typed (uniformly kinded) columns with at least one live
// non-null value; raw fallback columns never prune.
type Zone struct {
	Min, Max types.Value
	Nulls    int // live NULL cells
	NonNull  int // live non-NULL cells
	Valid    bool
}

// Column is one attribute of a segment. Exactly one encoding is populated:
// a typed vector (Ints, Floats, Codes+Dict or Bools) with the Nulls bitmap
// marking NULL slots, or Raw when the page held values that do not match
// the declared kind (dynamic typing permits that), which preserves the
// cells verbatim. Dead and NULL slots of typed vectors hold zero values.
type Column struct {
	Kind   types.Kind
	Ints   []int64
	Floats []float64
	Codes  []int32 // indexes into Dict
	Dict   []string
	Bools  []bool
	Raw    []types.Value
	Nulls  []bool // nil when the column has no NULL slot
	Zone   Zone
}

// Value decodes the cell at slot i back into a scalar. Decoding is exact:
// rebuilding a tuple from its columns yields values byte-identical to the
// heap originals (the Raw fallback guarantees this even off the typed
// encodings).
func (c *Column) Value(i int) types.Value {
	if c.Raw != nil {
		return c.Raw[i]
	}
	if c.Nulls != nil && c.Nulls[i] {
		return types.Null()
	}
	switch {
	case c.Ints != nil:
		return types.Int(c.Ints[i])
	case c.Floats != nil:
		return types.Float(c.Floats[i])
	case c.Codes != nil:
		return types.Str(c.Dict[c.Codes[i]])
	case c.Bools != nil:
		return types.Bool(c.Bools[i])
	default:
		return types.Null()
	}
}

// Segment is an immutable page-aligned slab of rows in columnar layout.
type Segment struct {
	FirstPage int // heap page ordinal of the first covered page
	Rows      int // slots, dead included
	Live      int
	Deleted   []bool // nil when every slot is live
	Cols      []Column

	// tuples are the row views decoded once at build time from the column
	// vectors into a shared arena; scans alias them without copying.
	// prefdb:segment-view tuples are immutable for the store's lifetime
	tuples [][]types.Value
}

// Tuple returns the row view at slot i (valid for the store's lifetime;
// callers must not mutate it).
func (s *Segment) Tuple(i int) []types.Value { return s.tuples[i] }

// Dead reports whether slot i is tombstoned.
func (s *Segment) Dead(i int) bool { return s.Deleted != nil && s.Deleted[i] }

// Store is the columnar image of one table's sealed pages at one version.
type Store struct {
	Version     uint64
	SealedPages int // heap pages covered; the heap tail starts here
	Segments    []*Segment
}

// Live returns the number of live rows held in segments.
func (st *Store) Live() int {
	n := 0
	for _, seg := range st.Segments {
		n += seg.Live
	}
	return n
}

// Build compacts h's sealed pages (every page except a trailing partial
// one) into a columnar store stamped with the table version the caller
// read. The heap must not be mutated concurrently (the engine serializes
// writes per table).
func Build(h *storage.Heap, version uint64) *Store {
	st := &Store{Version: version}
	sealed := h.Blocks()
	if sealed > 0 {
		if rows, _, _ := h.Block(sealed - 1); len(rows) < storage.PageSize {
			sealed--
		}
	}
	st.SealedPages = sealed
	for first := 0; first < sealed; first += SegmentPages {
		last := first + SegmentPages
		if last > sealed {
			last = sealed
		}
		if seg := buildSegment(h, h.Schema(), first, last); seg != nil {
			st.Segments = append(st.Segments, seg)
		}
	}
	return st
}

func buildSegment(h *storage.Heap, s *schema.Schema, first, last int) *Segment {
	seg := &Segment{FirstPage: first}
	for p := first; p < last; p++ {
		rows, _, live := h.Block(p)
		seg.Rows += len(rows)
		seg.Live += live
	}
	anyDead := false
	deleted := make([]bool, seg.Rows)
	slot := 0
	for p := first; p < last; p++ {
		_, dead, _ := h.Block(p)
		for _, d := range dead {
			if d {
				deleted[slot] = true
				anyDead = true
			}
			slot++
		}
	}
	if anyDead {
		seg.Deleted = deleted
	}
	seg.Cols = make([]Column, s.Len())
	for ord := range seg.Cols {
		buildColumn(h, &seg.Cols[ord], s.Columns[ord].Kind, first, last, ord, seg)
	}
	seg.decodeTuples(s.Len())
	return seg
}

// buildColumn encodes one attribute of the segment's row range. It tries
// the typed vector matching the declared kind; any live non-null cell of a
// different kind demotes the whole column to the Raw encoding so decoding
// stays exact.
func buildColumn(h *storage.Heap, c *Column, kind types.Kind, first, last, ord int, seg *Segment) {
	c.Kind = kind
	typed := kind == types.KindInt || kind == types.KindFloat || kind == types.KindString || kind == types.KindBool
	if typed {
	check:
		for p := first; p < last; p++ {
			rows, dead, _ := h.Block(p)
			for i, row := range rows {
				if !dead[i] && !row[ord].IsNull() && row[ord].Kind() != kind {
					typed = false
					break check
				}
			}
		}
	}
	if !typed {
		c.Raw = make([]types.Value, 0, seg.Rows)
		for p := first; p < last; p++ {
			rows, _, _ := h.Block(p)
			for _, row := range rows {
				c.Raw = append(c.Raw, row[ord])
			}
		}
		buildZoneRaw(c, seg)
		return
	}
	switch kind {
	case types.KindInt:
		c.Ints = make([]int64, seg.Rows)
	case types.KindFloat:
		c.Floats = make([]float64, seg.Rows)
	case types.KindString:
		c.Codes = make([]int32, seg.Rows)
	case types.KindBool:
		c.Bools = make([]bool, seg.Rows)
	}
	var dict map[string]int32
	if kind == types.KindString {
		dict = make(map[string]int32)
	}
	slot := 0
	for p := first; p < last; p++ {
		rows, dead, _ := h.Block(p)
		for i, row := range rows {
			v := row[ord]
			if dead[i] || v.IsNull() {
				if v.IsNull() {
					if c.Nulls == nil {
						c.Nulls = make([]bool, seg.Rows)
					}
					c.Nulls[slot] = true
					if !dead[i] {
						c.Zone.Nulls++
					}
				}
				slot++
				continue
			}
			switch kind {
			case types.KindInt:
				c.Ints[slot] = v.AsInt()
			case types.KindFloat:
				c.Floats[slot] = v.AsFloat()
			case types.KindString:
				sv := v.AsString()
				code, ok := dict[sv]
				if !ok {
					code = int32(len(c.Dict))
					c.Dict = append(c.Dict, sv)
					dict[sv] = code
				}
				c.Codes[slot] = code
			case types.KindBool:
				c.Bools[slot] = v.AsBool()
			}
			zoneAdd(&c.Zone, v)
			slot++
		}
	}
	// Dead slots with NULL cells also set the bitmap above; that is
	// harmless (dead slots are never decoded into results) and keeps the
	// encode loop branch-light.
	c.Zone.Valid = c.Zone.NonNull > 0
}

// buildZoneRaw counts live null/non-null cells of a raw column. Raw
// columns hold mixed kinds, so no min/max is published (Valid stays
// false and the segment never prunes on this column).
func buildZoneRaw(c *Column, seg *Segment) {
	for i, v := range c.Raw {
		if seg.Dead(i) {
			continue
		}
		if v.IsNull() {
			c.Zone.Nulls++
		} else {
			c.Zone.NonNull++
		}
	}
}

// zoneAdd folds one live non-null value into the zone.
func zoneAdd(z *Zone, v types.Value) {
	if z.NonNull == 0 {
		z.Min, z.Max = v, v
	} else {
		if cmp, ok := types.Compare(v, z.Min); ok && cmp < 0 {
			z.Min = v
		}
		if cmp, ok := types.Compare(v, z.Max); ok && cmp > 0 {
			z.Max = v
		}
	}
	z.NonNull++
}

// decodeTuples materializes the segment's row views from the column
// vectors into one arena, so scans hand out tuple slices without per-query
// transposition or copying. NULL cells of live rows must decode from the
// bitmap; the cells of dead slots decode as whatever the vector holds
// (they are never read).
func (seg *Segment) decodeTuples(width int) {
	arena := make([]types.Value, seg.Rows*width)
	seg.tuples = make([][]types.Value, seg.Rows)
	for i := 0; i < seg.Rows; i++ {
		t := arena[i*width : (i+1)*width : (i+1)*width]
		for ord := range seg.Cols {
			t[ord] = seg.Cols[ord].Value(i)
		}
		seg.tuples[i] = t // prefdb:alias-ok build-time initialization; the store is not published yet
	}
	if debug.Enabled {
		seg.checkZones()
	}
}

// checkZones asserts zone-map soundness in prefdbdebug builds: every live
// non-null decoded value lies within its column's [Min, Max] and the
// null/non-null counts add up to the live count.
func (seg *Segment) checkZones() {
	for ord := range seg.Cols {
		z := &seg.Cols[ord].Zone
		debug.SameLen("segment zone live coverage", z.Nulls+z.NonNull, seg.Live)
		if !z.Valid {
			continue
		}
		for i := 0; i < seg.Rows; i++ {
			if seg.Dead(i) {
				continue
			}
			v := seg.tuples[i][ord]
			if v.IsNull() {
				continue
			}
			debug.ZoneContains(z.Min, z.Max, v)
		}
	}
}
