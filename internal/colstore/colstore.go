// Package colstore implements the read-optimized side of a prefdb table:
// an immutable, typed columnar segment store compacted from sealed heap
// pages. Each segment covers a fixed page-aligned row range as typed
// column vectors (int64/float64 slices, dictionary-encoded strings, bools)
// with null and deleted bitmaps, plus a per-column zone map (min/max, null
// count, live count) that lets scans skip whole segments against sargable
// filter conjuncts before any kernel runs.
//
// A Store is built from a heap at one table version and never mutated;
// DML invalidates it through the catalog's atomic version counters and a
// later read rebuilds. Hot write paths therefore stay on the row heap, and
// readers see segments plus the heap tail (pages ≥ SealedPages).
package colstore

import (
	"math/bits"
	"sort"

	"prefdb/internal/debug"
	"prefdb/internal/schema"
	"prefdb/internal/storage"
	"prefdb/internal/types"
)

// SegmentPages is how many sealed heap pages one segment covers
// (SegmentPages × storage.PageSize rows), balancing zone-map resolution
// against per-segment overhead.
const SegmentPages = 16

// packMaxWidth is the widest frame-of-reference encoding an int column
// accepts: when the zone's [min, max] span fits in at most this many bits
// the vector is bit-packed (Packed/Width/Base) instead of stored as raw
// int64s, halving (or better) its footprint. Wider spans stay on Ints —
// past 32 bits the space saving no longer pays for the unpack.
const packMaxWidth = 32

// rleMinRun is the acceptance threshold for run-length encoding: an int or
// code vector trades its dense form for runs only when the average run is
// at least this long (run count ≪ length), so run-aware kernels that
// evaluate once per run always amortize over many rows. The builder
// attempts the encoding only on columns whose zone map is Valid (a typed
// column with live non-null values — the same metadata that drives
// pruning and pack widths).
const rleMinRun = 8

// BlockSource is the page-oriented view of row storage the compactor
// consumes: *storage.Heap satisfies it directly, and the catalog's
// background builder feeds a stable snapshot of sealed pages through the
// same interface so builds can proceed off the DML lock.
type BlockSource interface {
	Schema() *schema.Schema
	Blocks() int
	Block(i int) (rows [][]types.Value, dead []bool, live int)
}

// Zone summarizes one column of one segment for pruning: the min/max over
// the segment's live non-null values plus null/non-null live counts. Valid
// is true only for typed (uniformly kinded) columns with at least one live
// non-null value; raw fallback columns never prune.
type Zone struct {
	Min, Max types.Value
	Nulls    int // live NULL cells
	NonNull  int // live non-NULL cells
	Valid    bool
}

// Column is one attribute of a segment. Exactly one encoding is populated:
// a typed vector (Ints, Floats, Codes+Dict or Bools) with the Nulls bitmap
// marking NULL slots, or Raw when the page held values that do not match
// the declared kind (dynamic typing permits that), which preserves the
// cells verbatim. Dead and NULL slots of typed vectors hold zero values.
//
// An int column whose zone span fits packMaxWidth bits trades Ints for the
// frame-of-reference encoding: Packed holds Width-bit offsets from Base,
// densely concatenated into uint64 words. Kernels unpack a block at a time
// into scratch (Unpack); dead and NULL slots unpack as Base, which is fine
// because the Nulls bitmap and the deleted bitmap guard every read.
type Column struct {
	Kind   types.Kind
	Ints   []int64
	Floats []float64
	Codes  []int32 // indexes into Dict
	Dict   []string
	Bools  []bool
	Raw    []types.Value
	Nulls  []bool // nil when the column has no NULL slot
	Zone   Zone

	Packed []uint64 // bit-packed int vector (replaces Ints when set)
	Width  uint8    // bits per packed value, in (0, packMaxWidth]
	Base   int64    // frame of reference: value = Base + packed bits

	// Run-length encoding (replaces Ints or Codes when the column's run
	// count is ≪ its length; see rleMinRun): RunVals/RunCodes hold one
	// value per run, RunEnds the run's exclusive end slot. Dead and NULL
	// slots are absorbed into the enclosing run — they decode as the run's
	// value, which never surfaces because the bitmaps guard every read,
	// exactly as with the zero filler of dense vectors.
	RunVals  []int64
	RunCodes []int32 // code runs of a string column (with Dict)
	RunEnds  []int32
}

// Value decodes the cell at slot i back into a scalar. Decoding is exact:
// rebuilding a tuple from its columns yields values byte-identical to the
// heap originals (the Raw fallback guarantees this even off the typed
// encodings).
func (c *Column) Value(i int) types.Value {
	if c.Raw != nil {
		return c.Raw[i]
	}
	if c.Nulls != nil && c.Nulls[i] {
		return types.Null()
	}
	switch {
	case c.Ints != nil:
		return types.Int(c.Ints[i])
	case c.Packed != nil:
		return types.Int(c.Base + int64(c.packedBits(i)))
	case c.RunVals != nil:
		return types.Int(c.RunVals[c.runOf(i)])
	case c.Floats != nil:
		return types.Float(c.Floats[i])
	case c.Codes != nil:
		return types.Str(c.Dict[c.Codes[i]])
	case c.RunCodes != nil:
		return types.Str(c.Dict[c.RunCodes[c.runOf(i)]])
	case c.Bools != nil:
		return types.Bool(c.Bools[i])
	default:
		return types.Null()
	}
}

// runOf locates the run covering slot i by binary search over the run
// ends (runs are contiguous and cover every slot).
func (c *Column) runOf(i int) int {
	return sort.Search(len(c.RunEnds), func(k int) bool { return c.RunEnds[k] > int32(i) })
}

// packedBits extracts the Width-bit word of slot i (which may straddle a
// word boundary).
func (c *Column) packedBits(i int) uint64 {
	w := uint(c.Width)
	bit := uint(i) * w
	word, off := bit/64, bit%64
	v := c.Packed[word] >> off
	if off+w > 64 {
		v |= c.Packed[word+1] << (64 - off)
	}
	return v & (1<<w - 1)
}

// Unpack decodes packed slots [lo, hi) into dst (grown if its capacity
// is short), returning dst[:hi-lo]. Dead and NULL slots decode as Base;
// callers mask them via the Nulls/Deleted bitmaps, exactly as they would
// ignore the zero filler of an unpacked Ints vector.
func (c *Column) Unpack(lo, hi int, dst []int64) []int64 {
	if cap(dst) < hi-lo {
		dst = make([]int64, hi-lo)
	}
	dst = dst[:hi-lo]
	for i := range dst {
		dst[i] = c.Base + int64(c.packedBits(lo+i))
	}
	return dst
}

// packInts converts an eligible int vector to the frame-of-reference
// bit-packed encoding. The width comes from the zone's [min, max] span —
// exact metadata, so the round-trip is lossless for every live non-null
// slot; other slots pack as zero bits and never surface.
func (c *Column) packInts(seg *Segment) {
	if c.Ints == nil || !c.Zone.Valid || c.Zone.Min.Kind() != types.KindInt {
		return
	}
	base := c.Zone.Min.AsInt()
	span := uint64(c.Zone.Max.AsInt()) - uint64(base) // two's-complement safe
	width := uint(bits.Len64(span))
	if width == 0 {
		width = 1
	}
	if width > packMaxWidth {
		return
	}
	packed := make([]uint64, (seg.Rows*int(width)+63)/64)
	for i, v := range c.Ints {
		if (c.Nulls != nil && c.Nulls[i]) || seg.Dead(i) {
			continue // zero bits; guarded by the bitmaps on every read
		}
		bitsVal := uint64(v - base)
		bit := uint(i) * width
		word, off := bit/64, bit%64
		packed[word] |= bitsVal << off
		if off+width > 64 {
			packed[word+1] |= bitsVal >> (64 - off)
		}
	}
	ints := c.Ints
	c.Packed, c.Width, c.Base = packed, uint8(width), base
	c.Ints = nil
	if debug.Enabled {
		// Bit-packed widths must round-trip: every live non-null slot
		// decodes back to the exact int64 the heap held.
		for i, v := range ints {
			if (c.Nulls != nil && c.Nulls[i]) || seg.Dead(i) {
				continue
			}
			debug.Assertf(c.Base+int64(c.packedBits(i)) == v,
				"bit-packed int round-trip failed at slot %d: packed %d, want %d (width %d base %d)",
				i, c.Base+int64(c.packedBits(i)), v, c.Width, c.Base)
		}
	}
}

// runLength builds the run decomposition of a dense vector: one entry per
// maximal run of equal live non-null values, with dead and NULL slots
// absorbed into the enclosing run (leading ones into the first run). It
// returns nil when the column has no live non-null slot or when the run
// count misses the rleMinRun acceptance threshold.
func runLength[T comparable](vec []T, nulls []bool, seg *Segment) (vals []T, ends []int32) {
	open := false
	var cur T
	for i, v := range vec {
		if (nulls != nil && nulls[i]) || seg.Dead(i) {
			continue
		}
		if !open {
			open, cur = true, v
			continue
		}
		if v != cur {
			vals = append(vals, cur)
			ends = append(ends, int32(i))
			cur = v
			if len(vals)*rleMinRun > seg.Rows {
				return nil, nil // too many runs already: keep the dense form
			}
		}
	}
	if !open {
		return nil, nil
	}
	vals = append(vals, cur)
	ends = append(ends, int32(seg.Rows))
	if len(vals)*rleMinRun > seg.Rows {
		return nil, nil
	}
	return vals, ends
}

// runLengthInts trades an eligible int vector for the run-length encoding.
// The round-trip is exact for every live non-null slot (asserted in
// prefdbdebug builds, like the bit-packed widths).
func (c *Column) runLengthInts(seg *Segment) {
	if c.Ints == nil || !c.Zone.Valid {
		return
	}
	vals, ends := runLength(c.Ints, c.Nulls, seg)
	if vals == nil {
		return
	}
	ints := c.Ints
	c.RunVals, c.RunEnds = vals, ends
	c.Ints = nil
	if debug.Enabled {
		for i, v := range ints {
			if (c.Nulls != nil && c.Nulls[i]) || seg.Dead(i) {
				continue
			}
			debug.Assertf(c.RunVals[c.runOf(i)] == v,
				"RLE int round-trip failed at slot %d: run value %d, want %d (%d runs)",
				i, c.RunVals[c.runOf(i)], v, len(c.RunVals))
		}
	}
}

// runLengthCodes trades an eligible dictionary-code vector for the
// run-length encoding; Dict is shared with the dense form it replaces.
func (c *Column) runLengthCodes(seg *Segment) {
	if c.Codes == nil || !c.Zone.Valid {
		return
	}
	vals, ends := runLength(c.Codes, c.Nulls, seg)
	if vals == nil {
		return
	}
	codes := c.Codes
	c.RunCodes, c.RunEnds = vals, ends
	c.Codes = nil
	if debug.Enabled {
		for i, v := range codes {
			if (c.Nulls != nil && c.Nulls[i]) || seg.Dead(i) {
				continue
			}
			debug.Assertf(c.RunCodes[c.runOf(i)] == v,
				"RLE code round-trip failed at slot %d: run code %d, want %d (%d runs)",
				i, c.RunCodes[c.runOf(i)], v, len(c.RunCodes))
		}
	}
}

// Segment is an immutable page-aligned slab of rows in columnar layout.
type Segment struct {
	FirstPage int // heap page ordinal of the first covered page
	Rows      int // slots, dead included
	Live      int
	Deleted   []bool // nil when every slot is live
	Cols      []Column

	// tuples are the row views decoded once at build time from the column
	// vectors into a shared arena; scans alias them without copying.
	// prefdb:segment-view tuples are immutable for the store's lifetime
	tuples [][]types.Value
}

// Tuple returns the row view at slot i (valid for the store's lifetime;
// callers must not mutate it).
func (s *Segment) Tuple(i int) []types.Value { return s.tuples[i] }

// Views returns the decoded row views for slots [lo, hi) — the borrowed
// tuple window a columnar batch carries next to its vectors.
// prefdb:segment-view the window aliases the segment's immutable arena
func (s *Segment) Views(lo, hi int) [][]types.Value { return s.tuples[lo:hi] }

// Dead reports whether slot i is tombstoned.
func (s *Segment) Dead(i int) bool { return s.Deleted != nil && s.Deleted[i] }

// ColVecs fills vecs (one slot per attribute, len(s.Cols)) with borrowed
// windows [lo, hi) of every column's typed vectors, the direct-on-column
// form batch kernels read. Bit-packed int columns unpack block-wise into
// scratch[ord] (grown as needed and returned for reuse); every other
// typed vector is aliased, not copied, under the prefdb:col-view
// contract. Raw columns leave their ColVec zero, which kernels treat as
// "fall back to the decoded row views".
func (s *Segment) ColVecs(lo, hi int, vecs []types.ColVec, scratch [][]int64) [][]int64 {
	if scratch == nil {
		scratch = make([][]int64, len(s.Cols))
	}
	for ord := range s.Cols {
		c := &s.Cols[ord]
		v := types.ColVec{}
		switch {
		case c.Ints != nil:
			v.Ints = c.Ints[lo:hi]
		case c.Packed != nil:
			if cap(scratch[ord]) < hi-lo {
				scratch[ord] = make([]int64, hi-lo)
			}
			scratch[ord] = c.Unpack(lo, hi, scratch[ord][:cap(scratch[ord])])
			v.Ints = scratch[ord]
		case c.Floats != nil:
			v.Floats = c.Floats[lo:hi]
		case c.Codes != nil:
			v.Codes = c.Codes[lo:hi]
			v.Dict = c.Dict
		case c.Bools != nil:
			v.Bools = c.Bools[lo:hi]
		case c.RunEnds != nil:
			// Run-length window: alias the runs overlapping [lo, hi). Ends
			// stay segment-relative; RunBase maps batch-local slots back.
			f := c.runOf(lo)
			l := c.runOf(hi - 1)
			v.RunEnds = c.RunEnds[f : l+1]
			v.RunBase = int32(lo)
			if c.RunVals != nil {
				v.RunVals = c.RunVals[f : l+1]
			} else {
				v.RunCodes = c.RunCodes[f : l+1]
				v.Dict = c.Dict
			}
		}
		if c.Nulls != nil && c.Raw == nil {
			v.Nulls = c.Nulls[lo:hi]
		}
		vecs[ord] = v
	}
	return scratch
}

// Store is the columnar image of one table's sealed pages at one version.
type Store struct {
	Version     uint64
	SealedPages int // heap pages covered; the heap tail starts here
	Segments    []*Segment
}

// Live returns the number of live rows held in segments.
func (st *Store) Live() int {
	n := 0
	for _, seg := range st.Segments {
		n += seg.Live
	}
	return n
}

// Build compacts h's sealed pages (every page except a trailing partial
// one) into a columnar store stamped with the table version the caller
// read. The source must not be mutated concurrently: either the engine
// serializes writes per table (the lazy first-scan build), or the caller
// hands in a stable snapshot (the catalog's background builder).
func Build(h BlockSource, version uint64) *Store {
	return BuildShared(h, version, nil)
}

// BuildShared is Build with a table-level shared string dictionary: every
// string column's codes are drawn from dict (when non-nil), so segments of
// this build — and of every other build over the same dict, including the
// background compactor's — agree on what each code means. Kernels may then
// compare codes across segments directly. A nil dict falls back to
// per-segment dictionaries.
func BuildShared(h BlockSource, version uint64, dict *TableDict) *Store {
	st := &Store{Version: version}
	sealed := h.Blocks()
	if sealed > 0 {
		if rows, _, _ := h.Block(sealed - 1); len(rows) < storage.PageSize {
			sealed--
		}
	}
	st.SealedPages = sealed
	for first := 0; first < sealed; first += SegmentPages {
		last := first + SegmentPages
		if last > sealed {
			last = sealed
		}
		if seg := buildSegment(h, h.Schema(), first, last, dict); seg != nil {
			st.Segments = append(st.Segments, seg)
		}
	}
	return st
}

func buildSegment(h BlockSource, s *schema.Schema, first, last int, dict *TableDict) *Segment {
	seg := &Segment{FirstPage: first}
	for p := first; p < last; p++ {
		rows, _, live := h.Block(p)
		seg.Rows += len(rows)
		seg.Live += live
	}
	anyDead := false
	deleted := make([]bool, seg.Rows)
	slot := 0
	for p := first; p < last; p++ {
		_, dead, _ := h.Block(p)
		for _, d := range dead {
			if d {
				deleted[slot] = true
				anyDead = true
			}
			slot++
		}
	}
	if anyDead {
		seg.Deleted = deleted
	}
	seg.Cols = make([]Column, s.Len())
	for ord := range seg.Cols {
		buildColumn(h, &seg.Cols[ord], s.Columns[ord].Kind, first, last, ord, seg, dict)
	}
	seg.decodeTuples(s.Len())
	return seg
}

// buildColumn encodes one attribute of the segment's row range. It tries
// the typed vector matching the declared kind; any live non-null cell of a
// different kind demotes the whole column to the Raw encoding so decoding
// stays exact. String codes come from the shared table dictionary when one
// is provided (with a segment-local front cache, so the dictionary lock is
// taken once per distinct string); int and code vectors then trade for the
// run-length or bit-packed encodings when eligible.
func buildColumn(h BlockSource, c *Column, kind types.Kind, first, last, ord int, seg *Segment, shared *TableDict) {
	c.Kind = kind
	typed := kind == types.KindInt || kind == types.KindFloat || kind == types.KindString || kind == types.KindBool
	if typed {
	check:
		for p := first; p < last; p++ {
			rows, dead, _ := h.Block(p)
			for i, row := range rows {
				if !dead[i] && !row[ord].IsNull() && row[ord].Kind() != kind {
					typed = false
					break check
				}
			}
		}
	}
	if !typed {
		c.Raw = make([]types.Value, 0, seg.Rows)
		for p := first; p < last; p++ {
			rows, _, _ := h.Block(p)
			for _, row := range rows {
				c.Raw = append(c.Raw, row[ord])
			}
		}
		buildZoneRaw(c, seg)
		return
	}
	switch kind {
	case types.KindInt:
		c.Ints = make([]int64, seg.Rows)
	case types.KindFloat:
		c.Floats = make([]float64, seg.Rows)
	case types.KindString:
		c.Codes = make([]int32, seg.Rows)
	case types.KindBool:
		c.Bools = make([]bool, seg.Rows)
	}
	var dict map[string]int32
	if kind == types.KindString {
		dict = make(map[string]int32)
	}
	slot := 0
	for p := first; p < last; p++ {
		rows, dead, _ := h.Block(p)
		for i, row := range rows {
			v := row[ord]
			if dead[i] || v.IsNull() {
				if v.IsNull() {
					if c.Nulls == nil {
						c.Nulls = make([]bool, seg.Rows)
					}
					c.Nulls[slot] = true
					if !dead[i] {
						c.Zone.Nulls++
					}
				}
				slot++
				continue
			}
			switch kind {
			case types.KindInt:
				c.Ints[slot] = v.AsInt()
			case types.KindFloat:
				c.Floats[slot] = v.AsFloat()
			case types.KindString:
				sv := v.AsString()
				code, ok := dict[sv]
				if !ok {
					if shared != nil {
						code = shared.intern(ord, sv)
					} else {
						code = int32(len(c.Dict))
						c.Dict = append(c.Dict, sv)
					}
					dict[sv] = code
				}
				c.Codes[slot] = code
			case types.KindBool:
				c.Bools[slot] = v.AsBool()
			}
			zoneAdd(&c.Zone, v)
			slot++
		}
	}
	// Dead slots with NULL cells also set the bitmap above; that is
	// harmless (dead slots are never decoded into results) and keeps the
	// encode loop branch-light.
	c.Zone.Valid = c.Zone.NonNull > 0
	if kind == types.KindString && shared != nil {
		// Publish the shared dictionary snapshot covering every code this
		// segment assigned (it may also cover codes other segments use —
		// the whole point of sharing).
		c.Dict = shared.snapshot(ord)
	}
	switch kind {
	case types.KindInt:
		c.runLengthInts(seg)
		c.packInts(seg) // no-op when RLE claimed the vector
	case types.KindString:
		c.runLengthCodes(seg)
	}
}

// buildZoneRaw counts live null/non-null cells of a raw column. Raw
// columns hold mixed kinds, so no min/max is published (Valid stays
// false and the segment never prunes on this column).
func buildZoneRaw(c *Column, seg *Segment) {
	for i, v := range c.Raw {
		if seg.Dead(i) {
			continue
		}
		if v.IsNull() {
			c.Zone.Nulls++
		} else {
			c.Zone.NonNull++
		}
	}
}

// zoneAdd folds one live non-null value into the zone.
func zoneAdd(z *Zone, v types.Value) {
	if z.NonNull == 0 {
		z.Min, z.Max = v, v
	} else {
		if cmp, ok := types.Compare(v, z.Min); ok && cmp < 0 {
			z.Min = v
		}
		if cmp, ok := types.Compare(v, z.Max); ok && cmp > 0 {
			z.Max = v
		}
	}
	z.NonNull++
}

// decodeTuples materializes the segment's row views from the column
// vectors into one arena, so scans hand out tuple slices without per-query
// transposition or copying. NULL cells of live rows must decode from the
// bitmap; the cells of dead slots decode as whatever the vector holds
// (they are never read).
func (seg *Segment) decodeTuples(width int) {
	arena := make([]types.Value, seg.Rows*width)
	seg.tuples = make([][]types.Value, seg.Rows)
	for i := 0; i < seg.Rows; i++ {
		t := arena[i*width : (i+1)*width : (i+1)*width]
		for ord := range seg.Cols {
			t[ord] = seg.Cols[ord].Value(i)
		}
		seg.tuples[i] = t // prefdb:alias-ok build-time initialization; the store is not published yet
	}
	if debug.Enabled {
		seg.checkZones()
	}
}

// checkZones asserts zone-map soundness in prefdbdebug builds: every live
// non-null decoded value lies within its column's [Min, Max] and the
// null/non-null counts add up to the live count.
func (seg *Segment) checkZones() {
	for ord := range seg.Cols {
		z := &seg.Cols[ord].Zone
		debug.SameLen("segment zone live coverage", z.Nulls+z.NonNull, seg.Live)
		if !z.Valid {
			continue
		}
		for i := 0; i < seg.Rows; i++ {
			if seg.Dead(i) {
				continue
			}
			v := seg.tuples[i][ord]
			if v.IsNull() {
				continue
			}
			debug.ZoneContains(z.Min, z.Max, v)
		}
	}
}
