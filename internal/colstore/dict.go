// Shared string dictionaries: a TableDict interns every string a table's
// columnar builds encounter, so segments built at different times — the
// lazy first-scan build and the background compactor alike — assign the
// same code to the same string. Cross-segment (and cross-store) code
// comparisons are then valid by construction: two codes drawn from the
// same TableDict column are equal iff their strings are, which is what
// lets join and filter kernels compare dictionary codes directly instead
// of re-decoding strings.
//
// Each segment snapshots the dictionary slice after encoding. The backing
// array is append-only between reallocations, so an older segment's
// shorter snapshot stays a valid prefix of a newer one; kernels that
// require *identity* (the accept-bit and hash caches) still match
// whenever no new string appeared in between, and fall back to string
// comparison otherwise — never to a wrong answer.
package colstore

import "sync"

// TableDict interns strings per column ordinal for one table's columnar
// builds. Safe for concurrent use: the lazy ColStore build and the
// background compactor may intern at the same time.
type TableDict struct {
	mu   sync.Mutex
	cols map[int]*colDict
}

type colDict struct {
	codes map[string]int32
	strs  []string
}

// NewTableDict returns an empty shared dictionary.
func NewTableDict() *TableDict {
	return &TableDict{cols: map[int]*colDict{}}
}

// intern returns the stable code for s in column ord, assigning the next
// code on first sight. Builders keep a segment-local front cache, so the
// lock is taken once per distinct string per segment, not per row.
func (d *TableDict) intern(ord int, s string) int32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	cd := d.cols[ord]
	if cd == nil {
		cd = &colDict{codes: map[string]int32{}}
		d.cols[ord] = cd
	}
	code, ok := cd.codes[s]
	if !ok {
		code = int32(len(cd.strs))
		cd.strs = append(cd.strs, s)
		cd.codes[s] = code
	}
	return code
}

// snapshot returns the dictionary slice covering every code assigned so
// far for column ord (capacity-clamped, so later appends cannot leak into
// the published segment).
func (d *TableDict) snapshot(ord int) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	cd := d.cols[ord]
	if cd == nil {
		return nil
	}
	return cd.strs[:len(cd.strs):len(cd.strs)]
}
