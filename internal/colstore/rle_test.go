package colstore

import (
	"fmt"
	"testing"

	"prefdb/internal/schema"
	"prefdb/internal/storage"
	"prefdb/internal/types"
)

func runSchema() *schema.Schema {
	return schema.New(
		schema.Column{Table: "ev", Name: "id", Kind: types.KindInt},
		schema.Column{Table: "ev", Name: "grp", Kind: types.KindInt},
		schema.Column{Table: "ev", Name: "cat", Kind: types.KindString},
		schema.Column{Table: "ev", Name: "score", Kind: types.KindFloat},
	)
}

// fillRunHeap inserts n rows whose grp and cat columns are constant for
// long stretches (runs of 64 and 128 slots) — the shape RLE is for —
// while id stays sequential (maximal-cardinality control) and score picks
// up NULLs inside runs.
func fillRunHeap(t *testing.T, h *storage.Heap, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		score := types.Value(types.Float(float64(i % 19)))
		if i%5 == 0 {
			score = types.Null()
		}
		_, err := h.Insert([]types.Value{
			types.Int(int64(i)),
			types.Int(int64(i / 64)),
			types.Str(fmt.Sprintf("c-%d", i/128%4)),
			score,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestRLERoundTrip pins the run-length encoding end to end: a run-heavy
// int column and a run-heavy code column compress to runs (dense vectors
// dropped), dead and NULL slots are absorbed into their enclosing run,
// and every live slot — via Column.Value, the decoded row views, and the
// run-form ColVec windows — decodes byte-identically to the heap
// original.
func TestRLERoundTrip(t *testing.T) {
	s := runSchema()
	h := storage.NewHeap(s)
	n := storage.PageSize * SegmentPages
	fillRunHeap(t, h, n)
	// Tombstones inside runs, including a stretch crossing a run boundary.
	for i := 0; i < n; i += 97 {
		h.Delete(storage.RowID{Page: uint32(i / storage.PageSize), Slot: uint32(i % storage.PageSize)})
	}
	for i := 120; i < 140; i++ {
		h.Delete(storage.RowID{Page: uint32(i / storage.PageSize), Slot: uint32(i % storage.PageSize)})
	}
	st := Build(h, 7)
	if len(st.Segments) != 1 {
		t.Fatalf("segments = %d, want 1", len(st.Segments))
	}
	seg := st.Segments[0]

	grp := &seg.Cols[1]
	if grp.RunVals == nil || grp.RunEnds == nil {
		t.Fatalf("grp column not run-encoded: %+v", grp.Zone)
	}
	if grp.Ints != nil || grp.Packed != nil {
		t.Fatal("grp column kept a dense vector next to its runs")
	}
	if runs := len(grp.RunVals); runs*rleMinRun > seg.Rows {
		t.Fatalf("grp accepted %d runs over %d rows, above the acceptance threshold", runs, seg.Rows)
	}
	cat := &seg.Cols[2]
	if cat.RunCodes == nil || cat.RunEnds == nil || cat.Dict == nil {
		t.Fatal("cat column not run-encoded with a dictionary")
	}
	if cat.Codes != nil {
		t.Fatal("cat column kept dense codes next to its runs")
	}
	id := &seg.Cols[0]
	if id.RunEnds != nil {
		t.Fatal("sequential id column accepted run encoding")
	}

	// Per-slot decode equivalence against the heap, live slots only.
	for p := 0; p < st.SealedPages; p++ {
		rows, dead, _ := h.Block(p)
		for i, row := range rows {
			slot := p*storage.PageSize + i
			if dead[i] {
				if !seg.Dead(slot) {
					t.Fatalf("slot %d: live in segment, dead on heap", slot)
				}
				continue
			}
			for ord, v := range row {
				if got := seg.Cols[ord].Value(slot); !got.Equal(v) || got.Kind() != v.Kind() {
					t.Fatalf("slot %d col %d: decoded %v, want %v", slot, ord, got, v)
				}
				if got := seg.Tuple(slot)[ord]; !got.Equal(v) {
					t.Fatalf("slot %d col %d: row view %v, want %v", slot, ord, got, v)
				}
			}
		}
	}

	// Window form: a mid-segment window must carry the overlapping runs
	// with segment-relative ends and RunBase mapping batch-local slots.
	lo, hi := 200, 1000
	vecs := make([]types.ColVec, len(seg.Cols))
	seg.ColVecs(lo, hi, vecs, nil)
	gv := vecs[1]
	if !gv.HasRuns() || gv.RunVals == nil || gv.RunBase != int32(lo) {
		t.Fatalf("grp window not in run form: %+v", gv)
	}
	cv := vecs[2]
	if !cv.HasRuns() || cv.RunCodes == nil {
		t.Fatalf("cat window not in run form: %+v", cv)
	}
	hint := 0
	for i := int32(0); i < int32(hi-lo); i++ {
		slot := lo + int(i)
		if seg.Dead(slot) {
			continue
		}
		k := gv.RunAt(i, hint)
		hint = k
		if got := gv.RunVals[k]; got != int64(slot/64) {
			t.Fatalf("window slot %d: run value %d, want %d", slot, got, slot/64)
		}
		ck := cv.RunAt(i, 0)
		if got := cv.Dict[cv.RunCodes[ck]]; got != fmt.Sprintf("c-%d", slot/128%4) {
			t.Fatalf("window slot %d: run code decodes %q", slot, got)
		}
	}
}

// TestRLERejectsShortRuns pins the acceptance threshold: a column whose
// runs are shorter than rleMinRun on average keeps its dense encoding.
func TestRLERejectsShortRuns(t *testing.T) {
	s := runSchema()
	h := storage.NewHeap(s)
	n := storage.PageSize * SegmentPages
	for i := 0; i < n; i++ {
		_, err := h.Insert([]types.Value{
			types.Int(int64(i)),
			types.Int(int64(i / 4)), // runs of 4 < rleMinRun
			types.Str(fmt.Sprintf("c-%d", i/2%50)), // runs of 2
			types.Float(1),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	seg := Build(h, 1).Segments[0]
	if seg.Cols[1].RunEnds != nil {
		t.Fatal("short-run int column accepted RLE")
	}
	if seg.Cols[1].Ints == nil && seg.Cols[1].Packed == nil {
		t.Fatal("short-run int column lost its dense encoding")
	}
	if seg.Cols[2].RunEnds != nil {
		t.Fatal("short-run string column accepted RLE")
	}
	if seg.Cols[2].Codes == nil {
		t.Fatal("short-run string column lost its dense codes")
	}
}

// TestSharedDictCrossSegmentCodes pins the property the direct join
// leans on: under one TableDict, segments built at different times give
// the same string the same code and publish snapshots of the same
// backing array — so code-vs-code equality across segments is string
// equality, and an older snapshot stays a prefix of a newer one.
func TestSharedDictCrossSegmentCodes(t *testing.T) {
	s := runSchema()
	h := storage.NewHeap(s)
	fillRunHeap(t, h, 2*storage.PageSize*SegmentPages)
	dict := NewTableDict()
	st := BuildShared(h, 1, dict)
	if len(st.Segments) != 2 {
		t.Fatalf("segments = %d, want 2", len(st.Segments))
	}
	a, b := &st.Segments[0].Cols[2], &st.Segments[1].Cols[2]
	if len(a.Dict) == 0 || len(b.Dict) == 0 {
		t.Fatal("string column lost its dictionary under the shared build")
	}
	if &a.Dict[0] != &b.Dict[0] {
		t.Fatal("segments of one build published different dictionary backings")
	}
	// Same string ⇒ same code, across segments, through whatever encoding
	// (dense codes or code runs) each segment chose.
	codeAt := func(c *Column, slot int) int32 {
		if c.Codes != nil {
			return c.Codes[slot]
		}
		return c.RunCodes[c.runOf(slot)]
	}
	for slot := 0; slot < 512; slot++ {
		va := st.Segments[0].Cols[2].Value(slot)
		// Find a slot in segment 1 with the same string; by construction
		// the cycle repeats, so the same slot offset works.
		vb := st.Segments[1].Cols[2].Value(slot)
		if !va.Equal(vb) {
			continue
		}
		if ca, cb := codeAt(a, slot), codeAt(b, slot); ca != cb {
			t.Fatalf("slot %d: %q coded %d in segment 0, %d in segment 1", slot, va, ca, cb)
		}
	}

	// A rebuild over a grown heap (new strings appear) keeps old codes:
	// the shared dictionary is append-only, so the earlier snapshot is a
	// prefix of the later one.
	for i := 0; i < storage.PageSize*SegmentPages; i++ {
		_, err := h.Insert([]types.Value{
			types.Int(int64(i)), types.Int(0), types.Str(fmt.Sprintf("late-%d", i/1024)), types.Float(0),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	st2 := BuildShared(h, 2, dict)
	// Snapshots are taken per segment at encode time, so the segment that
	// saw the new strings publishes the grown dictionary.
	d2 := st2.Segments[len(st2.Segments)-1].Cols[2].Dict
	if len(d2) <= len(a.Dict) {
		t.Fatalf("rebuild dictionary has %d entries, want more than %d", len(d2), len(a.Dict))
	}
	for i, s := range a.Dict {
		if d2[i] != s {
			t.Fatalf("code %d remapped across builds: %q → %q", i, s, d2[i])
		}
	}
}

// TestSharedDictSnapshotImmutable pins the capacity clamp: interning new
// strings after a snapshot must not write into the published slice.
func TestSharedDictSnapshotImmutable(t *testing.T) {
	d := NewTableDict()
	d.intern(0, "a")
	d.intern(0, "b")
	snap := d.snapshot(0)
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries, want 2", len(snap))
	}
	for i := 0; i < 100; i++ {
		d.intern(0, fmt.Sprintf("later-%d", i))
	}
	if snap[0] != "a" || snap[1] != "b" {
		t.Fatalf("published snapshot mutated: %v", snap[:2])
	}
	if c := d.intern(0, "b"); c != 1 {
		t.Fatalf("re-interning %q gave code %d, want 1", "b", c)
	}
}
