package colstore

import (
	"fmt"
	"testing"

	"prefdb/internal/expr"
	"prefdb/internal/schema"
	"prefdb/internal/storage"
	"prefdb/internal/types"
)

func testSchema() *schema.Schema {
	return schema.New(
		schema.Column{Table: "items", Name: "id", Kind: types.KindInt},
		schema.Column{Table: "items", Name: "name", Kind: types.KindString},
		schema.Column{Table: "items", Name: "score", Kind: types.KindFloat},
		schema.Column{Table: "items", Name: "tag", Kind: types.KindInt},
	)
}

// fillHeap inserts n rows: sequential ids, a small cyclic string dict,
// floats with every 5th NULL, and a "tag" column that is declared INT but
// holds a string in rows where mixed is requested (exercising the Raw
// fallback).
func fillHeap(t *testing.T, h *storage.Heap, n int, mixed bool) {
	t.Helper()
	for i := 0; i < n; i++ {
		score := types.Value(types.Float(float64(i) / 2))
		if i%5 == 0 {
			score = types.Null()
		}
		tag := types.Value(types.Int(int64(i % 7)))
		if mixed && i%11 == 0 {
			tag = types.Str("odd-one-out")
		}
		_, err := h.Insert([]types.Value{
			types.Int(int64(i)),
			types.Str(fmt.Sprintf("name-%d", i%3)),
			score,
			tag,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestBuildRoundTripsTuples(t *testing.T) {
	s := testSchema()
	h := storage.NewHeap(s)
	n := storage.PageSize*SegmentPages + storage.PageSize + 7 // 1 full segment + sealed remainder + partial tail
	fillHeap(t, h, n, true)
	// Tombstone a spread of rows, including a full-page kill.
	for i := 0; i < n; i += 13 {
		h.Delete(storage.RowID{Page: uint32(i / storage.PageSize), Slot: uint32(i % storage.PageSize)})
	}
	st := Build(h, 42)

	if st.Version != 42 {
		t.Fatalf("Version = %d, want 42", st.Version)
	}
	wantSealed := n / storage.PageSize
	if st.SealedPages != wantSealed {
		t.Fatalf("SealedPages = %d, want %d (the trailing partial page stays on the heap)", st.SealedPages, wantSealed)
	}
	if len(st.Segments) != 2 {
		t.Fatalf("segments = %d, want 2", len(st.Segments))
	}

	// Every live slot must decode byte-identically to the heap original.
	slot, segIdx := 0, 0
	seg := st.Segments[0]
	for p := 0; p < st.SealedPages; p++ {
		rows, dead, _ := h.Block(p)
		for i, row := range rows {
			if slot == seg.Rows {
				segIdx++
				seg = st.Segments[segIdx]
				slot = 0
			}
			if dead[i] != seg.Dead(slot) {
				t.Fatalf("page %d slot %d: dead mismatch", p, i)
			}
			if !dead[i] {
				got := seg.Tuple(slot)
				for ord, v := range row {
					if !got[ord].Equal(v) || got[ord].Kind() != v.Kind() {
						t.Fatalf("page %d slot %d col %d: decoded %v (%v), want %v (%v)",
							p, i, ord, got[ord], got[ord].Kind(), v, v.Kind())
					}
				}
			}
			slot++
		}
	}
}

func TestBuildEncodings(t *testing.T) {
	s := testSchema()
	h := storage.NewHeap(s)
	fillHeap(t, h, storage.PageSize*SegmentPages, true)
	st := Build(h, 1)
	if len(st.Segments) != 1 {
		t.Fatalf("segments = %d, want 1", len(st.Segments))
	}
	seg := st.Segments[0]

	id := seg.Cols[0]
	if id.Packed == nil || id.Ints != nil || id.Raw != nil {
		t.Fatal("id column should be bit-packed int-encoded")
	}
	if id.Width == 0 || id.Width > packMaxWidth {
		t.Fatalf("packed width = %d, want in (0, %d]", id.Width, packMaxWidth)
	}
	if !id.Zone.Valid || !id.Zone.Min.Equal(types.Int(0)) || !id.Zone.Max.Equal(types.Int(int64(seg.Rows-1))) {
		t.Fatalf("id zone = %+v, want valid [0, %d]", id.Zone, seg.Rows-1)
	}

	name := seg.Cols[1]
	if name.Codes == nil || len(name.Dict) != 3 {
		t.Fatalf("name column should be dictionary-encoded with 3 entries, got dict %v", name.Dict)
	}

	score := seg.Cols[2]
	if score.Floats == nil || score.Nulls == nil {
		t.Fatal("score column should be float-encoded with a null bitmap")
	}
	if score.Zone.Nulls == 0 || score.Zone.Nulls+score.Zone.NonNull != seg.Live {
		t.Fatalf("score zone counts %d+%d do not cover %d live rows", score.Zone.Nulls, score.Zone.NonNull, seg.Live)
	}

	tag := seg.Cols[3]
	if tag.Raw == nil {
		t.Fatal("mixed-kind tag column should fall back to Raw")
	}
	if tag.Zone.Valid {
		t.Fatal("raw columns must not publish a zone range")
	}
}

func TestSkipRules(t *testing.T) {
	s := testSchema()
	h := storage.NewHeap(s)
	fillHeap(t, h, storage.PageSize*SegmentPages, false)
	seg := Build(h, 1).Segments[0]
	idOrd, scoreOrd, tagOrd := 0, 2, 3
	max := int64(seg.Rows - 1)

	cases := []struct {
		name string
		pred Pred
		want bool
	}{
		{"eq inside", Pred{idOrd, expr.OpEq, types.Int(10)}, false},
		{"eq above max", Pred{idOrd, expr.OpEq, types.Int(max + 1)}, true},
		{"eq below min", Pred{idOrd, expr.OpEq, types.Int(-1)}, true},
		{"ne non-constant", Pred{idOrd, expr.OpNe, types.Int(10)}, false},
		{"lt min", Pred{idOrd, expr.OpLt, types.Int(0)}, true},
		{"lt min+1", Pred{idOrd, expr.OpLt, types.Int(1)}, false},
		{"le below min", Pred{idOrd, expr.OpLe, types.Int(-1)}, true},
		{"le min", Pred{idOrd, expr.OpLe, types.Int(0)}, false},
		{"gt max", Pred{idOrd, expr.OpGt, types.Int(max)}, true},
		{"gt max-1", Pred{idOrd, expr.OpGt, types.Int(max - 1)}, false},
		{"ge above max", Pred{idOrd, expr.OpGe, types.Int(max + 1)}, true},
		{"ge max", Pred{idOrd, expr.OpGe, types.Int(max)}, false},
		// Mixed numeric kinds compare; skip logic must hold across them.
		{"float lit on int col", Pred{idOrd, expr.OpGe, types.Float(float64(max) + 0.5)}, true},
		// Incomparable literal kind against a uniformly typed column: every
		// row comparison yields NULL, so the segment skips.
		{"string lit on int col", Pred{idOrd, expr.OpGe, types.Str("zzz")}, true},
		{"inside on nullable float", Pred{scoreOrd, expr.OpGe, types.Float(0)}, false},
		{"above nullable float max", Pred{scoreOrd, expr.OpGt, types.Float(1e9)}, true},
		{"tag inside", Pred{tagOrd, expr.OpLe, types.Int(6)}, false},
	}
	for _, c := range cases {
		if got := seg.Skip([]Pred{c.pred}); got != c.want {
			t.Errorf("%s: Skip = %v, want %v", c.name, got, c.want)
		}
	}
	// Conjunction: any skipping conjunct suffices.
	if !seg.Skip([]Pred{{idOrd, expr.OpGe, types.Int(0)}, {idOrd, expr.OpLt, types.Int(0)}}) {
		t.Error("conjunction with an impossible conjunct did not skip")
	}
}

func TestSkipAllNullColumn(t *testing.T) {
	s := schema.New(schema.Column{Table: "t", Name: "a", Kind: types.KindInt})
	h := storage.NewHeap(s)
	for i := 0; i < storage.PageSize; i++ {
		if _, err := h.Insert([]types.Value{types.Null()}); err != nil {
			t.Fatal(err)
		}
	}
	seg := Build(h, 1).Segments[0]
	if !seg.Skip([]Pred{{0, expr.OpEq, types.Int(1)}}) {
		t.Fatal("all-NULL column should skip any comparison conjunct")
	}
}

func TestPredsFrom(t *testing.T) {
	s := testSchema()
	conjuncts := []expr.Node{
		expr.Cmp("id", expr.OpGe, types.Int(5)),                                    // sargable
		expr.Bin{Op: expr.OpLt, L: expr.Lit{Val: types.Int(9)}, R: expr.ColRef("id")}, // flipped: id > 9
		expr.Cmp("id", expr.OpEq, types.Null()),                                    // NULL literal: excluded
		expr.Cmp("nosuch", expr.OpEq, types.Int(1)),                                // unresolved: excluded
		expr.Bin{Op: expr.OpAnd, L: expr.Cmp("id", expr.OpGe, types.Int(1)), R: expr.Cmp("id", expr.OpLe, types.Int(2))}, // not a comparison
	}
	preds := PredsFrom(s, conjuncts)
	if len(preds) != 2 {
		t.Fatalf("PredsFrom kept %d preds (%+v), want 2", len(preds), preds)
	}
	if preds[0].Ord != 0 || preds[0].Op != expr.OpGe || !preds[0].Lit.Equal(types.Int(5)) {
		t.Fatalf("preds[0] = %+v, want id >= 5", preds[0])
	}
	if preds[1].Ord != 0 || preds[1].Op != expr.OpGt || !preds[1].Lit.Equal(types.Int(9)) {
		t.Fatalf("preds[1] = %+v, want flipped id > 9", preds[1])
	}
}

func TestEstimateSkip(t *testing.T) {
	s := testSchema()
	h := storage.NewHeap(s)
	fillHeap(t, h, storage.PageSize*SegmentPages*3, false)
	st := Build(h, 1)
	if len(st.Segments) != 3 {
		t.Fatalf("segments = %d, want 3", len(st.Segments))
	}
	perSeg := storage.PageSize * SegmentPages
	// id < one segment's rows: only the first segment survives.
	segs, skipped := st.EstimateSkip([]Pred{{0, expr.OpLt, types.Int(int64(perSeg))}})
	if segs != 3 || skipped != 2 {
		t.Fatalf("EstimateSkip = (%d, %d), want (3, 2)", segs, skipped)
	}
	segs, skipped = st.EstimateSkip(nil)
	if segs != 3 || skipped != 0 {
		t.Fatalf("EstimateSkip(nil) = (%d, %d), want (3, 0)", segs, skipped)
	}
}

func TestEmptyAndTailOnlyHeaps(t *testing.T) {
	s := testSchema()
	empty := Build(storage.NewHeap(s), 1)
	if empty.SealedPages != 0 || len(empty.Segments) != 0 || empty.Live() != 0 {
		t.Fatalf("empty heap built %+v", empty)
	}
	h := storage.NewHeap(s)
	fillHeap(t, h, storage.PageSize-1, false) // one partial page: nothing sealed
	tail := Build(h, 1)
	if tail.SealedPages != 0 || len(tail.Segments) != 0 {
		t.Fatalf("partial-page heap built %+v", tail)
	}
}

// TestPackedWidthsRoundTrip sweeps the frame-of-reference widths the
// bit-packer can emit — 1 bit (near-constant), mid widths that straddle
// uint64 word boundaries, the packMaxWidth ceiling, and a spread too wide
// to pack — over negative bases and NULL holes, asserting every window
// unpacks to the values the heap held.
func TestPackedWidthsRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		gen  func(i int) int64
		pack bool
	}{
		{"width1", func(i int) int64 { return 5 + int64(i%2) }, true},
		{"width7-negative-base", func(i int) int64 { return -1000 + int64(i%100) }, true},
		{"width17-straddle", func(i int) int64 { return int64(i*31) % (1 << 17) }, true},
		{"width32-ceiling", func(i int) int64 { return int64(i) * ((1<<32 - 1) / int64(storage.PageSize*SegmentPages)) }, true},
		{"too-wide", func(i int) int64 { return int64(i) << 40 }, false},
	}
	n := storage.PageSize * SegmentPages
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := schema.New(schema.Column{Table: "t", Name: "v", Kind: types.KindInt})
			h := storage.NewHeap(s)
			for i := 0; i < n; i++ {
				v := types.Value(types.Int(tc.gen(i)))
				if i%37 == 0 {
					v = types.Null()
				}
				if _, err := h.Insert([]types.Value{v}); err != nil {
					t.Fatal(err)
				}
			}
			st := Build(h, 1)
			c := st.Segments[0].Cols[0]
			if tc.pack != (c.Packed != nil) {
				t.Fatalf("packed = %v, want %v (width %d)", c.Packed != nil, tc.pack, c.Width)
			}
			if !tc.pack {
				return
			}
			if c.Width == 0 || c.Width > packMaxWidth {
				t.Fatalf("packed width %d out of range (0, %d]", c.Width, packMaxWidth)
			}
			// Per-slot decode.
			for i := 0; i < n; i++ {
				got := c.Value(i)
				if i%37 == 0 {
					if !got.IsNull() {
						t.Fatalf("slot %d: %v, want NULL", i, got)
					}
					continue
				}
				if got.AsInt() != tc.gen(i) {
					t.Fatalf("slot %d: %d, want %d", i, got.AsInt(), tc.gen(i))
				}
			}
			// Windowed unpack at awkward offsets (word-boundary straddles).
			for _, win := range [][2]int{{0, n}, {1, 64}, {63, 130}, {n - 65, n}} {
				dst := c.Unpack(win[0], win[1], nil)
				for i := win[0]; i < win[1]; i++ {
					if i%37 == 0 {
						continue // NULL slots carry garbage; the Nulls bitmap guards them
					}
					if dst[i-win[0]] != tc.gen(i) {
						t.Fatalf("window %v slot %d: %d, want %d", win, i, dst[i-win[0]], tc.gen(i))
					}
				}
			}
		})
	}
}

// TestColVecsWindows pins the borrowed-vector accessor: for every column
// encoding, the window's typed vector (or unpack scratch) must agree with
// the decoded row views over several awkward windows.
func TestColVecsWindows(t *testing.T) {
	s := testSchema()
	h := storage.NewHeap(s)
	fillHeap(t, h, storage.PageSize*SegmentPages, true)
	st := Build(h, 1)
	seg := st.Segments[0]
	vecs := make([]types.ColVec, len(seg.Cols))
	var scratch [][]int64
	for _, win := range [][2]int{{0, seg.Rows}, {5, 6}, {100, 1124}, {seg.Rows - 3, seg.Rows}} {
		lo, hi := win[0], win[1]
		scratch = seg.ColVecs(lo, hi, vecs, scratch)
		views := seg.Views(lo, hi)
		for ord := range seg.Cols {
			cv := vecs[ord]
			for i := 0; i < hi-lo; i++ {
				want := views[i][ord]
				null := cv.Nulls != nil && cv.Nulls[i]
				if want.IsNull() != null && cv.Ints != nil {
					t.Fatalf("window %v col %d slot %d: null %v, want %v", win, ord, i, null, want.IsNull())
				}
				if null || want.IsNull() {
					continue
				}
				switch {
				case cv.Ints != nil:
					if cv.Ints[i] != want.AsInt() {
						t.Fatalf("window %v col %d slot %d: int %d, want %d", win, ord, i, cv.Ints[i], want.AsInt())
					}
				case cv.Floats != nil:
					if cv.Floats[i] != want.AsFloat() {
						t.Fatalf("window %v col %d slot %d: float %v, want %v", win, ord, i, cv.Floats[i], want.AsFloat())
					}
				case cv.Codes != nil:
					if cv.Dict[cv.Codes[i]] != want.AsString() {
						t.Fatalf("window %v col %d slot %d: code %q, want %q", win, ord, i, cv.Dict[cv.Codes[i]], want.AsString())
					}
				}
			}
		}
	}
}
