package colstore

import (
	"prefdb/internal/expr"
	"prefdb/internal/schema"
	"prefdb/internal/types"
)

// Pred is one sargable filter conjunct normalized to column <op> literal,
// with the column resolved to its ordinal in the table schema. Zone-map
// pruning consults these before a segment is scanned.
type Pred struct {
	Ord int
	Op  expr.Op
	Lit types.Value
}

// PredsFrom extracts the prunable conjuncts of a pushed-down filter: plain
// comparisons between a column of s and a non-NULL literal (BindColLit's
// shape, the same one index selection and selectivity estimation use).
// Other conjuncts still run as kernels; they just cannot skip segments.
// NULL literals are excluded conservatively even though such comparisons
// reject every row — the filter kernel handles them and pruning stays
// simple.
func PredsFrom(s *schema.Schema, conjuncts []expr.Node) []Pred {
	var preds []Pred
	for _, c := range conjuncts {
		b, ok := c.(expr.Bin)
		if !ok {
			continue
		}
		col, lit, op, ok := expr.BindColLit(s, b)
		if !ok || lit.IsNull() {
			continue
		}
		ord, err := s.IndexOf(col.Table, col.Name)
		if err != nil {
			continue
		}
		preds = append(preds, Pred{Ord: ord, Op: op, Lit: lit})
	}
	return preds
}

// Skip reports whether the segment's zone maps prove that no live row can
// satisfy every pred, so the scan may drop the whole segment unread.
//
// Soundness rests on the engine's three-valued comparison semantics
// (internal/expr): a comparison with a NULL operand or between incomparable
// kinds yields NULL, which the filter rejects. Hence a segment skips on a
// conjunct when (a) every live value of the column is NULL, (b) the
// literal's kind is incomparable with the column's uniformly typed values,
// or (c) the [Min, Max] range excludes the comparison. Raw-encoded columns
// publish no range (Zone.Valid is false) and never prune.
func (seg *Segment) Skip(preds []Pred) bool {
	if seg.Live == 0 {
		return false // empty segments are elided by the scan itself
	}
	for _, p := range preds {
		z := &seg.Cols[p.Ord].Zone
		if z.NonNull == 0 {
			return true // all live rows NULL in this column: conjunct rejects all
		}
		if !z.Valid {
			continue
		}
		cmpMin, okMin := types.Compare(p.Lit, z.Min)
		cmpMax, okMax := types.Compare(p.Lit, z.Max)
		if !okMin || !okMax {
			// The column is uniformly kinded (Valid implies the typed
			// encoding), so one incomparable bound means every row
			// comparison yields NULL and rejects.
			return true
		}
		switch p.Op {
		case expr.OpEq:
			if cmpMin < 0 || cmpMax > 0 {
				return true
			}
		case expr.OpNe:
			if cmpMin == 0 && cmpMax == 0 {
				return true // min == lit == max: every row equals the literal
			}
		case expr.OpLt: // col < lit: skip when min >= lit
			if cmpMin <= 0 {
				return true
			}
		case expr.OpLe: // col <= lit: skip when min > lit
			if cmpMin < 0 {
				return true
			}
		case expr.OpGt: // col > lit: skip when max <= lit
			if cmpMax >= 0 {
				return true
			}
		case expr.OpGe: // col >= lit: skip when max < lit
			if cmpMax > 0 {
				return true
			}
		}
	}
	return false
}

// EstimateSkip counts how many of the store's non-empty segments the preds
// would skip, for plan annotation and selectivity refinement. It is exact
// for the store it is called on (pruning is deterministic metadata
// arithmetic), but only an estimate for the plan, since the store may be
// rebuilt before execution.
func (st *Store) EstimateSkip(preds []Pred) (segments, skipped int) {
	for _, seg := range st.Segments {
		if seg.Live == 0 {
			continue
		}
		segments++
		if seg.Skip(preds) {
			skipped++
		}
	}
	return segments, skipped
}
