package pref

import (
	"math"
	"testing"
	"testing/quick"

	"prefdb/internal/expr"
	"prefdb/internal/schema"
	"prefdb/internal/types"
)

func TestPreferenceConstructorsAndValidate(t *testing.T) {
	p := Constant("p3", "GENRES", expr.Eq("genre", types.Str("Comedy")), 1, 0.8)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.On[0] != "genres" {
		t.Errorf("relation should be lower-cased: %v", p.On)
	}
	if p.IsMultiRelational() {
		t.Error("single-relation preference misreported")
	}

	a := Atomic("p1", "movies", "m_id", types.Int(3), 0.8)
	if a.Conf != 1 {
		t.Errorf("atomic preference conf = %v, want 1", a.Conf)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}

	m := Membership("p7", []string{"MOVIES", "AWARDS"}, 1, 0.9)
	if !m.IsMultiRelational() {
		t.Error("membership preference should be multi-relational")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}

	bad := []Preference{
		{},
		{On: []string{"r"}},
		{On: []string{"r"}, Cond: expr.TrueLiteral()},
		{On: []string{"r"}, Cond: expr.TrueLiteral(), Score: expr.TrueLiteral(), Conf: 1.5},
		{On: []string{"r"}, Cond: expr.TrueLiteral(), Score: expr.TrueLiteral(), Conf: -0.1},
		{On: []string{""}, Cond: expr.TrueLiteral(), Score: expr.TrueLiteral(), Conf: 0.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad preference %d validated", i)
		}
	}
}

func TestCovers(t *testing.T) {
	p := Membership("p7", []string{"movies", "awards"}, 1, 0.9)
	if !p.Covers(map[string]bool{"movies": true, "awards": true, "genres": true}) {
		t.Error("Covers should hold")
	}
	if p.Covers(map[string]bool{"movies": true}) {
		t.Error("Covers should fail for missing relation")
	}
}

func TestStringAndLabel(t *testing.T) {
	p := Constant("p3", "genres", expr.Eq("genre", types.Str("Comedy")), 1, 0.8)
	want := "p3[genres] = (σ (genre = 'Comedy'), 1, 0.80)"
	if got := p.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if p.Label() != "p3" {
		t.Errorf("Label = %q", p.Label())
	}
	p.Name = ""
	if p.Label() == "" {
		t.Error("unnamed Label should fall back to rendering")
	}
}

func TestSortByName(t *testing.T) {
	ps := []Preference{
		Constant("b", "r", expr.TrueLiteral(), 1, 1),
		Constant("a", "r", expr.TrueLiteral(), 1, 1),
	}
	SortByName(ps)
	if ps[0].Name != "a" {
		t.Errorf("sorted order = %v", []string{ps[0].Name, ps[1].Name})
	}
}

// --- aggregate functions ---

func allAggregates() []Aggregate {
	return []Aggregate{FSum{}, FMax{}, FMaxScore{}, FMult{}}
}

func TestAggregateIdentity(t *testing.T) {
	x := types.NewSC(0.7, 0.4)
	for _, f := range allAggregates() {
		if got := f.Combine(types.Bottom(), x); got != x {
			t.Errorf("%s: F(⊥, x) = %v, want %v", f.Name(), got, x)
		}
		if got := f.Combine(x, types.Bottom()); got != x {
			t.Errorf("%s: F(x, ⊥) = %v, want %v", f.Name(), got, x)
		}
		if got := f.Combine(types.Bottom(), types.Bottom()); !got.IsBottom() {
			t.Errorf("%s: F(⊥, ⊥) = %v, want ⊥", f.Name(), got)
		}
	}
}

func TestFSumWeightedSum(t *testing.T) {
	// Paper's F_S: score = Σ C_k·S_k / Σ C_k, conf = Σ C_k.
	got := FSum{}.Combine(types.NewSC(1.0, 0.8), types.NewSC(0.5, 0.2))
	wantScore := (0.8*1.0 + 0.2*0.5) / 1.0
	if math.Abs(got.Score-wantScore) > 1e-12 || math.Abs(got.Conf-1.0) > 1e-12 {
		t.Errorf("FSum = %v, want ⟨%v,1⟩", got, wantScore)
	}
	// Lower-confidence scores contribute less.
	hi := FSum{}.Combine(types.NewSC(1.0, 0.9), types.NewSC(0.0, 0.1))
	lo := FSum{}.Combine(types.NewSC(1.0, 0.1), types.NewSC(0.0, 0.9))
	if hi.Score <= lo.Score {
		t.Errorf("confidence weighting broken: %v vs %v", hi, lo)
	}
	// Zero total confidence: score collapses to 0 rather than dividing by 0.
	z := FSum{}.Combine(types.NewSC(1, 0), types.NewSC(1, 0))
	if z.Score != 0 || z.Conf != 0 || z.IsBottom() {
		t.Errorf("zero-conf FSum = %v", z)
	}
}

func TestFMaxPicksHighestConfidence(t *testing.T) {
	a, b := types.NewSC(0.2, 0.9), types.NewSC(0.9, 0.5)
	if got := (FMax{}).Combine(a, b); got != a {
		t.Errorf("FMax = %v, want %v", got, a)
	}
	// Tie on confidence → higher score wins, both orders.
	x, y := types.NewSC(0.3, 0.5), types.NewSC(0.6, 0.5)
	if (FMax{}).Combine(x, y) != y || (FMax{}).Combine(y, x) != y {
		t.Error("FMax tie-break not commutative")
	}
}

func TestFMaxScoreAndFMult(t *testing.T) {
	a, b := types.NewSC(0.2, 0.9), types.NewSC(0.9, 0.5)
	if got := (FMaxScore{}).Combine(a, b); got != b {
		t.Errorf("FMaxScore = %v, want %v", got, b)
	}
	got := FMult{}.Combine(types.NewSC(0.5, 0.8), types.NewSC(0.5, 0.5))
	if math.Abs(got.Score-0.25) > 1e-12 || math.Abs(got.Conf-0.4) > 1e-12 {
		t.Errorf("FMult = %v", got)
	}
}

func randSC(s, c uint8, known bool) types.SC {
	if !known {
		return types.Bottom()
	}
	return types.NewSC(float64(s)/255, float64(c)/255)
}

func TestAggregateCommutativityProperty(t *testing.T) {
	for _, f := range allAggregates() {
		f := f
		prop := func(s1, c1, s2, c2 uint8, k1, k2 bool) bool {
			a, b := randSC(s1, c1, k1), randSC(s2, c2, k2)
			return f.Combine(a, b).ApproxEqual(f.Combine(b, a), 1e-9)
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Errorf("%s not commutative: %v", f.Name(), err)
		}
	}
}

func TestAggregateAssociativityProperty(t *testing.T) {
	for _, f := range allAggregates() {
		f := f
		prop := func(s1, c1, s2, c2, s3, c3 uint8, k1, k2, k3 bool) bool {
			a, b, c := randSC(s1, c1, k1), randSC(s2, c2, k2), randSC(s3, c3, k3)
			l := f.Combine(f.Combine(a, b), c)
			r := f.Combine(a, f.Combine(b, c))
			return l.ApproxEqual(r, 1e-9)
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Errorf("%s not associative: %v", f.Name(), err)
		}
	}
}

func TestCombineAll(t *testing.T) {
	got := CombineAll(FSum{}, types.NewSC(1, 1), types.NewSC(0, 1))
	if math.Abs(got.Score-0.5) > 1e-12 || math.Abs(got.Conf-2) > 1e-12 {
		t.Errorf("CombineAll = %v", got)
	}
	if !CombineAll(FSum{}).IsBottom() {
		t.Error("empty CombineAll should be ⊥")
	}
}

func TestLookupAggregate(t *testing.T) {
	for _, name := range AggregateNames() {
		f, err := LookupAggregate(name)
		if err != nil || f == nil {
			t.Errorf("LookupAggregate(%q): %v", name, err)
		}
	}
	if f, err := LookupAggregate("SUM"); err != nil || f.Name() != "sum" {
		t.Error("lookup should be case-insensitive")
	}
	if _, err := LookupAggregate("nope"); err == nil {
		t.Error("unknown aggregate should error")
	}
}

// --- scoring functions ---

func scoreSchema() *schema.Schema {
	return schema.New(
		schema.Column{Name: "rating", Kind: types.KindFloat},
		schema.Column{Name: "year", Kind: types.KindInt},
		schema.Column{Name: "duration", Kind: types.KindInt},
	)
}

func evalScore(t *testing.T, n expr.Node, row []types.Value) types.Value {
	t.Helper()
	c, err := expr.Compile(n, scoreSchema(), Functions())
	if err != nil {
		t.Fatalf("compile %s: %v", n, err)
	}
	return c.Eval(row)
}

func TestScoringFunctions(t *testing.T) {
	row := []types.Value{types.Float(8.0), types.Int(2008), types.Int(100)}
	cases := []struct {
		n    expr.Node
		want float64
	}{
		{Linear("rating", 0.1), 0.8},              // S_r(rating) = 0.1·rating
		{Recency("year", 2011), 2008.0 / 2011.0},  // S_m(year, 2011)
		{Around("duration", 120), 1 - 20.0/120.0}, // S_d(duration, 120)
		{expr.Call{Name: "step", Args: []expr.Node{expr.ColRef("year"), expr.Lit{Val: types.Int(2000)}}}, 1},
		{expr.Call{Name: "step", Args: []expr.Node{expr.ColRef("year"), expr.Lit{Val: types.Int(2010)}}}, 0},
		{expr.Call{Name: "ramp", Args: []expr.Node{expr.ColRef("year"), expr.Lit{Val: types.Int(2000)}, expr.Lit{Val: types.Int(2010)}}}, 0.8},
		{expr.Call{Name: "gauss", Args: []expr.Node{expr.ColRef("duration"), expr.Lit{Val: types.Int(100)}, expr.Lit{Val: types.Int(10)}}}, 1},
		{expr.Call{Name: "inverse", Args: []expr.Node{expr.ColRef("duration"), expr.Lit{Val: types.Int(100)}}}, 0.5},
		{expr.Call{Name: "clamp", Args: []expr.Node{expr.Lit{Val: types.Float(1.7)}}}, 1},
		{expr.Call{Name: "clamp", Args: []expr.Node{expr.Lit{Val: types.Float(-0.3)}}}, 0},
	}
	for _, c := range cases {
		got := evalScore(t, c.n, row)
		if got.IsNull() || math.Abs(got.AsFloat()-c.want) > 1e-12 {
			t.Errorf("%s = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestScoringClampedAndNullSafe(t *testing.T) {
	// linear(rating, 0.5) with rating 8 = 4 → clamped to 1.
	row := []types.Value{types.Float(8.0), types.Int(0), types.Int(0)}
	if got := evalScore(t, Linear("rating", 0.5), row); got.AsFloat() != 1 {
		t.Errorf("clamp high = %v", got)
	}
	// NULL input yields NULL (⊥ score for the tuple).
	nullRow := []types.Value{types.Null(), types.Int(2000), types.Int(100)}
	if got := evalScore(t, Linear("rating", 0.1), nullRow); !got.IsNull() {
		t.Errorf("NULL input = %v, want NULL", got)
	}
	// Division-by-zero style guards.
	if got := evalScore(t, Recency("year", 0), row); got.AsFloat() != 0 {
		t.Errorf("recency ref=0 = %v", got)
	}
	if got := evalScore(t, Around("year", 0), row); got.AsFloat() != 0 {
		t.Errorf("around target=0 = %v", got)
	}
}

func TestWeightedScoring(t *testing.T) {
	// The paper's p5: 0.5·S_m(year,2011) + 0.5·S_d(duration,120).
	row := []types.Value{types.Float(5), types.Int(2008), types.Int(100)}
	n := Weighted(0.5, Recency("year", 2011), 0.5, Around("duration", 120))
	want := 0.5*(2008.0/2011.0) + 0.5*(1-20.0/120.0)
	got := evalScore(t, n, row)
	if math.Abs(got.AsFloat()-want) > 1e-12 {
		t.Errorf("weighted = %v, want %v", got, want)
	}
}

func TestScoringRangeProperty(t *testing.T) {
	// Property: every scoring function stays within [0,1] for random input.
	reg := Functions()
	names := []string{"linear", "recency", "around", "step", "inverse"}
	prop := func(x, p int16) bool {
		for _, name := range names {
			f, _ := reg.Lookup(name)
			v := f.Eval([]types.Value{types.Int(int64(x)), types.Int(int64(p))})
			if v.IsNull() {
				continue
			}
			s := v.AsFloat()
			if s < 0 || s > 1 || math.IsNaN(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp01(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0.5, 0.5}, {-1, 0}, {2, 1}, {0, 0}, {1, 1}, {math.NaN(), 0},
	}
	for _, c := range cases {
		if got := Clamp01(c.in); got != c.want {
			t.Errorf("Clamp01(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
