package pref

import (
	"fmt"
	"strings"

	"prefdb/internal/types"
)

// Aggregate combines two score-confidence pairs into one (Definition 3).
// Implementations must be associative and commutative with identity ⟨⊥,0⟩,
// so that the order of preference evaluation does not change the final pair
// (Property 4.3 rests on this).
type Aggregate interface {
	// Name is the registry key, e.g. "sum".
	Name() string
	// Combine merges two pairs. Implementations must satisfy
	// Combine(⟨⊥,0⟩, x) = x and Combine(x, ⟨⊥,0⟩) = x.
	Combine(a, b types.SC) types.SC
}

// FSum is the paper's F_S: the combined score is the confidence-weighted
// sum of the input scores and the combined confidence is the sum of input
// confidences. Sum "better captures how many preferences have been
// satisfied ... and maintains the diversity of individual values".
type FSum struct{}

// Name implements Aggregate.
func (FSum) Name() string { return "sum" }

// Combine implements Aggregate.
func (FSum) Combine(a, b types.SC) types.SC {
	if a.IsBottom() {
		return b
	}
	if b.IsBottom() {
		return a
	}
	conf := a.Conf + b.Conf
	var score float64
	if conf > 0 {
		score = (a.Conf*a.Score + b.Conf*b.Score) / conf
	}
	return types.NewSC(score, conf)
}

// FMax is the paper's F_max: the result is the input pair with the maximum
// confidence ("the tuple score should be determined by the preference with
// the highest confidence"). Confidence ties break towards the higher score
// so the function stays commutative and associative.
type FMax struct{}

// Name implements Aggregate.
func (FMax) Name() string { return "max" }

// Combine implements Aggregate.
func (FMax) Combine(a, b types.SC) types.SC {
	if a.IsBottom() {
		return b
	}
	if b.IsBottom() {
		return a
	}
	switch {
	case a.Conf > b.Conf:
		return a
	case b.Conf > a.Conf:
		return b
	case a.Score >= b.Score:
		return a
	default:
		return b
	}
}

// FMaxScore keeps the pair with the maximum score (ties towards higher
// confidence) — an optimistic policy: a tuple is as good as its best match.
type FMaxScore struct{}

// Name implements Aggregate.
func (FMaxScore) Name() string { return "maxscore" }

// Combine implements Aggregate.
func (FMaxScore) Combine(a, b types.SC) types.SC {
	if a.IsBottom() {
		return b
	}
	if b.IsBottom() {
		return a
	}
	switch {
	case a.Score > b.Score:
		return a
	case b.Score > a.Score:
		return b
	case a.Conf >= b.Conf:
		return a
	default:
		return b
	}
}

// FMult multiplies scores and confidences — a conjunctive policy where a
// tuple must satisfy every preference well to keep a high score.
type FMult struct{}

// Name implements Aggregate.
func (FMult) Name() string { return "mult" }

// Combine implements Aggregate.
func (FMult) Combine(a, b types.SC) types.SC {
	if a.IsBottom() {
		return b
	}
	if b.IsBottom() {
		return a
	}
	return types.NewSC(a.Score*b.Score, a.Conf*b.Conf)
}

// CombineAll folds an aggregate over any number of pairs, starting from the
// identity ⟨⊥,0⟩.
func CombineAll(f Aggregate, pairs ...types.SC) types.SC {
	acc := types.Bottom()
	for _, p := range pairs {
		acc = f.Combine(acc, p)
	}
	return acc
}

// Aggregates resolves aggregate functions by name.
var builtinAggregates = map[string]Aggregate{
	"sum":      FSum{},
	"max":      FMax{},
	"maxscore": FMaxScore{},
	"mult":     FMult{},
}

// LookupAggregate resolves an aggregate by name (case-insensitive).
func LookupAggregate(name string) (Aggregate, error) {
	f, ok := builtinAggregates[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("pref: unknown aggregate function %q (known: sum, max, maxscore, mult)", name)
	}
	return f, nil
}

// AggregateNames lists the registered aggregate function names.
func AggregateNames() []string { return []string{"max", "maxscore", "mult", "sum"} }
