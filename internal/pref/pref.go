// Package pref implements the preference model of Arvanitis & Koutrika
// (ICDE 2012): a preference is a triple (σ_φ, S, C) — a conditional part
// selecting the affected tuples, a scoring function mapping them to [0,1],
// and a confidence constant capturing how certain the preference is.
// The package also provides the aggregate functions that combine
// score-confidence pairs (F_S, F_max, ...) and the scoring-function library
// used inside preference scoring expressions.
package pref

import (
	"fmt"
	"sort"
	"strings"

	"prefdb/internal/expr"
	"prefdb/internal/types"
)

// Preference is p = (σ_φ, S, C) over one relation or a product of
// relations (Definition 1).
type Preference struct {
	// Name is an optional label used in plans and explain output.
	Name string
	// On lists the relations (by name or alias, lower-case) over which the
	// preference is defined. One entry for single-relation preferences;
	// several for multi-relational preferences such as the paper's p6 on
	// MOVIES × GENRES. A membership preference (p7) uses Cond = TRUE over a
	// join.
	On []string
	// Cond is the conditional part σ_φ: which tuples are affected. It acts
	// as a soft constraint — it scopes scoring, it never filters tuples.
	Cond expr.Node
	// Score is the scoring part: an expression over the tuple's attributes
	// evaluating to a float, clamped into [0,1]. A literal expression
	// assigns a constant score.
	Score expr.Node
	// Conf is the confidence C in [0,1]: 1 for explicit user preferences,
	// lower for learnt ones.
	Conf float64
}

// New builds a single-relation preference.
func New(name, relation string, cond, score expr.Node, conf float64) Preference {
	return Preference{Name: name, On: []string{strings.ToLower(relation)}, Cond: cond, Score: score, Conf: conf}
}

// Constant builds a preference assigning a constant score to every tuple
// matching cond — e.g. the paper's p3: (σ_genre='Comedy', 1, 0.8).
func Constant(name, relation string, cond expr.Node, score, conf float64) Preference {
	return New(name, relation, cond, expr.Lit{Val: types.Float(score)}, conf)
}

// Atomic builds an atomic preference: a user's rating of a single tuple,
// identified by key column = key value, with confidence 1 (the paper's p1,
// p2: directly provided, so certain).
func Atomic(name, relation, keyCol string, key types.Value, score float64) Preference {
	return New(name, relation, expr.Eq(keyCol, key), expr.Lit{Val: types.Float(score)}, 1)
}

// Membership builds a membership preference: tuples having a join partner
// in another relation are preferred (the paper's p7 over MOVIES ⋈ AWARDS,
// expressed as (σ_true, 1, conf)).
func Membership(name string, relations []string, score, conf float64) Preference {
	on := make([]string, len(relations))
	for i, r := range relations {
		on[i] = strings.ToLower(r)
	}
	return Preference{Name: name, On: on, Cond: expr.TrueLiteral(), Score: expr.Lit{Val: types.Float(score)}, Conf: conf}
}

// Validate checks structural sanity: a target relation, a condition, a
// scoring expression and a confidence within [0,1].
func (p Preference) Validate() error {
	if len(p.On) == 0 {
		return fmt.Errorf("pref: preference %q has no target relation", p.Name)
	}
	for _, r := range p.On {
		if r == "" {
			return fmt.Errorf("pref: preference %q has an empty target relation", p.Name)
		}
	}
	if p.Cond == nil {
		return fmt.Errorf("pref: preference %q has no conditional part", p.Name)
	}
	if p.Score == nil {
		return fmt.Errorf("pref: preference %q has no scoring part", p.Name)
	}
	if p.Conf < 0 || p.Conf > 1 {
		return fmt.Errorf("pref: preference %q has confidence %v outside [0,1]", p.Name, p.Conf)
	}
	return nil
}

// IsMultiRelational reports whether the preference is defined on a product
// of relations.
func (p Preference) IsMultiRelational() bool { return len(p.On) > 1 }

// Covers reports whether the preference's target relations are all within
// the given set of (lower-case) relation names.
func (p Preference) Covers(relations map[string]bool) bool {
	for _, r := range p.On {
		if !relations[r] {
			return false
		}
	}
	return true
}

// Label returns the display name, falling back to a rendering of the triple.
func (p Preference) Label() string {
	if p.Name != "" {
		return p.Name
	}
	return p.String()
}

// String renders the preference as p[R] = (σ_cond, score, conf).
func (p Preference) String() string {
	rels := strings.Join(p.On, "×")
	name := p.Name
	if name == "" {
		name = "p"
	}
	return fmt.Sprintf("%s[%s] = (σ %s, %s, %.2f)", name, rels, p.Cond, p.Score, p.Conf)
}

// SortByName orders a preference slice by name then rendering, giving
// deterministic plans for identical inputs.
func SortByName(ps []Preference) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Name != ps[j].Name {
			return ps[i].Name < ps[j].Name
		}
		return ps[i].String() < ps[j].String()
	})
}
