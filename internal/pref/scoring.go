package pref

import (
	"math"

	"prefdb/internal/expr"
	"prefdb/internal/types"
)

// Functions returns an expression-function registry extended with the
// scoring-function library used in preference scoring parts. Every scoring
// function yields a float clamped into [0,1] (NULL inputs yield NULL, i.e.
// the preference assigns ⊥ to that tuple).
//
// The library includes the paper's example functions:
//
//	linear(x, a)       S_r:  a·x                  (e.g. 0.1·rating)
//	recency(x, ref)    S_m:  x/ref                (newer years score higher)
//	around(x, t)       S_d:  1 − |x − t|/t        (peak at t, e.g. ~120 min)
//
// plus generally useful shapes:
//
//	ramp(x, lo, hi)    0 below lo, 1 above hi, linear in between
//	gauss(x, mu, sig)  exp(−(x−mu)²/2sig²)
//	step(x, t)         1 if x ≥ t else 0
//	inverse(x, scale)  scale/(scale+x)            (smaller is better)
//	clamp(x)           clamp into [0,1]
func Functions() *expr.Registry {
	r := expr.NewRegistry()
	register := func(name string, minArgs, maxArgs int, f func(a []float64) float64) {
		r.MustRegister(&expr.Func{
			Name:    name,
			MinArgs: minArgs,
			MaxArgs: maxArgs,
			Kind:    types.KindFloat,
			Eval: func(args []types.Value) types.Value {
				fs := make([]float64, len(args))
				for i, v := range args {
					if v.IsNull() {
						return types.Null()
					}
					if !v.IsNumeric() {
						return types.Null()
					}
					fs[i] = v.AsFloat()
				}
				return types.Float(Clamp01(f(fs)))
			},
			// The clamp belongs to the kernel so the vectorized path
			// (expr.Func.Floats convention) matches Eval exactly.
			Floats: func(a []float64) float64 { return Clamp01(f(a)) },
		})
	}
	register("linear", 2, 2, func(a []float64) float64 { return a[0] * a[1] })
	register("recency", 2, 2, func(a []float64) float64 {
		if a[1] == 0 {
			return 0
		}
		return a[0] / a[1]
	})
	register("around", 2, 2, func(a []float64) float64 {
		if a[1] == 0 {
			return 0
		}
		return 1 - math.Abs(a[0]-a[1])/a[1]
	})
	register("ramp", 3, 3, func(a []float64) float64 {
		x, lo, hi := a[0], a[1], a[2]
		if hi <= lo {
			if x >= hi {
				return 1
			}
			return 0
		}
		return (x - lo) / (hi - lo)
	})
	register("gauss", 3, 3, func(a []float64) float64 {
		x, mu, sig := a[0], a[1], a[2]
		if sig == 0 {
			if x == mu {
				return 1
			}
			return 0
		}
		d := (x - mu) / sig
		return math.Exp(-d * d / 2)
	})
	register("step", 2, 2, func(a []float64) float64 {
		if a[0] >= a[1] {
			return 1
		}
		return 0
	})
	register("inverse", 2, 2, func(a []float64) float64 {
		if a[1]+a[0] == 0 {
			return 1
		}
		return a[1] / (a[1] + a[0])
	})
	register("clamp", 1, 1, func(a []float64) float64 { return a[0] })
	return r
}

// Clamp01 clamps a score into [0,1]; NaN clamps to 0.
func Clamp01(f float64) float64 {
	switch {
	case math.IsNaN(f), f < 0:
		return 0
	case f > 1:
		return 1
	default:
		return f
	}
}

// Linear builds the scoring AST linear(col, a) — the paper's S_r.
func Linear(col string, a float64) expr.Node {
	return expr.Call{Name: "linear", Args: []expr.Node{expr.ColRef(col), expr.Lit{Val: types.Float(a)}}}
}

// Recency builds recency(col, ref) — the paper's S_m(year, x) = year/x.
func Recency(col string, ref float64) expr.Node {
	return expr.Call{Name: "recency", Args: []expr.Node{expr.ColRef(col), expr.Lit{Val: types.Float(ref)}}}
}

// Around builds around(col, target) — the paper's S_d(duration, x).
func Around(col string, target float64) expr.Node {
	return expr.Call{Name: "around", Args: []expr.Node{expr.ColRef(col), expr.Lit{Val: types.Float(target)}}}
}

// Weighted builds w1·e1 + w2·e2 — multi-attribute scoring like the paper's
// p5 = 0.5·S_m(year,2011) + 0.5·S_d(duration,120).
func Weighted(w1 float64, e1 expr.Node, w2 float64, e2 expr.Node) expr.Node {
	return expr.Bin{Op: expr.OpAdd,
		L: expr.Bin{Op: expr.OpMul, L: expr.Lit{Val: types.Float(w1)}, R: e1},
		R: expr.Bin{Op: expr.OpMul, L: expr.Lit{Val: types.Float(w2)}, R: e2},
	}
}
