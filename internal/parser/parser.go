package parser

import (
	"fmt"
	"strconv"
	"strings"

	"prefdb/internal/expr"
	"prefdb/internal/types"
)

// Parse parses one statement.
func Parse(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if !p.atEOF() {
		return nil, fmt.Errorf("parser: unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

// ParseQuery parses a SELECT statement.
func ParseQuery(src string) (*SelectStmt, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	q, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("parser: expected a SELECT statement, got %T", stmt)
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token   { return p.toks[p.pos] }
func (p *parser) next() token   { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool   { return p.peek().kind == tokEOF }
func (p *parser) save() int     { return p.pos }
func (p *parser) restore(m int) { p.pos = m }

// acceptKw consumes an identifier keyword (case-insensitive).
func (p *parser) acceptKw(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

// accept consumes a symbol token.
func (p *parser) accept(sym string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return fmt.Errorf("parser: expected %s, got %s", strings.ToUpper(kw), p.peek())
	}
	return nil
}

func (p *parser) expect(sym string) error {
	if !p.accept(sym) {
		return fmt.Errorf("parser: expected %q, got %s", sym, p.peek())
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("parser: expected identifier, got %s", t)
	}
	p.pos++
	return t.text, nil
}

var reservedAfterTable = map[string]bool{
	"join": true, "on": true, "where": true, "preferring": true,
	"using": true, "top": true, "threshold": true, "skyline": true,
	"rank": true, "as": true, "and": true, "or": true, "inner": true,
	"union": true, "intersect": true, "except": true, "minus": true,
	"order": true, "limit": true, "offset": true,
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.acceptKw("select"):
		return p.parseCompoundSelect()
	case p.acceptKw("create"):
		return p.parseCreate()
	case p.acceptKw("insert"):
		return p.parseInsert()
	case p.acceptKw("delete"):
		return p.parseDelete()
	case p.acceptKw("update"):
		return p.parseUpdate()
	case p.acceptKw("explain"):
		if err := p.expectKw("select"); err != nil {
			return nil, err
		}
		q, err := p.parseCompoundSelect()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Query: q}, nil
	default:
		return nil, fmt.Errorf("parser: expected SELECT, CREATE, INSERT, UPDATE or DELETE, got %s", p.peek())
	}
}

// parseCompoundSelect parses a query core plus any UNION/INTERSECT/EXCEPT
// arms, then the trailing USING and filtering clauses which apply to the
// whole compound.
func (p *parser) parseCompoundSelect() (*SelectStmt, error) {
	q, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptKw("union"):
			op = "union"
		case p.acceptKw("intersect"):
			op = "intersect"
		case p.acceptKw("except"), p.acceptKw("minus"):
			op = "except"
		default:
			op = ""
		}
		if op == "" {
			break
		}
		if err := p.expectKw("select"); err != nil {
			return nil, err
		}
		arm, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		q.SetOps = append(q.SetOps, SetOpClause{Op: op, Query: arm})
	}
	// USING and the filtering clause apply to the whole (possibly compound)
	// query and therefore parse after the last arm.
	if p.acceptKw("using") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		q.Using = strings.ToLower(name)
	}
	f, err := p.parseFilterClause()
	if err != nil {
		return nil, err
	}
	q.Filter = f
	if p.acceptKw("order") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.colRef()
			if err != nil {
				return nil, err
			}
			key := OrderKeyClause{Col: col}
			if p.acceptKw("desc") {
				key.Desc = true
			} else {
				p.acceptKw("asc")
			}
			q.OrderBy = append(q.OrderBy, key)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.acceptKw("limit") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("parser: expected a number after LIMIT, got %s", t)
		}
		p.pos++
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("parser: LIMIT requires a non-negative integer, got %q", t.text)
		}
		lc := &LimitClause{N: n}
		if p.acceptKw("offset") {
			t := p.peek()
			if t.kind != tokNumber {
				return nil, fmt.Errorf("parser: expected a number after OFFSET, got %s", t)
			}
			p.pos++
			m, err := strconv.Atoi(t.text)
			if err != nil || m < 0 {
				return nil, fmt.Errorf("parser: OFFSET requires a non-negative integer, got %q", t.text)
			}
			lc.Offset = m
		}
		q.Limit = lc
	}
	return q, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	q := &SelectStmt{}
	// Projection list.
	if p.accept("*") {
		q.Star = true
	} else {
		for {
			ref, err := p.colRef()
			if err != nil {
				return nil, err
			}
			q.Cols = append(q.Cols, ref)
			if !p.accept(",") {
				break
			}
		}
	}
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	first, err := p.tableRef()
	if err != nil {
		return nil, err
	}
	q.From = append(q.From, first)
	for {
		if p.accept(",") {
			t, err := p.tableRef()
			if err != nil {
				return nil, err
			}
			q.From = append(q.From, t)
			continue
		}
		if p.acceptKw("inner") {
			if err := p.expectKw("join"); err != nil {
				return nil, err
			}
		} else if !p.acceptKw("join") {
			break
		}
		t, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("on"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Joins = append(q.Joins, JoinClause{Table: t, On: cond})
	}
	if p.acceptKw("where") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Where = cond
	}
	if p.acceptKw("preferring") {
		for {
			pc, err := p.parsePrefClause()
			if err != nil {
				return nil, err
			}
			if pc.Name == "" {
				pc.Name = fmt.Sprintf("p%d", len(q.Preferring)+1)
			}
			q.Preferring = append(q.Preferring, pc)
			if !p.accept(",") {
				break
			}
		}
	}
	return q, nil
}

// parsePrefClause parses: cond SCORE expr CONF num ON rel[, within parens
// for multi-relational] [AS name]. The name stays empty unless AS is given;
// callers assign positional defaults.
func (p *parser) parsePrefClause() (PrefClause, error) {
	pc := PrefClause{}
	cond, err := p.parseExpr()
	if err != nil {
		return pc, err
	}
	pc.Cond = cond
	if err := p.expectKw("score"); err != nil {
		return pc, err
	}
	score, err := p.parseExpr()
	if err != nil {
		return pc, err
	}
	pc.Score = score
	if err := p.expectKw("conf"); err != nil {
		return pc, err
	}
	conf, err := p.number()
	if err != nil {
		return pc, err
	}
	pc.Conf = conf
	if err := p.expectKw("on"); err != nil {
		return pc, err
	}
	if p.accept("(") {
		for {
			rel, err := p.ident()
			if err != nil {
				return pc, err
			}
			pc.On = append(pc.On, strings.ToLower(rel))
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return pc, err
		}
	} else {
		rel, err := p.ident()
		if err != nil {
			return pc, err
		}
		pc.On = append(pc.On, strings.ToLower(rel))
	}
	if p.acceptKw("as") {
		name, err := p.ident()
		if err != nil {
			return pc, err
		}
		pc.Name = name
	}
	return pc, nil
}

func (p *parser) parseFilterClause() (*FilterClause, error) {
	switch {
	case p.acceptKw("top"):
		t := p.peek()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("parser: expected a number after TOP, got %s", t)
		}
		p.pos++
		k, err := strconv.Atoi(t.text)
		if err != nil || k <= 0 {
			return nil, fmt.Errorf("parser: TOP requires a positive integer, got %q", t.text)
		}
		f := &FilterClause{Kind: FilterTop, K: k}
		if p.acceptKw("by") {
			byConf, err := p.rankDim()
			if err != nil {
				return nil, err
			}
			f.ByConf = byConf
		}
		return f, nil
	case p.acceptKw("threshold"):
		byConf, err := p.rankDim()
		if err != nil {
			return nil, err
		}
		op, err := p.cmpOp()
		if err != nil {
			return nil, err
		}
		v, err := p.number()
		if err != nil {
			return nil, err
		}
		return &FilterClause{Kind: FilterThreshold, ByConf: byConf, Op: op, Value: v}, nil
	case p.acceptKw("skyline"):
		f := &FilterClause{Kind: FilterSkyline}
		if p.acceptKw("of") {
			for {
				col, err := p.colRef()
				if err != nil {
					return nil, err
				}
				var max bool
				switch {
				case p.acceptKw("max"):
					max = true
				case p.acceptKw("min"):
					max = false
				default:
					return nil, fmt.Errorf("parser: expected MAX or MIN after skyline dimension, got %s", p.peek())
				}
				f.Dims = append(f.Dims, SkyDimClause{Col: col, Max: max})
				if !p.accept(",") {
					break
				}
			}
		}
		return f, nil
	case p.acceptKw("rank"):
		f := &FilterClause{Kind: FilterRank}
		if p.acceptKw("by") {
			byConf, err := p.rankDim()
			if err != nil {
				return nil, err
			}
			f.ByConf = byConf
		}
		return f, nil
	default:
		return nil, nil
	}
}

func (p *parser) rankDim() (bool, error) {
	switch {
	case p.acceptKw("score"):
		return false, nil
	case p.acceptKw("conf"), p.acceptKw("confidence"):
		return true, nil
	default:
		return false, fmt.Errorf("parser: expected SCORE or CONF, got %s", p.peek())
	}
}

func (p *parser) cmpOp() (expr.Op, error) {
	for _, c := range []struct {
		sym string
		op  expr.Op
	}{
		{"<=", expr.OpLe}, {">=", expr.OpGe}, {"<>", expr.OpNe}, {"!=", expr.OpNe},
		{"=", expr.OpEq}, {"<", expr.OpLt}, {">", expr.OpGt},
	} {
		if p.accept(c.sym) {
			return c.op, nil
		}
	}
	return 0, fmt.Errorf("parser: expected a comparison operator, got %s", p.peek())
}

func (p *parser) number() (float64, error) {
	neg := p.accept("-")
	t := p.peek()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("parser: expected a number, got %s", t)
	}
	p.pos++
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, fmt.Errorf("parser: invalid number %q", t.text)
	}
	if neg {
		v = -v
	}
	return v, nil
}

func (p *parser) tableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	if reservedAfterTable[strings.ToLower(name)] {
		return TableRef{}, fmt.Errorf("parser: expected a table name, got keyword %q", name)
	}
	ref := TableRef{Table: strings.ToLower(name)}
	if p.acceptKw("as") {
		alias, err := p.ident()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = strings.ToLower(alias)
		return ref, nil
	}
	// Bare alias: an identifier that is not a clause keyword.
	t := p.peek()
	if t.kind == tokIdent && !reservedAfterTable[strings.ToLower(t.text)] {
		p.pos++
		ref.Alias = strings.ToLower(t.text)
	}
	return ref, nil
}

func (p *parser) colRef() (expr.Col, error) {
	name, err := p.ident()
	if err != nil {
		return expr.Col{}, err
	}
	if p.accept(".") {
		col, err := p.ident()
		if err != nil {
			return expr.Col{}, err
		}
		return expr.Col{Table: strings.ToLower(name), Name: strings.ToLower(col)}, nil
	}
	return expr.Col{Name: strings.ToLower(name)}, nil
}

// --- expressions ---

// parseExpr parses an OR-level expression.
func (p *parser) parseExpr() (expr.Node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = expr.Bin{Op: expr.OpOr, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (expr.Node, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("and") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = expr.Bin{Op: expr.OpAnd, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (expr.Node, error) {
	if p.acceptKw("not") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return expr.Un{Op: expr.OpNot, X: inner}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (expr.Node, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL.
	if p.acceptKw("is") {
		neg := p.acceptKw("not")
		if err := p.expectKw("null"); err != nil {
			return nil, err
		}
		return expr.IsNull{X: left, Negate: neg}, nil
	}
	// [NOT] BETWEEN / IN / LIKE.
	negate := false
	mark := p.save()
	if p.acceptKw("not") {
		negate = true
	}
	switch {
	case p.acceptKw("between"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return maybeNot(expr.Between{X: left, Lo: lo, Hi: hi}, negate), nil
	case p.acceptKw("in"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var list []expr.Node
		for {
			item, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			list = append(list, item)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return maybeNot(expr.In{X: left, List: list}, negate), nil
	case p.acceptKw("like"):
		t := p.peek()
		if t.kind != tokString {
			return nil, fmt.Errorf("parser: LIKE requires a string pattern, got %s", t)
		}
		p.pos++
		return maybeNot(expr.Like{X: left, Pattern: t.text}, negate), nil
	}
	if negate {
		p.restore(mark)
		return left, nil
	}
	// Plain comparison.
	for _, c := range []struct {
		sym string
		op  expr.Op
	}{
		{"<=", expr.OpLe}, {">=", expr.OpGe}, {"<>", expr.OpNe}, {"!=", expr.OpNe},
		{"==", expr.OpEq}, {"=", expr.OpEq}, {"<", expr.OpLt}, {">", expr.OpGt},
	} {
		if p.accept(c.sym) {
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return expr.Bin{Op: c.op, L: left, R: right}, nil
		}
	}
	return left, nil
}

func maybeNot(n expr.Node, negate bool) expr.Node {
	if negate {
		return expr.Un{Op: expr.OpNot, X: n}
	}
	return n
}

func (p *parser) parseAdditive() (expr.Node, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.Op
		switch {
		case p.accept("+"):
			op = expr.OpAdd
		case p.accept("-"):
			op = expr.OpSub
		default:
			return left, nil
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = expr.Bin{Op: op, L: left, R: right}
	}
}

func (p *parser) parseMultiplicative() (expr.Node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.Op
		switch {
		case p.accept("*"):
			op = expr.OpMul
		case p.accept("/"):
			op = expr.OpDiv
		case p.accept("%"):
			op = expr.OpMod
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = expr.Bin{Op: op, L: left, R: right}
	}
}

func (p *parser) parseUnary() (expr.Node, error) {
	if p.accept("-") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold -literal into a negative literal so -31 is a constant, not a
		// unary expression.
		if lit, ok := inner.(expr.Lit); ok && lit.Val.IsNumeric() {
			if lit.Val.Kind() == types.KindInt {
				return expr.Lit{Val: types.Int(-lit.Val.AsInt())}, nil
			}
			return expr.Lit{Val: types.Float(-lit.Val.AsFloat())}, nil
		}
		return expr.Un{Op: expr.OpNeg, X: inner}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr.Node, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.pos++
		if strings.ContainsRune(t.text, '.') {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("parser: invalid number %q", t.text)
			}
			return expr.Lit{Val: types.Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("parser: invalid integer %q", t.text)
		}
		return expr.Lit{Val: types.Int(i)}, nil

	case tokString:
		p.pos++
		return expr.Lit{Val: types.Str(t.text)}, nil

	case tokSymbol:
		if t.text == "(" {
			p.pos++
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return inner, nil
		}
		return nil, fmt.Errorf("parser: unexpected %s in expression", t)

	case tokIdent:
		switch strings.ToLower(t.text) {
		case "true":
			p.pos++
			return expr.Lit{Val: types.Bool(true)}, nil
		case "false":
			p.pos++
			return expr.Lit{Val: types.Bool(false)}, nil
		case "null":
			p.pos++
			return expr.Lit{Val: types.Null()}, nil
		}
		p.pos++
		// Function call?
		if p.accept("(") {
			var args []expr.Node
			if !p.accept(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.accept(",") {
						break
					}
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
			}
			return expr.Call{Name: strings.ToLower(t.text), Args: args}, nil
		}
		// Qualified or bare column.
		if p.accept(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return expr.Col{Table: strings.ToLower(t.text), Name: strings.ToLower(col)}, nil
		}
		return expr.Col{Name: strings.ToLower(t.text)}, nil

	default:
		return nil, fmt.Errorf("parser: unexpected %s in expression", t)
	}
}

// --- DDL / DML ---

func (p *parser) parseCreate() (Stmt, error) {
	switch {
	case p.acceptKw("table"):
		return p.parseCreateTable()
	case p.acceptKw("hash"):
		if err := p.expectKw("index"); err != nil {
			return nil, err
		}
		return p.parseCreateIndex(false)
	case p.acceptKw("btree"):
		if err := p.expectKw("index"); err != nil {
			return nil, err
		}
		return p.parseCreateIndex(true)
	case p.acceptKw("index"):
		return p.parseCreateIndex(false)
	default:
		return nil, fmt.Errorf("parser: expected TABLE or INDEX after CREATE, got %s", p.peek())
	}
}

func (p *parser) parseCreateTable() (Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	stmt := &CreateTableStmt{Name: strings.ToLower(name)}
	for {
		if p.acceptKw("primary") {
			if err := p.expectKw("key"); err != nil {
				return nil, err
			}
			if err := p.expect("("); err != nil {
				return nil, err
			}
			for {
				col, err := p.ident()
				if err != nil {
					return nil, err
				}
				stmt.Key = append(stmt.Key, strings.ToLower(col))
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		} else {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			typ, err := p.ident()
			if err != nil {
				return nil, err
			}
			kind, err := parseKind(typ)
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, ColumnDef{Name: strings.ToLower(col), Kind: kind})
		}
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if len(stmt.Columns) == 0 {
		return nil, fmt.Errorf("parser: CREATE TABLE %s has no columns", stmt.Name)
	}
	return stmt, nil
}

func parseKind(name string) (types.Kind, error) {
	switch strings.ToLower(name) {
	case "int", "integer", "bigint":
		return types.KindInt, nil
	case "float", "double", "real", "numeric":
		return types.KindFloat, nil
	case "text", "varchar", "string", "char":
		return types.KindString, nil
	case "bool", "boolean":
		return types.KindBool, nil
	default:
		return 0, fmt.Errorf("parser: unknown type %q (INT, FLOAT, TEXT, BOOL)", name)
	}
}

func (p *parser) parseCreateIndex(btree bool) (Stmt, error) {
	if err := p.expectKw("on"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return &CreateIndexStmt{Table: strings.ToLower(table), Col: strings.ToLower(col), BTree: btree}, nil
}

func (p *parser) parseInsert() (Stmt, error) {
	if err := p.expectKw("into"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: strings.ToLower(table)}
	if p.acceptKw("select") {
		q, err := p.parseCompoundSelect()
		if err != nil {
			return nil, err
		}
		stmt.Query = q
		return stmt, nil
	}
	if err := p.expectKw("values"); err != nil {
		return nil, err
	}
	for {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var row []types.Value
		for {
			v, err := p.literalValue()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.accept(",") {
			break
		}
	}
	return stmt, nil
}

func (p *parser) literalValue() (types.Value, error) {
	t := p.peek()
	switch {
	case t.kind == tokString:
		p.pos++
		return types.Str(t.text), nil
	case t.kind == tokNumber, t.kind == tokSymbol && t.text == "-":
		neg := p.accept("-")
		t = p.peek()
		if t.kind != tokNumber {
			return types.Value{}, fmt.Errorf("parser: expected a number, got %s", t)
		}
		p.pos++
		if strings.ContainsRune(t.text, '.') {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return types.Value{}, err
			}
			if neg {
				f = -f
			}
			return types.Float(f), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return types.Value{}, err
		}
		if neg {
			i = -i
		}
		return types.Int(i), nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "null"):
		p.pos++
		return types.Null(), nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "true"):
		p.pos++
		return types.Bool(true), nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "false"):
		p.pos++
		return types.Bool(false), nil
	default:
		return types.Value{}, fmt.Errorf("parser: expected a literal, got %s", t)
	}
}

func (p *parser) parseDelete() (Stmt, error) {
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: strings.ToLower(table)}
	if p.acceptKw("where") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = cond
	}
	return stmt, nil
}

func (p *parser) parseUpdate() (Stmt, error) {
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("set"); err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: strings.ToLower(table)}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		value, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Set = append(stmt.Set, Assignment{Col: strings.ToLower(col), Expr: value})
		if !p.accept(",") {
			break
		}
	}
	if p.acceptKw("where") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = cond
	}
	return stmt, nil
}
