// Package parser implements prefdb's query language: a SQL subset extended
// with a PREFERRING clause for preference triples, a USING clause for the
// aggregate function, and filtering clauses (TOP k BY, THRESHOLD, SKYLINE,
// RANK). It also parses the DDL/DML needed by the CLI (CREATE TABLE,
// CREATE INDEX, INSERT).
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer splits input into tokens. Keywords are returned as idents; the
// parser matches them case-insensitively.
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
		case c >= '0' && c <= '9', c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if sym := l.lexSymbol(); sym == "" {
				return nil, fmt.Errorf("parser: unexpected character %q at offset %d", c, l.pos)
			}
		}
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

func (l *lexer) lexNumber() error {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isDigit(c) {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("parser: unterminated string literal at offset %d", start)
}

// twoCharSymbols are matched before single characters.
var twoCharSymbols = []string{"<=", ">=", "<>", "!=", "=="}

func (l *lexer) lexSymbol() string {
	rest := l.src[l.pos:]
	for _, s := range twoCharSymbols {
		if strings.HasPrefix(rest, s) {
			l.toks = append(l.toks, token{kind: tokSymbol, text: s, pos: l.pos})
			l.pos += len(s)
			return s
		}
	}
	switch rest[0] {
	case '=', '<', '>', '(', ')', ',', '*', '+', '-', '/', '%', '.', ';':
		s := rest[:1]
		l.toks = append(l.toks, token{kind: tokSymbol, text: s, pos: l.pos})
		l.pos++
		return s
	}
	return ""
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }
func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
