package parser

import (
	"math/rand"
	"testing"

	"prefdb/internal/expr"
	"prefdb/internal/types"
)

// exprGen builds random expression ASTs whose String() form is valid
// dialect syntax, for parse round-trip checking.
type exprGen struct {
	r *rand.Rand
}

func (g *exprGen) gen(depth int) expr.Node {
	if depth <= 0 {
		return g.leaf()
	}
	switch g.r.Intn(10) {
	case 0:
		return expr.Bin{Op: expr.OpAnd, L: g.genBool(depth - 1), R: g.genBool(depth - 1)}
	case 1:
		return expr.Bin{Op: expr.OpOr, L: g.genBool(depth - 1), R: g.genBool(depth - 1)}
	case 2:
		return expr.Un{Op: expr.OpNot, X: g.genBool(depth - 1)}
	case 3:
		ops := []expr.Op{expr.OpEq, expr.OpNe, expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe}
		return expr.Bin{Op: ops[g.r.Intn(len(ops))], L: g.gen(depth - 1), R: g.gen(depth - 1)}
	case 4:
		ops := []expr.Op{expr.OpAdd, expr.OpSub, expr.OpMul, expr.OpDiv, expr.OpMod}
		return expr.Bin{Op: ops[g.r.Intn(len(ops))], L: g.gen(depth - 1), R: g.gen(depth - 1)}
	case 5:
		return expr.Between{X: g.leaf(), Lo: g.leaf(), Hi: g.leaf()}
	case 6:
		n := 1 + g.r.Intn(3)
		list := make([]expr.Node, n)
		for i := range list {
			list[i] = g.leaf()
		}
		return expr.In{X: g.leaf(), List: list}
	case 7:
		pats := []string{"%x%", "a_c", "abc%", "%", "_"}
		return expr.Like{X: expr.ColRef("title"), Pattern: pats[g.r.Intn(len(pats))]}
	case 8:
		return expr.IsNull{X: g.leaf(), Negate: g.r.Intn(2) == 0}
	default:
		args := make([]expr.Node, g.r.Intn(3))
		for i := range args {
			args[i] = g.leaf()
		}
		return expr.Call{Name: "f", Args: args}
	}
}

// genBool biases towards boolean-shaped nodes for AND/OR operands.
func (g *exprGen) genBool(depth int) expr.Node {
	if depth <= 0 {
		return expr.Bin{Op: expr.OpEq, L: g.leaf(), R: g.leaf()}
	}
	switch g.r.Intn(4) {
	case 0:
		return expr.Bin{Op: expr.OpAnd, L: g.genBool(depth - 1), R: g.genBool(depth - 1)}
	case 1:
		return expr.Un{Op: expr.OpNot, X: g.genBool(depth - 1)}
	default:
		ops := []expr.Op{expr.OpEq, expr.OpNe, expr.OpLt, expr.OpGe}
		return expr.Bin{Op: ops[g.r.Intn(len(ops))], L: g.gen(depth - 1), R: g.gen(depth - 1)}
	}
}

func (g *exprGen) leaf() expr.Node {
	switch g.r.Intn(5) {
	case 0:
		return expr.ColRef("a")
	case 1:
		return expr.ColRef("t.b")
	case 2:
		return expr.Lit{Val: types.Int(int64(g.r.Intn(200) - 100))}
	case 3:
		return expr.Lit{Val: types.Float(float64(g.r.Intn(100)) / 4)}
	default:
		return expr.Lit{Val: types.Str([]string{"x", "Comedy", "O''Brien"}[g.r.Intn(3)])}
	}
}

// TestExpressionParseRoundTrip checks that rendering a random expression
// and re-parsing it yields a structurally identical tree: the parser and
// the AST printer agree on the grammar.
func TestExpressionParseRoundTrip(t *testing.T) {
	g := &exprGen{r: rand.New(rand.NewSource(7))}
	for i := 0; i < 500; i++ {
		n := g.gen(4)
		src := n.String()
		q, err := ParseQuery("SELECT x FROM t WHERE " + src)
		if err != nil {
			t.Fatalf("iter %d: parse %q: %v", i, src, err)
		}
		if got := q.Where.String(); got != src {
			t.Fatalf("iter %d: round trip\n in: %s\nout: %s", i, src, got)
		}
	}
}
