package parser

import (
	"prefdb/internal/expr"
	"prefdb/internal/types"
)

// Stmt is any parsed statement.
type Stmt interface{ stmt() }

// SelectStmt is a preferential query:
//
//	SELECT cols FROM tables [WHERE cond]
//	[PREFERRING pref, ...] [USING agg] [filter clause]
type SelectStmt struct {
	// Star selects all columns.
	Star bool
	// Cols are the projected columns when Star is false.
	Cols []expr.Col
	// From lists the base relations with optional aliases.
	From []TableRef
	// Joins are explicit JOIN ... ON clauses applied left to right after
	// the first From entry.
	Joins []JoinClause
	// Where is the boolean filter, or nil.
	Where expr.Node
	// Preferring lists the preference triples, in query order.
	Preferring []PrefClause
	// Using names the aggregate function ("sum" when empty).
	Using string
	// Filter selects preferred tuples after evaluation, or nil for none.
	// For compound queries it applies to the whole set-operation result.
	Filter *FilterClause
	// SetOps chains further query cores onto this one with set operations
	// (UNION / INTERSECT / EXCEPT), applied left to right. Only the
	// outermost statement carries SetOps, Using and Filter.
	SetOps []SetOpClause
	// OrderBy sorts the final result by attribute columns (after
	// preference filtering); nil for no ordering.
	OrderBy []OrderKeyClause
	// Limit caps the final result; nil for no limit.
	Limit *LimitClause
}

// OrderKeyClause is one ORDER BY key.
type OrderKeyClause struct {
	Col  expr.Col
	Desc bool
}

// LimitClause is LIMIT n [OFFSET m].
type LimitClause struct {
	N      int
	Offset int
}

// SetOpClause is one UNION/INTERSECT/EXCEPT arm of a compound query.
type SetOpClause struct {
	// Op is "union", "intersect" or "except".
	Op string
	// Query is the right-hand query core (no Using/Filter/SetOps of its
	// own).
	Query *SelectStmt
}

// TableRef is a table name with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// AliasName returns the effective alias.
func (t TableRef) AliasName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// JoinClause is JOIN table [AS alias] ON cond.
type JoinClause struct {
	Table TableRef
	On    expr.Node
}

// PrefClause is one PREFERRING item:
//
//	cond SCORE expr CONF num ON relation[, ...] [AS name]
type PrefClause struct {
	Name  string
	Cond  expr.Node
	Score expr.Node
	Conf  float64
	// On lists the target relations (aliases); one entry for
	// single-relation preferences.
	On []string
}

// FilterKind enumerates the filtering clauses.
type FilterKind uint8

const (
	// FilterTop is TOP k BY score|conf.
	FilterTop FilterKind = iota
	// FilterThreshold is THRESHOLD score|conf <cmp> num.
	FilterThreshold
	// FilterSkyline is SKYLINE.
	FilterSkyline
	// FilterRank is RANK [BY score|conf].
	FilterRank
)

// SkyDimClause is one dimension of SKYLINE OF: a column and direction.
type SkyDimClause struct {
	Col expr.Col
	Max bool
}

// FilterClause captures the post-evaluation tuple filtering.
type FilterClause struct {
	Kind FilterKind
	// K is the limit for FilterTop.
	K int
	// ByConf selects the confidence dimension (default is score).
	ByConf bool
	// Op and Value parameterize FilterThreshold.
	Op    expr.Op
	Value float64
	// Dims parameterize FilterSkyline: SKYLINE OF col MAX|MIN, ...
	// (empty = the (score, conf) skyline).
	Dims []SkyDimClause
}

// CreateTableStmt is CREATE TABLE name (col TYPE, ..., PRIMARY KEY (cols)).
type CreateTableStmt struct {
	Name    string
	Columns []ColumnDef
	Key     []string
}

// ColumnDef is one column definition.
type ColumnDef struct {
	Name string
	Kind types.Kind
}

// CreateIndexStmt is CREATE [HASH|BTREE] INDEX ON table (col).
type CreateIndexStmt struct {
	Table string
	Col   string
	// BTree selects the ordered index; default is hash.
	BTree bool
}

// InsertStmt is INSERT INTO name VALUES (v, ...), (v, ...) or
// INSERT INTO name SELECT ... (exactly one of Rows and Query is set).
type InsertStmt struct {
	Table string
	Rows  [][]types.Value
	Query *SelectStmt
}

// ExplainStmt is EXPLAIN SELECT ...: plan the query, do not execute it.
type ExplainStmt struct {
	Query *SelectStmt
}

// DeleteStmt is DELETE FROM name [WHERE cond].
type DeleteStmt struct {
	Table string
	Where expr.Node
}

// UpdateStmt is UPDATE name SET col = expr [, ...] [WHERE cond].
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where expr.Node
}

// Assignment is one SET column = expression pair.
type Assignment struct {
	Col  string
	Expr expr.Node
}

func (*SelectStmt) stmt()      {}
func (*CreateTableStmt) stmt() {}
func (*CreateIndexStmt) stmt() {}
func (*InsertStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*ExplainStmt) stmt()     {}
