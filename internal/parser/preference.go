package parser

import "fmt"

// ParsePreference parses a standalone preference clause, the same syntax
// used inside PREFERRING:
//
//	cond SCORE expr CONF num ON relation [AS name]
//	cond SCORE expr CONF num ON (rel1, rel2) [AS name]
//
// Preference repositories store user preferences in this textual form.
func ParsePreference(src string) (PrefClause, error) {
	toks, err := lex(src)
	if err != nil {
		return PrefClause{}, err
	}
	p := &parser{toks: toks}
	pc, err := p.parsePrefClause()
	if err != nil {
		return PrefClause{}, err
	}
	if !p.atEOF() {
		return PrefClause{}, fmt.Errorf("parser: unexpected %s after preference", p.peek())
	}
	return pc, nil
}
