package parser

import (
	"strings"
	"testing"

	"prefdb/internal/expr"
	"prefdb/internal/types"
)

func mustQuery(t *testing.T, src string) *SelectStmt {
	t.Helper()
	q, err := ParseQuery(src)
	if err != nil {
		t.Fatalf("ParseQuery(%q): %v", src, err)
	}
	return q
}

func TestParseSimpleSelect(t *testing.T) {
	q := mustQuery(t, "SELECT title, movies.year FROM movies WHERE year = 2011")
	if q.Star || len(q.Cols) != 2 {
		t.Fatalf("cols = %v", q.Cols)
	}
	if q.Cols[1].Table != "movies" || q.Cols[1].Name != "year" {
		t.Errorf("qualified col = %v", q.Cols[1])
	}
	if len(q.From) != 1 || q.From[0].Table != "movies" {
		t.Errorf("from = %v", q.From)
	}
	if q.Where == nil || q.Where.String() != "(year = 2011)" {
		t.Errorf("where = %v", q.Where)
	}
	if q.Filter != nil || len(q.Preferring) != 0 {
		t.Error("unexpected clauses")
	}
}

func TestParseStar(t *testing.T) {
	q := mustQuery(t, "SELECT * FROM movies")
	if !q.Star {
		t.Error("star not detected")
	}
}

func TestParseJoins(t *testing.T) {
	q := mustQuery(t, `SELECT title FROM movies
		JOIN directors ON movies.d_id = directors.d_id
		INNER JOIN genres ON movies.m_id = genres.m_id`)
	if len(q.Joins) != 2 {
		t.Fatalf("joins = %d", len(q.Joins))
	}
	if q.Joins[0].Table.Table != "directors" {
		t.Errorf("join 0 = %v", q.Joins[0].Table)
	}
	if q.Joins[1].On.String() != "(movies.m_id = genres.m_id)" {
		t.Errorf("join 1 on = %s", q.Joins[1].On)
	}
}

func TestParseAliases(t *testing.T) {
	q := mustQuery(t, "SELECT m.title FROM movies AS m JOIN movies m2 ON m.m_id = m2.m_id")
	if q.From[0].Alias != "m" {
		t.Errorf("AS alias = %v", q.From[0])
	}
	if q.Joins[0].Table.Alias != "m2" {
		t.Errorf("bare alias = %v", q.Joins[0].Table)
	}
	if q.From[0].AliasName() != "m" {
		t.Errorf("AliasName = %q", q.From[0].AliasName())
	}
	if (TableRef{Table: "x"}).AliasName() != "x" {
		t.Error("AliasName fallback")
	}
}

func TestParseCommaFrom(t *testing.T) {
	q := mustQuery(t, "SELECT a.x FROM t1 a, t2 b WHERE a.x = b.y")
	if len(q.From) != 2 || q.From[1].Alias != "b" {
		t.Fatalf("from = %v", q.From)
	}
}

func TestParsePreferring(t *testing.T) {
	q := mustQuery(t, `SELECT title FROM movies JOIN genres ON movies.m_id = genres.m_id
		PREFERRING genre = 'Comedy' SCORE 1.0 CONF 0.8 ON genres,
		           votes > 500 SCORE linear(rating, 0.1) CONF 0.8 ON ratings AS prefRatings,
		           genre = 'Action' SCORE recency(year, 2011) CONF 0.8 ON (movies, genres)
		USING sum TOP 10 BY score`)
	if len(q.Preferring) != 3 {
		t.Fatalf("preferring = %d", len(q.Preferring))
	}
	p0 := q.Preferring[0]
	if p0.Name != "p1" {
		t.Errorf("default name = %q", p0.Name)
	}
	if p0.Cond.String() != "(genre = 'Comedy')" {
		t.Errorf("p0 cond = %s", p0.Cond)
	}
	if p0.Conf != 0.8 || len(p0.On) != 1 || p0.On[0] != "genres" {
		t.Errorf("p0 = %+v", p0)
	}
	p1 := q.Preferring[1]
	if p1.Name != "prefRatings" {
		t.Errorf("named pref = %q", p1.Name)
	}
	if p1.Score.String() != "linear(rating, 0.1)" {
		t.Errorf("score expr = %s", p1.Score)
	}
	p2 := q.Preferring[2]
	if len(p2.On) != 2 || p2.On[0] != "movies" || p2.On[1] != "genres" {
		t.Errorf("multi-relational on = %v", p2.On)
	}
	if q.Using != "sum" {
		t.Errorf("using = %q", q.Using)
	}
	if q.Filter == nil || q.Filter.Kind != FilterTop || q.Filter.K != 10 || q.Filter.ByConf {
		t.Errorf("filter = %+v", q.Filter)
	}
}

func TestParseFilterClauses(t *testing.T) {
	cases := []struct {
		src    string
		verify func(*FilterClause) bool
	}{
		{"SELECT * FROM t TOP 5", func(f *FilterClause) bool { return f.Kind == FilterTop && f.K == 5 && !f.ByConf }},
		{"SELECT * FROM t TOP 5 BY conf", func(f *FilterClause) bool { return f.Kind == FilterTop && f.ByConf }},
		{"SELECT * FROM t THRESHOLD conf >= 1.2", func(f *FilterClause) bool {
			return f.Kind == FilterThreshold && f.ByConf && f.Op == expr.OpGe && f.Value == 1.2
		}},
		{"SELECT * FROM t THRESHOLD score > 0.5", func(f *FilterClause) bool {
			return f.Kind == FilterThreshold && !f.ByConf && f.Op == expr.OpGt && f.Value == 0.5
		}},
		{"SELECT * FROM t SKYLINE", func(f *FilterClause) bool { return f.Kind == FilterSkyline }},
		{"SELECT * FROM t RANK", func(f *FilterClause) bool { return f.Kind == FilterRank && !f.ByConf }},
		{"SELECT * FROM t RANK BY confidence", func(f *FilterClause) bool { return f.Kind == FilterRank && f.ByConf }},
	}
	for _, c := range cases {
		q := mustQuery(t, c.src)
		if q.Filter == nil || !c.verify(q.Filter) {
			t.Errorf("%q: filter = %+v", c.src, q.Filter)
		}
	}
}

func TestParseExpressions(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"a = 1 AND b = 2 OR c = 3", "(((a = 1) AND (b = 2)) OR (c = 3))"},
		{"a = 1 AND (b = 2 OR c = 3)", "((a = 1) AND ((b = 2) OR (c = 3)))"},
		{"NOT a = 1", "(NOT (a = 1))"},
		{"a + b * c", "(a + (b * c))"},
		{"(a + b) * c", "((a + b) * c)"},
		{"a - -1", "(a - -1)"},
		{"year BETWEEN 2000 AND 2010", "(year BETWEEN 2000 AND 2010)"},
		{"genre IN ('Comedy', 'Drama')", "(genre IN ('Comedy', 'Drama'))"},
		{"title LIKE '%Dollar%'", "(title LIKE '%Dollar%')"},
		{"x IS NULL", "(x IS NULL)"},
		{"x IS NOT NULL", "(x IS NOT NULL)"},
		{"x NOT IN (1)", "(NOT (x IN (1)))"},
		{"x NOT LIKE 'a%'", "(NOT (x LIKE 'a%'))"},
		{"x NOT BETWEEN 1 AND 2", "(NOT (x BETWEEN 1 AND 2))"},
		{"f(a, g(b), 1.5)", "f(a, g(b), 1.5)"},
		{"t.col >= 3", "(t.col >= 3)"},
		{"a <> b", "(a <> b)"},
		{"a != b", "(a <> b)"},
		{"true AND NOT false", "(true AND (NOT false))"},
		{"x = null", "(x = NULL)"},
		{"a % 2 = 0", "((a % 2) = 0)"},
	}
	for _, c := range cases {
		q := mustQuery(t, "SELECT x FROM t WHERE "+c.src)
		if got := q.Where.String(); got != c.want {
			t.Errorf("%q parsed to %q, want %q", c.src, got, c.want)
		}
	}
}

func TestParseCreateTable(t *testing.T) {
	stmt, err := Parse(`CREATE TABLE movies (
		m_id INT, title TEXT, year INT, rating FLOAT, hit BOOL,
		PRIMARY KEY (m_id)
	)`)
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTableStmt)
	if ct.Name != "movies" || len(ct.Columns) != 5 {
		t.Fatalf("create table = %+v", ct)
	}
	wantKinds := []types.Kind{types.KindInt, types.KindString, types.KindInt, types.KindFloat, types.KindBool}
	for i, k := range wantKinds {
		if ct.Columns[i].Kind != k {
			t.Errorf("col %d kind = %v, want %v", i, ct.Columns[i].Kind, k)
		}
	}
	if len(ct.Key) != 1 || ct.Key[0] != "m_id" {
		t.Errorf("key = %v", ct.Key)
	}
	// Composite key.
	stmt2, err := Parse("CREATE TABLE g (m_id INT, genre TEXT, PRIMARY KEY (m_id, genre))")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt2.(*CreateTableStmt).Key) != 2 {
		t.Error("composite key not parsed")
	}
}

func TestParseCreateIndex(t *testing.T) {
	stmt, err := Parse("CREATE HASH INDEX ON genres (genre)")
	if err != nil {
		t.Fatal(err)
	}
	ix := stmt.(*CreateIndexStmt)
	if ix.Table != "genres" || ix.Col != "genre" || ix.BTree {
		t.Errorf("hash index = %+v", ix)
	}
	stmt2, err := Parse("CREATE BTREE INDEX ON movies (year)")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt2.(*CreateIndexStmt).BTree {
		t.Error("btree flag missing")
	}
	stmt3, err := Parse("CREATE INDEX ON movies (d_id)")
	if err != nil {
		t.Fatal(err)
	}
	if stmt3.(*CreateIndexStmt).BTree {
		t.Error("default index should be hash")
	}
}

func TestParseInsert(t *testing.T) {
	stmt, err := Parse("INSERT INTO movies VALUES (1, 'Gran Torino', 2008, 8.2, true), (2, 'Scoop', 2006, -1.5, NULL)")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStmt)
	if ins.Table != "movies" || len(ins.Rows) != 2 {
		t.Fatalf("insert = %+v", ins)
	}
	r0 := ins.Rows[0]
	if r0[0].AsInt() != 1 || r0[1].AsString() != "Gran Torino" || r0[3].AsFloat() != 8.2 || !r0[4].AsBool() {
		t.Errorf("row 0 = %v", r0)
	}
	r1 := ins.Rows[1]
	if r1[3].AsFloat() != -1.5 || !r1[4].IsNull() {
		t.Errorf("row 1 = %v", r1)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"DELETE",
		"DELETE FROM",
		"DELETE FROM t WHERE",
		"UPDATE",
		"UPDATE t",
		"UPDATE t SET",
		"UPDATE t SET x",
		"UPDATE t SET x =",
		"SELECT",
		"SELECT FROM t",
		"SELECT x FROM",
		"SELECT x FROM t WHERE",
		"SELECT x FROM t JOIN",
		"SELECT x FROM t JOIN u",
		"SELECT x FROM t PREFERRING",
		"SELECT x FROM t PREFERRING a = 1",
		"SELECT x FROM t PREFERRING a = 1 SCORE 1",
		"SELECT x FROM t PREFERRING a = 1 SCORE 1 CONF 0.5",
		"SELECT x FROM t TOP",
		"SELECT x FROM t TOP 0",
		"SELECT x FROM t TOP -1",
		"SELECT x FROM t THRESHOLD",
		"SELECT x FROM t THRESHOLD score",
		"SELECT x FROM t THRESHOLD score >=",
		"SELECT x FROM t WHERE a = 'unterminated",
		"SELECT x FROM t WHERE a = 1 extra",
		"SELECT x FROM t WHERE f(",
		"SELECT x FROM t WHERE (a = 1",
		"CREATE TABLE t ()",
		"CREATE TABLE t (x NOPE)",
		"CREATE VIEW v",
		"INSERT INTO t VALUES",
		"INSERT INTO t VALUES (",
		"SELECT x FROM t WHERE a @ 1",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseQueryRejectsNonSelect(t *testing.T) {
	if _, err := ParseQuery("CREATE TABLE t (x INT)"); err == nil {
		t.Error("ParseQuery should reject DDL")
	}
}

func TestTrailingSemicolonAndComments(t *testing.T) {
	q := mustQuery(t, "SELECT x FROM t; ")
	if len(q.From) != 1 {
		t.Error("semicolon handling broken")
	}
	q2 := mustQuery(t, "SELECT x -- projected column\nFROM t -- the table\nWHERE x = 1")
	if q2.Where == nil {
		t.Error("comment handling broken")
	}
}

func TestStringEscapes(t *testing.T) {
	q := mustQuery(t, "SELECT x FROM t WHERE name = 'O''Brien'")
	b := q.Where.(expr.Bin)
	if b.R.(expr.Lit).Val.AsString() != "O'Brien" {
		t.Errorf("escape = %v", b.R)
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	q := mustQuery(t, "select Title from Movies where Year = 1 preferring Genre = 'X' score 1 conf 0.5 on Genres top 3 by Score")
	if len(q.Preferring) != 1 || q.Filter == nil || q.Filter.K != 3 {
		t.Errorf("mixed case parse = %+v", q)
	}
	// Identifiers are lower-cased for catalog consistency.
	if q.Cols[0].Name != "title" || q.From[0].Table != "movies" {
		t.Errorf("identifier case = %v %v", q.Cols[0], q.From[0])
	}
}

func TestKeywordAsTableNameRejected(t *testing.T) {
	if _, err := Parse("SELECT x FROM where"); err == nil {
		t.Error("keyword as table should fail")
	}
}

func TestLexerSymbols(t *testing.T) {
	toks, err := lex("a <= b >= c <> d != e == f")
	if err != nil {
		t.Fatal(err)
	}
	var syms []string
	for _, tk := range toks {
		if tk.kind == tokSymbol {
			syms = append(syms, tk.text)
		}
	}
	want := []string{"<=", ">=", "<>", "!=", "=="}
	if len(syms) != len(want) {
		t.Fatalf("symbols = %v", syms)
	}
	for i := range want {
		if syms[i] != want[i] {
			t.Errorf("symbol %d = %q, want %q", i, syms[i], want[i])
		}
	}
}

func TestNumberForms(t *testing.T) {
	q := mustQuery(t, "SELECT x FROM t WHERE a = 1.5 AND b = .5 AND c = 10")
	s := q.Where.String()
	if !strings.Contains(s, "1.5") || !strings.Contains(s, "0.5") || !strings.Contains(s, "10") {
		t.Errorf("numbers = %s", s)
	}
}

func TestParseDelete(t *testing.T) {
	stmt, err := Parse("DELETE FROM movies WHERE year < 2000")
	if err != nil {
		t.Fatal(err)
	}
	d := stmt.(*DeleteStmt)
	if d.Table != "movies" || d.Where == nil || d.Where.String() != "(year < 2000)" {
		t.Errorf("delete = %+v", d)
	}
	stmt2, err := Parse("DELETE FROM movies")
	if err != nil {
		t.Fatal(err)
	}
	if stmt2.(*DeleteStmt).Where != nil {
		t.Error("whereless delete should have nil condition")
	}
}

func TestParsePreferenceStandalone(t *testing.T) {
	pc, err := ParsePreference("genre = 'Comedy' SCORE 1 CONF 0.8 ON genres AS comedies")
	if err != nil {
		t.Fatal(err)
	}
	if pc.Name != "comedies" || pc.Conf != 0.8 || len(pc.On) != 1 {
		t.Errorf("parsed = %+v", pc)
	}
	// Without AS the name stays empty for the caller to assign.
	pc2, err := ParsePreference("x > 1 SCORE 0.5 CONF 0.5 ON r")
	if err != nil {
		t.Fatal(err)
	}
	if pc2.Name != "" {
		t.Errorf("default name = %q, want empty", pc2.Name)
	}
	// Multi-relational.
	pc3, err := ParsePreference("genre = 'Action' SCORE recency(year, 2011) CONF 0.8 ON (movies, genres)")
	if err != nil {
		t.Fatal(err)
	}
	if len(pc3.On) != 2 {
		t.Errorf("on = %v", pc3.On)
	}
	// Errors.
	for _, bad := range []string{"", "x > 1", "x > 1 SCORE 1 CONF 0.5", "x > 1 SCORE 1 CONF 0.5 ON r trailing junk"} {
		if _, err := ParsePreference(bad); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
}

func TestParseUpdate(t *testing.T) {
	stmt, err := Parse("UPDATE movies SET year = year + 1, title = 'x' WHERE m_id = 3")
	if err != nil {
		t.Fatal(err)
	}
	u := stmt.(*UpdateStmt)
	if u.Table != "movies" || len(u.Set) != 2 {
		t.Fatalf("update = %+v", u)
	}
	if u.Set[0].Col != "year" || u.Set[0].Expr.String() != "(year + 1)" {
		t.Errorf("set 0 = %+v", u.Set[0])
	}
	if u.Where == nil || u.Where.String() != "(m_id = 3)" {
		t.Errorf("where = %v", u.Where)
	}
	stmt2, err := Parse("UPDATE t SET x = 1")
	if err != nil {
		t.Fatal(err)
	}
	if stmt2.(*UpdateStmt).Where != nil {
		t.Error("whereless update should have nil condition")
	}
}
