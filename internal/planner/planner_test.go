package planner

import (
	"strings"
	"testing"

	"prefdb/internal/algebra"
	"prefdb/internal/catalog"
	"prefdb/internal/expr"
	"prefdb/internal/parser"
	"prefdb/internal/pref"
	"prefdb/internal/schema"
	"prefdb/internal/types"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	movies := schema.New(
		schema.Column{Name: "m_id", Kind: types.KindInt},
		schema.Column{Name: "title", Kind: types.KindString},
		schema.Column{Name: "year", Kind: types.KindInt},
		schema.Column{Name: "d_id", Kind: types.KindInt},
	).WithKey("m_id")
	genres := schema.New(
		schema.Column{Name: "m_id", Kind: types.KindInt},
		schema.Column{Name: "genre", Kind: types.KindString},
	).WithKey("m_id", "genre")
	directors := schema.New(
		schema.Column{Name: "d_id", Kind: types.KindInt},
		schema.Column{Name: "director", Kind: types.KindString},
	).WithKey("d_id")
	for name, s := range map[string]*schema.Schema{"movies": movies, "genres": genres, "directors": directors} {
		if _, err := c.CreateTable(name, s); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestPlanBaselineShape(t *testing.T) {
	pl := New(testCatalog(t))
	plan, err := pl.PlanQuery(`SELECT title FROM movies
		JOIN genres ON movies.m_id = genres.m_id
		WHERE year = 2011
		PREFERRING genre = 'Comedy' SCORE 1 CONF 0.8 ON genres
		TOP 10 BY score`)
	if err != nil {
		t.Fatal(err)
	}
	f := algebra.Format(plan.Root)
	lines := strings.Split(strings.TrimRight(f, "\n"), "\n")
	// Baseline order: TopK / Project / Prefer / Select / Join / scans.
	wantPrefix := []string{"Top(10, score)", "Project(", "Prefer(", "Select(", "Join(", "Scan(movies)", "Scan(genres)"}
	if len(lines) != len(wantPrefix) {
		t.Fatalf("plan shape:\n%s", f)
	}
	for i, w := range wantPrefix {
		if !strings.HasPrefix(strings.TrimSpace(lines[i]), w) {
			t.Errorf("line %d = %q, want prefix %q", i, lines[i], w)
		}
	}
	// Projection extended with the preference attribute genre.
	if !strings.Contains(lines[1], "genre") {
		t.Errorf("projection not extended: %s", lines[1])
	}
	// Output keeps only the user's columns.
	if len(plan.Output) != 1 || plan.Output[0].Name != "title" {
		t.Errorf("output = %v", plan.Output)
	}
	if plan.Agg.Name() != "sum" {
		t.Errorf("default aggregate = %s", plan.Agg.Name())
	}
	if len(plan.Preferences) != 1 || plan.Preferences[0].Name != "p1" {
		t.Errorf("preferences = %v", plan.Preferences)
	}
}

func TestPlanStarNoProjection(t *testing.T) {
	pl := New(testCatalog(t))
	plan, err := pl.PlanQuery("SELECT * FROM movies")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(algebra.Format(plan.Root), "Project") {
		t.Error("star query should not project")
	}
	if len(plan.Output) != 0 {
		t.Errorf("star output = %v", plan.Output)
	}
}

func TestPlanCommaFromCrossJoin(t *testing.T) {
	pl := New(testCatalog(t))
	plan, err := pl.PlanQuery("SELECT movies.title FROM movies, directors WHERE movies.d_id = directors.d_id")
	if err != nil {
		t.Fatal(err)
	}
	ops := algebra.CountOps(plan.Root)
	if ops["join"] != 1 {
		t.Errorf("ops = %v", ops)
	}
}

func TestPlanUsingAggregate(t *testing.T) {
	pl := New(testCatalog(t))
	plan, err := pl.PlanQuery("SELECT title FROM movies PREFERRING year > 2000 SCORE 1 CONF 0.5 ON movies USING max")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Agg.Name() != "max" {
		t.Errorf("aggregate = %s", plan.Agg.Name())
	}
}

func TestPlanErrors(t *testing.T) {
	pl := New(testCatalog(t))
	bad := []string{
		"SELECT title FROM ghost",
		"SELECT ghost FROM movies",
		"SELECT m.title FROM movies m, movies m",
		"SELECT title FROM movies PREFERRING genre = 'X' SCORE 1 CONF 0.5 ON genres",
		"SELECT title FROM movies PREFERRING year > 1 SCORE 1 CONF 9 ON movies",
		"SELECT title FROM movies PREFERRING year > 1 SCORE nosuch(year) CONF 0.5 ON movies",
		"SELECT title FROM movies USING nosuchagg",
		"SELECT title FROM movies WHERE ghost = 1",
		"SELECT title FROM movies JOIN genres ON ghost = 1",
	}
	for _, q := range bad {
		if _, err := pl.PlanQuery(q); err == nil {
			t.Errorf("%q should fail to plan", q)
		}
	}
}

func TestTrimToOutput(t *testing.T) {
	pl := New(testCatalog(t))
	plan, err := pl.PlanQuery(`SELECT title FROM movies PREFERRING year > 2000 SCORE recency(year, 2011) CONF 0.5 ON movies`)
	if err != nil {
		t.Fatal(err)
	}
	resolver := &algebra.Resolver{Catalog: pl.Cat, Funcs: pl.Funcs}
	s, err := resolver.Resolve(plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	// Extended projection has title + year; trim keeps only title.
	if s.Len() != 2 {
		t.Fatalf("extended width = %d", s.Len())
	}
	ords, err := plan.TrimToOutput(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(ords) != 1 || s.Columns[ords[0]].Name != "title" {
		t.Errorf("trim ords = %v", ords)
	}
	// Star plans keep everything.
	starPlan := &Plan{}
	ords2, err := starPlan.TrimToOutput(s)
	if err != nil || len(ords2) != 2 {
		t.Errorf("star trim = %v, %v", ords2, err)
	}
}

func TestMultiRelationalPreferencePlacement(t *testing.T) {
	pl := New(testCatalog(t))
	plan, err := pl.PlanQuery(`SELECT title FROM movies JOIN genres ON movies.m_id = genres.m_id
		PREFERRING genre = 'Action' SCORE recency(year, 2011) CONF 0.8 ON (movies, genres)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Preferences) != 1 || !plan.Preferences[0].IsMultiRelational() {
		t.Fatalf("preferences = %v", plan.Preferences)
	}
	_ = pref.Preference{}
}

func TestPlanCompoundUnion(t *testing.T) {
	pl := New(testCatalog(t))
	plan, err := pl.PlanQuery(`SELECT title FROM movies WHERE year >= 2005
		PREFERRING year >= 2006 SCORE recency(year, 2011) CONF 0.8 ON movies
		UNION SELECT title FROM movies WHERE year < 1990
		USING max TOP 5 BY score`)
	if err != nil {
		t.Fatal(err)
	}
	f := algebra.Format(plan.Root)
	if !strings.Contains(f, "Union()") {
		t.Fatalf("no union in plan:\n%s", f)
	}
	if !strings.HasPrefix(f, "Top(5, score)") {
		t.Errorf("filter should top the compound:\n%s", f)
	}
	if plan.Agg.Name() != "max" {
		t.Errorf("aggregate = %s", plan.Agg.Name())
	}
	if len(plan.Preferences) != 1 {
		t.Errorf("preferences = %d", len(plan.Preferences))
	}
	// Both arms share the extended projection (title + year).
	if c := strings.Count(f, "Project(movies.title, movies.year)"); c != 2 &&
		strings.Count(f, "Project(title, year)") != 2 {
		t.Errorf("arms should share the extended projection:\n%s", f)
	}
	// Output stays the user's single column.
	if len(plan.Output) != 1 || plan.Output[0].Name != "title" {
		t.Errorf("output = %v", plan.Output)
	}
}

func TestPlanCompoundChainOps(t *testing.T) {
	pl := New(testCatalog(t))
	plan, err := pl.PlanQuery(`SELECT title FROM movies
		INTERSECT SELECT title FROM movies
		EXCEPT SELECT title FROM movies`)
	if err != nil {
		t.Fatal(err)
	}
	f := algebra.Format(plan.Root)
	if !strings.Contains(f, "Diff()") || !strings.Contains(f, "Intersect()") {
		t.Errorf("chain ops missing:\n%s", f)
	}
	// Left-associative: Diff at the root.
	if !strings.HasPrefix(f, "Diff()") {
		t.Errorf("set ops should chain left to right:\n%s", f)
	}
}

func TestPlanCompoundStar(t *testing.T) {
	pl := New(testCatalog(t))
	plan, err := pl.PlanQuery(`SELECT * FROM directors UNION SELECT * FROM directors`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(algebra.Format(plan.Root), "Project") {
		t.Error("star compound should not project")
	}
	if len(plan.Output) != 0 {
		t.Errorf("star output = %v", plan.Output)
	}
}

func TestPlanCompoundErrors(t *testing.T) {
	pl := New(testCatalog(t))
	bad := []string{
		`SELECT title FROM movies UNION SELECT title, year FROM movies`,
		`SELECT title FROM movies UNION SELECT year FROM movies`,
		`SELECT * FROM movies UNION SELECT title FROM movies`,
		`SELECT title FROM movies UNION SELECT director FROM directors`,
		`SELECT title FROM movies UNION SELECT title FROM ghost`,
		`SELECT title FROM movies UNION SELECT title FROM movies USING bogus`,
	}
	for _, q := range bad {
		if _, err := pl.PlanQuery(q); err == nil {
			t.Errorf("%q should fail to plan", q)
		}
	}
}

func TestPlanWithPreferencesSkipsIrrelevant(t *testing.T) {
	pl := New(testCatalog(t))
	q, err := parser.ParseQuery("SELECT title FROM movies")
	if err != nil {
		t.Fatal(err)
	}
	applicable := pref.New("onMovies", "movies", expr.Cmp("year", expr.OpGe, types.Int(2000)), expr.Lit{Val: types.Float(1)}, 0.5)
	irrelevant := pref.Constant("onGenres", "genres", expr.TrueLiteral(), 1, 0.5)
	invalid := pref.Preference{Name: "bad", On: []string{"movies"}, Cond: expr.TrueLiteral(), Score: expr.TrueLiteral(), Conf: 9}

	plan, err := pl.PlanWithPreferences(q, []pref.Preference{applicable, irrelevant})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Preferences) != 1 || plan.Preferences[0].Name != "onMovies" {
		t.Errorf("preferences = %v", plan.Preferences)
	}
	if _, err := pl.PlanWithPreferences(q, []pref.Preference{invalid}); err == nil {
		t.Error("invalid extra preference should fail")
	}
}
