// Package planner translates parsed preferential queries into baseline
// extended query plans — the "query parser" component of the paper's
// architecture (Fig. 6). The baseline plan keeps the order of operators as
// written in the query; the optimizer package improves it afterwards.
//
// As in the paper, the planner adds projections for every attribute used by
// a prefer operator (conditional or scoring part), so that strategies like
// Filter-then-Prefer can evaluate preferences directly on the materialized
// non-preference result.
package planner

import (
	"fmt"
	"strings"

	"prefdb/internal/algebra"
	"prefdb/internal/catalog"
	"prefdb/internal/expr"
	"prefdb/internal/parser"
	"prefdb/internal/pref"
	"prefdb/internal/schema"
)

// Plan is a planned preferential query.
type Plan struct {
	// Root is the full extended query plan, including filtering operators.
	Root algebra.Node
	// Output lists the user-requested columns. The plan's projection is
	// extended with preference attributes; the engine trims the final
	// result back to Output. Empty means all columns (SELECT *).
	Output []expr.Col
	// Agg is the aggregate function named by USING (F_S by default).
	Agg pref.Aggregate
	// Preferences are the parsed preference triples, in query order.
	Preferences []pref.Preference
}

// Planner builds plans against a catalog.
type Planner struct {
	Cat   *catalog.Catalog
	Funcs *expr.Registry
}

// New returns a planner with the standard scoring functions.
func New(cat *catalog.Catalog) *Planner {
	return &Planner{Cat: cat, Funcs: pref.Functions()}
}

// PlanQuery parses and plans a query string.
func (pl *Planner) PlanQuery(src string) (*Plan, error) {
	stmt, err := parser.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return pl.Plan(stmt)
}

// Plan builds the baseline extended query plan for a parsed SELECT.
func (pl *Planner) Plan(q *parser.SelectStmt) (*Plan, error) {
	return pl.PlanWithPreferences(q, nil)
}

// PlanWithPreferences plans a query with additional preferences injected
// from outside the query text — the paper's §V usage, where an application
// automatically integrates a user's collected preferences. Extra
// preferences that target relations not present in the query are skipped
// (they are simply not relevant to it); applicable ones are evaluated
// after the query's own PREFERRING clauses.
func (pl *Planner) PlanWithPreferences(q *parser.SelectStmt, extra []pref.Preference) (*Plan, error) {
	if len(q.SetOps) > 0 {
		return pl.planCompound(q, extra)
	}
	return pl.planCore(q, extra, nil)
}

// planCompound plans UNION/INTERSECT/EXCEPT chains: every core is planned
// against the same extended projection (so the p-relations stay
// union-compatible even when preferences add attributes), then combined
// left to right with the extended set operators, with the USING aggregate
// and filtering clause applied to the whole result.
func (pl *Planner) planCompound(q *parser.SelectStmt, extra []pref.Preference) (*Plan, error) {
	cores := make([]*parser.SelectStmt, 0, len(q.SetOps)+1)
	first := *q
	first.SetOps, first.Using, first.Filter = nil, "", nil
	first.OrderBy, first.Limit = nil, nil
	cores = append(cores, &first)
	for _, arm := range q.SetOps {
		cores = append(cores, arm.Query)
	}

	// All cores must agree on star-ness and project the same column list —
	// a dialect restriction that keeps p-relations union-compatible even
	// when preference attributes extend the projection.
	for i, c := range cores[1:] {
		if c.Star != cores[0].Star {
			return nil, fmt.Errorf("planner: set operation mixes SELECT * and explicit column lists")
		}
		if c.Star {
			continue
		}
		if len(c.Cols) != len(cores[0].Cols) {
			return nil, fmt.Errorf("planner: set-operation arm %d selects %d columns, first arm selects %d",
				i+2, len(c.Cols), len(cores[0].Cols))
		}
		for j := range c.Cols {
			if !strings.EqualFold(c.Cols[j].Name, cores[0].Cols[j].Name) ||
				!strings.EqualFold(c.Cols[j].Table, cores[0].Cols[j].Table) {
				return nil, fmt.Errorf("planner: set-operation arms must select the same columns; arm %d column %d is %s, first arm has %s",
					i+2, j+1, c.Cols[j], cores[0].Cols[j])
			}
		}
	}

	// Shared extended projection: the first core's columns plus every
	// attribute any core's preference reads (each column must resolve in
	// every core).
	var shared []expr.Col
	if !cores[0].Star {
		var allPrefs []pref.Preference
		for _, c := range cores {
			for _, pc := range c.Preferring {
				allPrefs = append(allPrefs, pref.Preference{Name: pc.Name, On: pc.On, Cond: pc.Cond, Score: pc.Score, Conf: pc.Conf})
			}
		}
		allPrefs = append(allPrefs, extra...)
		user := append([]expr.Col(nil), cores[0].Cols...)
		user = append(user, filterColumns(q.Filter)...)
		user = append(user, orderColumns(q)...)
		shared = extendProjection(user, allPrefs)
	}

	var root algebra.Node
	var prefs []pref.Preference
	for i, c := range cores {
		corePlan, err := pl.planCore(c, extra, shared)
		if err != nil {
			return nil, fmt.Errorf("planner: set-operation arm %d: %w", i+1, err)
		}
		prefs = append(prefs, corePlan.Preferences...)
		if root == nil {
			root = corePlan.Root
			continue
		}
		var op algebra.SetOp
		switch q.SetOps[i-1].Op {
		case "union":
			op = algebra.SetUnion
		case "intersect":
			op = algebra.SetIntersect
		default:
			op = algebra.SetDiff
		}
		root = &algebra.Set{Op: op, Left: root, Right: corePlan.Root}
	}

	if q.Filter != nil {
		root = filterNode(q.Filter, root)
	}
	root = orderAndLimit(q, root)
	aggName := q.Using
	if aggName == "" {
		aggName = "sum"
	}
	agg, err := pref.LookupAggregate(aggName)
	if err != nil {
		return nil, err
	}
	var output []expr.Col
	if !cores[0].Star {
		output = cores[0].Cols
	}
	plan := &Plan{Root: root, Output: output, Agg: agg, Preferences: prefs}
	resolver := &algebra.Resolver{Catalog: pl.Cat, Funcs: pl.Funcs}
	if _, err := resolver.Resolve(root); err != nil {
		return nil, err
	}
	return plan, nil
}

// planCore plans one query core. When sharedProjection is non-nil it
// replaces the core's own extended projection (compound queries need every
// arm to produce the same layout).
func (pl *Planner) planCore(q *parser.SelectStmt, extra []pref.Preference, sharedProjection []expr.Col) (*Plan, error) {
	if len(q.From) == 0 {
		return nil, fmt.Errorf("planner: query has no FROM clause")
	}

	// Alias set, for validating preference targets and detecting duplicates.
	aliases := map[string]bool{}
	addAlias := func(t parser.TableRef) error {
		a := strings.ToLower(t.AliasName())
		if aliases[a] {
			return fmt.Errorf("planner: duplicate table alias %q", a)
		}
		if _, err := pl.Cat.Table(t.Table); err != nil {
			return err
		}
		aliases[a] = true
		return nil
	}
	for _, t := range q.From {
		if err := addAlias(t); err != nil {
			return nil, err
		}
	}
	for _, j := range q.Joins {
		if err := addAlias(j.Table); err != nil {
			return nil, err
		}
	}

	// FROM items combine as cross joins; JOIN clauses attach left-deep in
	// query order.
	var root algebra.Node = scanOf(q.From[0])
	for _, t := range q.From[1:] {
		root = &algebra.Join{Left: root, Right: scanOf(t)}
	}
	for _, j := range q.Joins {
		root = &algebra.Join{Cond: j.On, Left: root, Right: scanOf(j.Table)}
	}

	if q.Where != nil {
		root = &algebra.Select{Cond: q.Where, Input: root}
	}

	// Preference triples, in query order (the baseline plan keeps them at
	// the top; the optimizer pushes them down).
	prefs := make([]pref.Preference, 0, len(q.Preferring))
	for _, pc := range q.Preferring {
		p := pref.Preference{Name: pc.Name, On: pc.On, Cond: pc.Cond, Score: pc.Score, Conf: pc.Conf}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		for _, rel := range p.On {
			if !aliases[rel] {
				return nil, fmt.Errorf("planner: preference %s targets unknown relation %q", p.Label(), rel)
			}
		}
		prefs = append(prefs, p)
		root = &algebra.Prefer{P: p, Input: root}
	}
	for _, p := range extra {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if !p.Covers(aliases) {
			continue // not relevant to this query's relations
		}
		prefs = append(prefs, p)
		root = &algebra.Prefer{P: p, Input: root}
	}

	// Extended projection: requested columns plus every attribute any
	// preference reads and any skyline dimension (or the compound query's
	// shared layout).
	var output []expr.Col
	if !q.Star {
		output = q.Cols
		extended := sharedProjection
		if extended == nil {
			user := append([]expr.Col(nil), q.Cols...)
			user = append(user, filterColumns(q.Filter)...)
			user = append(user, orderColumns(q)...)
			extended = extendProjection(user, prefs)
		}
		root = &algebra.Project{Cols: extended, Input: root}
	}

	// Filtering clause, then attribute ordering and limit.
	if q.Filter != nil {
		root = filterNode(q.Filter, root)
	}
	root = orderAndLimit(q, root)

	// Aggregate function.
	aggName := q.Using
	if aggName == "" {
		aggName = "sum"
	}
	agg, err := pref.LookupAggregate(aggName)
	if err != nil {
		return nil, err
	}

	plan := &Plan{Root: root, Output: output, Agg: agg, Preferences: prefs}

	// Validate the whole plan (columns, conditions, preference parts).
	resolver := &algebra.Resolver{Catalog: pl.Cat, Funcs: pl.Funcs}
	if _, err := resolver.Resolve(root); err != nil {
		return nil, err
	}
	return plan, nil
}

func scanOf(t parser.TableRef) *algebra.Scan {
	return &algebra.Scan{Table: t.Table, Alias: t.AliasName()}
}

// extendProjection unions the user columns with the columns referenced by
// preference conditional and scoring parts, preserving order and dropping
// duplicates.
func extendProjection(cols []expr.Col, prefs []pref.Preference) []expr.Col {
	out := make([]expr.Col, 0, len(cols))
	seen := map[string]bool{}
	add := func(c expr.Col) {
		key := strings.ToLower(c.Table) + "." + strings.ToLower(c.Name)
		if !seen[key] {
			seen[key] = true
			out = append(out, c)
		}
	}
	for _, c := range cols {
		add(c)
	}
	for _, p := range prefs {
		for _, c := range expr.ColumnsOf(p.Cond) {
			add(c)
		}
		for _, c := range expr.ColumnsOf(p.Score) {
			add(c)
		}
	}
	return out
}

// filterColumns lists the columns a filtering clause reads (skyline
// dimensions); they must survive the extended projection.
func filterColumns(f *parser.FilterClause) []expr.Col {
	if f == nil || f.Kind != parser.FilterSkyline {
		return nil
	}
	out := make([]expr.Col, len(f.Dims))
	for i, d := range f.Dims {
		out[i] = d.Col
	}
	return out
}

// orderAndLimit wraps the plan in ORDER BY and LIMIT operators, applied
// after preference filtering.
func orderAndLimit(q *parser.SelectStmt, root algebra.Node) algebra.Node {
	if len(q.OrderBy) > 0 {
		keys := make([]algebra.OrderKey, len(q.OrderBy))
		for i, k := range q.OrderBy {
			keys[i] = algebra.OrderKey{Col: k.Col, Desc: k.Desc}
		}
		root = &algebra.OrderBy{Keys: keys, Input: root}
	}
	if q.Limit != nil {
		root = &algebra.Limit{N: q.Limit.N, Offset: q.Limit.Offset, Input: root}
	}
	return root
}

// orderColumns lists the ORDER BY columns for projection extension.
func orderColumns(q *parser.SelectStmt) []expr.Col {
	out := make([]expr.Col, len(q.OrderBy))
	for i, k := range q.OrderBy {
		out[i] = k.Col
	}
	return out
}

func filterNode(f *parser.FilterClause, input algebra.Node) algebra.Node {
	by := algebra.ByScore
	if f.ByConf {
		by = algebra.ByConf
	}
	switch f.Kind {
	case parser.FilterTop:
		return &algebra.TopK{K: f.K, By: by, Input: input}
	case parser.FilterThreshold:
		return &algebra.Threshold{By: by, Op: f.Op, Value: f.Value, Input: input}
	case parser.FilterSkyline:
		dims := make([]algebra.SkyDim, len(f.Dims))
		for i, d := range f.Dims {
			dims[i] = algebra.SkyDim{Col: d.Col, Max: d.Max}
		}
		return &algebra.Skyline{Dims: dims, Input: input}
	default:
		return &algebra.Rank{By: by, Input: input}
	}
}

// TrimToOutput projects a result schema back to the user-requested columns,
// returning the ordinals to keep; an empty Output keeps everything.
func (p *Plan) TrimToOutput(s *schema.Schema) ([]int, error) {
	if len(p.Output) == 0 {
		out := make([]int, s.Len())
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	ords := make([]int, len(p.Output))
	for i, c := range p.Output {
		idx, err := s.IndexOf(c.Table, c.Name)
		if err != nil {
			return nil, err
		}
		ords[i] = idx
	}
	return ords, nil
}
