// Background compaction: instead of paying the whole columnar build on
// the first colstore-enabled scan after DML, a table with auto-compaction
// enabled kicks off a builder goroutine whenever enough sealed heap pages
// accumulate to fill at least one new segment. The builder works from an
// immutable snapshot of the sealed pages and installs its store only if
// the DML version counter has not moved since the snapshot, so a scan
// arriving mid-build (or DML racing the install) falls back to the same
// lazy, version-checked ColStore path as before — the feature only warms
// the cache, it never changes what readers see.
package catalog

import (
	"prefdb/internal/colstore"
	"prefdb/internal/schema"
	"prefdb/internal/storage"
	"prefdb/internal/types"
)

// SetAutoCompact enables (or disables) background columnar compaction for
// every current and future table of the catalog. The engine turns it on
// at open; bare catalogs (tests, loaders) default to lazy-only builds so
// store build timing stays deterministic.
func (c *Catalog) SetAutoCompact(on bool) {
	c.autoCompact = on
	for _, t := range c.tables {
		t.autoCompact.Store(on)
	}
}

// WaitCompaction blocks until no background build is in flight for the
// table — the hook tests (and shutdown paths) use to make the async
// builder deterministic.
func (t *Table) WaitCompaction() { t.compactWG.Wait() }

// blockSnapshot is an immutable copy of a heap's sealed pages taken on
// the DML goroutine at trigger time. Row views are shared (sealed pages
// never rewrite tuples) but the dead bitmaps are copied, so a later
// DeleteWhere cannot race the builder; a delete also bumps the version,
// which makes the builder's install a no-op.
type blockSnapshot struct {
	schema *schema.Schema
	rows   [][][]types.Value
	dead   [][]bool
	live   []int
}

func (s *blockSnapshot) Schema() *schema.Schema { return s.schema }
func (s *blockSnapshot) Blocks() int            { return len(s.rows) }
func (s *blockSnapshot) Block(i int) ([][]types.Value, []bool, int) {
	return s.rows[i], s.dead[i], s.live[i]
}

// sealedPages counts the heap's full (immutable) pages; the trailing
// partially-filled page is the tail the colstore leaves on the row side.
func sealedPages(h *storage.Heap) int {
	n := h.Blocks()
	if n > 0 {
		if rows, _, _ := h.Block(n - 1); len(rows) < storage.PageSize {
			n--
		}
	}
	return n
}

// maybeCompactAsync checks whether at least one new segment's worth of
// sealed pages is uncovered by a current store and, if so, snapshots them
// and builds in the background. At most one build per table is in flight
// (compacting CAS); Insert calls this after bumping the version.
func (t *Table) maybeCompactAsync() {
	if !t.autoCompact.Load() {
		return
	}
	sealed := sealedPages(t.Heap)
	// Backoff: during a bulk load every build is discarded (the version
	// keeps moving), so a discarded install doubles the sealed-page count
	// the next attempt waits for. Total build work during an n-page load
	// is then O(n) (attempts at 16, 32, 64, … pages), and the threshold
	// resets to zero as soon as an install lands.
	if sealed < colstore.SegmentPages || int64(sealed) < t.compactAt.Load() {
		return
	}
	if !t.compacting.CompareAndSwap(false, true) {
		return
	}
	v := t.Version()
	covered := -1
	t.colMu.Lock()
	if t.col != nil && t.col.Version == v {
		covered = t.col.SealedPages
	}
	t.colMu.Unlock()
	pending := sealed
	if covered >= 0 {
		pending = sealed - covered
	}
	if pending < colstore.SegmentPages {
		t.compacting.Store(false)
		return
	}
	snap := &blockSnapshot{
		schema: t.Schema(),
		rows:   make([][][]types.Value, sealed),
		dead:   make([][]bool, sealed),
		live:   make([]int, sealed),
	}
	for i := 0; i < sealed; i++ {
		rows, dead, live := t.Heap.Block(i)
		snap.rows[i] = rows
		snap.dead[i] = append([]bool(nil), dead...)
		snap.live[i] = live
	}
	t.compactWG.Add(1)
	go func() {
		defer t.compactWG.Done()
		defer t.compacting.Store(false)
		// Interning through the shared table dictionary keeps the
		// background build's codes compatible with every store the lazy
		// path builds — the dictionary is append-only and internally
		// locked, so a concurrent lazy build is safe and both arrive at
		// the same code for the same string.
		st := colstore.BuildShared(snap, v, t.colDict)
		t.colMu.Lock()
		// Version-guarded install: discard the build if DML moved the
		// table, or if a lazy ColStore call already produced a store at
		// least as fresh and as wide.
		if t.Version() == v && (t.col == nil || t.col.Version != v || t.col.SealedPages < st.SealedPages) {
			t.col = st
		}
		current := t.Version() == v
		t.colMu.Unlock()
		if current {
			t.compactAt.Store(0)
		} else {
			t.compactAt.Store(int64(2 * sealed))
		}
	}()
}
