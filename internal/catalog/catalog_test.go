package catalog

import (
	"fmt"
	"testing"

	"prefdb/internal/expr"
	"prefdb/internal/schema"
	"prefdb/internal/types"
)

func newMovies(t *testing.T) (*Catalog, *Table) {
	t.Helper()
	c := New()
	s := schema.New(
		schema.Column{Name: "m_id", Kind: types.KindInt},
		schema.Column{Name: "year", Kind: types.KindInt},
		schema.Column{Name: "genre", Kind: types.KindString},
		schema.Column{Name: "rating", Kind: types.KindFloat},
	).WithKey("m_id")
	tbl, err := c.CreateTable("movies", s)
	if err != nil {
		t.Fatal(err)
	}
	genres := []string{"Comedy", "Drama", "Action", "Drama", "Drama"}
	for i := 0; i < 100; i++ {
		err := tbl.Insert([]types.Value{
			types.Int(int64(i)),
			types.Int(int64(1980 + i%40)),
			types.Str(genres[i%len(genres)]),
			types.Float(float64(i%100) / 10),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return c, tbl
}

func TestCreateAndLookup(t *testing.T) {
	c, tbl := newMovies(t)
	if tbl.Len() != 100 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	got, err := c.Table("MOVIES")
	if err != nil || got != tbl {
		t.Errorf("case-insensitive lookup failed: %v", err)
	}
	if _, err := c.Table("nope"); err == nil {
		t.Error("unknown table should error")
	}
	if _, err := c.CreateTable("movies", schema.New()); err == nil {
		t.Error("duplicate create should error")
	}
	if names := c.Tables(); len(names) != 1 || names[0] != "movies" {
		t.Errorf("Tables = %v", names)
	}
	// Schema columns get the table qualifier.
	if tbl.Schema().Columns[0].Table != "movies" {
		t.Errorf("qualifier = %q", tbl.Schema().Columns[0].Table)
	}
}

func TestIndexes(t *testing.T) {
	c, tbl := newMovies(t)
	if err := c.CreateHashIndex("movies", "genre"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateBTreeIndex("movies", "year"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateHashIndex("movies", "genre"); err == nil {
		t.Error("duplicate hash index should error")
	}
	if err := c.CreateBTreeIndex("movies", "year"); err == nil {
		t.Error("duplicate btree index should error")
	}
	if err := c.CreateHashIndex("movies", "bogus"); err == nil {
		t.Error("index on unknown column should error")
	}
	if err := c.CreateHashIndex("bogus", "genre"); err == nil {
		t.Error("index on unknown table should error")
	}
	hi, ok := tbl.HashIndexOn("GENRE")
	if !ok {
		t.Fatal("hash index not found")
	}
	rows := hi.Lookup([]types.Value{types.Str("Comedy")})
	if len(rows) != 20 {
		t.Errorf("Comedy rows = %d, want 20", len(rows))
	}
	bi, ok := tbl.BTreeIndexOn("year")
	if !ok {
		t.Fatal("btree index not found")
	}
	if len(bi.Lookup(types.Int(1985))) == 0 {
		t.Error("btree lookup empty")
	}
	// Indexes are maintained on insert.
	if err := tbl.Insert([]types.Value{types.Int(1000), types.Int(1985), types.Str("Comedy"), types.Float(5)}); err != nil {
		t.Fatal(err)
	}
	if len(hi.Lookup([]types.Value{types.Str("Comedy")})) != 21 {
		t.Error("hash index not maintained on insert")
	}
	cols := tbl.IndexedColumns()
	if len(cols) != 2 || cols[0] != "genre" || cols[1] != "year" {
		t.Errorf("IndexedColumns = %v", cols)
	}
}

func TestStats(t *testing.T) {
	_, tbl := newMovies(t)
	st := tbl.Stats()
	if st.Rows != 100 {
		t.Fatalf("Rows = %d", st.Rows)
	}
	yearStats := st.Columns[1]
	if !yearStats.HasRange || yearStats.Min != 1980 || yearStats.Max != 2019 {
		t.Errorf("year range = [%v,%v]", yearStats.Min, yearStats.Max)
	}
	if yearStats.Distinct != 40 {
		t.Errorf("year distinct = %d", yearStats.Distinct)
	}
	genreStats := st.Columns[2]
	if genreStats.Distinct != 3 {
		t.Errorf("genre distinct = %d", genreStats.Distinct)
	}
	if freq, _ := genreStats.MCVFreq(types.Str("Drama")); freq != 60 {
		t.Errorf("Drama MCV = %d", freq)
	}
	// Stats are cached then invalidated on insert.
	if tbl.Stats() != st {
		t.Error("stats should be cached")
	}
	tbl.Insert([]types.Value{types.Int(500), types.Null(), types.Str("Drama"), types.Float(1)})
	st2 := tbl.Stats()
	if st2 == st {
		t.Error("stats should be invalidated by insert")
	}
	if st2.Columns[1].Nulls != 1 {
		t.Errorf("nulls = %d", st2.Columns[1].Nulls)
	}
}

func TestSelectivityEquality(t *testing.T) {
	_, tbl := newMovies(t)
	// Drama is 60/100.
	sel := tbl.Selectivity(expr.Eq("genre", types.Str("Drama")))
	if sel < 0.55 || sel > 0.65 {
		t.Errorf("Drama selectivity = %v, want ~0.6", sel)
	}
	selC := tbl.Selectivity(expr.Eq("genre", types.Str("Comedy")))
	if selC < 0.15 || selC > 0.25 {
		t.Errorf("Comedy selectivity = %v, want ~0.2", selC)
	}
	if a, b := tbl.Selectivity(expr.Eq("genre", types.Str("Drama"))), tbl.Selectivity(expr.Eq("genre", types.Str("Action"))); a <= b {
		t.Error("more frequent value should have higher selectivity")
	}
}

func TestSelectivityRange(t *testing.T) {
	_, tbl := newMovies(t)
	// year >= 2010 covers 10 of 40 years ≈ 0.25.
	sel := tbl.Selectivity(expr.Cmp("year", expr.OpGe, types.Int(2010)))
	if sel < 0.15 || sel > 0.35 {
		t.Errorf("year>=2010 selectivity = %v", sel)
	}
	lt := tbl.Selectivity(expr.Cmp("year", expr.OpLt, types.Int(1990)))
	if lt < 0.15 || lt > 0.35 {
		t.Errorf("year<1990 selectivity = %v", lt)
	}
	// Flipped literal-first comparison.
	flipped := tbl.Selectivity(expr.Bin{Op: expr.OpLe, L: expr.Lit{Val: types.Int(2010)}, R: expr.ColRef("year")})
	if flipped < 0.15 || flipped > 0.35 {
		t.Errorf("flipped selectivity = %v", flipped)
	}
}

func TestSelectivityCompound(t *testing.T) {
	_, tbl := newMovies(t)
	a := expr.Eq("genre", types.Str("Drama"))
	b := expr.Cmp("year", expr.OpGe, types.Int(2010))
	and := tbl.Selectivity(expr.Bin{Op: expr.OpAnd, L: a, R: b})
	or := tbl.Selectivity(expr.Bin{Op: expr.OpOr, L: a, R: b})
	sa, sb := tbl.Selectivity(a), tbl.Selectivity(b)
	if diff := and - sa*sb; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("AND selectivity = %v, want %v", and, sa*sb)
	}
	if diff := or - (sa + sb - sa*sb); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("OR selectivity = %v", or)
	}
	not := tbl.Selectivity(expr.Un{Op: expr.OpNot, X: a})
	if diff := not - (1 - sa); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("NOT selectivity = %v", not)
	}
}

func TestSelectivityMisc(t *testing.T) {
	_, tbl := newMovies(t)
	if got := tbl.Selectivity(nil); got != 1 {
		t.Errorf("nil condition = %v", got)
	}
	if got := tbl.Selectivity(expr.TrueLiteral()); got != 1 {
		t.Errorf("TRUE = %v", got)
	}
	if got := tbl.Selectivity(expr.Lit{Val: types.Bool(false)}); got != 0 {
		t.Errorf("FALSE = %v", got)
	}
	in := tbl.Selectivity(expr.In{X: expr.ColRef("genre"), List: []expr.Node{expr.Lit{Val: types.Str("Drama")}, expr.Lit{Val: types.Str("Action")}}})
	if in < 0.5 || in > 0.8 {
		t.Errorf("IN selectivity = %v, want ~2/3", in)
	}
	btw := tbl.Selectivity(expr.Between{X: expr.ColRef("year"), Lo: expr.Lit{Val: types.Int(1990)}, Hi: expr.Lit{Val: types.Int(2000)}})
	if btw < 0.15 || btw > 0.4 {
		t.Errorf("BETWEEN selectivity = %v", btw)
	}
	prefix := tbl.Selectivity(expr.Like{X: expr.ColRef("genre"), Pattern: "Com%"})
	substr := tbl.Selectivity(expr.Like{X: expr.ColRef("genre"), Pattern: "%om%"})
	if prefix >= substr {
		t.Errorf("prefix LIKE (%v) should be more selective than substring (%v)", prefix, substr)
	}
	isn := tbl.Selectivity(expr.IsNull{X: expr.ColRef("year")})
	if isn != 0 {
		t.Errorf("IS NULL on non-null column = %v", isn)
	}
	notn := tbl.Selectivity(expr.IsNull{X: expr.ColRef("year"), Negate: true})
	if notn != 1 {
		t.Errorf("IS NOT NULL = %v", notn)
	}
	// Unknown shapes fall back to a sane default in (0,1).
	odd := tbl.Selectivity(expr.Call{Name: "f"})
	if odd <= 0 || odd >= 1 {
		t.Errorf("default selectivity = %v", odd)
	}
}

func TestSelectivityEmptyTable(t *testing.T) {
	c := New()
	tbl, _ := c.CreateTable("empty", schema.New(schema.Column{Name: "x", Kind: types.KindInt}))
	if got := tbl.Selectivity(expr.Eq("x", types.Int(1))); got != 1 {
		t.Errorf("empty-table selectivity = %v", got)
	}
}

func TestEquiDepthHistogram(t *testing.T) {
	// A heavily skewed column: 900 values at 1..10, 100 values spread over
	// 11..10000. Min/max interpolation would put "x <= 10" near 0; the
	// equi-depth histogram knows it covers ~90% of rows.
	c := New()
	s := schema.New(schema.Column{Name: "v", Kind: types.KindInt})
	tbl, _ := c.CreateTable("skewed", s)
	for i := 0; i < 900; i++ {
		tbl.Insert([]types.Value{types.Int(int64(1 + i%10))})
	}
	for i := 0; i < 100; i++ {
		tbl.Insert([]types.Value{types.Int(int64(11 + i*100))})
	}
	st := tbl.Stats()
	cs := st.Columns[0]
	if len(cs.Hist) == 0 {
		t.Fatal("histogram not built")
	}
	cdf, ok := cs.CDF(10)
	if !ok || cdf < 0.8 || cdf > 1.0 {
		t.Errorf("CDF(10) = %v (ok=%v), want ~0.9", cdf, ok)
	}
	if v, _ := cs.CDF(-5); v != 0 {
		t.Errorf("CDF below min = %v", v)
	}
	if v, _ := cs.CDF(1e9); v != 1 {
		t.Errorf("CDF above max = %v", v)
	}
	// Selectivity uses the histogram.
	sel := tbl.Selectivity(expr.Cmp("v", expr.OpLe, types.Int(10)))
	if sel < 0.8 {
		t.Errorf("skew-aware selectivity = %v, want ~0.9", sel)
	}
	selHi := tbl.Selectivity(expr.Cmp("v", expr.OpGt, types.Int(10)))
	if selHi > 0.2 {
		t.Errorf("tail selectivity = %v, want ~0.1", selHi)
	}
	// BETWEEN through the histogram too.
	btw := tbl.Selectivity(expr.Between{X: expr.ColRef("v"), Lo: expr.Lit{Val: types.Int(1)}, Hi: expr.Lit{Val: types.Int(10)}})
	if btw < 0.8 {
		t.Errorf("between selectivity = %v", btw)
	}
	// CDF monotonicity.
	prev := -1.0
	for x := 0.0; x <= 10100; x += 97 {
		v, _ := cs.CDF(x)
		if v < prev {
			t.Fatalf("CDF not monotone at %v: %v < %v", x, v, prev)
		}
		prev = v
	}
}

func TestHistogramSkippedForSmallColumns(t *testing.T) {
	c := New()
	s := schema.New(schema.Column{Name: "v", Kind: types.KindInt})
	tbl, _ := c.CreateTable("tiny", s)
	for i := 0; i < 10; i++ {
		tbl.Insert([]types.Value{types.Int(int64(i))})
	}
	if len(tbl.Stats().Columns[0].Hist) != 0 {
		t.Error("tiny column should not get a histogram")
	}
}

func TestDeleteWhere(t *testing.T) {
	_, tbl := newMovies(t)
	n := tbl.DeleteWhere(func(tuple []types.Value) bool {
		return tuple[1].AsInt() >= 2010
	})
	if n != 20 {
		t.Errorf("deleted = %d, want 20", n)
	}
	if tbl.Len() != 80 {
		t.Errorf("remaining = %d", tbl.Len())
	}
	// Stats reflect the deletion.
	if tbl.Stats().Rows != 80 {
		t.Errorf("stats rows = %d", tbl.Stats().Rows)
	}
	// No-match delete is a no-op.
	if got := tbl.DeleteWhere(func([]types.Value) bool { return false }); got != 0 {
		t.Errorf("no-op delete = %d", got)
	}
}

func TestUpdateWhere(t *testing.T) {
	c, tbl := newMovies(t)
	if err := c.CreateBTreeIndex("movies", "year"); err != nil {
		t.Fatal(err)
	}
	n, err := tbl.UpdateWhere(
		func(tuple []types.Value) bool { return tuple[0].AsInt() == 7 },
		func(tuple []types.Value) ([]types.Value, error) {
			out := append([]types.Value(nil), tuple...)
			out[1] = types.Int(2030)
			return out, nil
		})
	if err != nil || n != 1 {
		t.Fatalf("update = %d, %v", n, err)
	}
	bi, _ := tbl.BTreeIndexOn("year")
	if len(bi.Lookup(types.Int(2030))) != 1 {
		t.Error("index not maintained through update")
	}
	// Arity violation aborts before mutating.
	before := tbl.Len()
	_, err = tbl.UpdateWhere(
		func([]types.Value) bool { return true },
		func(tuple []types.Value) ([]types.Value, error) { return tuple[:1], nil })
	if err == nil {
		t.Error("arity mismatch should error")
	}
	if tbl.Len() != before {
		t.Error("failed update changed the table")
	}
	// Apply errors abort before mutating.
	_, err = tbl.UpdateWhere(
		func([]types.Value) bool { return true },
		func([]types.Value) ([]types.Value, error) { return nil, errBoom })
	if err != errBoom {
		t.Errorf("apply error = %v", err)
	}
	if tbl.Len() != before {
		t.Error("failed update changed the table")
	}
}

var errBoom = fmt.Errorf("boom")

func TestVersionCounter(t *testing.T) {
	_, tbl := newMovies(t)
	v0 := tbl.Version()
	if v0 != 100 {
		t.Errorf("Version after 100 inserts = %d, want 100", v0)
	}

	// A delete that matches nothing must not bump the version.
	if n := tbl.DeleteWhere(func(tuple []types.Value) bool { return false }); n != 0 {
		t.Fatalf("deleted %d rows, want 0", n)
	}
	if got := tbl.Version(); got != v0 {
		t.Errorf("Version after no-op delete = %d, want %d", got, v0)
	}

	if n := tbl.DeleteWhere(func(tuple []types.Value) bool { return tuple[0].AsInt() == 0 }); n != 1 {
		t.Fatalf("deleted %d rows, want 1", n)
	}
	v1 := tbl.Version()
	if v1 <= v0 {
		t.Errorf("Version after delete = %d, want > %d", v1, v0)
	}

	n, err := tbl.UpdateWhere(
		func(tuple []types.Value) bool { return tuple[0].AsInt() == 1 },
		func(tuple []types.Value) ([]types.Value, error) {
			out := append([]types.Value(nil), tuple...)
			out[3] = types.Float(9.9)
			return out, nil
		})
	if err != nil || n != 1 {
		t.Fatalf("update: n=%d err=%v", n, err)
	}
	if got := tbl.Version(); got <= v1 {
		t.Errorf("Version after update = %d, want > %d", got, v1)
	}
}
