// Package catalog manages prefdb's database catalog: named tables over heap
// storage, their secondary indexes, and per-column statistics used for
// selectivity estimation during query optimization.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"prefdb/internal/colstore"
	"prefdb/internal/schema"
	"prefdb/internal/storage"
	"prefdb/internal/types"
)

// Table is a named base relation: heap storage plus secondary indexes.
type Table struct {
	Name string
	Heap *storage.Heap

	hashIdx  map[string]*storage.HashIndex
	btreeIdx map[string]*storage.BTreeIndex

	statsMu sync.Mutex
	stats   *TableStats // prefdb:guarded-by statsMu

	colMu sync.Mutex
	col   *colstore.Store // prefdb:guarded-by colMu

	// colDict is the table-level shared string dictionary every columnar
	// build interns through (lazy and background alike), so dictionary
	// codes stay comparable across segments and across rebuilds. It has
	// its own lock — the background builder interns off colMu.
	colDict *colstore.TableDict

	// version counts DML batches applied to the table; cross-query caches
	// (e.g. the engine's prepared-statement score dictionaries) snapshot it
	// and discard their entries when it moves.
	version atomic.Uint64 // prefdb:atomic

	// Background compaction (see compact.go): autoCompact gates the
	// feature, compacting admits one in-flight builder, compactWG lets
	// tests and shutdown wait it out.
	compactWG   sync.WaitGroup
	autoCompact atomic.Bool  // prefdb:atomic
	compacting  atomic.Bool  // prefdb:atomic
	compactAt   atomic.Int64 // prefdb:atomic
}

// Version returns the table's DML version counter. It is bumped by every
// Insert, and by DeleteWhere/UpdateWhere when they touch at least one row.
func (t *Table) Version() uint64 { return t.version.Load() }

// Schema returns the table schema.
func (t *Table) Schema() *schema.Schema { return t.Heap.Schema() }

// Len returns the live row count.
func (t *Table) Len() int { return t.Heap.Len() }

// Insert appends a tuple, maintaining all indexes.
func (t *Table) Insert(tuple []types.Value) error {
	id, err := t.Heap.Insert(tuple)
	if err != nil {
		return err
	}
	for _, ix := range t.hashIdx {
		ix.Add(id, tuple)
	}
	for _, ix := range t.btreeIdx {
		ix.Add(id, tuple)
	}
	t.statsMu.Lock()
	t.stats = nil // invalidate
	t.statsMu.Unlock()
	t.version.Add(1)
	t.maybeCompactAsync()
	return nil
}

// DeleteWhere tombstones every live tuple matched by pred and returns the
// number removed. Indexes skip deleted rows automatically; statistics are
// invalidated.
func (t *Table) DeleteWhere(pred func(tuple []types.Value) bool) int {
	var ids []storage.RowID
	t.Heap.Scan(func(id storage.RowID, tuple []types.Value) bool {
		if pred(tuple) {
			ids = append(ids, id)
		}
		return true
	})
	for _, id := range ids {
		t.Heap.Delete(id)
	}
	if len(ids) > 0 {
		t.statsMu.Lock()
		t.stats = nil
		t.statsMu.Unlock()
		t.version.Add(1)
	}
	return len(ids)
}

// UpdateWhere replaces every live tuple matched by pred with apply(tuple)
// (delete + re-insert, so all indexes stay correct) and returns the number
// updated. All replacement tuples are computed and validated before any
// mutation, so an apply error leaves the table unchanged.
func (t *Table) UpdateWhere(pred func(tuple []types.Value) bool, apply func(tuple []types.Value) ([]types.Value, error)) (int, error) {
	type change struct {
		id  storage.RowID
		new []types.Value
	}
	var changes []change
	var applyErr error
	t.Heap.Scan(func(id storage.RowID, tuple []types.Value) bool {
		if !pred(tuple) {
			return true
		}
		newTuple, err := apply(tuple)
		if err != nil {
			applyErr = err
			return false
		}
		if len(newTuple) != t.Schema().Len() {
			applyErr = fmt.Errorf("catalog: update produced arity %d, want %d", len(newTuple), t.Schema().Len())
			return false
		}
		changes = append(changes, change{id: id, new: newTuple})
		return true
	})
	if applyErr != nil {
		return 0, applyErr
	}
	for _, c := range changes {
		t.Heap.Delete(c.id)
		if err := t.Insert(c.new); err != nil {
			return 0, err
		}
	}
	if len(changes) > 0 {
		t.statsMu.Lock()
		t.stats = nil
		t.statsMu.Unlock()
		t.version.Add(1)
	}
	return len(changes), nil
}

// HashIndexOn returns an equality index on the named column, if one exists.
func (t *Table) HashIndexOn(col string) (*storage.HashIndex, bool) {
	ix, ok := t.hashIdx[strings.ToLower(col)]
	return ix, ok
}

// BTreeIndexOn returns an ordered index on the named column, if one exists.
func (t *Table) BTreeIndexOn(col string) (*storage.BTreeIndex, bool) {
	ix, ok := t.btreeIdx[strings.ToLower(col)]
	return ix, ok
}

// HashIndexColumns lists the hash-indexed columns, sorted.
func (t *Table) HashIndexColumns() []string {
	out := make([]string, 0, len(t.hashIdx))
	for c := range t.hashIdx {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// BTreeIndexColumns lists the btree-indexed columns, sorted.
func (t *Table) BTreeIndexColumns() []string {
	out := make([]string, 0, len(t.btreeIdx))
	for c := range t.btreeIdx {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// IndexedColumns lists the columns covered by any index (sorted), used by
// the optimizer's heuristic 4 rationale ("a relation is likely to provide
// index-based access for prefer attributes").
func (t *Table) IndexedColumns() []string {
	set := map[string]bool{}
	for c := range t.hashIdx {
		set[c] = true
	}
	for c := range t.btreeIdx {
		set[c] = true
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Catalog is the set of tables in a database.
type Catalog struct {
	tables map[string]*Table
	// autoCompact is inherited by tables created after SetAutoCompact.
	autoCompact bool
}

// New returns an empty catalog.
func New() *Catalog { return &Catalog{tables: map[string]*Table{}} }

// CreateTable registers a new empty table. Column qualifiers in the schema
// are forced to the table name so unqualified references resolve.
func (c *Catalog) CreateTable(name string, s *schema.Schema) (*Table, error) {
	key := strings.ToLower(name)
	if _, dup := c.tables[key]; dup {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	t := &Table{
		Name:     key,
		Heap:     storage.NewHeap(s.Rename(key)),
		hashIdx:  map[string]*storage.HashIndex{},
		btreeIdx: map[string]*storage.BTreeIndex{},
		colDict:  colstore.NewTableDict(),
	}
	t.autoCompact.Store(c.autoCompact)
	c.tables[key] = t
	return t, nil
}

// Table resolves a table by name (case-insensitive).
func (c *Catalog) Table(name string) (*Table, error) {
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown table %q", name)
	}
	return t, nil
}

// Tables returns all table names, sorted.
func (c *Catalog) Tables() []string {
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CreateHashIndex builds an equality index on one column of a table.
func (c *Catalog) CreateHashIndex(table, col string) error {
	t, err := c.Table(table)
	if err != nil {
		return err
	}
	idx, err := t.Schema().IndexOf("", col)
	if err != nil {
		return err
	}
	key := strings.ToLower(col)
	if _, dup := t.hashIdx[key]; dup {
		return fmt.Errorf("catalog: hash index on %s.%s already exists", table, col)
	}
	t.hashIdx[key] = storage.NewHashIndex(t.Heap, []int{idx})
	return nil
}

// CreateBTreeIndex builds an ordered index on one column of a table.
func (c *Catalog) CreateBTreeIndex(table, col string) error {
	t, err := c.Table(table)
	if err != nil {
		return err
	}
	idx, err := t.Schema().IndexOf("", col)
	if err != nil {
		return err
	}
	key := strings.ToLower(col)
	if _, dup := t.btreeIdx[key]; dup {
		return fmt.Errorf("catalog: btree index on %s.%s already exists", table, col)
	}
	t.btreeIdx[key] = storage.NewBTreeIndex(t.Heap, idx)
	return nil
}

// Stats returns (computing lazily) the statistics for a table. It is safe
// to call from concurrent read-only queries; writes (Insert, DeleteWhere)
// must not run concurrently with queries.
func (t *Table) Stats() *TableStats {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	if t.stats == nil {
		t.stats = analyze(t)
	}
	return t.stats
}

// ColStore returns the table's columnar segment store, compacting sealed
// heap pages lazily on first use and rebuilding whenever the DML version
// counter has moved since the cached image was taken. Like Stats it is
// safe under concurrent read-only queries; writes are serialized by the
// engine and invalidate by bumping the version.
func (t *Table) ColStore() *colstore.Store {
	t.colMu.Lock()
	defer t.colMu.Unlock()
	if v := t.Version(); t.col == nil || t.col.Version != v {
		t.col = colstore.BuildShared(t.Heap, v, t.colDict)
	}
	return t.col
}

// ColStoreIfBuilt returns the columnar store only when a fresh one is
// already built, never triggering compaction — for plan annotation, which
// must not pay (or force) a build on tables the query may not even scan
// columnar.
func (t *Table) ColStoreIfBuilt() *colstore.Store {
	t.colMu.Lock()
	defer t.colMu.Unlock()
	if t.col != nil && t.col.Version == t.Version() {
		return t.col
	}
	return nil
}
