package catalog

import (
	"testing"

	"prefdb/internal/colstore"
	"prefdb/internal/schema"
	"prefdb/internal/storage"
	"prefdb/internal/types"
)

func compactTable(t *testing.T, auto bool) (*Catalog, *Table) {
	t.Helper()
	c := New()
	c.SetAutoCompact(auto)
	s := schema.New(
		schema.Column{Name: "id", Kind: types.KindInt},
		schema.Column{Name: "v", Kind: types.KindFloat},
	).WithKey("id")
	tbl, err := c.CreateTable("t", s)
	if err != nil {
		t.Fatal(err)
	}
	return c, tbl
}

func fillRows(t *testing.T, tbl *Table, lo, n int) {
	t.Helper()
	for i := lo; i < lo+n; i++ {
		err := tbl.Insert([]types.Value{types.Int(int64(i)), types.Float(float64(i % 10))})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestBackgroundCompaction pins the satellite behavior: once enough rows
// land to seal a segment's worth of pages, a builder goroutine installs a
// current store without any scan asking for one, and the installed image
// equals the lazy build (same version, same coverage, same rows).
func TestBackgroundCompaction(t *testing.T) {
	_, tbl := compactTable(t, true)
	segRows := colstore.SegmentPages * storage.PageSize
	fillRows(t, tbl, 0, segRows)
	tbl.WaitCompaction()

	st := tbl.ColStoreIfBuilt()
	if st == nil {
		t.Fatal("no current store after background compaction settled")
	}
	if st.Version != tbl.Version() {
		t.Fatalf("installed store version %d, table version %d", st.Version, tbl.Version())
	}
	if st.SealedPages != colstore.SegmentPages {
		t.Fatalf("SealedPages = %d, want %d", st.SealedPages, colstore.SegmentPages)
	}
	if got := st.Live(); got != segRows {
		t.Fatalf("store live rows = %d, want %d", got, segRows)
	}
}

// TestBackgroundCompactionOffByDefault pins that bare catalogs keep the
// lazy-only behavior tests and loaders rely on.
func TestBackgroundCompactionOffByDefault(t *testing.T) {
	_, tbl := compactTable(t, false)
	fillRows(t, tbl, 0, 2*colstore.SegmentPages*storage.PageSize)
	tbl.WaitCompaction()
	if tbl.ColStoreIfBuilt() != nil {
		t.Fatal("store built in background without SetAutoCompact")
	}
}

// TestBackgroundCompactionStaleInstallDiscarded pins the version guard:
// DML racing a build must not leave a store that misses the new rows.
// The test simulates the race deterministically — trigger, wait, then
// mutate — and checks the next lazy build wins over the stale image.
func TestBackgroundCompactionStaleInstallDiscarded(t *testing.T) {
	_, tbl := compactTable(t, true)
	segRows := colstore.SegmentPages * storage.PageSize
	fillRows(t, tbl, 0, segRows)
	tbl.WaitCompaction()

	// Tombstone a row: the version moves, so the background image is stale.
	if n := tbl.DeleteWhere(func(tu []types.Value) bool { return tu[0].Equal(types.Int(0)) }); n != 1 {
		t.Fatalf("deleted %d rows, want 1", n)
	}
	if tbl.ColStoreIfBuilt() != nil {
		t.Fatal("stale store still reported as current after DML")
	}
	st := tbl.ColStore() // lazy, version-checked rebuild
	if st.Version != tbl.Version() {
		t.Fatalf("rebuilt store version %d, table version %d", st.Version, tbl.Version())
	}
	if got := st.Live(); got != segRows-1 {
		t.Fatalf("rebuilt store live rows = %d, want %d", got, segRows-1)
	}
}
