package catalog

import (
	"sort"
	"strings"

	"prefdb/internal/expr"
	"prefdb/internal/storage"
	"prefdb/internal/types"
)

// maxDistinctTracked caps exact distinct-value tracking per column; beyond
// it the distinct count keeps growing but most-common-value tracking stops.
const maxDistinctTracked = 4096

// mcvKeep is how many most-common values are retained per column.
const mcvKeep = 16

// histBuckets is the number of equi-depth histogram buckets per numeric
// column.
const histBuckets = 32

// histSampleCap bounds the values collected for histogram construction.
const histSampleCap = 100000

// ValueFreq is one most-common-value entry: a distinct value and its
// occurrence count.
type ValueFreq struct {
	Value types.Value
	Freq  int
}

// ColumnStats summarizes one column's value distribution.
type ColumnStats struct {
	Count    int
	Nulls    int
	Distinct int
	// Min/Max are set for numeric columns.
	HasRange bool
	Min, Max float64
	// MCV lists the most common values with their frequencies, most
	// frequent first. Lookups go through MCVFreq, which applies
	// Value.Equal semantics (ints match integral floats) — the reason
	// this is a short slice rather than a Value-keyed map (see the
	// valueconv convention, DESIGN.md §11).
	MCV []ValueFreq
	// Hist holds equi-depth histogram boundaries for numeric columns
	// (len = buckets+1, ascending); empty when too few values were seen.
	Hist []float64
}

// MCVFreq returns the tracked frequency of v among the most common
// values, matching with Value.Equal (a linear scan over at most mcvKeep
// entries).
func (cs *ColumnStats) MCVFreq(v types.Value) (int, bool) {
	for _, e := range cs.MCV {
		if e.Value.Equal(v) {
			return e.Freq, true
		}
	}
	return 0, false
}

// DistinctSaturated reports whether the column hit the distinct-tracking
// cap, meaning Distinct is a lower bound on an unknown-large cardinality
// rather than an exact count. Consumers that need ndv ≪ |R| (e.g. the
// optimizer's score-cache heuristic) must treat a saturated count as "too
// many".
func (cs *ColumnStats) DistinctSaturated() bool {
	return cs.Distinct >= maxDistinctTracked
}

// CDF estimates the fraction of non-null values ≤ x from the equi-depth
// histogram, interpolating linearly within a bucket. It reports ok=false
// when no histogram is available.
func (cs *ColumnStats) CDF(x float64) (float64, bool) {
	h := cs.Hist
	if len(h) < 2 {
		return 0, false
	}
	if x < h[0] {
		return 0, true
	}
	if x >= h[len(h)-1] {
		return 1, true
	}
	// Binary search for the bucket containing x.
	lo, hi := 0, len(h)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if h[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	buckets := float64(len(h) - 1)
	frac := float64(lo) / buckets
	if width := h[lo+1] - h[lo]; width > 0 {
		frac += (x - h[lo]) / width / buckets
	}
	return frac, true
}

// TableStats is per-table statistics: row count plus per-column stats,
// positionally aligned with the schema.
type TableStats struct {
	Rows    int
	Columns []ColumnStats
}

// valueCounter counts occurrences per distinct value. Buckets are keyed
// by Value.Hash and confirmed with Value.Equal, so integral floats and
// ints collapse into one distinct value exactly as they compare equal —
// a Value-keyed map would split them (and strand NaN keys forever).
type valueCounter struct {
	buckets map[uint64][]ValueFreq
	n       int
}

// add counts one occurrence of v, returning the number of distinct values
// tracked so far.
func (c *valueCounter) add(v types.Value) int {
	if c.buckets == nil {
		c.buckets = map[uint64][]ValueFreq{}
	}
	h := v.Hash()
	bucket := c.buckets[h]
	for i := range bucket {
		if bucket[i].Value.Equal(v) {
			bucket[i].Freq++
			return c.n
		}
	}
	c.buckets[h] = append(bucket, ValueFreq{Value: v, Freq: 1})
	c.n++
	return c.n
}

// entries flattens the counter into an unordered ValueFreq slice.
func (c *valueCounter) entries() []ValueFreq {
	out := make([]ValueFreq, 0, c.n)
	for _, bucket := range c.buckets {
		out = append(out, bucket...)
	}
	return out
}

func analyze(t *Table) *TableStats {
	s := t.Schema()
	st := &TableStats{Columns: make([]ColumnStats, s.Len())}
	counts := make([]valueCounter, s.Len())
	samples := make([][]float64, s.Len())
	t.Heap.Scan(func(_ storage.RowID, tuple []types.Value) bool {
		st.Rows++
		for i, v := range tuple {
			cs := &st.Columns[i]
			cs.Count++
			if v.IsNull() {
				cs.Nulls++
				continue
			}
			if v.IsNumeric() {
				f := v.AsFloat()
				if !cs.HasRange {
					cs.HasRange, cs.Min, cs.Max = true, f, f
				} else {
					if f < cs.Min {
						cs.Min = f
					}
					if f > cs.Max {
						cs.Max = f
					}
				}
				if len(samples[i]) < histSampleCap {
					samples[i] = append(samples[i], f)
				}
			}
			if counts[i].n < maxDistinctTracked {
				counts[i].add(v)
			}
		}
		return true
	})
	for i := range st.Columns {
		cs := &st.Columns[i]
		cs.Distinct = counts[i].n
		cs.MCV = topK(counts[i].entries(), mcvKeep)
		cs.Hist = equiDepth(samples[i], histBuckets)
	}
	return st
}

// topK keeps the k highest-frequency entries, most frequent first (ties
// broken by value order so the result is deterministic across map
// iteration orders).
func topK(all []ValueFreq, k int) []ValueFreq {
	sort.Slice(all, func(i, j int) bool {
		if all[i].Freq != all[j].Freq {
			return all[i].Freq > all[j].Freq
		}
		c, _ := types.Compare(all[i].Value, all[j].Value)
		return c < 0
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// equiDepth builds equi-depth histogram boundaries from a value sample:
// boundary j sits at the j/buckets quantile of the sorted sample.
func equiDepth(vals []float64, buckets int) []float64 {
	if len(vals) < 2*buckets {
		return nil // too few values: min/max interpolation is as good
	}
	sort.Float64s(vals)
	out := make([]float64, buckets+1)
	n := len(vals)
	for j := 0; j <= buckets; j++ {
		idx := j * (n - 1) / buckets
		out[j] = vals[idx]
	}
	return out
}

// defaultSel is the selectivity assumed when nothing better is known.
const defaultSel = 1.0 / 3.0

// Selectivity estimates the fraction of a table's rows satisfying cond.
// Unknown shapes fall back to conservative constants, the same role the
// paper's heuristic 5 plays ("ordered in ascending selectivity of their
// conditional parts").
func (t *Table) Selectivity(cond expr.Node) float64 {
	if cond == nil {
		return 1
	}
	st := t.Stats()
	if st.Rows == 0 {
		return 1
	}
	return clamp01(selOf(t, st, cond))
}

func selOf(t *Table, st *TableStats, cond expr.Node) float64 {
	switch n := cond.(type) {
	case expr.Lit:
		if n.Val.Kind() == types.KindBool {
			if n.Val.AsBool() {
				return 1
			}
			return 0
		}
		return defaultSel
	case expr.Bin:
		switch {
		case n.Op == expr.OpAnd:
			return selOf(t, st, n.L) * selOf(t, st, n.R)
		case n.Op == expr.OpOr:
			a, b := selOf(t, st, n.L), selOf(t, st, n.R)
			return a + b - a*b
		case n.Op.IsComparison():
			return selCompare(t, st, n)
		}
		return defaultSel
	case expr.Un:
		if n.Op == expr.OpNot {
			return 1 - selOf(t, st, n.X)
		}
		return defaultSel
	case expr.Between:
		lo, okLo := litFloat(n.Lo)
		hi, okHi := litFloat(n.Hi)
		cs, okCol := columnStats(t, st, n.X)
		if okLo && okHi && okCol && cs.HasRange && cs.Max > cs.Min {
			return rangeFrac(cs, lo, hi)
		}
		return defaultSel * defaultSel
	case expr.In:
		cs, ok := columnStats(t, st, n.X)
		if ok && cs.Distinct > 0 {
			return float64(len(n.List)) / float64(cs.Distinct)
		}
		return defaultSel
	case expr.Like:
		// Prefix patterns are more selective than substring patterns.
		if !strings.HasPrefix(n.Pattern, "%") {
			return 0.05
		}
		return 0.15
	case expr.IsNull:
		cs, ok := columnStats(t, st, n.X)
		if ok && cs.Count > 0 {
			f := float64(cs.Nulls) / float64(cs.Count)
			if n.Negate {
				return 1 - f
			}
			return f
		}
		return 0.05
	default:
		return defaultSel
	}
}

func selCompare(t *Table, st *TableStats, n expr.Bin) float64 {
	// Normalize to column <op> literal.
	col, lit, op, ok := expr.BindColLit(t.Schema(), n)
	if !ok {
		return defaultSel
	}
	cs, okCol := columnStatsCol(t, st, col)
	if !okCol {
		return defaultSel
	}
	switch op {
	case expr.OpEq:
		if freq, ok := cs.MCVFreq(lit); ok && cs.Count > 0 {
			return float64(freq) / float64(cs.Count)
		}
		if cs.Distinct > 0 {
			return 1 / float64(cs.Distinct)
		}
		return defaultSel
	case expr.OpNe:
		if cs.Distinct > 0 {
			return 1 - 1/float64(cs.Distinct)
		}
		return 1 - defaultSel
	default:
		if !cs.HasRange || cs.Max <= cs.Min || !lit.IsNumeric() {
			return defaultSel
		}
		f := lit.AsFloat()
		frac, ok := cs.CDF(f)
		if !ok {
			frac = (f - cs.Min) / (cs.Max - cs.Min)
		}
		switch op {
		case expr.OpLt, expr.OpLe:
			return clamp01(frac)
		default: // OpGt, OpGe
			return clamp01(1 - frac)
		}
	}
}

func columnStats(t *Table, st *TableStats, n expr.Node) (*ColumnStats, bool) {
	c, ok := n.(expr.Col)
	if !ok {
		return nil, false
	}
	return columnStatsCol(t, st, c)
}

func columnStatsCol(t *Table, st *TableStats, c expr.Col) (*ColumnStats, bool) {
	idx, err := t.Schema().IndexOf(c.Table, c.Name)
	if err != nil {
		return nil, false
	}
	return &st.Columns[idx], true
}

func litFloat(n expr.Node) (float64, bool) {
	l, ok := n.(expr.Lit)
	if !ok || !l.Val.IsNumeric() {
		return 0, false
	}
	return l.Val.AsFloat(), true
}

func rangeFrac(cs *ColumnStats, lo, hi float64) float64 {
	if hi < lo {
		return 0
	}
	if cLo, ok := cs.CDF(lo); ok {
		cHi, _ := cs.CDF(hi)
		return clamp01(cHi - cLo)
	}
	span := cs.Max - cs.Min
	if span <= 0 {
		return 1
	}
	clo := lo
	if clo < cs.Min {
		clo = cs.Min
	}
	chi := hi
	if chi > cs.Max {
		chi = cs.Max
	}
	if chi < clo {
		return 0
	}
	return (chi - clo) / span
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
