package algebra

import (
	"fmt"

	"prefdb/internal/prel"
)

// Values is a leaf node carrying an already-materialized p-relation. The
// execution engines (BU, GBU, FtP) splice intermediate results back into
// plans through it, mirroring the paper's temporary relations R_i / R_Pi.
type Values struct {
	Rel *prel.PRelation
	// Label names the intermediate for explain output.
	Label string
}

// Children implements Node.
func (v *Values) Children() []Node { return nil }

// WithChildren implements Node.
func (v *Values) WithChildren(c []Node) Node {
	mustArity(c, 0)
	cp := *v
	return &cp
}

// String implements Node.
func (v *Values) String() string {
	label := v.Label
	if label == "" {
		label = "tmp"
	}
	return fmt.Sprintf("Values(%s, %d rows)", label, v.Rel.Len())
}
