package algebra

import (
	"fmt"
	"strings"

	"prefdb/internal/expr"
)

// AggFn enumerates the grouped-aggregation functions.
type AggFn uint8

const (
	// AggCount counts non-NULL values of the argument column.
	AggCount AggFn = iota
	// AggSum adds numeric values (NULL and non-numeric values are
	// skipped; an all-skipped group sums to NULL). The sum stays exact
	// int64 while every contributing value is an INT and switches to
	// float64 arithmetic on the first FLOAT, matching expression
	// evaluation's numeric widening.
	AggSum
	// AggMin / AggMax keep the extreme value under types.Compare,
	// skipping NULLs and incomparable values.
	AggMin
	AggMax
)

func (f AggFn) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	default:
		return "max"
	}
}

// AggSpec is one output aggregate: Fn over Col, named As in the output
// schema.
type AggSpec struct {
	Fn  AggFn
	Col expr.Col
	As  string
}

func (a AggSpec) String() string { return fmt.Sprintf("%s(%s) AS %s", a.Fn, a.Col, a.As) }

// GroupAgg is grouped aggregation γ_{By;Aggs} over a p-relation: one
// output tuple per distinct combination of the By columns (first-seen
// order), carrying the group key followed by the aggregate values. The
// score-confidence pair does not aggregate — every output tuple gets the
// unknown pair ⟨⊥,0⟩, like the paper's non-preference operators that
// construct new tuples rather than filter existing ones.
type GroupAgg struct {
	By    []expr.Col
	Aggs  []AggSpec
	Input Node
	// DirectAgg marks that the aggregation can key and accumulate
	// straight off a colstore scan's column vectors (EXPLAIN renders
	// `[direct-agg]`).
	DirectAgg bool
}

func (g *GroupAgg) Children() []Node { return []Node{g.Input} }
func (g *GroupAgg) WithChildren(c []Node) Node {
	mustArity(c, 1)
	cp := *g // preserve the direct-agg annotation across plan rewrites
	cp.Input = c[0]
	return &cp
}
func (g *GroupAgg) String() string {
	parts := make([]string, 0, len(g.By)+len(g.Aggs))
	for _, c := range g.By {
		parts = append(parts, c.String())
	}
	for _, a := range g.Aggs {
		parts = append(parts, a.String())
	}
	var suffix string
	if g.DirectAgg {
		suffix = " [direct-agg]"
	}
	return fmt.Sprintf("GroupAgg(%s)%s", strings.Join(parts, ", "), suffix)
}
