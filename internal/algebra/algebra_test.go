package algebra

import (
	"strings"
	"testing"

	"prefdb/internal/catalog"
	"prefdb/internal/expr"
	"prefdb/internal/pref"
	"prefdb/internal/prel"
	"prefdb/internal/schema"
	"prefdb/internal/types"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	movies := schema.New(
		schema.Column{Name: "m_id", Kind: types.KindInt},
		schema.Column{Name: "title", Kind: types.KindString},
		schema.Column{Name: "year", Kind: types.KindInt},
		schema.Column{Name: "d_id", Kind: types.KindInt},
	).WithKey("m_id")
	directors := schema.New(
		schema.Column{Name: "d_id", Kind: types.KindInt},
		schema.Column{Name: "director", Kind: types.KindString},
	).WithKey("d_id")
	genres := schema.New(
		schema.Column{Name: "m_id", Kind: types.KindInt},
		schema.Column{Name: "genre", Kind: types.KindString},
	).WithKey("m_id", "genre")
	if _, err := c.CreateTable("movies", movies); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("directors", directors); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("genres", genres); err != nil {
		t.Fatal(err)
	}
	return c
}

func resolver(t *testing.T) *Resolver {
	return &Resolver{Catalog: testCatalog(t), Funcs: pref.Functions()}
}

func samplePlan() Node {
	return &TopK{K: 10, By: ByScore, Input: &Project{
		Cols: []expr.Col{expr.ColRef("movies.title")},
		Input: &Prefer{
			P: pref.Constant("p1", "genres", expr.Eq("genre", types.Str("Comedy")), 1, 0.8),
			Input: &Join{
				Cond: expr.Bin{Op: expr.OpEq, L: expr.ColRef("movies.m_id"), R: expr.ColRef("genres.m_id")},
				Left: &Select{
					Cond:  expr.Eq("year", types.Int(2011)),
					Input: &Scan{Table: "movies"},
				},
				Right: &Scan{Table: "genres"},
			},
		},
	}}
}

func TestWalkAndCountOps(t *testing.T) {
	p := samplePlan()
	var order []string
	Walk(p, func(n Node) bool {
		order = append(order, n.String())
		return true
	})
	if len(order) != 7 {
		t.Fatalf("Walk visited %d nodes: %v", len(order), order)
	}
	if !strings.HasPrefix(order[0], "Top(") {
		t.Errorf("preorder broken: %v", order[0])
	}
	ops := CountOps(p)
	want := map[string]int{"scan": 2, "select": 1, "project": 1, "join": 1, "prefer": 1, "filter": 1}
	for k, v := range want {
		if ops[k] != v {
			t.Errorf("CountOps[%s] = %d, want %d", k, ops[k], v)
		}
	}
	// Early stop: skip subtrees.
	count := 0
	Walk(p, func(n Node) bool {
		count++
		_, isJoin := n.(*Join)
		return !isJoin
	})
	if count != 4 {
		t.Errorf("skip-subtree Walk visited %d", count)
	}
}

func TestTransformRebuilds(t *testing.T) {
	p := samplePlan()
	// Replace the TopK's K.
	q := Transform(p, func(n Node) Node {
		if tk, ok := n.(*TopK); ok {
			return &TopK{K: 5, By: tk.By, Input: tk.Input}
		}
		return n
	})
	if q.(*TopK).K != 5 {
		t.Error("transform did not apply")
	}
	if p.(*TopK).K != 10 {
		t.Error("transform mutated original")
	}
	// Identity transform returns a plan equal to the original.
	r := Transform(p, func(n Node) Node { return n })
	if !Equal(p, r) {
		t.Error("identity transform changed plan")
	}
}

func TestBaseRelations(t *testing.T) {
	p := samplePlan()
	rels := BaseRelations(p)
	if !rels["movies"] || !rels["genres"] || len(rels) != 2 {
		t.Errorf("BaseRelations = %v", rels)
	}
	aliased := &Scan{Table: "movies", Alias: "M"}
	if !BaseRelations(aliased)["m"] {
		t.Error("alias should be lower-cased")
	}
}

func TestFormat(t *testing.T) {
	p := samplePlan()
	f := Format(p)
	lines := strings.Split(strings.TrimRight(f, "\n"), "\n")
	if len(lines) != 7 {
		t.Fatalf("Format lines = %d:\n%s", len(lines), f)
	}
	if !strings.HasPrefix(lines[1], "  Project") {
		t.Errorf("indentation broken: %q", lines[1])
	}
	if !Equal(p, samplePlan()) {
		t.Error("identical plans should be Equal")
	}
	if Equal(p, &Scan{Table: "movies"}) {
		t.Error("different plans reported Equal")
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		n    Node
		want string
	}{
		{&Scan{Table: "movies"}, "Scan(movies)"},
		{&Scan{Table: "movies", Alias: "m"}, "Scan(movies AS m)"},
		{&Select{Cond: expr.Eq("x", types.Int(1))}, "Select((x = 1))"},
		{&Join{}, "Join(cross)"},
		{&Set{Op: SetUnion}, "Union()"},
		{&Set{Op: SetIntersect}, "Intersect()"},
		{&Set{Op: SetDiff}, "Diff()"},
		{&TopK{K: 3, By: ByConf}, "Top(3, conf)"},
		{&Threshold{By: ByConf, Op: expr.OpGe, Value: 1.2}, "Threshold(conf >= 1.2)"},
		{&Skyline{}, "Skyline()"},
		{&Rank{By: ByScore}, "Rank(score)"},
	}
	for _, c := range cases {
		if got := c.n.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestWithChildrenArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected arity panic")
		}
	}()
	(&Select{}).WithChildren([]Node{&Scan{}, &Scan{}})
}

func TestResolveScanSelectProject(t *testing.T) {
	r := resolver(t)
	s, err := r.Resolve(&Scan{Table: "movies"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 || s.Columns[0].Table != "movies" {
		t.Errorf("scan schema = %v", s)
	}
	// Alias renames qualifiers.
	s2, err := r.Resolve(&Scan{Table: "movies", Alias: "m"})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Columns[0].Table != "m" {
		t.Errorf("aliased qualifier = %q", s2.Columns[0].Table)
	}
	// Select validates its condition.
	if _, err := r.Resolve(&Select{Cond: expr.Eq("nope", types.Int(1)), Input: &Scan{Table: "movies"}}); err == nil {
		t.Error("bad select condition should fail resolution")
	}
	// Project narrows the schema.
	p, err := r.Resolve(&Project{Cols: []expr.Col{expr.ColRef("title"), expr.ColRef("m_id")}, Input: &Scan{Table: "movies"}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || p.Columns[0].Name != "title" {
		t.Errorf("projected schema = %v", p)
	}
	if _, err := r.Resolve(&Project{Cols: []expr.Col{expr.ColRef("ghost")}, Input: &Scan{Table: "movies"}}); err == nil {
		t.Error("projection of unknown column should fail")
	}
}

func TestResolveJoinAndSet(t *testing.T) {
	r := resolver(t)
	j := &Join{
		Cond:  expr.Bin{Op: expr.OpEq, L: expr.ColRef("movies.d_id"), R: expr.ColRef("directors.d_id")},
		Left:  &Scan{Table: "movies"},
		Right: &Scan{Table: "directors"},
	}
	s, err := r.Resolve(j)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 6 {
		t.Errorf("join schema len = %d", s.Len())
	}
	// Composite key survives.
	if len(s.Key) != 2 {
		t.Errorf("join key = %v", s.Key)
	}
	// Set ops require union compatibility.
	u := &Set{Op: SetUnion, Left: &Scan{Table: "movies"}, Right: &Scan{Table: "movies", Alias: "m2"}}
	if _, err := r.Resolve(u); err != nil {
		t.Errorf("compatible union failed: %v", err)
	}
	bad := &Set{Op: SetUnion, Left: &Scan{Table: "movies"}, Right: &Scan{Table: "directors"}}
	if _, err := r.Resolve(bad); err == nil {
		t.Error("incompatible union should fail")
	}
}

func TestResolvePreferAndFilters(t *testing.T) {
	r := resolver(t)
	ok := &Prefer{
		P:     pref.Constant("p", "genres", expr.Eq("genre", types.Str("Comedy")), 1, 0.8),
		Input: &Scan{Table: "genres"},
	}
	if _, err := r.Resolve(ok); err != nil {
		t.Fatal(err)
	}
	// Conditional part referencing a column absent from the input fails.
	bad := &Prefer{
		P:     pref.Constant("p", "genres", expr.Eq("director", types.Str("x")), 1, 0.8),
		Input: &Scan{Table: "genres"},
	}
	if _, err := r.Resolve(bad); err == nil {
		t.Error("prefer with unresolvable condition should fail")
	}
	// Scoring part errors surface too.
	badScore := &Prefer{
		P: pref.Preference{Name: "p", On: []string{"genres"}, Cond: expr.TrueLiteral(),
			Score: expr.Call{Name: "nosuch"}, Conf: 0.5},
		Input: &Scan{Table: "genres"},
	}
	if _, err := r.Resolve(badScore); err == nil {
		t.Error("prefer with unknown scoring function should fail")
	}
	// Invalid preference (conf out of range).
	badConf := &Prefer{
		P: pref.Preference{Name: "p", On: []string{"genres"}, Cond: expr.TrueLiteral(),
			Score: expr.TrueLiteral(), Conf: 2},
		Input: &Scan{Table: "genres"},
	}
	if _, err := r.Resolve(badConf); err == nil {
		t.Error("invalid preference should fail")
	}
	// Filters.
	if _, err := r.Resolve(&TopK{K: 0, Input: &Scan{Table: "movies"}}); err == nil {
		t.Error("Top(0) should fail")
	}
	if _, err := r.Resolve(&Threshold{Op: expr.OpAdd, Input: &Scan{Table: "movies"}}); err == nil {
		t.Error("non-comparison threshold should fail")
	}
	if _, err := r.Resolve(&Skyline{Input: &Scan{Table: "movies"}}); err != nil {
		t.Errorf("skyline resolve: %v", err)
	}
	if _, err := r.Resolve(&Rank{Input: &Scan{Table: "movies"}}); err != nil {
		t.Errorf("rank resolve: %v", err)
	}
	if _, err := r.Resolve(nil); err == nil {
		t.Error("nil plan should fail")
	}
}

func TestResolveWholePlan(t *testing.T) {
	r := resolver(t)
	s, err := r.Resolve(samplePlan())
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || s.Columns[0].Name != "title" {
		t.Errorf("final schema = %v", s)
	}
	if _, err := r.Resolve(&Scan{Table: "nope"}); err == nil {
		t.Error("unknown table should fail")
	}
}

func TestValuesNode(t *testing.T) {
	rel := prel.New(schema.New(schema.Column{Name: "x", Kind: types.KindInt}))
	rel.Append(prel.Row{Tuple: []types.Value{types.Int(1)}})
	v := &Values{Rel: rel, Label: "tmp1"}
	if len(v.Children()) != 0 {
		t.Error("Values should be a leaf")
	}
	if got := v.String(); got != "Values(tmp1, 1 rows)" {
		t.Errorf("String = %q", got)
	}
	unnamed := &Values{Rel: rel}
	if got := unnamed.String(); got != "Values(tmp, 1 rows)" {
		t.Errorf("unnamed String = %q", got)
	}
	cp := v.WithChildren(nil)
	if cp.(*Values).Rel != rel {
		t.Error("WithChildren should preserve the relation")
	}
	// Resolver yields the carried schema.
	r := resolver(t)
	s, err := r.Resolve(v)
	if err != nil || s.Len() != 1 {
		t.Errorf("resolve values = %v, %v", s, err)
	}
}

func TestCountOpsFilters(t *testing.T) {
	base := &Scan{Table: "movies"}
	plans := []Node{
		&TopK{K: 1, Input: base},
		&Threshold{Op: expr.OpGe, Input: base},
		&Skyline{Input: base},
		&Rank{Input: base},
	}
	for _, p := range plans {
		if CountOps(p)["filter"] != 1 {
			t.Errorf("%s not counted as filter", p)
		}
	}
	set := &Set{Op: SetUnion, Left: base, Right: &Scan{Table: "movies", Alias: "m2"}}
	if CountOps(set)["set"] != 1 {
		t.Error("set op not counted")
	}
}

func TestWithChildrenRebuilds(t *testing.T) {
	a := &Scan{Table: "movies"}
	b := &Scan{Table: "genres"}
	nodes := []Node{
		&Select{Cond: expr.TrueLiteral(), Input: a},
		&Project{Cols: []expr.Col{expr.ColRef("m_id")}, Input: a},
		&Prefer{P: pref.Constant("p", "movies", expr.TrueLiteral(), 1, 0.5), Input: a},
		&TopK{K: 2, Input: a},
		&Threshold{Op: expr.OpGe, Input: a},
		&Skyline{Input: a},
		&Rank{Input: a},
	}
	for _, n := range nodes {
		out := n.WithChildren([]Node{b})
		if out.Children()[0] != b {
			t.Errorf("%T WithChildren did not swap input", n)
		}
		if n.Children()[0] != a {
			t.Errorf("%T WithChildren mutated original", n)
		}
	}
	j := &Join{Left: a, Right: b}
	j2 := j.WithChildren([]Node{b, a})
	if j2.Children()[0] != b || j2.Children()[1] != a {
		t.Error("join WithChildren broken")
	}
	s := &Set{Op: SetDiff, Left: a, Right: b}
	s2 := s.WithChildren([]Node{b, a})
	if s2.(*Set).Op != SetDiff || s2.Children()[0] != b {
		t.Error("set WithChildren broken")
	}
	sc := a.WithChildren(nil)
	if sc.(*Scan).Table != "movies" {
		t.Error("scan WithChildren broken")
	}
}
