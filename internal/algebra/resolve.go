package algebra

import (
	"fmt"

	"prefdb/internal/catalog"
	"prefdb/internal/expr"
	"prefdb/internal/schema"
	"prefdb/internal/types"
)

// Resolver computes and validates the output schema of every plan node
// against a catalog and function registry. It is the semantic-analysis pass
// shared by the planner, optimizer, and execution engines.
type Resolver struct {
	Catalog *catalog.Catalog
	Funcs   *expr.Registry
}

// Resolve returns the output schema of n, validating column references,
// condition types, and union compatibility along the way.
func (r *Resolver) Resolve(n Node) (*schema.Schema, error) {
	switch x := n.(type) {
	case *Scan:
		t, err := r.Catalog.Table(x.Table)
		if err != nil {
			return nil, err
		}
		return t.Schema().Rename(x.AliasName()), nil

	case *Select:
		in, err := r.Resolve(x.Input)
		if err != nil {
			return nil, err
		}
		if _, err := expr.CompileCondition(x.Cond, in, r.Funcs); err != nil {
			return nil, fmt.Errorf("in %s: %w", x, err)
		}
		return in, nil

	case *Project:
		in, err := r.Resolve(x.Input)
		if err != nil {
			return nil, err
		}
		ords := make([]int, len(x.Cols))
		for i, c := range x.Cols {
			idx, err := in.IndexOf(c.Table, c.Name)
			if err != nil {
				return nil, fmt.Errorf("in %s: %w", x, err)
			}
			ords[i] = idx
		}
		return in.Project(ords), nil

	case *Join:
		l, err := r.Resolve(x.Left)
		if err != nil {
			return nil, err
		}
		rt, err := r.Resolve(x.Right)
		if err != nil {
			return nil, err
		}
		out := l.Concat(rt)
		if x.Cond != nil {
			if _, err := expr.CompileCondition(x.Cond, out, r.Funcs); err != nil {
				return nil, fmt.Errorf("in %s: %w", x, err)
			}
		}
		return out, nil

	case *Set:
		l, err := r.Resolve(x.Left)
		if err != nil {
			return nil, err
		}
		rt, err := r.Resolve(x.Right)
		if err != nil {
			return nil, err
		}
		if !l.EqualLayout(rt) {
			return nil, fmt.Errorf("algebra: %s inputs are not union-compatible: %s vs %s", x.Op, l, rt)
		}
		return l, nil

	case *Prefer:
		in, err := r.Resolve(x.Input)
		if err != nil {
			return nil, err
		}
		if err := x.P.Validate(); err != nil {
			return nil, err
		}
		if _, err := expr.CompileCondition(x.P.Cond, in, r.Funcs); err != nil {
			return nil, fmt.Errorf("in %s (conditional part): %w", x, err)
		}
		if _, err := expr.Compile(x.P.Score, in, r.Funcs); err != nil {
			return nil, fmt.Errorf("in %s (scoring part): %w", x, err)
		}
		return in, nil

	case *TopK:
		if x.K <= 0 {
			return nil, fmt.Errorf("algebra: Top(%d) requires k > 0", x.K)
		}
		return r.Resolve(x.Input)

	case *Threshold:
		if !x.Op.IsComparison() {
			return nil, fmt.Errorf("algebra: Threshold operator %s is not a comparison", x.Op)
		}
		return r.Resolve(x.Input)

	case *Skyline:
		in, err := r.Resolve(x.Input)
		if err != nil {
			return nil, err
		}
		for _, d := range x.Dims {
			idx, err := in.IndexOf(d.Col.Table, d.Col.Name)
			if err != nil {
				return nil, fmt.Errorf("in %s: %w", x, err)
			}
			k := in.Columns[idx].Kind
			if k != types.KindInt && k != types.KindFloat {
				return nil, fmt.Errorf("algebra: skyline dimension %s must be numeric, got %s", d.Col, k)
			}
		}
		return in, nil

	case *Rank:
		return r.Resolve(x.Input)

	case *OrderBy:
		in, err := r.Resolve(x.Input)
		if err != nil {
			return nil, err
		}
		if len(x.Keys) == 0 {
			return nil, fmt.Errorf("algebra: OrderBy requires at least one key")
		}
		for _, k := range x.Keys {
			if _, err := in.IndexOf(k.Col.Table, k.Col.Name); err != nil {
				return nil, fmt.Errorf("in %s: %w", x, err)
			}
		}
		return in, nil

	case *Limit:
		if x.N < 0 || x.Offset < 0 {
			return nil, fmt.Errorf("algebra: Limit requires non-negative count and offset")
		}
		return r.Resolve(x.Input)

	case *Values:
		return x.Rel.Schema, nil

	case nil:
		return nil, fmt.Errorf("algebra: nil plan node")

	default:
		return nil, fmt.Errorf("algebra: unknown node type %T", n)
	}
}
