// Package algebra defines the logical preference-aware relational algebra
// of the paper: the classical operators extended to p-relations, the prefer
// operator λ_{p,F}, and the tuple-filtering operators that the paper keeps
// deliberately separate from preference evaluation (top-k, confidence
// threshold, skyline, rank).
//
// An extended query plan is an expression tree whose leaves are p-relations
// (Scan nodes) and whose internal nodes are extended relational and prefer
// operators (§VI).
package algebra

import (
	"fmt"
	"strings"

	"prefdb/internal/expr"
	"prefdb/internal/pref"
)

// Node is a logical plan operator.
type Node interface {
	// Children returns the input operators in order.
	Children() []Node
	// WithChildren returns a copy of the node with the inputs replaced;
	// len must match Children.
	WithChildren(children []Node) Node
	// String renders the operator (one line, without inputs).
	String() string
}

// Scan reads a base p-relation from the catalog. Alias defaults to the
// table name and qualifies the output columns.
type Scan struct {
	Table string
	Alias string
	// SegCount/SegSkip carry the optimizer's zone-map annotation for
	// EXPLAIN: how many columnar segments the table holds and how many the
	// enclosing filter's conjuncts are expected to skip. Zero SegCount
	// means no segment store was built (or the annotation pass is off).
	SegCount int
	SegSkip  int
	// DirectCol marks that the enclosing filter compiled at least one
	// direct-column kernel, so a colstore-backed scan can evaluate it on
	// borrowed segment vectors without materializing row views (EXPLAIN
	// renders `[direct-col]`).
	DirectCol bool
}

// Select is σ_φ over a p-relation; it filters tuples and passes score and
// confidence through unchanged.
type Select struct {
	Cond  expr.Node
	Input Node
}

// Project is π over a p-relation; it keeps the listed columns and always
// preserves the score and confidence attributes.
type Project struct {
	Cols  []expr.Col
	Input Node
}

// Join is the extended inner join ⋈_{φ,F}: tuples that join combine their
// score-confidence pairs with the query's aggregate function.
type Join struct {
	Cond        expr.Node
	Left, Right Node
	// DirectJoin marks that the join qualifies for direct-on-column
	// execution: an equi-join whose probe side is a colstore-backed scan
	// with typed key vectors, so the hash probe runs on borrowed segment
	// vectors and materializes row views only for matching tuples
	// (EXPLAIN renders `[direct-join]`).
	DirectJoin bool
}

// SetOp enumerates the extended set operations.
type SetOp uint8

const (
	// SetUnion is ∪_F with duplicate elimination; pairs of duplicates
	// combine via F.
	SetUnion SetOp = iota
	// SetIntersect is ∩_F; matching tuples combine via F.
	SetIntersect
	// SetDiff is R_i − R_j; scores of R_i pass through.
	SetDiff
)

func (o SetOp) String() string {
	switch o {
	case SetUnion:
		return "Union"
	case SetIntersect:
		return "Intersect"
	default:
		return "Diff"
	}
}

// Set is a set operation over union-compatible p-relations.
type Set struct {
	Op          SetOp
	Left, Right Node
}

// Prefer is λ_{p,F}: it evaluates preference P on its input, combining the
// preference's ⟨S(r), C⟩ with each qualifying tuple's current pair through
// the aggregate function; non-qualifying tuples pass unchanged.
type Prefer struct {
	P     pref.Preference
	Input Node

	// CacheHint is set by the optimizer when the score-cache heuristic
	// decides memoizing ⟨S,C⟩ per distinct key is profitable (the
	// preference reads a low-cardinality attribute set); the executor
	// consults it in CacheAuto mode. CacheNDV records the estimated
	// number of distinct keys behind the decision, for EXPLAIN.
	CacheHint bool
	CacheNDV  int
}

// RankBy selects which dimension a filtering operator orders or thresholds
// on.
type RankBy uint8

const (
	// ByScore orders/thresholds on the tuple score.
	ByScore RankBy = iota
	// ByConf orders/thresholds on the tuple confidence.
	ByConf
)

func (r RankBy) String() string {
	if r == ByConf {
		return "conf"
	}
	return "score"
}

// TopK is the filtering operator top(k, by): order by the chosen dimension
// descending (unknown scores last) and keep the k best.
type TopK struct {
	K     int
	By    RankBy
	Input Node
}

// Threshold filters on the score or confidence dimension, e.g.
// σ_{conf ≥ τ} of the paper's Q2. Op must be a comparison operator.
type Threshold struct {
	By    RankBy
	Op    expr.Op
	Value float64
	Input Node
}

// SkyDim is one dimension of an attribute skyline: a column plus the
// preferred direction (Max true = larger is better).
type SkyDim struct {
	Col expr.Col
	Max bool
}

// String renders "col MAX" / "col MIN".
func (d SkyDim) String() string {
	if d.Max {
		return d.Col.String() + " MAX"
	}
	return d.Col.String() + " MIN"
}

// Skyline keeps the tuples not dominated by any other tuple. With no Dims
// it operates on the (score, conf) plane of the p-relation; with Dims it is
// the classic attribute skyline of Börzsönyi et al. (the paper's related
// work [6]) over the listed columns.
type Skyline struct {
	// Dims are the skyline dimensions; empty means (score, conf).
	Dims  []SkyDim
	Input Node
}

// Rank orders all tuples by the chosen dimension descending without
// discarding any ("all results ranked").
type Rank struct {
	By    RankBy
	Input Node
}

// OrderKey is one ORDER BY key: an attribute column and direction.
type OrderKey struct {
	Col  expr.Col
	Desc bool
}

// String renders "col" or "col DESC".
func (k OrderKey) String() string {
	if k.Desc {
		return k.Col.String() + " DESC"
	}
	return k.Col.String()
}

// OrderBy sorts tuples by attribute columns (stable); unlike Rank it orders
// on data values, not on the preference dimensions.
type OrderBy struct {
	Keys  []OrderKey
	Input Node
}

// Limit keeps at most N tuples after skipping Offset.
type Limit struct {
	N      int
	Offset int
	Input  Node
}

func (s *Scan) Children() []Node { return nil }
func (s *Scan) WithChildren(c []Node) Node {
	mustArity(c, 0)
	cp := *s
	return &cp
}
func (s *Scan) String() string {
	var suffix string
	if s.SegCount > 0 {
		suffix = fmt.Sprintf(" [segments %d skip≈%d]", s.SegCount, s.SegSkip)
	}
	if s.DirectCol {
		suffix += " [direct-col]"
	}
	if s.Alias != "" && !strings.EqualFold(s.Alias, s.Table) {
		return fmt.Sprintf("Scan(%s AS %s)%s", s.Table, s.Alias, suffix)
	}
	return fmt.Sprintf("Scan(%s)%s", s.Table, suffix)
}

// AliasName returns the effective alias (lower-case).
func (s *Scan) AliasName() string {
	if s.Alias != "" {
		return strings.ToLower(s.Alias)
	}
	return strings.ToLower(s.Table)
}

func (s *Select) Children() []Node { return []Node{s.Input} }
func (s *Select) WithChildren(c []Node) Node {
	mustArity(c, 1)
	return &Select{Cond: s.Cond, Input: c[0]}
}
func (s *Select) String() string { return fmt.Sprintf("Select(%s)", s.Cond) }

func (p *Project) Children() []Node { return []Node{p.Input} }
func (p *Project) WithChildren(c []Node) Node {
	mustArity(c, 1)
	return &Project{Cols: p.Cols, Input: c[0]}
}
func (p *Project) String() string {
	cols := make([]string, len(p.Cols))
	for i, c := range p.Cols {
		cols[i] = c.String()
	}
	return fmt.Sprintf("Project(%s)", strings.Join(cols, ", "))
}

func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }
func (j *Join) WithChildren(c []Node) Node {
	mustArity(c, 2)
	cp := *j // preserve the direct-join annotation across plan rewrites
	cp.Left, cp.Right = c[0], c[1]
	return &cp
}
func (j *Join) String() string {
	var suffix string
	if j.DirectJoin {
		suffix = " [direct-join]"
	}
	if j.Cond == nil {
		return "Join(cross)" + suffix
	}
	return fmt.Sprintf("Join(%s)%s", j.Cond, suffix)
}

func (s *Set) Children() []Node { return []Node{s.Left, s.Right} }
func (s *Set) WithChildren(c []Node) Node {
	mustArity(c, 2)
	return &Set{Op: s.Op, Left: c[0], Right: c[1]}
}
func (s *Set) String() string { return s.Op.String() + "()" }

func (p *Prefer) Children() []Node { return []Node{p.Input} }
func (p *Prefer) WithChildren(c []Node) Node {
	mustArity(c, 1)
	cp := *p // preserve cache annotations across plan rewrites
	cp.Input = c[0]
	return &cp
}
func (p *Prefer) String() string {
	if p.CacheHint {
		return fmt.Sprintf("Prefer(%s) [cache ndv≈%d]", p.P.Label(), p.CacheNDV)
	}
	return fmt.Sprintf("Prefer(%s)", p.P.Label())
}

func (t *TopK) Children() []Node { return []Node{t.Input} }
func (t *TopK) WithChildren(c []Node) Node {
	mustArity(c, 1)
	return &TopK{K: t.K, By: t.By, Input: c[0]}
}
func (t *TopK) String() string { return fmt.Sprintf("Top(%d, %s)", t.K, t.By) }

func (t *Threshold) Children() []Node { return []Node{t.Input} }
func (t *Threshold) WithChildren(c []Node) Node {
	mustArity(c, 1)
	return &Threshold{By: t.By, Op: t.Op, Value: t.Value, Input: c[0]}
}
func (t *Threshold) String() string {
	return fmt.Sprintf("Threshold(%s %s %g)", t.By, t.Op, t.Value)
}

func (s *Skyline) Children() []Node { return []Node{s.Input} }
func (s *Skyline) WithChildren(c []Node) Node {
	mustArity(c, 1)
	return &Skyline{Dims: s.Dims, Input: c[0]}
}
func (s *Skyline) String() string {
	if len(s.Dims) == 0 {
		return "Skyline()"
	}
	parts := make([]string, len(s.Dims))
	for i, d := range s.Dims {
		parts[i] = d.String()
	}
	return "Skyline(" + strings.Join(parts, ", ") + ")"
}

func (r *Rank) Children() []Node { return []Node{r.Input} }
func (r *Rank) WithChildren(c []Node) Node {
	mustArity(c, 1)
	return &Rank{By: r.By, Input: c[0]}
}
func (r *Rank) String() string { return fmt.Sprintf("Rank(%s)", r.By) }

func (o *OrderBy) Children() []Node { return []Node{o.Input} }
func (o *OrderBy) WithChildren(c []Node) Node {
	mustArity(c, 1)
	return &OrderBy{Keys: o.Keys, Input: c[0]}
}
func (o *OrderBy) String() string {
	parts := make([]string, len(o.Keys))
	for i, k := range o.Keys {
		parts[i] = k.String()
	}
	return "OrderBy(" + strings.Join(parts, ", ") + ")"
}

func (l *Limit) Children() []Node { return []Node{l.Input} }
func (l *Limit) WithChildren(c []Node) Node {
	mustArity(c, 1)
	return &Limit{N: l.N, Offset: l.Offset, Input: c[0]}
}
func (l *Limit) String() string {
	if l.Offset > 0 {
		return fmt.Sprintf("Limit(%d, offset %d)", l.N, l.Offset)
	}
	return fmt.Sprintf("Limit(%d)", l.N)
}

func mustArity(c []Node, n int) {
	if len(c) != n {
		panic(fmt.Sprintf("algebra: WithChildren arity %d, want %d", len(c), n))
	}
}

// Walk visits n and all descendants in preorder; the visitor returns false
// to skip a subtree.
func Walk(n Node, visit func(Node) bool) {
	if n == nil || !visit(n) {
		return
	}
	for _, c := range n.Children() {
		Walk(c, visit)
	}
}

// Transform rebuilds the plan bottom-up, applying f to every node after its
// children have been transformed.
func Transform(n Node, f func(Node) Node) Node {
	children := n.Children()
	if len(children) > 0 {
		newChildren := make([]Node, len(children))
		changed := false
		for i, c := range children {
			newChildren[i] = Transform(c, f)
			if newChildren[i] != c {
				changed = true
			}
		}
		if changed {
			n = n.WithChildren(newChildren)
		}
	}
	return f(n)
}

// BaseRelations returns the set of base-relation aliases (lower-case)
// reachable under n.
func BaseRelations(n Node) map[string]bool {
	out := map[string]bool{}
	Walk(n, func(x Node) bool {
		if s, ok := x.(*Scan); ok {
			out[s.AliasName()] = true
		}
		return true
	})
	return out
}

// CountOps tallies operators by type name (for tests and explain output).
func CountOps(n Node) map[string]int {
	out := map[string]int{}
	Walk(n, func(x Node) bool {
		switch x.(type) {
		case *Scan:
			out["scan"]++
		case *Select:
			out["select"]++
		case *Project:
			out["project"]++
		case *Join:
			out["join"]++
		case *Set:
			out["set"]++
		case *Prefer:
			out["prefer"]++
		case *TopK, *Threshold, *Skyline, *Rank, *OrderBy, *Limit:
			out["filter"]++
		}
		return true
	})
	return out
}

// Format renders the plan as an indented tree, the explain format used by
// the CLI and tests.
func Format(n Node) string {
	var b strings.Builder
	format(&b, n, 0)
	return b.String()
}

func format(b *strings.Builder, n Node, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(n.String())
	b.WriteByte('\n')
	for _, c := range n.Children() {
		format(b, c, depth+1)
	}
}

// Equal reports whether two plans are structurally identical.
func Equal(a, b Node) bool { return Format(a) == Format(b) }
