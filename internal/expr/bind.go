package expr

import (
	"prefdb/internal/schema"
	"prefdb/internal/types"
)

// BindColLit normalizes a comparison conjunct to (column-of-s, literal,
// op), flipping the operator when the literal is on the left. ok is false
// for non-comparisons, shapes other than col <cmp> lit, and columns that do
// not resolve in s. It is the shared decomposition behind index-path
// selection (exec), selectivity estimation (catalog) and zone-map pruning
// (colstore), so all three agree on which conjuncts are sargable.
func BindColLit(s *schema.Schema, n Bin) (Col, types.Value, Op, bool) {
	if !n.Op.IsComparison() {
		return Col{}, types.Value{}, n.Op, false
	}
	if col, ok := n.L.(Col); ok {
		if lit, ok2 := n.R.(Lit); ok2 {
			if _, err := s.IndexOf(col.Table, col.Name); err == nil {
				return col, lit.Val, n.Op, true
			}
		}
	}
	if col, ok := n.R.(Col); ok {
		if lit, ok2 := n.L.(Lit); ok2 {
			if _, err := s.IndexOf(col.Table, col.Name); err == nil {
				return col, lit.Val, FlipCmp(n.Op), true
			}
		}
	}
	return Col{}, types.Value{}, n.Op, false
}

// FlipCmp mirrors a comparison operator across its operands, so that
// lit <op> col reads as col <FlipCmp(op)> lit. Equality operators and
// non-comparisons are their own mirror.
func FlipCmp(op Op) Op {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default:
		return op
	}
}
