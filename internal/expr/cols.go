// Direct-on-column kernels: the batch filter and score paths that read
// borrowed colstore vectors (types.ColVec) instead of decoded tuples.
//
// Every kernel mirrors the scalar evaluator bit-for-bit — the same
// three-valued comparison semantics as compareFilter (NULL or
// incomparable kinds reject; numerics compare int-wise only when both
// sides are INT, float-wise otherwise; NaN compares equal, matching
// types.Compare's fallthrough) and the same float arithmetic as
// arithApply. Kernels report ok=false whenever a needed typed vector is
// missing (Raw-encoded column), and the caller falls back to the tuple
// path, so engaging the direct path can never change results.
//
// Exactness rule for the score path: an INT-kind arithmetic node
// evaluates with wrapping int64 semantics on the row path
// (arithApply), which float64 cannot reproduce, so evalC is only built
// for nodes whose row-path evaluation is already float-wise.
package expr

import (
	"prefdb/internal/types"
)

// ColScratch carries the per-conjunct kernel caches a sequential batch
// pipeline reuses across batches. The only cache today is the
// dictionary-predicate accept vector: a string comparison evaluates once
// per segment against the dictionary, and consecutive windows of the
// same segment share the Dict slice, so the accept bits carry over.
// One ColScratch per compiled condition per goroutine; zero value ready.
type ColScratch struct {
	perConj []dictCache
	pending []*Compiled
}

func (s *ColScratch) cacheFor(i int) *dictCache {
	for len(s.perConj) <= i {
		s.perConj = append(s.perConj, dictCache{})
	}
	return &s.perConj[i]
}

// dictCache holds the accept bit per dictionary code for one string
// conjunct, keyed by the identity of the segment dictionary it was
// computed against.
type dictCache struct {
	dict   []string
	accept []bool
}

func (d *dictCache) matches(dict []string) bool {
	return len(d.dict) == len(dict) && (len(dict) == 0 || &d.dict[0] == &dict[0])
}

// TruthyBatchCols applies the condition over a columnar batch: conjuncts
// with a direct-column kernel compact sel against the borrowed vectors
// first (AND commutes, so kernel-capable conjuncts running early never
// changes the accepted set), then any remaining conjuncts run over the
// decoded row views. The second return value is the number of selected
// rows that crossed that materialization boundary (0 when every conjunct
// ran direct); exec folds it into Stats.RowsMaterialized.
func (c *Compiled) TruthyBatchCols(cols []types.ColVec, rows [][]types.Value, sel []int32, scr *ColScratch) ([]int32, int) {
	if len(c.conj) > 1 {
		pending := scr.pending[:0]
		for i, p := range c.conj {
			if len(sel) == 0 {
				scr.pending = pending
				return sel, 0
			}
			if p.filterC != nil {
				if ns, ok := p.filterC(cols, sel, scr.cacheFor(i)); ok {
					sel = ns
					continue
				}
			}
			pending = append(pending, p)
		}
		scr.pending = pending
		if len(pending) == 0 || len(sel) == 0 {
			return sel, 0
		}
		mat := len(sel)
		for _, p := range pending {
			sel = p.truthyFilter(rows, sel)
			if len(sel) == 0 {
				break
			}
		}
		return sel, mat
	}
	if c.filterC != nil {
		if ns, ok := c.filterC(cols, sel, scr.cacheFor(0)); ok {
			return ns, 0
		}
	}
	mat := len(sel)
	return c.truthyFilter(rows, sel), mat
}

// EvalFloats evaluates the expression over borrowed column vectors as a
// float column: out[k] (and its NULL flag null[k]) for row sel[k], both
// len(sel). It reports false when the expression has no direct-column
// form or a needed typed vector is missing at runtime; the caller must
// then fall back to EvalBatch over tuples. On success the results are
// exactly EvalBatch's: a numeric value v becomes (v.AsFloat(), false)
// and NULL becomes (_, true).
func (c *Compiled) EvalFloats(cols []types.ColVec, sel []int32, out []float64, null []bool) bool {
	if c.evalC == nil {
		return false
	}
	return c.evalC(cols, sel, out, null)
}

// CanEvalCols reports whether the expression compiled a direct-column
// score kernel (EvalFloats may still fall back at runtime on Raw
// columns). The optimizer uses this for the [direct-col] annotation.
func (c *Compiled) CanEvalCols() bool { return c.evalC != nil }

// CanFilterCols reports whether the condition has at least one conjunct
// with a direct-column filter kernel.
func (c *Compiled) CanFilterCols() bool {
	if c.filterC != nil {
		return true
	}
	for _, p := range c.conj {
		if p.filterC != nil {
			return true
		}
	}
	return false
}

// acceptMask is the lt/eq/gt accept-bit decomposition of a comparison
// operator (compareFilter's decomposition, factored for reuse by the
// column kernels).
type acceptMask struct{ lt, eq, gt bool }

func opAccept(op Op, flip bool) acceptMask {
	var m acceptMask
	switch op {
	case OpEq:
		m.eq = true
	case OpNe:
		m.lt, m.gt = true, true
	case OpLt:
		m.lt = true
	case OpLe:
		m.lt, m.eq = true, true
	case OpGt:
		m.gt = true
	default: // OpGe
		m.eq, m.gt = true, true
	}
	if flip {
		m.lt, m.gt = m.gt, m.lt
	}
	return m
}

func (m acceptMask) ok(cmp int) bool {
	return (cmp < 0 && m.lt) || (cmp == 0 && m.eq) || (cmp > 0 && m.gt)
}

// hasTyped reports whether the window carries any typed vector (a Raw or
// absent column has none, forcing the tuple fallback). Run-length windows
// count as typed: their kind is known even though the dense slices are
// absent.
func hasTyped(cv *types.ColVec) bool {
	return cv.Ints != nil || cv.Floats != nil || cv.Codes != nil || cv.Bools != nil || cv.HasRuns()
}

// sameDict reports whether two dictionary slices are the same snapshot of
// a shared table dictionary (slice identity). Only then is code-vs-code
// comparison sound: equal codes iff equal strings.
func sameDict(a, b []string) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// compareFilterCols builds the direct-column kernel for a comparison:
// column-vs-literal (either orientation) or column-vs-column. Returns nil
// when the operands don't match those shapes.
func (c *compiler) compareFilterCols(x Bin) func(cols []types.ColVec, sel []int32, dc *dictCache) ([]int32, bool) {
	if col, okC := x.L.(Col); okC {
		if lit, okL := x.R.(Lit); okL {
			return c.colLitKernel(col, lit, x.Op, false)
		}
		if colR, okR := x.R.(Col); okR {
			return c.colColKernel(col, colR, x.Op)
		}
	}
	if lit, okL := x.L.(Lit); okL {
		if col, okC := x.R.(Col); okC {
			// Literal on the left: Compare's sign is mirrored.
			return c.colLitKernel(col, lit, x.Op, true)
		}
	}
	return nil
}

func (c *compiler) colLitKernel(col Col, lit Lit, op Op, flip bool) func(cols []types.ColVec, sel []int32, dc *dictCache) ([]int32, bool) {
	idx, err := c.schema.IndexOf(col.Table, col.Name)
	if err != nil {
		return nil
	}
	v := lit.Val
	if v.IsNull() {
		// NULL comparand: the comparison is NULL for every row, so the
		// condition accepts nothing — no vector needed.
		return func(_ []types.ColVec, sel []int32, _ *dictCache) ([]int32, bool) { return sel[:0], true }
	}
	m := opAccept(op, flip)
	switch v.Kind() {
	case types.KindInt, types.KindFloat:
		litInt := v.Kind() == types.KindInt
		ri := int64(0)
		if litInt {
			ri = v.AsInt()
		}
		rf := v.AsFloat()
		return func(cols []types.ColVec, sel []int32, _ *dictCache) ([]int32, bool) {
			cv := &cols[idx]
			nulls := cv.Nulls
			out := sel[:0]
			switch {
			case cv.Ints != nil && litInt:
				vec := cv.Ints
				for _, i := range sel {
					if nulls != nil && nulls[i] {
						continue
					}
					cmp := 0
					switch a := vec[i]; {
					case a < ri:
						cmp = -1
					case a > ri:
						cmp = 1
					}
					if m.ok(cmp) {
						out = append(out, i)
					}
				}
			case cv.Ints != nil:
				// INT column vs FLOAT literal: mixed numerics compare
				// float-wise, exactly types.Compare.
				vec := cv.Ints
				for _, i := range sel {
					if nulls != nil && nulls[i] {
						continue
					}
					cmp := 0
					switch a := float64(vec[i]); {
					case a < rf:
						cmp = -1
					case a > rf:
						cmp = 1
					}
					if m.ok(cmp) {
						out = append(out, i)
					}
				}
			case cv.Floats != nil:
				vec := cv.Floats
				for _, i := range sel {
					if nulls != nil && nulls[i] {
						continue
					}
					cmp := 0
					switch a := vec[i]; {
					case a < rf:
						cmp = -1
					case a > rf:
						cmp = 1
					}
					if m.ok(cmp) {
						out = append(out, i)
					}
				}
			case cv.RunVals != nil:
				// Run-length int window: the comparison evaluates once per
				// run; rows merely inherit their run's accept bit.
				runs := cv.RunVals
				k, acc := -1, false
				for _, i := range sel {
					if nulls != nil && nulls[i] {
						continue
					}
					hint := k
					if hint < 0 {
						hint = 0
					}
					if nk := cv.RunAt(i, hint); nk != k {
						k = nk
						cmp := 0
						if litInt {
							switch a := runs[k]; {
							case a < ri:
								cmp = -1
							case a > ri:
								cmp = 1
							}
						} else {
							switch a := float64(runs[k]); {
							case a < rf:
								cmp = -1
							case a > rf:
								cmp = 1
							}
						}
						acc = m.ok(cmp)
					}
					if acc {
						out = append(out, i)
					}
				}
			case hasTyped(cv):
				// Typed non-numeric column: every live value is
				// incomparable with a numeric literal, so nothing passes.
				return sel[:0], true
			default:
				return nil, false
			}
			return out, true
		}
	case types.KindString:
		rs := v.AsString()
		return func(cols []types.ColVec, sel []int32, dc *dictCache) ([]int32, bool) {
			cv := &cols[idx]
			if cv.Codes == nil && cv.RunCodes == nil {
				if hasTyped(cv) {
					return sel[:0], true
				}
				return nil, false
			}
			// Evaluate the predicate once per segment against the
			// dictionary: consecutive windows share the Dict slice, so the
			// accept bits are cached on identity.
			if !dc.matches(cv.Dict) {
				dc.dict = cv.Dict
				if cap(dc.accept) < len(cv.Dict) {
					dc.accept = make([]bool, len(cv.Dict))
				}
				dc.accept = dc.accept[:len(cv.Dict)]
				for code, s := range cv.Dict {
					cmp := 0
					switch {
					case s < rs:
						cmp = -1
					case s > rs:
						cmp = 1
					}
					dc.accept[code] = m.ok(cmp)
				}
			}
			accept := dc.accept
			nulls := cv.Nulls
			out := sel[:0]
			if cv.RunCodes != nil {
				// Run-length code window: one accept-bit lookup per run.
				runs := cv.RunCodes
				k, acc := -1, false
				for _, i := range sel {
					if nulls != nil && nulls[i] {
						continue
					}
					hint := k
					if hint < 0 {
						hint = 0
					}
					if nk := cv.RunAt(i, hint); nk != k {
						k = nk
						acc = accept[runs[k]]
					}
					if acc {
						out = append(out, i)
					}
				}
				return out, true
			}
			codes := cv.Codes
			for _, i := range sel {
				if nulls != nil && nulls[i] {
					continue
				}
				if accept[codes[i]] {
					out = append(out, i)
				}
			}
			return out, true
		}
	case types.KindBool:
		rb := v.AsBool()
		return func(cols []types.ColVec, sel []int32, _ *dictCache) ([]int32, bool) {
			cv := &cols[idx]
			if cv.Bools == nil {
				if hasTyped(cv) {
					return sel[:0], true
				}
				return nil, false
			}
			vec := cv.Bools
			nulls := cv.Nulls
			out := sel[:0]
			for _, i := range sel {
				if nulls != nil && nulls[i] {
					continue
				}
				cmp := 0
				switch a := vec[i]; {
				case !a && rb:
					cmp = -1 // false sorts before true
				case a && !rb:
					cmp = 1
				}
				if m.ok(cmp) {
					out = append(out, i)
				}
			}
			return out, true
		}
	default:
		return nil
	}
}

func (c *compiler) colColKernel(l, r Col, op Op) func(cols []types.ColVec, sel []int32, dc *dictCache) ([]int32, bool) {
	li, err := c.schema.IndexOf(l.Table, l.Name)
	if err != nil {
		return nil
	}
	ri, err := c.schema.IndexOf(r.Table, r.Name)
	if err != nil {
		return nil
	}
	m := opAccept(op, false)
	wantEq := op == OpEq
	codeCmp := op == OpEq || op == OpNe
	return func(cols []types.ColVec, sel []int32, _ *dictCache) ([]int32, bool) {
		lv, rv := &cols[li], &cols[ri]
		if lv.HasRuns() || rv.HasRuns() {
			// Run-form windows would make the hasTyped fall-through below
			// reject comparable pairs; column-column predicates over runs
			// take the tuple path.
			return nil, false
		}
		ln, rn := lv.Nulls, rv.Nulls
		out := sel[:0]
		reject := func(i int32) bool {
			return (ln != nil && ln[i]) || (rn != nil && rn[i])
		}
		switch {
		case lv.Ints != nil && rv.Ints != nil:
			a, b := lv.Ints, rv.Ints
			for _, i := range sel {
				if reject(i) {
					continue
				}
				cmp := 0
				switch {
				case a[i] < b[i]:
					cmp = -1
				case a[i] > b[i]:
					cmp = 1
				}
				if m.ok(cmp) {
					out = append(out, i)
				}
			}
		case (lv.Ints != nil || lv.Floats != nil) && (rv.Ints != nil || rv.Floats != nil):
			// Mixed numerics compare float-wise (types.Compare).
			for _, i := range sel {
				if reject(i) {
					continue
				}
				var a, b float64
				if lv.Ints != nil {
					a = float64(lv.Ints[i])
				} else {
					a = lv.Floats[i]
				}
				if rv.Ints != nil {
					b = float64(rv.Ints[i])
				} else {
					b = rv.Floats[i]
				}
				cmp := 0
				switch {
				case a < b:
					cmp = -1
				case a > b:
					cmp = 1
				}
				if m.ok(cmp) {
					out = append(out, i)
				}
			}
		case lv.Codes != nil && rv.Codes != nil && codeCmp && sameDict(lv.Dict, rv.Dict):
			// Both columns were encoded through the same shared table
			// dictionary (slice identity), so equal codes iff equal
			// strings — eq/ne compares codes without touching the
			// dictionary. Codes are first-sight ordered, not
			// lexicographic, so ordered comparisons stay on the
			// string arm below.
			a, b := lv.Codes, rv.Codes
			for _, i := range sel {
				if reject(i) {
					continue
				}
				if (a[i] == b[i]) == wantEq {
					out = append(out, i)
				}
			}
		case lv.Codes != nil && rv.Codes != nil:
			// Dictionaries differ per column, so codes are not comparable
			// directly; compare the dictionary strings (still no
			// types.Value decoding).
			ld, rd := lv.Dict, rv.Dict
			for _, i := range sel {
				if reject(i) {
					continue
				}
				a, b := ld[lv.Codes[i]], rd[rv.Codes[i]]
				cmp := 0
				switch {
				case a < b:
					cmp = -1
				case a > b:
					cmp = 1
				}
				if m.ok(cmp) {
					out = append(out, i)
				}
			}
		case lv.Bools != nil && rv.Bools != nil:
			a, b := lv.Bools, rv.Bools
			for _, i := range sel {
				if reject(i) {
					continue
				}
				cmp := 0
				switch {
				case !a[i] && b[i]:
					cmp = -1
				case a[i] && !b[i]:
					cmp = 1
				}
				if m.ok(cmp) {
					out = append(out, i)
				}
			}
		case hasTyped(lv) && hasTyped(rv):
			// Two typed columns of incomparable kinds: no live pair can
			// ever compare, so nothing passes.
			return sel[:0], true
		default:
			return nil, false
		}
		return out, true
	}
}

// evalCKind reports whether a column of this kind can feed the float
// score path.
func numericKind(k types.Kind) bool { return k == types.KindInt || k == types.KindFloat }

// colEvalC builds the score kernel for a column leaf: the vector loads as
// float64 with its NULL flags. INT columns convert exactly as
// Value.AsFloat does (float64(i)).
func colEvalC(idx int) func(cols []types.ColVec, sel []int32, out []float64, null []bool) bool {
	return func(cols []types.ColVec, sel []int32, out []float64, null []bool) bool {
		cv := &cols[idx]
		nulls := cv.Nulls
		switch {
		case cv.Ints != nil:
			vec := cv.Ints
			for k, i := range sel {
				out[k] = float64(vec[i])
				null[k] = nulls != nil && nulls[i]
			}
		case cv.Floats != nil:
			vec := cv.Floats
			for k, i := range sel {
				out[k] = vec[i]
				null[k] = nulls != nil && nulls[i]
			}
		case cv.RunVals != nil:
			// Run-length int window: convert once per run. NULL slots were
			// absorbed into the enclosing run, so the flag must come from
			// the Nulls bitmap, not the run value.
			runs := cv.RunVals
			rk := -1
			var f float64
			for k, i := range sel {
				if nulls != nil && nulls[i] {
					out[k], null[k] = 0, true
					continue
				}
				hint := rk
				if hint < 0 {
					hint = 0
				}
				if nk := cv.RunAt(i, hint); nk != rk {
					rk = nk
					f = float64(runs[rk])
				}
				out[k], null[k] = f, false
			}
		default:
			return false
		}
		return true
	}
}

// litEvalC builds the score kernel for a numeric or NULL literal.
func litEvalC(v types.Value) func(cols []types.ColVec, sel []int32, out []float64, null []bool) bool {
	if v.IsNull() {
		return func(_ []types.ColVec, sel []int32, out []float64, null []bool) bool {
			for k := range sel {
				out[k], null[k] = 0, true
			}
			return true
		}
	}
	if !v.IsNumeric() {
		return nil
	}
	f := v.AsFloat()
	return func(_ []types.ColVec, sel []int32, out []float64, null []bool) bool {
		for k := range sel {
			out[k], null[k] = f, false
		}
		return true
	}
}

// binEvalC builds the score kernel for FLOAT-kind arithmetic (INT-kind
// nodes wrap int64 on the row path, which float64 cannot reproduce, so
// they never compile a kernel). Division by zero and float modulo yield
// NULL, exactly arithApply at KindFloat.
func binEvalC(op Op, l, r *Compiled) func(cols []types.ColVec, sel []int32, out []float64, null []bool) bool {
	if l.evalC == nil || r.evalC == nil {
		return nil
	}
	return func(cols []types.ColVec, sel []int32, out []float64, null []bool) bool {
		n := len(sel)
		rOut := make([]float64, n)
		rNull := make([]bool, n)
		if !l.evalC(cols, sel, out, null) || !r.evalC(cols, sel, rOut, rNull) {
			return false
		}
		for k := 0; k < n; k++ {
			if null[k] || rNull[k] {
				null[k] = true
				continue
			}
			a, b := out[k], rOut[k]
			switch op {
			case OpAdd:
				out[k] = a + b
			case OpSub:
				out[k] = a - b
			case OpMul:
				out[k] = a * b
			case OpDiv:
				if b == 0 {
					null[k] = true
					continue
				}
				out[k] = a / b
			default: // OpMod over floats: undefined, NULL
				null[k] = true
			}
		}
		return true
	}
}

// negEvalC builds the score kernel for FLOAT-kind negation (INT-kind
// negation can wrap at MinInt64 on the row path, so it stays scalar).
func negEvalC(inner *Compiled) func(cols []types.ColVec, sel []int32, out []float64, null []bool) bool {
	if inner.evalC == nil {
		return nil
	}
	return func(cols []types.ColVec, sel []int32, out []float64, null []bool) bool {
		if !inner.evalC(cols, sel, out, null) {
			return false
		}
		for k := range out {
			if !null[k] {
				out[k] = -out[k]
			}
		}
		return true
	}
}

// callEvalC builds the score kernel for a function call with a float
// kernel (Func.Floats) and direct-column arguments: argument columns
// evaluate kernel-wise, a NULL argument yields a NULL result, exactly
// the Floats fast path of the tuple evalB.
func callEvalC(ff func([]float64) float64, args []*Compiled) func(cols []types.ColVec, sel []int32, out []float64, null []bool) bool {
	if ff == nil {
		return nil
	}
	for _, a := range args {
		if a.evalC == nil {
			return nil
		}
	}
	return func(cols []types.ColVec, sel []int32, out []float64, null []bool) bool {
		n := len(sel)
		argOut := make([][]float64, len(args))
		argNull := make([][]bool, len(args))
		for j, a := range args {
			argOut[j] = make([]float64, n)
			argNull[j] = make([]bool, n)
			if !a.evalC(cols, sel, argOut[j], argNull[j]) {
				return false
			}
		}
		fvals := make([]float64, len(args))
	rows:
		for k := 0; k < n; k++ {
			for j := range args {
				if argNull[j][k] {
					out[k], null[k] = 0, true
					continue rows
				}
				fvals[j] = argOut[j][k]
			}
			out[k], null[k] = ff(fvals), false
		}
		return true
	}
}
