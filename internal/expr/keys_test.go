package expr

import (
	"math/rand"
	"testing"

	"prefdb/internal/types"
)

// keyFixture builds one window per ColVec form — dense ints, floats (with
// integral values, exercising the numeric hash normalization), dictionary
// codes, bools, int runs and code runs, all with NULL slots — plus the
// per-slot types.Value each window is expected to decode to.
func keyFixture(n int, rng *rand.Rand) (cols []types.ColVec, vals [][]types.Value) {
	dict := []string{"ash", "birch", "cedar", "oak"}

	addVals := func(cv types.ColVec, vs []types.Value) {
		cols = append(cols, cv)
		vals = append(vals, vs)
	}

	{ // dense ints, every 7th NULL
		ints := make([]int64, n)
		nulls := make([]bool, n)
		vs := make([]types.Value, n)
		for i := range ints {
			ints[i] = rng.Int63n(1000) - 500
			vs[i] = types.Int(ints[i])
			if i%7 == 3 {
				nulls[i] = true
				vs[i] = types.Null()
			}
		}
		addVals(types.ColVec{Ints: ints, Nulls: nulls}, vs)
	}
	{ // floats, half integral (must hash like their int)
		fs := make([]float64, n)
		vs := make([]types.Value, n)
		for i := range fs {
			fs[i] = float64(rng.Intn(50))
			if i%2 == 0 {
				fs[i] += 0.25
			}
			vs[i] = types.Float(fs[i])
		}
		addVals(types.ColVec{Floats: fs}, vs)
	}
	{ // dictionary codes
		codes := make([]int32, n)
		nulls := make([]bool, n)
		vs := make([]types.Value, n)
		for i := range codes {
			codes[i] = int32(rng.Intn(len(dict)))
			vs[i] = types.Str(dict[codes[i]])
			if i%11 == 5 {
				nulls[i] = true
				vs[i] = types.Null()
			}
		}
		addVals(types.ColVec{Codes: codes, Dict: dict, Nulls: nulls}, vs)
	}
	{ // bools
		bs := make([]bool, n)
		vs := make([]types.Value, n)
		for i := range bs {
			bs[i] = rng.Intn(2) == 0
			vs[i] = types.Bool(bs[i])
		}
		addVals(types.ColVec{Bools: bs}, vs)
	}
	{ // int runs with a nonzero RunBase window
		base := int32(32)
		runVals := []int64{-3, 8, 8, 100} // adjacent equal runs stay distinct runs
		runEnds := []int32{int32(n/4) + base, int32(n / 2) + base, int32(3*n/4) + base, int32(n) + base}
		nulls := make([]bool, n)
		vs := make([]types.Value, n)
		for i := 0; i < n; i++ {
			abs := base + int32(i)
			k := 0
			for runEnds[k] <= abs {
				k++
			}
			vs[i] = types.Int(runVals[k])
			if i%13 == 2 {
				nulls[i] = true
				vs[i] = types.Null()
			}
		}
		addVals(types.ColVec{RunVals: runVals, RunEnds: runEnds, RunBase: base, Nulls: nulls}, vs)
	}
	{ // code runs
		base := int32(5)
		runCodes := []int32{2, 0, 3}
		runEnds := []int32{int32(n/3) + base, int32(2*n/3) + base, int32(n) + base}
		vs := make([]types.Value, n)
		for i := 0; i < n; i++ {
			abs := base + int32(i)
			k := 0
			for runEnds[k] <= abs {
				k++
			}
			vs[i] = types.Str(dict[runCodes[k]])
		}
		addVals(types.ColVec{RunCodes: runCodes, RunEnds: runEnds, RunBase: base, Dict: dict}, vs)
	}
	return cols, vals
}

// refHash is the row path's key fold (exec's hashCols): seed, then per key
// column h ^= Value.Hash(); h *= prime.
func refHash(vals [][]types.Value, keys []int, i int32) uint64 {
	h := keySeed
	for _, c := range keys {
		h = (h ^ vals[c][i].Hash()) * keyPrime
	}
	return h
}

// TestHashColsMatchesRowFold pins the tentpole equivalence at the unit
// level: for every window form (dense, dictionary, run-length, with and
// without NULLs) and several key combinations, HashCols computes exactly
// the row path's per-tuple fold — on full and on sparse ascending
// selection vectors.
func TestHashColsMatchesRowFold(t *testing.T) {
	const n = 192
	rng := rand.New(rand.NewSource(7))
	cols, vals := keyFixture(n, rng)

	full := make([]int32, n)
	for i := range full {
		full[i] = int32(i)
	}
	var sparse []int32
	for i := 0; i < n; i += 3 {
		sparse = append(sparse, int32(i))
	}

	keySets := [][]int{
		{0}, {1}, {2}, {3}, {4}, {5},
		{0, 2}, {4, 5}, {2, 4}, {0, 1, 2, 3, 4, 5},
	}
	for _, keys := range keySets {
		for name, sel := range map[string][]int32{"full": full, "sparse": sparse} {
			var ks KeyScratch
			out := make([]uint64, len(sel))
			if !HashCols(cols, sel, keys, out, &ks) {
				t.Fatalf("keys %v %s: HashCols refused typed columns", keys, name)
			}
			for j, i := range sel {
				if want := refHash(vals, keys, i); out[j] != want {
					t.Fatalf("keys %v %s slot %d: hash %#x, want %#x (value %v)",
						keys, name, i, out[j], want, vals[keys[0]][i])
				}
			}
			// Second batch over the same windows: the dictionary hash cache
			// must hit (same identity) and still agree.
			out2 := make([]uint64, len(sel))
			if !HashCols(cols, sel, keys, out2, &ks) {
				t.Fatalf("keys %v %s: second pass refused", keys, name)
			}
			for j := range out {
				if out[j] != out2[j] {
					t.Fatalf("keys %v %s: cached pass diverged at %d", keys, name, j)
				}
			}
		}
	}
}

// TestHashColsRefusesUntyped pins the fallback contract: any untyped key
// column (a Raw-encoded attribute leaves its ColVec zero) makes HashCols
// return false rather than guess.
func TestHashColsRefusesUntyped(t *testing.T) {
	cols := []types.ColVec{{Ints: []int64{1, 2}}, {}}
	out := make([]uint64, 2)
	var ks KeyScratch
	if HashCols(cols, []int32{0, 1}, []int{0, 1}, out, &ks) {
		t.Fatal("HashCols accepted an untyped key column")
	}
	if !HashCols(cols, []int32{0, 1}, []int{0}, out, &ks) {
		t.Fatal("HashCols refused a typed key column")
	}
	if HasTypedCols(cols, []int{0, 1}) {
		t.Fatal("HasTypedCols accepted an untyped column")
	}
	if !HasTypedCols(cols, []int{0}) {
		t.Fatal("HasTypedCols refused a typed column")
	}
}

// TestColValueDecodesEveryForm pins slot materialization: ColValue must
// yield the exact value (and kind) for every window form at every slot,
// and runIdx must agree with the sequential run cursor.
func TestColValueDecodesEveryForm(t *testing.T) {
	const n = 96
	rng := rand.New(rand.NewSource(11))
	cols, vals := keyFixture(n, rng)
	for c := range cols {
		for i := int32(0); i < n; i++ {
			v, ok := ColValue(&cols[c], i)
			if !ok {
				t.Fatalf("col %d slot %d: ColValue not ok", c, i)
			}
			if !v.Equal(vals[c][i]) || v.Kind() != vals[c][i].Kind() {
				t.Fatalf("col %d slot %d: decoded %v (%v), want %v (%v)",
					c, i, v, v.Kind(), vals[c][i], vals[c][i].Kind())
			}
		}
		if cols[c].HasRuns() {
			hint := 0
			for i := int32(0); i < n; i++ {
				seq := cols[c].RunAt(i, hint)
				hint = seq
				if bin := runIdx(&cols[c], i); bin != seq {
					t.Fatalf("col %d slot %d: runIdx %d, RunAt %d", c, i, bin, seq)
				}
			}
		}
	}
	if _, ok := ColValue(&types.ColVec{}, 0); ok {
		t.Fatal("ColValue decoded an untyped window")
	}
}

// TestKeyEqCols pins probe confirmation against Value.Equal semantics:
// NULL equals NULL, int-int exact, mixed numerics float-wise, and any
// mismatching column rejects.
func TestKeyEqCols(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(13))
	cols, vals := keyFixture(n, rng)
	keys := []int{0, 2, 4, 5}
	tupleKeys := []int{0, 1, 2, 3}
	for i := int32(0); i < n; i++ {
		tuple := make([]types.Value, len(keys))
		for k, c := range keys {
			tuple[k] = vals[c][i]
		}
		if !KeyEqCols(cols, i, keys, tuple, tupleKeys) {
			t.Fatalf("slot %d: exact tuple rejected", i)
		}
		// Perturb one key: must reject.
		tuple[1] = types.Str("no-such-string")
		if KeyEqCols(cols, i, keys, tuple, tupleKeys) {
			t.Fatalf("slot %d: perturbed tuple accepted", i)
		}
	}
	// Mixed-numeric equality: an int build key equals the float probe
	// value 3.0 under Value.Equal; KeyEqCols must agree.
	fcols := []types.ColVec{{Floats: []float64{3.0}}}
	if !KeyEqCols(fcols, 0, []int{0}, []types.Value{types.Int(3)}, []int{0}) {
		t.Fatal("int 3 did not match float 3.0")
	}
	if KeyEqCols(fcols, 0, []int{0}, []types.Value{types.Int(4)}, []int{0}) {
		t.Fatal("int 4 matched float 3.0")
	}
}

// TestHashColsIntegralFloatCollides pins the normalization corner: an
// integral float must land in the same bucket as the equal int, since
// Value.Equal would accept the pair at confirmation time.
func TestHashColsIntegralFloatCollides(t *testing.T) {
	icols := []types.ColVec{{Ints: []int64{42}}}
	fcols := []types.ColVec{{Floats: []float64{42}}}
	var ks KeyScratch
	iout, fout := make([]uint64, 1), make([]uint64, 1)
	if !HashCols(icols, []int32{0}, []int{0}, iout, &ks) ||
		!HashCols(fcols, []int32{0}, []int{0}, fout, &ks) {
		t.Fatal("HashCols refused")
	}
	if iout[0] != fout[0] {
		t.Fatalf("int 42 hashes %#x, float 42.0 hashes %#x; equal values must share a bucket", iout[0], fout[0])
	}
}
