// Key kernels for the direct-column hash join and grouped aggregation:
// HashCols folds typed key vectors into per-row bucket hashes and
// KeyEqCols confirms a probe slot against a build tuple, both with the
// exact semantics of the row path (types.Value.Hash / Value.Equal), so a
// columnar probe lands in the same bucket and accepts the same matches a
// tuple probe would — byte-identical results by construction.
package expr

import "prefdb/internal/types"

// Seed and prime of the row path's key fold (exec's hashCols /
// types.HashTuple): h starts at the seed, then per key column
// h ^= Value.Hash(); h *= prime.
const (
	keySeed  uint64 = 1469598103934665603
	keyPrime uint64 = 1099511628211
)

var nullValueHash = types.Null().Hash()

// KeyScratch carries per-key-column caches across the batches of one
// stream: dictionary-code value hashes keyed on Dict slice identity, so
// consecutive windows over the same segment (or segments snapshotting the
// same shared-dictionary prefix) hash each distinct string once.
type KeyScratch struct {
	dicts  [][]string
	hashes [][]uint64
}

func (ks *KeyScratch) dictHashes(k int, dict []string) []uint64 {
	for len(ks.dicts) <= k {
		ks.dicts = append(ks.dicts, nil)
		ks.hashes = append(ks.hashes, nil)
	}
	if sameDict(ks.dicts[k], dict) {
		return ks.hashes[k]
	}
	h := ks.hashes[k]
	if cap(h) < len(dict) {
		h = make([]uint64, len(dict))
	}
	h = h[:len(dict)]
	for code, s := range dict {
		h[code] = types.Str(s).Hash()
	}
	ks.dicts[k] = dict
	ks.hashes[k] = h
	return h
}

// HashCols computes the combined key hash for every selected slot,
// writing out[j] for sel[j] (len(out) must be >= len(sel)). It matches
// the row path's hashCols fold exactly — Value.Hash per key column folded
// FNV-style — reusing Value.Hash itself for the per-value digests so the
// numeric normalization (integral floats hash as ints) and large-int64
// behaviour collide identically. Returns false (out unspecified) when any
// key column lacks a typed or run-form window; callers then fall back to
// the tuple path.
func HashCols(cols []types.ColVec, sel []int32, keys []int, out []uint64, ks *KeyScratch) bool {
	for _, c := range keys {
		if !hasTyped(&cols[c]) {
			return false
		}
	}
	for j := range sel {
		out[j] = keySeed
	}
	for k, c := range keys {
		cv := &cols[c]
		nulls := cv.Nulls
		switch {
		case cv.Ints != nil:
			vec := cv.Ints
			for j, i := range sel {
				vh := nullValueHash
				if nulls == nil || !nulls[i] {
					vh = types.Int(vec[i]).Hash()
				}
				out[j] = (out[j] ^ vh) * keyPrime
			}
		case cv.Floats != nil:
			vec := cv.Floats
			for j, i := range sel {
				vh := nullValueHash
				if nulls == nil || !nulls[i] {
					vh = types.Float(vec[i]).Hash()
				}
				out[j] = (out[j] ^ vh) * keyPrime
			}
		case cv.Codes != nil:
			// One string hash per dictionary code, cached on identity.
			hs := ks.dictHashes(k, cv.Dict)
			codes := cv.Codes
			for j, i := range sel {
				vh := nullValueHash
				if nulls == nil || !nulls[i] {
					vh = hs[codes[i]]
				}
				out[j] = (out[j] ^ vh) * keyPrime
			}
		case cv.Bools != nil:
			vec := cv.Bools
			for j, i := range sel {
				vh := nullValueHash
				if nulls == nil || !nulls[i] {
					vh = types.Bool(vec[i]).Hash()
				}
				out[j] = (out[j] ^ vh) * keyPrime
			}
		case cv.RunVals != nil:
			// Run-length window: hash once per run (sel is ascending, so
			// the run cursor advances monotonically).
			runs := cv.RunVals
			rk, rh := -1, uint64(0)
			for j, i := range sel {
				vh := nullValueHash
				if nulls == nil || !nulls[i] {
					hint := rk
					if hint < 0 {
						hint = 0
					}
					if nk := cv.RunAt(i, hint); nk != rk {
						rk = nk
						rh = types.Int(runs[rk]).Hash()
					}
					vh = rh
				}
				out[j] = (out[j] ^ vh) * keyPrime
			}
		case cv.RunCodes != nil:
			hs := ks.dictHashes(k, cv.Dict)
			runs := cv.RunCodes
			rk, rh := -1, uint64(0)
			for j, i := range sel {
				vh := nullValueHash
				if nulls == nil || !nulls[i] {
					hint := rk
					if hint < 0 {
						hint = 0
					}
					if nk := cv.RunAt(i, hint); nk != rk {
						rk = nk
						rh = hs[runs[rk]]
					}
					vh = rh
				}
				out[j] = (out[j] ^ vh) * keyPrime
			}
		}
	}
	return true
}

// HasTypedCols reports whether every listed column carries a typed or
// run-form window — the precondition for reading them slot-wise with
// ColValue instead of falling back to decoded row views.
func HasTypedCols(cols []types.ColVec, ords []int) bool {
	for _, c := range ords {
		if !hasTyped(&cols[c]) {
			return false
		}
	}
	return true
}

// runIdx locates the run covering batch-local slot i by binary search —
// the random-access counterpart of ColVec.RunAt for callers (probe
// confirmation, slot materialization) that don't walk slots in order.
func runIdx(cv *types.ColVec, i int32) int {
	abs := cv.RunBase + i
	lo, hi := 0, len(cv.RunEnds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cv.RunEnds[mid] <= abs {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ColValue materializes one slot of a window as a types.Value (a small
// value struct — no allocation). ok=false when the window is untyped.
func ColValue(cv *types.ColVec, i int32) (types.Value, bool) {
	if cv.Nulls != nil && cv.Nulls[i] {
		return types.Null(), true
	}
	switch {
	case cv.Ints != nil:
		return types.Int(cv.Ints[i]), true
	case cv.Floats != nil:
		return types.Float(cv.Floats[i]), true
	case cv.Codes != nil:
		return types.Str(cv.Dict[cv.Codes[i]]), true
	case cv.Bools != nil:
		return types.Bool(cv.Bools[i]), true
	case cv.RunVals != nil:
		return types.Int(cv.RunVals[runIdx(cv, i)]), true
	case cv.RunCodes != nil:
		return types.Str(cv.Dict[cv.RunCodes[runIdx(cv, i)]]), true
	}
	return types.Value{}, false
}

// KeyEqCols confirms that the probe window's key columns at slot equal
// the build tuple's key values, with exact Value.Equal semantics (NULL
// equals NULL, int-int exact, mixed numerics float-wise). Key columns
// must be typed — callers only reach here after HashCols returned true.
func KeyEqCols(cols []types.ColVec, slot int32, keys []int, tuple []types.Value, tupleKeys []int) bool {
	for k, c := range keys {
		v, ok := ColValue(&cols[c], slot)
		if !ok || !v.Equal(tuple[tupleKeys[k]]) {
			return false
		}
	}
	return true
}
