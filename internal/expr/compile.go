package expr

import (
	"fmt"
	"strings"

	"prefdb/internal/schema"
	"prefdb/internal/types"
)

// Compiled is an expression bound to a concrete schema, ready to evaluate
// against tuples laid out by that schema.
//
// Evaluation follows SQL three-valued logic: comparisons involving NULL (or
// incomparable kinds) yield NULL, AND/OR propagate unknowns, and a WHERE
// condition accepts a tuple only when it evaluates to TRUE.
//
// A Compiled expression is immutable once Compile returns: the closure
// tree only reads its captured state and allocates per call, so a single
// Compiled may be evaluated concurrently from many goroutines. The
// parallel executor relies on this to share compiled conditions and
// scoring expressions read-only across its workers; keep registered
// functions (Func.Eval) pure for the same reason.
type Compiled struct {
	eval func(row []types.Value) types.Value
	kind types.Kind
	cols []int
	src  string
	// conj holds the separately compiled top-level conjuncts of an AND
	// condition (set by CompileCondition); TruthyBatch evaluates them
	// conjunct-by-conjunct over a shrinking selection vector instead of
	// re-entering the full evaluator per row. Empty for non-AND roots.
	conj []*Compiled
	// evalB, when set, is the vectorized evaluator: one call computes the
	// expression for every selected tuple, hoisting the scalar closures'
	// per-row scratch allocations (function-call argument slices) out of
	// the row loop. Set for function calls and for arithmetic with a
	// vectorizable operand; EvalBatch falls back to eval per row otherwise.
	evalB func(tuples [][]types.Value, sel []int32, out []types.Value)
	// filterB, when set, is a specialized condition kernel for the batch
	// filter path: it compacts the selection vector directly with typed
	// comparisons, skipping the closure evaluator and the generic
	// types.Compare dispatch per row. Set for column-vs-literal
	// comparisons; semantics are identical to Truthy.
	filterB func(tuples [][]types.Value, sel []int32) []int32
	// filterC, when set, is the direct-column variant of filterB: it
	// compacts the selection vector by reading borrowed column vectors
	// (types.ColVec) without decoding tuples. Reports ok=false when a
	// needed typed vector is missing at runtime (Raw column); the caller
	// then falls back to the tuple kernel. Set for column-vs-literal and
	// column-vs-column comparisons; see cols.go.
	filterC func(cols []types.ColVec, sel []int32, dc *dictCache) ([]int32, bool)
	// evalC, when set, is the direct-column float evaluator feeding the
	// in-place ⟨S,C⟩ score path: out[k]/null[k] for row sel[k], read
	// straight from column vectors. Only built for nodes whose row-path
	// evaluation is already float-wise (see cols.go for the exactness
	// rule), so results are bit-identical to eval + AsFloat.
	evalC func(cols []types.ColVec, sel []int32, out []float64, null []bool) bool
}

// Eval evaluates the expression over a tuple.
func (c *Compiled) Eval(row []types.Value) types.Value { return c.eval(row) }

// Kind returns the static result kind.
func (c *Compiled) Kind() types.Kind { return c.kind }

// Columns returns the bound column ordinals the expression reads.
func (c *Compiled) Columns() []int { return c.cols }

// String returns the source form of the compiled expression.
func (c *Compiled) String() string { return c.src }

// Truthy applies the expression as a condition: only TRUE accepts.
func (c *Compiled) Truthy(row []types.Value) bool {
	v := c.eval(row)
	return v.Kind() == types.KindBool && v.AsBool()
}

// TruthyBatch applies the expression as a condition over a batch of
// tuples, compacting the selection vector in place: the returned slice
// (a prefix reuse of sel's backing array) holds, in order, the indices of
// the tuples the condition accepts.
//
// A condition compiled by CompileCondition whose root is an AND evaluates
// conjunct-by-conjunct: each conjunct filters the surviving selection
// vector, so later conjuncts never run on tuples an earlier one rejected
// and the per-row closure dispatch for the AND node itself disappears.
// This matches Truthy exactly — Truthy(a AND b) holds iff Truthy(a) and
// Truthy(b) hold (three-valued logic only accepts TRUE) — and relies on
// registered functions being pure, which expr already requires.
func (c *Compiled) TruthyBatch(tuples [][]types.Value, sel []int32) []int32 {
	if len(c.conj) > 1 {
		for _, p := range c.conj {
			sel = p.truthyFilter(tuples, sel)
			if len(sel) == 0 {
				break
			}
		}
		return sel
	}
	return c.truthyFilter(tuples, sel)
}

// EvalBatch evaluates the expression for each selected tuple, writing the
// result for tuple sel[k] into out[k] (out must have len(sel) slots).
// Nodes with a vectorized form (function calls, arithmetic over them)
// amortize their scratch allocations over the batch; anything else falls
// back to the scalar evaluator per row, so results are always identical
// to Eval.
func (c *Compiled) EvalBatch(tuples [][]types.Value, sel []int32, out []types.Value) {
	if c.evalB != nil {
		c.evalB(tuples, sel, out)
		return
	}
	for k, i := range sel {
		out[k] = c.eval(tuples[i])
	}
}

// truthyFilter compacts sel to the tuples this expression accepts.
func (c *Compiled) truthyFilter(tuples [][]types.Value, sel []int32) []int32 {
	if c.filterB != nil {
		return c.filterB(tuples, sel)
	}
	out := sel[:0]
	for _, i := range sel {
		v := c.eval(tuples[i])
		if v.Kind() == types.KindBool && v.AsBool() {
			out = append(out, i)
		}
	}
	return out
}

// Compile binds n to s, resolving columns and functions and type-checking
// operator applications.
func Compile(n Node, s *schema.Schema, funcs *Registry) (*Compiled, error) {
	c := &compiler{schema: s, funcs: funcs}
	out, err := c.compile(n)
	if err != nil {
		return nil, err
	}
	out.src = n.String()
	out.cols = c.cols
	return out, nil
}

// CompileCondition compiles n and verifies it yields a boolean. When the
// condition's root is a conjunction, the top-level conjuncts are also
// compiled individually so TruthyBatch can evaluate them one at a time
// over a shrinking selection vector.
func CompileCondition(n Node, s *schema.Schema, funcs *Registry) (*Compiled, error) {
	out, err := Compile(n, s, funcs)
	if err != nil {
		return nil, err
	}
	if out.kind != types.KindBool && out.kind != types.KindNull {
		return nil, fmt.Errorf("expr: condition %s has non-boolean type %s", n, out.kind)
	}
	if parts := Conjuncts(n); len(parts) > 1 {
		out.conj = make([]*Compiled, len(parts))
		for i, p := range parts {
			// The whole condition compiled, so each conjunct compiles too;
			// a fresh compiler keeps the main column-set untouched.
			cp, cErr := Compile(p, s, funcs)
			if cErr != nil {
				return nil, cErr
			}
			out.conj[i] = cp
		}
	}
	return out, nil
}

type compiler struct {
	schema *schema.Schema
	funcs  *Registry
	cols   []int
}

func (c *compiler) compile(n Node) (*Compiled, error) {
	switch x := n.(type) {
	case Col:
		idx, err := c.schema.IndexOf(x.Table, x.Name)
		if err != nil {
			return nil, err
		}
		c.cols = append(c.cols, idx)
		kind := c.schema.Columns[idx].Kind
		out := &Compiled{kind: kind, eval: func(row []types.Value) types.Value { return row[idx] }}
		if numericKind(kind) {
			out.evalC = colEvalC(idx)
		}
		return out, nil

	case Lit:
		v := x.Val
		return &Compiled{kind: v.Kind(), evalC: litEvalC(v),
			eval: func([]types.Value) types.Value { return v }}, nil

	case Bin:
		return c.compileBin(x)

	case Un:
		return c.compileUn(x)

	case Call:
		return c.compileCall(x)

	case Between:
		// Desugar: lo <= x AND x <= hi.
		return c.compile(Bin{Op: OpAnd,
			L: Bin{Op: OpLe, L: x.Lo, R: x.X},
			R: Bin{Op: OpLe, L: x.X, R: x.Hi},
		})

	case In:
		return c.compileIn(x)

	case Like:
		return c.compileLike(x)

	case IsNull:
		inner, err := c.compile(x.X)
		if err != nil {
			return nil, err
		}
		neg := x.Negate
		return &Compiled{kind: types.KindBool, eval: func(row []types.Value) types.Value {
			isNull := inner.eval(row).IsNull()
			return types.Bool(isNull != neg)
		}}, nil

	case nil:
		return nil, fmt.Errorf("expr: cannot compile nil expression")

	default:
		return nil, fmt.Errorf("expr: unknown node type %T", n)
	}
}

func (c *compiler) compileBin(x Bin) (*Compiled, error) {
	l, err := c.compile(x.L)
	if err != nil {
		return nil, err
	}
	r, err := c.compile(x.R)
	if err != nil {
		return nil, err
	}
	switch {
	case x.Op.IsComparison():
		op := x.Op
		out := &Compiled{kind: types.KindBool, eval: func(row []types.Value) types.Value {
			lv, rv := l.eval(row), r.eval(row)
			if lv.IsNull() || rv.IsNull() {
				return types.Null()
			}
			cmp, ok := types.Compare(lv, rv)
			if !ok {
				return types.Null()
			}
			switch op {
			case OpEq:
				return types.Bool(cmp == 0)
			case OpNe:
				return types.Bool(cmp != 0)
			case OpLt:
				return types.Bool(cmp < 0)
			case OpLe:
				return types.Bool(cmp <= 0)
			case OpGt:
				return types.Bool(cmp > 0)
			default:
				return types.Bool(cmp >= 0)
			}
		}}
		out.filterB = c.compareFilter(x)
		out.filterC = c.compareFilterCols(x)
		return out, nil

	case x.Op == OpAnd:
		return &Compiled{kind: types.KindBool, eval: func(row []types.Value) types.Value {
			lv := l.eval(row)
			if lv.Kind() == types.KindBool && !lv.AsBool() {
				return types.Bool(false)
			}
			rv := r.eval(row)
			if rv.Kind() == types.KindBool && !rv.AsBool() {
				return types.Bool(false)
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null()
			}
			return types.Bool(lv.AsBool() && rv.AsBool())
		}}, nil

	case x.Op == OpOr:
		return &Compiled{kind: types.KindBool, eval: func(row []types.Value) types.Value {
			lv := l.eval(row)
			if lv.Kind() == types.KindBool && lv.AsBool() {
				return types.Bool(true)
			}
			rv := r.eval(row)
			if rv.Kind() == types.KindBool && rv.AsBool() {
				return types.Bool(true)
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null()
			}
			return types.Bool(false)
		}}, nil

	case x.Op == OpAdd || x.Op == OpSub || x.Op == OpMul || x.Op == OpDiv || x.Op == OpMod:
		if err := wantNumeric(x.Op, l.kind, r.kind); err != nil {
			return nil, err
		}
		kind := types.KindFloat
		if l.kind == types.KindInt && r.kind == types.KindInt && x.Op != OpDiv {
			kind = types.KindInt
		}
		apply := arithApply(x.Op, kind)
		out := &Compiled{kind: kind, eval: func(row []types.Value) types.Value {
			return apply(l.eval(row), r.eval(row))
		}}
		if kind == types.KindFloat {
			out.evalC = binEvalC(x.Op, l, r)
		}
		if l.evalB != nil || r.evalB != nil {
			// Vectorize only when an operand benefits: both sides evaluate
			// column-wise (hoisting nested call scratch out of the row
			// loop), then the scalar kernel combines per row. Pure
			// column/literal arithmetic stays on the allocation-free
			// fallback loop.
			out.evalB = func(tuples [][]types.Value, sel []int32, res []types.Value) {
				lcol := make([]types.Value, len(sel))
				rcol := make([]types.Value, len(sel))
				l.EvalBatch(tuples, sel, lcol)
				r.EvalBatch(tuples, sel, rcol)
				for k := range lcol {
					res[k] = apply(lcol[k], rcol[k])
				}
			}
		}
		return out, nil

	default:
		return nil, fmt.Errorf("expr: unsupported binary operator %s", x.Op)
	}
}

// compareFilter builds the typed batch-filter kernel for a column-vs-literal
// comparison (either orientation), or returns nil when the operands don't
// match that shape. The kernel mirrors the scalar evaluator exactly: a NULL
// operand or incomparable kinds reject the tuple (three-valued logic only
// accepts TRUE), numerics compare int-wise when both sides are INT and
// float-wise otherwise, strings and bools compare within their own kind.
func (c *compiler) compareFilter(x Bin) func(tuples [][]types.Value, sel []int32) []int32 {
	col, okC := x.L.(Col)
	lit, okL := x.R.(Lit)
	flip := false
	if !okC || !okL {
		col, okC = x.R.(Col)
		lit, okL = x.L.(Lit)
		if !okC || !okL {
			return nil
		}
		flip = true // literal on the left: Compare's sign is mirrored
	}
	idx, err := c.schema.IndexOf(col.Table, col.Name)
	if err != nil {
		return nil
	}
	v := lit.Val
	if v.IsNull() {
		// NULL comparand: the comparison is NULL for every row, so the
		// condition accepts nothing.
		return func(_ [][]types.Value, sel []int32) []int32 { return sel[:0] }
	}
	// Decompose the operator into which Compare signs it accepts; flipping
	// the orientation swaps the lt/gt accept bits.
	var ltOK, eqOK, gtOK bool
	switch x.Op {
	case OpEq:
		eqOK = true
	case OpNe:
		ltOK, gtOK = true, true
	case OpLt:
		ltOK = true
	case OpLe:
		ltOK, eqOK = true, true
	case OpGt:
		gtOK = true
	default: // OpGe
		eqOK, gtOK = true, true
	}
	if flip {
		ltOK, gtOK = gtOK, ltOK
	}
	switch v.Kind() {
	case types.KindInt, types.KindFloat:
		ri := int64(0)
		litInt := v.Kind() == types.KindInt
		if litInt {
			ri = v.AsInt()
		}
		rf := v.AsFloat()
		return func(tuples [][]types.Value, sel []int32) []int32 {
			out := sel[:0]
			for _, i := range sel {
				lv := tuples[i][idx]
				cmp := 0
				switch {
				case lv.Kind() == types.KindInt && litInt:
					switch a := lv.AsInt(); {
					case a < ri:
						cmp = -1
					case a > ri:
						cmp = 1
					}
				case lv.IsNumeric():
					switch a := lv.AsFloat(); {
					case a < rf:
						cmp = -1
					case a > rf:
						cmp = 1
					}
				default: // NULL or non-numeric kind: incomparable, reject
					continue
				}
				if (cmp < 0 && ltOK) || (cmp == 0 && eqOK) || (cmp > 0 && gtOK) {
					out = append(out, i)
				}
			}
			return out
		}
	case types.KindString:
		rs := v.AsString()
		return func(tuples [][]types.Value, sel []int32) []int32 {
			out := sel[:0]
			for _, i := range sel {
				lv := tuples[i][idx]
				if lv.Kind() != types.KindString {
					continue
				}
				cmp := 0
				switch a := lv.AsString(); {
				case a < rs:
					cmp = -1
				case a > rs:
					cmp = 1
				}
				if (cmp < 0 && ltOK) || (cmp == 0 && eqOK) || (cmp > 0 && gtOK) {
					out = append(out, i)
				}
			}
			return out
		}
	case types.KindBool:
		rb := v.AsBool()
		return func(tuples [][]types.Value, sel []int32) []int32 {
			out := sel[:0]
			for _, i := range sel {
				lv := tuples[i][idx]
				if lv.Kind() != types.KindBool {
					continue
				}
				cmp := 0
				switch a := lv.AsBool(); {
				case !a && rb:
					cmp = -1 // false sorts before true
				case a && !rb:
					cmp = 1
				}
				if (cmp < 0 && ltOK) || (cmp == 0 && eqOK) || (cmp > 0 && gtOK) {
					out = append(out, i)
				}
			}
			return out
		}
	default:
		return nil
	}
}

// arithApply returns the scalar arithmetic kernel for op at the given
// result kind; NULL operands (and division/modulo by zero) yield NULL.
func arithApply(op Op, kind types.Kind) func(lv, rv types.Value) types.Value {
	return func(lv, rv types.Value) types.Value {
		if lv.IsNull() || rv.IsNull() {
			return types.Null()
		}
		if kind == types.KindInt {
			a, b := lv.AsInt(), rv.AsInt()
			switch op {
			case OpAdd:
				return types.Int(a + b)
			case OpSub:
				return types.Int(a - b)
			case OpMul:
				return types.Int(a * b)
			default: // OpMod
				if b == 0 {
					return types.Null()
				}
				return types.Int(a % b)
			}
		}
		a, b := lv.AsFloat(), rv.AsFloat()
		switch op {
		case OpAdd:
			return types.Float(a + b)
		case OpSub:
			return types.Float(a - b)
		case OpMul:
			return types.Float(a * b)
		case OpDiv:
			if b == 0 {
				return types.Null()
			}
			return types.Float(a / b)
		default: // OpMod over floats: undefined, NULL
			return types.Null()
		}
	}
}

func wantNumeric(op Op, kinds ...types.Kind) error {
	for _, k := range kinds {
		if k != types.KindInt && k != types.KindFloat && k != types.KindNull {
			return fmt.Errorf("expr: operator %s requires numeric operands, got %s", op, k)
		}
	}
	return nil
}

func (c *compiler) compileUn(x Un) (*Compiled, error) {
	inner, err := c.compile(x.X)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case OpNot:
		return &Compiled{kind: types.KindBool, eval: func(row []types.Value) types.Value {
			v := inner.eval(row)
			if v.IsNull() {
				return types.Null()
			}
			return types.Bool(!v.AsBool())
		}}, nil
	case OpNeg:
		if err := wantNumeric(OpNeg, inner.kind); err != nil {
			return nil, err
		}
		kind := inner.kind
		out := &Compiled{kind: kind, eval: func(row []types.Value) types.Value {
			v := inner.eval(row)
			if v.IsNull() {
				return types.Null()
			}
			if v.Kind() == types.KindInt {
				return types.Int(-v.AsInt())
			}
			return types.Float(-v.AsFloat())
		}}
		if kind == types.KindFloat {
			out.evalC = negEvalC(inner)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("expr: unsupported unary operator %s", x.Op)
	}
}

func (c *compiler) compileCall(x Call) (*Compiled, error) {
	f, ok := c.funcs.Lookup(x.Name)
	if !ok {
		return nil, fmt.Errorf("expr: unknown function %q (known: %s)", x.Name, strings.Join(c.funcs.Names(), ", "))
	}
	if len(x.Args) < f.MinArgs || (f.MaxArgs >= 0 && len(x.Args) > f.MaxArgs) {
		return nil, fmt.Errorf("expr: function %q called with %d args, want %d..%d", x.Name, len(x.Args), f.MinArgs, f.MaxArgs)
	}
	args := make([]*Compiled, len(x.Args))
	for i, a := range x.Args {
		ca, err := c.compile(a)
		if err != nil {
			return nil, err
		}
		args[i] = ca
	}
	fn := f.Eval
	ff := f.Floats
	nargs := len(args)
	return &Compiled{kind: f.Kind, evalC: callEvalC(ff, args),
		eval: func(row []types.Value) types.Value {
			vals := make([]types.Value, len(args))
			for i, a := range args {
				vals[i] = a.eval(row)
			}
			return fn(vals)
		},
		evalB: func(tuples [][]types.Value, sel []int32, out []types.Value) {
			// Arguments evaluate column-wise (vectorizing nested calls);
			// the argument scratch lives for the batch, not one row.
			cols := make([][]types.Value, nargs)
			for j, a := range args {
				col := make([]types.Value, len(sel))
				a.EvalBatch(tuples, sel, col)
				cols[j] = col
			}
			if ff != nil {
				// Float-kernel fast path (Func.Floats): skips Eval's
				// per-row []types.Value → []float64 conversion allocation.
				fvals := make([]float64, nargs)
			rows:
				for k := range sel {
					for j := range cols {
						v := cols[j][k]
						if v.IsNull() || !v.IsNumeric() {
							out[k] = types.Null()
							continue rows
						}
						fvals[j] = v.AsFloat()
					}
					out[k] = types.Float(ff(fvals))
				}
				return
			}
			vals := make([]types.Value, nargs)
			for k := range sel {
				for j := range cols {
					vals[j] = cols[j][k]
				}
				out[k] = fn(vals)
			}
		},
	}, nil
}

func (c *compiler) compileIn(x In) (*Compiled, error) {
	inner, err := c.compile(x.X)
	if err != nil {
		return nil, err
	}
	items := make([]*Compiled, len(x.List))
	allLit := true
	for i, a := range x.List {
		ca, err := c.compile(a)
		if err != nil {
			return nil, err
		}
		items[i] = ca
		if _, isLit := a.(Lit); !isLit {
			allLit = false
		}
	}
	if allLit {
		// Fast path: hash set of literal values. A NULL literal in the list
		// makes any non-match unknown (SQL three-valued IN).
		set := make(map[uint64][]types.Value, len(items))
		hasNull := false
		for _, it := range items {
			v := it.eval(nil)
			if v.IsNull() {
				hasNull = true
				continue
			}
			set[v.Hash()] = append(set[v.Hash()], v)
		}
		return &Compiled{kind: types.KindBool, eval: func(row []types.Value) types.Value {
			v := inner.eval(row)
			if v.IsNull() {
				return types.Null()
			}
			for _, cand := range set[v.Hash()] {
				if cand.Equal(v) {
					return types.Bool(true)
				}
			}
			if hasNull {
				return types.Null()
			}
			return types.Bool(false)
		}}, nil
	}
	return &Compiled{kind: types.KindBool, eval: func(row []types.Value) types.Value {
		v := inner.eval(row)
		if v.IsNull() {
			return types.Null()
		}
		sawNull := false
		for _, it := range items {
			iv := it.eval(row)
			if iv.IsNull() {
				sawNull = true
				continue
			}
			if iv.Equal(v) {
				return types.Bool(true)
			}
		}
		if sawNull {
			return types.Null()
		}
		return types.Bool(false)
	}}, nil
}

func (c *compiler) compileLike(x Like) (*Compiled, error) {
	inner, err := c.compile(x.X)
	if err != nil {
		return nil, err
	}
	if inner.kind != types.KindString && inner.kind != types.KindNull {
		return nil, fmt.Errorf("expr: LIKE requires a string operand, got %s", inner.kind)
	}
	pat := x.Pattern
	return &Compiled{kind: types.KindBool, eval: func(row []types.Value) types.Value {
		v := inner.eval(row)
		if v.IsNull() {
			return types.Null()
		}
		return types.Bool(likeMatch(v.AsString(), pat))
	}}, nil
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single rune),
// case-sensitively, via iterative backtracking.
func likeMatch(s, pat string) bool {
	sr, pr := []rune(s), []rune(pat)
	si, pi := 0, 0
	star, mark := -1, 0
	for si < len(sr) {
		switch {
		case pi < len(pr) && (pr[pi] == '_' || pr[pi] == sr[si]):
			si++
			pi++
		case pi < len(pr) && pr[pi] == '%':
			star, mark = pi, si
			pi++
		case star >= 0:
			mark++
			si, pi = mark, star+1
		default:
			return false
		}
	}
	for pi < len(pr) && pr[pi] == '%' {
		pi++
	}
	return pi == len(pr)
}
