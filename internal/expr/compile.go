package expr

import (
	"fmt"
	"strings"

	"prefdb/internal/schema"
	"prefdb/internal/types"
)

// Compiled is an expression bound to a concrete schema, ready to evaluate
// against tuples laid out by that schema.
//
// Evaluation follows SQL three-valued logic: comparisons involving NULL (or
// incomparable kinds) yield NULL, AND/OR propagate unknowns, and a WHERE
// condition accepts a tuple only when it evaluates to TRUE.
//
// A Compiled expression is immutable once Compile returns: the closure
// tree only reads its captured state and allocates per call, so a single
// Compiled may be evaluated concurrently from many goroutines. The
// parallel executor relies on this to share compiled conditions and
// scoring expressions read-only across its workers; keep registered
// functions (Func.Eval) pure for the same reason.
type Compiled struct {
	eval func(row []types.Value) types.Value
	kind types.Kind
	cols []int
	src  string
}

// Eval evaluates the expression over a tuple.
func (c *Compiled) Eval(row []types.Value) types.Value { return c.eval(row) }

// Kind returns the static result kind.
func (c *Compiled) Kind() types.Kind { return c.kind }

// Columns returns the bound column ordinals the expression reads.
func (c *Compiled) Columns() []int { return c.cols }

// String returns the source form of the compiled expression.
func (c *Compiled) String() string { return c.src }

// Truthy applies the expression as a condition: only TRUE accepts.
func (c *Compiled) Truthy(row []types.Value) bool {
	v := c.eval(row)
	return v.Kind() == types.KindBool && v.AsBool()
}

// Compile binds n to s, resolving columns and functions and type-checking
// operator applications.
func Compile(n Node, s *schema.Schema, funcs *Registry) (*Compiled, error) {
	c := &compiler{schema: s, funcs: funcs}
	out, err := c.compile(n)
	if err != nil {
		return nil, err
	}
	out.src = n.String()
	out.cols = c.cols
	return out, nil
}

// CompileCondition compiles n and verifies it yields a boolean.
func CompileCondition(n Node, s *schema.Schema, funcs *Registry) (*Compiled, error) {
	out, err := Compile(n, s, funcs)
	if err != nil {
		return nil, err
	}
	if out.kind != types.KindBool && out.kind != types.KindNull {
		return nil, fmt.Errorf("expr: condition %s has non-boolean type %s", n, out.kind)
	}
	return out, nil
}

type compiler struct {
	schema *schema.Schema
	funcs  *Registry
	cols   []int
}

func (c *compiler) compile(n Node) (*Compiled, error) {
	switch x := n.(type) {
	case Col:
		idx, err := c.schema.IndexOf(x.Table, x.Name)
		if err != nil {
			return nil, err
		}
		c.cols = append(c.cols, idx)
		kind := c.schema.Columns[idx].Kind
		return &Compiled{kind: kind, eval: func(row []types.Value) types.Value { return row[idx] }}, nil

	case Lit:
		v := x.Val
		return &Compiled{kind: v.Kind(), eval: func([]types.Value) types.Value { return v }}, nil

	case Bin:
		return c.compileBin(x)

	case Un:
		return c.compileUn(x)

	case Call:
		return c.compileCall(x)

	case Between:
		// Desugar: lo <= x AND x <= hi.
		return c.compile(Bin{Op: OpAnd,
			L: Bin{Op: OpLe, L: x.Lo, R: x.X},
			R: Bin{Op: OpLe, L: x.X, R: x.Hi},
		})

	case In:
		return c.compileIn(x)

	case Like:
		return c.compileLike(x)

	case IsNull:
		inner, err := c.compile(x.X)
		if err != nil {
			return nil, err
		}
		neg := x.Negate
		return &Compiled{kind: types.KindBool, eval: func(row []types.Value) types.Value {
			isNull := inner.eval(row).IsNull()
			return types.Bool(isNull != neg)
		}}, nil

	case nil:
		return nil, fmt.Errorf("expr: cannot compile nil expression")

	default:
		return nil, fmt.Errorf("expr: unknown node type %T", n)
	}
}

func (c *compiler) compileBin(x Bin) (*Compiled, error) {
	l, err := c.compile(x.L)
	if err != nil {
		return nil, err
	}
	r, err := c.compile(x.R)
	if err != nil {
		return nil, err
	}
	switch {
	case x.Op.IsComparison():
		op := x.Op
		return &Compiled{kind: types.KindBool, eval: func(row []types.Value) types.Value {
			lv, rv := l.eval(row), r.eval(row)
			if lv.IsNull() || rv.IsNull() {
				return types.Null()
			}
			cmp, ok := types.Compare(lv, rv)
			if !ok {
				return types.Null()
			}
			switch op {
			case OpEq:
				return types.Bool(cmp == 0)
			case OpNe:
				return types.Bool(cmp != 0)
			case OpLt:
				return types.Bool(cmp < 0)
			case OpLe:
				return types.Bool(cmp <= 0)
			case OpGt:
				return types.Bool(cmp > 0)
			default:
				return types.Bool(cmp >= 0)
			}
		}}, nil

	case x.Op == OpAnd:
		return &Compiled{kind: types.KindBool, eval: func(row []types.Value) types.Value {
			lv := l.eval(row)
			if lv.Kind() == types.KindBool && !lv.AsBool() {
				return types.Bool(false)
			}
			rv := r.eval(row)
			if rv.Kind() == types.KindBool && !rv.AsBool() {
				return types.Bool(false)
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null()
			}
			return types.Bool(lv.AsBool() && rv.AsBool())
		}}, nil

	case x.Op == OpOr:
		return &Compiled{kind: types.KindBool, eval: func(row []types.Value) types.Value {
			lv := l.eval(row)
			if lv.Kind() == types.KindBool && lv.AsBool() {
				return types.Bool(true)
			}
			rv := r.eval(row)
			if rv.Kind() == types.KindBool && rv.AsBool() {
				return types.Bool(true)
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null()
			}
			return types.Bool(false)
		}}, nil

	case x.Op == OpAdd || x.Op == OpSub || x.Op == OpMul || x.Op == OpDiv || x.Op == OpMod:
		if err := wantNumeric(x.Op, l.kind, r.kind); err != nil {
			return nil, err
		}
		op := x.Op
		kind := types.KindFloat
		if l.kind == types.KindInt && r.kind == types.KindInt && op != OpDiv {
			kind = types.KindInt
		}
		return &Compiled{kind: kind, eval: func(row []types.Value) types.Value {
			lv, rv := l.eval(row), r.eval(row)
			if lv.IsNull() || rv.IsNull() {
				return types.Null()
			}
			if kind == types.KindInt {
				a, b := lv.AsInt(), rv.AsInt()
				switch op {
				case OpAdd:
					return types.Int(a + b)
				case OpSub:
					return types.Int(a - b)
				case OpMul:
					return types.Int(a * b)
				default: // OpMod
					if b == 0 {
						return types.Null()
					}
					return types.Int(a % b)
				}
			}
			a, b := lv.AsFloat(), rv.AsFloat()
			switch op {
			case OpAdd:
				return types.Float(a + b)
			case OpSub:
				return types.Float(a - b)
			case OpMul:
				return types.Float(a * b)
			case OpDiv:
				if b == 0 {
					return types.Null()
				}
				return types.Float(a / b)
			default: // OpMod over floats: undefined, NULL
				return types.Null()
			}
		}}, nil

	default:
		return nil, fmt.Errorf("expr: unsupported binary operator %s", x.Op)
	}
}

func wantNumeric(op Op, kinds ...types.Kind) error {
	for _, k := range kinds {
		if k != types.KindInt && k != types.KindFloat && k != types.KindNull {
			return fmt.Errorf("expr: operator %s requires numeric operands, got %s", op, k)
		}
	}
	return nil
}

func (c *compiler) compileUn(x Un) (*Compiled, error) {
	inner, err := c.compile(x.X)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case OpNot:
		return &Compiled{kind: types.KindBool, eval: func(row []types.Value) types.Value {
			v := inner.eval(row)
			if v.IsNull() {
				return types.Null()
			}
			return types.Bool(!v.AsBool())
		}}, nil
	case OpNeg:
		if err := wantNumeric(OpNeg, inner.kind); err != nil {
			return nil, err
		}
		kind := inner.kind
		return &Compiled{kind: kind, eval: func(row []types.Value) types.Value {
			v := inner.eval(row)
			if v.IsNull() {
				return types.Null()
			}
			if v.Kind() == types.KindInt {
				return types.Int(-v.AsInt())
			}
			return types.Float(-v.AsFloat())
		}}, nil
	default:
		return nil, fmt.Errorf("expr: unsupported unary operator %s", x.Op)
	}
}

func (c *compiler) compileCall(x Call) (*Compiled, error) {
	f, ok := c.funcs.Lookup(x.Name)
	if !ok {
		return nil, fmt.Errorf("expr: unknown function %q (known: %s)", x.Name, strings.Join(c.funcs.Names(), ", "))
	}
	if len(x.Args) < f.MinArgs || (f.MaxArgs >= 0 && len(x.Args) > f.MaxArgs) {
		return nil, fmt.Errorf("expr: function %q called with %d args, want %d..%d", x.Name, len(x.Args), f.MinArgs, f.MaxArgs)
	}
	args := make([]*Compiled, len(x.Args))
	for i, a := range x.Args {
		ca, err := c.compile(a)
		if err != nil {
			return nil, err
		}
		args[i] = ca
	}
	fn := f.Eval
	return &Compiled{kind: f.Kind, eval: func(row []types.Value) types.Value {
		vals := make([]types.Value, len(args))
		for i, a := range args {
			vals[i] = a.eval(row)
		}
		return fn(vals)
	}}, nil
}

func (c *compiler) compileIn(x In) (*Compiled, error) {
	inner, err := c.compile(x.X)
	if err != nil {
		return nil, err
	}
	items := make([]*Compiled, len(x.List))
	allLit := true
	for i, a := range x.List {
		ca, err := c.compile(a)
		if err != nil {
			return nil, err
		}
		items[i] = ca
		if _, isLit := a.(Lit); !isLit {
			allLit = false
		}
	}
	if allLit {
		// Fast path: hash set of literal values. A NULL literal in the list
		// makes any non-match unknown (SQL three-valued IN).
		set := make(map[uint64][]types.Value, len(items))
		hasNull := false
		for _, it := range items {
			v := it.eval(nil)
			if v.IsNull() {
				hasNull = true
				continue
			}
			set[v.Hash()] = append(set[v.Hash()], v)
		}
		return &Compiled{kind: types.KindBool, eval: func(row []types.Value) types.Value {
			v := inner.eval(row)
			if v.IsNull() {
				return types.Null()
			}
			for _, cand := range set[v.Hash()] {
				if cand.Equal(v) {
					return types.Bool(true)
				}
			}
			if hasNull {
				return types.Null()
			}
			return types.Bool(false)
		}}, nil
	}
	return &Compiled{kind: types.KindBool, eval: func(row []types.Value) types.Value {
		v := inner.eval(row)
		if v.IsNull() {
			return types.Null()
		}
		sawNull := false
		for _, it := range items {
			iv := it.eval(row)
			if iv.IsNull() {
				sawNull = true
				continue
			}
			if iv.Equal(v) {
				return types.Bool(true)
			}
		}
		if sawNull {
			return types.Null()
		}
		return types.Bool(false)
	}}, nil
}

func (c *compiler) compileLike(x Like) (*Compiled, error) {
	inner, err := c.compile(x.X)
	if err != nil {
		return nil, err
	}
	if inner.kind != types.KindString && inner.kind != types.KindNull {
		return nil, fmt.Errorf("expr: LIKE requires a string operand, got %s", inner.kind)
	}
	pat := x.Pattern
	return &Compiled{kind: types.KindBool, eval: func(row []types.Value) types.Value {
		v := inner.eval(row)
		if v.IsNull() {
			return types.Null()
		}
		return types.Bool(likeMatch(v.AsString(), pat))
	}}, nil
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single rune),
// case-sensitively, via iterative backtracking.
func likeMatch(s, pat string) bool {
	sr, pr := []rune(s), []rune(pat)
	si, pi := 0, 0
	star, mark := -1, 0
	for si < len(sr) {
		switch {
		case pi < len(pr) && (pr[pi] == '_' || pr[pi] == sr[si]):
			si++
			pi++
		case pi < len(pr) && pr[pi] == '%':
			star, mark = pi, si
			pi++
		case star >= 0:
			mark++
			si, pi = mark, star+1
		default:
			return false
		}
	}
	for pi < len(pr) && pr[pi] == '%' {
		pi++
	}
	return pi == len(pr)
}
