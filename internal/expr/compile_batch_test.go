package expr

import (
	"math/rand"
	"testing"

	"prefdb/internal/types"
)

// TestTruthyBatchMatchesTruthy checks the vectorized condition kernel
// against the scalar path on randomized tuples and conditions, including
// AND roots (which TruthyBatch splits into conjunct-wise passes) and
// NULL-producing comparisons.
func TestTruthyBatchMatchesTruthy(t *testing.T) {
	s := testSchema()
	reg := NewRegistry()
	r := rand.New(rand.NewSource(7))

	conds := []Node{
		Cmp("year", OpGe, types.Int(2000)),
		Bin{OpAnd, Cmp("year", OpGe, types.Int(2000)), Cmp("rating", OpGt, types.Float(5))},
		Bin{OpAnd, Cmp("year", OpGe, types.Int(1990)),
			Bin{OpAnd, Cmp("rating", OpGt, types.Float(3)), ColRef("hit")}},
		Bin{OpOr, Eq("title", types.Str("x")), Cmp("year", OpLt, types.Int(1995))},
		Un{Op: OpNot, X: ColRef("hit")},
		// Shapes the typed column-vs-literal filter kernel specializes:
		Bin{OpLt, Lit{Val: types.Int(2000)}, ColRef("year")}, // literal on the left
		Cmp("year", OpLe, types.Float(1999.5)),               // float literal on INT column
		Cmp("title", OpGt, types.Str("x")),                   // string ordering
		Eq("hit", types.Bool(true)),                          // bool equality
		Cmp("hit", OpLt, types.Bool(true)),                   // bool ordering (false < true)
		Cmp("title", OpEq, types.Int(3)),                     // incomparable kinds: rejects all
		Cmp("year", OpGe, types.Null()),                      // NULL comparand: rejects all
	}

	for ci, n := range conds {
		c, err := CompileCondition(n, s, reg)
		if err != nil {
			t.Fatalf("cond %d: %v", ci, err)
		}
		tuples := make([][]types.Value, 64)
		for i := range tuples {
			title := "x"
			if r.Intn(2) == 0 {
				title = "y"
			}
			tuples[i] = row(int64(i), title, int64(1980+r.Intn(40)), float64(r.Intn(10)), r.Intn(2) == 0)
			if r.Intn(8) == 0 {
				tuples[i][2] = types.Null() // NULL year: comparisons go UNKNOWN
			}
		}
		sel := make([]int32, 0, len(tuples))
		for i := range tuples {
			if r.Intn(4) > 0 { // start from a partial selection too
				sel = append(sel, int32(i))
			}
		}
		var want []int32
		for _, i := range sel {
			if c.Truthy(tuples[i]) {
				want = append(want, i)
			}
		}
		got := c.TruthyBatch(tuples, append([]int32(nil), sel...))
		if len(got) != len(want) {
			t.Fatalf("cond %d (%s): TruthyBatch kept %d rows, Truthy keeps %d", ci, n, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("cond %d (%s): sel[%d] = %d, want %d", ci, n, k, got[k], want[k])
			}
		}
	}
}

// TestTruthyBatchCompactsInPlace pins the selection-vector contract: the
// result is a prefix reuse of the input's backing array.
func TestTruthyBatchCompactsInPlace(t *testing.T) {
	c, err := CompileCondition(Cmp("year", OpGe, types.Int(2000)), testSchema(), NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	tuples := [][]types.Value{
		row(1, "a", 1999, 1, true),
		row(2, "b", 2005, 1, true),
		row(3, "c", 2010, 1, true),
	}
	sel := []int32{0, 1, 2}
	got := c.TruthyBatch(tuples, sel)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("TruthyBatch = %v, want [1 2]", got)
	}
	if &got[0] != &sel[0] {
		t.Fatal("TruthyBatch did not compact into the input selection vector")
	}
}
