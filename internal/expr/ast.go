// Package expr implements the scalar expression language of prefdb:
// an unbound AST produced by the parser and manipulated by the optimizer,
// and a compiler that binds expressions to a schema for evaluation with
// SQL-style three-valued logic.
package expr

import (
	"fmt"
	"strings"

	"prefdb/internal/types"
)

// Op enumerates binary and unary operators.
type Op uint8

const (
	OpInvalid Op = iota
	// Comparisons.
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	// Boolean connectives.
	OpAnd
	OpOr
	OpNot
	// Arithmetic.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpNeg
)

// String renders the operator as its SQL token.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpNot:
		return "NOT"
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpNeg:
		return "-"
	default:
		return "?"
	}
}

// IsComparison reports whether o is one of the six comparison operators.
func (o Op) IsComparison() bool { return o >= OpEq && o <= OpGe }

// Node is an unbound expression tree node.
type Node interface {
	fmt.Stringer
	// walk visits this node then its children; returning false stops.
	walk(func(Node) bool) bool
}

// Col references a column, optionally qualified by table or alias.
type Col struct {
	Table string
	Name  string
}

// Lit is a literal value.
type Lit struct {
	Val types.Value
}

// Bin is a binary operation.
type Bin struct {
	Op   Op
	L, R Node
}

// Un is a unary operation (NOT, negation).
type Un struct {
	Op Op
	X  Node
}

// Call invokes a registered scalar or scoring function.
type Call struct {
	Name string
	Args []Node
}

// Between is x BETWEEN lo AND hi (inclusive).
type Between struct {
	X, Lo, Hi Node
}

// In is x IN (v1, v2, ...).
type In struct {
	X    Node
	List []Node
}

// Like is x LIKE pattern with % and _ wildcards.
type Like struct {
	X       Node
	Pattern string
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X      Node
	Negate bool
}

// TrueLiteral returns the constant TRUE node (σ_true conditions, e.g. the
// paper's membership preference p7).
func TrueLiteral() Node { return Lit{Val: types.Bool(true)} }

func (c Col) String() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}
func (l Lit) String() string { return l.Val.SQL() }
func (b Bin) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}
func (u Un) String() string {
	if u.Op == OpNot {
		return "(NOT " + u.X.String() + ")"
	}
	return "(" + u.Op.String() + u.X.String() + ")"
}
func (c Call) String() string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.String()
	}
	return c.Name + "(" + strings.Join(args, ", ") + ")"
}
func (b Between) String() string {
	return "(" + b.X.String() + " BETWEEN " + b.Lo.String() + " AND " + b.Hi.String() + ")"
}
func (i In) String() string {
	items := make([]string, len(i.List))
	for j, a := range i.List {
		items[j] = a.String()
	}
	return "(" + i.X.String() + " IN (" + strings.Join(items, ", ") + "))"
}
func (l Like) String() string {
	return "(" + l.X.String() + " LIKE '" + l.Pattern + "')"
}
func (n IsNull) String() string {
	if n.Negate {
		return "(" + n.X.String() + " IS NOT NULL)"
	}
	return "(" + n.X.String() + " IS NULL)"
}

func (c Col) walk(f func(Node) bool) bool { return f(c) }
func (l Lit) walk(f func(Node) bool) bool { return f(l) }
func (b Bin) walk(f func(Node) bool) bool {
	return f(b) && b.L.walk(f) && b.R.walk(f)
}
func (u Un) walk(f func(Node) bool) bool { return f(u) && u.X.walk(f) }
func (c Call) walk(f func(Node) bool) bool {
	if !f(c) {
		return false
	}
	for _, a := range c.Args {
		if !a.walk(f) {
			return false
		}
	}
	return true
}
func (b Between) walk(f func(Node) bool) bool {
	return f(b) && b.X.walk(f) && b.Lo.walk(f) && b.Hi.walk(f)
}
func (i In) walk(f func(Node) bool) bool {
	if !f(i) {
		return false
	}
	if !i.X.walk(f) {
		return false
	}
	for _, a := range i.List {
		if !a.walk(f) {
			return false
		}
	}
	return true
}
func (l Like) walk(f func(Node) bool) bool   { return f(l) && l.X.walk(f) }
func (n IsNull) walk(f func(Node) bool) bool { return f(n) && n.X.walk(f) }

// Walk visits n and all descendants in preorder; the visitor returns false
// to stop early.
func Walk(n Node, f func(Node) bool) {
	if n != nil {
		n.walk(f)
	}
}

// ColumnsOf returns every column reference appearing in n, in visit order
// (duplicates included).
func ColumnsOf(n Node) []Col {
	var cols []Col
	Walk(n, func(x Node) bool {
		if c, ok := x.(Col); ok {
			cols = append(cols, c)
		}
		return true
	})
	return cols
}

// Tables returns the set of table qualifiers referenced by n. Unqualified
// references yield the empty string entry.
func Tables(n Node) map[string]bool {
	out := map[string]bool{}
	for _, c := range ColumnsOf(n) {
		out[strings.ToLower(c.Table)] = true
	}
	return out
}

// RefersOnly reports whether every column in n is qualified by one of the
// given tables (case-insensitive). Unqualified references count as not
// covered, so callers can be conservative when pushing conditions.
func RefersOnly(n Node, tables map[string]bool) bool {
	ok := true
	Walk(n, func(x Node) bool {
		if c, ok2 := x.(Col); ok2 {
			if c.Table == "" || !tables[strings.ToLower(c.Table)] {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

// Conjuncts splits an AND tree into its conjuncts.
func Conjuncts(n Node) []Node {
	if n == nil {
		return nil
	}
	if b, ok := n.(Bin); ok && b.Op == OpAnd {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Node{n}
}

// AndAll combines conditions into a right-leaning AND tree; nil for empty.
func AndAll(ns []Node) Node {
	var out Node
	for i := len(ns) - 1; i >= 0; i-- {
		if ns[i] == nil {
			continue
		}
		if out == nil {
			out = ns[i]
		} else {
			out = Bin{Op: OpAnd, L: ns[i], R: out}
		}
	}
	return out
}

// Equal reports structural equality of two expression trees.
func Equal(a, b Node) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.String() == b.String()
}

// Eq builds column = literal, the most common condition shape.
func Eq(col string, v types.Value) Node {
	t, n := splitRef(col)
	return Bin{Op: OpEq, L: Col{Table: t, Name: n}, R: Lit{Val: v}}
}

// Cmp builds column <op> literal.
func Cmp(col string, op Op, v types.Value) Node {
	t, n := splitRef(col)
	return Bin{Op: op, L: Col{Table: t, Name: n}, R: Lit{Val: v}}
}

// ColRef builds a column reference from "table.name" or "name".
func ColRef(ref string) Col {
	t, n := splitRef(ref)
	return Col{Table: t, Name: n}
}

func splitRef(ref string) (string, string) {
	if i := strings.IndexByte(ref, '.'); i >= 0 {
		return ref[:i], ref[i+1:]
	}
	return "", ref
}
