package expr

import (
	"testing"
	"testing/quick"

	"prefdb/internal/schema"
	"prefdb/internal/types"
)

func testSchema() *schema.Schema {
	return schema.New(
		schema.Column{Table: "movies", Name: "m_id", Kind: types.KindInt},
		schema.Column{Table: "movies", Name: "title", Kind: types.KindString},
		schema.Column{Table: "movies", Name: "year", Kind: types.KindInt},
		schema.Column{Table: "movies", Name: "rating", Kind: types.KindFloat},
		schema.Column{Table: "movies", Name: "hit", Kind: types.KindBool},
	)
}

func row(id int64, title string, year int64, rating float64, hit bool) []types.Value {
	return []types.Value{types.Int(id), types.Str(title), types.Int(year), types.Float(rating), types.Bool(hit)}
}

func compile(t *testing.T, n Node) *Compiled {
	t.Helper()
	c, err := Compile(n, testSchema(), NewRegistry())
	if err != nil {
		t.Fatalf("Compile(%s): %v", n, err)
	}
	return c
}

func TestColAndLit(t *testing.T) {
	r := row(1, "Gran Torino", 2008, 8.2, true)
	if got := compile(t, ColRef("title")).Eval(r); got.AsString() != "Gran Torino" {
		t.Errorf("col eval = %v", got)
	}
	if got := compile(t, Lit{types.Int(5)}).Eval(r); got.AsInt() != 5 {
		t.Errorf("lit eval = %v", got)
	}
	if got := compile(t, ColRef("movies.year")).Eval(r); got.AsInt() != 2008 {
		t.Errorf("qualified col = %v", got)
	}
}

func TestComparisons(t *testing.T) {
	r := row(1, "abc", 2008, 8.2, true)
	cases := []struct {
		n    Node
		want bool
	}{
		{Eq("year", types.Int(2008)), true},
		{Eq("year", types.Int(2009)), false},
		{Cmp("year", OpNe, types.Int(2009)), true},
		{Cmp("year", OpLt, types.Int(2009)), true},
		{Cmp("year", OpLe, types.Int(2008)), true},
		{Cmp("year", OpGt, types.Int(2007)), true},
		{Cmp("year", OpGe, types.Int(2008)), true},
		{Cmp("rating", OpGt, types.Float(8.0)), true},
		{Cmp("rating", OpGt, types.Int(9)), false},
		{Eq("title", types.Str("abc")), true},
	}
	for _, c := range cases {
		got := compile(t, c.n).Eval(r)
		if got.Kind() != types.KindBool || got.AsBool() != c.want {
			t.Errorf("%s = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	s := testSchema()
	r := []types.Value{types.Int(1), types.Null(), types.Null(), types.Float(5), types.Bool(true)}
	reg := NewRegistry()
	// NULL = NULL is NULL, not true.
	c, err := CompileCondition(Eq("title", types.Str("x")), s, reg)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Eval(r); !got.IsNull() {
		t.Errorf("NULL comparison = %v, want NULL", got)
	}
	if c.Truthy(r) {
		t.Error("NULL condition must not accept")
	}
	// FALSE AND NULL = FALSE (short circuit).
	and := Bin{Op: OpAnd, L: Eq("m_id", types.Int(99)), R: Eq("title", types.Str("x"))}
	if got := compile(t, and).Eval(r); got.IsNull() || got.AsBool() {
		t.Errorf("FALSE AND NULL = %v, want false", got)
	}
	// TRUE AND NULL = NULL.
	and2 := Bin{Op: OpAnd, L: Eq("m_id", types.Int(1)), R: Eq("title", types.Str("x"))}
	if got := compile(t, and2).Eval(r); !got.IsNull() {
		t.Errorf("TRUE AND NULL = %v, want NULL", got)
	}
	// TRUE OR NULL = TRUE.
	or := Bin{Op: OpOr, L: Eq("m_id", types.Int(1)), R: Eq("title", types.Str("x"))}
	if got := compile(t, or).Eval(r); got.IsNull() || !got.AsBool() {
		t.Errorf("TRUE OR NULL = %v, want true", got)
	}
	// FALSE OR NULL = NULL.
	or2 := Bin{Op: OpOr, L: Eq("m_id", types.Int(99)), R: Eq("title", types.Str("x"))}
	if got := compile(t, or2).Eval(r); !got.IsNull() {
		t.Errorf("FALSE OR NULL = %v, want NULL", got)
	}
	// NOT NULL = NULL.
	not := Un{Op: OpNot, X: Eq("title", types.Str("x"))}
	if got := compile(t, not).Eval(r); !got.IsNull() {
		t.Errorf("NOT NULL = %v, want NULL", got)
	}
}

func TestArithmetic(t *testing.T) {
	r := row(1, "x", 10, 2.5, false)
	cases := []struct {
		n    Node
		want types.Value
	}{
		{Bin{OpAdd, ColRef("year"), Lit{types.Int(5)}}, types.Int(15)},
		{Bin{OpSub, ColRef("year"), Lit{types.Int(3)}}, types.Int(7)},
		{Bin{OpMul, ColRef("year"), Lit{types.Int(2)}}, types.Int(20)},
		{Bin{OpDiv, ColRef("year"), Lit{types.Int(4)}}, types.Float(2.5)},
		{Bin{OpMod, ColRef("year"), Lit{types.Int(3)}}, types.Int(1)},
		{Bin{OpAdd, ColRef("rating"), Lit{types.Float(0.5)}}, types.Float(3.0)},
		{Bin{OpDiv, ColRef("year"), Lit{types.Int(0)}}, types.Null()},
		{Bin{OpMod, ColRef("year"), Lit{types.Int(0)}}, types.Null()},
		{Un{OpNeg, ColRef("year")}, types.Int(-10)},
		{Un{OpNeg, ColRef("rating")}, types.Float(-2.5)},
	}
	for _, c := range cases {
		got := compile(t, c.n).Eval(r)
		if !got.Equal(c.want) && !(got.IsNull() && c.want.IsNull()) {
			t.Errorf("%s = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestTypeErrors(t *testing.T) {
	s := testSchema()
	reg := NewRegistry()
	bad := []Node{
		Bin{OpAdd, ColRef("title"), Lit{types.Int(1)}},
		Un{OpNeg, ColRef("title")},
		Like{X: ColRef("year"), Pattern: "%x%"},
		ColRef("missing"),
		Call{Name: "nosuchfunc"},
		Call{Name: "abs", Args: []Node{ColRef("year"), ColRef("year")}},
	}
	for _, n := range bad {
		if _, err := Compile(n, s, reg); err == nil {
			t.Errorf("Compile(%s): expected error", n)
		}
	}
	if _, err := CompileCondition(Bin{OpAdd, ColRef("year"), Lit{types.Int(1)}}, s, reg); err == nil {
		t.Error("CompileCondition should reject numeric expressions")
	}
}

func TestBetweenInLikeIsNull(t *testing.T) {
	r := row(1, "Million Dollar Baby", 2004, 8.1, true)
	cases := []struct {
		n    Node
		want bool
	}{
		{Between{ColRef("year"), Lit{types.Int(2000)}, Lit{types.Int(2010)}}, true},
		{Between{ColRef("year"), Lit{types.Int(2005)}, Lit{types.Int(2010)}}, false},
		{In{ColRef("year"), []Node{Lit{types.Int(2003)}, Lit{types.Int(2004)}}}, true},
		{In{ColRef("year"), []Node{Lit{types.Int(1999)}}}, false},
		{Like{ColRef("title"), "Million%"}, true},
		{Like{ColRef("title"), "%Dollar%"}, true},
		{Like{ColRef("title"), "M_llion%"}, true},
		{Like{ColRef("title"), "Dollar"}, false},
		{Like{ColRef("title"), "%baby"}, false}, // case-sensitive
		{IsNull{X: ColRef("title")}, false},
		{IsNull{X: ColRef("title"), Negate: true}, true},
	}
	for _, c := range cases {
		got := compile(t, c.n).Eval(r)
		if got.Kind() != types.KindBool || got.AsBool() != c.want {
			t.Errorf("%s = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestInWithNulls(t *testing.T) {
	s := testSchema()
	r := []types.Value{types.Int(1), types.Null(), types.Int(2004), types.Float(1), types.Bool(true)}
	// NULL IN (...) is NULL.
	c := compile(t, In{ColRef("title"), []Node{Lit{types.Str("x")}}})
	if got := c.Eval(r); !got.IsNull() {
		t.Errorf("NULL IN list = %v", got)
	}
	_ = s
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"", "", true},
		{"", "%", true},
		{"a", "", false},
		{"abc", "abc", true},
		{"abc", "a%", true},
		{"abc", "%c", true},
		{"abc", "%b%", true},
		{"abc", "a_c", true},
		{"abc", "a_b", false},
		{"aXbYc", "a%b%c", true},
		{"mississippi", "%iss%pi", true},
		{"mississippi", "%iss%pix", false},
		{"日本語", "日_語", true},
		{"日本語", "%語", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q,%q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestFunctions(t *testing.T) {
	r := row(1, "Abc", 2008, -2.5, true)
	cases := []struct {
		n    Node
		want types.Value
	}{
		{Call{"abs", []Node{ColRef("rating")}}, types.Float(2.5)},
		{Call{"min", []Node{Lit{types.Int(3)}, Lit{types.Int(1)}, Lit{types.Int(2)}}}, types.Float(1)},
		{Call{"max", []Node{Lit{types.Int(3)}, ColRef("year")}}, types.Float(2008)},
		{Call{"round", []Node{Lit{types.Float(2.6)}}}, types.Float(3)},
		{Call{"length", []Node{ColRef("title")}}, types.Int(3)},
		{Call{"lower", []Node{ColRef("title")}}, types.Str("abc")},
		{Call{"upper", []Node{ColRef("title")}}, types.Str("ABC")},
	}
	for _, c := range cases {
		got := compile(t, c.n).Eval(r)
		if !got.Equal(c.want) {
			t.Errorf("%s = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Lookup("ABS"); !ok {
		t.Error("lookup should be case-insensitive")
	}
	if err := r.Register(&Func{Name: "abs"}); err == nil {
		t.Error("duplicate registration should fail")
	}
	if err := r.Register(&Func{Name: ""}); err == nil {
		t.Error("empty name should fail")
	}
	c := r.Clone()
	if err := c.Register(&Func{Name: "custom", Kind: types.KindInt, Eval: func([]types.Value) types.Value { return types.Int(1) }}); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Lookup("custom"); ok {
		t.Error("clone registration leaked into original")
	}
}

func TestConjunctsAndAndAll(t *testing.T) {
	a := Eq("year", types.Int(1))
	b := Eq("m_id", types.Int(2))
	c := Eq("title", types.Str("x"))
	tree := Bin{OpAnd, a, Bin{OpAnd, b, c}}
	parts := Conjuncts(tree)
	if len(parts) != 3 {
		t.Fatalf("Conjuncts = %d parts", len(parts))
	}
	back := AndAll(parts)
	if !Equal(back, tree) {
		t.Errorf("AndAll(Conjuncts(x)) = %s, want %s", back, tree)
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil) should be nil")
	}
	if got := AndAll([]Node{a}); !Equal(got, a) {
		t.Errorf("AndAll single = %s", got)
	}
}

func TestColumnsOfAndTables(t *testing.T) {
	n := Bin{OpAnd,
		Eq("movies.year", types.Int(1)),
		Bin{OpGt, ColRef("ratings.votes"), ColRef("movies.m_id")},
	}
	cols := ColumnsOf(n)
	if len(cols) != 3 {
		t.Fatalf("ColumnsOf = %v", cols)
	}
	tabs := Tables(n)
	if !tabs["movies"] || !tabs["ratings"] || len(tabs) != 2 {
		t.Errorf("Tables = %v", tabs)
	}
	if !RefersOnly(n, map[string]bool{"movies": true, "ratings": true}) {
		t.Error("RefersOnly full set should hold")
	}
	if RefersOnly(n, map[string]bool{"movies": true}) {
		t.Error("RefersOnly partial set should fail")
	}
	if RefersOnly(Eq("year", types.Int(1)), map[string]bool{"movies": true}) {
		t.Error("unqualified refs must not count as covered")
	}
}

func TestTruthyProperty(t *testing.T) {
	// Property: for random years, (year >= lo) agrees with direct comparison.
	s := testSchema()
	reg := NewRegistry()
	f := func(year int32, lo int32) bool {
		c, err := CompileCondition(Cmp("year", OpGe, types.Int(int64(lo))), s, reg)
		if err != nil {
			return false
		}
		r := row(1, "t", int64(year), 0, false)
		return c.Truthy(r) == (year >= lo)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	n := Bin{OpAnd,
		Eq("genre", types.Str("Comedy")),
		Un{OpNot, IsNull{X: ColRef("year"), Negate: true}},
	}
	want := "((genre = 'Comedy') AND (NOT (year IS NOT NULL)))"
	if got := n.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got := (Between{ColRef("x"), Lit{types.Int(1)}, Lit{types.Int(2)}}).String(); got != "(x BETWEEN 1 AND 2)" {
		t.Errorf("between = %q", got)
	}
	if got := (In{ColRef("x"), []Node{Lit{types.Int(1)}}}).String(); got != "(x IN (1))" {
		t.Errorf("in = %q", got)
	}
	if got := (Call{"f", []Node{ColRef("x"), Lit{types.Int(2)}}}).String(); got != "f(x, 2)" {
		t.Errorf("call = %q", got)
	}
}

func TestCompiledMetadata(t *testing.T) {
	c := compile(t, Bin{OpGt, ColRef("rating"), ColRef("year")})
	if len(c.Columns()) != 2 {
		t.Errorf("Columns = %v", c.Columns())
	}
	if c.Kind() != types.KindBool {
		t.Errorf("Kind = %v", c.Kind())
	}
	if c.String() == "" {
		t.Error("String should carry source")
	}
}

func TestWalkCoversAllNodes(t *testing.T) {
	// Walk must visit every child of every composite node type.
	n := Bin{OpOr,
		Between{ColRef("a"), Lit{types.Int(1)}, Lit{types.Int(2)}},
		Bin{OpAnd,
			In{ColRef("b"), []Node{Lit{types.Int(3)}, ColRef("c")}},
			Bin{OpAnd,
				Like{ColRef("d"), "x%"},
				Bin{OpAnd,
					IsNull{X: ColRef("e")},
					Un{OpNot, Call{"f", []Node{ColRef("g"), TrueLiteral()}}},
				},
			},
		},
	}
	var cols []string
	Walk(n, func(x Node) bool {
		if c, ok := x.(Col); ok {
			cols = append(cols, c.Name)
		}
		return true
	})
	want := []string{"a", "b", "c", "d", "e", "g"}
	if len(cols) != len(want) {
		t.Fatalf("visited cols = %v, want %v", cols, want)
	}
	for i := range want {
		if cols[i] != want[i] {
			t.Fatalf("visited cols = %v, want %v", cols, want)
		}
	}
	// Early stop inside each composite type.
	for _, sub := range []Node{
		Between{ColRef("x"), ColRef("y"), ColRef("z")},
		In{ColRef("x"), []Node{ColRef("y")}},
		Like{ColRef("x"), "p"},
		IsNull{X: ColRef("x")},
		Call{"f", []Node{ColRef("x"), ColRef("y")}},
		Un{OpNeg, ColRef("x")},
	} {
		count := 0
		Walk(sub, func(Node) bool {
			count++
			return count < 2 // stop right after the first child
		})
		if count != 2 {
			t.Errorf("%T early stop visited %d nodes", sub, count)
		}
	}
	// TrueLiteral is the σ_true building block.
	if TrueLiteral().String() != "true" {
		t.Errorf("TrueLiteral = %s", TrueLiteral())
	}
}

func TestEqualNilHandling(t *testing.T) {
	a := ColRef("x")
	if !Equal(nil, nil) {
		t.Error("nil == nil")
	}
	if Equal(a, nil) || Equal(nil, a) {
		t.Error("nil != non-nil")
	}
	if !Equal(a, ColRef("x")) {
		t.Error("structural equality failed")
	}
}

func TestInWithNonLiteralList(t *testing.T) {
	// Column-valued IN lists take the slow path.
	r := row(5, "x", 5, 5, true)
	c := compile(t, In{ColRef("m_id"), []Node{ColRef("year"), Lit{types.Int(9)}}})
	if got := c.Eval(r); !got.AsBool() {
		t.Errorf("5 IN (year=5, 9) = %v", got)
	}
	r2 := row(4, "x", 5, 5, true)
	if got := c.Eval(r2); got.AsBool() {
		t.Errorf("4 IN (5, 9) = %v", got)
	}
	// NULL in the list makes a non-match unknown.
	s := testSchema()
	reg := NewRegistry()
	cn, err := Compile(In{ColRef("m_id"), []Node{Lit{types.Null()}, Lit{types.Int(9)}}}, s, reg)
	if err != nil {
		t.Fatal(err)
	}
	if got := cn.Eval(r2); !got.IsNull() {
		t.Errorf("4 IN (NULL, 9) = %v, want NULL", got)
	}
	if got := cn.Eval(row(9, "x", 1, 1, true)); !got.AsBool() {
		t.Errorf("9 IN (NULL, 9) = %v, want true", got)
	}
}

func TestBuiltinCoalesceMinMaxNulls(t *testing.T) {
	r := []types.Value{types.Null(), types.Str("t"), types.Int(7), types.Float(2), types.Bool(true)}
	c := compile(t, Call{"coalesce", []Node{ColRef("m_id"), ColRef("year")}})
	if got := c.Eval(r); got.AsInt() != 7 {
		t.Errorf("coalesce = %v", got)
	}
	cAllNull := compile(t, Call{"coalesce", []Node{ColRef("m_id"), ColRef("m_id")}})
	if got := cAllNull.Eval(r); !got.IsNull() {
		t.Errorf("coalesce(all null) = %v", got)
	}
	// min/max with a NULL argument yields NULL.
	cm := compile(t, Call{"min", []Node{ColRef("m_id"), ColRef("year")}})
	if got := cm.Eval(r); !got.IsNull() {
		t.Errorf("min(NULL, 7) = %v", got)
	}
	// NULL-propagating unary builtins.
	for _, name := range []string{"abs", "round", "length", "lower", "upper"} {
		col := "m_id"
		if name == "length" || name == "lower" || name == "upper" {
			col = "title"
		}
		cn := compile(t, Call{name, []Node{ColRef(col)}})
		nullRow := []types.Value{types.Null(), types.Null(), types.Null(), types.Null(), types.Null()}
		if got := cn.Eval(nullRow); !got.IsNull() {
			t.Errorf("%s(NULL) = %v", name, got)
		}
	}
}
