package expr

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"prefdb/internal/types"
)

// Func is a registered scalar function callable from expressions.
type Func struct {
	// Name is the lookup key (case-insensitive).
	Name string
	// MinArgs/MaxArgs bound the arity; MaxArgs < 0 means variadic.
	MinArgs, MaxArgs int
	// Kind is the static result kind.
	Kind types.Kind
	// Eval computes the result; args are already evaluated. NULL inputs
	// should normally yield NULL.
	Eval func(args []types.Value) types.Value
	// Floats, when non-nil, declares Eval to follow the standard float
	// kernel convention — any NULL or non-numeric argument yields NULL,
	// otherwise the result is exactly Float(Floats(argsAsFloats)) — and
	// provides that kernel. The compiler's vectorized path (EvalBatch)
	// uses it to hoist the per-row float conversion out of the row loop;
	// Eval remains authoritative for the scalar path.
	Floats func(args []float64) float64
}

// Registry maps function names to implementations. The zero Registry is
// empty; use NewRegistry for the standard builtins.
type Registry struct {
	funcs map[string]*Func
}

// NewRegistry returns a registry preloaded with the standard scalar builtins
// (abs, min, max, round, length, lower, upper, coalesce).
func NewRegistry() *Registry {
	r := &Registry{funcs: map[string]*Func{}}
	r.MustRegister(&Func{Name: "abs", MinArgs: 1, MaxArgs: 1, Kind: types.KindFloat, Eval: func(a []types.Value) types.Value {
		if a[0].IsNull() {
			return types.Null()
		}
		return types.Float(math.Abs(a[0].AsFloat()))
	}})
	r.MustRegister(&Func{Name: "min", MinArgs: 1, MaxArgs: -1, Kind: types.KindFloat, Eval: foldFloat(math.Min)})
	r.MustRegister(&Func{Name: "max", MinArgs: 1, MaxArgs: -1, Kind: types.KindFloat, Eval: foldFloat(math.Max)})
	r.MustRegister(&Func{Name: "round", MinArgs: 1, MaxArgs: 1, Kind: types.KindFloat, Eval: func(a []types.Value) types.Value {
		if a[0].IsNull() {
			return types.Null()
		}
		return types.Float(math.Round(a[0].AsFloat()))
	}})
	r.MustRegister(&Func{Name: "length", MinArgs: 1, MaxArgs: 1, Kind: types.KindInt, Eval: func(a []types.Value) types.Value {
		if a[0].IsNull() {
			return types.Null()
		}
		return types.Int(int64(len(a[0].AsString())))
	}})
	r.MustRegister(&Func{Name: "lower", MinArgs: 1, MaxArgs: 1, Kind: types.KindString, Eval: func(a []types.Value) types.Value {
		if a[0].IsNull() {
			return types.Null()
		}
		return types.Str(strings.ToLower(a[0].AsString()))
	}})
	r.MustRegister(&Func{Name: "upper", MinArgs: 1, MaxArgs: 1, Kind: types.KindString, Eval: func(a []types.Value) types.Value {
		if a[0].IsNull() {
			return types.Null()
		}
		return types.Str(strings.ToUpper(a[0].AsString()))
	}})
	r.MustRegister(&Func{Name: "coalesce", MinArgs: 1, MaxArgs: -1, Kind: types.KindFloat, Eval: func(a []types.Value) types.Value {
		for _, v := range a {
			if !v.IsNull() {
				return v
			}
		}
		return types.Null()
	}})
	return r
}

func foldFloat(f func(a, b float64) float64) func([]types.Value) types.Value {
	return func(args []types.Value) types.Value {
		acc := math.NaN()
		first := true
		for _, v := range args {
			if v.IsNull() {
				return types.Null()
			}
			if first {
				acc = v.AsFloat()
				first = false
			} else {
				acc = f(acc, v.AsFloat())
			}
		}
		return types.Float(acc)
	}
}

// Register adds a function; it fails if the name is taken or invalid.
func (r *Registry) Register(f *Func) error {
	if r.funcs == nil {
		r.funcs = map[string]*Func{}
	}
	key := strings.ToLower(f.Name)
	if key == "" {
		return fmt.Errorf("expr: function name must not be empty")
	}
	if _, dup := r.funcs[key]; dup {
		return fmt.Errorf("expr: function %q already registered", f.Name)
	}
	r.funcs[key] = f
	return nil
}

// MustRegister is Register, panicking on error (for builtins).
func (r *Registry) MustRegister(f *Func) {
	if err := r.Register(f); err != nil {
		panic(err)
	}
}

// Lookup resolves a function by name (case-insensitive).
func (r *Registry) Lookup(name string) (*Func, bool) {
	if r == nil || r.funcs == nil {
		return nil, false
	}
	f, ok := r.funcs[strings.ToLower(name)]
	return f, ok
}

// Names returns the sorted registered names (for error messages and docs).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	out := make([]string, 0, len(r.funcs))
	for k := range r.funcs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Clone returns a shallow copy that can be extended without affecting r.
func (r *Registry) Clone() *Registry {
	out := &Registry{funcs: make(map[string]*Func, len(r.funcs))}
	for k, v := range r.funcs {
		out.funcs[k] = v
	}
	return out
}
