package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"prefdb/internal/algebra"
	"prefdb/internal/expr"
	"prefdb/internal/optimizer"
	"prefdb/internal/pref"
	"prefdb/internal/types"
)

// planGen builds random-but-valid extended query plans over the movie
// database, used to cross-check every execution strategy (and the
// optimizer) against the native reference on inputs nobody hand-picked.
type planGen struct {
	r *rand.Rand
}

// genPlan produces a plan over movies ⋈ genres [⋈ directors] with random
// selections, 0–4 preferences and a random filtering operator.
func (g *planGen) genPlan() algebra.Node {
	// Join shape.
	var core algebra.Node = &algebra.Scan{Table: "movies"}
	rels := []string{"movies"}
	if g.r.Intn(4) > 0 {
		core = &algebra.Join{
			Cond: expr.Bin{Op: expr.OpEq, L: expr.ColRef("movies.m_id"), R: expr.ColRef("genres.m_id")},
			Left: core, Right: &algebra.Scan{Table: "genres"},
		}
		rels = append(rels, "genres")
	}
	if g.r.Intn(3) == 0 {
		core = &algebra.Join{
			Cond: expr.Bin{Op: expr.OpEq, L: expr.ColRef("movies.d_id"), R: expr.ColRef("directors.d_id")},
			Left: core, Right: &algebra.Scan{Table: "directors"},
		}
		rels = append(rels, "directors")
	}

	// Random WHERE.
	if g.r.Intn(2) == 0 {
		core = &algebra.Select{Cond: g.genCond(rels), Input: core}
	}

	// Occasionally wrap in a set operation against another filtered slice
	// of the same shape (branches share base relations, so preferences
	// above the operation stay well-defined).
	if g.r.Intn(4) == 0 && len(rels) == 1 {
		other := &algebra.Select{Cond: g.genCond(rels), Input: &algebra.Scan{Table: "movies"}}
		mine := core
		if _, isSel := core.(*algebra.Select); !isSel {
			mine = &algebra.Select{Cond: g.genCond(rels), Input: core}
		}
		op := []algebra.SetOp{algebra.SetUnion, algebra.SetIntersect, algebra.SetDiff}[g.r.Intn(3)]
		core = &algebra.Set{Op: op, Left: mine, Right: other}
	}

	// Occasionally narrow single-relation plans below the preferences —
	// where the planner puts π (prefers and filtering operators above it,
	// FtP's contract). Projection preserves ⟨S,C⟩ and the kept columns
	// cover every preference and ordering key the generator can emit, so
	// the plan stays deterministic while exercising the project paths
	// (row arena and batch kernel).
	if len(rels) == 1 && g.r.Intn(4) == 0 {
		core = &algebra.Project{Cols: []expr.Col{
			expr.ColRef("movies.m_id"), expr.ColRef("movies.year"),
			expr.ColRef("movies.duration"), expr.ColRef("movies.d_id"),
		}, Input: core}
	}

	// Random preferences, anywhere above the core (baseline placement).
	for i, n := 0, g.r.Intn(5); i < n; i++ {
		core = &algebra.Prefer{P: g.genPref(rels, i), Input: core}
	}

	// Random filtering operator.
	switch g.r.Intn(5) {
	case 0:
		core = &algebra.TopK{K: 1 + g.r.Intn(6), By: g.genBy(), Input: core}
	case 1:
		core = &algebra.Threshold{By: g.genBy(), Op: expr.OpGe, Value: g.r.Float64() * 1.5, Input: core}
	case 2:
		core = &algebra.Skyline{Input: core}
	case 3:
		core = &algebra.Rank{By: g.genBy(), Input: core}
	}
	// Occasionally add attribute ordering; a limit only goes on top of an
	// ordering that is total for the plan's rows (single-relation plans
	// ordered by the key), since LIMIT over an unordered or tied relation
	// is legitimately nondeterministic and would flag false mismatches.
	if g.r.Intn(3) == 0 {
		core = &algebra.OrderBy{Keys: []algebra.OrderKey{
			{Col: expr.ColRef("movies.year"), Desc: g.r.Intn(2) == 0},
			{Col: expr.ColRef("movies.m_id")},
		}, Input: core}
		if len(rels) == 1 && g.r.Intn(2) == 0 {
			core = &algebra.Limit{N: g.r.Intn(8), Offset: g.r.Intn(3), Input: core}
		}
	}
	return core
}

func (g *planGen) genBy() algebra.RankBy {
	if g.r.Intn(2) == 0 {
		return algebra.ByConf
	}
	return algebra.ByScore
}

// genCond produces a condition over the available relations.
func (g *planGen) genCond(rels []string) expr.Node {
	conds := []func() expr.Node{
		func() expr.Node { return expr.Cmp("movies.year", expr.OpGe, types.Int(int64(1985+g.r.Intn(25)))) },
		func() expr.Node { return expr.Cmp("movies.duration", expr.OpLe, types.Int(int64(90+g.r.Intn(60)))) },
		func() expr.Node { return expr.Eq("movies.d_id", types.Int(int64(1+g.r.Intn(3)))) },
	}
	if contains(rels, "genres") {
		conds = append(conds, func() expr.Node {
			return expr.Eq("genres.genre", types.Str([]string{"Drama", "Comedy", "Sport"}[g.r.Intn(3)]))
		})
	}
	c := conds[g.r.Intn(len(conds))]()
	if g.r.Intn(3) == 0 {
		op := expr.OpAnd
		if g.r.Intn(2) == 0 {
			op = expr.OpOr
		}
		return expr.Bin{Op: op, L: c, R: conds[g.r.Intn(len(conds))]()}
	}
	return c
}

// genPref produces a random single- or multi-relational preference.
func (g *planGen) genPref(rels []string, i int) pref.Preference {
	conf := 0.1 + 0.9*g.r.Float64()
	score := []expr.Node{
		expr.Lit{Val: types.Float(g.r.Float64())},
		pref.Recency("movies.year", 2011),
		pref.Around("movies.duration", 120),
	}[g.r.Intn(3)]
	if contains(rels, "genres") && g.r.Intn(2) == 0 {
		cond := expr.Eq("genres.genre", types.Str([]string{"Drama", "Comedy", "Thriller"}[g.r.Intn(3)]))
		if g.r.Intn(3) == 0 {
			// Multi-relational preference over the product.
			return pref.Preference{Name: fmt.Sprintf("fz%d", i), On: []string{"movies", "genres"}, Cond: cond, Score: score, Conf: conf}
		}
		return pref.Preference{Name: fmt.Sprintf("fz%d", i), On: []string{"genres"}, Cond: cond,
			Score: expr.Lit{Val: types.Float(g.r.Float64())}, Conf: conf}
	}
	cond := g.genCond([]string{"movies"})
	return pref.Preference{Name: fmt.Sprintf("fz%d", i), On: []string{"movies"}, Cond: cond, Score: score, Conf: conf}
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// FuzzBatchRowEquivalence fuzzes the batch≡row contract (DESIGN.md §10):
// for any generated plan and any strategy, the vectorized path must
// produce the row path's exact rows, order and Stats (modulo the
// diagnostic Batches counter) at every batch size — including degenerate
// size 1, where every compaction edge case fires. Run it under
// `-tags prefdbdebug` to layer the runtime assertions (selection-vector
// shape, column alignment) over the equivalence check.
func FuzzBatchRowEquivalence(f *testing.F) {
	for _, seed := range []int64{1, 42, 7777, 20120401} {
		f.Add(seed, uint8(0))
	}
	f.Fuzz(func(t *testing.T, seed int64, strategyPick uint8) {
		g := &planGen{r: rand.New(rand.NewSource(seed))}
		plan := g.genPlan()
		strategies := Strategies()
		s := strategies[int(strategyPick)%len(strategies)]

		eRow := New(movieDB(t))
		eRow.Batch = BatchOff
		ref, err := eRow.Run(plan, s)
		if err != nil {
			t.Fatalf("row path (%v) failed on\n%s\n%v", s, algebra.Format(plan), err)
		}
		refStats := eRow.Stats()
		refStats.Batches = 0

		for _, size := range []int{1, 3, 1024} {
			eBatch := New(movieDB(t))
			eBatch.Batch = BatchOn
			eBatch.BatchSize = size
			got, err := eBatch.Run(plan, s)
			if err != nil {
				t.Fatalf("batch path (%v, size %d) failed on\n%s\n%v", s, size, algebra.Format(plan), err)
			}
			if diff := ref.Diff(got, 1e-9); diff != "" {
				t.Fatalf("batch path (%v, size %d) differs on\n%s\n%s", s, size, algebra.Format(plan), diff)
			}
			gotStats := eBatch.Stats()
			gotStats.Batches, gotStats.JoinProbeBatches = 0, 0
			if gotStats != refStats {
				t.Fatalf("batch path (%v, size %d) Stats differ on\n%s\nrow:   %v\nbatch: %v",
					s, size, algebra.Format(plan), refStats, gotStats)
			}

			// Both columnar forms — direct-on-column kernels and row-view
			// packing — must uphold the same contract (modulo the
			// diagnostic segment / materialization counters).
			for _, mode := range []ColstoreMode{ColstoreOn, ColstoreRows} {
				eCol := New(movieDB(t))
				eCol.Batch = BatchOn
				eCol.BatchSize = size
				eCol.Colstore = mode
				gotCol, err := eCol.Run(plan, s)
				if err != nil {
					t.Fatalf("colstore=%v path (%v, size %d) failed on\n%s\n%v", mode, s, size, algebra.Format(plan), err)
				}
				if diff := ref.Diff(gotCol, 1e-9); diff != "" {
					t.Fatalf("colstore=%v path (%v, size %d) differs on\n%s\n%s", mode, s, size, algebra.Format(plan), diff)
				}
				colStats := eCol.Stats()
				colStats.Batches, colStats.SegmentsScanned, colStats.SegmentsSkipped = 0, 0, 0
				colStats.ColBatches, colStats.RowsMaterialized, colStats.JoinProbeBatches = 0, 0, 0
				if colStats != refStats {
					t.Fatalf("colstore=%v path (%v, size %d) Stats differ on\n%s\nrow:      %v\ncolstore: %v",
						mode, s, size, algebra.Format(plan), refStats, colStats)
				}
			}
		}
	})
}

// TestRandomPlansAllStrategiesAgree cross-checks 150 random plans: every
// strategy, with and without the optimizer, must return the native
// reference result.
func TestRandomPlansAllStrategiesAgree(t *testing.T) {
	iterations := 150
	if testing.Short() {
		iterations = 25
	}
	g := &planGen{r: rand.New(rand.NewSource(20120401))}
	for i := 0; i < iterations; i++ {
		plan := g.genPlan()
		e := New(movieDB(t))
		ref, err := e.Run(plan, Native)
		if err != nil {
			t.Fatalf("iter %d: native failed on\n%s\n%v", i, algebra.Format(plan), err)
		}
		for _, s := range []Strategy{BU, GBU, FtP} {
			e2 := New(movieDB(t))
			got, err := e2.Run(plan, s)
			if err != nil {
				t.Fatalf("iter %d: %v failed on\n%s\n%v", i, s, algebra.Format(plan), err)
			}
			if diff := ref.Diff(got, 1e-9); diff != "" {
				t.Fatalf("iter %d: %v differs on\n%s\n%s", i, s, algebra.Format(plan), diff)
			}
		}
		// Optimizer preserves semantics under every strategy.
		cat := movieDB(t)
		opt := optimizer.New(cat).Optimize(plan)
		for _, s := range Strategies() {
			e3 := New(movieDB(t))
			got, err := e3.Run(opt, s)
			if err != nil {
				t.Fatalf("iter %d: optimized %v failed on\n%s\n%v", i, s, algebra.Format(opt), err)
			}
			if diff := ref.Diff(got, 1e-9); diff != "" {
				t.Fatalf("iter %d: optimized %v differs\noriginal:\n%s\noptimized:\n%s\n%s",
					i, s, algebra.Format(plan), algebra.Format(opt), diff)
			}
		}
	}
}
