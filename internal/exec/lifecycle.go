// Query lifecycle: cooperative cancellation and per-query resource guards.
//
// Every query execution can be bound to a context.Context and a Limits
// budget. The executor polls both cooperatively in its hot loops —
// amortized (every guardInterval streamed rows / every guardStep
// materialized rows / every morsel on the parallel paths) so the fast path
// pays a single predictable branch. When the context is canceled, its
// deadline passes, or a budget is exceeded, the query fails fast with a
// typed *GuardError wrapping one of the sentinel errors below plus the
// execution Stats at failure; parallel workers observe the trip on their
// next morsel claim and drain cleanly (runMorsels always waits for its
// pool, so no goroutine outlives the query and no partial rows are
// observable by the caller).
//
// An executor with no context and no limits (the zero configuration, used
// by Run and by all pre-existing call sites) skips every check: results,
// order and Stats are byte-identical to the unguarded executor.
package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"prefdb/internal/debug"
)

// Sentinel errors for query-lifecycle failures; match them with errors.Is.
// The concrete error returned is always a *GuardError, which also unwraps
// to the underlying context error (context.Canceled /
// context.DeadlineExceeded) when a context caused the failure.
var (
	// ErrCanceled reports that the query's context was canceled.
	ErrCanceled = errors.New("exec: query canceled")
	// ErrDeadlineExceeded reports that the query's deadline passed.
	ErrDeadlineExceeded = errors.New("exec: query deadline exceeded")
	// ErrResourceExhausted reports that a per-query resource budget
	// (rows, cells or estimated memory) was exceeded.
	ErrResourceExhausted = errors.New("exec: query resource budget exhausted")
)

// Limits bounds a single query execution. The zero value imposes no
// bounds. Counters accumulate across the whole query (all strategies and
// all materialization points), not per operator.
type Limits struct {
	// MaxRows caps the tuples materialized by the query (intermediate
	// relations included); 0 means unlimited.
	MaxRows int
	// MaxCells caps the attribute values materialized (rows × width);
	// 0 means unlimited.
	MaxCells int
	// MemoryBudget caps the estimated bytes of materialized state,
	// computed as cells × BytesPerCell; 0 means unlimited.
	MemoryBudget int64
}

// active reports whether any bound is set.
func (l Limits) active() bool {
	return l.MaxRows > 0 || l.MaxCells > 0 || l.MemoryBudget > 0
}

// BytesPerCell is the per-value cost estimate used by the memory guard:
// a types.Value header plus an amortized share of tuple-slice and string
// payload overhead.
const BytesPerCell = 24

// LimitKind names the guard that tripped a query.
type LimitKind string

// Guard identifiers carried by GuardError.Limit.
const (
	LimitCanceled LimitKind = "canceled"
	LimitDeadline LimitKind = "deadline"
	LimitRows     LimitKind = "max-rows"
	LimitCells    LimitKind = "max-cells"
	LimitMemory   LimitKind = "memory-budget"
)

// GuardError is the structured failure of a guarded query: which limit
// tripped, the budget and the observed value (for resource limits), and
// the execution Stats at the moment the failure surfaced. It unwraps to
// the matching sentinel (ErrCanceled, ErrDeadlineExceeded,
// ErrResourceExhausted) and, for context failures, to the context error.
type GuardError struct {
	// Limit identifies the tripped guard.
	Limit LimitKind
	// Budget and Observed describe resource trips (0 for cancellation).
	Budget, Observed int64
	// Stats holds the execution counters at failure (partial work).
	Stats Stats

	sentinel error
	cause    error
}

// Error implements the error interface.
func (g *GuardError) Error() string {
	switch g.Limit {
	case LimitCanceled, LimitDeadline:
		return fmt.Sprintf("%v (%s)", g.sentinel, g.Stats)
	default:
		return fmt.Sprintf("%v: %s %d exceeds budget %d (%s)",
			g.sentinel, g.Limit, g.Observed, g.Budget, g.Stats)
	}
}

// Unwrap exposes the sentinel and (when present) the causing context
// error, so errors.Is(err, ErrCanceled) and errors.Is(err,
// context.Canceled) both hold.
func (g *GuardError) Unwrap() []error {
	if g.cause != nil {
		return []error{g.sentinel, g.cause}
	}
	return []error{g.sentinel}
}

// NewGuardError reconstructs a guard failure from its serialized parts.
// The network client uses it to rebuild server-side trips from error
// frames, so errors.Is(err, ErrCanceled) / errors.As(&GuardError{})
// contracts hold across the wire exactly as they do embedded.
func NewGuardError(kind LimitKind, budget, observed int64, stats Stats) *GuardError {
	sentinel := ErrResourceExhausted
	switch kind {
	case LimitCanceled:
		sentinel = ErrCanceled
	case LimitDeadline:
		sentinel = ErrDeadlineExceeded
	}
	return &GuardError{Limit: kind, Budget: budget, Observed: observed, Stats: stats, sentinel: sentinel}
}

// WrapContextErr converts a context error observed outside the executor
// (planner, optimizer) into the same *GuardError shape the executor
// produces, so callers handle one error type. Non-context errors pass
// through unchanged; nil stays nil.
func WrapContextErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return &GuardError{Limit: LimitDeadline, sentinel: ErrDeadlineExceeded, cause: err}
	case errors.Is(err, context.Canceled):
		return &GuardError{Limit: LimitCanceled, sentinel: ErrCanceled, cause: err}
	default:
		return err
	}
}

// Amortization constants: streaming iterators poll the guard every
// guardInterval rows; materialization loops flush their row/cell counts
// every guardStep rows. Both keep the per-row fast path branch-cheap
// while bounding the reaction latency to well under the 100ms target for
// any realistic row-processing rate.
const (
	guardInterval = 1024
	guardStep     = 256
)

// guard is the shared lifecycle state of one query execution. A nil
// *guard disables every check (every method is nil-safe), which is the
// state of an executor that was never armed with a context or limits.
type guard struct {
	ctx  context.Context
	done <-chan struct{} // ctx.Done(), nil when the ctx can never cancel

	limits Limits

	rows, cells atomic.Int64 // prefdb:atomic
	tripped     atomic.Bool  // prefdb:atomic

	mu  sync.Mutex
	err *GuardError // prefdb:guarded-by mu
}

// arm installs the query's context and limits on the executor, replacing
// any previous guard state. Engine layers call it (directly or through
// RunContext) once per query; executors that never arm run unguarded.
func (e *Executor) arm(ctx context.Context, limits Limits) {
	if ctx == nil {
		ctx = context.Background()
	}
	g := &guard{ctx: ctx, done: ctx.Done(), limits: limits}
	if g.done == nil && !limits.active() {
		e.gd = nil // nothing can trip: keep the zero-cost path
		return
	}
	e.gd = g
}

// Begin arms the executor for a guarded run driven by external code (the
// plug-in runner path): subsequent Materialize/Evaluate calls observe ctx
// and the executor's Limits. Pair it with GuardErr.
func (e *Executor) Begin(ctx context.Context) { e.arm(ctx, e.Limits) }

// GuardErr returns the guard failure of the current run (nil if no guard
// tripped), with the executor's Stats at surfacing time filled in.
func (e *Executor) GuardErr() error {
	if ge := e.gd.failure(); ge != nil {
		ge.Stats = e.stats
		return ge
	}
	return nil
}

// stopped reports whether the query already tripped; workers use it as
// their cheap per-morsel abort check.
func (g *guard) stopped() bool { return g != nil && g.tripped.Load() }

// failure returns a copy of the trip error, or nil.
func (g *guard) failure() *GuardError {
	if g == nil || !g.tripped.Load() {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	cp := *g.err
	return &cp
}

// trip records the first failure; later trips keep the original error.
// It returns the winning error.
func (g *guard) trip(ge *GuardError) *GuardError {
	g.mu.Lock()
	if g.err == nil {
		g.err = ge
		g.tripped.Store(true)
	}
	ge = g.err
	g.mu.Unlock()
	return ge
}

// poll checks cancellation and deadline (not budgets); it returns the
// trip error when the query must stop. Called amortized from hot loops.
func (g *guard) poll() error {
	if g == nil {
		return nil
	}
	if g.tripped.Load() {
		return g.failure()
	}
	if g.done == nil {
		return nil
	}
	select {
	case <-g.done:
		err := g.ctx.Err()
		kind, sentinel := LimitCanceled, ErrCanceled
		if errors.Is(err, context.DeadlineExceeded) {
			kind, sentinel = LimitDeadline, ErrDeadlineExceeded
		}
		return g.trip(&GuardError{Limit: kind, sentinel: sentinel, cause: err})
	default:
		return nil
	}
}

// add charges rows materialized tuples and cells materialized values
// against the budgets, then polls cancellation. It returns the trip error
// when the query must stop.
func (g *guard) add(rows, cells int) error {
	if g == nil {
		return nil
	}
	debug.Assertf(rows >= 0 && cells >= 0,
		"guard charged a negative amount (%d rows, %d cells); a tick counter underflowed", rows, cells)
	r := g.rows.Add(int64(rows))
	c := g.cells.Add(int64(cells))
	l := g.limits
	switch {
	case l.MaxRows > 0 && r > int64(l.MaxRows):
		return g.trip(&GuardError{Limit: LimitRows, Budget: int64(l.MaxRows), Observed: r,
			sentinel: ErrResourceExhausted})
	case l.MaxCells > 0 && c > int64(l.MaxCells):
		return g.trip(&GuardError{Limit: LimitCells, Budget: int64(l.MaxCells), Observed: c,
			sentinel: ErrResourceExhausted})
	case l.MemoryBudget > 0 && c*BytesPerCell > l.MemoryBudget:
		return g.trip(&GuardError{Limit: LimitMemory, Budget: l.MemoryBudget, Observed: c * BytesPerCell,
			sentinel: ErrResourceExhausted})
	}
	return g.poll()
}

// pollTick is the amortized cancellation check embedded in streaming
// iterators: a local countdown so the common case is one integer
// decrement, polling the shared guard every guardInterval rows.
type pollTick struct {
	g *guard
	n int
}

// stop reports whether the pipeline must abort.
func (t *pollTick) stop() bool {
	if t.g == nil {
		return false
	}
	if t.n++; t.n < guardInterval {
		return false
	}
	t.n = 0
	return t.g.poll() != nil
}

// stopN is the batch-granular tick: it advances the countdown by n rows at
// once so vectorized kernels poll with the same amortized frequency as the
// row-at-a-time iterators while paying a single branch per batch.
func (t *pollTick) stopN(n int) bool {
	if t.g == nil {
		return false
	}
	if t.n += n; t.n < guardInterval {
		return false
	}
	t.n = 0
	return t.g.poll() != nil
}

// matTick is the amortized materialization meter used by loops that build
// relations: it charges the guard every guardStep rows.
type matTick struct {
	g       *guard
	width   int // cells per row charged
	pending int
}

// row records one materialized row; it returns the trip error when the
// query must stop.
func (t *matTick) row() error {
	if t.g == nil {
		return nil
	}
	if t.pending++; t.pending < guardStep {
		return nil
	}
	n := t.pending
	t.pending = 0
	return t.g.add(n, n*t.width)
}

// rows records n materialized rows at once (batch materialization); it
// returns the trip error when the query must stop.
func (t *matTick) rows(n int) error {
	if t.g == nil || n == 0 {
		return nil
	}
	if t.pending += n; t.pending < guardStep {
		return nil
	}
	m := t.pending
	t.pending = 0
	return t.g.add(m, m*t.width)
}

// flush charges any remainder below the amortization step.
func (t *matTick) flush() error {
	if t.g == nil || t.pending == 0 {
		return nil
	}
	n := t.pending
	t.pending = 0
	return t.g.add(n, n*t.width)
}
