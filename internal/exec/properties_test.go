package exec

import (
	"testing"

	"prefdb/internal/algebra"
	"prefdb/internal/expr"
	"prefdb/internal/pref"
	"prefdb/internal/prel"
	"prefdb/internal/schema"
	"prefdb/internal/types"
)

// Semantic tests for the algebraic properties of the prefer operator
// (§IV-C). Each property is verified by executing both plan forms and
// comparing the resulting p-relations as multisets.

const eps = 1e-9

func mustEqualPlans(t *testing.T, e *Executor, a, b algebra.Node, label string) {
	t.Helper()
	ra, err := e.Run(a, Native)
	if err != nil {
		t.Fatalf("%s: left plan: %v", label, err)
	}
	rb, err := e.Run(b, Native)
	if err != nil {
		t.Fatalf("%s: right plan: %v", label, err)
	}
	if diff := ra.Diff(rb, eps); diff != "" {
		t.Errorf("%s: plans differ: %s\nleft:\n%s\nright:\n%s", label, diff, ra, rb)
	}
}

func paMovies() pref.Preference {
	return pref.New("pa", "movies",
		expr.Cmp("year", expr.OpGe, types.Int(2000)),
		pref.Recency("year", 2011), 0.9)
}

func pbMovies() pref.Preference {
	return pref.New("pb", "movies",
		expr.Cmp("duration", expr.OpLe, types.Int(120)),
		pref.Around("duration", 120), 0.5)
}

// Property 4.1: σ_φ λ_p(R) = λ_p σ_φ(R) for score-free φ.
func TestProperty41SelectPreferCommute(t *testing.T) {
	e := New(movieDB(t))
	cond := expr.Cmp("duration", expr.OpLt, types.Int(130))
	p := paMovies()
	left := &algebra.Select{Cond: cond, Input: &algebra.Prefer{P: p, Input: &algebra.Scan{Table: "movies"}}}
	right := &algebra.Prefer{P: p, Input: &algebra.Select{Cond: cond, Input: &algebra.Scan{Table: "movies"}}}
	mustEqualPlans(t, e, left, right, "Prop 4.1")
}

// Property 4.2: σ_φ λ_p(R) = σ_φ λ_{p'}(R) with p' = (σ_{φ∧φ_p}, S, C).
func TestProperty42ConditionFolding(t *testing.T) {
	e := New(movieDB(t))
	cond := expr.Cmp("duration", expr.OpLt, types.Int(130))
	p := paMovies()
	folded := p
	folded.Cond = expr.Bin{Op: expr.OpAnd, L: cond, R: p.Cond}
	left := &algebra.Select{Cond: cond, Input: &algebra.Prefer{P: p, Input: &algebra.Scan{Table: "movies"}}}
	right := &algebra.Select{Cond: cond, Input: &algebra.Prefer{P: folded, Input: &algebra.Scan{Table: "movies"}}}
	mustEqualPlans(t, e, left, right, "Prop 4.2")
}

// Property 4.3: prefer is commutative: λ_{p1}λ_{p2}(R) = λ_{p2}λ_{p1}(R).
func TestProperty43PreferCommutes(t *testing.T) {
	e := New(movieDB(t))
	p1, p2 := paMovies(), pbMovies()
	left := &algebra.Prefer{P: p1, Input: &algebra.Prefer{P: p2, Input: &algebra.Scan{Table: "movies"}}}
	right := &algebra.Prefer{P: p2, Input: &algebra.Prefer{P: p1, Input: &algebra.Scan{Table: "movies"}}}
	mustEqualPlans(t, e, left, right, "Prop 4.3")
	// Also under F_max and F_mult.
	for _, agg := range []pref.Aggregate{pref.FMax{}, pref.FMult{}} {
		e2 := New(movieDB(t))
		e2.Agg = agg
		mustEqualPlans(t, e2, left, right, "Prop 4.3 ("+agg.Name()+")")
	}
}

// Property 4.4: λ_p(R_i ⋈ R_j) = λ_p(R_i) ⋈ R_j when p uses only R_i's
// attributes.
func TestProperty44PreferPushesThroughJoin(t *testing.T) {
	e := New(movieDB(t))
	p := paMovies()
	joinCond := expr.Bin{Op: expr.OpEq, L: expr.ColRef("movies.d_id"), R: expr.ColRef("directors.d_id")}
	join := func(l, r algebra.Node) algebra.Node { return &algebra.Join{Cond: joinCond, Left: l, Right: r} }
	left := &algebra.Prefer{P: p, Input: join(&algebra.Scan{Table: "movies"}, &algebra.Scan{Table: "directors"})}
	right := join(&algebra.Prefer{P: p, Input: &algebra.Scan{Table: "movies"}}, &algebra.Scan{Table: "directors"})
	mustEqualPlans(t, e, left, right, "Prop 4.4 (join)")
}

// Property 4.4 over set operations, with both branches over the same base
// relation so the preference applies to either side identically.
func TestProperty44PreferPushesThroughSetOps(t *testing.T) {
	e := New(movieDB(t))
	p := paMovies()
	recent := func() algebra.Node {
		return &algebra.Select{Cond: expr.Cmp("year", expr.OpGe, types.Int(2005)), Input: &algebra.Scan{Table: "movies"}}
	}
	shortM := func() algebra.Node {
		return &algebra.Select{Cond: expr.Cmp("duration", expr.OpLe, types.Int(120)), Input: &algebra.Scan{Table: "movies"}}
	}
	// For intersection and difference, pushing the prefer to the left branch
	// preserves results: right-branch tuples carry ⊥ (identity).
	for _, op := range []algebra.SetOp{algebra.SetIntersect, algebra.SetDiff} {
		left := &algebra.Prefer{P: p, Input: &algebra.Set{Op: op, Left: recent(), Right: shortM()}}
		right := &algebra.Set{Op: op, Left: &algebra.Prefer{P: p, Input: recent()}, Right: shortM()}
		mustEqualPlans(t, e, left, right, "Prop 4.4 ("+op.String()+")")
	}
}

// The optimizer's heuristic 5 reorders prefers by selectivity; correctness
// relies on commutativity over longer chains too.
func TestPreferChainPermutationInvariance(t *testing.T) {
	e := New(movieDB(t))
	ps := []pref.Preference{
		paMovies(),
		pbMovies(),
		pref.Constant("pc", "movies", expr.Eq("d_id", types.Int(2)), 0.7, 0.8),
	}
	build := func(order []int) algebra.Node {
		var n algebra.Node = &algebra.Scan{Table: "movies"}
		for _, i := range order {
			n = &algebra.Prefer{P: ps[i], Input: n}
		}
		return n
	}
	ref, err := e.Run(build([]int{0, 1, 2}), Native)
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range [][]int{{0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}} {
		got, err := e.Run(build(order), Native)
		if err != nil {
			t.Fatal(err)
		}
		if diff := ref.Diff(got, eps); diff != "" {
			t.Errorf("order %v differs: %s", order, diff)
		}
	}
}

// --- cross-strategy equivalence ---

// q1Plan builds a Q1-style plan (Example 9): recent movies joined with
// genres and directors, three preferences, top-k by score.
func q1Plan() algebra.Node {
	p1 := pref.Constant("p1", "genres", expr.Eq("genre", types.Str("Comedy")), 0.8, 0.9)
	p2 := pref.Constant("p2", "directors", expr.Eq("director", types.Str("C. Eastwood")), 0.9, 0.8)
	core := &algebra.Join{
		Cond: expr.Bin{Op: expr.OpEq, L: expr.ColRef("movies.d_id"), R: expr.ColRef("directors.d_id")},
		Left: &algebra.Join{
			Cond: expr.Bin{Op: expr.OpEq, L: expr.ColRef("movies.m_id"), R: expr.ColRef("genres.m_id")},
			Left: &algebra.Select{
				Cond:  expr.Cmp("year", expr.OpGe, types.Int(2004)),
				Input: &algebra.Scan{Table: "movies"},
			},
			Right: &algebra.Prefer{P: p1, Input: &algebra.Scan{Table: "genres"}},
		},
		Right: &algebra.Prefer{P: p2, Input: &algebra.Scan{Table: "directors"}},
	}
	return &algebra.TopK{K: 4, By: algebra.ByScore, Input: core}
}

// q2Plan adds a confidence threshold and a multi-relational preference.
func q2Plan() algebra.Node {
	p1 := pref.Constant("p1", "genres", expr.Eq("genre", types.Str("Drama")), 1, 0.8)
	p6 := pref.Preference{
		Name: "p6", On: []string{"movies", "genres"},
		Cond:  expr.Eq("genre", types.Str("Comedy")),
		Score: pref.Recency("year", 2011), Conf: 0.8,
	}
	core := &algebra.Prefer{P: p6, Input: &algebra.Join{
		Cond:  expr.Bin{Op: expr.OpEq, L: expr.ColRef("movies.m_id"), R: expr.ColRef("genres.m_id")},
		Left:  &algebra.Scan{Table: "movies"},
		Right: &algebra.Prefer{P: p1, Input: &algebra.Scan{Table: "genres"}},
	}}
	return &algebra.Threshold{By: algebra.ByConf, Op: expr.OpGt, Value: 0, Input: core}
}

// q3Plan exercises union with prefers above the set operation plus rank.
func q3Plan() algebra.Node {
	pa := paMovies()
	recent := &algebra.Select{Cond: expr.Cmp("year", expr.OpGe, types.Int(2005)), Input: &algebra.Scan{Table: "movies"}}
	shortM := &algebra.Select{Cond: expr.Cmp("duration", expr.OpLe, types.Int(126)), Input: &algebra.Scan{Table: "movies"}}
	core := &algebra.Prefer{P: pa, Input: &algebra.Set{Op: algebra.SetUnion, Left: recent, Right: shortM}}
	return &algebra.Rank{By: algebra.ByScore, Input: core}
}

func TestStrategiesAgree(t *testing.T) {
	plans := map[string]algebra.Node{
		"q1-topk-joins": q1Plan(),
		"q2-threshold":  q2Plan(),
		"q3-union-rank": q3Plan(),
		"plain-scan":    &algebra.Scan{Table: "movies"},
		"prefer-only":   &algebra.Prefer{P: paMovies(), Input: &algebra.Scan{Table: "movies"}},
		"skyline-top":   &algebra.Skyline{Input: &algebra.Prefer{P: paMovies(), Input: &algebra.Prefer{P: pbMovies(), Input: &algebra.Scan{Table: "movies"}}}},
	}
	for name, plan := range plans {
		t.Run(name, func(t *testing.T) {
			e := New(movieDB(t))
			ref, err := e.Run(plan, Native)
			if err != nil {
				t.Fatalf("native: %v", err)
			}
			for _, s := range []Strategy{BU, GBU, FtP} {
				e2 := New(movieDB(t))
				got, err := e2.Run(plan, s)
				if err != nil {
					t.Fatalf("%v: %v", s, err)
				}
				if diff := ref.Diff(got, eps); diff != "" {
					t.Errorf("%v differs from native: %s", s, diff)
				}
			}
		})
	}
}

func TestStrategyCostSignatures(t *testing.T) {
	plan := q1Plan()
	stats := map[Strategy]Stats{}
	for _, s := range Strategies() {
		e := New(movieDB(t))
		if _, err := e.Run(plan, s); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		stats[s] = e.Stats()
	}
	// BU delegates one native call per non-prefer operator; GBU groups them.
	if stats[BU].NativeCalls <= stats[GBU].NativeCalls {
		t.Errorf("BU native calls (%d) should exceed GBU (%d)", stats[BU].NativeCalls, stats[GBU].NativeCalls)
	}
	// Native materializes the least; BU the most.
	if stats[Native].TuplesMaterialized > stats[BU].TuplesMaterialized {
		t.Errorf("native materialized %d > BU %d", stats[Native].TuplesMaterialized, stats[BU].TuplesMaterialized)
	}
	// FtP issues exactly one native query for Q_NP.
	if stats[FtP].NativeCalls != 1 {
		t.Errorf("FtP native calls = %d, want 1", stats[FtP].NativeCalls)
	}
}

func TestRunUnknownStrategy(t *testing.T) {
	e := New(movieDB(t))
	if _, err := e.Run(&algebra.Scan{Table: "movies"}, Strategy(99)); err == nil {
		t.Error("unknown strategy should error")
	}
}

func TestParseStrategy(t *testing.T) {
	for _, s := range Strategies() {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseStrategy("warp"); err == nil {
		t.Error("unknown name should error")
	}
	if s, err := ParseStrategy("Filter-then-Prefer"); err != nil || s != FtP {
		t.Errorf("long name = %v, %v", s, err)
	}
	if Strategy(99).String() == "" {
		t.Error("unknown strategy String should not be empty")
	}
}

func TestValuesRoundTrip(t *testing.T) {
	// Values nodes run through every strategy unchanged.
	s := prel.New(schema.New(schema.Column{Name: "id", Kind: types.KindInt}))
	s.Append(prel.Row{Tuple: []types.Value{types.Int(1)}, SC: types.NewSC(0.5, 1)})
	plan := &algebra.Values{Rel: s, Label: "fixed"}
	for _, strat := range Strategies() {
		e := New(movieDB(t))
		got, err := e.Run(plan, strat)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if got.Len() != 1 || !got.Rows[0].SC.ApproxEqual(types.NewSC(0.5, 1), eps) {
			t.Errorf("%v: values round trip = %v", strat, got.Rows)
		}
	}
}
