// Columnar scan path: segBatchSrc streams a table's columnar segment
// store (internal/colstore) plus the heap tail into the vectorized
// pipeline, consulting per-segment zone maps to skip whole segments
// against the pushed-down filter conjuncts before any kernel runs.
//
// Two columnar forms exist. ColstoreRows packs live decoded row views
// into ordinary row-form batches (the PR 6 behavior, kept as the
// benchmark baseline). ColstoreOn is the direct-on-column path: each
// batch is one window of one segment carrying borrowed column vectors
// (prel.Batch.Cols) next to the decoded row views, so filter and score
// kernels run on dense typed vectors and tuples are touched only by
// operators that genuinely need rows (the late-materialization
// boundary; see Stats.RowsMaterialized).
package exec

import (
	"fmt"
	"strings"

	"prefdb/internal/colstore"
	"prefdb/internal/prel"
	"prefdb/internal/storage"
	"prefdb/internal/types"
)

// ColstoreMode selects whether batch scans read the columnar segment
// store (with zone-map pruning) or the row heap, and in which form.
type ColstoreMode uint8

const (
	// ColstoreOff (the zero value) keeps batch scans on the row heap.
	ColstoreOff ColstoreMode = iota
	// ColstoreOn serves batch scans from the table's columnar segments
	// (built lazily, invalidated by DML version counters) plus the heap
	// tail, handing kernels direct column vectors with late
	// materialization. Results, order and Stats — modulo the diagnostic
	// Batches / ColBatches / RowsMaterialized / SegmentsScanned /
	// SegmentsSkipped counters — are identical to the heap path.
	ColstoreOn
	// ColstoreRows serves batch scans from columnar segments but
	// materializes every surviving row view up front (no direct column
	// kernels) — the pre-direct-path behavior, kept as a baseline for
	// the E16 sweep and as a fallback switch.
	ColstoreRows
)

// String implements fmt.Stringer.
func (m ColstoreMode) String() string {
	switch m {
	case ColstoreOn:
		return "on"
	case ColstoreRows:
		return "rows"
	default:
		return "off"
	}
}

// ParseColstoreMode resolves a colstore mode by name.
func ParseColstoreMode(name string) (ColstoreMode, error) {
	switch strings.ToLower(name) {
	case "on":
		return ColstoreOn, nil
	case "rows":
		return ColstoreRows, nil
	case "off":
		return ColstoreOff, nil
	default:
		return 0, fmt.Errorf("exec: unknown colstore mode %q (on, rows, off)", name)
	}
}

// colstoreOK reports whether batch scans may read columnar segments.
func (e *Executor) colstoreOK() bool { return e.Colstore != ColstoreOff }

// colstoreDirect reports whether columnar scans hand out direct column
// vectors (ColstoreOn) rather than pre-packed row views (ColstoreRows).
func (e *Executor) colstoreDirect() bool { return e.Colstore == ColstoreOn }

// segBatchSrc streams a columnar segment store and then the heap tail
// (pages the compaction has not sealed) into a reused batch. Tuples alias
// the store's shared arena-backed row views and the heap's pages — both
// immutable during execution — so the source copies nothing.
//
// Zone-map pruning: a segment whose zones prove the pushed-down conjuncts
// reject every live row is dropped unread. Its live rows are still
// credited to RowsScanned — the counter states which rows the scan
// accounted for, and the pruned rows were (provably) evaluated against the
// filter by metadata alone — so Stats stay byte-identical to the heap
// path; the benefit shows up in wall-clock time and the SegmentsSkipped
// diagnostic counter.
//
// In direct mode each columnar batch covers one window of one segment
// (windows never span segments, so every vector is a single borrowed
// slice); the heap tail still streams in row form. In rows mode batches
// pack live row views across segment and tail boundaries exactly as
// before.
type segBatchSrc struct {
	store  *colstore.Store
	heap   *storage.Heap
	preds  []colstore.Pred
	stats  *Stats
	tick   pollTick
	size   int
	direct bool

	buf     *prel.Batch
	vecs    []types.ColVec
	scratch [][]int64 // per-column unpack scratch for bit-packed ints
	seg     int       // current segment ordinal
	slot    int       // next slot within the current segment
	page    int       // heap-tail page cursor (starts at store.SealedPages)
	tail    int       // next slot within the current tail page
	done    bool
}

func newSegBatchSrc(store *colstore.Store, heap *storage.Heap, preds []colstore.Pred, stats *Stats, tick pollTick, size int, direct bool) *segBatchSrc {
	return &segBatchSrc{store: store, heap: heap, preds: preds, stats: stats, tick: tick,
		size: size, direct: direct, page: store.SealedPages}
}

func (s *segBatchSrc) nextBatch() (*prel.Batch, bool) {
	if s.done {
		return nil, false
	}
	if s.buf == nil {
		s.buf = prel.NewBatch(s.size)
	}
	b := s.buf
	if s.direct {
		if b, ok := s.nextDirect(b); ok {
			return b, true
		}
	}
	b.Reset()
	for b.Cap() < s.size && s.seg < len(s.store.Segments) {
		seg := s.store.Segments[s.seg]
		if s.slot == 0 {
			// Segment entry: elide empty segments silently (the heap path
			// skips dead pages the same way) and prune on zone maps.
			if seg.Live == 0 {
				s.seg++
				continue
			}
			if len(s.preds) > 0 && seg.Skip(s.preds) {
				s.stats.SegmentsSkipped++
				s.stats.RowsScanned += seg.Live
				s.seg++
				continue
			}
			s.stats.SegmentsScanned++
		}
		for ; s.slot < seg.Rows && b.Cap() < s.size; s.slot++ {
			if seg.Dead(s.slot) {
				continue
			}
			b.PushTuple(seg.Tuple(s.slot))
		}
		if s.slot >= seg.Rows {
			s.seg++
			s.slot = 0
		}
	}
	// Heap tail: pages the compaction left on the row side.
	for b.Cap() < s.size && s.page < s.heap.Blocks() {
		rows, dead, live := s.heap.Block(s.page)
		if live == 0 {
			s.page++
			s.tail = 0
			continue
		}
		for ; s.tail < len(rows) && b.Cap() < s.size; s.tail++ {
			if dead[s.tail] {
				continue
			}
			b.PushTuple(rows[s.tail])
		}
		if s.tail >= len(rows) {
			s.page++
			s.tail = 0
		}
	}
	if b.Cap() == 0 {
		s.done = true
		return nil, false
	}
	s.stats.RowsScanned += b.Cap()
	if s.tick.stopN(b.Cap()) {
		s.done = true // guard tripped: stop producing, like heapBatchSrc
	}
	return b, true
}

// nextDirect emits the next columnar segment window, or reports false
// once the segments are exhausted (the caller then drains the heap tail
// in row form). RowsScanned counts the window's live rows — the same
// rows the packing path would have pushed — so totals match the other
// scan modes.
func (s *segBatchSrc) nextDirect(b *prel.Batch) (*prel.Batch, bool) {
	for s.seg < len(s.store.Segments) {
		seg := s.store.Segments[s.seg]
		if s.slot == 0 {
			if seg.Live == 0 {
				s.seg++
				continue
			}
			if len(s.preds) > 0 && seg.Skip(s.preds) {
				s.stats.SegmentsSkipped++
				s.stats.RowsScanned += seg.Live
				s.seg++
				continue
			}
			s.stats.SegmentsScanned++
		}
		lo := s.slot
		hi := min(lo+s.size, seg.Rows)
		s.slot = hi
		if s.slot >= seg.Rows {
			s.seg++
			s.slot = 0
		}
		if cap(s.vecs) < len(seg.Cols) {
			s.vecs = make([]types.ColVec, len(seg.Cols))
		}
		vecs := s.vecs[:len(seg.Cols)]
		// Reset first: it runs (and clears) the prefdbdebug borrowed-vector
		// check against the previous window before ColVecs legitimately
		// rewrites the shared vecs and unpack scratch for this one.
		b.Reset()
		s.scratch = seg.ColVecs(lo, hi, vecs, s.scratch)
		b.SetColumnar(vecs, seg.Views(lo, hi))
		for i := lo; i < hi; i++ {
			if !seg.Dead(i) {
				b.Sel = append(b.Sel, int32(i-lo))
			}
		}
		if b.Live() == 0 {
			continue
		}
		b.Check()
		s.stats.RowsScanned += b.Live()
		s.stats.ColBatches++
		if s.tick.stopN(b.Live()) {
			s.done = true
		}
		return b, true
	}
	return nil, false
}
