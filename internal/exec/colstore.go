// Columnar scan path: segBatchSrc streams a table's columnar segment
// store (internal/colstore) plus the heap tail into the vectorized
// pipeline, consulting per-segment zone maps to skip whole segments
// against the pushed-down filter conjuncts before any kernel runs.
package exec

import (
	"fmt"
	"strings"

	"prefdb/internal/colstore"
	"prefdb/internal/prel"
	"prefdb/internal/storage"
)

// ColstoreMode selects whether batch scans read the columnar segment
// store (with zone-map pruning) or the row heap.
type ColstoreMode uint8

const (
	// ColstoreOff (the zero value) keeps batch scans on the row heap.
	ColstoreOff ColstoreMode = iota
	// ColstoreOn serves batch scans from the table's columnar segments
	// (built lazily, invalidated by DML version counters) plus the heap
	// tail. Results, order and Stats — modulo the diagnostic Batches /
	// SegmentsScanned / SegmentsSkipped counters — are identical to the
	// heap path.
	ColstoreOn
)

// String implements fmt.Stringer.
func (m ColstoreMode) String() string {
	if m == ColstoreOn {
		return "on"
	}
	return "off"
}

// ParseColstoreMode resolves a colstore mode by name.
func ParseColstoreMode(name string) (ColstoreMode, error) {
	switch strings.ToLower(name) {
	case "on":
		return ColstoreOn, nil
	case "off":
		return ColstoreOff, nil
	default:
		return 0, fmt.Errorf("exec: unknown colstore mode %q (on, off)", name)
	}
}

// colstoreOK reports whether batch scans may read columnar segments.
func (e *Executor) colstoreOK() bool { return e.Colstore == ColstoreOn }

// segBatchSrc streams a columnar segment store and then the heap tail
// (pages the compaction has not sealed) into a reused batch. Tuples alias
// the store's shared arena-backed row views and the heap's pages — both
// immutable during execution — so the source copies nothing.
//
// Zone-map pruning: a segment whose zones prove the pushed-down conjuncts
// reject every live row is dropped unread. Its live rows are still
// credited to RowsScanned — the counter states which rows the scan
// accounted for, and the pruned rows were (provably) evaluated against the
// filter by metadata alone — so Stats stay byte-identical to the heap
// path; the benefit shows up in wall-clock time and the SegmentsSkipped
// diagnostic counter.
type segBatchSrc struct {
	store *colstore.Store
	heap  *storage.Heap
	preds []colstore.Pred
	stats *Stats
	tick  pollTick
	size  int

	buf  *prel.Batch
	seg  int // current segment ordinal
	slot int // next slot within the current segment
	page int // heap-tail page cursor (starts at store.SealedPages)
	tail int // next slot within the current tail page
	done bool
}

func newSegBatchSrc(store *colstore.Store, heap *storage.Heap, preds []colstore.Pred, stats *Stats, tick pollTick, size int) *segBatchSrc {
	return &segBatchSrc{store: store, heap: heap, preds: preds, stats: stats, tick: tick,
		size: size, page: store.SealedPages}
}

func (s *segBatchSrc) nextBatch() (*prel.Batch, bool) {
	if s.done {
		return nil, false
	}
	if s.buf == nil {
		s.buf = prel.NewBatch(s.size)
	}
	b := s.buf
	b.Reset()
	for b.Cap() < s.size && s.seg < len(s.store.Segments) {
		seg := s.store.Segments[s.seg]
		if s.slot == 0 {
			// Segment entry: elide empty segments silently (the heap path
			// skips dead pages the same way) and prune on zone maps.
			if seg.Live == 0 {
				s.seg++
				continue
			}
			if len(s.preds) > 0 && seg.Skip(s.preds) {
				s.stats.SegmentsSkipped++
				s.stats.RowsScanned += seg.Live
				s.seg++
				continue
			}
			s.stats.SegmentsScanned++
		}
		for ; s.slot < seg.Rows && b.Cap() < s.size; s.slot++ {
			if seg.Dead(s.slot) {
				continue
			}
			b.PushTuple(seg.Tuple(s.slot))
		}
		if s.slot >= seg.Rows {
			s.seg++
			s.slot = 0
		}
	}
	// Heap tail: pages the compaction left on the row side.
	for b.Cap() < s.size && s.page < s.heap.Blocks() {
		rows, dead, live := s.heap.Block(s.page)
		if live == 0 {
			s.page++
			s.tail = 0
			continue
		}
		for ; s.tail < len(rows) && b.Cap() < s.size; s.tail++ {
			if dead[s.tail] {
				continue
			}
			b.PushTuple(rows[s.tail])
		}
		if s.tail >= len(rows) {
			s.page++
			s.tail = 0
		}
	}
	if b.Cap() == 0 {
		s.done = true
		return nil, false
	}
	s.stats.RowsScanned += b.Cap()
	if s.tick.stopN(b.Cap()) {
		s.done = true // guard tripped: stop producing, like heapBatchSrc
	}
	return b, true
}
