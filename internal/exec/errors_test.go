package exec

import (
	"strings"
	"testing"

	"prefdb/internal/algebra"
	"prefdb/internal/expr"
	"prefdb/internal/pref"
	"prefdb/internal/types"
)

// Every strategy must surface plan errors instead of panicking or
// swallowing them.
func TestStrategiesPropagateErrors(t *testing.T) {
	badPlans := map[string]algebra.Node{
		"unknown table": &algebra.Scan{Table: "ghost"},
		"bad select": &algebra.Select{
			Cond:  expr.Eq("ghost", types.Int(1)),
			Input: &algebra.Scan{Table: "movies"},
		},
		"bad prefer cond": &algebra.Prefer{
			P:     pref.Constant("p", "movies", expr.Eq("ghost", types.Int(1)), 1, 0.5),
			Input: &algebra.Scan{Table: "movies"},
		},
		"bad prefer score": &algebra.Prefer{
			P: pref.Preference{Name: "p", On: []string{"movies"}, Cond: expr.TrueLiteral(),
				Score: expr.Call{Name: "nosuchfn"}, Conf: 0.5},
			Input: &algebra.Scan{Table: "movies"},
		},
		"invalid preference": &algebra.Prefer{
			P:     pref.Preference{Name: "p", On: []string{"movies"}, Cond: expr.TrueLiteral(), Score: expr.TrueLiteral(), Conf: 5},
			Input: &algebra.Scan{Table: "movies"},
		},
		"bad join cond": &algebra.Join{
			Cond:  expr.Bin{Op: expr.OpEq, L: expr.ColRef("movies.ghost"), R: expr.ColRef("directors.d_id")},
			Left:  &algebra.Scan{Table: "movies"},
			Right: &algebra.Scan{Table: "directors"},
		},
		"incompatible union": &algebra.Set{Op: algebra.SetUnion,
			Left: &algebra.Scan{Table: "movies"}, Right: &algebra.Scan{Table: "directors"}},
		"bad projection": &algebra.Project{
			Cols:  []expr.Col{expr.ColRef("ghost")},
			Input: &algebra.Scan{Table: "movies"},
		},
		"nil node":                  nil,
		"bad filter under topk":     &algebra.TopK{K: 3, Input: &algebra.Scan{Table: "ghost"}},
		"bad input under skyline":   &algebra.Skyline{Input: &algebra.Scan{Table: "ghost"}},
		"bad input under rank":      &algebra.Rank{Input: &algebra.Scan{Table: "ghost"}},
		"bad input under threshold": &algebra.Threshold{Op: expr.OpGe, Input: &algebra.Scan{Table: "ghost"}},
	}
	for name, plan := range badPlans {
		for _, s := range Strategies() {
			e := New(movieDB(t))
			if _, err := e.Run(plan, s); err == nil {
				t.Errorf("%s under %v: expected error", name, s)
			}
		}
	}
}

func TestFtPErrorMentionsPreference(t *testing.T) {
	// FtP evaluates preferences on R_NP; a preference condition that cannot
	// compile against the non-preference result should name the preference.
	// (Projection below the prefer drops the attribute the condition needs.)
	plan := &algebra.Prefer{
		P: pref.Constant("needsYear", "movies", expr.Cmp("year", expr.OpGe, types.Int(2000)), 1, 0.5),
		Input: &algebra.Project{
			Cols:  []expr.Col{expr.ColRef("title")},
			Input: &algebra.Scan{Table: "movies"},
		},
	}
	e := New(movieDB(t))
	_, err := e.Run(plan, FtP)
	if err == nil || !strings.Contains(err.Error(), "needsYear") {
		t.Errorf("FtP error = %v, want mention of the preference", err)
	}
}

func TestThresholdOperatorsCoverage(t *testing.T) {
	base := &algebra.Prefer{
		P:     pref.Constant("p", "movies", expr.Cmp("year", expr.OpGe, types.Int(2000)), 0.5, 0.5),
		Input: &algebra.Scan{Table: "movies"},
	}
	// score == 0.5 exactly for the 4 scored movies.
	cases := []struct {
		op   expr.Op
		val  float64
		want int
	}{
		{expr.OpEq, 0.5, 4},
		{expr.OpNe, 0.5, 0},
		{expr.OpLt, 0.6, 4},
		{expr.OpLe, 0.5, 4},
		{expr.OpGt, 0.5, 0},
		{expr.OpGe, 0.6, 0},
	}
	for _, c := range cases {
		e := New(movieDB(t))
		rel, err := e.Run(&algebra.Threshold{By: algebra.ByScore, Op: c.op, Value: c.val, Input: base}, Native)
		if err != nil {
			t.Fatalf("%v: %v", c.op, err)
		}
		if rel.Len() != c.want {
			t.Errorf("score %v %v: %d rows, want %d", c.op, c.val, rel.Len(), c.want)
		}
	}
}

func TestStatsAddAndString(t *testing.T) {
	a := Stats{RowsScanned: 1, TuplesMaterialized: 2, NativeCalls: 3, IndexProbes: 4, PreferEvals: 5, ScoreRelationRows: 6}
	b := a
	a.Add(b)
	if a.RowsScanned != 2 || a.ScoreRelationRows != 12 {
		t.Errorf("Add = %+v", a)
	}
	if s := a.String(); !strings.Contains(s, "scanned=2") || !strings.Contains(s, "nativeCalls=6") {
		t.Errorf("String = %q", s)
	}
}
