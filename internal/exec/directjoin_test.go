package exec

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"prefdb/internal/algebra"
	"prefdb/internal/catalog"
	"prefdb/internal/colstore"
	"prefdb/internal/expr"
	"prefdb/internal/pref"
	"prefdb/internal/prel"
	"prefdb/internal/schema"
	"prefdb/internal/storage"
	"prefdb/internal/types"
)

// directJoinDB extends the colstore fixture with the two shapes the
// direct-join path adds: a small heap-side "names" table whose string keys
// hit the items dictionary (and whose int column pairs up for multi-key
// joins), and a segment-scale "orders" table whose join-key columns are
// run-heavy — constant for hundreds of consecutive rows — so its store
// accepts run-length encoding and the RLE-aware hash/eq kernels engage on
// the probe side.
func directJoinDB(t testing.TB) *catalog.Catalog {
	t.Helper()
	c := colstoreDB(t)

	names := schema.New(
		schema.Column{Name: "n_name", Kind: types.KindString},
		schema.Column{Name: "n_grp", Kind: types.KindInt},
		schema.Column{Name: "rank", Kind: types.KindInt},
	)
	nt, err := c.CreateTable("names", names)
	if err != nil {
		t.Fatal(err)
	}
	// name-0..name-3 exist in items; name-4/name-5 probe dictionary misses.
	for i := 0; i < 6; i++ {
		for g := 0; g < 3; g++ {
			err := nt.Insert([]types.Value{
				types.Str(fmt.Sprintf("name-%d", i)),
				types.Int(int64(g)),
				types.Int(int64(i*10 + g)),
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}

	orders := schema.New(
		schema.Column{Name: "o_id", Kind: types.KindInt},
		schema.Column{Name: "o_grp", Kind: types.KindInt},
		schema.Column{Name: "o_cat", Kind: types.KindString},
		schema.Column{Name: "o_val", Kind: types.KindFloat},
	).WithKey("o_id")
	ot, err := c.CreateTable("orders", orders)
	if err != nil {
		t.Fatal(err)
	}
	rows := colstore.SegmentPages*storage.PageSize + storage.PageSize + 50
	for i := 0; i < rows; i++ {
		err := ot.Insert([]types.Value{
			types.Int(int64(i)),
			types.Int(int64(i / 512 % 8)),
			types.Str(fmt.Sprintf("name-%d", i/1024%4)),
			types.Float(float64(i % 31)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Tombstones inside runs: dead slots must be absorbed by the enclosing
	// run without changing what live readers decode.
	ot.DeleteWhere(func(tuple []types.Value) bool {
		id := tuple[0].AsInt()
		return id%113 == 0 || (id >= 600 && id < 700)
	})
	return c
}

func ordersPref() pref.Preference {
	return pref.Preference{
		Name: "bulk", On: []string{"orders"},
		Cond:  expr.Cmp("o_grp", expr.OpGe, types.Int(2)),
		Score: pref.Recency("orders.o_id", 8000),
		Conf:  0.8,
	}
}

// directJoinPlans covers the probe/build/key shapes of the direct join:
// int and string (dictionary-code) probe keys over the plain columnar
// table, RLE-encoded int and code probe keys over the run-heavy table,
// multi-key confirmation, a columnar build side, and a residual condition
// running above the hash match.
func directJoinPlans() map[string]algebra.Node {
	return map[string]algebra.Node{
		"int-probe": &algebra.TopK{K: 12, By: algebra.ByScore, Input: &algebra.Prefer{
			P: itemsPref(), Input: &algebra.Join{
				Cond: expr.Bin{Op: expr.OpEq, L: expr.ColRef("cats.c_id"), R: expr.ColRef("items.grp")},
				Left: &algebra.Scan{Table: "cats"},
				Right: &algebra.Select{
					Cond:  expr.Cmp("id", expr.OpLt, types.Int(900)),
					Input: &algebra.Scan{Table: "items"},
				},
			},
		}},
		"string-probe": &algebra.TopK{K: 9, By: algebra.ByScore, Input: &algebra.Prefer{
			P: itemsPref(), Input: &algebra.Join{
				Cond: expr.Bin{Op: expr.OpEq, L: expr.ColRef("names.n_name"), R: expr.ColRef("items.name")},
				Left: &algebra.Scan{Table: "names"},
				Right: &algebra.Select{
					Cond:  expr.Cmp("id", expr.OpLt, types.Int(2500)),
					Input: &algebra.Scan{Table: "items"},
				},
			},
		}},
		"rle-int-probe": &algebra.TopK{K: 15, By: algebra.ByScore, Input: &algebra.Prefer{
			P: ordersPref(), Input: &algebra.Join{
				Cond:  expr.Bin{Op: expr.OpEq, L: expr.ColRef("cats.c_id"), R: expr.ColRef("orders.o_grp")},
				Left:  &algebra.Scan{Table: "cats"},
				Right: &algebra.Scan{Table: "orders"},
			},
		}},
		"rle-multi-key": &algebra.TopK{K: 11, By: algebra.ByConf, Input: &algebra.Prefer{
			P: ordersPref(), Input: &algebra.Join{
				Cond: expr.Bin{Op: expr.OpAnd,
					L: expr.Bin{Op: expr.OpEq, L: expr.ColRef("names.n_name"), R: expr.ColRef("orders.o_cat")},
					R: expr.Bin{Op: expr.OpEq, L: expr.ColRef("names.n_grp"), R: expr.ColRef("orders.o_grp")}},
				Left:  &algebra.Scan{Table: "names"},
				Right: &algebra.Scan{Table: "orders"},
			},
		}},
		"colstore-build": &algebra.TopK{K: 10, By: algebra.ByScore, Input: &algebra.Prefer{
			P: itemsPref(), Input: &algebra.Join{
				Cond: expr.Bin{Op: expr.OpEq, L: expr.ColRef("items.grp"), R: expr.ColRef("cats.c_id")},
				Left: &algebra.Select{
					Cond:  expr.Cmp("id", expr.OpLt, types.Int(600)),
					Input: &algebra.Scan{Table: "items"},
				},
				Right: &algebra.Scan{Table: "cats"},
			},
		}},
		"residual": &algebra.Rank{By: algebra.ByScore, Input: &algebra.Prefer{
			P: itemsPref(), Input: &algebra.Join{
				Cond: expr.Bin{Op: expr.OpAnd,
					L: expr.Bin{Op: expr.OpEq, L: expr.ColRef("names.n_name"), R: expr.ColRef("items.name")},
					R: expr.Bin{Op: expr.OpGt, L: expr.ColRef("names.rank"), R: expr.ColRef("items.grp")}},
				Left: &algebra.Scan{Table: "names"},
				Right: &algebra.Select{
					Cond:  expr.Cmp("id", expr.OpLt, types.Int(400)),
					Input: &algebra.Scan{Table: "items"},
				},
			},
		}},
	}
}

// zeroDiagnostics clears the counters the path-equivalence contract
// excludes: batch/segment/materialization shape differs across arms by
// design, everything else must match exactly.
func zeroDiagnostics(s *Stats) {
	s.Batches = 0
	s.SegmentsScanned, s.SegmentsSkipped = 0, 0
	s.ColBatches, s.RowsMaterialized = 0, 0
	s.JoinProbeBatches = 0
}

// TestDirectJoinRowsEquivalence is the acceptance contract of the
// direct-column hash join: across plan shapes × strategies × workers ×
// batch sizes, probing (and building) straight off borrowed column
// vectors — including dictionary-code and run-length-encoded keys — must
// produce byte-identical rows, order and Stats (modulo diagnostic
// counters) to both the heap row path (ColstoreOff) and the row-view
// packing form of the same store (ColstoreRows). Run with -race: the
// parallel arm doubles as the data-race check for vector-hashed
// partitioned builds.
func TestDirectJoinRowsEquivalence(t *testing.T) {
	cat := directJoinDB(t)
	for name, plan := range directJoinPlans() {
		t.Run(name, func(t *testing.T) {
			for _, strategy := range Strategies() {
				for _, workers := range []int{1, 4} {
					for _, size := range []int{3, 1024} {
						label := fmt.Sprintf("%v workers=%d size=%d", strategy, workers, size)

						ref := New(cat)
						ref.Workers = workers
						ref.BatchSize = size
						ref.Colstore = ColstoreOff
						want, err := ref.Run(plan, strategy)
						if err != nil {
							t.Fatalf("%s heap path: %v", label, err)
						}
						refStats := ref.Stats()
						zeroDiagnostics(&refStats)

						for _, mode := range []ColstoreMode{ColstoreRows, ColstoreOn} {
							e := New(cat)
							e.Workers = workers
							e.BatchSize = size
							e.Colstore = mode
							got, err := e.Run(plan, strategy)
							if err != nil {
								t.Fatalf("%s %v path: %v", label, mode, err)
							}
							mustIdentical(t, want, got, fmt.Sprintf("%s %v", label, mode))
							gotStats := e.Stats()
							zeroDiagnostics(&gotStats)
							if refStats != gotStats {
								t.Fatalf("%s %v: stats %+v, want %+v", label, mode, gotStats, refStats)
							}
						}
					}
				}
			}
		})
	}
}

// TestDirectJoinBatchOffEquivalence pins the remaining corner of the
// contract: the vectorized join (with and without columnar inputs) against
// the row-at-a-time executor itself.
func TestDirectJoinBatchOffEquivalence(t *testing.T) {
	cat := directJoinDB(t)
	for name, plan := range directJoinPlans() {
		t.Run(name, func(t *testing.T) {
			for _, strategy := range Strategies() {
				ref := New(cat)
				ref.Batch = BatchOff
				want, err := ref.Run(plan, strategy)
				if err != nil {
					t.Fatalf("%v row path: %v", strategy, err)
				}
				e := New(cat)
				e.Colstore = ColstoreOn
				got, err := e.Run(plan, strategy)
				if err != nil {
					t.Fatalf("%v direct path: %v", strategy, err)
				}
				mustIdentical(t, want, got, fmt.Sprintf("%v batch-off-vs-direct", strategy))
			}
		})
	}
}

// TestDirectJoinLateMaterialization pins the shape claim behind the direct
// join: on a selective join the probe side stays columnar to the hash
// lookup, so only probe rows with at least one build match ever cross the
// materialization boundary. The build side joins on items.id, so of the
// ~9k probe rows scanned only the handful whose id appears in cats
// materialize.
func TestDirectJoinLateMaterialization(t *testing.T) {
	cat := directJoinDB(t)
	plan := &algebra.Join{
		Cond:  expr.Bin{Op: expr.OpEq, L: expr.ColRef("cats.c_id"), R: expr.ColRef("items.id")},
		Left:  &algebra.Scan{Table: "cats"},
		Right: &algebra.Scan{Table: "items"},
	}
	e := New(cat)
	e.Colstore = ColstoreOn
	got, err := e.Run(plan, Native)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() == 0 {
		t.Fatal("selective join matched nothing; the shape test would pass vacuously")
	}
	st := e.Stats()
	if st.JoinProbeBatches == 0 {
		t.Fatalf("join consumed no probe batches: %+v", st)
	}
	if st.RowsMaterialized == 0 {
		t.Fatalf("matches never crossed the materialization boundary: %+v", st)
	}
	if st.RowsMaterialized*10 > st.RowsScanned {
		t.Fatalf("late materialization did not engage at the join boundary: materialized %d of %d scanned",
			st.RowsMaterialized, st.RowsScanned)
	}
}

// TestBackgroundCompactionJoinStable pins direct-join results across the
// compaction lifecycle: a join probing a run-heavy, dictionary-encoded
// table must return byte-identical rows whether its store was just
// installed by the background builder, rebuilt lazily, or invalidated by
// DML in between — the RLE round-trip and the shared-dictionary rebuild
// sit under the same version-guarded install as the rest of the store.
func TestBackgroundCompactionJoinStable(t *testing.T) {
	c := catalog.New()
	c.SetAutoCompact(true)

	ev := schema.New(
		schema.Column{Name: "e_id", Kind: types.KindInt},
		schema.Column{Name: "e_grp", Kind: types.KindInt},
		schema.Column{Name: "e_tag", Kind: types.KindString},
	).WithKey("e_id")
	et, err := c.CreateTable("ev", ev)
	if err != nil {
		t.Fatal(err)
	}
	rows := colstore.SegmentPages*storage.PageSize + storage.PageSize/2
	for i := 0; i < rows; i++ {
		err := et.Insert([]types.Value{
			types.Int(int64(i)),
			types.Int(int64(i / 256 % 5)),
			types.Str(fmt.Sprintf("tag-%d", i/512%3)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	keys := schema.New(
		schema.Column{Name: "k_grp", Kind: types.KindInt},
		schema.Column{Name: "k_tag", Kind: types.KindString},
	)
	kt, err := c.CreateTable("keys", keys)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 5; g += 2 {
		err := kt.Insert([]types.Value{types.Int(int64(g)), types.Str(fmt.Sprintf("tag-%d", g%3))})
		if err != nil {
			t.Fatal(err)
		}
	}

	plan := &algebra.Join{
		Cond: expr.Bin{Op: expr.OpAnd,
			L: expr.Bin{Op: expr.OpEq, L: expr.ColRef("keys.k_grp"), R: expr.ColRef("ev.e_grp")},
			R: expr.Bin{Op: expr.OpEq, L: expr.ColRef("keys.k_tag"), R: expr.ColRef("ev.e_tag")}},
		Left:  &algebra.Scan{Table: "keys"},
		Right: &algebra.Scan{Table: "ev"},
	}
	run := func(mode ColstoreMode, label string) *prel.PRelation {
		e := New(c)
		e.Colstore = mode
		got, err := e.Run(plan, Native)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		return got
	}

	want := run(ColstoreOff, "heap reference")
	if want.Len() == 0 {
		t.Fatal("join matched nothing; the stability test would pass vacuously")
	}
	// Possibly mid-build: the query either races the installer (and falls
	// back to a lazy, version-checked build) or reads the installed image.
	mustIdentical(t, want, run(ColstoreOn, "mid-compaction"), "mid-compaction")
	et.WaitCompaction()
	mustIdentical(t, want, run(ColstoreOn, "post-compaction"), "post-compaction")

	// DML invalidates the installed image; the next direct read rebuilds
	// the dictionary and the run encodings from scratch.
	if n := et.DeleteWhere(func(tu []types.Value) bool { return tu[0].AsInt()%257 == 0 }); n == 0 {
		t.Fatal("delete removed nothing; version guard untested")
	}
	want2 := run(ColstoreOff, "heap reference after DML")
	if want2.Len() == want.Len() {
		t.Fatal("DML did not change the join result; rebuild untested")
	}
	mustIdentical(t, want2, run(ColstoreOn, "post-DML"), "post-DML")
	et.WaitCompaction()
	mustIdentical(t, want2, run(ColstoreOn, "post-DML settled"), "post-DML settled")
}

// The fuzz catalog is segment-scale (unlike movieDB, whose tables are too
// small to build a columnar store, so FuzzBatchRowEquivalence's colstore
// arms run heap-backed there). Built once: executions are read-only.
var (
	djFuzzOnce sync.Once
	djFuzzCat  *catalog.Catalog
)

func directJoinFuzzDB(t testing.TB) *catalog.Catalog {
	djFuzzOnce.Do(func() { djFuzzCat = directJoinDB(t) })
	return djFuzzCat
}

// djGen generates random join plans over the direct-join fixture: every
// key shape the direct path distinguishes (int, dictionary string,
// RLE-int, multi-key with RLE codes), random probe filters, the columnar
// table on either join side, optional residual conjuncts and a random
// preference/filter stack on top.
type djGen struct{ r *rand.Rand }

func (g *djGen) plan() algebra.Node {
	filt := func(n algebra.Node, col string, max int64) algebra.Node {
		if g.r.Intn(2) == 0 {
			return n
		}
		return &algebra.Select{
			Cond:  expr.Cmp(col, expr.OpLt, types.Int(1+g.r.Int63n(max))),
			Input: n,
		}
	}
	eq := func(l, r string) expr.Node {
		return expr.Bin{Op: expr.OpEq, L: expr.ColRef(l), R: expr.ColRef(r)}
	}
	var core algebra.Node
	var p pref.Preference
	switch g.r.Intn(5) {
	case 0: // int key, items probing
		core = &algebra.Join{Cond: eq("cats.c_id", "items.grp"),
			Left: &algebra.Scan{Table: "cats"}, Right: filt(&algebra.Scan{Table: "items"}, "items.id", 9000)}
		p = itemsPref()
	case 1: // dictionary-string key
		core = &algebra.Join{Cond: eq("names.n_name", "items.name"),
			Left: &algebra.Scan{Table: "names"}, Right: filt(&algebra.Scan{Table: "items"}, "items.id", 9000)}
		p = itemsPref()
	case 2: // RLE int key
		core = &algebra.Join{Cond: eq("cats.c_id", "orders.o_grp"),
			Left: &algebra.Scan{Table: "cats"}, Right: filt(&algebra.Scan{Table: "orders"}, "orders.o_id", 4400)}
		p = ordersPref()
	case 3: // multi-key over RLE codes and ints, optional residual
		cond := expr.Node(expr.Bin{Op: expr.OpAnd,
			L: eq("names.n_name", "orders.o_cat"), R: eq("names.n_grp", "orders.o_grp")})
		if g.r.Intn(2) == 0 {
			cond = expr.Bin{Op: expr.OpAnd, L: cond,
				R: expr.Bin{Op: expr.OpGt, L: expr.ColRef("names.rank"), R: expr.ColRef("orders.o_grp")}}
		}
		core = &algebra.Join{Cond: cond,
			Left: &algebra.Scan{Table: "names"}, Right: filt(&algebra.Scan{Table: "orders"}, "orders.o_id", 4400)}
		p = ordersPref()
	default: // columnar build side
		core = &algebra.Join{Cond: eq("items.grp", "cats.c_id"),
			Left: filt(&algebra.Scan{Table: "items"}, "items.id", 2000), Right: &algebra.Scan{Table: "cats"}}
		p = itemsPref()
	}
	if g.r.Intn(2) == 0 {
		core = &algebra.Prefer{P: p, Input: core}
		switch g.r.Intn(3) {
		case 0:
			core = &algebra.TopK{K: 1 + g.r.Intn(20), By: algebra.ByScore, Input: core}
		case 1:
			core = &algebra.Rank{By: algebra.ByConf, Input: core}
		}
	}
	return core
}

// FuzzDirectJoinEquivalence is the fuzz arm of the direct-join contract:
// random join plans over segment-scale columnar tables, cross-checked
// row path vs vectorized path vs both colstore forms, sequential and
// parallel, at degenerate and large batch sizes. Run under
// `-tags prefdbdebug` to layer the join-table canary over the check.
func FuzzDirectJoinEquivalence(f *testing.F) {
	for _, seed := range []int64{1, 42, 7777, 20120401} {
		f.Add(seed, uint8(0))
	}
	f.Fuzz(func(t *testing.T, seed int64, strategyPick uint8) {
		cat := directJoinFuzzDB(t)
		g := &djGen{r: rand.New(rand.NewSource(seed))}
		plan := g.plan()
		strategies := Strategies()
		s := strategies[int(strategyPick)%len(strategies)]

		ref := New(cat)
		ref.Batch = BatchOff
		want, err := ref.Run(plan, s)
		if err != nil {
			t.Fatalf("row path (%v) failed on\n%s\n%v", s, algebra.Format(plan), err)
		}
		refStats := ref.Stats()
		zeroDiagnostics(&refStats)

		for _, size := range []int{1, 1024} {
			for _, workers := range []int{1, 4} {
				for _, mode := range []ColstoreMode{ColstoreOff, ColstoreRows, ColstoreOn} {
					label := fmt.Sprintf("%v workers=%d size=%d colstore=%v", s, workers, size, mode)
					e := New(cat)
					e.Workers = workers
					e.BatchSize = size
					e.Colstore = mode
					got, err := e.Run(plan, s)
					if err != nil {
						t.Fatalf("%s failed on\n%s\n%v", label, algebra.Format(plan), err)
					}
					if diff := want.Diff(got, 1e-9); diff != "" {
						t.Fatalf("%s differs on\n%s\n%s", label, algebra.Format(plan), diff)
					}
					gotStats := e.Stats()
					zeroDiagnostics(&gotStats)
					if gotStats != refStats {
						t.Fatalf("%s Stats differ on\n%s\nrow:  %v\ngot:  %v",
							label, algebra.Format(plan), refStats, gotStats)
					}
				}
			}
		}
	})
}

// groupAggPlans builds γ plans directly (the SQL surface has no GROUP BY;
// grouped aggregation is an algebra-level operator).
func groupAggPlans() map[string]algebra.Node {
	return map[string]algebra.Node{
		"int-group": &algebra.GroupAgg{
			By: []expr.Col{expr.ColRef("items.grp")},
			Aggs: []algebra.AggSpec{
				{Fn: algebra.AggCount, Col: expr.ColRef("items.id"), As: "cnt"},
				{Fn: algebra.AggSum, Col: expr.ColRef("items.val"), As: "sv"},
				{Fn: algebra.AggMin, Col: expr.ColRef("items.name"), As: "mn"},
				{Fn: algebra.AggMax, Col: expr.ColRef("items.id"), As: "mx"},
			},
			Input: &algebra.Select{
				Cond:  expr.Cmp("id", expr.OpLt, types.Int(3000)),
				Input: &algebra.Scan{Table: "items"},
			},
		},
		"string-group": &algebra.GroupAgg{
			By: []expr.Col{expr.ColRef("items.name"), expr.ColRef("items.grp")},
			Aggs: []algebra.AggSpec{
				{Fn: algebra.AggCount, Col: expr.ColRef("items.val"), As: "cnt"},
				{Fn: algebra.AggSum, Col: expr.ColRef("items.id"), As: "si"},
			},
			Input: &algebra.Scan{Table: "items"},
		},
		"rle-group": &algebra.GroupAgg{
			By: []expr.Col{expr.ColRef("orders.o_cat"), expr.ColRef("orders.o_grp")},
			Aggs: []algebra.AggSpec{
				{Fn: algebra.AggCount, Col: expr.ColRef("orders.o_id"), As: "cnt"},
				{Fn: algebra.AggSum, Col: expr.ColRef("orders.o_val"), As: "sv"},
				{Fn: algebra.AggMax, Col: expr.ColRef("orders.o_id"), As: "mx"},
			},
			Input: &algebra.Scan{Table: "orders"},
		},
		"agg-above-join": &algebra.GroupAgg{
			By: []expr.Col{expr.ColRef("names.n_name")},
			Aggs: []algebra.AggSpec{
				{Fn: algebra.AggCount, Col: expr.ColRef("items.id"), As: "cnt"},
				{Fn: algebra.AggMin, Col: expr.ColRef("items.val"), As: "mv"},
			},
			Input: &algebra.Join{
				Cond: expr.Bin{Op: expr.OpEq, L: expr.ColRef("names.n_name"), R: expr.ColRef("items.name")},
				Left: &algebra.Scan{Table: "names"},
				Right: &algebra.Select{
					Cond:  expr.Cmp("id", expr.OpLt, types.Int(1200)),
					Input: &algebra.Scan{Table: "items"},
				},
			},
		},
		// Mixed-type aggregation: tag holds occasional strings in a
		// declared-INT column (Raw fallback in the store), so sum must skip
		// non-numerics and min/max must skip incomparable pairs identically
		// on both paths.
		"raw-col-aggs": &algebra.GroupAgg{
			By: []expr.Col{expr.ColRef("items.grp")},
			Aggs: []algebra.AggSpec{
				{Fn: algebra.AggSum, Col: expr.ColRef("items.tag"), As: "st"},
				{Fn: algebra.AggMax, Col: expr.ColRef("items.tag"), As: "mt"},
			},
			Input: &algebra.Scan{Table: "items"},
		},
	}
}

// TestGroupAggEquivalence pins the two γ implementations against each
// other: the row path (BatchOff) is the reference; the vectorized path
// must match byte-for-byte over heap batches, packed row views
// (ColstoreRows) and borrowed vectors (ColstoreOn), across workers and
// batch sizes — group order (first-seen), sum widening, NULL skipping and
// all.
func TestGroupAggEquivalence(t *testing.T) {
	cat := directJoinDB(t)
	for name, plan := range groupAggPlans() {
		t.Run(name, func(t *testing.T) {
			ref := New(cat)
			ref.Batch = BatchOff
			want, err := ref.Run(plan, Native)
			if err != nil {
				t.Fatalf("row path: %v", err)
			}
			refStats := ref.Stats()
			zeroDiagnostics(&refStats)
			for _, mode := range []ColstoreMode{ColstoreOff, ColstoreRows, ColstoreOn} {
				for _, workers := range []int{1, 4} {
					for _, size := range []int{3, 1024} {
						label := fmt.Sprintf("%v workers=%d size=%d", mode, workers, size)
						e := New(cat)
						e.Workers = workers
						e.BatchSize = size
						e.Colstore = mode
						got, err := e.Run(plan, Native)
						if err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						mustIdentical(t, want, got, label)
						gotStats := e.Stats()
						zeroDiagnostics(&gotStats)
						if refStats != gotStats {
							t.Fatalf("%s: stats %+v, want %+v", label, gotStats, refStats)
						}
					}
				}
			}
		})
	}
}

// TestGroupAggDirectStaysColumnar pins that γ over a colstore scan
// aggregates on borrowed vectors: no fallback materialization of the
// input's rows (only the emitted groups count), while the same plan in
// rows mode pays the full width.
func TestGroupAggDirectStaysColumnar(t *testing.T) {
	cat := directJoinDB(t)
	plan := groupAggPlans()["rle-group"]

	e := New(cat)
	e.Colstore = ColstoreOn
	got, err := e.Run(plan, Native)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() == 0 {
		t.Fatal("aggregation produced no groups")
	}
	st := e.Stats()
	if st.ColBatches == 0 {
		t.Fatalf("direct aggregation saw no columnar batches: %+v", st)
	}
	if st.RowsMaterialized != 0 {
		t.Fatalf("direct aggregation materialized %d input rows; want 0", st.RowsMaterialized)
	}
}
