package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"prefdb/internal/algebra"
	"prefdb/internal/expr"
	"prefdb/internal/pref"
	"prefdb/internal/types"
)

// guardPlan is a join-heavy pipeline that engages every parallel path
// (segment fan-out, partitioned build, top-k merge) on the parallel
// catalog, so cancellation tests cover the worker pool.
func guardPlan() algebra.Node {
	pDrama := pref.New("drama", "genres", expr.Eq("genre", types.Str("Drama")), pref.Recency("year", 2011), 0.8)
	return &algebra.TopK{K: 50, By: algebra.ByScore,
		Input: &algebra.Prefer{P: pDrama, Input: &algebra.Join{
			Cond:  expr.Bin{Op: expr.OpEq, L: expr.ColRef("movies.m_id"), R: expr.ColRef("genres.m_id")},
			Left:  &algebra.Scan{Table: "movies"},
			Right: &algebra.Scan{Table: "genres"},
		}},
	}
}

// TestPreCanceledContext asserts the cancellation contract across every
// strategy and worker count: a canceled context fails the query with a
// *GuardError matching both the exec sentinel and the context error, and
// never returns a relation.
func TestPreCanceledContext(t *testing.T) {
	cat := parallelCatalog(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, strategy := range Strategies() {
		for _, workers := range []int{1, 4} {
			label := fmt.Sprintf("%v workers=%d", strategy, workers)
			e := New(cat)
			e.Workers = workers
			rel, err := e.RunContext(ctx, guardPlan(), strategy)
			if rel != nil {
				t.Fatalf("%s: got a relation from a canceled query", label)
			}
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("%s: err = %v, want ErrCanceled", label, err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%s: err = %v, want to match context.Canceled", label, err)
			}
			var ge *GuardError
			if !errors.As(err, &ge) || ge.Limit != LimitCanceled {
				t.Fatalf("%s: err = %#v, want *GuardError{Limit: canceled}", label, err)
			}
		}
	}
}

// TestDeadlineExceeded asserts an expired deadline surfaces as
// ErrDeadlineExceeded (and context.DeadlineExceeded).
func TestDeadlineExceeded(t *testing.T) {
	cat := parallelCatalog(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	for _, workers := range []int{1, 4} {
		e := New(cat)
		e.Workers = workers
		_, err := e.RunContext(ctx, guardPlan(), GBU)
		if !errors.Is(err, ErrDeadlineExceeded) || !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("workers=%d: err = %v, want ErrDeadlineExceeded", workers, err)
		}
		var ge *GuardError
		if !errors.As(err, &ge) || ge.Limit != LimitDeadline {
			t.Fatalf("workers=%d: err = %#v, want *GuardError{Limit: deadline}", workers, err)
		}
	}
}

// cancelAfterRegistry returns a scoring registry with a cancelafter(x)
// function that cancels ctx after n evaluations — a deterministic way to
// cancel a query in the middle of its prefer pipeline.
func cancelAfterRegistry(t *testing.T, cancel context.CancelFunc, n int64) *expr.Registry {
	t.Helper()
	reg := pref.Functions()
	var calls atomic.Int64
	if err := reg.Register(&expr.Func{
		Name: "cancelafter", MinArgs: 1, MaxArgs: 1, Kind: types.KindFloat,
		Eval: func(a []types.Value) types.Value {
			if calls.Add(1) == n {
				cancel()
			}
			return types.Float(0.5)
		},
	}); err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestMidQueryCancellation cancels the context from inside the scoring
// function, after the pipeline is already streaming rows: the query must
// abort with ErrCanceled at every worker count (workers=1 vs N
// equivalence) rather than run to completion.
func TestMidQueryCancellation(t *testing.T) {
	cat := parallelCatalog(t)
	plan := &algebra.Prefer{
		P: pref.New("cancel", "movies", expr.TrueLiteral(),
			expr.Call{Name: "cancelafter", Args: []expr.Node{expr.ColRef("year")}}, 0.9),
		Input: &algebra.Scan{Table: "movies"},
	}
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		e := New(cat)
		e.Workers = workers
		e.Funcs = cancelAfterRegistry(t, cancel, 100)
		_, err := e.RunContext(ctx, plan, Native)
		cancel()
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("workers=%d: err = %v, want ErrCanceled", workers, err)
		}
	}
}

// TestCancellationLatency asserts the acceptance bound: a parallel query
// canceled mid-flight returns within 100ms of the cancel.
func TestCancellationLatency(t *testing.T) {
	cat := parallelCatalog(t)
	for _, strategy := range Strategies() {
		ctx, cancel := context.WithCancel(context.Background())
		e := New(cat)
		e.Workers = 4
		done := make(chan error, 1)
		go func() {
			_, err := e.RunContext(ctx, guardPlan(), strategy)
			done <- err
		}()
		time.Sleep(2 * time.Millisecond) // let the pipeline start
		start := time.Now()
		cancel()
		select {
		case err := <-done:
			// Completing before observing the cancel is legal on a fast
			// machine; only an error must be the canceled kind.
			if err != nil && !errors.Is(err, ErrCanceled) {
				t.Fatalf("%v: err = %v", strategy, err)
			}
			if lat := time.Since(start); lat > 100*time.Millisecond {
				t.Fatalf("%v: returned %v after cancel, want <100ms", strategy, lat)
			}
		case <-time.After(time.Second):
			t.Fatalf("%v: query did not return within 1s of cancel", strategy)
		}
	}
}

// TestResourceLimits asserts each budget trips with ErrResourceExhausted
// and a GuardError identifying the limit, its budget and the overshoot.
func TestResourceLimits(t *testing.T) {
	cat := parallelCatalog(t)
	cases := []struct {
		name   string
		limits Limits
		kind   LimitKind
		budget int64
	}{
		{"max-rows", Limits{MaxRows: 500}, LimitRows, 500},
		{"max-cells", Limits{MaxCells: 2000}, LimitCells, 2000},
		{"memory-budget", Limits{MemoryBudget: 32 << 10}, LimitMemory, 32 << 10},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			label := fmt.Sprintf("%s workers=%d", tc.name, workers)
			e := New(cat)
			e.Workers = workers
			e.Limits = tc.limits
			_, err := e.RunContext(context.Background(), guardPlan(), GBU)
			if !errors.Is(err, ErrResourceExhausted) {
				t.Fatalf("%s: err = %v, want ErrResourceExhausted", label, err)
			}
			var ge *GuardError
			if !errors.As(err, &ge) {
				t.Fatalf("%s: err = %T, want *GuardError", label, err)
			}
			if ge.Limit != tc.kind || ge.Budget != tc.budget || ge.Observed <= ge.Budget {
				t.Fatalf("%s: GuardError = %+v, want limit %s observed > %d", label, ge, tc.kind, tc.budget)
			}
			if ge.Stats == (Stats{}) {
				t.Fatalf("%s: GuardError carries no partial stats", label)
			}
		}
	}
}

// TestGuardedNoTripIsByteIdentical asserts the zero-cost contract: running
// under a live context with generous limits yields exactly the relation,
// row order and Stats of the legacy unguarded Run.
func TestGuardedNoTripIsByteIdentical(t *testing.T) {
	cat := parallelCatalog(t)
	for name, plan := range parallelPlans() {
		for _, strategy := range Strategies() {
			for _, workers := range []int{1, 4} {
				label := fmt.Sprintf("%s %v workers=%d", name, strategy, workers)
				ref := New(cat)
				ref.Workers = workers
				want, err := ref.Run(plan, strategy)
				if err != nil {
					t.Fatalf("%s unguarded: %v", label, err)
				}
				ctx, cancel := context.WithCancel(context.Background())
				e := New(cat)
				e.Workers = workers
				e.Limits = Limits{MaxRows: 1 << 30, MaxCells: 1 << 40, MemoryBudget: 1 << 50}
				got, err := e.RunContext(ctx, plan, strategy)
				cancel()
				if err != nil {
					t.Fatalf("%s guarded: %v", label, err)
				}
				mustIdentical(t, want, got, label)
				if ref.Stats() != e.Stats() {
					t.Fatalf("%s: stats %+v, want %+v", label, e.Stats(), ref.Stats())
				}
			}
		}
	}
}

// TestCancellationLeaksNoGoroutines runs many canceled parallel queries and
// asserts the goroutine count settles back to the baseline: every worker
// and partition goroutine drains on cancellation.
func TestCancellationLeaksNoGoroutines(t *testing.T) {
	cat := parallelCatalog(t)
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		e := New(cat)
		e.Workers = 4
		if i%2 == 0 {
			cancel() // pre-canceled: workers must not even start work
		} else {
			// prefdb:fire-and-forget bounded delayed cancel; the test polls NumGoroutine back to baseline below
			go func() {
				time.Sleep(time.Duration(i) * 100 * time.Microsecond)
				cancel()
			}()
		}
		_, err := e.RunContext(ctx, guardPlan(), GBU)
		cancel()
		if err != nil && !errors.Is(err, ErrCanceled) {
			t.Fatalf("iteration %d: err = %v", i, err)
		}
	}
	// The runtime reclaims worker goroutines asynchronously; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after canceled queries",
				before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGuardErrorShape pins the error formatting and the WrapContextErr
// bridge used by engine layers.
func TestGuardErrorShape(t *testing.T) {
	ge := &GuardError{Limit: LimitRows, Budget: 10, Observed: 12,
		sentinel: ErrResourceExhausted, Stats: Stats{TuplesMaterialized: 12}}
	if s := ge.Error(); s == "" || !errors.Is(ge, ErrResourceExhausted) {
		t.Fatalf("GuardError = %q, Is(ErrResourceExhausted) = %v", s, errors.Is(ge, ErrResourceExhausted))
	}
	if err := WrapContextErr(nil); err != nil {
		t.Fatalf("WrapContextErr(nil) = %v", err)
	}
	plain := errors.New("boom")
	if err := WrapContextErr(plain); err != plain {
		t.Fatalf("WrapContextErr(plain) = %v", err)
	}
	if err := WrapContextErr(context.Canceled); !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("WrapContextErr(Canceled) = %v", err)
	}
	if err := WrapContextErr(fmt.Errorf("wrapped: %w", context.DeadlineExceeded)); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("WrapContextErr(DeadlineExceeded) = %v", err)
	}
}
