// Morsel-driven parallel execution (tentpole of the scaling roadmap).
//
// The executor splits materialized row sets into fixed-size morsels and
// fans the hot pipeline segments — scan → filter → prefer chains, the
// hash-join build and probe sides, and top-k selection — across a worker
// pool. Three invariants keep the parallel mode indistinguishable from the
// sequential one:
//
//  1. Determinism: results are merged in morsel-index order, the hash-join
//     build partitions insert rows in global row order, and the parallel
//     top-k breaks ranking ties by input position, so output rows and
//     their order do not depend on scheduling.
//  2. Exact stats: each worker accumulates a private Stats that is merged
//     once when the pipeline ends, so counters stay exact without per-row
//     atomics. (The diagnostic Batches counter reflects block sizing —
//     morsel-sized batches here — and is the one field excluded from the
//     worker-count identity.)
//  3. Identical per-row code: workers execute the same filterIter /
//     preferIter implementations over their morsels that the sequential
//     path uses, so Workers=1 and Workers=N produce byte-identical rows.
//
// Compiled expressions (expr.Compiled) are immutable after compilation and
// are shared read-only by all workers; a prefer operator's R_P in-place
// update writes only the per-row ⟨S,C⟩ copy flowing through the pipeline,
// never shared state, so prefer semantics are unaffected by partitioning.
package exec

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"prefdb/internal/algebra"
	"prefdb/internal/expr"
	"prefdb/internal/pref"
	"prefdb/internal/prel"
	"prefdb/internal/schema"
)

// morselSize is the number of rows per scheduling unit. Small enough that
// a skewed filter still load-balances, large enough that the per-morsel
// goroutine handoff is amortized over hundreds of rows. Inputs of at most
// one morsel stay on the sequential path.
const morselSize = 512

// workerCount resolves the configured pool width: Workers if positive,
// GOMAXPROCS otherwise.
func (e *Executor) workerCount() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// parallelOK reports whether the current pipeline may fan out. Under a
// Limit the consumer can stop pulling early, so eager parallel evaluation
// would inflate PreferEvals relative to the sequential path; blocking
// operators below a Limit re-enable parallelism because they exhaust
// their inputs regardless (drain resets the depth).
func (e *Executor) parallelOK() bool {
	return e.workerCount() > 1 && e.limitDepth == 0
}

// segOp is one per-row stage of an extracted pipeline segment: either a
// filter (σ) or a prefer (λ) with its compiled conditional and scoring
// parts. Compiled expressions are read-only and shared by all workers.
type segOp struct {
	filter *expr.Compiled // non-nil for σ

	cond  *expr.Compiled // prefer conditional part
	score *expr.Compiled // prefer scoring part
	conf  float64
	// cache marks a prefer whose ⟨S,C⟩ contributions are memoized; each
	// worker gets a private scoreMemo for it (no lock contention), built
	// from p (the preference identifies the shared level-2 dictionary).
	cache bool
	p     pref.Preference
}

// collectChain walks the maximal σ/λ chain rooted at n, returning the
// chain nodes (outermost first) and the leaf below them. Shared by the
// morsel-parallel segment extraction here and the fused vectorized
// segment in batch.go.
func collectChain(n algebra.Node) ([]algebra.Node, algebra.Node) {
	var chain []algebra.Node
	cur := n
	for {
		switch x := cur.(type) {
		case *algebra.Select:
			chain = append(chain, x)
			cur = x.Input
		case *algebra.Prefer:
			chain = append(chain, x)
			cur = x.Input
		default:
			return chain, cur
		}
	}
}

// compileSegOps compiles a collected σ/λ chain against s into per-row
// segment ops, innermost-first (matching sequential build order, including
// its error wrapping).
func (e *Executor) compileSegOps(chain []algebra.Node, s *schema.Schema) ([]segOp, error) {
	ops := make([]segOp, 0, len(chain))
	for i := len(chain) - 1; i >= 0; i-- {
		switch x := chain[i].(type) {
		case *algebra.Select:
			cond, cErr := expr.CompileCondition(x.Cond, s, e.Funcs)
			if cErr != nil {
				return nil, cErr
			}
			ops = append(ops, segOp{filter: cond})
		case *algebra.Prefer:
			if vErr := x.P.Validate(); vErr != nil {
				return nil, vErr
			}
			cond, cErr := expr.CompileCondition(x.P.Cond, s, e.Funcs)
			if cErr != nil {
				return nil, fmt.Errorf("prefer %s (conditional part): %w", x.P.Label(), cErr)
			}
			score, sErr := expr.Compile(x.P.Score, s, e.Funcs)
			if sErr != nil {
				return nil, fmt.Errorf("prefer %s (scoring part): %w", x.P.Label(), sErr)
			}
			ops = append(ops, segOp{cond: cond, score: score, conf: x.P.Conf, cache: e.scoreCacheOn(x), p: x.P})
		}
	}
	return ops, nil
}

// trySegment extracts a maximal σ/λ chain rooted at n, builds its leaf
// with the sequential machinery (preserving index access-path selection),
// and evaluates the chain morsel-parallel over the materialized leaf.
// It reports handled=false when the node should take the sequential path.
func (e *Executor) trySegment(n algebra.Node) (iter, *schema.Schema, bool, error) {
	if !e.parallelOK() {
		return nil, nil, false, nil
	}
	chain, cur := collectChain(n)

	// Build the leaf exactly as the sequential build would: a select
	// directly over a scan keeps its shot at an index access path.
	var base iter
	var s *schema.Schema
	var err error
	switch leaf := cur.(type) {
	case *algebra.Scan:
		var conjuncts []expr.Node
		if sel, ok := chain[len(chain)-1].(*algebra.Select); ok {
			conjuncts = expr.Conjuncts(sel.Cond)
			chain = chain[:len(chain)-1]
		}
		base, s, err = e.buildScan(leaf, conjuncts)
	case *algebra.Values:
		base, s = &sliceIter{rows: leaf.Rel.Rows}, leaf.Rel.Schema
	case nil:
		return nil, nil, false, fmt.Errorf("exec: nil plan node")
	default:
		base, s, err = e.build(leaf)
	}
	if err != nil {
		return nil, nil, true, err
	}

	ops, err := e.compileSegOps(chain, s)
	if err != nil {
		return nil, nil, true, err
	}

	rows := drainIter(base)
	if len(rows) <= morselSize {
		return e.segmentIter(rows, ops, e.segMemos(ops, s), &e.stats), s, true, nil
	}
	// Per-worker memo shards: worker w lazily builds its own scoreMemo per
	// cached prefer on its first morsel and reuses it across every morsel
	// it claims, so level-1 lookups stay lock-free while still amortizing
	// across the worker's whole share of the input. memos[w] is touched
	// only by worker w (no races).
	memos := make([][]*scoreMemo, e.workerCount())
	var apply func(morsel []prel.Row, stats *Stats, w int) []prel.Row
	if e.batchOK() {
		// Vectorized morsel kernel: each worker reuses one private batch,
		// treating every claimed morsel as a whole batch. Per-row semantics
		// (and hence Stats) match segmentIter exactly — see applySegOps.
		bufs := make([]*prel.Batch, e.workerCount())
		scrs := make([]segScratch, e.workerCount())
		apply = func(morsel []prel.Row, stats *Stats, w int) []prel.Row {
			if memos[w] == nil {
				memos[w] = e.segMemos(ops, s)
				bufs[w] = prel.NewBatch(morselSize)
			}
			b := bufs[w]
			b.FillRows(morsel)
			stats.Batches++
			applySegOps(b, ops, memos[w], e.Agg, stats, &scrs[w])
			return b.AppendRows(nil)
		}
	} else {
		apply = func(morsel []prel.Row, stats *Stats, w int) []prel.Row {
			if memos[w] == nil {
				memos[w] = e.segMemos(ops, s)
			}
			return drainIter(e.segmentIter(morsel, ops, memos[w], stats))
		}
	}
	out := e.runMorsels(rows, apply)
	return &sliceIter{rows: out}, s, true, nil
}

// segMemos builds the scoreMemo slice (aligned with ops; nil for filters
// and uncached prefers) for one owner — the sequential pipeline or one
// parallel worker. Returns nil when no op caches.
func (e *Executor) segMemos(ops []segOp, s *schema.Schema) []*scoreMemo {
	var memos []*scoreMemo
	for i, op := range ops {
		if !op.cache {
			continue
		}
		if memos == nil {
			memos = make([]*scoreMemo, len(ops))
		}
		memos[i] = e.newScoreMemo(op.cond, op.score, op.p, s)
	}
	return memos
}

// segmentIter chains the sequential per-row iterators over a row slice;
// the parallel path runs it per morsel with a worker-private Stats and
// memo shard, so per-row behavior is identical at every worker count.
func (e *Executor) segmentIter(rows []prel.Row, ops []segOp, memos []*scoreMemo, stats *Stats) iter {
	var it iter = &sliceIter{rows: rows}
	for i, op := range ops {
		if op.filter != nil {
			it = &filterIter{in: it, cond: op.filter, tick: pollTick{g: e.gd}}
		} else {
			pi := &preferIter{in: it, cond: op.cond, score: op.score, conf: op.conf, agg: e.Agg, stats: stats, tick: pollTick{g: e.gd}}
			if memos != nil {
				pi.memo = memos[i]
			}
			it = pi
		}
	}
	return it
}

// workerStats pads each worker's counters to a cache line so per-row
// increments on neighbouring workers do not false-share.
type workerStats struct {
	Stats
	_ [64]byte
}

// runMorsels fans rows out over the worker pool in morselSize chunks.
// Workers claim morsel indices from a shared counter (work stealing over
// a global queue); results land in a per-morsel slot and are concatenated
// in morsel order, so the output order is that of the input. Worker-local
// stats are merged once at the end.
//
// Cancellation: each worker re-checks the lifecycle guard before claiming
// a morsel and stops claiming once the query tripped, so the pool drains
// within one morsel of a cancellation; wg.Wait always joins every worker,
// so no goroutine outlives the call.
func (e *Executor) runMorsels(rows []prel.Row, apply func(morsel []prel.Row, stats *Stats, worker int) []prel.Row) []prel.Row {
	return e.runMorselsIdx(len(rows), func(lo, hi int, stats *Stats, w int) []prel.Row {
		return apply(rows[lo:hi:hi], stats, w)
	})
}

// runMorselsIdx is runMorsels over an index space: apply sees the global
// [lo, hi) range instead of a row slice, so callers can address per-row
// side arrays — the hash-join probe's precomputed key hashes — by global
// offset alongside the rows themselves.
func (e *Executor) runMorselsIdx(n int, apply func(lo, hi int, stats *Stats, worker int) []prel.Row) []prel.Row {
	workers := e.workerCount()
	morsels := (n + morselSize - 1) / morselSize
	if workers > morsels {
		workers = morsels
	}
	outs := make([][]prel.Row, morsels)
	locals := make([]workerStats, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				// poll (not just stopped): per-morsel iterators are too
				// short-lived for their own amortized ticks to fire, so the
				// claim loop is where parallel workers observe cancellation.
				if e.gd.poll() != nil {
					return
				}
				m := int(next.Add(1)) - 1
				if m >= morsels {
					return
				}
				lo := m * morselSize
				hi := min(lo+morselSize, n)
				outs[m] = apply(lo, hi, &locals[w].Stats, w)
			}
		}(w)
	}
	wg.Wait()
	for i := range locals {
		e.stats.Add(locals[i].Stats)
	}
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	out := make([]prel.Row, 0, total)
	for _, o := range outs {
		out = append(out, o...)
	}
	return out
}

// parallelFor splits [0, n) into contiguous chunks across the pool.
func parallelFor(workers, n int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// parallelHashJoinIter executes the extended hash join ⋈_{φ,F} with a
// partitioned parallel build and a morsel-parallel probe over the shared
// read-only partition tables. Each build partition owns the keys with
// hash ≡ partition (mod P) and inserts its rows in global row order, so
// every per-key candidate list — and therefore the probe output — is
// identical to the sequential hashJoinIter's.
//
// On the batch path the sides arrive as batch iterators (leftB/rightB)
// instead of row iterators: the drain then computes each row's key hash
// with the vector kernel (expr.HashCols) while the window is still live,
// one batch at a time, and the partitioned build and morsel probe consume
// the precomputed hashes by global row offset (runMorselsIdx) — the same
// buckets and the same order, with per-row tuple hashing gone.
type parallelHashJoinIter struct {
	e             *Executor
	left, right   iter      // row-path sources (batch mode off)
	leftB, rightB batchIter // batch-path sources (set instead of left/right)
	eqL, eqR      []int

	built bool
	out   []prel.Row
	pos   int
}

func (p *parallelHashJoinIter) next() (prel.Row, bool) {
	if !p.built {
		p.run()
		p.built = true
	}
	if p.pos >= len(p.out) {
		return prel.Row{}, false
	}
	r := p.out[p.pos]
	p.pos++
	return r, true
}

// drainSide buffers one join side from its batch source, computing each
// row's key hash with the vector kernel (expr.HashCols) while the batch's
// column windows are still live. The buffered rows are the batch's row
// views — stable, store-owned storage — never the windows themselves (the
// build-side borrow contract). Batches whose key columns lack typed
// vectors fall back to tuple hashing; for the probe side, direct[i]
// records which rows were hashed off the vectors, so the probe can count
// only their matches as late materialization (fallback columnar rows were
// already fully touched — and counted — here).
func (p *parallelHashJoinIter) drainSide(in batchIter, keys []int, probe bool) (rows []prel.Row, hashes []uint64, direct []bool) {
	stats := &p.e.stats
	var ks expr.KeyScratch
	var hbuf []uint64
	for {
		b, ok := in.nextBatch()
		if !ok {
			break
		}
		if probe {
			stats.JoinProbeBatches++
		}
		n := len(b.Sel)
		if cap(hbuf) < n {
			hbuf = make([]uint64, n)
		}
		hb := hbuf[:n]
		isDirect := b.Columnar() && expr.HashCols(b.Cols, b.Sel, keys, hb, &ks)
		if !isDirect {
			rs := b.Rows()
			if b.Columnar() {
				stats.RowsMaterialized += n
			}
			for k, j := range b.Sel {
				hb[k] = hashCols(rs[j], keys)
			}
		} else if !probe {
			// Build rows are retained as the join's buffered state: the
			// whole side crosses the materialization boundary here.
			stats.RowsMaterialized += n
		}
		hashes = append(hashes, hb...)
		if probe {
			for i := 0; i < n; i++ {
				direct = append(direct, isDirect)
			}
		}
		rows = b.AppendRows(rows)
	}
	return rows, hashes, direct
}

func (p *parallelHashJoinIter) run() {
	var lRows, rRows []prel.Row
	var lHashes, rHashes []uint64
	var rDirect []bool
	if p.leftB != nil {
		lRows, lHashes, _ = p.drainSide(p.leftB, p.eqL, false)
		rRows, rHashes, rDirect = p.drainSide(p.rightB, p.eqR, true)
	} else {
		lRows = drainIter(p.left)
		rRows = drainIter(p.right)
	}
	if len(lRows) <= morselSize && len(rRows) <= morselSize {
		seq := newHashJoinIter(&sliceIter{rows: lRows}, &sliceIter{rows: rRows},
			0, p.eqL, p.eqR, p.e.Agg, &p.e.stats, p.e.gd)
		p.out = drainIter(seq)
		return
	}
	parts := uint64(p.e.workerCount())

	// The build side is buffered state: charge it against the query's
	// budgets once (the sequential hash join meters the same total).
	if g := p.e.gd; g != nil && len(lRows) > 0 {
		_ = g.add(len(lRows), len(lRows)*(len(lRows[0].Tuple)+2))
	}
	if p.e.gd.stopped() {
		return
	}

	// Hash every build row once, morsel-parallel — unless the batch drain
	// already hashed them off the column vectors.
	hashes := lHashes
	if hashes == nil {
		hashes = make([]uint64, len(lRows))
		parallelFor(int(parts), len(lRows), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hashes[i] = hashCols(lRows[i].Tuple, p.eqL)
			}
		})
	}

	// Partitioned build: one goroutine per partition, inserting in global
	// row order; each partition polls the guard amortized so a mid-build
	// cancellation drains the pool within one poll interval.
	tables := make([]map[uint64][]prel.Row, parts)
	var wg sync.WaitGroup
	for j := uint64(0); j < parts; j++ {
		wg.Add(1)
		go func(j uint64) {
			defer wg.Done()
			tick := pollTick{g: p.e.gd}
			t := map[uint64][]prel.Row{}
			for i, h := range hashes {
				if tick.stop() {
					return
				}
				if h%parts == j {
					t[h] = append(t[h], lRows[i])
				}
			}
			tables[j] = t
		}(j)
	}
	wg.Wait()
	if p.e.gd.stopped() {
		return
	}
	for _, t := range tables {
		debugCheckJoinTable(t, p.eqL)
	}

	// Morsel-parallel probe against the shared read-only tables; ordered
	// merge restores the sequential probe order. With precomputed vector
	// hashes the probe addresses them by global offset, and a direct-hashed
	// probe row counts as materialized only when it joins.
	p.out = p.e.runMorselsIdx(len(rRows), func(lo, hi int, stats *Stats, _ int) []prel.Row {
		var out []prel.Row
		for i := lo; i < hi; i++ {
			rRow := rRows[i]
			var key uint64
			if rHashes != nil {
				key = rHashes[i]
			} else {
				key = hashCols(rRow.Tuple, p.eqR)
			}
			matched := false
			for _, lRow := range tables[key%parts][key] {
				if equalOn(lRow.Tuple, rRow.Tuple, p.eqL, p.eqR) {
					out = append(out, combineRows(lRow, rRow, p.e.Agg))
					matched = true
				}
			}
			if matched && rDirect != nil && rDirect[i] {
				stats.RowsMaterialized++
			}
		}
		return out
	})
}

// parallelTopK selects the k best rows with per-worker bounded heaps over
// contiguous partitions, merged by prel.MergeTopK. Ranking ties break by
// input position, so the selection matches the sequential bounded heap
// (which keeps the earliest-seen rows at the k boundary).
func (e *Executor) parallelTopK(rows []prel.Row, k int, byConf bool) []prel.Row {
	workers := e.workerCount()
	chunk := (len(rows) + workers - 1) / workers
	if chunk < morselSize {
		chunk = morselSize
	}
	nParts := (len(rows) + chunk - 1) / chunk
	parts := make([][]prel.SeqRow, nParts)
	var wg sync.WaitGroup
	for i := 0; i < nParts; i++ {
		lo := i * chunk
		hi := min(lo+chunk, len(rows))
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			parts[i] = prel.TopKSeq(rows[lo:hi], lo, k, byConf)
		}(i, lo, hi)
	}
	wg.Wait()
	return prel.MergeTopK(parts, k, byConf)
}
