package exec

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"prefdb/internal/algebra"
	"prefdb/internal/expr"
	"prefdb/internal/pref"
	"prefdb/internal/types"
)

// statsSansCache clears the counters the score cache is allowed to change:
// ScoreEvals (the cache's whole point is doing fewer of them), CacheHits
// and CacheMisses (zero when the cache is off). Everything else — rows
// scanned, tuples preferred, materialization, guard ticks — must be
// byte-identical between cached and uncached runs.
func statsSansCache(s Stats) Stats {
	s.ScoreEvals, s.CacheHits, s.CacheMisses = 0, 0, 0
	return s
}

// TestScoreCacheEquivalence is the PR's core property: with the cache
// forced on, every strategy at every worker count returns exactly the
// rows, row order and ⟨S,C⟩ pairs of the uncached engine, and the same
// Stats modulo the cache counters.
func TestScoreCacheEquivalence(t *testing.T) {
	cat := parallelCatalog(t)
	for name, plan := range parallelPlans() {
		t.Run(name, func(t *testing.T) {
			for _, strategy := range Strategies() {
				for _, workers := range []int{1, 4} {
					ref := New(cat)
					ref.Workers = workers
					ref.ScoreCache = CacheOff
					want, err := ref.Run(plan, strategy)
					if err != nil {
						t.Fatalf("%v workers=%d uncached: %v", strategy, workers, err)
					}
					e := New(cat)
					e.Workers = workers
					e.ScoreCache = CacheOn
					got, err := e.Run(plan, strategy)
					if err != nil {
						t.Fatalf("%v workers=%d cached: %v", strategy, workers, err)
					}
					label := fmt.Sprintf("%v workers=%d cached", strategy, workers)
					mustIdentical(t, want, got, label)
					if rs, cs := statsSansCache(ref.Stats()), statsSansCache(e.Stats()); rs != cs {
						t.Fatalf("%s: stats %+v, want %+v", label, cs, rs)
					}
					cached := e.Stats()
					if cached.CacheHits+cached.CacheMisses == 0 {
						t.Fatalf("%s: cache never engaged (stats %+v)", label, cached)
					}
					if cached.ScoreEvals > ref.Stats().ScoreEvals {
						t.Fatalf("%s: cached run evaluated more scores (%d) than uncached (%d)",
							label, cached.ScoreEvals, ref.Stats().ScoreEvals)
					}
				}
			}
		})
	}
}

// TestScoreCacheAutoFollowsHint pins the CacheAuto contract: the cache
// engages exactly when the optimizer marked the operator.
func TestScoreCacheAutoFollowsHint(t *testing.T) {
	cat := parallelCatalog(t)
	p := pref.New("recent", "movies", expr.Cmp("year", expr.OpGe, types.Int(2000)), pref.Recency("year", 2011), 0.9)
	plain := &algebra.Prefer{P: p, Input: &algebra.Scan{Table: "movies"}}
	hinted := &algebra.Prefer{P: p, Input: &algebra.Scan{Table: "movies"}, CacheHint: true, CacheNDV: 64}

	e := New(cat)
	if _, err := e.Run(plain, Native); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.CacheHits+s.CacheMisses != 0 {
		t.Errorf("unhinted plan under CacheAuto used the cache: %+v", s)
	}

	e = New(cat)
	if _, err := e.Run(hinted, Native); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.CacheHits+s.CacheMisses == 0 {
		t.Errorf("hinted plan under CacheAuto ignored the hint: %+v", s)
	}

	// CacheOff wins over the hint.
	e = New(cat)
	e.ScoreCache = CacheOff
	if _, err := e.Run(hinted, Native); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.CacheHits+s.CacheMisses != 0 {
		t.Errorf("CacheOff still cached: %+v", s)
	}
}

// TestScoreCacheHitAccounting checks the counter algebra on a plan whose
// key (year) has far fewer distinct values than the table has rows: every
// prefer evaluation is exactly one hit or one miss, misses equal the
// number of distinct keys, and score expressions run only on cond-true
// misses.
func TestScoreCacheHitAccounting(t *testing.T) {
	cat := parallelCatalog(t)
	p := pref.New("recent", "movies", expr.Cmp("year", expr.OpGe, types.Int(2000)), pref.Recency("year", 2011), 0.9)
	plan := &algebra.Prefer{P: p, Input: &algebra.Scan{Table: "movies"}}

	ref := New(cat)
	ref.ScoreCache = CacheOff
	if _, err := ref.Run(plan, Native); err != nil {
		t.Fatal(err)
	}
	e := New(cat)
	e.ScoreCache = CacheOn
	out, err := e.Run(plan, Native)
	if err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.CacheHits+s.CacheMisses != s.PreferEvals {
		t.Errorf("hits+misses = %d, want PreferEvals = %d", s.CacheHits+s.CacheMisses, s.PreferEvals)
	}
	distinct := map[int64]bool{}
	for _, row := range out.Rows {
		distinct[row.Tuple[2].AsInt()] = true // movies.year
	}
	if s.CacheMisses != len(distinct) {
		t.Errorf("misses = %d, want one per distinct year = %d", s.CacheMisses, len(distinct))
	}
	if s.CacheHits <= s.CacheMisses {
		t.Errorf("low-cardinality key should be hit-dominated: hits=%d misses=%d", s.CacheHits, s.CacheMisses)
	}
	if s.ScoreEvals >= ref.Stats().ScoreEvals {
		t.Errorf("cached ScoreEvals = %d, want fewer than uncached %d", s.ScoreEvals, ref.Stats().ScoreEvals)
	}
}

// TestScoreMemoBound verifies bounded degradation: once the memo is full,
// new keys evaluate directly (and stay misses) while resident entries keep
// serving hits — results never change, only the hit rate does.
func TestScoreMemoBound(t *testing.T) {
	cat := parallelCatalog(t)
	tbl, err := cat.Table("movies")
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.Schema()
	p := pref.New("recent", "movies", expr.Cmp("year", expr.OpGe, types.Int(2000)), pref.Recency("year", 2011), 0.9)
	e := New(cat)
	cond, err := expr.CompileCondition(p.Cond, s, e.Funcs)
	if err != nil {
		t.Fatal(err)
	}
	score, err := expr.Compile(p.Score, s, e.Funcs)
	if err != nil {
		t.Fatal(err)
	}
	m := e.newScoreMemo(cond, score, p, s)

	tuple := func(year int64) []types.Value {
		return []types.Value{types.Int(1), types.Str("t"), types.Int(year), types.Int(100), types.Int(1)}
	}
	var stats Stats
	sc1, has1 := m.lookupOrCompute(tuple(2005), &stats)
	if !has1 || stats.CacheMisses != 1 {
		t.Fatalf("first probe: has=%v stats=%+v", has1, stats)
	}
	if sc2, has2 := m.lookupOrCompute(tuple(2005), &stats); sc2 != sc1 || !has2 || stats.CacheHits != 1 {
		t.Fatalf("repeat probe: sc=%v has=%v stats=%+v", sc2, has2, stats)
	}

	m.n = scoreMemoLimit // simulate a full memo
	stats = Stats{}
	first, hasFirst := m.lookupOrCompute(tuple(2007), &stats)
	second, hasSecond := m.lookupOrCompute(tuple(2007), &stats)
	if stats.CacheMisses != 2 || stats.CacheHits != 0 {
		t.Errorf("full memo should degrade to direct evaluation: %+v", stats)
	}
	if first != second || hasFirst != hasSecond || !hasFirst {
		t.Errorf("degraded evaluations disagree: %v/%v vs %v/%v", first, hasFirst, second, hasSecond)
	}
	// Resident entries still hit.
	stats = Stats{}
	if _, _ = m.lookupOrCompute(tuple(2005), &stats); stats.CacheHits != 1 {
		t.Errorf("resident entry stopped hitting: %+v", stats)
	}
}

// TestScoreDictConcurrent hammers one dictionary from many goroutines —
// the lookup/publish protocol must be race-clean (run with -race) and
// first-insert-wins must keep it at one entry per key.
func TestScoreDictConcurrent(t *testing.T) {
	d := NewScoreDict()
	const keys = 64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				key := []types.Value{types.Int(int64(i))}
				h := types.HashTuple(key)
				if _, ok := d.lookup(h, key); !ok {
					d.publish(h, memoEntry{key: key, sc: types.NewSC(float64(i)/keys, 0.9), has: true})
				}
				if e, ok := d.lookup(h, key); !ok || e.sc.Score != float64(i)/keys {
					t.Errorf("key %d: ok=%v e=%+v", i, ok, e)
					return
				}
			}
		}()
	}
	wg.Wait()
	if d.Len() != keys {
		t.Errorf("dict has %d entries, want %d", d.Len(), keys)
	}
}

// TestScoreDictCrossQueryReuse wires a level-2 dictionary through DictFor
// the way the engine does for prepared statements: the second run of the
// same plan takes every key from the dictionary (zero misses) and still
// returns exactly the uncached result.
func TestScoreDictCrossQueryReuse(t *testing.T) {
	cat := parallelCatalog(t)
	plan := parallelPlans()["prefer-chain"]

	var mu sync.Mutex
	dicts := map[string]*ScoreDict{}
	dictFor := func(p pref.Preference, cols []string) *ScoreDict {
		mu.Lock()
		defer mu.Unlock()
		k := p.String() + "\x00" + strings.Join(cols, ",")
		if d, ok := dicts[k]; ok {
			return d
		}
		d := NewScoreDict()
		dicts[k] = d
		return d
	}

	for _, workers := range []int{1, 4} {
		mu.Lock()
		dicts = map[string]*ScoreDict{}
		mu.Unlock()

		ref := New(cat)
		ref.Workers = workers
		ref.ScoreCache = CacheOff
		want, err := ref.Run(plan, GBU)
		if err != nil {
			t.Fatal(err)
		}

		run := func() (Stats, error) {
			e := New(cat)
			e.Workers = workers
			e.ScoreCache = CacheOn
			e.DictFor = dictFor
			got, err := e.Run(plan, GBU)
			if err != nil {
				return Stats{}, err
			}
			mustIdentical(t, want, got, fmt.Sprintf("dict run workers=%d", workers))
			return e.Stats(), nil
		}
		cold, err := run()
		if err != nil {
			t.Fatal(err)
		}
		if cold.CacheMisses == 0 {
			t.Fatalf("workers=%d: cold run should miss (stats %+v)", workers, cold)
		}
		warm, err := run()
		if err != nil {
			t.Fatal(err)
		}
		if warm.CacheMisses != 0 {
			t.Errorf("workers=%d: warm run missed %d times, want 0 (dictionary not reused)", workers, warm.CacheMisses)
		}
		if warm.ScoreEvals != 0 {
			t.Errorf("workers=%d: warm run evaluated %d scores, want 0", workers, warm.ScoreEvals)
		}
	}
}

// BenchmarkPreferScoreCache compares cached vs uncached prefer over a
// low-cardinality key (year: ~60 distinct values over 5 000 movies). The
// CI bench-smoke job runs this via -bench BenchmarkPrefer.
func BenchmarkPreferScoreCache(b *testing.B) {
	cat := parallelCatalog(b)
	p := pref.New("recent", "movies", expr.Cmp("year", expr.OpGe, types.Int(2000)), pref.Recency("year", 2011), 0.9)
	plan := &algebra.Prefer{P: p, Input: &algebra.Scan{Table: "movies"}}
	for _, mode := range []CacheMode{CacheOff, CacheOn} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := New(cat)
				e.ScoreCache = mode
				if _, err := e.Run(plan, Native); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
