package exec

import (
	"fmt"
	"testing"

	"prefdb/internal/algebra"
	"prefdb/internal/catalog"
	"prefdb/internal/colstore"
	"prefdb/internal/expr"
	"prefdb/internal/pref"
	"prefdb/internal/schema"
	"prefdb/internal/storage"
	"prefdb/internal/types"
)

// colstoreDB builds a catalog whose "items" table spans multiple columnar
// segments (2 full segments plus a sealed remainder and an unsealed heap
// tail), with every encoding the store supports: sequential ints (tight
// zones), a small string dictionary, floats with NULLs, a declared-INT
// column holding occasional strings (Raw fallback), plus tombstones from
// two DELETE patterns. A small "cats" table joins against grp.
func colstoreDB(t testing.TB) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	items := schema.New(
		schema.Column{Name: "id", Kind: types.KindInt},
		schema.Column{Name: "grp", Kind: types.KindInt},
		schema.Column{Name: "name", Kind: types.KindString},
		schema.Column{Name: "val", Kind: types.KindFloat},
		schema.Column{Name: "tag", Kind: types.KindInt},
	).WithKey("id")
	it, err := c.CreateTable("items", items)
	if err != nil {
		t.Fatal(err)
	}
	rows := 2*colstore.SegmentPages*storage.PageSize + storage.PageSize*3 + 100
	for i := 0; i < rows; i++ {
		val := types.Value(types.Float(float64(i%97) / 7))
		if i%5 == 0 {
			val = types.Null()
		}
		tag := types.Value(types.Int(int64(i % 13)))
		if i%701 == 0 {
			tag = types.Str("stray")
		}
		err := it.Insert([]types.Value{
			types.Int(int64(i)),
			types.Int(int64(i % 8)),
			types.Str(fmt.Sprintf("name-%d", i%4)),
			val,
			tag,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Tombstones: a sparse spread plus a dense half-deleted region in the
	// middle of the first segment.
	it.DeleteWhere(func(tuple []types.Value) bool {
		id := tuple[0].AsInt()
		return id%17 == 0 || (id >= 1000 && id < 2000 && id%2 == 0)
	})

	cats := schema.New(
		schema.Column{Name: "c_id", Kind: types.KindInt},
		schema.Column{Name: "label", Kind: types.KindString},
	).WithKey("c_id")
	ct, err := c.CreateTable("cats", cats)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := ct.Insert([]types.Value{types.Int(int64(i)), types.Str(fmt.Sprintf("cat-%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func itemsPref() pref.Preference {
	return pref.Preference{
		Name: "hot", On: []string{"items"},
		Cond:  expr.Cmp("grp", expr.OpGe, types.Int(3)),
		Score: pref.Recency("items.id", 10000),
		Conf:  0.9,
	}
}

func colstorePlans() map[string]algebra.Node {
	return map[string]algebra.Node{
		"prune-low-sel": &algebra.TopK{K: 10, By: algebra.ByScore, Input: &algebra.Prefer{
			P: itemsPref(), Input: &algebra.Select{
				Cond:  expr.Cmp("id", expr.OpLe, types.Int(300)),
				Input: &algebra.Scan{Table: "items"},
			},
		}},
		"prune-range-tail": &algebra.TopK{K: 5, By: algebra.ByScore, Input: &algebra.Prefer{
			P: itemsPref(), Input: &algebra.Select{
				Cond: expr.Bin{Op: expr.OpAnd,
					L: expr.Cmp("id", expr.OpGt, types.Int(8000)),
					R: expr.Cmp("name", expr.OpEq, types.Str("name-1"))},
				Input: &algebra.Scan{Table: "items"},
			},
		}},
		"nullable-float-pred": &algebra.Rank{By: algebra.ByScore, Input: &algebra.Prefer{
			P: itemsPref(), Input: &algebra.Select{
				Cond:  expr.Cmp("val", expr.OpGe, types.Float(13)),
				Input: &algebra.Scan{Table: "items"},
			},
		}},
		"raw-col-pred": &algebra.TopK{K: 7, By: algebra.ByConf, Input: &algebra.Prefer{
			P: itemsPref(), Input: &algebra.Select{
				Cond:  expr.Cmp("tag", expr.OpLe, types.Int(2)),
				Input: &algebra.Scan{Table: "items"},
			},
		}},
		"full-scan": &algebra.TopK{K: 10, By: algebra.ByScore, Input: &algebra.Prefer{
			P: itemsPref(), Input: &algebra.Scan{Table: "items"},
		}},
		"join": &algebra.TopK{K: 10, By: algebra.ByScore, Input: &algebra.Prefer{
			P: itemsPref(), Input: &algebra.Join{
				Cond: expr.Bin{Op: expr.OpEq, L: expr.ColRef("items.grp"), R: expr.ColRef("cats.c_id")},
				Left: &algebra.Select{
					Cond:  expr.Cmp("id", expr.OpLt, types.Int(600)),
					Input: &algebra.Scan{Table: "items"},
				},
				Right: &algebra.Scan{Table: "cats"},
			},
		}},
	}
}

// TestColstoreHeapEquivalence is the acceptance contract of the columnar
// store: across strategies × workers × cache modes × batch sizes, reading
// segments with zone-map pruning must produce byte-identical rows, order
// and Stats (modulo the diagnostic Batches / segment counters) to the
// heap batch path.
func TestColstoreHeapEquivalence(t *testing.T) {
	cat := colstoreDB(t)
	for name, plan := range colstorePlans() {
		t.Run(name, func(t *testing.T) {
			for _, strategy := range Strategies() {
				for _, workers := range []int{1, 4} {
					for _, cache := range []CacheMode{CacheOff, CacheOn} {
						for _, size := range []int{3, 1024} {
							label := fmt.Sprintf("%v workers=%d cache=%v size=%d", strategy, workers, cache, size)

							ref := New(cat)
							ref.Workers = workers
							ref.ScoreCache = cache
							ref.BatchSize = size
							ref.Colstore = ColstoreOff
							want, err := ref.Run(plan, strategy)
							if err != nil {
								t.Fatalf("%s heap path: %v", label, err)
							}
							refStats := ref.Stats()
							if refStats.SegmentsScanned != 0 || refStats.SegmentsSkipped != 0 {
								t.Fatalf("%s: heap path touched segments: %+v", label, refStats)
							}

							e := New(cat)
							e.Workers = workers
							e.ScoreCache = cache
							e.BatchSize = size
							e.Colstore = ColstoreOn
							got, err := e.Run(plan, strategy)
							if err != nil {
								t.Fatalf("%s colstore path: %v", label, err)
							}

							mustIdentical(t, want, got, label)
							gotStats := e.Stats()
							refStats.Batches, gotStats.Batches = 0, 0
							gotStats.SegmentsScanned, gotStats.SegmentsSkipped = 0, 0
							gotStats.ColBatches, gotStats.RowsMaterialized = 0, 0
							refStats.JoinProbeBatches, gotStats.JoinProbeBatches = 0, 0
							if refStats != gotStats {
								t.Fatalf("%s: colstore stats %+v, want %+v", label, gotStats, refStats)
							}
						}
					}
				}
			}
		})
	}
}

// TestColstoreEngagesAndPrunes pins that the colstore suite is not passing
// vacuously: the selective plan must actually read segments and skip most
// of them on zone maps alone.
func TestColstoreEngagesAndPrunes(t *testing.T) {
	cat := colstoreDB(t)
	e := New(cat)
	e.Colstore = ColstoreOn
	if _, err := e.Run(colstorePlans()["prune-low-sel"], Native); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.SegmentsScanned == 0 {
		t.Fatalf("colstore scan read no segments: %+v", st)
	}
	if st.SegmentsSkipped == 0 {
		t.Fatalf("id <= 300 over sequential ids skipped no segments: %+v", st)
	}
	// RowsScanned must credit skipped segments' live rows, keeping parity
	// with the heap path.
	ref := New(cat)
	ref.Colstore = ColstoreOff
	if _, err := ref.Run(colstorePlans()["prune-low-sel"], Native); err != nil {
		t.Fatal(err)
	}
	if ref.Stats().RowsScanned != st.RowsScanned {
		t.Fatalf("RowsScanned diverged: colstore %d, heap %d", st.RowsScanned, ref.Stats().RowsScanned)
	}
}

// TestColstoreSeesHeapTailWrites pins invalidation: rows inserted after a
// store is built live on the heap tail and must be visible immediately,
// and further DML must trigger a version-checked rebuild.
func TestColstoreSeesHeapTailWrites(t *testing.T) {
	cat := colstoreDB(t)
	plan := &algebra.Select{
		Cond:  expr.Cmp("id", expr.OpGe, types.Int(1_000_000)),
		Input: &algebra.Scan{Table: "items"},
	}
	run := func() int {
		e := New(cat)
		e.Colstore = ColstoreOn
		rel, err := e.Run(plan, Native)
		if err != nil {
			t.Fatal(err)
		}
		return rel.Len()
	}
	if got := run(); got != 0 {
		t.Fatalf("unexpected %d rows above the id ceiling", got)
	}
	it, err := cat.Table("items")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		err := it.Insert([]types.Value{
			types.Int(int64(1_000_000 + i)), types.Int(0), types.Str("late"),
			types.Float(1), types.Int(0),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := run(); got != 3 {
		t.Fatalf("tail inserts invisible to colstore scan: got %d rows, want 3", got)
	}
	if n := it.DeleteWhere(func(tuple []types.Value) bool { return tuple[0].AsInt() >= 1_000_000 }); n != 3 {
		t.Fatalf("deleted %d rows, want 3", n)
	}
	if got := run(); got != 0 {
		t.Fatalf("deleted rows still visible after rebuild: got %d rows", got)
	}
}

// TestHeapBatchSrcCompactsAcrossPages is the page-boundary regression
// test: over a half-deleted table the batch source must keep filling one
// batch from the following pages instead of emitting one undersized batch
// per page — every batch except the last is exactly full.
func TestHeapBatchSrcCompactsAcrossPages(t *testing.T) {
	s := schema.New(schema.Column{Table: "t", Name: "a", Kind: types.KindInt})
	h := storage.NewHeap(s)
	pages := 4
	for i := 0; i < pages*storage.PageSize; i++ {
		if _, err := h.Insert([]types.Value{types.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	// Half-delete every page: live rows per page = PageSize/2.
	for i := 0; i < pages*storage.PageSize; i += 2 {
		h.Delete(storage.RowID{Page: uint32(i / storage.PageSize), Slot: uint32(i % storage.PageSize)})
	}
	live := pages * storage.PageSize / 2

	src := &heapBatchSrc{heap: h, stats: &Stats{}, size: storage.PageSize}
	var sizes []int
	total := 0
	for {
		b, ok := src.nextBatch()
		if !ok {
			break
		}
		sizes = append(sizes, b.Cap())
		total += b.Cap()
	}
	if total != live {
		t.Fatalf("batches covered %d rows, want %d", total, live)
	}
	for i, n := range sizes {
		if i < len(sizes)-1 && n != storage.PageSize {
			t.Fatalf("batch %d of %v is undersized: half-deleted pages must compact across page boundaries", i, sizes)
		}
	}
	if len(sizes) != 2 {
		t.Fatalf("%d live rows at size %d should yield 2 full batches, got %v", live, storage.PageSize, sizes)
	}
}

// TestParseColstoreMode covers the flag surface.
func TestParseColstoreMode(t *testing.T) {
	for name, want := range map[string]ColstoreMode{"on": ColstoreOn, "rows": ColstoreRows, "Off": ColstoreOff} {
		got, err := ParseColstoreMode(name)
		if err != nil || got != want {
			t.Fatalf("ParseColstoreMode(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseColstoreMode("maybe"); err == nil {
		t.Fatal("ParseColstoreMode accepted an unknown mode")
	}
}
