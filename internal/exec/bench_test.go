package exec

import (
	"fmt"
	"runtime"
	"testing"

	"prefdb/internal/algebra"
	"prefdb/internal/catalog"
	"prefdb/internal/datagen"
	"prefdb/internal/expr"
	"prefdb/internal/pref"
	"prefdb/internal/types"
)

func benchCatalog(b *testing.B) *catalog.Catalog {
	b.Helper()
	cat := catalog.New()
	if _, err := datagen.LoadIMDB(cat, datagen.Config{Scale: 0.1, Seed: 9}); err != nil {
		b.Fatal(err)
	}
	return cat
}

func drainAll(b *testing.B, e *Executor, plan algebra.Node) int {
	b.Helper()
	rel, err := e.Run(plan, Native)
	if err != nil {
		b.Fatal(err)
	}
	return rel.Len()
}

// BenchmarkPreferOperator measures the λ operator's per-tuple throughput.
func BenchmarkPreferOperator(b *testing.B) {
	cat := benchCatalog(b)
	e := New(cat)
	plan := &algebra.Prefer{
		P:     pref.New("p", "movies", expr.Cmp("year", expr.OpGe, types.Int(2000)), pref.Recency("year", 2011), 0.9),
		Input: &algebra.Scan{Table: "movies"},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if drainAll(b, e, plan) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkHashJoin measures the extended hash join (with SC combination).
func BenchmarkHashJoin(b *testing.B) {
	cat := benchCatalog(b)
	e := New(cat)
	plan := &algebra.Join{
		Cond:  expr.Bin{Op: expr.OpEq, L: expr.ColRef("movies.m_id"), R: expr.ColRef("genres.m_id")},
		Left:  &algebra.Scan{Table: "movies"},
		Right: &algebra.Scan{Table: "genres"},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if drainAll(b, e, plan) == 0 {
			b.Fatal("empty join")
		}
	}
}

// BenchmarkSkylineOperator measures the (score, conf) skyline sweep.
func BenchmarkSkylineOperator(b *testing.B) {
	cat := benchCatalog(b)
	e := New(cat)
	plan := &algebra.Skyline{Input: &algebra.Prefer{
		P:     pref.New("p", "movies", expr.TrueLiteral(), pref.Recency("year", 2011), 0.9),
		Input: &algebra.Scan{Table: "movies"},
	}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drainAll(b, e, plan)
	}
}

// BenchmarkIndexVsScan contrasts the two access paths for one selective
// equality condition.
func BenchmarkIndexVsScan(b *testing.B) {
	cat := benchCatalog(b)
	cond := expr.Eq("genre", types.Str("Film-Noir"))
	plan := &algebra.Select{Cond: cond, Input: &algebra.Scan{Table: "genres"}}
	b.Run("hash-index", func(b *testing.B) {
		e := New(cat)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			drainAll(b, e, plan)
		}
	})
	b.Run("seq-scan", func(b *testing.B) {
		// A fresh catalog without the genre index forces the scan path.
		noIdx := catalog.New()
		if _, err := datagen.LoadDBLP(noIdx, datagen.Config{Scale: 0.01, Seed: 9}); err != nil {
			b.Fatal(err)
		}
		scanPlan := &algebra.Select{
			Cond:  expr.Eq("location", types.Str("Athens")),
			Input: &algebra.Scan{Table: "conferences"},
		}
		e := New(noIdx)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			drainAll(b, e, scanPlan)
		}
	})
}

// parallelBenchCatalog is a full-scale load (20k movies, ~130k cast
// rows) — large enough that each worker gets many morsels and the
// fan-out cost is amortized.
func parallelBenchCatalog(b *testing.B) *catalog.Catalog {
	b.Helper()
	cat := catalog.New()
	if _, err := datagen.LoadIMDB(cat, datagen.Config{Scale: 1.0, Seed: 9}); err != nil {
		b.Fatal(err)
	}
	return cat
}

// workerSweep is the worker lineup the parallel benchmarks report:
// sequential baseline, 2, 4, and the full machine.
func workerSweep() []int {
	sweep := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		sweep = append(sweep, n)
	}
	return sweep
}

// BenchmarkParallelPrefer sweeps worker counts over a three-deep prefer
// chain — the scan→filter→prefer segment shape the morsel executor
// fans out. Expected: near-linear scaling to 4 workers.
func BenchmarkParallelPrefer(b *testing.B) {
	cat := parallelBenchCatalog(b)
	plan := &algebra.Prefer{
		P: pref.New("short", "movies", expr.Cmp("duration", expr.OpLe, types.Int(120)), pref.Around("duration", 100), 0.6),
		Input: &algebra.Prefer{
			P: pref.New("old", "movies", expr.Cmp("year", expr.OpLe, types.Int(1980)), pref.Around("year", 1960), 0.7),
			Input: &algebra.Prefer{
				P:     pref.New("recent", "movies", expr.Cmp("year", expr.OpGe, types.Int(2000)), pref.Recency("year", 2011), 0.9),
				Input: &algebra.Scan{Table: "movies"},
			},
		},
	}
	for _, workers := range workerSweep() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := New(cat)
			e.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if drainAll(b, e, plan) == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}

// BenchmarkParallelJoin sweeps worker counts over a hash join with a
// prefer above it: partitioned build + morsel-parallel probe feeding a
// fanned-out prefer segment.
func BenchmarkParallelJoin(b *testing.B) {
	cat := parallelBenchCatalog(b)
	plan := &algebra.Prefer{
		P: pref.New("drama", "genres", expr.Eq("genre", types.Str("Drama")), pref.Recency("year", 2011), 0.8),
		Input: &algebra.Join{
			Cond:  expr.Bin{Op: expr.OpEq, L: expr.ColRef("movies.m_id"), R: expr.ColRef("genres.m_id")},
			Left:  &algebra.Scan{Table: "movies"},
			Right: &algebra.Scan{Table: "genres"},
		},
	}
	for _, workers := range workerSweep() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := New(cat)
			e.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if drainAll(b, e, plan) == 0 {
					b.Fatal("empty join")
				}
			}
		})
	}
}

// BenchmarkBatchFilterPrefer contrasts the vectorized filter→prefer
// pipeline against the row-at-a-time path across block sizes and filter
// selectivities (sequential, cache off, so the measurement isolates
// vectorization). Expected: batch wins grow as the filter keeps fewer
// rows (the fused kernel never scores filtered-out tuples and the
// per-row iterator dispatch disappears), with throughput flat once the
// block size amortizes per-batch overhead.
func BenchmarkBatchFilterPrefer(b *testing.B) {
	cat := parallelBenchCatalog(b)
	tbl, err := cat.Table("movies")
	if err != nil {
		b.Fatal(err)
	}
	total := tbl.Len()
	for _, sel := range []float64{0.01, 0.5, 0.99} {
		cut := int64(float64(total) * sel)
		plan := &algebra.Prefer{
			P: pref.New("recent", "movies", expr.Cmp("year", expr.OpGe, types.Int(2000)), pref.Recency("year", 2011), 0.9),
			Input: &algebra.Select{
				Cond:  expr.Cmp("m_id", expr.OpLe, types.Int(cut)),
				Input: &algebra.Scan{Table: "movies"},
			},
		}
		run := func(b *testing.B, mode BatchMode, size int) {
			e := New(cat)
			e.Workers = 1
			e.ScoreCache = CacheOff
			e.Batch = mode
			e.BatchSize = size
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				drainAll(b, e, plan)
			}
		}
		b.Run(fmt.Sprintf("sel=%g/rows", sel), func(b *testing.B) { run(b, BatchOff, 0) })
		for _, size := range []int{64, 256, 1024, 4096} {
			b.Run(fmt.Sprintf("sel=%g/batch=%d", sel, size), func(b *testing.B) { run(b, BatchOn, size) })
		}
	}
}

// BenchmarkAggregateCombine measures the raw pair-combination cost.
func BenchmarkAggregateCombine(b *testing.B) {
	for _, f := range []pref.Aggregate{pref.FSum{}, pref.FMax{}, pref.FMult{}} {
		b.Run(f.Name(), func(b *testing.B) {
			a, c := types.NewSC(0.7, 0.8), types.NewSC(0.4, 0.3)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a = f.Combine(a, c)
			}
			_ = a
		})
	}
}
