package exec

import (
	"testing"

	"prefdb/internal/algebra"
	"prefdb/internal/catalog"
	"prefdb/internal/datagen"
	"prefdb/internal/expr"
	"prefdb/internal/pref"
	"prefdb/internal/types"
)

func benchCatalog(b *testing.B) *catalog.Catalog {
	b.Helper()
	cat := catalog.New()
	if _, err := datagen.LoadIMDB(cat, datagen.Config{Scale: 0.1, Seed: 9}); err != nil {
		b.Fatal(err)
	}
	return cat
}

func drainAll(b *testing.B, e *Executor, plan algebra.Node) int {
	b.Helper()
	rel, err := e.Run(plan, Native)
	if err != nil {
		b.Fatal(err)
	}
	return rel.Len()
}

// BenchmarkPreferOperator measures the λ operator's per-tuple throughput.
func BenchmarkPreferOperator(b *testing.B) {
	cat := benchCatalog(b)
	e := New(cat)
	plan := &algebra.Prefer{
		P:     pref.New("p", "movies", expr.Cmp("year", expr.OpGe, types.Int(2000)), pref.Recency("year", 2011), 0.9),
		Input: &algebra.Scan{Table: "movies"},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if drainAll(b, e, plan) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkHashJoin measures the extended hash join (with SC combination).
func BenchmarkHashJoin(b *testing.B) {
	cat := benchCatalog(b)
	e := New(cat)
	plan := &algebra.Join{
		Cond:  expr.Bin{Op: expr.OpEq, L: expr.ColRef("movies.m_id"), R: expr.ColRef("genres.m_id")},
		Left:  &algebra.Scan{Table: "movies"},
		Right: &algebra.Scan{Table: "genres"},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if drainAll(b, e, plan) == 0 {
			b.Fatal("empty join")
		}
	}
}

// BenchmarkSkylineOperator measures the (score, conf) skyline sweep.
func BenchmarkSkylineOperator(b *testing.B) {
	cat := benchCatalog(b)
	e := New(cat)
	plan := &algebra.Skyline{Input: &algebra.Prefer{
		P:     pref.New("p", "movies", expr.TrueLiteral(), pref.Recency("year", 2011), 0.9),
		Input: &algebra.Scan{Table: "movies"},
	}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drainAll(b, e, plan)
	}
}

// BenchmarkIndexVsScan contrasts the two access paths for one selective
// equality condition.
func BenchmarkIndexVsScan(b *testing.B) {
	cat := benchCatalog(b)
	cond := expr.Eq("genre", types.Str("Film-Noir"))
	plan := &algebra.Select{Cond: cond, Input: &algebra.Scan{Table: "genres"}}
	b.Run("hash-index", func(b *testing.B) {
		e := New(cat)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			drainAll(b, e, plan)
		}
	})
	b.Run("seq-scan", func(b *testing.B) {
		// A fresh catalog without the genre index forces the scan path.
		noIdx := catalog.New()
		if _, err := datagen.LoadDBLP(noIdx, datagen.Config{Scale: 0.01, Seed: 9}); err != nil {
			b.Fatal(err)
		}
		scanPlan := &algebra.Select{
			Cond:  expr.Eq("location", types.Str("Athens")),
			Input: &algebra.Scan{Table: "conferences"},
		}
		e := New(noIdx)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			drainAll(b, e, scanPlan)
		}
	})
}

// BenchmarkAggregateCombine measures the raw pair-combination cost.
func BenchmarkAggregateCombine(b *testing.B) {
	for _, f := range []pref.Aggregate{pref.FSum{}, pref.FMax{}, pref.FMult{}} {
		b.Run(f.Name(), func(b *testing.B) {
			a, c := types.NewSC(0.7, 0.8), types.NewSC(0.4, 0.3)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a = f.Combine(a, c)
			}
			_ = a
		})
	}
}
