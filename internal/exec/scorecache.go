// Preference scoring cache (two levels).
//
// The prefer operator's ⟨S,C⟩ contribution for a tuple depends only on the
// tuple's projection onto the columns the preference reads
// (cond.Columns() ∪ score.Columns()): tuples that agree there get the same
// pair. When that projection has few distinct values — the GBU "group"
// observation of the paper — memoizing the contribution per distinct key
// replaces most expression evaluations with a hash lookup.
//
// Level 1 is a per-query memo (scoreMemo): each prefer operator, and in the
// morsel-parallel path each worker, owns a private bounded hash table so
// lookups take no locks. When the bound is exceeded new keys degrade to
// direct evaluation (existing entries keep serving hits).
//
// Level 2 is a cross-query dictionary (ScoreDict): the engine keeps one per
// (preference, column-set) for prepared statements and hands it to the
// executor via DictFor; workers consult it under an RWMutex on a local miss
// and publish what they compute. The engine invalidates a dictionary by
// dropping it when any referenced table's catalog version moves (see
// engine/dicts.go).
//
// Keys are canonicalized by sorting the projection columns by (name,
// ordinal), so the same preference produces the same key tuples across
// plans with different schema layouts (e.g. GBU group inputs vs FtP's wide
// R_NP) and dictionary entries are shared between them.
package exec

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"prefdb/internal/algebra"
	"prefdb/internal/debug"
	"prefdb/internal/expr"
	"prefdb/internal/pref"
	"prefdb/internal/prel"
	"prefdb/internal/schema"
	"prefdb/internal/types"
)

// CacheMode selects whether prefer operators memoize per-key ⟨S,C⟩
// contributions.
type CacheMode uint8

const (
	// CacheAuto follows the optimizer's per-operator hint (Prefer.CacheHint),
	// set when catalog statistics say ndv(attrs) ≪ |R|.
	CacheAuto CacheMode = iota
	// CacheOff disables memoization; execution is byte-identical to the
	// pre-cache engine.
	CacheOff
	// CacheOn memoizes every prefer operator regardless of the hint.
	CacheOn
)

// String implements fmt.Stringer.
func (m CacheMode) String() string {
	switch m {
	case CacheOff:
		return "off"
	case CacheOn:
		return "on"
	default:
		return "auto"
	}
}

// ParseCacheMode resolves a cache mode by name.
func ParseCacheMode(name string) (CacheMode, error) {
	switch strings.ToLower(name) {
	case "auto":
		return CacheAuto, nil
	case "off":
		return CacheOff, nil
	case "on":
		return CacheOn, nil
	default:
		return 0, fmt.Errorf("exec: unknown cache mode %q (auto, off, on)", name)
	}
}

const (
	// scoreMemoLimit bounds a per-worker level-1 memo. Beyond it new keys
	// evaluate directly; 64k entries keep the memo useful for any key set
	// the heuristic would enable caching for.
	scoreMemoLimit = 1 << 16
	// scoreDictLimit bounds a cross-query level-2 dictionary.
	scoreDictLimit = 1 << 17
)

// memoEntry is one cached key → contribution binding. has=false records
// "no contribution" (condition false, or score NULL/non-numeric), which is
// as expensive to recompute as a hit and therefore worth caching too.
type memoEntry struct {
	key []types.Value
	sc  types.SC
	has bool
}

// scoreMemo is the level-1 per-query memo. It is single-goroutine state:
// the sequential path owns one per prefer operator, the parallel path one
// per (worker, operator).
type scoreMemo struct {
	cond  *expr.Compiled
	score *expr.Compiled
	conf  float64
	// cols are the key projection ordinals, sorted canonically.
	cols []int
	// dict is the shared level-2 dictionary, or nil outside prepared runs.
	dict *ScoreDict

	buckets map[uint64][]memoEntry
	n       int
	scratch []types.Value
}

// lookupOrCompute returns the preference's contribution for the tuple's
// key, computing and caching it on a miss. The boolean reports whether a
// contribution applies (condition held and the score was numeric).
func (m *scoreMemo) lookupOrCompute(tuple []types.Value, stats *Stats) (types.SC, bool) {
	key := m.scratch[:0]
	for _, c := range m.cols {
		key = append(key, tuple[c])
	}
	m.scratch = key
	debug.SameLen("memo key vs column set", len(key), len(m.cols))
	h := types.HashTuple(key)
	for _, e := range m.buckets[h] {
		if types.TupleEqual(e.key, key) {
			stats.CacheHits++
			return e.sc, e.has
		}
	}
	if m.dict != nil {
		if e, ok := m.dict.lookup(h, key); ok {
			stats.CacheHits++
			m.insert(h, e) // adopt locally: next probe skips the lock
			return e.sc, e.has
		}
	}
	stats.CacheMisses++
	var e memoEntry
	if m.cond.Truthy(tuple) {
		stats.ScoreEvals++
		if v := m.score.Eval(tuple); !v.IsNull() && v.IsNumeric() {
			e.sc = types.NewSC(pref.Clamp01(v.AsFloat()), m.conf)
			e.has = true
		}
	}
	e.key = append([]types.Value(nil), key...)
	m.insert(h, e)
	if m.dict != nil {
		m.dict.publish(h, e)
	}
	return e.sc, e.has
}

// combineBatch is the vectorized consultation of the memo: it folds the
// memoized ⟨S,C⟩ contribution into every selected row of b, writing the
// batch's private SC column in place. Per-row it is exactly
// lookupOrCompute + Combine, so hit/miss/eval accounting matches the
// row-at-a-time preferIter.
func (m *scoreMemo) combineBatch(b *prel.Batch, agg pref.Aggregate, stats *Stats) {
	rows := b.Rows() // memo keys are tuples: columnar batches materialize here
	for _, j := range b.Sel {
		if sc, has := m.lookupOrCompute(rows[j], stats); has {
			b.SetSC(j, agg.Combine(b.SCAt(j), sc))
		}
	}
}

func (m *scoreMemo) insert(h uint64, e memoEntry) {
	if m.n >= scoreMemoLimit {
		return // degraded: existing entries keep serving hits
	}
	m.buckets[h] = append(m.buckets[h], e)
	m.n++
}

// ScoreDict is the level-2 cross-query score dictionary for one
// (preference, column-set). It is safe for concurrent use by the workers
// of any number of queries; entries are immutable once published.
type ScoreDict struct {
	mu      sync.RWMutex
	buckets map[uint64][]memoEntry
	n       int
}

// NewScoreDict returns an empty dictionary.
func NewScoreDict() *ScoreDict {
	return &ScoreDict{buckets: map[uint64][]memoEntry{}}
}

// Len returns the number of cached keys.
func (d *ScoreDict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.n
}

func (d *ScoreDict) lookup(h uint64, key []types.Value) (memoEntry, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, e := range d.buckets[h] {
		if types.TupleEqual(e.key, key) {
			return e, true
		}
	}
	return memoEntry{}, false
}

// publish inserts a computed entry unless the key is already present (two
// workers may race to compute the same key; both compute the same value,
// the first insert wins) or the dictionary is full.
func (d *ScoreDict) publish(h uint64, e memoEntry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.n >= scoreDictLimit {
		return
	}
	for _, old := range d.buckets[h] {
		if types.TupleEqual(old.key, e.key) {
			return
		}
	}
	d.buckets[h] = append(d.buckets[h], e)
	d.n++
}

// scoreCacheOn resolves the executor's cache mode against a prefer
// operator's optimizer hint.
func (e *Executor) scoreCacheOn(p *algebra.Prefer) bool {
	switch e.ScoreCache {
	case CacheOff:
		return false
	case CacheOn:
		return true
	default:
		return p.CacheHint
	}
}

// newScoreMemo builds a level-1 memo for one prefer operator compiled
// against s, attaching the engine's level-2 dictionary when DictFor is set.
func (e *Executor) newScoreMemo(cond, score *expr.Compiled, p pref.Preference, s *schema.Schema) *scoreMemo {
	cols, names := scoreCacheKey(cond, score, s)
	m := &scoreMemo{
		cond:    cond,
		score:   score,
		conf:    p.Conf,
		cols:    cols,
		buckets: map[uint64][]memoEntry{},
		scratch: make([]types.Value, 0, len(cols)),
	}
	if e.DictFor != nil {
		m.dict = e.DictFor(p, names)
	}
	return m
}

// scoreCacheKey derives the canonical key projection for a compiled
// preference: the deduplicated union of the condition's and score's column
// ordinals, sorted by (column name, ordinal) so the key layout — and hence
// dictionary entries — is stable across schemas that arrange the same
// attributes differently.
func scoreCacheKey(cond, score *expr.Compiled, s *schema.Schema) ([]int, []string) {
	seen := map[int]bool{}
	var ords []int
	for _, set := range [][]int{cond.Columns(), score.Columns()} {
		for _, c := range set {
			if !seen[c] {
				seen[c] = true
				ords = append(ords, c)
			}
		}
	}
	names := make([]string, len(ords))
	for i, o := range ords {
		names[i] = s.Columns[o].Name
	}
	sort.Sort(&keyByName{ords: ords, names: names})
	return ords, names
}

type keyByName struct {
	ords  []int
	names []string
}

func (k *keyByName) Len() int { return len(k.ords) }
func (k *keyByName) Less(i, j int) bool {
	if k.names[i] != k.names[j] {
		return k.names[i] < k.names[j]
	}
	return k.ords[i] < k.ords[j]
}
func (k *keyByName) Swap(i, j int) {
	k.ords[i], k.ords[j] = k.ords[j], k.ords[i]
	k.names[i], k.names[j] = k.names[j], k.names[i]
}
