// Streaming execution: RowStream exposes one query execution as a pull
// iterator instead of a materialized p-relation, so a consumer (the
// network server's result-batch writer, a shell printing rows) can
// forward rows as they are produced without holding the whole result.
//
// Stats parity: a fully drained stream leaves the executor's Stats
// byte-identical to RunContext for the same plan and strategy. The Native
// strategy streams its single pipeline end-to-end — the result relation
// is never built — while mirroring drain's accounting (the native call,
// per-row materialization counters, the amortized guard meter, the
// prefer-root R_P counting rule). The materializing strategies (BU, GBU,
// FtP) run to completion first — materialization boundaries are their
// semantics — and stream the final relation, which costs no extra copy.
package exec

import (
	"context"
	"fmt"

	"prefdb/internal/algebra"
	"prefdb/internal/prel"
	"prefdb/internal/schema"
)

// RowStream is a pull-based result stream over one strategy execution.
// Not safe for concurrent use. The Row returned by Row is valid only
// until the next call to Next (batch and arena storage is reused);
// consumers that keep rows must copy the tuple out.
type RowStream struct {
	e   *Executor
	sch *schema.Schema

	// Exactly one source is active: rows for pre-materialized strategies,
	// it for the native row path, bi for the native batch path.
	rows []prel.Row
	pos  int
	it   iter
	bi   batchIter
	b    *prel.Batch
	bpos int

	// native marks a stream that owns drain-style accounting; the
	// materializing strategies already accounted everything in Stats.
	native     bool
	preferRoot bool
	meter      matTick

	streamed int
	scored   int

	cur  prel.Row
	err  error
	done bool
}

// StreamContext starts a streaming evaluation of plan with the chosen
// strategy under ctx and the executor's Limits; it is the streaming
// sibling of RunContext with the same lifecycle and error contract.
// The caller must drain the stream (Next until false) or Close it, then
// check Err; a fully drained stream leaves Stats identical to RunContext.
func (e *Executor) StreamContext(ctx context.Context, plan algebra.Node, strategy Strategy) (*RowStream, error) {
	e.arm(ctx, e.Limits)
	if plan == nil {
		return nil, fmt.Errorf("exec: nil plan")
	}
	if strategy != Native {
		rel, err := e.runStrategy(plan, strategy)
		if gErr := e.GuardErr(); gErr != nil {
			return nil, gErr
		}
		if err != nil {
			return nil, err
		}
		return &RowStream{e: e, sch: rel.Schema, rows: rel.Rows}, nil
	}

	// Mirror Materialize → drain for the Native strategy, but hand the
	// pipeline to the caller instead of exhausting it here.
	if err := e.gd.poll(); err != nil {
		return nil, e.guardOr(err)
	}
	e.stats.NativeCalls++
	_, preferRoot := plan.(*algebra.Prefer)
	s := &RowStream{e: e, native: true, preferRoot: preferRoot}
	if e.batchOK() {
		bi, sch, err := e.buildBatch(plan)
		if err != nil {
			return nil, err
		}
		s.bi, s.sch = bi, sch
	} else {
		it, sch, err := e.build(plan)
		if err != nil {
			return nil, err
		}
		s.it, s.sch = it, sch
	}
	s.meter = matTick{g: e.gd, width: s.sch.Len() + 2}
	return s, nil
}

// guardOr returns the stats-filled guard error if the guard tripped, or
// err unchanged.
func (e *Executor) guardOr(err error) error {
	if gErr := e.GuardErr(); gErr != nil {
		return gErr
	}
	return err
}

// Schema returns the stream's result schema.
func (s *RowStream) Schema() *schema.Schema { return s.sch }

// Next advances to the next row, reporting false at exhaustion or
// failure; check Err after the loop. On the native path it meters
// materialization against the lifecycle guard exactly like RunContext.
func (s *RowStream) Next() bool {
	if s.done || s.err != nil {
		return false
	}
	row, ok := s.pull()
	if !ok {
		if s.err == nil {
			s.finish()
		}
		return false
	}
	s.cur = row
	if s.native {
		s.streamed++
		if !row.SC.IsBottom() {
			s.scored++
		}
	}
	return true
}

// pull fetches one row from whichever source feeds the stream.
func (s *RowStream) pull() (prel.Row, bool) {
	switch {
	case s.rows != nil:
		if s.pos >= len(s.rows) {
			return prel.Row{}, false
		}
		row := s.rows[s.pos]
		s.pos++
		return row, true
	case s.bi != nil:
		for s.b == nil || s.bpos >= s.b.Live() {
			b, ok := s.bi.nextBatch()
			if !ok {
				return prel.Row{}, false
			}
			s.e.stats.Batches++
			if b.Columnar() {
				s.e.stats.RowsMaterialized += b.Live()
			}
			// Charge the whole batch when it arrives — the same amortized
			// pattern drainPipeline uses — so guard trip points match the
			// materialized path.
			if gErr := s.meter.rows(b.Live()); gErr != nil {
				s.fail(gErr)
				return prel.Row{}, false
			}
			s.b, s.bpos = b, 0
		}
		row := s.b.Row(s.bpos)
		s.bpos++
		return row, true
	default:
		row, ok := s.it.next()
		if !ok {
			return prel.Row{}, false
		}
		if gErr := s.meter.row(); gErr != nil {
			s.fail(gErr)
			return prel.Row{}, false
		}
		return row, true
	}
}

// finish settles accounting at exhaustion, mirroring drain: flush the
// guard meter, surface a mid-stream trip (inner iterators stop yielding
// rather than erroring), then fold the streamed rows into Stats under the
// prefer-root R_P rule.
func (s *RowStream) finish() {
	s.done = true
	if !s.native {
		return
	}
	if gErr := s.meter.flush(); gErr != nil {
		s.fail(gErr)
		return
	}
	if gErr := s.e.gd.poll(); gErr != nil {
		s.fail(gErr)
		return
	}
	if s.preferRoot {
		// R_P rows are (pk, score, conf) triples regardless of width.
		s.e.stats.TuplesMaterialized += s.scored
		s.e.stats.CellsMaterialized += s.scored * 3
	} else {
		s.e.stats.TuplesMaterialized += s.streamed
		s.e.stats.CellsMaterialized += s.streamed * (s.sch.Len() + 2)
	}
	s.e.stats.ScoreRelationRows += s.scored
}

// fail records the stream failure with the executor's Stats filled in.
func (s *RowStream) fail(err error) {
	s.done = true
	s.err = s.e.guardOr(err)
}

// Row returns the current row; valid only until the next call to Next.
func (s *RowStream) Row() prel.Row { return s.cur }

// Err returns the failure that terminated the stream, nil after a clean
// drain. Lifecycle trips surface as *GuardError exactly as in RunContext.
func (s *RowStream) Err() error { return s.err }

// Close stops the stream early. No goroutines outlive the stream — the
// morsel pool joins inside every pull — so Close only marks the stream
// exhausted; Stats of a stream closed before exhaustion reflect the rows
// actually streamed. Close is idempotent and returns Err.
func (s *RowStream) Close() error {
	s.done = true
	return s.err
}
