package exec

import (
	"math"
	"testing"

	"prefdb/internal/algebra"
	"prefdb/internal/catalog"
	"prefdb/internal/expr"
	"prefdb/internal/pref"
	"prefdb/internal/prel"
	"prefdb/internal/schema"
	"prefdb/internal/types"
)

// movieDB builds the running example of the paper (Fig. 1 / Fig. 3):
// MOVIES, DIRECTORS, GENRES, RATINGS with the five movies of Fig. 3(a).
func movieDB(t testing.TB) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	movies := schema.New(
		schema.Column{Name: "m_id", Kind: types.KindInt},
		schema.Column{Name: "title", Kind: types.KindString},
		schema.Column{Name: "year", Kind: types.KindInt},
		schema.Column{Name: "duration", Kind: types.KindInt},
		schema.Column{Name: "d_id", Kind: types.KindInt},
	).WithKey("m_id")
	directors := schema.New(
		schema.Column{Name: "d_id", Kind: types.KindInt},
		schema.Column{Name: "director", Kind: types.KindString},
	).WithKey("d_id")
	genres := schema.New(
		schema.Column{Name: "m_id", Kind: types.KindInt},
		schema.Column{Name: "genre", Kind: types.KindString},
	).WithKey("m_id", "genre")
	ratings := schema.New(
		schema.Column{Name: "m_id", Kind: types.KindInt},
		schema.Column{Name: "rating", Kind: types.KindFloat},
		schema.Column{Name: "votes", Kind: types.KindInt},
	).WithKey("m_id")

	mt, _ := c.CreateTable("movies", movies)
	dt, _ := c.CreateTable("directors", directors)
	gt, _ := c.CreateTable("genres", genres)
	rt, _ := c.CreateTable("ratings", ratings)

	type m struct {
		id       int64
		title    string
		year     int64
		duration int64
		dID      int64
	}
	for _, r := range []m{
		{1, "Gran Torino", 2008, 116, 1},
		{2, "Wall Street", 1987, 126, 3},
		{3, "Million Dollar Baby", 2004, 132, 1},
		{4, "Match Point", 2005, 124, 2},
		{5, "Scoop", 2006, 96, 2},
	} {
		if err := mt.Insert([]types.Value{types.Int(r.id), types.Str(r.title), types.Int(r.year), types.Int(r.duration), types.Int(r.dID)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []struct {
		id   int64
		name string
	}{{1, "C. Eastwood"}, {2, "W. Allen"}, {3, "O. Stone"}} {
		if err := dt.Insert([]types.Value{types.Int(r.id), types.Str(r.name)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []struct {
		id    int64
		genre string
	}{
		{1, "Drama"}, {2, "Drama"}, {3, "Drama"}, {3, "Sport"},
		{4, "Thriller"}, {4, "Comedy"}, {5, "Comedy"},
	} {
		if err := gt.Insert([]types.Value{types.Int(r.id), types.Str(r.genre)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []struct {
		id     int64
		rating float64
		votes  int64
	}{{1, 8.2, 900}, {2, 7.4, 600}, {3, 8.1, 1200}, {4, 7.7, 400}, {5, 6.8, 300}} {
		if err := rt.Insert([]types.Value{types.Int(r.id), types.Float(r.rating), types.Int(r.votes)}); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func run(t *testing.T, e *Executor, plan algebra.Node) *prel.PRelation {
	t.Helper()
	rel, err := e.Run(plan, Native)
	if err != nil {
		t.Fatalf("run %s: %v", plan, err)
	}
	return rel
}

func scoreOf(t *testing.T, rel *prel.PRelation, keyCol string, key int64) types.SC {
	t.Helper()
	idx := rel.Schema.MustIndexOf(keyCol)
	for _, row := range rel.Rows {
		if row.Tuple[idx].Kind() == types.KindInt && row.Tuple[idx].AsInt() == key {
			return row.SC
		}
	}
	t.Fatalf("key %d not found in relation", key)
	return types.SC{}
}

func TestScanDefaults(t *testing.T) {
	e := New(movieDB(t))
	rel := run(t, e, &algebra.Scan{Table: "movies"})
	if rel.Len() != 5 {
		t.Fatalf("rows = %d", rel.Len())
	}
	for _, row := range rel.Rows {
		if !row.SC.IsBottom() {
			t.Errorf("base tuples must default to ⟨⊥,0⟩, got %v", row.SC)
		}
	}
	if e.Stats().RowsScanned != 5 {
		t.Errorf("RowsScanned = %d", e.Stats().RowsScanned)
	}
}

func TestSelectAndProject(t *testing.T) {
	e := New(movieDB(t))
	plan := &algebra.Project{
		Cols: []expr.Col{expr.ColRef("title")},
		Input: &algebra.Select{
			Cond:  expr.Cmp("year", expr.OpGe, types.Int(2005)),
			Input: &algebra.Scan{Table: "movies"},
		},
	}
	rel := run(t, e, plan)
	if rel.Len() != 3 {
		t.Fatalf("rows = %d", rel.Len())
	}
	if rel.Schema.Len() != 1 {
		t.Errorf("projected width = %d", rel.Schema.Len())
	}
}

func TestIndexPaths(t *testing.T) {
	c := movieDB(t)
	if err := c.CreateHashIndex("genres", "genre"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateBTreeIndex("movies", "year"); err != nil {
		t.Fatal(err)
	}
	e := New(c)
	// Hash-index equality.
	rel := run(t, e, &algebra.Select{
		Cond:  expr.Eq("genre", types.Str("Comedy")),
		Input: &algebra.Scan{Table: "genres"},
	})
	if rel.Len() != 2 {
		t.Fatalf("Comedy rows = %d", rel.Len())
	}
	if e.Stats().IndexProbes != 1 {
		t.Errorf("IndexProbes = %d", e.Stats().IndexProbes)
	}
	if e.Stats().RowsScanned != 2 {
		t.Errorf("index path RowsScanned = %d, want 2", e.Stats().RowsScanned)
	}
	// B-tree range + residual conjunct.
	e.ResetStats()
	rel = run(t, e, &algebra.Select{
		Cond: expr.Bin{Op: expr.OpAnd,
			L: expr.Cmp("year", expr.OpGe, types.Int(2005)),
			R: expr.Cmp("duration", expr.OpLt, types.Int(120))},
		Input: &algebra.Scan{Table: "movies"},
	})
	// year ≥ 2005 ∧ duration < 120: Gran Torino (116) and Scoop (96).
	if rel.Len() != 2 {
		t.Fatalf("range+residual = %v", rel)
	}
	if e.Stats().IndexProbes != 1 {
		t.Errorf("IndexProbes = %d", e.Stats().IndexProbes)
	}
	// BETWEEN uses the btree too.
	e.ResetStats()
	rel = run(t, e, &algebra.Select{
		Cond:  expr.Between{X: expr.ColRef("year"), Lo: expr.Lit{Val: types.Int(2004)}, Hi: expr.Lit{Val: types.Int(2006)}},
		Input: &algebra.Scan{Table: "movies"},
	})
	if rel.Len() != 3 {
		t.Fatalf("between rows = %d", rel.Len())
	}
	if e.Stats().IndexProbes != 1 {
		t.Errorf("between IndexProbes = %d", e.Stats().IndexProbes)
	}
	// Flipped literal-first comparison also uses the index.
	e.ResetStats()
	rel = run(t, e, &algebra.Select{
		Cond:  expr.Bin{Op: expr.OpGt, L: expr.Lit{Val: types.Int(2006)}, R: expr.ColRef("year")},
		Input: &algebra.Scan{Table: "movies"},
	})
	if rel.Len() != 3 {
		t.Fatalf("flipped rows = %d", rel.Len())
	}
	if e.Stats().IndexProbes != 1 {
		t.Errorf("flipped IndexProbes = %d", e.Stats().IndexProbes)
	}
}

// TestPreferExample8 reproduces Example 8: p_a = (σ_year≥2000,
// S_m(year,2011), 1) and p_b = (σ_duration≤120, S_d(duration,120), 0.5).
func TestPreferExample8(t *testing.T) {
	e := New(movieDB(t))
	pa := pref.New("pa", "movies",
		expr.Cmp("year", expr.OpGe, types.Int(2000)),
		pref.Recency("year", 2011), 1)
	pb := pref.New("pb", "movies",
		expr.Cmp("duration", expr.OpLe, types.Int(120)),
		pref.Around("duration", 120), 0.5)

	rel := run(t, e, &algebra.Prefer{P: pa, Input: &algebra.Scan{Table: "movies"}})
	// Gran Torino (2008): scored 2008/2011 with conf 1.
	sc := scoreOf(t, rel, "m_id", 1)
	if !sc.Known || math.Abs(sc.Score-2008.0/2011.0) > 1e-9 || sc.Conf != 1 {
		t.Errorf("λ_pa Gran Torino = %v", sc)
	}
	// Wall Street (1987): condition fails, stays ⊥.
	if !scoreOf(t, rel, "m_id", 2).IsBottom() {
		t.Errorf("λ_pa Wall Street should stay ⊥")
	}

	rel2 := run(t, e, &algebra.Prefer{P: pb, Input: &algebra.Prefer{P: pa, Input: &algebra.Scan{Table: "movies"}}})
	// Gran Torino: duration 116 ≤ 120 → second pair ⟨1−4/120, 0.5⟩ combined
	// with first via F_S.
	got := scoreOf(t, rel2, "m_id", 1)
	first := types.NewSC(2008.0/2011.0, 1)
	second := types.NewSC(1-4.0/120.0, 0.5)
	want := (pref.FSum{}).Combine(first, second)
	if !got.ApproxEqual(want, 1e-9) {
		t.Errorf("λ_pb λ_pa Gran Torino = %v, want %v", got, want)
	}
	// Million Dollar Baby (132 min): only pa applies.
	got3 := scoreOf(t, rel2, "m_id", 3)
	want3 := types.NewSC(2004.0/2011.0, 1)
	if !got3.ApproxEqual(want3, 1e-9) {
		t.Errorf("MDB = %v, want %v", got3, want3)
	}
	if e.Stats().PreferEvals == 0 {
		t.Error("PreferEvals not counted")
	}
}

func TestPreferNullScoreLeavesUnchanged(t *testing.T) {
	c := catalog.New()
	s := schema.New(
		schema.Column{Name: "id", Kind: types.KindInt},
		schema.Column{Name: "x", Kind: types.KindFloat},
	).WithKey("id")
	tbl, _ := c.CreateTable("t", s)
	tbl.Insert([]types.Value{types.Int(1), types.Null()})
	tbl.Insert([]types.Value{types.Int(2), types.Float(0.4)})
	e := New(c)
	p := pref.New("p", "t", expr.TrueLiteral(), pref.Linear("x", 1), 0.9)
	rel := run(t, e, &algebra.Prefer{P: p, Input: &algebra.Scan{Table: "t"}})
	if !scoreOf(t, rel, "id", 1).IsBottom() {
		t.Error("NULL score must leave the pair at ⊥")
	}
	got := scoreOf(t, rel, "id", 2)
	if !got.ApproxEqual(types.NewSC(0.4, 0.9), 1e-9) {
		t.Errorf("scored row = %v", got)
	}
}

func TestPreferClampsLiteralScores(t *testing.T) {
	e := New(movieDB(t))
	p := pref.New("p", "movies", expr.TrueLiteral(), expr.Lit{Val: types.Float(7.5)}, 1)
	rel := run(t, e, &algebra.Prefer{P: p, Input: &algebra.Scan{Table: "movies"}})
	if got := scoreOf(t, rel, "m_id", 1); got.Score != 1 {
		t.Errorf("score should clamp to 1, got %v", got)
	}
}

// TestJoinCombinesSC mirrors Fig. 3(c): joining pre-scored p-relations
// combines pairs with F.
func TestJoinCombinesSC(t *testing.T) {
	mSchema := schema.New(
		schema.Column{Table: "m", Name: "m_id", Kind: types.KindInt},
		schema.Column{Table: "m", Name: "d_id", Kind: types.KindInt},
	).WithKey("m_id")
	dSchema := schema.New(
		schema.Column{Table: "d", Name: "d_id", Kind: types.KindInt},
		schema.Column{Table: "d", Name: "director", Kind: types.KindString},
	).WithKey("d_id")
	m := prel.New(mSchema)
	m.Append(prel.Row{Tuple: []types.Value{types.Int(1), types.Int(10)}, SC: types.NewSC(0.9, 1)})
	m.Append(prel.Row{Tuple: []types.Value{types.Int(2), types.Int(20)}, SC: types.Bottom()})
	d := prel.New(dSchema)
	d.Append(prel.Row{Tuple: []types.Value{types.Int(10), types.Str("Eastwood")}, SC: types.NewSC(0.8, 1)})
	d.Append(prel.Row{Tuple: []types.Value{types.Int(20), types.Str("Allen")}, SC: types.NewSC(0.9, 0.9)})

	e := New(catalog.New())
	plan := &algebra.Join{
		Cond:  expr.Bin{Op: expr.OpEq, L: expr.ColRef("m.d_id"), R: expr.ColRef("d.d_id")},
		Left:  &algebra.Values{Rel: m},
		Right: &algebra.Values{Rel: d},
	}
	rel := run(t, e, plan)
	if rel.Len() != 2 {
		t.Fatalf("join rows = %d", rel.Len())
	}
	got1 := scoreOf(t, rel, "m.m_id", 1)
	want1 := (pref.FSum{}).Combine(types.NewSC(0.9, 1), types.NewSC(0.8, 1))
	if !got1.ApproxEqual(want1, 1e-9) {
		t.Errorf("joined SC = %v, want %v", got1, want1)
	}
	// ⊥ ⋈ known = known (identity).
	got2 := scoreOf(t, rel, "m.m_id", 2)
	if !got2.ApproxEqual(types.NewSC(0.9, 0.9), 1e-9) {
		t.Errorf("⊥-side join SC = %v", got2)
	}
}

func TestNestedLoopJoin(t *testing.T) {
	e := New(movieDB(t))
	// Non-equi join: movies before a director's other movies (theta join).
	plan := &algebra.Join{
		Cond: expr.Bin{Op: expr.OpLt, L: expr.ColRef("a.year"), R: expr.ColRef("b.year")},
		Left: &algebra.Scan{Table: "movies", Alias: "a"}, Right: &algebra.Scan{Table: "movies", Alias: "b"},
	}
	rel := run(t, e, plan)
	// 5 movies with distinct years: C(5,2) = 10 ordered pairs.
	if rel.Len() != 10 {
		t.Fatalf("theta join rows = %d, want 10", rel.Len())
	}
}

func TestJoinResidualCondition(t *testing.T) {
	e := New(movieDB(t))
	plan := &algebra.Join{
		Cond: expr.Bin{Op: expr.OpAnd,
			L: expr.Bin{Op: expr.OpEq, L: expr.ColRef("movies.d_id"), R: expr.ColRef("directors.d_id")},
			R: expr.Cmp("year", expr.OpGe, types.Int(2005))},
		Left: &algebra.Scan{Table: "movies"}, Right: &algebra.Scan{Table: "directors"},
	}
	rel := run(t, e, plan)
	if rel.Len() != 3 {
		t.Fatalf("join w/ residual rows = %d, want 3", rel.Len())
	}
}

func TestSetOperations(t *testing.T) {
	e := New(movieDB(t))
	recent := &algebra.Project{Cols: []expr.Col{expr.ColRef("m_id")}, Input: &algebra.Select{
		Cond: expr.Cmp("year", expr.OpGe, types.Int(2005)), Input: &algebra.Scan{Table: "movies"}}}
	short := &algebra.Project{Cols: []expr.Col{expr.ColRef("m_id")}, Input: &algebra.Select{
		Cond: expr.Cmp("duration", expr.OpLe, types.Int(120)), Input: &algebra.Scan{Table: "movies"}}}
	// recent = {1,4,5}, short = {1,5}.
	union := run(t, e, &algebra.Set{Op: algebra.SetUnion, Left: recent, Right: short})
	if union.Len() != 3 {
		t.Errorf("union = %d rows", union.Len())
	}
	inter := run(t, e, &algebra.Set{Op: algebra.SetIntersect, Left: recent, Right: short})
	if inter.Len() != 2 {
		t.Errorf("intersect = %d rows", inter.Len())
	}
	diff := run(t, e, &algebra.Set{Op: algebra.SetDiff, Left: recent, Right: short})
	if diff.Len() != 1 || diff.Rows[0].Tuple[0].AsInt() != 4 {
		t.Errorf("diff = %v", diff.Rows)
	}
	// Incompatible layouts error.
	bad := &algebra.Set{Op: algebra.SetUnion, Left: &algebra.Scan{Table: "movies"}, Right: &algebra.Scan{Table: "directors"}}
	if _, err := e.Run(bad, Native); err == nil {
		t.Error("incompatible union should fail")
	}
}

func TestUnionCombinesScores(t *testing.T) {
	s := schema.New(schema.Column{Name: "id", Kind: types.KindInt}).WithKey("id")
	a := prel.New(s)
	a.Append(prel.Row{Tuple: []types.Value{types.Int(1)}, SC: types.NewSC(1, 1)})
	b := prel.New(s)
	b.Append(prel.Row{Tuple: []types.Value{types.Int(1)}, SC: types.NewSC(0, 1)})
	b.Append(prel.Row{Tuple: []types.Value{types.Int(2)}, SC: types.NewSC(0.5, 0.5)})
	e := New(catalog.New())
	rel := run(t, e, &algebra.Set{Op: algebra.SetUnion, Left: &algebra.Values{Rel: a}, Right: &algebra.Values{Rel: b}})
	if rel.Len() != 2 {
		t.Fatalf("union rows = %d", rel.Len())
	}
	got := scoreOf(t, rel, "id", 1)
	if !got.ApproxEqual(types.NewSC(0.5, 2), 1e-9) {
		t.Errorf("combined duplicate = %v", got)
	}
	got2 := scoreOf(t, rel, "id", 2)
	if !got2.ApproxEqual(types.NewSC(0.5, 0.5), 1e-9) {
		t.Errorf("right-only tuple = %v", got2)
	}
}

func TestFilteringOperators(t *testing.T) {
	e := New(movieDB(t))
	p := pref.New("p", "movies", expr.Cmp("year", expr.OpGe, types.Int(2000)), pref.Recency("year", 2011), 1)
	base := &algebra.Prefer{P: p, Input: &algebra.Scan{Table: "movies"}}

	top2 := run(t, e, &algebra.TopK{K: 2, By: algebra.ByScore, Input: base})
	if top2.Len() != 2 {
		t.Fatalf("top2 = %d rows", top2.Len())
	}
	// Highest score = most recent = Gran Torino (2008), then Scoop (2006).
	if top2.Rows[0].Tuple[0].AsInt() != 1 || top2.Rows[1].Tuple[0].AsInt() != 5 {
		t.Errorf("top2 order = %v, %v", top2.Rows[0].Tuple, top2.Rows[1].Tuple)
	}
	// k larger than input.
	topAll := run(t, e, &algebra.TopK{K: 100, By: algebra.ByScore, Input: base})
	if topAll.Len() != 5 {
		t.Errorf("top100 = %d rows", topAll.Len())
	}
	// Confidence threshold: 4 movies qualify (conf 1), Wall Street has 0.
	thr := run(t, e, &algebra.Threshold{By: algebra.ByConf, Op: expr.OpGe, Value: 0.5, Input: base})
	if thr.Len() != 4 {
		t.Errorf("conf threshold = %d rows", thr.Len())
	}
	// Score threshold drops ⊥ rows by definition.
	sThr := run(t, e, &algebra.Threshold{By: algebra.ByScore, Op: expr.OpGe, Value: 0, Input: base})
	if sThr.Len() != 4 {
		t.Errorf("score threshold = %d rows (⊥ must not pass)", sThr.Len())
	}
	// Rank returns everything ordered.
	rank := run(t, e, &algebra.Rank{By: algebra.ByScore, Input: base})
	if rank.Len() != 5 {
		t.Errorf("rank = %d rows", rank.Len())
	}
	for i := 1; i < 4; i++ {
		if rank.Rows[i-1].SC.Score < rank.Rows[i].SC.Score {
			t.Errorf("rank order violated at %d", i)
		}
	}
	if rank.Rows[4].SC.Known {
		t.Error("⊥ rows must rank last")
	}
}

func TestSkyline(t *testing.T) {
	s := schema.New(schema.Column{Name: "id", Kind: types.KindInt}).WithKey("id")
	rel := prel.New(s)
	add := func(id int64, sc types.SC) {
		rel.Append(prel.Row{Tuple: []types.Value{types.Int(id)}, SC: sc})
	}
	add(1, types.NewSC(0.9, 0.2)) // skyline
	add(2, types.NewSC(0.5, 0.5)) // skyline
	add(3, types.NewSC(0.4, 0.4)) // dominated by 2
	add(4, types.NewSC(0.2, 0.9)) // skyline
	add(5, types.NewSC(0.5, 0.5)) // tie with 2: both survive
	add(6, types.Bottom())        // dominated by any known
	e := New(catalog.New())
	out := run(t, e, &algebra.Skyline{Input: &algebra.Values{Rel: rel}})
	ids := map[int64]bool{}
	for _, r := range out.Rows {
		ids[r.Tuple[0].AsInt()] = true
	}
	if len(ids) != 4 || !ids[1] || !ids[2] || !ids[4] || !ids[5] {
		t.Errorf("skyline ids = %v", ids)
	}
}

func TestSkylineAgainstBruteForce(t *testing.T) {
	// Property-style: the sweep matches the O(n²) definition.
	s := schema.New(schema.Column{Name: "id", Kind: types.KindInt})
	seeds := [][]types.SC{
		{types.NewSC(0.1, 0.1), types.NewSC(0.1, 0.1)},
		{types.Bottom(), types.Bottom()},
		{types.NewSC(1, 1), types.NewSC(0, 0), types.Bottom()},
	}
	// Add a pseudo-random batch.
	rng := []float64{0.13, 0.87, 0.44, 0.99, 0.31, 0.62, 0.05, 0.71, 0.44, 0.31}
	var batch []types.SC
	for i := 0; i < len(rng); i++ {
		batch = append(batch, types.NewSC(rng[i], rng[(i+3)%len(rng)]))
	}
	seeds = append(seeds, batch)
	for _, scs := range seeds {
		rel := prel.New(s)
		for i, sc := range scs {
			rel.Append(prel.Row{Tuple: []types.Value{types.Int(int64(i))}, SC: sc})
		}
		e := New(catalog.New())
		got := run(t, e, &algebra.Skyline{Input: &algebra.Values{Rel: rel}})
		want := map[int64]bool{}
		for i, sc := range scs {
			dominated := false
			for _, other := range scs {
				if other.Dominates(sc) {
					dominated = true
					break
				}
			}
			if !dominated {
				want[int64(i)] = true
			}
		}
		gotIDs := map[int64]bool{}
		for _, r := range got.Rows {
			gotIDs[r.Tuple[0].AsInt()] = true
		}
		if len(gotIDs) != len(want) {
			t.Fatalf("skyline = %v, want %v (input %v)", gotIDs, want, scs)
		}
		for id := range want {
			if !gotIDs[id] {
				t.Fatalf("missing %d: skyline = %v, want %v", id, gotIDs, want)
			}
		}
	}
}

func TestFlipCmpAllOps(t *testing.T) {
	// 2006 < year, 2006 <= year, 2006 > year, 2006 >= year all take the
	// index path with flipped bounds.
	c := movieDB(t)
	if err := c.CreateBTreeIndex("movies", "year"); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		op   expr.Op
		want int
	}{
		{expr.OpLt, 1}, // 2006 < year: {2008}
		{expr.OpLe, 2}, // 2006 <= year: {2006, 2008}
		{expr.OpGt, 3}, // 2006 > year: {1987, 2004, 2005}
		{expr.OpGe, 4}, // 2006 >= year
	}
	for _, tc := range cases {
		e := New(c)
		rel, err := e.Run(&algebra.Select{
			Cond:  expr.Bin{Op: tc.op, L: expr.Lit{Val: types.Int(2006)}, R: expr.ColRef("year")},
			Input: &algebra.Scan{Table: "movies"},
		}, Native)
		if err != nil {
			t.Fatal(err)
		}
		if rel.Len() != tc.want {
			t.Errorf("2006 %v year: %d rows, want %d", tc.op, rel.Len(), tc.want)
		}
		if e.Stats().IndexProbes != 1 {
			t.Errorf("2006 %v year: probes = %d", tc.op, e.Stats().IndexProbes)
		}
	}
}

func TestEvaluateDoesNotCountNativeCall(t *testing.T) {
	e := New(movieDB(t))
	if _, err := e.Evaluate(&algebra.Scan{Table: "movies"}); err != nil {
		t.Fatal(err)
	}
	if e.Stats().NativeCalls != 0 {
		t.Errorf("Evaluate counted a native call: %d", e.Stats().NativeCalls)
	}
	if e.Stats().TuplesMaterialized == 0 {
		t.Error("Evaluate should still count materialization")
	}
}
