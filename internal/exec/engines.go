package exec

import (
	"context"
	"fmt"
	"strings"

	"prefdb/internal/algebra"
	"prefdb/internal/prel"
)

// Strategy selects the query evaluation algorithm (§VI-B).
type Strategy uint8

const (
	// Native runs the whole extended plan as one pipelined execution —
	// what a fully native engine (à la RankSQL) would do. It serves as the
	// correctness reference and the lower bound on materialization.
	Native Strategy = iota
	// BU (Bottom-Up) executes every operator separately in postorder,
	// materializing each intermediate result — the paper's greedy baseline,
	// superseded by GBU.
	BU
	// GBU (Group Bottom-Up) defers prefer-free operator groups and executes
	// each group as a single query delegated to the native engine,
	// materializing only at prefer (and filtering) boundaries — Alg. 2.
	GBU
	// FtP (Filter-then-Prefer) executes the non-preference query part
	// natively first, then evaluates all prefer operators on its result,
	// then filters — Alg. 1.
	FtP
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Native:
		return "native"
	case BU:
		return "bu"
	case GBU:
		return "gbu"
	case FtP:
		return "ftp"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// ParseStrategy resolves a strategy by name.
func ParseStrategy(name string) (Strategy, error) {
	switch strings.ToLower(name) {
	case "native":
		return Native, nil
	case "bu", "bottom-up":
		return BU, nil
	case "gbu", "group-bottom-up":
		return GBU, nil
	case "ftp", "filter-then-prefer":
		return FtP, nil
	default:
		return 0, fmt.Errorf("exec: unknown strategy %q (native, bu, gbu, ftp)", name)
	}
}

// Strategies lists all strategies in presentation order.
func Strategies() []Strategy { return []Strategy{Native, BU, GBU, FtP} }

// Run evaluates a plan with the chosen strategy. Counters accumulate into
// the executor's Stats (reset them between runs to isolate measurements).
//
// All four strategies share the executor's materialization machinery
// (Materialize / drain), so with Workers != 1 each one fans its hot
// pipeline segments — filter/prefer chains, hash-join build and probe,
// top-k selection — across the morsel-driven worker pool (parallel.go):
// Native parallelizes inside its single pipeline, BU and GBU inside each
// operator-at-a-time / per-group drain, and FtP inside the native Q_NP
// execution and each prefer pass over R_NP.
func (e *Executor) Run(plan algebra.Node, strategy Strategy) (*prel.PRelation, error) {
	return e.RunContext(context.Background(), plan, strategy)
}

// RunContext evaluates a plan with the chosen strategy under ctx and the
// executor's Limits. Cancellation, deadline expiry and budget trips abort
// the run cooperatively (see lifecycle.go) and return a *GuardError
// matching ErrCanceled, ErrDeadlineExceeded or ErrResourceExhausted via
// errors.Is; the error carries the Stats at failure. When nothing trips,
// results, order and Stats are identical to an unguarded Run.
func (e *Executor) RunContext(ctx context.Context, plan algebra.Node, strategy Strategy) (*prel.PRelation, error) {
	e.arm(ctx, e.Limits)
	rel, err := e.runStrategy(plan, strategy)
	if gErr := e.GuardErr(); gErr != nil {
		return nil, gErr
	}
	return rel, err
}

func (e *Executor) runStrategy(plan algebra.Node, strategy Strategy) (*prel.PRelation, error) {
	if plan == nil {
		return nil, fmt.Errorf("exec: nil plan")
	}
	switch strategy {
	case Native:
		return e.Materialize(plan)
	case BU:
		return e.runBU(plan)
	case GBU:
		return e.runGBU(plan)
	case FtP:
		return e.runFtP(plan)
	default:
		return nil, fmt.Errorf("exec: unknown strategy %v", strategy)
	}
}

// --- Bottom-Up ---

// runBU performs a postorder traversal, executing each operator separately
// and materializing its result into a temporary relation, like the paper's
// BU: "directly and separately executes each operation and materializes
// the temporary results".
func (e *Executor) runBU(plan algebra.Node) (*prel.PRelation, error) {
	node, err := e.buNode(plan)
	if err != nil {
		return nil, err
	}
	if v, ok := node.(*algebra.Values); ok {
		return v.Rel, nil
	}
	// The plan was a bare leaf (e.g. a single Scan).
	return e.Materialize(node)
}

// buNode executes one operator over already-materialized inputs. Leaves
// (base relations and materialized values) are not copied — only operator
// outputs become temporary relations.
func (e *Executor) buNode(n algebra.Node) (algebra.Node, error) {
	switch n.(type) {
	case *algebra.Scan, *algebra.Values:
		return n, nil
	}
	children := n.Children()
	mats := make([]algebra.Node, len(children))
	for i, c := range children {
		m, err := e.buNode(c)
		if err != nil {
			return nil, err
		}
		mats[i] = m
	}
	node := n.WithChildren(mats)
	var rel *prel.PRelation
	var err error
	switch node.(type) {
	case *algebra.Prefer, *algebra.TopK, *algebra.Threshold, *algebra.Skyline,
		*algebra.Rank, *algebra.OrderBy, *algebra.Limit:
		// Prefer and filtering operators are evaluated by the preference
		// engine (UDFs in the paper's prototype), not delegated as native
		// queries.
		rel, err = e.drain(node)
	default:
		rel, err = e.Materialize(node)
	}
	if err != nil {
		return nil, err
	}
	return &algebra.Values{Rel: rel, Label: "R"}, nil
}

// --- Group Bottom-Up ---

// runGBU implements Alg. 2: it defers operator execution wherever possible
// and combines maximal prefer-free subtrees into single queries delegated
// to the native executor; prefer and filtering operators force
// materialization of their (combined) input.
func (e *Executor) runGBU(n algebra.Node) (*prel.PRelation, error) {
	deferred, err := e.gbu(n)
	if err != nil {
		return nil, err
	}
	if v, ok := deferred.(*algebra.Values); ok {
		return v.Rel, nil
	}
	return e.Materialize(deferred)
}

// gbu rewrites the plan bottom-up: boundary operators (prefer, filters) are
// executed eagerly over their combined inputs; everything else is deferred.
// The result is either a Values leaf (executed) or a deferred subtree to be
// combined into the parent's query.
func (e *Executor) gbu(n algebra.Node) (algebra.Node, error) {
	if !hasBoundary(n) {
		return n, nil // whole subtree is one native group; defer it
	}
	switch n.(type) {
	case *algebra.Prefer, *algebra.TopK, *algebra.Threshold, *algebra.Skyline,
		*algebra.Rank, *algebra.OrderBy, *algebra.Limit:
		child, err := e.gbu(n.Children()[0])
		if err != nil {
			return nil, err
		}
		// Base accesses (scans, possibly under selections/projections, and
		// already-materialized groups) feed the operator directly — the
		// paper evaluates prefer UDFs straight on base relations through
		// their access paths; other deferred groups are combined into one
		// query and materialized first.
		input := child
		if !isBaseAccess(child) {
			childRel, err := e.Materialize(child)
			if err != nil {
				return nil, err
			}
			input = &algebra.Values{Rel: childRel, Label: "G"}
		}
		node := n.WithChildren([]algebra.Node{input})
		// Prefer and filtering operators run in the preference engine (the
		// paper's UDF layer), not as delegated native queries.
		rel, err := e.drain(node)
		if err != nil {
			return nil, err
		}
		return &algebra.Values{Rel: rel, Label: "G"}, nil
	default:
		children := n.Children()
		newChildren := make([]algebra.Node, len(children))
		for i, c := range children {
			nc, err := e.gbu(c)
			if err != nil {
				return nil, err
			}
			newChildren[i] = nc
		}
		return n.WithChildren(newChildren), nil
	}
}

// isBaseAccess reports whether a plan node is a direct base-relation access
// — a scan or a materialized leaf, optionally under selections and
// projections — which prefer operators consume without an intermediate
// materialization (heuristic 3 places λ "just on top of a select or
// project operator" and expects index-based access there).
func isBaseAccess(n algebra.Node) bool {
	switch x := n.(type) {
	case *algebra.Scan, *algebra.Values:
		return true
	case *algebra.Select:
		return isBaseAccess(x.Input)
	case *algebra.Project:
		return isBaseAccess(x.Input)
	default:
		return false
	}
}

// hasBoundary reports whether the subtree contains a prefer or filtering
// operator (the operators the native engine cannot execute).
func hasBoundary(n algebra.Node) bool {
	found := false
	algebra.Walk(n, func(x algebra.Node) bool {
		switch x.(type) {
		case *algebra.Prefer, *algebra.TopK, *algebra.Threshold, *algebra.Skyline,
			*algebra.Rank, *algebra.OrderBy, *algebra.Limit:
			found = true
			return false
		}
		return true
	})
	return found
}

// --- Filter-then-Prefer ---

// runFtP implements Alg. 1: extract the non-preference query part Q_NP
// (the plan with prefer and filtering operators removed — the projections
// required by prefer conditions were already added by the planner), execute
// it natively, evaluate every prefer operator on its result R_NP instead of
// the base relations, then apply the filtering operators.
//
// Like the paper's algorithm, FtP evaluates preference conditions on R_NP
// tuples by attribute values, not provenance; plans where a preference
// under one branch of a set operation could match tuples contributed only
// by the other branch are outside its contract.
func (e *Executor) runFtP(plan algebra.Node) (*prel.PRelation, error) {
	// Peel filtering operators off the root (they run last).
	var filters []algebra.Node
	core := plan
	for {
		switch core.(type) {
		case *algebra.TopK, *algebra.Threshold, *algebra.Skyline,
			*algebra.Rank, *algebra.OrderBy, *algebra.Limit:
			filters = append(filters, core)
			core = core.Children()[0]
			continue
		}
		break
	}

	// Collect prefer operators in plan order and build Q_NP.
	var prefers []*algebra.Prefer
	qnp := algebra.Transform(core, func(n algebra.Node) algebra.Node {
		if p, ok := n.(*algebra.Prefer); ok {
			return p.Input
		}
		return n
	})
	algebra.Walk(core, func(n algebra.Node) bool {
		if p, ok := n.(*algebra.Prefer); ok {
			prefers = append(prefers, p)
		}
		return true
	})

	// Execute the non-preference part as one native query.
	rnp, err := e.Materialize(qnp)
	if err != nil {
		return nil, err
	}

	// Evaluate all prefer operators on R_NP.
	cur := rnp
	for _, p := range prefers {
		// WithChildren (not a fresh literal) keeps the optimizer's cache
		// annotations on the rebuilt operator.
		node := p.WithChildren([]algebra.Node{&algebra.Values{Rel: cur, Label: "R_NP"}})
		cur, err = e.drain(node)
		if err != nil {
			return nil, fmt.Errorf("ftp: evaluating %s on R_NP: %w", p.P.Label(), err)
		}
	}

	// Apply the filtering operators innermost-first.
	for i := len(filters) - 1; i >= 0; i-- {
		node := filters[i].WithChildren([]algebra.Node{&algebra.Values{Rel: cur, Label: "R_Q"}})
		cur, err = e.drain(node)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}
