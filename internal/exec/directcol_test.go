package exec

import (
	"fmt"
	"testing"
)

// TestDirectColRowsEquivalence is the acceptance contract of the
// direct-on-column path: across the full plan × strategy × workers ×
// batch-size grid, handing kernels borrowed column vectors with late
// materialization (ColstoreOn) must produce byte-identical rows, order
// and Stats — modulo the diagnostic ColBatches / RowsMaterialized
// counters — to the row-view packing form of the same segment store
// (ColstoreRows, the PR 6 behavior). Both arms share zone maps, so the
// only degree of freedom under test is the kernel/materialization layer.
// Run with -race: the suite doubles as the data-race check for the
// borrowed-vector contract under the parallel morsel path.
func TestDirectColRowsEquivalence(t *testing.T) {
	cat := colstoreDB(t)
	for name, plan := range colstorePlans() {
		t.Run(name, func(t *testing.T) {
			for _, strategy := range Strategies() {
				for _, workers := range []int{1, 4} {
					for _, size := range []int{3, 1024} {
						label := fmt.Sprintf("%v workers=%d size=%d", strategy, workers, size)

						ref := New(cat)
						ref.Workers = workers
						ref.BatchSize = size
						ref.Colstore = ColstoreRows
						want, err := ref.Run(plan, strategy)
						if err != nil {
							t.Fatalf("%s rows path: %v", label, err)
						}
						refStats := ref.Stats()
						if refStats.ColBatches != 0 || refStats.RowsMaterialized != 0 {
							t.Fatalf("%s: rows path counted columnar batches: %+v", label, refStats)
						}

						e := New(cat)
						e.Workers = workers
						e.BatchSize = size
						e.Colstore = ColstoreOn
						got, err := e.Run(plan, strategy)
						if err != nil {
							t.Fatalf("%s direct path: %v", label, err)
						}

						mustIdentical(t, want, got, label)
						gotStats := e.Stats()
						// Batches differs too: direct windows never span a
						// segment boundary, so their count is its own shape.
						refStats.Batches, gotStats.Batches = 0, 0
						gotStats.ColBatches, gotStats.RowsMaterialized = 0, 0
						refStats.JoinProbeBatches, gotStats.JoinProbeBatches = 0, 0
						if refStats != gotStats {
							t.Fatalf("%s: direct stats %+v, want %+v", label, gotStats, refStats)
						}
					}
				}
			}
		})
	}
}

// TestDirectColLateMaterialization pins the shape claim behind the direct
// path: on a selective plan the scan stays columnar (ColBatches > 0) and
// only the rows that survive the filter ever cross the materialization
// boundary, so RowsMaterialized is a small fraction of RowsScanned.
func TestDirectColLateMaterialization(t *testing.T) {
	cat := colstoreDB(t)
	e := New(cat)
	e.Colstore = ColstoreOn
	if _, err := e.Run(colstorePlans()["prune-low-sel"], Native); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.ColBatches == 0 {
		t.Fatalf("direct scan produced no columnar batches: %+v", st)
	}
	if st.RowsMaterialized == 0 {
		t.Fatalf("survivors never crossed the materialization boundary: %+v", st)
	}
	if st.RowsMaterialized*10 > st.RowsScanned {
		t.Fatalf("late materialization did not engage: materialized %d of %d scanned",
			st.RowsMaterialized, st.RowsScanned)
	}
}
