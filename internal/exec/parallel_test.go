package exec

import (
	"fmt"
	"testing"

	"prefdb/internal/algebra"
	"prefdb/internal/catalog"
	"prefdb/internal/datagen"
	"prefdb/internal/expr"
	"prefdb/internal/pref"
	"prefdb/internal/prel"
	"prefdb/internal/types"
)

// parallelCatalog is large enough (5 000 movies, ~32 000 cast rows) that
// every parallel path — segment fan-out, partitioned join build, top-k
// merge — actually engages (> morselSize rows).
func parallelCatalog(t testing.TB) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	if _, err := datagen.LoadIMDB(cat, datagen.Config{Scale: 0.25, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	return cat
}

// parallelPlans covers the hot shapes the morsel executor accelerates:
// prefer chains over scans, index-backed selects under prefers, hash
// joins with prefers and top-k / threshold / skyline filtering above.
func parallelPlans() map[string]algebra.Node {
	pRecency := pref.New("recent", "movies", expr.Cmp("year", expr.OpGe, types.Int(2000)), pref.Recency("year", 2011), 0.9)
	pShort := pref.New("short", "movies", expr.Cmp("duration", expr.OpLe, types.Int(120)), pref.Around("duration", 100), 0.6)
	pDrama := pref.New("drama", "genres", expr.Eq("genre", types.Str("Drama")), pref.Recency("year", 2011), 0.8)
	join := func() algebra.Node {
		return &algebra.Join{
			Cond:  expr.Bin{Op: expr.OpEq, L: expr.ColRef("movies.m_id"), R: expr.ColRef("genres.m_id")},
			Left:  &algebra.Scan{Table: "movies"},
			Right: &algebra.Scan{Table: "genres"},
		}
	}
	return map[string]algebra.Node{
		"prefer-chain": &algebra.Prefer{P: pShort, Input: &algebra.Prefer{P: pRecency, Input: &algebra.Scan{Table: "movies"}}},
		"select-prefer": &algebra.Prefer{P: pRecency, Input: &algebra.Select{
			Cond:  expr.Cmp("year", expr.OpGe, types.Int(1990)),
			Input: &algebra.Scan{Table: "movies"},
		}},
		"join-prefer-topk": &algebra.TopK{K: 50, By: algebra.ByScore,
			Input: &algebra.Prefer{P: pDrama, Input: join()}},
		"join-prefer-threshold": &algebra.Threshold{By: algebra.ByConf, Op: expr.OpGe, Value: 0.5,
			Input: &algebra.Prefer{P: pDrama, Input: join()}},
		"skyline": &algebra.Skyline{Input: &algebra.Prefer{P: pRecency, Input: &algebra.Scan{Table: "movies"}}},
	}
}

// mustIdentical fails unless the relations match exactly: same
// cardinality, same row order, same tuples, bit-identical ⟨S,C⟩ pairs.
func mustIdentical(t *testing.T, want, got *prel.PRelation, label string) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("%s: cardinality %d, want %d", label, got.Len(), want.Len())
	}
	for i := range want.Rows {
		if !types.TupleEqual(want.Rows[i].Tuple, got.Rows[i].Tuple) {
			t.Fatalf("%s: row %d tuple = %v, want %v", label, i, got.Rows[i].Tuple, want.Rows[i].Tuple)
		}
		if want.Rows[i].SC != got.Rows[i].SC {
			t.Fatalf("%s: row %d SC = %v, want %v", label, i, got.Rows[i].SC, want.Rows[i].SC)
		}
	}
}

// TestParallelIdenticalToSequential asserts the determinism contract of
// the morsel executor: for every strategy and every pipeline shape,
// Workers=N produces exactly the rows, row order and Stats of the
// sequential Workers=1 run.
func TestParallelIdenticalToSequential(t *testing.T) {
	cat := parallelCatalog(t)
	for name, plan := range parallelPlans() {
		t.Run(name, func(t *testing.T) {
			for _, strategy := range Strategies() {
				ref := New(cat)
				ref.Workers = 1
				want, err := ref.Run(plan, strategy)
				if err != nil {
					t.Fatalf("%v sequential: %v", strategy, err)
				}
				for _, workers := range []int{2, 4, 0} {
					e := New(cat)
					e.Workers = workers
					got, err := e.Run(plan, strategy)
					if err != nil {
						t.Fatalf("%v workers=%d: %v", strategy, workers, err)
					}
					label := fmt.Sprintf("%v workers=%d", strategy, workers)
					mustIdentical(t, want, got, label)
					// Batches is diagnostic and depends on block sizing
					// (morsel-sized batches in parallel mode, drain-sized
					// otherwise); every cost counter must match exactly.
					refStats, gotStats := ref.Stats(), e.Stats()
					refStats.Batches, gotStats.Batches = 0, 0
					refStats.JoinProbeBatches, gotStats.JoinProbeBatches = 0, 0
					if refStats != gotStats {
						t.Fatalf("%s: stats %+v, want %+v", label, gotStats, refStats)
					}
				}
			}
		})
	}
}

// TestParallelLimitKeepsLazyStats pins the Limit gate: a limit stops
// pulling its input early, so the prefer chain beneath it must stay
// sequential (and lazily evaluated) at every worker count for PreferEvals
// to remain comparable.
func TestParallelLimitKeepsLazyStats(t *testing.T) {
	cat := parallelCatalog(t)
	plan := &algebra.Limit{N: 10, Input: &algebra.Prefer{
		P:     pref.New("recent", "movies", expr.TrueLiteral(), pref.Recency("year", 2011), 0.9),
		Input: &algebra.Scan{Table: "movies"},
	}}
	ref := New(cat)
	ref.Workers = 1
	want, err := ref.Run(plan, Native)
	if err != nil {
		t.Fatal(err)
	}
	e := New(cat)
	e.Workers = 4
	got, err := e.Run(plan, Native)
	if err != nil {
		t.Fatal(err)
	}
	mustIdentical(t, want, got, "limit-over-prefer")
	if ref.Stats() != e.Stats() {
		t.Fatalf("stats %+v, want %+v", e.Stats(), ref.Stats())
	}
	if evals := e.Stats().PreferEvals; evals != 10 {
		t.Fatalf("PreferEvals = %d, want 10 (lazy evaluation under Limit)", evals)
	}
}

// TestWorkerCountResolution checks the 0 = GOMAXPROCS convention.
func TestWorkerCountResolution(t *testing.T) {
	e := New(parallelCatalog(t))
	if e.Workers != 0 {
		t.Fatalf("default Workers = %d, want 0", e.Workers)
	}
	if e.workerCount() < 1 {
		t.Fatalf("workerCount() = %d, want >= 1", e.workerCount())
	}
	e.Workers = 3
	if e.workerCount() != 3 {
		t.Fatalf("workerCount() = %d, want 3", e.workerCount())
	}
}
