// Package exec implements prefdb's execution layer: a pipelined (volcano)
// executor for extended query plans — playing the role of the "native
// database engine" of the paper — plus the paper's query evaluation
// strategies Bottom-Up (BU), Group Bottom-Up (GBU) and Filter-then-Prefer
// (FtP), which differ in where they materialize intermediate p-relations.
package exec

import (
	"fmt"

	"prefdb/internal/algebra"
	"prefdb/internal/catalog"
	"prefdb/internal/expr"
	"prefdb/internal/pref"
	"prefdb/internal/prel"
	"prefdb/internal/schema"
)

// Stats counts the cost drivers of a query execution. The paper identifies
// the size of intermediate relations as the dominant cost ("the most
// critical parameter that shapes the processing cost is the disk I/Os,
// which in turn depends on the size of the intermediate relations"), so
// TuplesMaterialized is the primary shape metric in experiments.
type Stats struct {
	// RowsScanned counts base-table tuples read from heaps.
	RowsScanned int
	// TuplesMaterialized counts rows written into intermediate relations
	// (the materialization boundaries differ per strategy).
	TuplesMaterialized int
	// CellsMaterialized counts attribute values written into intermediate
	// relations (rows × width) — the byte-volume proxy that makes
	// projection pushdown visible, since narrowing a relation reduces
	// cells but not rows.
	CellsMaterialized int
	// NativeCalls counts pipelines delegated to the native executor — the
	// analogue of SQL statements sent to the host DBMS.
	NativeCalls int
	// IndexProbes counts index lookups taken instead of scans.
	IndexProbes int
	// PreferEvals counts tuples processed by prefer operators.
	PreferEvals int
	// ScoreRelationRows counts rows held in score relations R_P (only
	// non-default pairs are stored).
	ScoreRelationRows int
	// ScoreEvals counts actual score-expression evaluations by prefer
	// operators (tuples whose conditional part held and whose ⟨S,C⟩ was
	// computed rather than served from the score cache) — the work the
	// cache exists to avoid.
	ScoreEvals int
	// CacheHits counts prefer tuples whose contribution came from the
	// score cache (level-1 memo or level-2 dictionary).
	CacheHits int
	// CacheMisses counts prefer tuples that probed the score cache and had
	// to compute.
	CacheMisses int
	// Batches counts the row batches processed by the vectorized execution
	// path (0 on the row-at-a-time path). It is a diagnostic counter, not a
	// cost driver: the equivalence contract between the batch and row paths
	// is "identical Stats modulo Batches".
	Batches int
	// SegmentsScanned counts columnar segments actually read by colstore
	// scans; SegmentsSkipped counts segments dropped unread by zone-map
	// pruning. Both are diagnostic counters excluded from the path
	// equivalence contract, like Batches (skipped segments still credit
	// their live rows to RowsScanned, so that counter stays identical).
	SegmentsScanned int
	SegmentsSkipped int
	// ColBatches counts columnar (direct-on-column) batches emitted by
	// colstore scans; RowsMaterialized counts selected rows of columnar
	// batches that crossed the late-materialization boundary (Batch.Rows)
	// because some operator needed tuple views. Both are diagnostic
	// counters excluded from the path equivalence contract, like Batches;
	// RowsMaterialized ≪ RowsScanned on selective plans is the direct
	// path's shape signature.
	ColBatches       int
	RowsMaterialized int
	// JoinProbeBatches counts probe-side batches processed by the hash
	// join (morsel-drain batches on the parallel path). A diagnostic
	// counter excluded from the path equivalence contract, like Batches;
	// together with RowsMaterialized it shows whether the join probed
	// direct-on-column (probe batches high, materialized rows only at
	// match emit) or fell back to tuples.
	JoinProbeBatches int
}

// Add accumulates another stats record.
func (s *Stats) Add(o Stats) {
	s.RowsScanned += o.RowsScanned
	s.TuplesMaterialized += o.TuplesMaterialized
	s.CellsMaterialized += o.CellsMaterialized
	s.NativeCalls += o.NativeCalls
	s.IndexProbes += o.IndexProbes
	s.PreferEvals += o.PreferEvals
	s.ScoreRelationRows += o.ScoreRelationRows
	s.ScoreEvals += o.ScoreEvals
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.Batches += o.Batches
	s.SegmentsScanned += o.SegmentsScanned
	s.SegmentsSkipped += o.SegmentsSkipped
	s.ColBatches += o.ColBatches
	s.RowsMaterialized += o.RowsMaterialized
	s.JoinProbeBatches += o.JoinProbeBatches
}

// String renders the counters compactly. The scoring counters only appear
// when a prefer operator ran, keeping the rendering stable for queries
// that predate the score cache.
func (s Stats) String() string {
	out := fmt.Sprintf("scanned=%d materialized=%d cells=%d nativeCalls=%d indexProbes=%d preferEvals=%d scoreRows=%d",
		s.RowsScanned, s.TuplesMaterialized, s.CellsMaterialized, s.NativeCalls, s.IndexProbes, s.PreferEvals, s.ScoreRelationRows)
	if s.ScoreEvals != 0 || s.CacheHits != 0 || s.CacheMisses != 0 {
		out += fmt.Sprintf(" scoreEvals=%d cacheHits=%d cacheMisses=%d", s.ScoreEvals, s.CacheHits, s.CacheMisses)
	}
	if s.Batches != 0 {
		out += fmt.Sprintf(" batches=%d", s.Batches)
	}
	if s.SegmentsScanned != 0 || s.SegmentsSkipped != 0 {
		out += fmt.Sprintf(" segments=%d skipped=%d", s.SegmentsScanned, s.SegmentsSkipped)
	}
	if s.ColBatches != 0 || s.RowsMaterialized != 0 {
		out += fmt.Sprintf(" colBatches=%d rowsMaterialized=%d", s.ColBatches, s.RowsMaterialized)
	}
	if s.JoinProbeBatches != 0 {
		out += fmt.Sprintf(" joinProbeBatches=%d", s.JoinProbeBatches)
	}
	return out
}

// Executor evaluates extended query plans against a catalog. An Executor
// is not safe for concurrent use — create one per query — but with
// Workers != 1 it parallelizes hot pipeline segments internally (see
// parallel.go); results, order and Stats (modulo the diagnostic Batches
// counter) are identical at every worker count.
//
// Executions started through RunContext (or after Begin) observe the
// given context and the executor's Limits cooperatively: see lifecycle.go.
type Executor struct {
	Cat   *catalog.Catalog
	Funcs *expr.Registry
	// Agg is the aggregate function F used by every score-combining
	// operator in the query (the paper assumes one F per query).
	Agg pref.Aggregate
	// Workers is the parallel pipeline's pool width: 0 means GOMAXPROCS,
	// 1 forces the sequential path.
	Workers int
	// Limits bounds the next guarded run (RunContext / Begin); the zero
	// value imposes no bounds.
	Limits Limits
	// ScoreCache selects preference score memoization: CacheAuto (the zero
	// value) follows the optimizer's per-operator hints, CacheOff forces
	// the direct path, CacheOn memoizes every prefer operator.
	ScoreCache CacheMode
	// Batch selects the execution path: BatchOn (the zero value) runs
	// supported operators vectorized over row batches with selection
	// vectors (see batch.go), BatchOff forces the row-at-a-time path.
	// Results, order and Stats (modulo the Batches counter) are identical
	// in both modes.
	Batch BatchMode
	// BatchSize overrides the rows-per-batch block size of the vectorized
	// path (0 = defaultBatchSize).
	BatchSize int
	// Colstore selects the storage side batch scans read: ColstoreOff (the
	// zero value) stays on the row heap; ColstoreOn serves sealed pages
	// from the columnar segment store with zone-map pruning (see
	// colstore.go). Results, order and Stats (modulo the diagnostic
	// counters) are identical in both modes.
	Colstore ColstoreMode
	// DictFor, when set (by the engine for prepared statements), supplies
	// the cross-query level-2 dictionary for a preference; cols are the
	// canonical key column names. It must be safe for concurrent calls.
	DictFor func(p pref.Preference, cols []string) *ScoreDict

	stats Stats
	// gd is the lifecycle guard of the current run; nil (the default)
	// disables all cancellation and budget checks.
	gd *guard
	// limitDepth tracks how many enclosing Limit operators the node being
	// built sits under; parallel fan-out is disabled there because a limit
	// stops pulling early (see parallelOK).
	limitDepth int
}

// New returns an executor using the scoring-function registry and F_S.
func New(cat *catalog.Catalog) *Executor {
	return &Executor{Cat: cat, Funcs: pref.Functions(), Agg: pref.FSum{}}
}

// Stats returns the counters accumulated since the last ResetStats.
func (e *Executor) Stats() Stats { return e.stats }

// ResetStats clears the counters.
func (e *Executor) ResetStats() { e.stats = Stats{} }

// iter is a pull-based tuple stream.
type iter interface {
	next() (prel.Row, bool)
}

// Materialize runs a plan as one native pipeline and materializes the
// result, counting one native call.
func (e *Executor) Materialize(n algebra.Node) (*prel.PRelation, error) {
	e.stats.NativeCalls++
	return e.drain(n)
}

// Evaluate runs a plan in the preference-engine/middleware layer: the
// result is materialized and counted, but no native call is recorded. The
// plug-in baselines use it for operations the paper performs outside the
// DBMS (score aggregation, filtering).
func (e *Executor) Evaluate(n algebra.Node) (*prel.PRelation, error) {
	return e.drain(n)
}

// drain builds and exhausts a pipeline without counting a native call
// (used by engines for operator-at-a-time execution).
//
// A prefer operator does not copy its input relation — the paper's
// implementation updates the score relation R_P in place — so when the
// drained node is a Prefer, only the rows carrying non-default pairs
// (the R_P writes) count as materialized.
func (e *Executor) drain(n algebra.Node) (*prel.PRelation, error) {
	// Strategy loops re-enter drain once per operator/group, so this entry
	// check bounds how much work a canceled BU/GBU/FtP run still starts.
	if err := e.gd.poll(); err != nil {
		return nil, err
	}

	// A drain exhausts its whole pipeline regardless of any Limit above it,
	// so parallel fan-out is safe again inside (blocking operators under a
	// Limit re-enter here via drainChild).
	saved := e.limitDepth
	e.limitDepth = 0
	defer func() { e.limitDepth = saved }()

	out, s, err := e.drainPipeline(n)
	if err != nil {
		return nil, err
	}
	// Inner iterators stop yielding (rather than erroring) when the guard
	// trips mid-stream; surface that here so no partial rows escape.
	if gErr := e.gd.poll(); gErr != nil {
		return nil, gErr
	}
	if _, isPrefer := n.(*algebra.Prefer); isPrefer {
		// R_P rows are (pk, score, conf) triples regardless of the base
		// relation's width.
		e.stats.TuplesMaterialized += out.ScoredCount()
		e.stats.CellsMaterialized += out.ScoredCount() * 3
	} else {
		e.stats.TuplesMaterialized += out.Len()
		e.stats.CellsMaterialized += out.Len() * (s.Len() + 2)
	}
	e.stats.ScoreRelationRows += out.ScoredCount()
	return out, nil
}

// drainPipeline builds n as a pipeline — vectorized when the executor's
// batch mode allows — and exhausts it into a fresh relation, metering
// materialization against the lifecycle guard. Both paths produce
// byte-identical rows, order and Stats (modulo the Batches counter).
func (e *Executor) drainPipeline(n algebra.Node) (*prel.PRelation, *schema.Schema, error) {
	if e.batchOK() {
		bi, s, err := e.buildBatch(n)
		if err != nil {
			return nil, nil, err
		}
		out := prel.New(s)
		meter := matTick{g: e.gd, width: s.Len() + 2}
		for {
			b, ok := bi.nextBatch()
			if !ok {
				break
			}
			e.stats.Batches++
			if b.Columnar() {
				e.stats.RowsMaterialized += b.Live()
			}
			out.Rows = b.AppendRows(out.Rows)
			if gErr := meter.rows(b.Live()); gErr != nil {
				return nil, nil, gErr
			}
		}
		if gErr := meter.flush(); gErr != nil {
			return nil, nil, gErr
		}
		return out, s, nil
	}
	it, s, err := e.build(n)
	if err != nil {
		return nil, nil, err
	}
	out := prel.New(s)
	meter := matTick{g: e.gd, width: s.Len() + 2}
	for {
		row, ok := it.next()
		if !ok {
			break
		}
		out.Append(row)
		if gErr := meter.row(); gErr != nil {
			return nil, nil, gErr
		}
	}
	if gErr := meter.flush(); gErr != nil {
		return nil, nil, gErr
	}
	return out, s, nil
}

// build compiles a plan node into an iterator pipeline. Filter/prefer
// chains are lifted out and evaluated morsel-parallel when the executor
// runs with more than one worker (see parallel.go).
func (e *Executor) build(n algebra.Node) (iter, *schema.Schema, error) {
	switch n.(type) {
	case *algebra.Select, *algebra.Prefer:
		if it, s, handled, err := e.trySegment(n); handled {
			return it, s, err
		}
	}
	switch x := n.(type) {
	case *algebra.Values:
		return &sliceIter{rows: x.Rel.Rows}, x.Rel.Schema, nil

	case *algebra.Scan:
		return e.buildScan(x, nil)

	case *algebra.Select:
		// Access-path selection: a select directly over a scan may use an
		// index for some conjuncts.
		if scan, ok := x.Input.(*algebra.Scan); ok {
			return e.buildScan(scan, expr.Conjuncts(x.Cond))
		}
		in, s, err := e.build(x.Input)
		if err != nil {
			return nil, nil, err
		}
		cond, err := expr.CompileCondition(x.Cond, s, e.Funcs)
		if err != nil {
			return nil, nil, err
		}
		return &filterIter{in: in, cond: cond, tick: pollTick{g: e.gd}}, s, nil

	case *algebra.Project:
		in, s, err := e.build(x.Input)
		if err != nil {
			return nil, nil, err
		}
		ords := make([]int, len(x.Cols))
		for i, c := range x.Cols {
			idx, err := s.IndexOf(c.Table, c.Name)
			if err != nil {
				return nil, nil, err
			}
			ords[i] = idx
		}
		pi := &projectIter{in: in, ords: ords}
		pi.arena.width = len(ords)
		return pi, s.Project(ords), nil

	case *algebra.Join:
		return e.buildJoin(x)

	case *algebra.GroupAgg:
		in, s, err := e.build(x.Input)
		if err != nil {
			return nil, nil, err
		}
		byOrds, aggOrds, out, err := groupAggPlan(x, s)
		if err != nil {
			return nil, nil, err
		}
		tab := newAggTable(byOrds, aggOrds, x.Aggs, e.gd)
		return &groupAggIter{in: in, tab: tab, tick: pollTick{g: e.gd}}, out, nil

	case *algebra.Set:
		return e.buildSet(x)

	case *algebra.Prefer:
		in, s, err := e.build(x.Input)
		if err != nil {
			return nil, nil, err
		}
		if err := x.P.Validate(); err != nil {
			return nil, nil, err
		}
		cond, err := expr.CompileCondition(x.P.Cond, s, e.Funcs)
		if err != nil {
			return nil, nil, fmt.Errorf("prefer %s (conditional part): %w", x.P.Label(), err)
		}
		score, err := expr.Compile(x.P.Score, s, e.Funcs)
		if err != nil {
			return nil, nil, fmt.Errorf("prefer %s (scoring part): %w", x.P.Label(), err)
		}
		pi := &preferIter{in: in, cond: cond, score: score, conf: x.P.Conf, agg: e.Agg, stats: &e.stats, tick: pollTick{g: e.gd}}
		if e.scoreCacheOn(x) {
			pi.memo = e.newScoreMemo(cond, score, x.P, s)
		}
		return pi, s, nil

	case *algebra.TopK:
		rel, err := e.drainChild(x.Input)
		if err != nil {
			return nil, nil, err
		}
		if e.parallelOK() && x.K < rel.Len() && rel.Len() > morselSize {
			// Per-worker bounded heaps merged with deterministic
			// tie-breaks (input position) — same selection as below.
			top := e.parallelTopK(rel.Rows, x.K, x.By == algebra.ByConf)
			return &sliceIter{rows: top}, rel.Schema, nil
		}
		// Bounded-heap selection: O(n log k) instead of a full sort.
		top := prel.TopK(rel.Rows, x.K, x.By == algebra.ByConf)
		return &sliceIter{rows: top}, rel.Schema, nil

	case *algebra.Threshold:
		in, s, err := e.build(x.Input)
		if err != nil {
			return nil, nil, err
		}
		if !x.Op.IsComparison() {
			return nil, nil, fmt.Errorf("exec: threshold operator %s is not a comparison", x.Op)
		}
		return &thresholdIter{in: in, by: x.By, op: x.Op, value: x.Value, tick: pollTick{g: e.gd}}, s, nil

	case *algebra.Skyline:
		rel, err := e.drainChild(x.Input)
		if err != nil {
			return nil, nil, err
		}
		if len(x.Dims) == 0 {
			return &sliceIter{rows: skyline(rel.Rows)}, rel.Schema, nil
		}
		rows, err := attrSkyline(rel, x.Dims, e.gd)
		if err != nil {
			return nil, nil, err
		}
		return &sliceIter{rows: rows}, rel.Schema, nil

	case *algebra.Rank:
		rel, err := e.drainChild(x.Input)
		if err != nil {
			return nil, nil, err
		}
		if x.By == algebra.ByConf {
			rel.SortByConf()
		} else {
			rel.SortByScore()
		}
		return &sliceIter{rows: rel.Rows}, rel.Schema, nil

	case *algebra.OrderBy:
		rel, err := e.drainChild(x.Input)
		if err != nil {
			return nil, nil, err
		}
		if err := orderRows(rel, x.Keys); err != nil {
			return nil, nil, err
		}
		return &sliceIter{rows: rel.Rows}, rel.Schema, nil

	case *algebra.Limit:
		// The limit stops pulling its input early, so streaming operators
		// beneath it must stay sequential for Stats to match the
		// sequential path (blocking operators re-enable fan-out in drain).
		e.limitDepth++
		in, s, err := e.build(x.Input)
		e.limitDepth--
		if err != nil {
			return nil, nil, err
		}
		return &limitIter{in: in, n: x.N, offset: x.Offset}, s, nil

	case nil:
		return nil, nil, fmt.Errorf("exec: nil plan node")

	default:
		return nil, nil, fmt.Errorf("exec: unknown node type %T", n)
	}
}

// drainChild materializes a blocking operator's input within the same
// pipeline (sorting operators need their full input); the rows are counted
// as materialized but not as a separate native call.
func (e *Executor) drainChild(n algebra.Node) (*prel.PRelation, error) {
	return e.drain(n)
}
