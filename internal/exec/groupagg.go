// Grouped aggregation over p-relations: γ_{By;Aggs} groups its input by a
// column list and computes count/sum/min/max per group, emitting one
// tuple per distinct key in first-seen order with the unknown pair ⟨⊥,0⟩.
//
// Both execution paths share one accumulator (aggTable), so their results
// are byte-identical by construction: the row path feeds it tuples, the
// vectorized path (groupAggBatch) feeds it values drawn straight from the
// batch's column vectors — keys hashed per batch with expr.HashCols (the
// same fold as the row path's hashCols) and per-slot values materialized
// as types.Value structs from the vectors (expr.ColValue), so a columnar
// input aggregates without ever crossing the row-view boundary. Batches
// without typed vectors fall back to row views and count into
// Stats.RowsMaterialized.
package exec

import (
	"fmt"

	"prefdb/internal/algebra"
	"prefdb/internal/expr"
	"prefdb/internal/prel"
	"prefdb/internal/schema"
	"prefdb/internal/types"
)

// aggGroup is one group's accumulator state, indexed per AggSpec.
type aggGroup struct {
	key []types.Value
	// count: non-NULL values seen (AggCount).
	count []int64
	// sum: exact int64 while every contribution is an INT, float64 from
	// the first FLOAT on (numeric widening, matching expression
	// evaluation); NULL and non-numeric values are skipped.
	sumI    []int64
	sumF    []float64
	sumIsF  []bool
	sumSome []bool
	// min/max under types.Compare; NULLs and values incomparable with the
	// current extreme are skipped.
	extreme    []types.Value
	extremeSet []bool
}

func newAggGroup(key []types.Value, n int) *aggGroup {
	return &aggGroup{
		key:   key,
		count: make([]int64, n), sumI: make([]int64, n), sumF: make([]float64, n),
		sumIsF: make([]bool, n), sumSome: make([]bool, n),
		extreme: make([]types.Value, n), extremeSet: make([]bool, n),
	}
}

func (g *aggGroup) update(j int, fn algebra.AggFn, v types.Value) {
	switch fn {
	case algebra.AggCount:
		if !v.IsNull() {
			g.count[j]++
		}
	case algebra.AggSum:
		if v.IsNull() || !v.IsNumeric() {
			return
		}
		switch {
		case !g.sumSome[j]:
			g.sumSome[j] = true
			if v.Kind() == types.KindInt {
				g.sumI[j] = v.AsInt()
			} else {
				g.sumIsF[j] = true
				g.sumF[j] = v.AsFloat()
			}
		case g.sumIsF[j]:
			g.sumF[j] += v.AsFloat()
		case v.Kind() == types.KindInt:
			g.sumI[j] += v.AsInt()
		default:
			g.sumIsF[j] = true
			g.sumF[j] = float64(g.sumI[j]) + v.AsFloat()
		}
	case algebra.AggMin, algebra.AggMax:
		if v.IsNull() {
			return
		}
		if !g.extremeSet[j] {
			g.extreme[j], g.extremeSet[j] = v, true
			return
		}
		c, ok := types.Compare(v, g.extreme[j])
		if !ok {
			return
		}
		if (fn == algebra.AggMin && c < 0) || (fn == algebra.AggMax && c > 0) {
			g.extreme[j] = v
		}
	}
}

func (g *aggGroup) result(j int, fn algebra.AggFn) types.Value {
	switch fn {
	case algebra.AggCount:
		return types.Int(g.count[j])
	case algebra.AggSum:
		switch {
		case !g.sumSome[j]:
			return types.Null()
		case g.sumIsF[j]:
			return types.Float(g.sumF[j])
		default:
			return types.Int(g.sumI[j])
		}
	default:
		if !g.extremeSet[j] {
			return types.Null()
		}
		return g.extreme[j]
	}
}

// aggTable is the shared group accumulator: a bucket map keyed like the
// hash join (hashCols fold over the By columns) with exact Value.Equal
// key confirmation, groups kept in first-seen order. The table is the
// operator's buffered state and meters each new group against the query's
// materialization budgets.
// prefdb:col-transient
type aggTable struct {
	byOrds  []int
	aggs    []algebra.AggSpec
	aggOrds []int

	buckets map[uint64][]*aggGroup
	order   []*aggGroup
	meter   matTick
}

func newAggTable(byOrds, aggOrds []int, aggs []algebra.AggSpec, g *guard) *aggTable {
	t := &aggTable{byOrds: byOrds, aggs: aggs, aggOrds: aggOrds, buckets: map[uint64][]*aggGroup{}}
	t.meter = matTick{g: g, width: len(byOrds) + len(aggs) + 2}
	return t
}

// group finds or creates the group for a precomputed key hash; keyAt
// yields the k-th By value. Returns nil when the materialization guard
// tripped on a new group (the trip is recorded in the guard; drain
// surfaces it).
func (t *aggTable) group(hash uint64, keyAt func(k int) types.Value) *aggGroup {
	for _, g := range t.buckets[hash] {
		match := true
		for k := range g.key {
			if !g.key[k].Equal(keyAt(k)) {
				match = false
				break
			}
		}
		if match {
			return g
		}
	}
	key := make([]types.Value, len(t.byOrds))
	for k := range key {
		key[k] = keyAt(k)
	}
	g := newAggGroup(key, len(t.aggs))
	t.buckets[hash] = append(t.buckets[hash], g)
	t.order = append(t.order, g)
	if t.meter.row() != nil {
		return nil
	}
	return g
}

// addTuple folds one row-form tuple into the table (the row path's — and
// the vector path's fallback — per-row step).
func (t *aggTable) addTuple(tuple []types.Value) bool {
	g := t.group(hashCols(tuple, t.byOrds), func(k int) types.Value { return tuple[t.byOrds[k]] })
	if g == nil {
		return false
	}
	for j, a := range t.aggs {
		g.update(j, a.Fn, tuple[t.aggOrds[j]])
	}
	return true
}

// emit renders the groups in first-seen order with the unknown pair.
func (t *aggTable) emit() []prel.Row {
	_ = t.meter.flush()
	out := make([]prel.Row, 0, len(t.order))
	for _, g := range t.order {
		tuple := make([]types.Value, 0, len(g.key)+len(t.aggs))
		tuple = append(tuple, g.key...)
		for j, a := range t.aggs {
			tuple = append(tuple, g.result(j, a.Fn))
		}
		out = append(out, prel.Row{Tuple: tuple})
	}
	return out
}

// groupAggIter is the row-path (reference) implementation.
type groupAggIter struct {
	in   iter
	tab  *aggTable
	tick pollTick

	built bool
	rows  []prel.Row
	pos   int
}

func (g *groupAggIter) next() (prel.Row, bool) {
	if !g.built {
		for {
			row, ok := g.in.next()
			if !ok {
				break
			}
			if g.tick.stop() {
				break
			}
			if !g.tab.addTuple(row.Tuple) {
				break // guard tripped on a new group
			}
		}
		g.rows = g.tab.emit()
		g.built = true
	}
	if g.pos >= len(g.rows) {
		return prel.Row{}, false
	}
	r := g.rows[g.pos]
	g.pos++
	return r, true
}

// groupAggBatch is the vectorized implementation: it drains its input
// batch-wise, hashing the By columns off the vectors (expr.HashCols) and
// accumulating agg values straight from the vector slots (expr.ColValue),
// in row order — so the shared aggTable sees exactly the row path's
// update sequence. Slot values are small Value structs read from borrowed
// windows; nothing from the window is retained past the batch (the group
// keys are copied), upholding the build-side borrow contract.
// prefdb:col-transient
type groupAggBatch struct {
	in    batchIter
	tab   *aggTable
	stats *Stats
	tick  pollTick

	built  bool
	src    batchIter
	hashes []uint64
	ks     expr.KeyScratch
	size   int
}

func (g *groupAggBatch) drain() {
	for {
		b, ok := g.in.nextBatch()
		if !ok {
			break
		}
		if g.tick.stopN(b.Live()) {
			break
		}
		direct := false
		var hs []uint64
		if b.Columnar() && expr.HasTypedCols(b.Cols, g.tab.aggOrds) {
			if cap(g.hashes) < len(b.Sel) {
				g.hashes = make([]uint64, len(b.Sel))
			}
			hs = g.hashes[:len(b.Sel)]
			direct = expr.HashCols(b.Cols, b.Sel, g.tab.byOrds, hs, &g.ks)
		}
		tripped := false
		if direct {
			cols := b.Cols
			for i, j := range b.Sel {
				grp := g.tab.group(hs[i], func(k int) types.Value {
					v, _ := expr.ColValue(&cols[g.tab.byOrds[k]], j)
					return v
				})
				if grp == nil {
					tripped = true
					break
				}
				for a, spec := range g.tab.aggs {
					v, _ := expr.ColValue(&cols[g.tab.aggOrds[a]], j)
					grp.update(a, spec.Fn, v)
				}
			}
		} else {
			if b.Columnar() {
				g.stats.RowsMaterialized += b.Live()
			}
			rows := b.Rows()
			for _, j := range b.Sel {
				if !g.tab.addTuple(rows[j]) {
					tripped = true
					break
				}
			}
		}
		if tripped {
			break
		}
	}
	g.src = newSliceBatchSrc(g.tab.emit(), g.size)
	g.built = true
}

func (g *groupAggBatch) nextBatch() (*prel.Batch, bool) {
	if !g.built {
		g.drain()
	}
	return g.src.nextBatch()
}

// groupAggPlan resolves a GroupAgg node against its input schema: the By
// and agg-argument ordinals plus the output schema (group key columns
// as-is, then one column per aggregate, named by its alias).
func groupAggPlan(x *algebra.GroupAgg, s *schema.Schema) (byOrds, aggOrds []int, out *schema.Schema, err error) {
	byOrds = make([]int, len(x.By))
	cols := make([]schema.Column, 0, len(x.By)+len(x.Aggs))
	for i, c := range x.By {
		idx, iErr := s.IndexOf(c.Table, c.Name)
		if iErr != nil {
			return nil, nil, nil, iErr
		}
		byOrds[i] = idx
		cols = append(cols, s.Columns[idx])
	}
	aggOrds = make([]int, len(x.Aggs))
	for i, a := range x.Aggs {
		idx, iErr := s.IndexOf(a.Col.Table, a.Col.Name)
		if iErr != nil {
			return nil, nil, nil, iErr
		}
		aggOrds[i] = idx
		if a.As == "" {
			return nil, nil, nil, fmt.Errorf("exec: aggregate %s has no output name", a)
		}
		kind := s.Columns[idx].Kind
		switch a.Fn {
		case algebra.AggCount:
			kind = types.KindInt
		case algebra.AggSum:
			if kind != types.KindInt {
				kind = types.KindFloat
			}
		}
		cols = append(cols, schema.Column{Name: a.As, Kind: kind})
	}
	return byOrds, aggOrds, schema.New(cols...), nil
}
