package exec

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"prefdb/internal/algebra"
	"prefdb/internal/expr"
	"prefdb/internal/prel"
	"prefdb/internal/types"
)

// TestBatchRowEquivalence is the acceptance contract of the vectorized
// path: for named and randomized plans, every strategy × worker count ×
// cache mode must produce byte-identical rows, row order and Stats
// (modulo the diagnostic Batches counter) with batch execution on and
// off.
func TestBatchRowEquivalence(t *testing.T) {
	cat := movieDB(t)
	plans := map[string]algebra.Node{
		"q1-topk-joins": q1Plan(),
		"q2-threshold":  q2Plan(),
		"q3-union-rank": q3Plan(),
		"project-prefer": &algebra.Project{
			Cols: []expr.Col{expr.ColRef("movies.m_id"), expr.ColRef("movies.year")},
			Input: &algebra.Prefer{P: paMovies(), Input: &algebra.Select{
				Cond:  expr.Cmp("year", expr.OpGe, types.Int(2000)),
				Input: &algebra.Scan{Table: "movies"},
			}},
		},
	}
	iterations := 20
	if testing.Short() {
		iterations = 5
	}
	g := &planGen{r: rand.New(rand.NewSource(20260806))}
	for i := 0; i < iterations; i++ {
		plans[fmt.Sprintf("rand-%02d", i)] = g.genPlan()
	}

	for name, plan := range plans {
		t.Run(name, func(t *testing.T) {
			for _, strategy := range Strategies() {
				for _, workers := range []int{1, 4} {
					for _, cache := range []CacheMode{CacheOff, CacheOn} {
						label := fmt.Sprintf("%v workers=%d cache=%v", strategy, workers, cache)

						ref := New(cat)
						ref.Workers = workers
						ref.ScoreCache = cache
						ref.Batch = BatchOff
						want, err := ref.Run(plan, strategy)
						if err != nil {
							t.Fatalf("%s row path: %v", label, err)
						}
						if ref.Stats().Batches != 0 {
							t.Fatalf("%s: row path counted %d batches", label, ref.Stats().Batches)
						}

						e := New(cat)
						e.Workers = workers
						e.ScoreCache = cache
						e.Batch = BatchOn
						got, err := e.Run(plan, strategy)
						if err != nil {
							t.Fatalf("%s batch path: %v", label, err)
						}

						mustIdentical(t, want, got, label)
						rs, gs := ref.Stats(), e.Stats()
						rs.Batches, gs.Batches = 0, 0
				rs.JoinProbeBatches, gs.JoinProbeBatches = 0, 0
						rs.JoinProbeBatches, gs.JoinProbeBatches = 0, 0
						if rs != gs {
							t.Fatalf("%s: batch stats %+v, want %+v", label, gs, rs)
						}
					}
				}
			}
		})
	}
}

// TestBatchSizeEquivalence sweeps extreme block sizes (including a
// degenerate 1-row batch) to pin boundary behavior: results must not
// depend on how the pipeline is blocked.
func TestBatchSizeEquivalence(t *testing.T) {
	cat := movieDB(t)
	plans := map[string]algebra.Node{
		"q1-topk-joins": q1Plan(),
		"prefer-chain": &algebra.Prefer{P: paMovies(), Input: &algebra.Prefer{
			P: pbMovies(), Input: &algebra.Select{
				Cond:  expr.Cmp("duration", expr.OpLe, types.Int(150)),
				Input: &algebra.Scan{Table: "movies"},
			},
		}},
	}
	for name, plan := range plans {
		t.Run(name, func(t *testing.T) {
			ref := New(cat)
			ref.Batch = BatchOff
			want, err := ref.Run(plan, Native)
			if err != nil {
				t.Fatalf("row path: %v", err)
			}
			for _, size := range []int{1, 3, 64, 1024, 4096} {
				e := New(cat)
				e.BatchSize = size
				got, err := e.Run(plan, Native)
				if err != nil {
					t.Fatalf("batch size %d: %v", size, err)
				}
				mustIdentical(t, want, got, fmt.Sprintf("batch size %d", size))
				rs, gs := ref.Stats(), e.Stats()
				rs.Batches, gs.Batches = 0, 0
				rs.JoinProbeBatches, gs.JoinProbeBatches = 0, 0
				if rs != gs {
					t.Fatalf("batch size %d: stats %+v, want %+v", size, gs, rs)
				}
			}
		})
	}
}

// TestBatchCountsBatches pins that the default mode actually takes the
// vectorized path (the equivalence tests would pass vacuously if the
// batch mode silently fell back to rows everywhere).
func TestBatchCountsBatches(t *testing.T) {
	e := New(movieDB(t))
	if _, err := e.Run(q1Plan(), Native); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Batches == 0 {
		t.Fatal("default (batch) execution recorded no batches")
	}
}

// TestParseBatchMode covers the flag surface.
func TestParseBatchMode(t *testing.T) {
	for name, want := range map[string]BatchMode{"on": BatchOn, "Off": BatchOff} {
		got, err := ParseBatchMode(name)
		if err != nil || got != want {
			t.Fatalf("ParseBatchMode(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseBatchMode("sometimes"); err == nil {
		t.Fatal("ParseBatchMode accepted an unknown mode")
	}
}

// TestBatchGuardTrips verifies the vectorized path observes lifecycle
// guards: a tiny row budget must trip ErrResourceExhausted exactly as on
// the row path.
func TestBatchGuardTrips(t *testing.T) {
	plan := &algebra.Prefer{P: paMovies(), Input: &algebra.Scan{Table: "movies"}}
	for _, mode := range []BatchMode{BatchOn, BatchOff} {
		e := New(movieDB(t))
		e.Batch = mode
		e.Limits = Limits{MaxRows: 3}
		_, err := e.RunContext(t.Context(), plan, Native)
		if err == nil {
			t.Fatalf("batch=%v: tiny MaxRows budget did not trip", mode)
		}
		var ge *GuardError
		if !asGuardError(err, &ge) || ge.Limit != LimitRows {
			t.Fatalf("batch=%v: err = %v, want max-rows GuardError", mode, err)
		}
	}
}

func asGuardError(err error, target **GuardError) bool {
	return errors.As(err, target)
}

// TestSegBatchKernelFusesFilterPrefer pins the fused kernel directly:
// a filter→prefer chain over a batch source must score only the rows the
// filter selected, and leave rejected rows unselected.
func TestSegBatchKernelFusesFilterPrefer(t *testing.T) {
	cat := movieDB(t)
	e := New(cat)
	plan := &algebra.Prefer{P: paMovies(), Input: &algebra.Select{
		Cond:  expr.Cmp("year", expr.OpGe, types.Int(2005)),
		Input: &algebra.Scan{Table: "movies"},
	}}
	bi, _, err := e.buildBatch(plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := bi.(*segBatchIter); !ok {
		t.Fatalf("filter→prefer chain compiled to %T, want *segBatchIter", bi)
	}
	var rows []prel.Row
	for {
		b, ok := bi.nextBatch()
		if !ok {
			break
		}
		rows = b.AppendRows(rows)
	}
	if len(rows) == 0 {
		t.Fatal("fused kernel returned no rows")
	}
	yearOrd := 2 // movies schema: m_id, title, year, ...
	for _, r := range rows {
		if y := r.Tuple[yearOrd].AsInt(); y < 2005 {
			t.Fatalf("row with year %d survived the fused filter", y)
		}
	}
	if e.Stats().PreferEvals != len(rows) {
		t.Fatalf("PreferEvals = %d, want %d (selected rows only)", e.Stats().PreferEvals, len(rows))
	}
}

// TestProjectArenaAliasing pins the projection arena's aliasing contract:
// tuples handed out are stable and appending to one cannot clobber its
// chunk neighbours.
func TestProjectArenaAliasing(t *testing.T) {
	a := projectArena{width: 2}
	t1 := a.tuple()
	t1[0], t1[1] = types.Int(1), types.Int(2)
	t2 := a.tuple()
	t2[0], t2[1] = types.Int(3), types.Int(4)
	grown := append(t1, types.Int(99)) // must reallocate, not spill into t2
	_ = grown
	if !t2[0].Equal(types.Int(3)) || !t2[1].Equal(types.Int(4)) {
		t.Fatalf("append through arena tuple clobbered neighbour: %v", t2)
	}
	// Chunk rollover keeps earlier tuples intact.
	for i := 0; i < projectChunkRows*2; i++ {
		nt := a.tuple()
		nt[0] = types.Int(int64(i))
	}
	if !t1[0].Equal(types.Int(1)) {
		t.Fatalf("chunk rollover invalidated earlier tuple: %v", t1)
	}
}
