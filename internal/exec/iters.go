package exec

import (
	"fmt"
	"sort"
	"strings"

	"prefdb/internal/algebra"
	"prefdb/internal/catalog"
	"prefdb/internal/debug"
	"prefdb/internal/expr"
	"prefdb/internal/pref"
	"prefdb/internal/prel"
	"prefdb/internal/schema"
	"prefdb/internal/storage"
	"prefdb/internal/types"
)

// sliceIter streams a materialized row slice.
type sliceIter struct {
	rows []prel.Row
	pos  int
}

func (s *sliceIter) next() (prel.Row, bool) {
	if s.pos >= len(s.rows) {
		return prel.Row{}, false
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true
}

// filterIter applies a compiled condition. The amortized guard tick keeps
// a highly selective filter cancelable while it spins over rejected rows.
type filterIter struct {
	in   iter
	cond *expr.Compiled
	tick pollTick
}

func (f *filterIter) next() (prel.Row, bool) {
	for {
		if f.tick.stop() {
			return prel.Row{}, false
		}
		row, ok := f.in.next()
		if !ok {
			return prel.Row{}, false
		}
		if f.cond.Truthy(row.Tuple) {
			return row, true
		}
	}
}

// projectChunkRows sizes the arena chunks projection iterators allocate:
// one allocation serves this many output tuples, replacing the old
// per-row make([]types.Value, …).
const projectChunkRows = 256

// projectArena hands out fixed-width tuple slices carved from chunked
// backing arrays. Chunks are allocated as needed and never recycled, so
// every tuple it returns has stable storage for the life of the query.
//
// Aliasing contract: tuples from the same arena share a backing array per
// chunk. Each tuple is sliced with a full slice expression (capacity
// pinned to its width), so appends cannot spill into a neighbour; the
// pipeline never mutates tuples in place, so sharing is safe.
type projectArena struct {
	width int
	buf   []types.Value
}

// tuple returns a zeroed slice of the arena's width.
func (a *projectArena) tuple() []types.Value {
	debug.Assertf(a.width > 0, "projectArena used before its width was set")
	if cap(a.buf)-len(a.buf) < a.width {
		a.buf = make([]types.Value, 0, projectChunkRows*a.width)
	}
	start := len(a.buf)
	a.buf = a.buf[:start+a.width]
	return a.buf[start : start+a.width : start+a.width]
}

// projectIter narrows tuples to the selected ordinals, preserving ⟨S,C⟩.
// Output tuples come from a chunked arena (see projectArena), so the
// per-row allocation of the old implementation amortizes to one
// allocation per projectChunkRows rows.
type projectIter struct {
	in    iter
	ords  []int
	arena projectArena
}

func (p *projectIter) next() (prel.Row, bool) {
	row, ok := p.in.next()
	if !ok {
		return prel.Row{}, false
	}
	out := p.arena.tuple()
	for i, o := range p.ords {
		out[i] = row.Tuple[o]
	}
	return prel.Row{Tuple: out, SC: row.SC}, true
}

// preferIter is the prefer operator λ_{p,F} (§IV-C): for each input tuple
// satisfying the conditional part, it combines the tuple's current pair
// with ⟨S(r), C⟩ through the aggregate function; other tuples pass through
// unchanged. A NULL score (⊥) leaves the tuple's pair unchanged, since
// ⟨⊥,·⟩ carries no knowledge.
type preferIter struct {
	in    iter
	cond  *expr.Compiled
	score *expr.Compiled
	conf  float64
	agg   pref.Aggregate
	stats *Stats
	tick  pollTick
	// memo, when non-nil, caches the ⟨S,C⟩ contribution per distinct key
	// projection (see scorecache.go); the direct path below is the
	// reference semantics it must reproduce exactly.
	memo *scoreMemo
}

func (p *preferIter) next() (prel.Row, bool) {
	if p.tick.stop() {
		return prel.Row{}, false
	}
	row, ok := p.in.next()
	if !ok {
		return prel.Row{}, false
	}
	p.stats.PreferEvals++
	if p.memo != nil {
		if sc, has := p.memo.lookupOrCompute(row.Tuple, p.stats); has {
			row.SC = p.agg.Combine(row.SC, sc)
		}
		return row, true
	}
	if p.cond.Truthy(row.Tuple) {
		p.stats.ScoreEvals++
		if v := p.score.Eval(row.Tuple); !v.IsNull() && v.IsNumeric() {
			s := pref.Clamp01(v.AsFloat())
			row.SC = p.agg.Combine(row.SC, types.NewSC(s, p.conf))
		}
	}
	return row, true
}

// thresholdIter filters on the score or confidence dimension. Confidence is
// defined for every tuple (0 when the pair is ⊥); the score of a ⊥ pair is
// unknown, so any score comparison rejects the tuple.
type thresholdIter struct {
	in    iter
	by    algebra.RankBy
	op    expr.Op
	value float64
	tick  pollTick
}

func (t *thresholdIter) next() (prel.Row, bool) {
	for {
		if t.tick.stop() {
			return prel.Row{}, false
		}
		row, ok := t.in.next()
		if !ok {
			return prel.Row{}, false
		}
		var v float64
		if t.by == algebra.ByConf {
			v = row.SC.Conf
		} else {
			if !row.SC.Known {
				continue
			}
			v = row.SC.Score
		}
		if cmpFloat(v, t.op, t.value) {
			return row, true
		}
	}
}

func cmpFloat(v float64, op expr.Op, ref float64) bool {
	switch op {
	case expr.OpEq:
		return v == ref
	case expr.OpNe:
		return v != ref
	case expr.OpLt:
		return v < ref
	case expr.OpLe:
		return v <= ref
	case expr.OpGt:
		return v > ref
	case expr.OpGe:
		return v >= ref
	default:
		return false
	}
}

// --- scans and access paths ---

// buildScan compiles a (possibly filtered) base-table access. When filter
// conjuncts allow, an index access path replaces the sequential scan; the
// remaining conjuncts become a residual filter.
func (e *Executor) buildScan(scan *algebra.Scan, conjuncts []expr.Node) (iter, *schema.Schema, error) {
	base, residual, s, err := e.scanAccess(scan, conjuncts)
	if err != nil {
		return nil, nil, err
	}
	if residual != nil {
		base = &filterIter{in: base, cond: residual, tick: pollTick{g: e.gd}}
	}
	return base, s, nil
}

// scanAccess resolves the access path for a (possibly filtered) base-table
// scan: the base iterator (heap scan or index path) plus the compiled
// residual condition (nil when every conjunct was absorbed by an index).
// buildScan applies the residual row-at-a-time; the vectorized path
// (batch.go) applies it as a selection-vector kernel instead.
func (e *Executor) scanAccess(scan *algebra.Scan, conjuncts []expr.Node) (iter, *expr.Compiled, *schema.Schema, error) {
	t, err := e.Cat.Table(scan.Table)
	if err != nil {
		return nil, nil, nil, err
	}
	s := t.Schema().Rename(scan.AliasName())

	var residual []expr.Node
	var base iter
	for i, c := range conjuncts {
		if base != nil {
			residual = append(residual, conjuncts[i:]...)
			break
		}
		if it := e.tryIndexPath(t, s, c); it != nil {
			base = it
			continue
		}
		residual = append(residual, c)
	}
	if base == nil {
		base = &heapScanIter{heap: t.Heap, stats: &e.stats, tick: pollTick{g: e.gd}}
	}
	var cond *expr.Compiled
	if len(residual) > 0 {
		cond, err = expr.CompileCondition(expr.AndAll(residual), s, e.Funcs)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	return base, cond, s, nil
}

// tryIndexPath returns an index-backed iterator for a single conjunct of
// the form col = lit (hash or btree index) or col <cmp> lit / BETWEEN
// (btree index), or nil when no index applies.
func (e *Executor) tryIndexPath(t *catalog.Table, s *schema.Schema, c expr.Node) iter {
	switch n := c.(type) {
	case expr.Bin:
		col, lit, op, ok := expr.BindColLit(s, n)
		if !ok {
			return nil
		}
		name := strings.ToLower(col.Name)
		if op == expr.OpEq {
			if ix, ok := t.HashIndexOn(name); ok {
				e.stats.IndexProbes++
				return &rowIDIter{heap: t.Heap, ids: ix.Lookup([]types.Value{lit}), stats: &e.stats}
			}
			if ix, ok := t.BTreeIndexOn(name); ok {
				e.stats.IndexProbes++
				return &rowIDIter{heap: t.Heap, ids: ix.Lookup(lit), stats: &e.stats}
			}
			return nil
		}
		ix, ok := t.BTreeIndexOn(name)
		if !ok {
			return nil
		}
		var lo, hi types.Value
		loIncl, hiIncl := true, true
		switch op {
		case expr.OpLt:
			hi, hiIncl = lit, false
		case expr.OpLe:
			hi = lit
		case expr.OpGt:
			lo, loIncl = lit, false
		case expr.OpGe:
			lo = lit
		default:
			return nil
		}
		e.stats.IndexProbes++
		return e.btreeRangeIter(t, ix, lo, hi, loIncl, hiIncl)

	case expr.Between:
		col, okC := n.X.(expr.Col)
		loLit, okLo := n.Lo.(expr.Lit)
		hiLit, okHi := n.Hi.(expr.Lit)
		if !okC || !okLo || !okHi {
			return nil
		}
		if _, err := s.IndexOf(col.Table, col.Name); err != nil {
			return nil
		}
		ix, ok := t.BTreeIndexOn(strings.ToLower(col.Name))
		if !ok {
			return nil
		}
		e.stats.IndexProbes++
		return e.btreeRangeIter(t, ix, loLit.Val, hiLit.Val, true, true)
	}
	return nil
}

func (e *Executor) btreeRangeIter(t *catalog.Table, ix *storage.BTreeIndex, lo, hi types.Value, loIncl, hiIncl bool) iter {
	var ids []storage.RowID
	ix.Range(lo, hi, loIncl, hiIncl, func(id storage.RowID) bool {
		ids = append(ids, id)
		return true
	})
	return &rowIDIter{heap: t.Heap, ids: ids, stats: &e.stats}
}

// heapScanIter streams every live tuple of a heap with the default ⟨⊥,0⟩.
type heapScanIter struct {
	heap  *storage.Heap
	stats *Stats
	tick  pollTick

	inited bool
	rows   []prel.Row
	pos    int
}

// materialize snapshots the heap into the cursor on first use and returns
// the row slice; both the row path (next) and the vectorized path
// (heapBatchSrc) share it, so RowsScanned accounting is identical.
func (h *heapScanIter) materialize() []prel.Row {
	if !h.inited {
		// Snapshot RowIDs lazily into a cursor; heaps are append-only during
		// query execution so a direct page walk is safe and allocation-free
		// per row.
		h.rows = make([]prel.Row, 0, h.heap.Len())
		h.heap.Scan(func(_ storage.RowID, tuple []types.Value) bool {
			h.rows = append(h.rows, prel.Row{Tuple: tuple})
			return !h.tick.stop()
		})
		h.stats.RowsScanned += len(h.rows)
		h.inited = true
	}
	return h.rows
}

func (h *heapScanIter) next() (prel.Row, bool) {
	h.materialize()
	if h.pos >= len(h.rows) {
		return prel.Row{}, false
	}
	r := h.rows[h.pos]
	h.pos++
	return r, true
}

// rowIDIter fetches specific rows by RowID (index access path).
type rowIDIter struct {
	heap  *storage.Heap
	ids   []storage.RowID
	stats *Stats
	pos   int
}

func (r *rowIDIter) next() (prel.Row, bool) {
	for r.pos < len(r.ids) {
		id := r.ids[r.pos]
		r.pos++
		tuple, ok := r.heap.Get(id)
		if !ok {
			continue
		}
		r.stats.RowsScanned++
		return prel.Row{Tuple: tuple}, true
	}
	return prel.Row{}, false
}

// --- joins ---

// buildJoin compiles the extended inner join ⋈_{φ,F}. Equi-conjuncts over
// opposite sides select a hash join; other conditions run as residual
// filters, falling back to a block nested-loop join when no equi-conjunct
// exists.
func (e *Executor) buildJoin(j *algebra.Join) (iter, *schema.Schema, error) {
	lIt, lS, err := e.build(j.Left)
	if err != nil {
		return nil, nil, err
	}
	rIt, rS, err := e.build(j.Right)
	if err != nil {
		return nil, nil, err
	}
	out := lS.Concat(rS)

	eqL, eqR, residual := splitEquiJoin(j.Cond, lS, rS)
	var base iter
	if len(eqL) > 0 {
		if e.parallelOK() {
			base = &parallelHashJoinIter{e: e, left: lIt, right: rIt, eqL: eqL, eqR: eqR}
		} else {
			base = newHashJoinIter(lIt, rIt, lS.Len(), eqL, eqR, e.Agg, &e.stats, e.gd)
		}
	} else {
		base = newNLJoinIter(lIt, rIt, lS.Len(), e.Agg, &e.stats, e.gd)
	}
	if residual != nil {
		cond, err := expr.CompileCondition(residual, out, e.Funcs)
		if err != nil {
			return nil, nil, err
		}
		base = &filterIter{in: base, cond: cond, tick: pollTick{g: e.gd}}
	}
	return base, out, nil
}

// splitEquiJoin partitions a join condition into equi-join column pairs
// (left ordinal, right ordinal) and a residual condition.
func splitEquiJoin(cond expr.Node, lS, rS *schema.Schema) (eqL, eqR []int, residual expr.Node) {
	var rest []expr.Node
	for _, c := range expr.Conjuncts(cond) {
		b, ok := c.(expr.Bin)
		if !ok || b.Op != expr.OpEq {
			rest = append(rest, c)
			continue
		}
		lc, lok := b.L.(expr.Col)
		rc, rok := b.R.(expr.Col)
		if !lok || !rok {
			rest = append(rest, c)
			continue
		}
		if li, err := lS.IndexOf(lc.Table, lc.Name); err == nil {
			if ri, err2 := rS.IndexOf(rc.Table, rc.Name); err2 == nil {
				eqL, eqR = append(eqL, li), append(eqR, ri)
				continue
			}
		}
		if li, err := lS.IndexOf(rc.Table, rc.Name); err == nil {
			if ri, err2 := rS.IndexOf(lc.Table, lc.Name); err2 == nil {
				eqL, eqR = append(eqL, li), append(eqR, ri)
				continue
			}
		}
		rest = append(rest, c)
	}
	return eqL, eqR, expr.AndAll(rest)
}

// hashJoinIter builds a hash table on the left input and probes it with the
// right input, combining score-confidence pairs via F.
type hashJoinIter struct {
	left, right iter
	lWidth      int
	eqL, eqR    []int
	agg         pref.Aggregate
	stats       *Stats
	g           *guard
	tick        pollTick

	built   bool
	table   map[uint64][]prel.Row
	pending []prel.Row
	pos     int
}

func newHashJoinIter(l, r iter, lWidth int, eqL, eqR []int, agg pref.Aggregate, stats *Stats, g *guard) *hashJoinIter {
	return &hashJoinIter{left: l, right: r, lWidth: lWidth, eqL: eqL, eqR: eqR, agg: agg, stats: stats,
		g: g, tick: pollTick{g: g}}
}

func (h *hashJoinIter) next() (prel.Row, bool) {
	if !h.built {
		h.table = map[uint64][]prel.Row{}
		// The build side is buffered state: charge it against the query's
		// materialization budgets so a runaway build trips before OOM.
		meter := matTick{g: h.g}
		for {
			row, ok := h.left.next()
			if !ok {
				break
			}
			key := hashCols(row.Tuple, h.eqL)
			h.table[key] = append(h.table[key], row)
			if meter.width == 0 {
				meter.width = len(row.Tuple) + 2
			}
			if meter.row() != nil {
				break // trip is recorded in the guard; drain surfaces it
			}
		}
		_ = meter.flush()
		h.built = true
	}
	for {
		if h.pos < len(h.pending) {
			r := h.pending[h.pos]
			h.pos++
			return r, true
		}
		if h.tick.stop() {
			return prel.Row{}, false
		}
		rRow, ok := h.right.next()
		if !ok {
			return prel.Row{}, false
		}
		key := hashCols(rRow.Tuple, h.eqR)
		candidates := h.table[key]
		if len(candidates) == 0 {
			continue
		}
		h.pending = h.pending[:0]
		h.pos = 0
		for _, lRow := range candidates {
			if !equalOn(lRow.Tuple, rRow.Tuple, h.eqL, h.eqR) {
				continue
			}
			h.pending = append(h.pending, combineRows(lRow, rRow, h.agg))
		}
	}
}

func hashCols(tuple []types.Value, cols []int) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range cols {
		h ^= tuple[c].Hash()
		h *= 1099511628211
	}
	return h
}

func equalOn(l, r []types.Value, eqL, eqR []int) bool {
	for i := range eqL {
		if !l[eqL[i]].Equal(r[eqR[i]]) {
			return false
		}
	}
	return true
}

// combineRows concatenates tuples and combines their pairs through F, the
// extended join semantics of §IV-B.
func combineRows(l, r prel.Row, agg pref.Aggregate) prel.Row {
	tuple := make([]types.Value, 0, len(l.Tuple)+len(r.Tuple))
	tuple = append(tuple, l.Tuple...)
	tuple = append(tuple, r.Tuple...)
	return prel.Row{Tuple: tuple, SC: agg.Combine(l.SC, r.SC)}
}

// nlJoinIter is a nested-loop cross join (residual conditions filter above).
type nlJoinIter struct {
	left, right iter
	lWidth      int
	agg         pref.Aggregate
	stats       *Stats
	g           *guard
	tick        pollTick

	built bool
	rRows []prel.Row
	lRow  prel.Row
	lOK   bool
	rPos  int
}

func newNLJoinIter(l, r iter, lWidth int, agg pref.Aggregate, stats *Stats, g *guard) *nlJoinIter {
	return &nlJoinIter{left: l, right: r, lWidth: lWidth, agg: agg, stats: stats,
		g: g, tick: pollTick{g: g}}
}

func (n *nlJoinIter) next() (prel.Row, bool) {
	if !n.built {
		// The buffered inner side is materialized state: meter it.
		meter := matTick{g: n.g}
		for {
			row, ok := n.right.next()
			if !ok {
				break
			}
			n.rRows = append(n.rRows, row)
			if meter.width == 0 {
				meter.width = len(row.Tuple) + 2
			}
			if meter.row() != nil {
				break
			}
		}
		_ = meter.flush()
		n.lRow, n.lOK = n.left.next()
		n.built = true
	}
	for {
		if !n.lOK || n.tick.stop() {
			return prel.Row{}, false
		}
		if n.rPos < len(n.rRows) {
			r := n.rRows[n.rPos]
			n.rPos++
			return combineRows(n.lRow, r, n.agg), true
		}
		n.lRow, n.lOK = n.left.next()
		n.rPos = 0
	}
}

// --- set operations ---

// buildSet compiles ∪_F, ∩_F and −. All three materialize both inputs and
// operate on tuple fingerprints; duplicate tuples within an input are
// combined via F first (p-relations are sets of tuples).
func (e *Executor) buildSet(s *algebra.Set) (iter, *schema.Schema, error) {
	lIt, lS, err := e.build(s.Left)
	if err != nil {
		return nil, nil, err
	}
	rIt, rS, err := e.build(s.Right)
	if err != nil {
		return nil, nil, err
	}
	if !lS.EqualLayout(rS) {
		return nil, nil, fmt.Errorf("exec: %s inputs are not union-compatible: %s vs %s", s.Op, lS, rS)
	}
	lRows, lIndex := dedupByTuple(drainIter(lIt), e.Agg, e.gd)
	rRows, rIndex := dedupByTuple(drainIter(rIt), e.Agg, e.gd)

	var out []prel.Row
	switch s.Op {
	case algebra.SetUnion:
		out = append(out, lRows...)
		for _, row := range rRows {
			if li, dup := lIndex.lookup(row.Tuple); dup {
				out[li].SC = e.Agg.Combine(out[li].SC, row.SC)
			} else {
				out = append(out, row)
			}
		}
	case algebra.SetIntersect:
		for _, row := range rRows {
			if li, hit := lIndex.lookup(row.Tuple); hit {
				out = append(out, prel.Row{Tuple: lRows[li].Tuple, SC: e.Agg.Combine(lRows[li].SC, row.SC)})
			}
		}
	case algebra.SetDiff:
		for _, row := range lRows {
			if _, hit := rIndex.lookup(row.Tuple); !hit {
				out = append(out, row)
			}
		}
	}
	return &sliceIter{rows: out}, lS, nil
}

func drainIter(it iter) []prel.Row {
	var out []prel.Row
	for {
		row, ok := it.next()
		if !ok {
			return out
		}
		out = append(out, row)
	}
}

// tupleIndex maps tuples to indices in a deduplicated row slice, bucketed
// by types.HashTuple with full-tuple equality confirm — no per-row string
// key is built (the old implementation fingerprinted every tuple into a
// string). Equality is types.TupleEqual, matching the hash-join probe and
// Value.Hash's contract that equal values hash identically.
type tupleIndex struct {
	buckets map[uint64][]int
	rows    []prel.Row
}

// lookup returns the index of the deduplicated row equal to tuple.
func (ix *tupleIndex) lookup(tuple []types.Value) (int, bool) {
	for _, i := range ix.buckets[types.HashTuple(tuple)] {
		if types.TupleEqual(ix.rows[i].Tuple, tuple) {
			return i, true
		}
	}
	return 0, false
}

// dedupByTuple collapses duplicate tuples (combining pairs via F, since a
// p-relation is a set of tuples), preserving first-seen order, and returns
// the surviving rows plus an index over them.
func dedupByTuple(rows []prel.Row, agg pref.Aggregate, g *guard) ([]prel.Row, *tupleIndex) {
	out := make([]prel.Row, 0, len(rows))
	ix := &tupleIndex{buckets: make(map[uint64][]int, len(rows))}
	tick := pollTick{g: g}
	for _, row := range rows {
		if tick.stop() {
			break // partial: the tripped guard surfaces from drain
		}
		h := types.HashTuple(row.Tuple)
		dup := false
		for _, i := range ix.buckets[h] {
			if types.TupleEqual(out[i].Tuple, row.Tuple) {
				out[i].SC = agg.Combine(out[i].SC, row.SC)
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		ix.buckets[h] = append(ix.buckets[h], len(out))
		out = append(out, row)
	}
	ix.rows = out
	return out, ix
}

// skyline keeps rows not dominated in the (score, conf) plane, via a sort
// and sweep: order by score desc then conf desc; a row survives iff its
// confidence exceeds every strictly-better-scored row's confidence and it
// is not dominated within its own score group. Rows with ⊥ pairs are
// dominated by any known row.
func skyline(rows []prel.Row) []prel.Row {
	known := make([]prel.Row, 0, len(rows))
	var unknown []prel.Row
	for _, r := range rows {
		if r.SC.Known {
			known = append(known, r)
		} else {
			unknown = append(unknown, r)
		}
	}
	if len(known) == 0 {
		return unknown // nothing dominates anything
	}
	tmp := prel.PRelation{Rows: known}
	tmp.SortByScore()
	var out []prel.Row
	bestConfAbove := -1.0 // max conf among strictly higher scores
	i := 0
	for i < len(tmp.Rows) {
		// Process one equal-score group.
		j := i
		groupMax := -1.0
		for j < len(tmp.Rows) && tmp.Rows[j].SC.Score == tmp.Rows[i].SC.Score {
			if tmp.Rows[j].SC.Conf > groupMax {
				groupMax = tmp.Rows[j].SC.Conf
			}
			j++
		}
		if groupMax > bestConfAbove {
			for k := i; k < j; k++ {
				if tmp.Rows[k].SC.Conf == groupMax {
					out = append(out, tmp.Rows[k])
				}
			}
		}
		if groupMax > bestConfAbove {
			bestConfAbove = groupMax
		}
		i = j
	}
	return out
}

// attrSkyline computes the attribute skyline of Börzsönyi et al. over the
// listed numeric dimensions, using their block-nested-loops algorithm: a
// window of mutually incomparable tuples is maintained; each candidate is
// dropped if dominated by a window tuple, replaces any window tuples it
// dominates, and joins the window otherwise. NULL dimension values rank
// worse than any number.
func attrSkyline(rel *prel.PRelation, dims []algebra.SkyDim, g *guard) ([]prel.Row, error) {
	ords := make([]int, len(dims))
	maxes := make([]bool, len(dims))
	for i, d := range dims {
		idx, err := rel.Schema.IndexOf(d.Col.Table, d.Col.Name)
		if err != nil {
			return nil, err
		}
		ords[i] = idx
		maxes[i] = d.Max
	}
	// dimVal extracts a "bigger is better" coordinate.
	dimVal := func(row prel.Row, i int) (float64, bool) {
		v := row.Tuple[ords[i]]
		if v.IsNull() || !v.IsNumeric() {
			return 0, false // worst
		}
		f := v.AsFloat()
		if !maxes[i] {
			f = -f
		}
		return f, true
	}
	// dominates reports whether a is at least as good as b in every
	// dimension and strictly better in one.
	dominates := func(a, b prel.Row) bool {
		strict := false
		for i := range ords {
			av, aok := dimVal(a, i)
			bv, bok := dimVal(b, i)
			switch {
			case !aok && !bok:
				// equal (both unknown)
			case !aok:
				return false // a worse in dim i
			case !bok:
				strict = true
			case av < bv:
				return false
			case av > bv:
				strict = true
			}
		}
		return strict
	}
	// The block-nested-loops sweep is quadratic, so it polls the guard per
	// candidate (amortized) to stay cancelable on adversarial inputs.
	tick := pollTick{g: g}
	var window []prel.Row
candidates:
	for _, cand := range rel.Rows {
		if tick.stop() {
			return nil, g.failure()
		}
		kept := window[:0]
		for _, w := range window {
			if dominates(w, cand) {
				continue candidates // window survives untouched
			}
			if !dominates(cand, w) {
				kept = append(kept, w)
			}
		}
		window = append(kept, cand)
	}
	return window, nil
}

// limitIter skips offset rows then yields at most n.
type limitIter struct {
	in      iter
	n       int
	offset  int
	skipped int
	yielded int
}

// prefdb:nolifecycle skip loop is bounded by the plan's OFFSET; the input iterator ticks
func (l *limitIter) next() (prel.Row, bool) {
	for l.skipped < l.offset {
		if _, ok := l.in.next(); !ok {
			return prel.Row{}, false
		}
		l.skipped++
	}
	if l.yielded >= l.n {
		return prel.Row{}, false
	}
	row, ok := l.in.next()
	if !ok {
		return prel.Row{}, false
	}
	l.yielded++
	return row, true
}

// orderRows stably sorts a relation by the attribute keys (NULLs first on
// ascending keys, mirroring the total order of types.Compare).
func orderRows(rel *prel.PRelation, keys []algebra.OrderKey) error {
	ords := make([]int, len(keys))
	for i, k := range keys {
		idx, err := rel.Schema.IndexOf(k.Col.Table, k.Col.Name)
		if err != nil {
			return err
		}
		ords[i] = idx
	}
	sort.SliceStable(rel.Rows, func(i, j int) bool {
		a, b := rel.Rows[i], rel.Rows[j]
		for d, o := range ords {
			c, _ := types.Compare(a.Tuple[o], b.Tuple[o])
			if c == 0 {
				continue
			}
			if keys[d].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return nil
}
