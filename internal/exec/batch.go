// Vectorized batch execution (tentpole of the throughput roadmap).
//
// The executor can evaluate a pipeline over morsel-sized row batches
// (prel.Batch) instead of one row per virtual call: operators with a batch
// implementation process a whole block per nextBatch call, compacting a
// selection vector instead of copying rows, so interface dispatch, guard
// polling and stats accounting amortize over the batch. σ/λ chains fuse
// into a single kernel (applySegOps) that filters via the conjunct-wise
// expr.TruthyBatch and scores only surviving rows, consulting the score
// cache batch-wise.
//
// Fallback rules keep the mode transparent:
//
//   - buildBatch mirrors build node-by-node. Nodes without a batch
//     implementation (set ops, skyline, rank, order-by, top-k, limit)
//     compile through the row-path build; their output is re-adapted into
//     batches (asBatchIter), and blocking operators re-enter the batch
//     path for their children through drainChild → drain.
//   - A batch consumer that needs rows (the hash-join build side, the
//     morsel fan-out) adapts with batchToRow; a row source that must feed
//     a batch operator adapts with rowBatchSrc.
//   - Results, row order and Stats are byte-identical to the row path in
//     every mode combination; only the diagnostic Batches counter differs.
//     The equivalence suite (batch_test.go) enforces this across
//     strategies, worker counts and cache modes.
package exec

import (
	"fmt"
	"strings"

	"prefdb/internal/algebra"
	"prefdb/internal/colstore"
	"prefdb/internal/debug"
	"prefdb/internal/expr"
	"prefdb/internal/pref"
	"prefdb/internal/prel"
	"prefdb/internal/schema"
	"prefdb/internal/storage"
	"prefdb/internal/types"
)

// BatchMode selects the executor's evaluation style.
type BatchMode uint8

const (
	// BatchOn (the zero value) evaluates supported operators vectorized
	// over row batches with selection vectors.
	BatchOn BatchMode = iota
	// BatchOff forces the row-at-a-time volcano path everywhere; the
	// equivalence suite uses it as the reference semantics.
	BatchOff
)

// String implements fmt.Stringer.
func (m BatchMode) String() string {
	if m == BatchOff {
		return "off"
	}
	return "on"
}

// ParseBatchMode resolves a batch mode by name.
func ParseBatchMode(name string) (BatchMode, error) {
	switch strings.ToLower(name) {
	case "on":
		return BatchOn, nil
	case "off":
		return BatchOff, nil
	default:
		return 0, fmt.Errorf("exec: unknown batch mode %q (on, off)", name)
	}
}

// defaultBatchSize is the rows-per-batch block size when BatchSize is 0:
// large enough to amortize per-batch overhead, small enough that a batch's
// tuple pointers and ⟨S,C⟩ column stay cache-resident.
const defaultBatchSize = 1024

// batchOK reports whether pipelines may take the vectorized path.
func (e *Executor) batchOK() bool { return e.Batch != BatchOff }

// batchSize resolves the configured rows-per-batch block size.
func (e *Executor) batchSize() int {
	if e.BatchSize > 0 {
		return e.BatchSize
	}
	return defaultBatchSize
}

// batchIter is the pull-based batch stream: nextBatch returns a non-empty
// batch (Live() > 0) or reports exhaustion. The returned batch is valid
// only until the next call — consumers that buffer rows must copy them out
// (Batch.AppendRows).
type batchIter interface {
	nextBatch() (*prel.Batch, bool)
}

// --- sources and adapters ---

// sliceBatchSrc serves a materialized row slice in batch-sized blocks,
// reusing one batch buffer across calls.
type sliceBatchSrc struct {
	rows []prel.Row
	pos  int
	size int
	buf  *prel.Batch
}

func newSliceBatchSrc(rows []prel.Row, size int) *sliceBatchSrc {
	return &sliceBatchSrc{rows: rows, size: size}
}

func (s *sliceBatchSrc) nextBatch() (*prel.Batch, bool) {
	if s.pos >= len(s.rows) {
		return nil, false
	}
	hi := min(s.pos+s.size, len(s.rows))
	if s.buf == nil {
		s.buf = prel.NewBatch(s.size)
	}
	s.buf.FillRows(s.rows[s.pos:hi])
	s.pos = hi
	return s.buf, true
}

// heapBatchSrc streams a heap page-by-page into a reused batch, never
// materializing the table's row slice (the row path's heapScanIter
// snapshot — the dominant allocation on scan-heavy pipelines). Tuples
// alias heap pages, which are append-only during execution. The batch
// pipeline always drains its sources (blocking consumers sit on the row
// fallback), so the summed per-batch RowsScanned equals the row path's
// one-shot snapshot count.
type heapBatchSrc struct {
	heap  *storage.Heap
	stats *Stats
	tick  pollTick
	size  int

	buf  *prel.Batch
	page int
	slot int
	done bool
}

func (h *heapBatchSrc) nextBatch() (*prel.Batch, bool) {
	if h.done {
		return nil, false
	}
	if h.buf == nil {
		h.buf = prel.NewBatch(h.size)
	}
	b := h.buf
	b.Reset()
	for b.Cap() < h.size && h.page < h.heap.Blocks() {
		rows, dead, live := h.heap.Block(h.page)
		if live == 0 {
			h.page++
			h.slot = 0
			continue
		}
		for ; h.slot < len(rows) && b.Cap() < h.size; h.slot++ {
			if dead[h.slot] {
				continue
			}
			b.PushTuple(rows[h.slot])
		}
		if h.slot >= len(rows) {
			h.page++
			h.slot = 0
		}
	}
	if b.Cap() == 0 {
		h.done = true
		return nil, false
	}
	h.stats.RowsScanned += b.Cap()
	if h.tick.stopN(b.Cap()) {
		h.done = true // guard tripped: stop producing, like materialize
	}
	return b, true
}

// rowBatchSrc adapts any row iterator into a batch source: the universal
// bridge that lets operators without a batch implementation feed the
// vectorized pipeline above them.
type rowBatchSrc struct {
	in   iter
	size int
	buf  *prel.Batch
}

// prefdb:nolifecycle loop is bounded by r.size; the wrapped row iterator carries the tick
func (r *rowBatchSrc) nextBatch() (*prel.Batch, bool) {
	if r.buf == nil {
		r.buf = prel.NewBatch(r.size)
	}
	r.buf.Reset()
	for r.buf.Cap() < r.size {
		row, ok := r.in.next()
		if !ok {
			break
		}
		r.buf.Push(row)
	}
	if r.buf.Cap() == 0 {
		return nil, false
	}
	return r.buf, true
}

// batchToRow adapts a batch pipeline back into a row iterator for
// consumers that buffer rows themselves (the hash-join build side, the
// nested-loop join). Rows returned alias batch tuple storage, which is
// stable (tuples are immutable and arena-backed); the ⟨S,C⟩ pair is copied
// by value, so buffering them is safe.
type batchToRow struct {
	in  batchIter
	cur *prel.Batch
	pos int
}

// prefdb:nolifecycle each inner pull yields a non-empty batch, so the loop advances every second iteration; the batch producer ticks
func (b *batchToRow) next() (prel.Row, bool) {
	for {
		if b.cur != nil && b.pos < b.cur.Live() {
			r := b.cur.Row(b.pos)
			b.pos++
			return r, true
		}
		var ok bool
		b.cur, ok = b.in.nextBatch()
		b.pos = 0
		if !ok {
			return prel.Row{}, false
		}
	}
}

// asBatchIter adapts a row iterator produced by the fallback build path.
// A materialized sliceIter is served zero-copy in blocks; anything else
// goes through the row adapter.
func (e *Executor) asBatchIter(it iter) batchIter {
	if si, ok := it.(*sliceIter); ok && si.pos == 0 {
		return newSliceBatchSrc(si.rows, e.batchSize())
	}
	return &rowBatchSrc{in: it, size: e.batchSize()}
}

// --- vectorized operators ---

// filterBatch applies a compiled condition by compacting the selection
// vector (expr.TruthyBatch); empty batches are skipped, with an amortized
// guard tick covering the spin over fully rejected blocks. Columnar
// batches filter through the direct-column kernels first
// (expr.TruthyBatchCols), touching decoded row views only for conjuncts
// without a kernel — those crossings count as materialized rows.
type filterBatch struct {
	in    batchIter
	cond  *expr.Compiled
	stats *Stats
	tick  pollTick
	scr   expr.ColScratch
}

func (f *filterBatch) nextBatch() (*prel.Batch, bool) {
	for {
		b, ok := f.in.nextBatch()
		if !ok {
			return nil, false
		}
		if f.tick.stopN(b.Live()) {
			return nil, false
		}
		if b.Columnar() {
			var mat int
			b.Sel, mat = f.cond.TruthyBatchCols(b.Cols, b.View, b.Sel, &f.scr)
			f.stats.RowsMaterialized += mat
		} else {
			b.Sel = f.cond.TruthyBatch(b.Tuples, b.Sel)
		}
		b.Check()
		if b.Live() > 0 {
			return b, true
		}
	}
}

// segScratch is the per-caller scratch of the vectorized prefer kernel: a
// private selection vector for each preference's conditional part and a
// score column for its batch-evaluated scoring part. Each sequential
// kernel and each morsel worker owns one, so the shared compiled segOps
// stay read-only under parallel execution.
type segScratch struct {
	sel    []int32
	scores []types.Value
	// Direct-column score path scratch: the float score vector and its
	// NULL flags, plus one expr.ColScratch per chain op (dictionary
	// accept-bit caches for string conjuncts).
	f      []float64
	null   []bool
	colScr []expr.ColScratch
}

// applySegOps runs a compiled σ/λ chain over one batch in place: filters
// compact the selection vector conjunct-wise, prefers fold ⟨S,C⟩
// contributions into the batch's private SC column for the surviving rows
// only. A preference's conditional part vectorizes like a filter — but
// into the scratch selection vector, since a preference scores matching
// rows rather than dropping the rest — and its scoring part evaluates
// batch-wise (expr.EvalBatch), hoisting per-row scratch out of the row
// loop. Per-row semantics — evaluation order, score clamping, cache
// accounting — are exactly those of filterIter/preferIter, so the batch
// and row paths produce identical rows and Stats. Shared by the
// sequential fused segment (segBatchIter) and the morsel-parallel workers
// (trySegment), which treat each claimed morsel as one batch.
func applySegOps(b *prel.Batch, ops []segOp, memos []*scoreMemo, agg pref.Aggregate, stats *Stats, scr *segScratch) {
	columnar := b.Columnar()
	if columnar && scr.colScr == nil {
		scr.colScr = make([]expr.ColScratch, len(ops))
	}
	for i, op := range ops {
		if op.filter != nil {
			if columnar {
				var mat int
				b.Sel, mat = op.filter.TruthyBatchCols(b.Cols, b.View, b.Sel, &scr.colScr[i])
				stats.RowsMaterialized += mat
			} else {
				b.Sel = op.filter.TruthyBatch(b.Tuples, b.Sel)
			}
			if len(b.Sel) == 0 {
				return
			}
			continue
		}
		stats.PreferEvals += len(b.Sel)
		if memos != nil && memos[i] != nil {
			// The memo keys on projected tuples, so the memo path reads
			// row views even on the direct-column path (consulted
			// batch-wise either way).
			if columnar {
				stats.RowsMaterialized += len(b.Sel)
			}
			memos[i].combineBatch(b, agg, stats)
			continue
		}
		scr.sel = append(scr.sel[:0], b.Sel...)
		if columnar {
			var mat int
			scr.sel, mat = op.cond.TruthyBatchCols(b.Cols, b.View, scr.sel, &scr.colScr[i])
			stats.RowsMaterialized += mat
		} else {
			scr.sel = op.cond.TruthyBatch(b.Tuples, scr.sel)
		}
		if len(scr.sel) == 0 {
			continue
		}
		stats.ScoreEvals += len(scr.sel)
		if columnar {
			// Float fast path: the score evaluates straight off the column
			// vectors into a float column, and the ⟨S,C⟩ vectors update in
			// place — no types.Value boxing anywhere in the loop.
			n := len(scr.sel)
			if cap(scr.f) < n || cap(scr.null) < n {
				scr.f = make([]float64, n)
				scr.null = make([]bool, n)
			}
			f, null := scr.f[:n], scr.null[:n]
			if op.score.EvalFloats(b.Cols, scr.sel, f, null) {
				for k, j := range scr.sel {
					if !null[k] {
						s := pref.Clamp01(f[k])
						sc := agg.Combine(b.SCAt(j), types.NewSC(s, op.conf))
						b.S[j], b.C[j], b.Known[j] = sc.Score, sc.Conf, sc.Known
					}
				}
				continue
			}
			stats.RowsMaterialized += len(scr.sel)
		}
		if cap(scr.scores) < len(scr.sel) {
			scr.scores = make([]types.Value, len(scr.sel))
		}
		scores := scr.scores[:len(scr.sel)]
		op.score.EvalBatch(b.Rows(), scr.sel, scores)
		for k, j := range scr.sel {
			if v := scores[k]; !v.IsNull() && v.IsNumeric() {
				s := pref.Clamp01(v.AsFloat())
				b.SetSC(j, agg.Combine(b.SCAt(j), types.NewSC(s, op.conf)))
			}
		}
	}
}

// segBatchIter is the fused filter→prefer kernel of the sequential batch
// path: one virtual call per batch runs the whole compiled chain.
type segBatchIter struct {
	in    batchIter
	ops   []segOp
	memos []*scoreMemo
	agg   pref.Aggregate
	stats *Stats
	tick  pollTick
	scr   segScratch
}

func (s *segBatchIter) nextBatch() (*prel.Batch, bool) {
	for {
		b, ok := s.in.nextBatch()
		if !ok {
			return nil, false
		}
		if s.tick.stopN(b.Live()) {
			return nil, false
		}
		applySegOps(b, s.ops, s.memos, s.agg, s.stats, &s.scr)
		b.Check()
		if b.Live() > 0 {
			return b, true
		}
	}
}

// projectBatch narrows the selected rows of each batch into a private
// output batch, drawing output tuples from the same chunked arena the row
// path uses (one allocation per projectChunkRows rows; see projectArena
// for the aliasing contract).
type projectBatch struct {
	in    batchIter
	ords  []int
	stats *Stats
	out   *prel.Batch
	arena projectArena
}

// prefdb:nolifecycle projection drops no rows, so the loop iterates at most twice per call; the input pipeline ticks
func (p *projectBatch) nextBatch() (*prel.Batch, bool) {
	for {
		b, ok := p.in.nextBatch()
		if !ok {
			return nil, false
		}
		if p.out == nil {
			p.out = prel.NewBatch(b.Live())
		}
		p.out.Reset()
		if b.Columnar() {
			// Projection needs row views: the surviving rows cross the
			// late-materialization boundary here.
			p.stats.RowsMaterialized += b.Live()
		}
		rows := b.Rows()
		for _, j := range b.Sel {
			t := p.arena.tuple()
			src := rows[j]
			for i, o := range p.ords {
				t[i] = src[o]
			}
			p.out.Push(prel.Row{Tuple: t, SC: b.SCAt(j)})
		}
		p.out.Check()
		if p.out.Live() > 0 {
			return p.out, true
		}
	}
}

// thresholdBatch filters on the score or confidence dimension by
// compacting the selection vector (same semantics as thresholdIter: a ⊥
// pair fails every score comparison, confidence is always defined).
type thresholdBatch struct {
	in    batchIter
	by    algebra.RankBy
	op    expr.Op
	value float64
	tick  pollTick
}

func (t *thresholdBatch) nextBatch() (*prel.Batch, bool) {
	for {
		b, ok := t.in.nextBatch()
		if !ok {
			return nil, false
		}
		if t.tick.stopN(b.Live()) {
			return nil, false
		}
		// Pure vector read: ⟨S,C⟩ lives in the batch's float columns, so
		// thresholds never touch tuples — columnar batches pass through
		// without materializing anything.
		out := b.Sel[:0]
		for _, j := range b.Sel {
			var v float64
			if t.by == algebra.ByConf {
				v = b.C[j]
			} else {
				if !b.Known[j] {
					continue
				}
				v = b.S[j]
			}
			if cmpFloat(v, t.op, t.value) {
				out = append(out, j)
			}
		}
		b.Sel = out
		b.Check()
		if b.Live() > 0 {
			return b, true
		}
	}
}

// hashJoinBatch is the vectorized extended hash join: the build side is
// buffered (it is buffered state either way), the probe side streams
// batches, emitting combined rows into a private output batch in the same
// (probe order, build-insert order) sequence as hashJoinIter.
//
// Both sides run direct-on-column when their batches are columnar with
// typed key vectors: the build hashes keys straight off the vectors
// (joinBuildCols) and the probe hashes each batch with expr.HashCols,
// confirming candidates against the vector slots (expr.KeyEqCols) so a
// probe row's tuple view is touched only when it actually joins — the
// late-materialization boundary moves past the join, and only matching
// probe rows count into Stats.RowsMaterialized.
//
// Borrow contract (build side): the bucket table retains key hashes and
// row views — which alias stable, store-owned tuple arenas — but never
// types.ColVec windows, which die at the producer's next nextBatch. The
// scratchalias analyzer enforces this on the prefdb:col-transient marker;
// prefdbdebug builds additionally re-hash every retained entry from its
// tuple after the build (debugCheckJoinTable), so a window retained (or a
// hash computed inconsistently with the row path) is caught at build end,
// not at a wrong join result.
// prefdb:col-transient
type hashJoinBatch struct {
	left     batchIter
	right    batchIter
	eqL, eqR []int
	agg      pref.Aggregate
	stats    *Stats
	g        *guard
	tick     pollTick

	built  bool
	table  map[uint64][]prel.Row
	out    *prel.Batch
	hashes []uint64
	bks    expr.KeyScratch // build-side dictionary hash cache
	pks    expr.KeyScratch // probe-side dictionary hash cache
}

// keyHashes returns the per-selected-slot key hashes for a columnar batch,
// or nil when the key columns lack typed vectors (tuple fallback).
func (h *hashJoinBatch) keyHashes(b *prel.Batch, keys []int, ks *expr.KeyScratch) []uint64 {
	if !b.Columnar() {
		return nil
	}
	if cap(h.hashes) < len(b.Sel) {
		h.hashes = make([]uint64, len(b.Sel))
	}
	hs := h.hashes[:len(b.Sel)]
	if !expr.HashCols(b.Cols, b.Sel, keys, hs, ks) {
		return nil
	}
	return hs
}

// joinBuildCols drains the build side into the bucket table, hashing the
// key columns off the vectors when a batch is columnar. The retained rows
// are the batch's row views (stable storage), so the build side counts
// fully into RowsMaterialized — it is the buffered state of the join.
func (h *hashJoinBatch) joinBuildCols() {
	h.table = map[uint64][]prel.Row{}
	// The build side is buffered state: charge it against the query's
	// materialization budgets so a runaway build trips before OOM.
	meter := matTick{g: h.g}
	tripped := false
	for !tripped {
		b, ok := h.left.nextBatch()
		if !ok {
			break
		}
		hs := h.keyHashes(b, h.eqL, &h.bks)
		if b.Columnar() {
			h.stats.RowsMaterialized += b.Live()
		}
		rows := b.Rows()
		for k, j := range b.Sel {
			row := prel.Row{Tuple: rows[j], SC: b.SCAt(j)}
			var key uint64
			if hs != nil {
				key = hs[k]
			} else {
				key = hashCols(row.Tuple, h.eqL)
			}
			h.table[key] = append(h.table[key], row)
			if meter.width == 0 {
				meter.width = len(row.Tuple) + 2
			}
			if meter.row() != nil {
				tripped = true // trip is recorded in the guard; drain surfaces it
				break
			}
		}
	}
	_ = meter.flush()
	debugCheckJoinTable(h.table, h.eqL)
	h.built = true
}

func (h *hashJoinBatch) nextBatch() (*prel.Batch, bool) {
	if !h.built {
		h.joinBuildCols()
	}
	for {
		b, ok := h.right.nextBatch()
		if !ok {
			return nil, false
		}
		if h.tick.stopN(b.Live()) {
			return nil, false
		}
		h.stats.JoinProbeBatches++
		if h.out == nil {
			h.out = prel.NewBatch(b.Live())
		}
		h.out.Reset()
		if hs := h.keyHashes(b, h.eqR, &h.pks); hs != nil {
			// Direct probe: hash and confirm on the vectors; a probe row
			// materializes (and is counted) only when it joins.
			var rows [][]types.Value
			for k, j := range b.Sel {
				candidates := h.table[hs[k]]
				if len(candidates) == 0 {
					continue
				}
				matched := false
				for _, lRow := range candidates {
					if !expr.KeyEqCols(b.Cols, j, h.eqR, lRow.Tuple, h.eqL) {
						continue
					}
					if !matched {
						matched = true
						h.stats.RowsMaterialized++
						rows = b.Rows()
					}
					h.out.Push(combineRows(lRow, prel.Row{Tuple: rows[j], SC: b.SCAt(j)}, h.agg))
				}
			}
		} else {
			if b.Columnar() {
				// Probing hashes full tuples, so the probe side materializes.
				h.stats.RowsMaterialized += b.Live()
			}
			rows := b.Rows()
			for _, j := range b.Sel {
				rRow := prel.Row{Tuple: rows[j], SC: b.SCAt(j)}
				key := hashCols(rRow.Tuple, h.eqR)
				for _, lRow := range h.table[key] {
					if equalOn(lRow.Tuple, rRow.Tuple, h.eqL, h.eqR) {
						h.out.Push(combineRows(lRow, rRow, h.agg))
					}
				}
			}
		}
		if h.out.Live() > 0 {
			return h.out, true
		}
	}
}

// debugCheckJoinTable re-hashes every retained build-table entry from its
// tuple in prefdbdebug builds: a bucket key that disagrees with the row
// path's hashCols exposes either a vector/tuple hash divergence in
// expr.HashCols or a build row that retained transient window state
// instead of stable tuple storage (the build-side borrow contract). A
// no-op in normal builds.
func debugCheckJoinTable(table map[uint64][]prel.Row, eqL []int) {
	if !debug.Enabled {
		return
	}
	for key, rows := range table {
		for _, r := range rows {
			debug.Assertf(hashCols(r.Tuple, eqL) == key,
				"hash-join build entry under key %#x re-hashes differently from its tuple (vector/tuple hash divergence or retained transient window)", key)
		}
	}
}

// --- pipeline construction ---

// buildBatch compiles a plan node into a batch pipeline, mirroring build's
// node dispatch. Supported operators get native batch implementations;
// everything else compiles through the row-path build and is re-adapted
// (see the package comment for the fallback rules).
func (e *Executor) buildBatch(n algebra.Node) (batchIter, *schema.Schema, error) {
	switch x := n.(type) {
	case *algebra.Select, *algebra.Prefer:
		return e.buildBatchSegment(n)

	case *algebra.Values:
		return newSliceBatchSrc(x.Rel.Rows, e.batchSize()), x.Rel.Schema, nil

	case *algebra.Scan:
		return e.buildBatchScan(x, nil)

	case *algebra.Project:
		in, s, err := e.buildBatch(x.Input)
		if err != nil {
			return nil, nil, err
		}
		ords := make([]int, len(x.Cols))
		for i, c := range x.Cols {
			idx, err := s.IndexOf(c.Table, c.Name)
			if err != nil {
				return nil, nil, err
			}
			ords[i] = idx
		}
		pb := &projectBatch{in: in, ords: ords, stats: &e.stats}
		pb.arena.width = len(ords)
		return pb, s.Project(ords), nil

	case *algebra.Join:
		return e.buildBatchJoin(x)

	case *algebra.GroupAgg:
		in, s, err := e.buildBatch(x.Input)
		if err != nil {
			return nil, nil, err
		}
		byOrds, aggOrds, out, err := groupAggPlan(x, s)
		if err != nil {
			return nil, nil, err
		}
		tab := newAggTable(byOrds, aggOrds, x.Aggs, e.gd)
		return &groupAggBatch{in: in, tab: tab, stats: &e.stats, tick: pollTick{g: e.gd},
			size: e.batchSize()}, out, nil

	case *algebra.Threshold:
		in, s, err := e.buildBatch(x.Input)
		if err != nil {
			return nil, nil, err
		}
		if !x.Op.IsComparison() {
			return nil, nil, fmt.Errorf("exec: threshold operator %s is not a comparison", x.Op)
		}
		return &thresholdBatch{in: in, by: x.By, op: x.Op, value: x.Value, tick: pollTick{g: e.gd}}, s, nil

	default:
		// Row-path fallback: blocking operators in this subtree still
		// re-enter the batch path for their children via drainChild.
		it, s, err := e.build(n)
		if err != nil {
			return nil, nil, err
		}
		return e.asBatchIter(it), s, nil
	}
}

// buildBatchScan compiles a base-table access for the batch path: the same
// access-path selection as buildScan (shared scanAccess), with the
// residual conjuncts applied as a selection-vector kernel instead of a
// row-at-a-time filter. In colstore mode a full-table access (no index
// path taken, so every conjunct is residual) reads the columnar segment
// store instead of the heap, pruning segments on zone maps against the
// sargable conjuncts — sound precisely because the full conjunction still
// runs as the residual kernel over whatever survives.
func (e *Executor) buildBatchScan(scan *algebra.Scan, conjuncts []expr.Node) (batchIter, *schema.Schema, error) {
	base, residual, s, err := e.scanAccess(scan, conjuncts)
	if err != nil {
		return nil, nil, err
	}
	var bi batchIter
	if h, ok := base.(*heapScanIter); ok {
		if e.colstoreOK() {
			t, tErr := e.Cat.Table(scan.Table)
			if tErr != nil {
				return nil, nil, tErr
			}
			preds := colstore.PredsFrom(s, conjuncts)
			bi = newSegBatchSrc(t.ColStore(), h.heap, preds, h.stats, h.tick, e.batchSize(), e.colstoreDirect())
		} else {
			bi = &heapBatchSrc{heap: h.heap, stats: h.stats, tick: h.tick, size: e.batchSize()}
		}
	} else {
		bi = &rowBatchSrc{in: base, size: e.batchSize()}
	}
	if residual != nil {
		bi = &filterBatch{in: bi, cond: residual, stats: &e.stats, tick: pollTick{g: e.gd}}
	}
	return bi, s, nil
}

// buildBatchSegment compiles a σ/λ chain. With multiple workers it engages
// the morsel-parallel segment exactly as the row path does (trySegment,
// whose workers already run the batch kernel per morsel when batch mode is
// on); sequentially the whole chain fuses into one segBatchIter kernel
// over the leaf's batch source.
func (e *Executor) buildBatchSegment(n algebra.Node) (batchIter, *schema.Schema, error) {
	if e.parallelOK() {
		it, s, handled, err := e.trySegment(n)
		if handled {
			if err != nil {
				return nil, nil, err
			}
			return e.asBatchIter(it), s, nil
		}
	}

	chain, cur := collectChain(n)
	var base batchIter
	var s *schema.Schema
	var err error
	switch leaf := cur.(type) {
	case *algebra.Scan:
		// A select directly over a scan keeps its shot at an index access
		// path, exactly as in the row-path build.
		var conjuncts []expr.Node
		if sel, ok := chain[len(chain)-1].(*algebra.Select); ok {
			conjuncts = expr.Conjuncts(sel.Cond)
			chain = chain[:len(chain)-1]
		}
		base, s, err = e.buildBatchScan(leaf, conjuncts)
	case *algebra.Values:
		base, s = newSliceBatchSrc(leaf.Rel.Rows, e.batchSize()), leaf.Rel.Schema
	default:
		base, s, err = e.buildBatch(leaf)
	}
	if err != nil {
		return nil, nil, err
	}
	ops, err := e.compileSegOps(chain, s)
	if err != nil {
		return nil, nil, err
	}
	if len(ops) == 0 {
		return base, s, nil
	}
	return &segBatchIter{in: base, ops: ops, memos: e.segMemos(ops, s), agg: e.Agg,
		stats: &e.stats, tick: pollTick{g: e.gd}}, s, nil
}

// buildBatchJoin compiles the extended inner join for the batch path: the
// probe side streams batches through hashJoinBatch; the parallel and
// nested-loop variants reuse the row-path implementations (they buffer
// everything anyway) behind adapters. Residual conditions run vectorized.
func (e *Executor) buildBatchJoin(j *algebra.Join) (batchIter, *schema.Schema, error) {
	lBi, lS, err := e.buildBatch(j.Left)
	if err != nil {
		return nil, nil, err
	}
	rBi, rS, err := e.buildBatch(j.Right)
	if err != nil {
		return nil, nil, err
	}
	out := lS.Concat(rS)

	eqL, eqR, residual := splitEquiJoin(j.Cond, lS, rS)
	var base batchIter
	if len(eqL) > 0 {
		if e.parallelOK() {
			it := &parallelHashJoinIter{e: e, leftB: lBi, rightB: rBi, eqL: eqL, eqR: eqR}
			base = &rowBatchSrc{in: it, size: e.batchSize()}
		} else {
			base = &hashJoinBatch{left: lBi, right: rBi, eqL: eqL, eqR: eqR,
				agg: e.Agg, stats: &e.stats, g: e.gd, tick: pollTick{g: e.gd}}
		}
	} else {
		it := newNLJoinIter(&batchToRow{in: lBi}, &batchToRow{in: rBi}, lS.Len(), e.Agg, &e.stats, e.gd)
		base = &rowBatchSrc{in: it, size: e.batchSize()}
	}
	if residual != nil {
		cond, cErr := expr.CompileCondition(residual, out, e.Funcs)
		if cErr != nil {
			return nil, nil, cErr
		}
		base = &filterBatch{in: base, cond: cond, stats: &e.stats, tick: pollTick{g: e.gd}}
	}
	return base, out, nil
}
