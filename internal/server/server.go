// Package server is prefdb's multi-session query server: a TCP listener
// speaking the wire protocol, one engine session per connection, with
// per-session and cross-session admission control.
//
// Architecture (one connection):
//
//	reader goroutine ── frames ──▶ statement goroutines ── results ──▶ serialized writer
//	        │                            ▲
//	        └── FrameCancel ── cancels ──┘
//
// The reader never executes statements, so a FrameCancel arriving while a
// query streams results is seen immediately and cancels the statement's
// context — the engine's cooperative guards stop the query and the stream
// fails with ErrCanceled, exactly as an embedded context cancellation.
//
// Admission control bounds what a process-wide population of sessions can
// do to the shared engine:
//
//   - a server-wide concurrent-statement cap (queuing, FIFO-ish),
//   - a per-session concurrent-statement cap (rejecting, so one
//     connection cannot monopolize the server queue),
//   - cross-session memory accounting: every admitted statement reserves
//     its memory budget against a shared pool and is capped at its
//     reservation by the engine's per-query memory guard, so the pool
//     bounds total materialized bytes across all sessions,
//   - a slow-query log for statements exceeding a latency threshold.
//
// Prepared statements are compiled once per SQL text in a cross-session
// LRU cache — the serving-layer generalization of the engine's
// cross-query score dictionaries — and flushed on DDL (plans reference
// tables by name, so DML needs no flush; score dictionaries already
// invalidate via per-table versions).
package server

import (
	"fmt"
	"io"
	"log"
	"net"
	"runtime"
	"sync"
	"time"

	"prefdb/internal/engine"
)

// Options configures a Server. The zero value listens on an ephemeral
// localhost port with no auth, concurrency derived from GOMAXPROCS and no
// memory pool.
type Options struct {
	// Addr is the TCP listen address (default "127.0.0.1:0").
	Addr string
	// Token, when non-empty, must be presented by every client handshake.
	Token string
	// Name identifies the server in Welcome frames (default "prefdb").
	Name string
	// MaxConcurrent caps concurrently executing statements server-wide;
	// excess statements queue. Default 2 × GOMAXPROCS.
	MaxConcurrent int
	// SessionConcurrent caps concurrently executing statements per
	// session; excess statements are rejected (not queued), so one
	// connection cannot monopolize the server queue. Default 4.
	SessionConcurrent int
	// MemoryBudget is the shared pool of estimated materialization bytes
	// across all sessions (0 = unaccounted). Every admitted statement
	// reserves its per-query budget from the pool.
	MemoryBudget int64
	// QueryMemory is the per-statement budget reserved (and enforced via
	// the engine's memory guard) when the client sets none. Only used when
	// MemoryBudget is set. Default 64 MiB.
	QueryMemory int64
	// SlowQuery logs statements slower than this threshold (0 = off).
	SlowQuery time.Duration
	// StmtCacheSize bounds the cross-session prepared-statement cache
	// (default 128 entries).
	StmtCacheSize int
	// LogWriter receives the slow-query and connection logs (default
	// discards).
	LogWriter io.Writer
}

// Server serves a DB over the wire protocol. Create with New, start with
// Listen + Serve (or ListenAndServe), stop with Close.
type Server struct {
	db   *engine.DB
	opts Options
	log  *log.Logger

	admit chan struct{} // server-wide statement slots
	mem   *accountant
	cache *stmtCache

	ln net.Listener
	wg sync.WaitGroup

	mu     sync.Mutex
	conns  map[*conn]struct{} // prefdb:guarded-by mu
	closed bool               // prefdb:guarded-by mu
}

// New builds a server for db; nothing listens until Listen.
func New(db *engine.DB, opts Options) *Server {
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	if opts.Name == "" {
		opts.Name = "prefdb"
	}
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if opts.SessionConcurrent <= 0 {
		opts.SessionConcurrent = 4
	}
	if opts.QueryMemory <= 0 {
		opts.QueryMemory = 64 << 20
	}
	if opts.StmtCacheSize <= 0 {
		opts.StmtCacheSize = 128
	}
	if opts.LogWriter == nil {
		opts.LogWriter = io.Discard
	}
	return &Server{
		db:    db,
		opts:  opts,
		log:   log.New(opts.LogWriter, "prefdbserver: ", log.LstdFlags|log.Lmicroseconds),
		admit: make(chan struct{}, opts.MaxConcurrent),
		mem:   newAccountant(opts.MemoryBudget),
		cache: newStmtCache(opts.StmtCacheSize),
		conns: map[*conn]struct{}{},
	}
}

// Listen binds the TCP listener; Addr reports the bound address (useful
// with the default ephemeral port).
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	return nil
}

// Addr returns the bound listen address (nil before Listen).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections until the listener closes. It returns nil
// after Close, or the accept error otherwise.
func (s *Server) Serve() error {
	if s.ln == nil {
		return fmt.Errorf("server: Serve before Listen")
	}
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		c := newConn(s, nc)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			c.serve()
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
		}()
	}
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe() error {
	if err := s.Listen(); err != nil {
		return err
	}
	return s.Serve()
}

// Close stops accepting, closes every connection, and waits for all
// connection and statement goroutines to finish — after Close returns, no
// server goroutine is left running.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for _, c := range conns {
		c.close()
	}
	s.wg.Wait()
	return err
}

// StmtCacheStats reports the shared prepared-statement cache counters
// (entries, hits, misses) for monitoring and tests.
func (s *Server) StmtCacheStats() (entries, hits, misses int) {
	return s.cache.stats()
}
