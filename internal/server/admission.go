// Cross-session memory accounting: a shared pool of estimated
// materialization bytes. Every admitted statement reserves its per-query
// budget up front and the engine's memory guard caps the statement at
// that reservation, so the pool is a sound bound on total materialized
// bytes across all sessions — the serving-layer extension of the
// per-query guards from the context-lifecycle layer.
package server

import (
	"fmt"
	"sync"
)

// errMemoryExhausted rejects a statement the pool cannot admit right now.
type errMemoryExhausted struct {
	want, free, total int64
}

func (e *errMemoryExhausted) Error() string {
	return fmt.Sprintf("server: memory pool exhausted (%d bytes requested, %d of %d free); retry later",
		e.want, e.free, e.total)
}

// accountant tracks reservations against a fixed pool. A zero-total
// accountant admits everything without tracking.
type accountant struct {
	total int64

	mu   sync.Mutex
	used int64 // prefdb:guarded-by mu
}

func newAccountant(total int64) *accountant { return &accountant{total: total} }

// reserve admits n bytes or fails with *errMemoryExhausted. n ≤ 0 is
// admitted free (statement carries no budget and the pool is disabled).
func (a *accountant) reserve(n int64) error {
	if a.total <= 0 || n <= 0 {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.used+n > a.total {
		return &errMemoryExhausted{want: n, free: a.total - a.used, total: a.total}
	}
	a.used += n
	return nil
}

// release returns a reservation to the pool.
func (a *accountant) release(n int64) {
	if a.total <= 0 || n <= 0 {
		return
	}
	a.mu.Lock()
	a.used -= n
	a.mu.Unlock()
}

// reserved reports the bytes currently reserved (for tests/monitoring).
func (a *accountant) reserved() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}
