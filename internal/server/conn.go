// Per-connection protocol handling: handshake, the frame reader loop,
// statement goroutines and the serialized frame writer.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"prefdb/internal/engine"
	"prefdb/internal/exec"
	"prefdb/internal/parser"
	"prefdb/internal/prel"
	"prefdb/internal/types"
	"prefdb/internal/wire"
)

// conn is one client connection: an engine session plus protocol state.
type conn struct {
	srv *Server
	nc  net.Conn
	br  *bufio.Reader

	sess     *engine.Session
	defaults []engine.QueryOption // session defaults from the handshake

	wmu sync.Mutex // serializes frame writes
	bw  *bufio.Writer

	mu sync.Mutex
	// running holds the cancel funcs of in-flight statements; stmts the
	// prepared handles; inflight the per-session admission count.
	running  map[uint64]context.CancelFunc // prefdb:guarded-by mu
	stmts    map[uint64]*engine.Prepared   // prefdb:guarded-by mu
	nextStmt uint64                        // prefdb:guarded-by mu
	inflight int                           // prefdb:guarded-by mu

	wg sync.WaitGroup // statement goroutines
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		srv:     s,
		nc:      nc,
		br:      bufio.NewReader(nc),
		bw:      bufio.NewWriter(nc),
		running: map[uint64]context.CancelFunc{},
		stmts:   map[uint64]*engine.Prepared{},
	}
}

// close tears the connection down; the reader loop unblocks with a read
// error and serve() joins the statement goroutines.
func (c *conn) close() { c.nc.Close() }

// writeFrame serializes one frame write; result streams from concurrent
// statements interleave at frame granularity (each frame carries its
// query id).
func (c *conn) writeFrame(t wire.FrameType, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := wire.WriteFrame(c.bw, t, payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// writeError sends a structured error frame for qid.
func (c *conn) writeError(qid uint64, err error) {
	var e wire.Encoder
	e.Uvarint(qid)
	e.Error(err)
	_ = c.writeFrame(wire.FrameError, e.Bytes())
}

// serve runs the connection to completion: handshake, then the frame
// reader loop. It returns only after every statement goroutine finished.
func (c *conn) serve() {
	defer func() {
		// Cancel whatever is still running, join, then release resources.
		c.mu.Lock()
		for _, cancel := range c.running {
			cancel()
		}
		c.mu.Unlock()
		c.wg.Wait()
		if c.sess != nil {
			c.sess.Close()
		}
		c.nc.Close()
	}()

	if err := c.handshake(); err != nil {
		return
	}

	for {
		t, payload, err := wire.ReadFrame(c.br)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				c.srv.log.Printf("conn %s: read: %v", c.nc.RemoteAddr(), err)
			}
			return
		}
		switch t {
		case wire.FrameQuery:
			c.handleQuery(payload)
		case wire.FrameStmtRun:
			c.handleStmtRun(payload)
		case wire.FramePrepare:
			c.handlePrepare(payload)
		case wire.FrameStmtClose:
			c.handleStmtClose(payload)
		case wire.FrameCancel:
			c.handleCancel(payload)
		default:
			c.srv.log.Printf("conn %s: unexpected frame %#x", c.nc.RemoteAddr(), byte(t))
			return
		}
	}
}

// handshake validates the Hello frame and creates the engine session.
func (c *conn) handshake() error {
	t, payload, err := wire.ReadFrame(c.br)
	if err != nil {
		return err
	}
	if t != wire.FrameHello {
		return fmt.Errorf("server: expected hello, got frame %#x", byte(t))
	}
	d := wire.NewDecoder(payload)
	magic := d.String()
	version := d.Uvarint()
	token := d.String()
	settings := d.Settings()
	if err := d.Err(); err != nil {
		return err
	}
	fail := func(err error) error {
		c.writeError(0, err)
		return err
	}
	switch {
	case magic != wire.Magic:
		return fmt.Errorf("server: bad magic %q", magic)
	case version != wire.Version:
		return fail(fmt.Errorf("server: protocol version %d unsupported (server speaks %d)", version, wire.Version))
	case c.srv.opts.Token != "" && token != c.srv.opts.Token:
		return fail(errors.New("server: authentication failed"))
	case settings.HasProfile:
		return fail(errors.New("server: WithProfile is embedded-only"))
	}
	c.defaults = settings.Options()
	c.sess = c.srv.db.NewSession(c.defaults...)
	var e wire.Encoder
	e.Uvarint(wire.Version)
	e.String(c.srv.opts.Name)
	return c.writeFrame(wire.FrameWelcome, e.Bytes())
}

// admitSession enforces the per-session concurrent-statement cap; it
// rejects (rather than queues) so one connection cannot monopolize the
// server-wide queue.
func (c *conn) admitSession(qid uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.inflight >= c.srv.opts.SessionConcurrent {
		c.writeErrorLocked(qid)
		return false
	}
	c.inflight++
	return true
}

// writeErrorLocked emits the session-admission error without re-taking
// c.mu (writeFrame has its own lock).
func (c *conn) writeErrorLocked(qid uint64) {
	limit := c.srv.opts.SessionConcurrent
	// prefdb:fire-and-forget best-effort error reply; writeFrame serializes on its own lock and conn teardown closes the socket under it
	go c.writeError(qid, fmt.Errorf("server: session statement limit reached (%d concurrent); wait for a statement to finish", limit))
}

// handleQuery starts one SQL statement.
func (c *conn) handleQuery(payload []byte) {
	d := wire.NewDecoder(payload)
	qid := d.Uvarint()
	kind := wire.StmtKind(d.Byte())
	sql := d.String()
	settings := d.Settings()
	if err := d.Err(); err != nil {
		c.writeError(qid, err)
		return
	}
	if settings.HasProfile {
		c.writeError(qid, errors.New("server: WithProfile is embedded-only"))
		return
	}
	if !c.admitSession(qid) {
		return
	}
	c.spawn(qid, func(ctx context.Context, opts []engine.QueryOption) (streamable, error) {
		switch kind {
		case wire.KindExec:
			res, err := c.sess.ExecContext(ctx, sql, opts...)
			if err == nil {
				c.flushCacheOnDDL(sql)
			}
			return resultStream{res}, err
		case wire.KindQuery:
			res, err := c.sess.QueryContext(ctx, sql, opts...)
			return resultStream{res}, err
		default:
			rows, err := c.sess.StreamContext(ctx, sql, opts...)
			return rowsStream{rows}, err
		}
	}, settings, sql)
}

// handleStmtRun starts one prepared-statement execution.
func (c *conn) handleStmtRun(payload []byte) {
	d := wire.NewDecoder(payload)
	qid := d.Uvarint()
	stmtID := d.Uvarint()
	kind := wire.StmtKind(d.Byte())
	settings := d.Settings()
	if err := d.Err(); err != nil {
		c.writeError(qid, err)
		return
	}
	c.mu.Lock()
	p, ok := c.stmts[stmtID]
	c.mu.Unlock()
	if !ok {
		c.writeError(qid, fmt.Errorf("server: unknown prepared statement %d", stmtID))
		return
	}
	if settings.HasProfile {
		c.writeError(qid, errors.New("server: WithProfile is embedded-only"))
		return
	}
	if !c.admitSession(qid) {
		return
	}
	c.spawn(qid, func(ctx context.Context, opts []engine.QueryOption) (streamable, error) {
		// The shared cache compiles without defaults, so the session layer
		// is re-applied here, preserving Open < session < per-run.
		merged := make([]engine.QueryOption, 0, len(c.defaults)+len(opts))
		merged = append(merged, c.defaults...)
		merged = append(merged, opts...)
		if kind == wire.KindStream {
			rows, err := p.StreamContext(ctx, merged...)
			return rowsStream{rows}, err
		}
		res, err := p.RunContext(ctx, merged...)
		return resultStream{res}, err
	}, settings, "<prepared>")
}

// handlePrepare compiles (or fetches from the shared cache) a statement
// and registers a session-local handle.
func (c *conn) handlePrepare(payload []byte) {
	d := wire.NewDecoder(payload)
	reqID := d.Uvarint()
	sql := d.String()
	if err := d.Err(); err != nil {
		c.writeError(reqID, err)
		return
	}
	p, err := c.srv.cache.get(c.srv.db, sql)
	if err != nil {
		c.writeError(reqID, err)
		return
	}
	c.mu.Lock()
	c.nextStmt++
	id := c.nextStmt
	c.stmts[id] = p
	c.mu.Unlock()
	var e wire.Encoder
	e.Uvarint(reqID)
	e.Uvarint(id)
	e.String(p.Plan())
	_ = c.writeFrame(wire.FramePrepared, e.Bytes())
}

// handleStmtClose drops a session-local prepared handle (the shared cache
// entry stays for other sessions; LRU bounds it).
func (c *conn) handleStmtClose(payload []byte) {
	d := wire.NewDecoder(payload)
	id := d.Uvarint()
	if d.Err() != nil {
		return
	}
	c.mu.Lock()
	delete(c.stmts, id)
	c.mu.Unlock()
}

// handleCancel cancels the statement's context; the engine's cooperative
// guards stop it and its stream fails with ErrCanceled.
func (c *conn) handleCancel(payload []byte) {
	d := wire.NewDecoder(payload)
	qid := d.Uvarint()
	if d.Err() != nil {
		return
	}
	c.mu.Lock()
	cancel, ok := c.running[qid]
	c.mu.Unlock()
	if ok {
		cancel()
	}
}

// flushCacheOnDDL flushes the shared statement cache after a successful
// DDL statement (schema changes can re-resolve plans); DML leaves the
// cache intact since plans reference tables by name.
func (c *conn) flushCacheOnDDL(sql string) {
	stmt, err := parser.Parse(sql)
	if err != nil {
		return
	}
	switch stmt.(type) {
	case *parser.CreateTableStmt, *parser.CreateIndexStmt:
		c.srv.cache.flush()
	}
}

// streamable abstracts the two result shapes a statement produces.
type streamable interface {
	// send writes the whole result (header, batches, end) to c for qid.
	send(c *conn, qid uint64) error
}

// spawn runs one admitted statement in its own goroutine: server-wide
// admission, memory reservation, execution, result streaming, slow-query
// logging, and release of everything it took.
func (c *conn) spawn(qid uint64, run func(context.Context, []engine.QueryOption) (streamable, error), settings engine.Settings, label string) {
	ctx, cancel := context.WithCancel(context.Background())
	c.mu.Lock()
	c.running[qid] = cancel
	c.mu.Unlock()

	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer func() {
			cancel()
			c.mu.Lock()
			delete(c.running, qid)
			c.inflight--
			c.mu.Unlock()
		}()

		// Server-wide admission: queue for a statement slot, but stay
		// cancelable while queued.
		select {
		case c.srv.admit <- struct{}{}:
			defer func() { <-c.srv.admit }()
		case <-ctx.Done():
			c.writeError(qid, exec.WrapContextErr(ctx.Err()))
			return
		}

		// Cross-session memory accounting: reserve the statement's budget
		// from the shared pool and cap the statement at its reservation.
		opts := settings.Options()
		budget := settings.MemoryBudget
		if c.srv.opts.MemoryBudget > 0 {
			if !settings.HasMemoryBudget {
				budget = c.srv.opts.QueryMemory
				opts = append(opts, engine.WithMemoryBudget(budget))
			}
			if err := c.srv.mem.reserve(budget); err != nil {
				c.writeError(qid, err)
				return
			}
			defer c.srv.mem.release(budget)
		}

		start := time.Now()
		result, err := run(ctx, opts)
		if err != nil {
			c.writeError(qid, err)
			return
		}
		if err := result.send(c, qid); err != nil {
			c.srv.log.Printf("conn %s: send qid %d: %v", c.nc.RemoteAddr(), qid, err)
			return
		}
		if d := time.Since(start); c.srv.opts.SlowQuery > 0 && d >= c.srv.opts.SlowQuery {
			c.srv.log.Printf("slow query (%.3fs, session %d stmts): %s",
				d.Seconds(), c.sess.Queries(), truncateSQL(label))
		}
	}()
}

// truncateSQL bounds log lines.
func truncateSQL(sql string) string {
	const max = 200
	if len(sql) <= max {
		return sql
	}
	return sql[:max] + "…"
}

// resultStream streams a materialized Result.
type resultStream struct {
	res *engine.Result
}

func (r resultStream) send(c *conn, qid uint64) error {
	var e wire.Encoder
	e.Uvarint(qid)
	if r.res.Rel != nil {
		e.Bool(true)
		e.Schema(r.res.Rel.Schema)
	} else {
		e.Bool(false)
	}
	e.String(r.res.Plan)
	e.String(r.res.Message)
	if err := c.writeFrame(wire.FrameHeader, e.Bytes()); err != nil {
		return err
	}
	if r.res.Rel != nil {
		rows := r.res.Rel.Rows
		for len(rows) > 0 {
			n := wire.BatchRows
			if n > len(rows) {
				n = len(rows)
			}
			if err := c.writeBatch(qid, rows[:n]); err != nil {
				return err
			}
			rows = rows[n:]
		}
	}
	return c.writeEnd(qid, r.res)
}

// rowsStream streams an engine row stream batch by batch — the server
// never materializes the result.
type rowsStream struct {
	rows engine.Rows
}

func (r rowsStream) send(c *conn, qid uint64) error {
	defer r.rows.Close()
	var e wire.Encoder
	e.Uvarint(qid)
	if sch := r.rows.Schema(); sch != nil {
		e.Bool(true)
		e.Schema(sch)
	} else {
		e.Bool(false)
	}
	e.String(r.rows.Plan())
	e.String(r.rows.Message())
	if err := c.writeFrame(wire.FrameHeader, e.Bytes()); err != nil {
		return err
	}
	batch := make([]prel.Row, 0, wire.BatchRows)
	for r.rows.Next() {
		row := r.rows.Row()
		// The engine reuses row storage across Next calls, so batching N
		// rows before framing requires copying each tuple out.
		tuple := append([]types.Value(nil), row.Tuple...)
		batch = append(batch, prel.Row{Tuple: tuple, SC: row.SC})
		if len(batch) == wire.BatchRows {
			if err := c.writeBatch(qid, batch); err != nil {
				return err
			}
			batch = batch[:0]
		}
	}
	if err := r.rows.Err(); err != nil {
		c.writeError(qid, err)
		return nil
	}
	if len(batch) > 0 {
		if err := c.writeBatch(qid, batch); err != nil {
			return err
		}
	}
	var end wire.Encoder
	end.Uvarint(qid)
	end.Stats(r.rows.Stats())
	return c.writeFrame(wire.FrameEnd, end.Bytes())
}

// writeBatch frames up to BatchRows result rows.
func (c *conn) writeBatch(qid uint64, rows []prel.Row) error {
	var e wire.Encoder
	e.Uvarint(qid)
	e.Uvarint(uint64(len(rows)))
	for _, r := range rows {
		e.Row(r)
	}
	return c.writeFrame(wire.FrameBatch, e.Bytes())
}

// writeEnd frames the terminating stats.
func (c *conn) writeEnd(qid uint64, res *engine.Result) error {
	var e wire.Encoder
	e.Uvarint(qid)
	e.Stats(res.Stats)
	return c.writeFrame(wire.FrameEnd, e.Bytes())
}
