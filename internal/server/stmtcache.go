// Cross-session prepared-statement cache: one compiled plan per SQL text,
// shared by every session, LRU-bounded. It generalizes the engine's
// cross-query score dictionaries to the serving layer — the expensive
// artifact (parse + plan + optimize) is keyed by the query text and
// reused across connections. Plans reference tables by name, so DML never
// invalidates an entry; DDL flushes the whole cache (schema changes can
// re-resolve columns), mirroring the engine's re-prepare rule.
package server

import (
	"container/list"
	"sync"

	"prefdb/internal/engine"
)

type stmtCache struct {
	max int

	mu      sync.Mutex
	entries map[string]*list.Element // prefdb:guarded-by mu
	lru     *list.List               // prefdb:guarded-by mu
	hits    int                      // prefdb:guarded-by mu
	misses  int                      // prefdb:guarded-by mu
}

type cacheEntry struct {
	sql string
	p   *engine.Prepared
}

func newStmtCache(max int) *stmtCache {
	return &stmtCache{max: max, entries: map[string]*list.Element{}, lru: list.New()}
}

// get returns the cached plan for sql, compiling and inserting on miss.
// Session defaults deliberately do not key the cache: a Prepared compiled
// without defaults is configured per run, so sessions with different
// defaults share one plan.
func (c *stmtCache) get(db *engine.DB, sql string) (*engine.Prepared, error) {
	c.mu.Lock()
	if el, ok := c.entries[sql]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		p := el.Value.(*cacheEntry).p
		c.mu.Unlock()
		return p, nil
	}
	c.misses++
	c.mu.Unlock()

	// Compile outside the lock: planning can be slow and concurrent misses
	// for the same text are rare (the loser's duplicate is dropped).
	p, err := db.Prepare(sql)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[sql]; ok {
		return el.Value.(*cacheEntry).p, nil
	}
	el := c.lru.PushFront(&cacheEntry{sql: sql, p: p})
	c.entries[sql] = el
	for c.lru.Len() > c.max {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).sql)
	}
	return p, nil
}

// flush drops every entry (DDL executed).
func (c *stmtCache) flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[string]*list.Element{}
	c.lru.Init()
}

// stats reports entry count and hit/miss counters.
func (c *stmtCache) stats() (entries, hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len(), c.hits, c.misses
}
