package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"prefdb/internal/datagen"
	"prefdb/internal/engine"
	"prefdb/internal/exec"
	"prefdb/internal/profile"
	"prefdb/internal/wire"
)

// testDB builds the movie database used across the protocol tests.
func testDB(t testing.TB) *engine.DB {
	t.Helper()
	db := engine.Open()
	sess := db.NewSession()
	defer sess.Close()
	stmts := []string{
		`CREATE TABLE movies (m_id INT, title TEXT, year INT, duration INT, d_id INT, PRIMARY KEY (m_id))`,
		`CREATE BTREE INDEX ON movies (year)`,
		`INSERT INTO movies VALUES
			(1, 'Gran Torino', 2008, 116, 1),
			(2, 'Wall Street', 1987, 126, 3),
			(3, 'Million Dollar Baby', 2004, 132, 1),
			(4, 'Match Point', 2005, 124, 2),
			(5, 'Scoop', 2006, 96, 2)`,
	}
	for _, s := range stmts {
		if _, err := sess.ExecContext(context.Background(), s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	return db
}

// bigDB loads a synthetic dataset large enough that preference queries
// take real time (for cancellation and admission tests).
func bigDB(t testing.TB) *engine.DB {
	t.Helper()
	db := engine.Open()
	if _, err := datagen.LoadIMDB(db.Catalog(), datagen.Config{Scale: 0.3, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	return db
}

// startServer spins up a server on an ephemeral port and tears it down
// with the test.
func startServer(t testing.TB, db *engine.DB, opts Options) (*Server, string) {
	t.Helper()
	srv := New(db, opts)
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, srv.Addr().String()
}

const protoQuery = `
	SELECT title, year FROM movies
	PREFERRING year >= 2000 SCORE recency(year, 2011) CONF 0.9 ON movies
	RANK BY score`

// sameResult asserts two results are byte-identical: columns, rows
// (values and the exact float bits of every score/confidence), stats,
// plan and message.
func sameResult(t *testing.T, got, want *engine.Result) {
	t.Helper()
	if (got.Rel == nil) != (want.Rel == nil) {
		t.Fatalf("relation presence: got %v, want %v", got.Rel != nil, want.Rel != nil)
	}
	if got.Plan != want.Plan {
		t.Fatalf("plan:\n  got  %s\n  want %s", got.Plan, want.Plan)
	}
	if got.Message != want.Message {
		t.Fatalf("message: got %q, want %q", got.Message, want.Message)
	}
	if got.Stats != want.Stats {
		t.Fatalf("stats:\n  got  %+v\n  want %+v", got.Stats, want.Stats)
	}
	if got.Rel == nil {
		return
	}
	if fmt.Sprint(got.Columns()) != fmt.Sprint(want.Columns()) {
		t.Fatalf("columns: got %v, want %v", got.Columns(), want.Columns())
	}
	if got.Rel.Len() != want.Rel.Len() {
		t.Fatalf("rows: got %d, want %d", got.Rel.Len(), want.Rel.Len())
	}
	for i := range want.Rel.Rows {
		g, w := got.Rel.Rows[i], want.Rel.Rows[i]
		for j := range w.Tuple {
			if !g.Tuple[j].Equal(w.Tuple[j]) || g.Tuple[j].Kind() != w.Tuple[j].Kind() {
				t.Fatalf("row %d col %d: got %v, want %v", i, j, g.Tuple[j], w.Tuple[j])
			}
		}
		if g.SC.IsBottom() != w.SC.IsBottom() ||
			math.Float64bits(g.SC.Score) != math.Float64bits(w.SC.Score) ||
			math.Float64bits(g.SC.Conf) != math.Float64bits(w.SC.Conf) {
			t.Fatalf("row %d SC: got %+v, want %+v", i, g.SC, w.SC)
		}
	}
}

// TestWireMatchesEmbedded is the redesign's core acceptance check: for
// every evaluation strategy and worker count, results served over the
// wire are byte-identical to the embedded QueryContext.
func TestWireMatchesEmbedded(t *testing.T) {
	db := testDB(t)
	_, addr := startServer(t, db, Options{})
	modes := []engine.Mode{engine.ModeNative, engine.ModeBU, engine.ModeGBU, engine.ModeFtP}
	for _, mode := range modes {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%v/workers=%d", mode, workers), func(t *testing.T) {
				opts := []engine.QueryOption{engine.WithMode(mode), engine.WithWorkers(workers)}
				sess := db.NewSession()
				want, err := sess.QueryContext(context.Background(), protoQuery, opts...)
				sess.Close()
				if err != nil {
					t.Fatal(err)
				}
				c, err := wire.Dial(addr)
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				got, err := c.QueryContext(context.Background(), protoQuery, opts...)
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, got, want)
				// The streaming entry point must agree too.
				streamed, err := c.ExecContext(context.Background(), protoQuery, opts...)
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, streamed, want)
			})
		}
	}
}

// TestWireSessionDefaults checks the precedence chain spans the network:
// dial-time session defaults apply, per-query options override them.
func TestWireSessionDefaults(t *testing.T) {
	db := testDB(t)
	_, addr := startServer(t, db, Options{})
	c, err := wire.Dial(addr, wire.WithSessionDefaults(engine.WithMaxRows(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Session default trips the row guard...
	_, err = c.QueryContext(context.Background(), protoQuery)
	var ge *exec.GuardError
	if !errors.As(err, &ge) || ge.Limit != exec.LimitRows {
		t.Fatalf("session default did not apply remotely: %v", err)
	}
	if !errors.Is(err, exec.ErrResourceExhausted) {
		t.Fatalf("guard error lost its sentinel across the wire: %v", err)
	}
	// ...and the per-query option overrides it.
	if _, err := c.QueryContext(context.Background(), protoQuery, engine.WithMaxRows(1_000_000)); err != nil {
		t.Fatalf("per-query override did not win: %v", err)
	}
}

// TestWireExecDDL checks DDL/DML over the wire: messages travel, effects
// are visible to subsequent statements.
func TestWireExecDDL(t *testing.T) {
	db := testDB(t)
	_, addr := startServer(t, db, Options{})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.ExecContext(context.Background(), `CREATE TABLE notes (id INT, body TEXT, PRIMARY KEY (id))`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel != nil || res.Message == "" {
		t.Fatalf("DDL result: rel=%v message=%q", res.Rel, res.Message)
	}
	if _, err := c.ExecContext(context.Background(), `INSERT INTO notes VALUES (1, 'a'), (2, 'b')`); err != nil {
		t.Fatal(err)
	}
	got, err := c.QueryContext(context.Background(), `SELECT id FROM notes`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rel.Len() != 2 {
		t.Fatalf("insert not visible: %d rows", got.Rel.Len())
	}
	// QueryContext must keep rejecting DDL, exactly as embedded.
	if _, err := c.QueryContext(context.Background(), `CREATE TABLE t2 (id INT, PRIMARY KEY (id))`); err == nil {
		t.Fatal("QueryContext accepted DDL over the wire")
	}
}

// TestWireStream checks the streaming entry point end to end, including
// stats parity with the materialized path after a full drain.
func TestWireStream(t *testing.T) {
	db := testDB(t)
	_, addr := startServer(t, db, Options{})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	want, err := c.QueryContext(context.Background(), protoQuery, engine.WithMode(engine.ModeNative))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := c.StreamContext(context.Background(), protoQuery, engine.WithMode(engine.ModeNative))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		row := rows.Row()
		wantRow := want.Rel.Rows[n]
		for j := range wantRow.Tuple {
			if !row.Tuple[j].Equal(wantRow.Tuple[j]) {
				t.Fatalf("stream row %d col %d: got %v, want %v", n, j, row.Tuple[j], wantRow.Tuple[j])
			}
		}
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if n != want.Rel.Len() {
		t.Fatalf("streamed %d rows, want %d", n, want.Rel.Len())
	}
	if rows.Stats() != want.Stats {
		t.Fatalf("stream stats diverge:\n  stream %+v\n  query  %+v", rows.Stats(), want.Stats)
	}
	// Early close mid-stream leaves the connection usable.
	rows, err = c.StreamContext(context.Background(), protoQuery)
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	if err := rows.Close(); err != nil {
		t.Fatalf("early close: %v", err)
	}
	if _, err := c.QueryContext(context.Background(), protoQuery); err != nil {
		t.Fatalf("statement after early close: %v", err)
	}
}

// TestWirePrepared checks the prepared-statement exchange and that the
// shared cache deduplicates compilation across connections.
func TestWirePrepared(t *testing.T) {
	db := testDB(t)
	srv, addr := startServer(t, db, Options{})
	c1, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	p1, err := c1.Prepare(protoQuery)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c2.Prepare(protoQuery)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Plan() == "" || p1.Plan() != p2.Plan() {
		t.Fatalf("prepared plans diverge:\n%s\nvs\n%s", p1.Plan(), p2.Plan())
	}
	entries, hits, misses := srv.StmtCacheStats()
	if entries != 1 || hits != 1 || misses != 1 {
		t.Fatalf("cache stats after two prepares of one SQL: entries=%d hits=%d misses=%d", entries, hits, misses)
	}

	want, err := c1.QueryContext(context.Background(), protoQuery)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p2.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, got, want)
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}
	// A closed handle is rejected; the other connection's handle survives.
	if _, err := p1.RunContext(context.Background()); err == nil || !strings.Contains(err.Error(), "unknown prepared statement") {
		t.Fatalf("closed statement ran: %v", err)
	}
	if _, err := p2.RunContext(context.Background()); err != nil {
		t.Fatalf("sibling handle died with the closed one: %v", err)
	}

	// DDL flushes the shared cache.
	if _, err := c1.ExecContext(context.Background(), `CREATE TABLE flushme (id INT, PRIMARY KEY (id))`); err != nil {
		t.Fatal(err)
	}
	if entries, _, _ := srv.StmtCacheStats(); entries != 0 {
		t.Fatalf("cache not flushed on DDL: %d entries", entries)
	}
}

// TestWireAuth checks token authentication.
func TestWireAuth(t *testing.T) {
	db := testDB(t)
	_, addr := startServer(t, db, Options{Token: "s3cret"})
	if _, err := wire.Dial(addr); err == nil || !strings.Contains(err.Error(), "authentication") {
		t.Fatalf("tokenless dial: %v", err)
	}
	if _, err := wire.Dial(addr, wire.WithToken("wrong")); err == nil {
		t.Fatal("wrong token accepted")
	}
	c, err := wire.Dial(addr, wire.WithToken("s3cret"))
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

// TestWireProfileRejected checks WithProfile cannot travel: the binding
// references a live in-process store.
func TestWireProfileRejected(t *testing.T) {
	db := testDB(t)
	_, addr := startServer(t, db, Options{})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	store := profile.NewStore()
	if _, err := c.QueryContext(context.Background(), protoQuery, engine.WithProfile(store, "u")); err == nil {
		t.Fatal("per-query WithProfile accepted remotely")
	}
	if _, err := wire.Dial(addr, wire.WithSessionDefaults(engine.WithProfile(store, "u"))); err == nil {
		t.Fatal("session-default WithProfile accepted remotely")
	}
}

// TestMemoryPoolExhaustion checks cross-session admission: a statement
// whose reservation does not fit the shared pool is rejected with a
// retryable error, and the pool drains back to zero.
func TestMemoryPoolExhaustion(t *testing.T) {
	db := testDB(t)
	srv, addr := startServer(t, db, Options{MemoryBudget: 1 << 20, QueryMemory: 64 << 20})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.QueryContext(context.Background(), protoQuery); err == nil || !strings.Contains(err.Error(), "memory pool exhausted") {
		t.Fatalf("oversized default reservation admitted: %v", err)
	}
	// An explicit budget that fits is admitted and enforced.
	if _, err := c.QueryContext(context.Background(), protoQuery, engine.WithMemoryBudget(512<<10)); err != nil {
		t.Fatalf("fitting reservation rejected: %v", err)
	}
	if got := srv.mem.reserved(); got != 0 {
		t.Fatalf("pool did not drain: %d bytes still reserved", got)
	}
}

// TestSessionAdmission drives the protocol with raw frames (the Client
// serializes statements, so only a hand-rolled client can overcommit a
// session) and checks the per-session cap rejects rather than queues.
func TestSessionAdmission(t *testing.T) {
	db := bigDB(t)
	_, addr := startServer(t, db, Options{SessionConcurrent: 1})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	var hello wire.Encoder
	hello.String(wire.Magic)
	hello.Uvarint(wire.Version)
	hello.String("")
	hello.Settings(engine.Settings{})
	if err := wire.WriteFrame(nc, wire.FrameHello, hello.Bytes()); err != nil {
		t.Fatal(err)
	}
	if ft, _, err := wire.ReadFrame(nc); err != nil || ft != wire.FrameWelcome {
		t.Fatalf("handshake: frame %#x, err %v", byte(ft), err)
	}
	slow := `SELECT title FROM movies PREFERRING year >= 1990 SCORE recency(year, 2011) CONF 0.9 ON movies RANK BY score`
	sendQuery := func(qid uint64) {
		var e wire.Encoder
		e.Uvarint(qid)
		e.Byte(byte(wire.KindQuery))
		e.String(slow)
		e.Settings(engine.CollectSettings(engine.WithMode(engine.ModeBU)))
		if err := wire.WriteFrame(nc, wire.FrameQuery, e.Bytes()); err != nil {
			t.Fatal(err)
		}
	}
	sendQuery(1)
	sendQuery(2) // must be rejected: qid 1 occupies the only session slot
	deadline := time.Now().Add(30 * time.Second)
	nc.SetReadDeadline(deadline)
	var sawReject bool
	for !sawReject {
		ft, payload, err := wire.ReadFrame(nc)
		if err != nil {
			t.Fatalf("waiting for rejection: %v", err)
		}
		if ft != wire.FrameError {
			continue // qid 1's result stream
		}
		d := wire.NewDecoder(payload)
		qid := d.Uvarint()
		ferr := d.Error()
		if qid != 2 {
			t.Fatalf("unexpected error for qid %d: %v", qid, ferr)
		}
		if !strings.Contains(ferr.Error(), "session statement limit") {
			t.Fatalf("rejection error: %v", ferr)
		}
		sawReject = true
	}
}

// TestMidQueryCancelNoLeak is the lifecycle acceptance check: clients
// cancel statements mid-stream, disconnect, and the server winds down
// with no goroutine left behind. Run under -race in CI.
func TestMidQueryCancelNoLeak(t *testing.T) {
	db := bigDB(t)
	base := runtime.NumGoroutine()
	srv := New(db, Options{})
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	addr := srv.Addr().String()

	slow := `SELECT title, year FROM movies PREFERRING year >= 1950 SCORE recency(year, 2011) CONF 0.9 ON movies RANK BY score`
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := wire.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			mode := []engine.Mode{engine.ModeNative, engine.ModeBU, engine.ModeGBU}[i%3]
			rows, err := c.StreamContext(ctx, slow, engine.WithMode(mode))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			// Pull a few rows, then cancel mid-stream.
			for n := 0; n < 3 && rows.Next(); n++ {
			}
			cancel()
			for rows.Next() {
			}
			if err := rows.Err(); err != nil && !errors.Is(err, exec.ErrCanceled) {
				t.Errorf("client %d: stream failed with %v, want ErrCanceled or clean end", i, err)
			}
			rows.Close()
		}(i)
	}
	wg.Wait()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, base)
}

// waitGoroutines polls until the goroutine count returns to the
// pre-test baseline (small slack for runtime helpers).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d running, baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
}

// TestConcurrentClients hammers one server from many connections mixing
// queries, streams and prepared runs; race-clean under -race.
func TestConcurrentClients(t *testing.T) {
	db := testDB(t)
	_, addr := startServer(t, db, Options{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mode := []engine.Mode{engine.ModeNative, engine.ModeBU, engine.ModeGBU, engine.ModeFtP}[i%4]
			c, err := wire.Dial(addr, wire.WithSessionDefaults(engine.WithMode(mode)))
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for n := 0; n < 5; n++ {
				switch n % 3 {
				case 0:
					if _, err := c.QueryContext(context.Background(), protoQuery); err != nil {
						t.Errorf("client %d query: %v", i, err)
						return
					}
				case 1:
					rows, err := c.StreamContext(context.Background(), protoQuery)
					if err != nil {
						t.Errorf("client %d stream: %v", i, err)
						return
					}
					for rows.Next() {
					}
					if err := rows.Close(); err != nil {
						t.Errorf("client %d close: %v", i, err)
						return
					}
				default:
					p, err := c.Prepare(protoQuery)
					if err != nil {
						t.Errorf("client %d prepare: %v", i, err)
						return
					}
					if _, err := p.RunContext(context.Background()); err != nil {
						t.Errorf("client %d run: %v", i, err)
						return
					}
					p.Close()
				}
			}
		}(i)
	}
	wg.Wait()
}
