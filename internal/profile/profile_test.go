package profile

import (
	"strings"
	"sync"
	"testing"

	"prefdb/internal/expr"
	"prefdb/internal/pref"
	"prefdb/internal/types"
)

func TestAddAndPreferences(t *testing.T) {
	s := NewStore()
	p1 := pref.Constant("comedies", "genres", expr.Eq("genre", types.Str("Comedy")), 1, 0.8)
	p2 := pref.Constant("", "movies", expr.Cmp("year", expr.OpGe, types.Int(2000)), 0.9, 0.7)
	if err := s.Add("Alice", p1, p2); err != nil {
		t.Fatal(err)
	}
	ps := s.Preferences("alice") // case-insensitive user keys
	if len(ps) != 2 {
		t.Fatalf("preferences = %d", len(ps))
	}
	if ps[0].Name != "comedies" {
		t.Errorf("named preference = %q", ps[0].Name)
	}
	if ps[1].Name == "" {
		t.Error("unnamed preference should get an auto name")
	}
	// The returned slice is a copy.
	ps[0].Name = "mutated"
	if s.Preferences("alice")[0].Name != "comedies" {
		t.Error("Preferences leaked internal state")
	}
}

func TestAddValidationAndDuplicates(t *testing.T) {
	s := NewStore()
	bad := pref.Preference{Name: "x", On: []string{"r"}, Cond: expr.TrueLiteral(), Score: expr.TrueLiteral(), Conf: 2}
	if err := s.Add("bob", bad); err == nil {
		t.Error("invalid preference should be rejected")
	}
	good := pref.Constant("dup", "r", expr.TrueLiteral(), 1, 0.5)
	if err := s.Add("bob", good); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("bob", good); err == nil {
		t.Error("duplicate name should be rejected")
	}
	// Auto names skip over taken ones.
	if err := s.Add("bob", pref.Constant("p2", "r", expr.TrueLiteral(), 1, 0.5)); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("bob", pref.Constant("", "r", expr.TrueLiteral(), 1, 0.5)); err != nil {
		t.Fatalf("auto-naming collided: %v", err)
	}
	names := map[string]bool{}
	for _, p := range s.Preferences("bob") {
		if names[p.Name] {
			t.Fatalf("duplicate name %q", p.Name)
		}
		names[p.Name] = true
	}
}

func TestAddClause(t *testing.T) {
	s := NewStore()
	if err := s.AddClause("alice", "genre = 'Comedy' SCORE 1 CONF 0.8 ON genres AS comedies"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddClause("alice", "year >= 2000 SCORE recency(year, 2011) CONF 0.6 ON movies"); err != nil {
		t.Fatal(err)
	}
	if s.Len("alice") != 2 {
		t.Errorf("Len = %d", s.Len("alice"))
	}
	if err := s.AddClause("alice", "this is not a preference"); err == nil {
		t.Error("bad clause should error")
	}
	if err := s.AddClause("alice", "x > 1 SCORE 1 CONF 3 ON r"); err == nil {
		t.Error("out-of-range confidence should error")
	}
}

func TestApplicable(t *testing.T) {
	s := NewStore()
	s.AddClause("alice", "genre = 'Comedy' SCORE 1 CONF 0.8 ON genres")
	s.AddClause("alice", "name = 'ICDE' SCORE 1 CONF 0.9 ON conferences")
	s.AddClause("alice", "genre = 'Action' SCORE 1 CONF 0.5 ON (movies, genres)")
	rels := map[string]bool{"movies": true, "genres": true}
	got := s.Applicable("alice", rels)
	if len(got) != 2 {
		t.Fatalf("applicable = %d", len(got))
	}
	for _, p := range got {
		for _, r := range p.On {
			if !rels[r] {
				t.Errorf("inapplicable preference returned: %v", p.On)
			}
		}
	}
}

func TestRemoveAndUsers(t *testing.T) {
	s := NewStore()
	s.AddClause("bob", "x > 1 SCORE 1 CONF 0.5 ON r AS a")
	s.AddClause("ann", "x > 1 SCORE 1 CONF 0.5 ON r AS b")
	users := s.Users()
	if len(users) != 2 || users[0] != "ann" {
		t.Errorf("Users = %v", users)
	}
	if !s.Remove("bob", "a") {
		t.Error("Remove failed")
	}
	if s.Remove("bob", "a") {
		t.Error("double Remove should fail")
	}
	if got := s.Users(); len(got) != 1 {
		t.Errorf("Users after remove = %v", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			user := []string{"a", "b"}[i%2]
			for j := 0; j < 50; j++ {
				_ = s.AddClause(user, "x > 1 SCORE 1 CONF 0.5 ON r")
				_ = s.Preferences(user)
				_ = s.Applicable(user, map[string]bool{"r": true})
				_ = s.Users()
			}
		}(i)
	}
	wg.Wait()
	if s.Len("a")+s.Len("b") != 400 {
		t.Errorf("total = %d", s.Len("a")+s.Len("b"))
	}
	for _, u := range []string{"a", "b"} {
		seen := map[string]bool{}
		for _, p := range s.Preferences(u) {
			if seen[p.Name] {
				t.Fatalf("user %s has duplicate name %q", u, p.Name)
			}
			seen[p.Name] = true
		}
	}
}

func TestStoreNameGeneration(t *testing.T) {
	s := NewStore()
	for i := 0; i < 3; i++ {
		if err := s.AddClause("u", "x > 1 SCORE 1 CONF 0.5 ON r"); err != nil {
			t.Fatal(err)
		}
	}
	ps := s.Preferences("u")
	want := []string{"p1", "p2", "p3"}
	for i, p := range ps {
		if !strings.EqualFold(p.Name, want[i]) {
			t.Errorf("name %d = %q, want %q", i, p.Name, want[i])
		}
	}
}

func TestContextTaggedPreferences(t *testing.T) {
	s := NewStore()
	if err := s.AddClause("alice", "genre = 'Comedy' SCORE 1 CONF 0.9 ON genres AS always"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddClauseInContext("alice", "genre = 'Horror' SCORE 1 CONF 0.9 ON genres AS social", "with-friends"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddClauseInContext("alice", "genre = 'Drama' SCORE 0.8 CONF 0.6 ON genres AS quiet", "alone", "evening"); err != nil {
		t.Fatal(err)
	}
	// Full profile lists everything.
	if got := len(s.Preferences("alice")); got != 3 {
		t.Fatalf("full profile = %d", got)
	}
	// No context: only the always-active preference.
	if got := s.PreferencesInContext("alice"); len(got) != 1 || got[0].Name != "always" {
		t.Errorf("no-context = %v", names(got))
	}
	// Matching context adds the tagged ones (case-insensitive).
	got := s.PreferencesInContext("alice", "With-Friends")
	if len(got) != 2 || got[1].Name != "social" {
		t.Errorf("with-friends = %v", names(got))
	}
	// Either tag activates a multi-context preference.
	if got := s.PreferencesInContext("alice", "evening"); len(got) != 2 || got[1].Name != "quiet" {
		t.Errorf("evening = %v", names(got))
	}
	// Unknown context: only always-active.
	if got := s.PreferencesInContext("alice", "commuting"); len(got) != 1 {
		t.Errorf("unknown context = %v", names(got))
	}
}

func names(ps []pref.Preference) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}
