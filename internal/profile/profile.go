// Package profile implements a per-user preference repository. The paper's
// query model (§V) assumes that "preference-aware applications will provide
// an appropriate interface ... and collected preferences are automatically
// integrated into their queries"; a Store is that repository: it keeps
// named preference triples per user, in the same textual syntax as the
// PREFERRING clause, and hands back the ones applicable to a given query.
package profile

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"prefdb/internal/parser"
	"prefdb/internal/pref"
)

// entry is one stored preference plus the ephemeral contexts it is active
// in (empty = always active) — the context-dependent preference flavour the
// paper surveys ("I like comedies when I am alone and horror films with
// friends").
type entry struct {
	p        pref.Preference
	contexts []string
}

// Store holds user preference profiles. It is safe for concurrent use.
type Store struct {
	mu    sync.RWMutex
	users map[string][]entry
}

// NewStore returns an empty repository.
func NewStore() *Store { return &Store{users: map[string][]entry{}} }

// Add registers always-active preferences for a user; each must validate,
// and names must be unique within the user's profile (unnamed preferences
// get p<n>).
func (s *Store) Add(user string, ps ...pref.Preference) error {
	return s.AddInContext(user, nil, ps...)
}

// AddInContext registers preferences that are active only in the given
// ephemeral contexts (e.g. "alone", "with-friends"); an empty context list
// means always active.
func (s *Store) AddInContext(user string, contexts []string, ps ...pref.Preference) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(user)
	existing := s.users[key]
	names := map[string]bool{}
	for _, e := range existing {
		names[e.p.Name] = true
	}
	normalized := make([]string, 0, len(contexts))
	for _, c := range contexts {
		normalized = append(normalized, strings.ToLower(c))
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			return err
		}
		if p.Name == "" {
			n := len(existing) + 1
			for names[fmt.Sprintf("p%d", n)] {
				n++
			}
			p.Name = fmt.Sprintf("p%d", n)
		}
		if names[p.Name] {
			return fmt.Errorf("profile: user %q already has a preference named %q", user, p.Name)
		}
		names[p.Name] = true
		existing = append(existing, entry{p: p, contexts: normalized})
	}
	s.users[key] = existing
	return nil
}

// AddClause parses and registers one preference given in the PREFERRING
// clause syntax, e.g.
//
//	store.AddClause("alice", "genre = 'Comedy' SCORE 1 CONF 0.8 ON genres AS comedies")
func (s *Store) AddClause(user, clause string) error {
	pc, err := parser.ParsePreference(clause)
	if err != nil {
		return err
	}
	p := pref.Preference{Name: pc.Name, On: pc.On, Cond: pc.Cond, Score: pc.Score, Conf: pc.Conf}
	return s.Add(user, p)
}

// AddClauseInContext is AddClause with ephemeral context tags.
func (s *Store) AddClauseInContext(user, clause string, contexts ...string) error {
	pc, err := parser.ParsePreference(clause)
	if err != nil {
		return err
	}
	p := pref.Preference{Name: pc.Name, On: pc.On, Cond: pc.Cond, Score: pc.Score, Conf: pc.Conf}
	return s.AddInContext(user, contexts, p)
}

// Preferences returns the user's full profile (always-active and
// context-tagged preferences alike), in insertion order.
func (s *Store) Preferences(user string) []pref.Preference {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries := s.users[strings.ToLower(user)]
	out := make([]pref.Preference, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.p)
	}
	return out
}

// PreferencesInContext returns the preferences active in the given
// ephemeral contexts: always-active ones plus those tagged with any active
// context. With no contexts, only always-active preferences return.
func (s *Store) PreferencesInContext(user string, active ...string) []pref.Preference {
	s.mu.RLock()
	defer s.mu.RUnlock()
	activeSet := map[string]bool{}
	for _, c := range active {
		activeSet[strings.ToLower(c)] = true
	}
	var out []pref.Preference
	for _, e := range s.users[strings.ToLower(user)] {
		if len(e.contexts) == 0 {
			out = append(out, e.p)
			continue
		}
		for _, c := range e.contexts {
			if activeSet[c] {
				out = append(out, e.p)
				break
			}
		}
	}
	return out
}

// Applicable returns the user's preferences whose target relations are all
// within the given (lower-case) relation set.
func (s *Store) Applicable(user string, relations map[string]bool) []pref.Preference {
	var out []pref.Preference
	for _, p := range s.Preferences(user) {
		if p.Covers(relations) {
			out = append(out, p)
		}
	}
	return out
}

// Remove deletes a named preference from a user's profile; it reports
// whether anything was removed.
func (s *Store) Remove(user, name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(user)
	ps := s.users[key]
	for i, e := range ps {
		if e.p.Name == name {
			s.users[key] = append(ps[:i], ps[i+1:]...)
			return true
		}
	}
	return false
}

// Users lists users with non-empty profiles, sorted.
func (s *Store) Users() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.users))
	for u, ps := range s.users {
		if len(ps) > 0 {
			out = append(out, u)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of preferences stored for a user.
func (s *Store) Len(user string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.users[strings.ToLower(user)])
}
