package engine

import (
	"strings"
	"sync"

	"prefdb/internal/exec"
	"prefdb/internal/pref"
)

// dictCache holds the engine's level-2 preference score dictionaries for
// prepared statements: one exec.ScoreDict per (preference, column-set),
// shared by every run of every prepared query that evaluates the same
// preference over the same key attributes.
//
// Invalidation protocol: each entry snapshots the catalog version counter
// of every table the preference targets at creation time. DictFor compares
// the snapshot against the live counters on every call — any DML on a
// referenced table (insert, delete, update) bumps its counter, so the next
// lookup discards the stale dictionary and starts a fresh one. Dropping
// the whole dictionary (rather than patching entries) is correct because
// score entries are keyed by attribute values, and DML can retire or
// introduce arbitrary values.
type dictCache struct {
	mu      sync.Mutex
	entries map[string]*dictEntry
}

type dictEntry struct {
	dict *exec.ScoreDict
	// versions maps each target table name to the catalog version the
	// dictionary was built against.
	versions map[string]uint64
}

func newDictCache() *dictCache {
	return &dictCache{entries: map[string]*dictEntry{}}
}

// dictFor returns the current dictionary for a preference and its
// canonical key columns, creating or replacing it as needed. It returns
// nil (no cross-query caching; the per-query memo still works) when any
// target table cannot be resolved. Safe for concurrent use; exec workers
// of one query all receive the same dictionary.
func (db *DB) dictFor(p pref.Preference, cols []string) *exec.ScoreDict {
	versions := make(map[string]uint64, len(p.On))
	for _, rel := range p.On {
		t, err := db.cat.Table(rel)
		if err != nil {
			return nil
		}
		versions[t.Name] = t.Version()
	}
	key := p.String() + "\x00" + strings.Join(cols, ",")

	dc := db.dicts
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if e, ok := dc.entries[key]; ok && sameVersions(e.versions, versions) {
		return e.dict
	}
	e := &dictEntry{dict: exec.NewScoreDict(), versions: versions}
	dc.entries[key] = e
	return e.dict
}

func sameVersions(a, b map[string]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
