package engine

import (
	"prefdb/internal/parser"
	"prefdb/internal/profile"
)

// QueryForUser runs a preferential query enriched with the user's stored
// preferences: every profile preference whose target relations appear in
// the query is evaluated after the query's own PREFERRING clauses, the §V
// model where applications automatically integrate collected preferences.
func (db *DB) QueryForUser(sql string, store *profile.Store, user string, mode Mode) (*Result, error) {
	return db.QueryForUserInContext(sql, store, user, nil, mode)
}

// QueryForUserInContext is QueryForUser with ephemeral contexts active:
// preferences tagged with one of the contexts join the always-active ones
// (§II's context-dependent preferences — "I like comedies when I am alone
// and horror films with friends").
func (db *DB) QueryForUserInContext(sql string, store *profile.Store, user string, contexts []string, mode Mode) (*Result, error) {
	q, err := parser.ParseQuery(sql)
	if err != nil {
		return nil, err
	}
	plan, err := db.pl.PlanWithPreferences(q, store.PreferencesInContext(user, contexts...))
	if err != nil {
		return nil, err
	}
	return db.RunPlan(plan, mode)
}
