// Session-centric front end (the paper's multi-user model, §V): a Session
// is a lightweight handle on a shared DB carrying per-session defaults —
// evaluation mode, workers, cache/batch/colstore styles, guard budgets,
// and optionally a bound user profile. Options resolve through the
// precedence chain
//
//	Open defaults  <  session defaults  <  per-query options
//
// so an embedded caller, the network server (one Session per connection)
// and the wire client all share one configuration model. Sessions also
// carry the streaming entry point (StreamContext) the server uses to ship
// result batches without materializing whole results.
package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"prefdb/internal/algebra"
	"prefdb/internal/exec"
	"prefdb/internal/parser"
	"prefdb/internal/planner"
	"prefdb/internal/prel"
	"prefdb/internal/schema"
	"prefdb/internal/types"
)

// ErrSessionClosed reports use of a closed session.
var ErrSessionClosed = fmt.Errorf("engine: session is closed")

// Session is a per-user/per-connection handle on a DB. Create one with
// DB.NewSession; the zero value is not usable. A Session is safe for
// concurrent use — concurrent queries on one session each run their own
// executor — and any number of sessions may share one DB.
type Session struct {
	db       *DB
	defaults []QueryOption

	closed atomic.Bool // prefdb:atomic

	mu sync.Mutex
	// queries counts statements the session has run, for introspection.
	queries uint64 // prefdb:guarded-by mu
}

// NewSession derives a session whose defaults are the given options
// layered over the database's Open defaults. The defaults apply to every
// statement the session runs unless a per-query option overrides them:
//
//	db := engine.Open(engine.WithDefaultMode(engine.ModeGBU))
//	s := db.NewSession(engine.WithWorkers(2), engine.WithMaxRows(1e6))
//	res, err := s.QueryContext(ctx, sql, engine.WithWorkers(8)) // 8 wins
//
// Bind a user's preference profile with WithProfile to make the session
// the paper's per-user query interface.
func (db *DB) NewSession(defaults ...QueryOption) *Session {
	return &Session{db: db, defaults: defaults}
}

// DB returns the underlying database.
func (s *Session) DB() *DB { return s.db }

// Defaults reports which options the session's defaults set and their
// values (the session layer of the precedence chain).
func (s *Session) Defaults() Settings { return CollectSettings(s.defaults...) }

// Queries returns how many statements the session has started, for
// monitoring (the server's slow-query log labels entries with it).
func (s *Session) Queries() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queries
}

// Close marks the session closed; subsequent statements fail with
// ErrSessionClosed. Close never interrupts statements already running —
// cancel their contexts for that — and is idempotent.
func (s *Session) Close() error {
	s.closed.Store(true)
	return nil
}

// begin checks liveness and counts the statement.
func (s *Session) begin() error {
	if s.closed.Load() {
		return ErrSessionClosed
	}
	s.mu.Lock()
	s.queries++
	s.mu.Unlock()
	return nil
}

// config resolves per-query options through the session's precedence
// chain.
func (s *Session) config(opts []QueryOption) queryConfig {
	if len(s.defaults) == 0 {
		return s.db.queryConfig(opts)
	}
	merged := make([]QueryOption, 0, len(s.defaults)+len(opts))
	merged = append(merged, s.defaults...)
	merged = append(merged, opts...)
	return s.db.queryConfig(merged)
}

// ExecContext parses and executes any statement (DDL, DML or query) under
// ctx, the session defaults and the per-query options; see DB.ExecContext
// for the error contract.
func (s *Session) ExecContext(ctx context.Context, sql string, opts ...QueryOption) (*Result, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	return s.db.ExecContext(ctx, sql, s.layer(opts)...)
}

// QueryContext parses, plans and executes a preferential query under ctx,
// the session defaults and the per-query options, returning the
// materialized result; see DB.ExecContext for the error contract.
func (s *Session) QueryContext(ctx context.Context, sql string, opts ...QueryOption) (*Result, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	return s.db.QueryContext(ctx, sql, s.layer(opts)...)
}

// Prepare plans and optimizes a query for repeated execution under the
// session's defaults (per-run options still override them).
func (s *Session) Prepare(sql string) (*Prepared, error) {
	if s.closed.Load() {
		return nil, ErrSessionClosed
	}
	return s.db.prepareWith(sql, s.defaults)
}

// layer prefixes the session defaults onto per-query options.
func (s *Session) layer(opts []QueryOption) []QueryOption {
	if len(s.defaults) == 0 {
		return opts
	}
	merged := make([]QueryOption, 0, len(s.defaults)+len(opts))
	merged = append(merged, s.defaults...)
	return append(merged, opts...)
}

// --- streaming ---

// Rows is a streaming statement result: rows are pulled one at a time so
// large result sets never materialize in the serving layer. Both the
// embedded engine and the network client implement it, which is what lets
// prefdb.Dial return the same session surface as DB.NewSession.
//
// Usage:
//
//	rows, err := sess.StreamContext(ctx, sql)
//	...
//	defer rows.Close()
//	for rows.Next() {
//	    use(rows.Row()) // valid only until the next call to Next
//	}
//	err = rows.Err()
//
// For DDL/DML statements the stream yields no rows and Message reports
// the effect. Stats and Plan are complete only after the stream is
// drained (Next returned false) or closed.
type Rows interface {
	// Next advances to the next row, reporting false at exhaustion or
	// failure (check Err).
	Next() bool
	// Row returns the current row; it is valid only until the next call
	// to Next (storage is reused) — copy the tuple to keep it.
	Row() prel.Row
	// Columns returns the result header including the score and
	// confidence attributes (nil for DDL/DML).
	Columns() []string
	// Schema returns the result relation's schema (nil for DDL/DML); the
	// serving layer uses it to describe results without materializing
	// them.
	Schema() *schema.Schema
	// Err returns the error that terminated the stream, if any.
	Err() error
	// Close releases the stream early; it is idempotent and returns Err.
	Close() error
	// Stats returns the execution counters accumulated so far; after a
	// full drain they equal the materialized path's Stats.
	Stats() exec.Stats
	// Plan returns the executed plan in explain format ("" for DDL/DML).
	Plan() string
	// Message describes the effect of DDL/DML statements ("" for
	// queries).
	Message() string
}

// StreamContext parses and executes any statement under ctx, the session
// defaults and the per-query options, returning a streaming result. For
// queries the Native strategy streams its pipeline end-to-end without
// materializing the result relation; the materializing strategies (BU,
// GBU, FtP — whose semantics are operator-at-a-time materialization) run
// to completion and stream their final relation without an extra copy.
// DDL/DML statements execute eagerly and return an empty stream carrying
// the effect Message. The lifecycle and error contract match
// QueryContext; a fully drained stream reports identical Stats.
func (s *Session) StreamContext(ctx context.Context, sql string, opts ...QueryOption) (Rows, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	stmt, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	q, isQuery := stmt.(*parser.SelectStmt)
	if !isQuery {
		res, execErr := s.db.ExecContext(ctx, sql, s.layer(opts)...)
		if execErr != nil {
			return nil, execErr
		}
		return &materialRows{res: res}, nil
	}

	cfg := s.config(opts)
	plan, err := s.db.planSelect(q, &cfg)
	if err != nil {
		return nil, err
	}
	ctx, cancel := cfg.streamContext(ctx)
	ex := s.db.executorFor(&cfg, plan.Agg, nil)
	rows, err := s.db.streamPlan(ctx, cancel, ex, &cfg, plan, nil)
	if err != nil {
		cancel()
		return nil, err
	}
	return rows, nil
}

// streamContext wraps ctx with the configured per-query timeout. The
// returned cancel must be called when the stream ends (streamRows.Close
// does) so timer resources are released.
func (c *queryConfig) streamContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.timeout > 0 {
		return context.WithTimeout(ctx, c.timeout)
	}
	return context.WithCancel(ctx)
}

// streamPlan starts a streaming evaluation of plan under cfg. optimized
// is the pre-optimized root for prepared statements (nil to optimize
// here). The plug-in modes have no pipeline to stream — they are
// orchestrations of whole queries — so they materialize first and stream
// the result.
func (db *DB) streamPlan(ctx context.Context, cancel context.CancelFunc, ex *exec.Executor, cfg *queryConfig, plan *planner.Plan, optimized algebra.Node) (Rows, error) {
	root := optimized
	if root == nil {
		var err error
		root, err = db.optimizeRoot(ctx, plan)
		if err != nil {
			return nil, err
		}
	}

	switch cfg.mode {
	case ModePluginNaive, ModePluginMerged:
		rel, err := db.runMaterialized(ctx, ex, cfg, plan.Root, root)
		if err != nil {
			return nil, err
		}
		trimmed, err := trimResult(rel, plan)
		if err != nil {
			return nil, err
		}
		res := &Result{Rel: trimmed, Stats: ex.Stats(), Plan: algebra.Format(root)}
		return &materialRows{res: res, cancel: cancel}, nil
	default:
		strategy, sErr := execStrategy(cfg.mode)
		if sErr != nil {
			return nil, sErr
		}
		st, err := ex.StreamContext(ctx, root, strategy)
		if err != nil {
			return nil, err
		}
		ords, err := plan.TrimToOutput(st.Schema())
		if err != nil {
			st.Close()
			return nil, err
		}
		r := &streamRows{ex: ex, st: st, cancel: cancel, plan: algebra.Format(root)}
		r.project(ords, st.Schema())
		r.sch = st.Schema().Project(ords)
		return r, nil
	}
}

// streamRows adapts an exec.RowStream into the Rows interface, applying
// the plan's output-column trim per row instead of materializing a
// trimmed relation.
type streamRows struct {
	ex     *exec.Executor
	st     *exec.RowStream
	cancel context.CancelFunc
	plan   string

	// identity is true when the trim ordinals are 0..n-1 over the full
	// schema, so rows pass through untouched.
	identity bool
	ords     []int
	cols     []string
	sch      *schema.Schema
	buf      []types.Value // reused scratch tuple for projected rows
	cur      prel.Row
	closed   bool
}

// project precomputes the output projection and header.
func (r *streamRows) project(ords []int, sch *schema.Schema) {
	r.ords = ords
	r.identity = len(ords) == sch.Len()
	if r.identity {
		for i, o := range ords {
			if o != i {
				r.identity = false
				break
			}
		}
	}
	r.cols = make([]string, 0, len(ords)+2)
	for _, o := range ords {
		r.cols = append(r.cols, sch.Columns[o].QualifiedName())
	}
	r.cols = append(r.cols, "score", "conf")
}

// Next implements Rows.
func (r *streamRows) Next() bool {
	if r.closed {
		return false
	}
	if !r.st.Next() {
		r.close()
		return false
	}
	row := r.st.Row()
	if r.identity {
		r.cur = row
		return true
	}
	// Project into a reused scratch tuple: the Rows contract already says
	// the row is valid only until the next call to Next.
	if r.buf == nil {
		r.buf = make([]types.Value, len(r.ords))
	}
	for i, o := range r.ords {
		r.buf[i] = row.Tuple[o]
	}
	r.cur = prel.Row{Tuple: r.buf, SC: row.SC}
	return true
}

// Row implements Rows.
func (r *streamRows) Row() prel.Row { return r.cur }

// Columns implements Rows.
func (r *streamRows) Columns() []string { return r.cols }

// Schema implements Rows.
func (r *streamRows) Schema() *schema.Schema { return r.sch }

// Err implements Rows.
func (r *streamRows) Err() error { return r.st.Err() }

// Close implements Rows.
func (r *streamRows) Close() error {
	r.close()
	return r.st.Err()
}

func (r *streamRows) close() {
	if r.closed {
		return
	}
	r.closed = true
	r.st.Close()
	if r.cancel != nil {
		r.cancel()
	}
}

// Stats implements Rows.
func (r *streamRows) Stats() exec.Stats { return r.ex.Stats() }

// Plan implements Rows.
func (r *streamRows) Plan() string { return r.plan }

// Message implements Rows.
func (r *streamRows) Message() string { return "" }

// materialRows adapts a materialized Result into the Rows interface
// (DDL/DML statements and the plug-in modes).
type materialRows struct {
	res    *Result
	cancel context.CancelFunc
	pos    int
	cur    prel.Row
	closed bool
}

// Next implements Rows.
func (m *materialRows) Next() bool {
	if m.closed || m.res.Rel == nil || m.pos >= m.res.Rel.Len() {
		m.release()
		return false
	}
	m.cur = m.res.Rel.Rows[m.pos]
	m.pos++
	return true
}

// Row implements Rows.
func (m *materialRows) Row() prel.Row { return m.cur }

// Columns implements Rows.
func (m *materialRows) Columns() []string { return m.res.Columns() }

// Schema implements Rows.
func (m *materialRows) Schema() *schema.Schema {
	if m.res.Rel == nil {
		return nil
	}
	return m.res.Rel.Schema
}

// Err implements Rows.
func (m *materialRows) Err() error { return nil }

// Close implements Rows.
func (m *materialRows) Close() error {
	m.closed = true
	m.release()
	return nil
}

func (m *materialRows) release() {
	if m.cancel != nil {
		m.cancel()
		m.cancel = nil
	}
}

// Stats implements Rows.
func (m *materialRows) Stats() exec.Stats { return m.res.Stats }

// Plan implements Rows.
func (m *materialRows) Plan() string { return m.res.Plan }

// Message implements Rows.
func (m *materialRows) Message() string { return m.res.Message }
