package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"prefdb/internal/exec"
	"prefdb/internal/prel"
	"prefdb/internal/profile"
	"prefdb/internal/types"
)

// TestOptionPrecedence pins the documented resolution chain for every
// per-query option: Open defaults < session defaults < per-query options.
// Several "winning" values are deliberately the type's zero value
// (CacheAuto, BatchOn, ModeGBU) so the test fails if resolution ever
// regresses to zero-value comparison instead of explicit-set tracking.
func TestOptionPrecedence(t *testing.T) {
	storeA, storeB := profile.NewStore(), profile.NewStore()
	cases := []struct {
		name     string
		openSet  func(*DB) // nil: the option has no Open-level knob (zero default)
		sessOpt  QueryOption
		queryOpt QueryOption
		get      func(queryConfig) any
		open     any // resolved value with no session/query option
		sess     any // resolved value with only the session default
		query    any // resolved value with both layers present
	}{
		{
			name:    "mode",
			openSet: func(db *DB) { db.Mode = ModeBU },
			sessOpt: WithMode(ModeFtP), queryOpt: WithMode(ModeGBU),
			get:  func(c queryConfig) any { return c.mode },
			open: ModeBU, sess: ModeFtP, query: ModeGBU,
		},
		{
			name:    "workers",
			openSet: func(db *DB) { db.Workers = 2 },
			sessOpt: WithWorkers(3), queryOpt: WithWorkers(4),
			get:  func(c queryConfig) any { return c.workers },
			open: 2, sess: 3, query: 4,
		},
		{
			name:    "timeout",
			sessOpt: WithTimeout(time.Minute), queryOpt: WithTimeout(time.Hour),
			get:  func(c queryConfig) any { return c.timeout },
			open: time.Duration(0), sess: time.Minute, query: time.Hour,
		},
		{
			name:    "max-rows",
			sessOpt: WithMaxRows(10), queryOpt: WithMaxRows(20),
			get:  func(c queryConfig) any { return c.limits.MaxRows },
			open: 0, sess: 10, query: 20,
		},
		{
			name:    "max-cells",
			sessOpt: WithMaxCells(100), queryOpt: WithMaxCells(200),
			get:  func(c queryConfig) any { return c.limits.MaxCells },
			open: 0, sess: 100, query: 200,
		},
		{
			name:    "memory-budget",
			sessOpt: WithMemoryBudget(1 << 20), queryOpt: WithMemoryBudget(2 << 20),
			get:  func(c queryConfig) any { return c.limits.MemoryBudget },
			open: int64(0), sess: int64(1 << 20), query: int64(2 << 20),
		},
		{
			name:    "score-cache",
			openSet: func(db *DB) { db.ScoreCache = CacheOn },
			sessOpt: WithScoreCache(CacheOff), queryOpt: WithScoreCache(CacheAuto),
			get:  func(c queryConfig) any { return c.cache },
			open: CacheOn, sess: CacheOff, query: CacheAuto,
		},
		{
			name:    "batch",
			openSet: func(db *DB) { db.Batch = BatchOff },
			sessOpt: WithBatch(BatchOff), queryOpt: WithBatch(BatchOn),
			get:  func(c queryConfig) any { return c.batch },
			open: BatchOff, sess: BatchOff, query: BatchOn,
		},
		{
			name:    "batch-size",
			openSet: func(db *DB) { db.BatchSize = 64 },
			sessOpt: WithBatchSize(128), queryOpt: WithBatchSize(256),
			get:  func(c queryConfig) any { return c.batchSize },
			open: 64, sess: 128, query: 256,
		},
		{
			name:    "colstore",
			openSet: func(db *DB) { db.Colstore = ColstoreOn },
			sessOpt: WithColstore(ColstoreOn), queryOpt: WithColstore(ColstoreOff),
			get:  func(c queryConfig) any { return c.colstore },
			open: ColstoreOn, sess: ColstoreOn, query: ColstoreOff,
		},
		{
			name:    "profile",
			sessOpt: WithProfile(storeA, "alice"), queryOpt: WithProfile(storeB, "bob"),
			get: func(c queryConfig) any {
				if c.prof == nil {
					return ""
				}
				return c.prof.user
			},
			open: "", sess: "alice", query: "bob",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := Open()
			if tc.openSet != nil {
				tc.openSet(db)
			}
			if got := tc.get(db.NewSession().config(nil)); got != tc.open {
				t.Errorf("open layer: got %v, want %v", got, tc.open)
			}
			if got := tc.get(db.NewSession(tc.sessOpt).config(nil)); got != tc.sess {
				t.Errorf("session layer: got %v, want %v", got, tc.sess)
			}
			got := tc.get(db.NewSession(tc.sessOpt).config([]QueryOption{tc.queryOpt}))
			if got != tc.query {
				t.Errorf("query layer: got %v, want %v", got, tc.query)
			}
		})
	}
}

// TestSettingsRoundTrip checks CollectSettings ↔ Options: an option list
// survives flattening to Settings and back with identical resolution.
func TestSettingsRoundTrip(t *testing.T) {
	opts := []QueryOption{
		WithMode(ModeNative), WithWorkers(3), WithTimeout(time.Second),
		WithMaxRows(7), WithMaxCells(8), WithMemoryBudget(9),
		WithScoreCache(CacheOff), WithBatch(BatchOff), WithBatchSize(33),
		WithColstore(ColstoreOn),
	}
	s := CollectSettings(opts...)
	back := CollectSettings(s.Options()...)
	if s != back {
		t.Fatalf("settings did not survive the round trip:\n  first  %+v\n  second %+v", s, back)
	}
	if CollectSettings().HasMode || CollectSettings().HasWorkers {
		t.Fatal("empty option list reports explicit settings")
	}
	p := CollectSettings(WithProfile(profile.NewStore(), "u"))
	if !p.HasProfile {
		t.Fatal("WithProfile not reported in Settings")
	}
	if len(p.Options()) != 0 {
		t.Fatal("profile binding must not survive the Settings round trip")
	}
}

const sessionTestQuery = `
	SELECT title, year FROM movies
	PREFERRING year >= 2000 SCORE recency(year, 2011) CONF 0.9 ON movies
	RANK BY score`

// TestStreamMatchesQuery is the streaming-parity contract: for every
// evaluation mode and worker count, a drained StreamContext yields the
// same columns, rows and execution Stats as the materialized
// QueryContext.
func TestStreamMatchesQuery(t *testing.T) {
	modes := []Mode{ModeNative, ModeBU, ModeGBU, ModeFtP, ModePluginNaive, ModePluginMerged}
	for _, mode := range modes {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%v/workers=%d", mode, workers), func(t *testing.T) {
				db := setupDB(t)
				sess := db.NewSession(WithMode(mode), WithWorkers(workers))

				res, err := sess.QueryContext(context.Background(), sessionTestQuery)
				if err != nil {
					t.Fatal(err)
				}
				rows, err := sess.StreamContext(context.Background(), sessionTestQuery)
				if err != nil {
					t.Fatal(err)
				}
				var streamed []prel.Row
				for rows.Next() {
					row := rows.Row()
					tuple := make([]types.Value, len(row.Tuple))
					copy(tuple, row.Tuple)
					streamed = append(streamed, prel.Row{Tuple: tuple, SC: row.SC})
				}
				if err := rows.Err(); err != nil {
					t.Fatal(err)
				}
				if err := rows.Close(); err != nil {
					t.Fatal(err)
				}

				if got, want := rows.Columns(), res.Columns(); fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("columns: stream %v, query %v", got, want)
				}
				if len(streamed) != res.Rel.Len() {
					t.Fatalf("row count: stream %d, query %d", len(streamed), res.Rel.Len())
				}
				for i, row := range streamed {
					want := res.Rel.Rows[i]
					if len(row.Tuple) != len(want.Tuple) {
						t.Fatalf("row %d width: stream %d, query %d", i, len(row.Tuple), len(want.Tuple))
					}
					for j := range row.Tuple {
						if !row.Tuple[j].Equal(want.Tuple[j]) {
							t.Fatalf("row %d col %d: stream %v, query %v", i, j, row.Tuple[j], want.Tuple[j])
						}
					}
					if !row.SC.ApproxEqual(want.SC, 1e-9) {
						t.Fatalf("row %d SC: stream %v, query %v", i, row.SC, want.SC)
					}
				}
				if rows.Stats() != res.Stats {
					t.Fatalf("stats diverge:\n  stream %+v\n  query  %+v", rows.Stats(), res.Stats)
				}
				if rows.Plan() != res.Plan {
					t.Fatalf("plan diverges:\n  stream %s\n  query  %s", rows.Plan(), res.Plan)
				}
			})
		}
	}
}

// TestStreamDDLAndDML checks the non-query streaming shape: no rows, nil
// schema, and the effect message.
func TestStreamDDLAndDML(t *testing.T) {
	db := Open()
	sess := db.NewSession()
	rows, err := sess.StreamContext(context.Background(), `CREATE TABLE t (id INT, PRIMARY KEY (id))`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Next() {
		t.Fatal("DDL stream yielded a row")
	}
	if rows.Schema() != nil || rows.Columns() != nil {
		t.Fatal("DDL stream reports a schema")
	}
	if rows.Message() == "" {
		t.Fatal("DDL stream carries no message")
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	rows, err = sess.StreamContext(context.Background(), `INSERT INTO t VALUES (1), (2)`)
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
		t.Fatal("DML stream yielded a row")
	}
	if rows.Message() == "" {
		t.Fatal("DML stream carries no message")
	}
}

// TestStreamGuardTrip checks that lifecycle guards fire mid-stream with
// the same *GuardError structure as the materialized path.
func TestStreamGuardTrip(t *testing.T) {
	db := setupDB(t)
	sess := db.NewSession(WithMode(ModeNative))
	rows, err := sess.StreamContext(context.Background(), sessionTestQuery, WithMaxRows(1))
	if err != nil {
		// Some strategies trip during stream setup; that is fine as long
		// as the error is structured.
		assertGuard(t, err)
		return
	}
	for rows.Next() {
	}
	assertGuard(t, rows.Err())
	var ge *exec.GuardError
	if errors.As(rows.Err(), &ge) && ge.Limit != exec.LimitRows {
		t.Fatalf("tripped limit %v, want %v", ge.Limit, exec.LimitRows)
	}
}

func assertGuard(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		t.Fatal("expected a guard error")
	}
	if !errors.Is(err, exec.ErrResourceExhausted) {
		t.Fatalf("error %v does not match ErrResourceExhausted", err)
	}
	var ge *exec.GuardError
	if !errors.As(err, &ge) {
		t.Fatalf("error %v is not a *GuardError", err)
	}
}

// TestStreamCancel checks that canceling the stream's context mid-drain
// surfaces ErrCanceled.
func TestStreamCancel(t *testing.T) {
	db := setupDB(t)
	sess := db.NewSession(WithMode(ModeNative))
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := sess.StreamContext(ctx, sessionTestQuery)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	// The amortized poll may let a few rows through; it must stop within
	// one guard interval.
	for rows.Next() {
	}
	if rows.Err() != nil && !errors.Is(rows.Err(), exec.ErrCanceled) {
		t.Fatalf("stream error %v does not match ErrCanceled", rows.Err())
	}
	rows.Close()
}

// TestSessionClosed checks every entry point fails after Close.
func TestSessionClosed(t *testing.T) {
	db := setupDB(t)
	sess := db.NewSession()
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.QueryContext(context.Background(), sessionTestQuery); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("QueryContext after Close: %v", err)
	}
	if _, err := sess.ExecContext(context.Background(), sessionTestQuery); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("ExecContext after Close: %v", err)
	}
	if _, err := sess.StreamContext(context.Background(), sessionTestQuery); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("StreamContext after Close: %v", err)
	}
	if _, err := sess.Prepare(sessionTestQuery); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Prepare after Close: %v", err)
	}
}

// TestPreparedSessionDefaults checks prepared statements complete the
// precedence chain: the owning session's defaults apply to runs and
// per-run options override them.
func TestPreparedSessionDefaults(t *testing.T) {
	db := setupDB(t)
	sess := db.NewSession(WithMaxRows(1)) // session default: trip everything
	p, err := sess.Prepare(sessionTestQuery)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunContext(context.Background()); err == nil {
		t.Fatal("session max-rows default did not apply to the prepared run")
	} else {
		assertGuard(t, err)
	}
	if _, err := p.RunContext(context.Background(), WithMaxRows(1_000_000)); err != nil {
		t.Fatalf("per-run override did not win over the session default: %v", err)
	}
}

// TestConcurrentSessions runs many sessions with different defaults
// against one DB — queries, streams and prepared runs — and must be
// race-clean under -race.
func TestConcurrentSessions(t *testing.T) {
	db := setupDB(t)
	modes := []Mode{ModeNative, ModeBU, ModeGBU, ModeFtP}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := db.NewSession(WithMode(modes[w%len(modes)]), WithWorkers(1+w%3))
			defer sess.Close()
			for i := 0; i < 5; i++ {
				switch i % 3 {
				case 0:
					res, err := sess.QueryContext(context.Background(), sessionTestQuery)
					if err != nil {
						errs <- err
						return
					}
					if res.Rel == nil {
						errs <- errors.New("nil relation")
						return
					}
				case 1:
					rows, err := sess.StreamContext(context.Background(), sessionTestQuery)
					if err != nil {
						errs <- err
						return
					}
					n := 0
					for rows.Next() {
						n++
					}
					if err := rows.Close(); err != nil {
						errs <- err
						return
					}
				default:
					p, err := sess.Prepare(sessionTestQuery)
					if err != nil {
						errs <- err
						return
					}
					if _, err := p.RunContext(context.Background()); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestModeRegistryListings pins the uniform parse/list surface of the
// generic mode registry: every listed value round-trips through its
// parser and unknown names share one error shape.
func TestModeRegistryListings(t *testing.T) {
	if len(Modes()) != 6 {
		t.Fatalf("Modes() = %v", Modes())
	}
	if len(CacheModes()) != 3 || len(BatchModes()) != 2 || len(ColstoreModes()) != 3 {
		t.Fatalf("listings: cache %v batch %v colstore %v", CacheModes(), BatchModes(), ColstoreModes())
	}
	for _, m := range Modes() {
		if got, err := ParseMode(m.String()); err != nil || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	for _, name := range []string{"mode", "cache mode", "batch mode", "colstore mode"} {
		var err error
		switch name {
		case "mode":
			_, err = ParseMode("bogus")
		case "cache mode":
			_, err = ParseCacheMode("bogus")
		case "batch mode":
			_, err = ParseBatchMode("bogus")
		case "colstore mode":
			_, err = ParseColstoreMode("bogus")
		}
		if err == nil {
			t.Fatalf("%s: no error for bogus name", name)
		}
		want := fmt.Sprintf("engine: unknown %s %q", name, "bogus")
		if got := err.Error(); len(got) < len(want) || got[:len(want)] != want {
			t.Fatalf("%s error %q does not begin with %q", name, got, want)
		}
	}
}
