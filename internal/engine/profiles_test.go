package engine

import (
	"testing"

	"prefdb/internal/profile"
)

func TestQueryForUser(t *testing.T) {
	db := setupDB(t)
	store := profile.NewStore()
	if err := store.AddClause("alice", "genre = 'Comedy' SCORE 1 CONF 0.9 ON genres AS comedies"); err != nil {
		t.Fatal(err)
	}
	if err := store.AddClause("alice", "name = 'ICDE' SCORE 1 CONF 0.9 ON conferences AS icde"); err != nil {
		t.Fatal(err)
	}

	// A query over movies ⋈ genres picks up only the genre preference;
	// the conferences one is silently skipped as irrelevant.
	q := `SELECT title FROM movies JOIN genres ON movies.m_id = genres.m_id RANK BY score`
	res, err := db.QueryForUser(q, store, "alice", ModeGBU)
	if err != nil {
		t.Fatal(err)
	}
	scored := 0
	for _, row := range res.Rel.Rows {
		if row.SC.Known {
			scored++
		}
	}
	if scored == 0 {
		t.Fatal("profile preference was not applied")
	}
	// Comedies (movies 4 and 5) are the scored rows.
	top := res.Rel.Rows[0]
	if title := top.Tuple[0].AsString(); title != "Match Point" && title != "Scoop" {
		t.Errorf("top row = %q", title)
	}

	// An unknown user gets plain results.
	res2, err := db.QueryForUser(q, store, "nobody", ModeGBU)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res2.Rel.Rows {
		if row.SC.Known {
			t.Fatal("unknown user should get unscored results")
		}
	}

	// Profile preferences combine with the query's own PREFERRING clauses.
	q2 := `SELECT title FROM movies JOIN genres ON movies.m_id = genres.m_id
	       PREFERRING year >= 2005 SCORE 0.5 CONF 0.5 ON movies
	       RANK BY score`
	res3, err := db.QueryForUser(q2, store, "alice", ModeGBU)
	if err != nil {
		t.Fatal(err)
	}
	// Scoop (2006, Comedy) matches both: confidence 1.4.
	found := false
	for _, row := range res3.Rel.Rows {
		if row.Tuple[0].AsString() == "Scoop" && row.SC.Conf > 1.3 {
			found = true
		}
	}
	if !found {
		t.Error("query and profile preferences did not combine")
	}

	// Parse errors propagate.
	if _, err := db.QueryForUser("SELECT FROM", store, "alice", ModeGBU); err == nil {
		t.Error("bad SQL should error")
	}
}

func TestQueryForUserInContext(t *testing.T) {
	db := setupDB(t)
	store := profile.NewStore()
	if err := store.AddClause("alice", "genre = 'Comedy' SCORE 1 CONF 0.9 ON genres AS comedies"); err != nil {
		t.Fatal(err)
	}
	if err := store.AddClauseInContext("alice", "genre = 'Drama' SCORE 1 CONF 0.9 ON genres AS social", "with-friends"); err != nil {
		t.Fatal(err)
	}
	q := `SELECT title FROM movies JOIN genres ON movies.m_id = genres.m_id THRESHOLD conf > 0`
	alone, err := db.QueryForUser(q, store, "alice", ModeGBU)
	if err != nil {
		t.Fatal(err)
	}
	social, err := db.QueryForUserInContext(q, store, "alice", []string{"with-friends"}, ModeGBU)
	if err != nil {
		t.Fatal(err)
	}
	// With the drama preference active, more tuples get scored.
	if social.Rel.Len() <= alone.Rel.Len() {
		t.Errorf("contextual preferences did not widen the scored set: %d vs %d",
			social.Rel.Len(), alone.Rel.Len())
	}
}
