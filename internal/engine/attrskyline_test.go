package engine

import (
	"strings"
	"testing"
)

// TestAttributeSkyline exercises the Börzsönyi-style SKYLINE OF filter on
// the classic example shape: maximize rating while minimizing duration.
func TestAttributeSkyline(t *testing.T) {
	db := setupDB(t)
	q := `SELECT title, duration, rating FROM movies
	      JOIN ratings ON movies.m_id = ratings.m_id
	      SKYLINE OF rating MAX, duration MIN`
	res, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	// Data: (GT 116min 8.2) (WS 126 7.4) (MDB 132 8.1) (MP 124 7.7) (S 96 6.8).
	// Skyline: Gran Torino (best rating AND short), Scoop (shortest).
	// Wall Street is dominated by Gran Torino (shorter, higher rating);
	// Million Dollar Baby and Match Point by Gran Torino too.
	titles := map[string]bool{}
	for _, row := range res.Rel.Rows {
		titles[row.Tuple[0].AsString()] = true
	}
	if len(titles) != 2 || !titles["Gran Torino"] || !titles["Scoop"] {
		t.Errorf("skyline = %v", titles)
	}
}

func TestAttributeSkylineBruteForce(t *testing.T) {
	// Oracle check on the generated dataset: BNL result = pairwise scan.
	db := Open()
	if _, err := db.Exec(`CREATE TABLE pts (id INT, x INT, y INT, PRIMARY KEY (id))`); err != nil {
		t.Fatal(err)
	}
	// Deterministic pseudo-random points, including ties and duplicates.
	xs := []int64{3, 7, 7, 1, 9, 4, 9, 2, 5, 5, 8, 0, 6, 3, 9}
	ys := []int64{4, 2, 2, 9, 1, 4, 5, 8, 5, 5, 3, 9, 1, 7, 1}
	for i := range xs {
		if _, err := db.Exec(
			"INSERT INTO pts VALUES (" +
				itoa(int64(i)) + ", " + itoa(xs[i]) + ", " + itoa(ys[i]) + ")"); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Exec(`SELECT id, x, y FROM pts SKYLINE OF x MAX, y MAX`)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]bool{}
	for _, row := range res.Rel.Rows {
		got[row.Tuple[0].AsInt()] = true
	}
	// Brute force.
	want := map[int64]bool{}
	for i := range xs {
		dominated := false
		for j := range xs {
			if xs[j] >= xs[i] && ys[j] >= ys[i] && (xs[j] > xs[i] || ys[j] > ys[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			want[int64(i)] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("skyline = %v, want %v", got, want)
	}
	for id := range want {
		if !got[id] {
			t.Fatalf("missing %d: %v vs %v", id, got, want)
		}
	}
}

func TestAttributeSkylineNullsRankWorst(t *testing.T) {
	db := Open()
	must := func(s string) {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	must(`CREATE TABLE v (id INT, x INT, PRIMARY KEY (id))`)
	must(`INSERT INTO v VALUES (1, 5), (2, NULL), (3, 5)`)
	res, err := db.Exec(`SELECT id FROM v SKYLINE OF x MAX`)
	if err != nil {
		t.Fatal(err)
	}
	ids := map[int64]bool{}
	for _, row := range res.Rel.Rows {
		ids[row.Tuple[0].AsInt()] = true
	}
	// NULL is dominated by any number; the two fives tie and both survive.
	if len(ids) != 2 || !ids[1] || !ids[3] {
		t.Errorf("skyline = %v", ids)
	}
	// All-NULL input: nothing dominates, everything survives.
	must(`CREATE TABLE w (id INT, x INT, PRIMARY KEY (id))`)
	must(`INSERT INTO w VALUES (1, NULL), (2, NULL)`)
	res2, err := db.Exec(`SELECT id FROM w SKYLINE OF x MAX`)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rel.Len() != 2 {
		t.Errorf("all-null skyline = %d rows", res2.Rel.Len())
	}
}

func TestAttributeSkylineErrorsAndModes(t *testing.T) {
	db := setupDB(t)
	if _, err := db.Exec(`SELECT title FROM movies SKYLINE OF ghost MAX`); err == nil {
		t.Error("unknown dimension should fail")
	}
	if _, err := db.Exec(`SELECT title FROM movies SKYLINE OF title MAX`); err == nil {
		t.Error("non-numeric dimension should fail")
	}
	if _, err := db.Exec(`SELECT title FROM movies SKYLINE OF year`); err == nil {
		t.Error("missing MAX/MIN should fail to parse")
	}
	// All strategies agree on attribute skylines.
	q := `SELECT title, year, duration FROM movies SKYLINE OF year MAX, duration MIN`
	ref, err := db.Query(q, ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Modes() {
		res, err := db.Query(q, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if diff := ref.Rel.Diff(res.Rel, 1e-9); diff != "" {
			t.Errorf("%v differs: %s", m, diff)
		}
	}
	// Plan rendering names the dimensions.
	if !strings.Contains(ref.Plan, "Skyline(movies.year MAX, movies.duration MIN)") &&
		!strings.Contains(ref.Plan, "Skyline(year MAX, duration MIN)") {
		t.Errorf("plan = %s", ref.Plan)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
