package engine

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"prefdb/internal/types"
)

const cachePrefQuery = `SELECT title, year FROM movies
	PREFERRING year >= 2000 SCORE recency(year, 2011) CONF 0.9 ON movies
	RANK BY score`

// TestPreparedScoreDictionaryReuse pins the level-2 lifecycle: a prepared
// statement's second run takes every score from the engine's dictionary
// (zero misses), and any DML on a referenced table invalidates it.
func TestPreparedScoreDictionaryReuse(t *testing.T) {
	db := setupDB(t)
	p, err := db.Prepare(cachePrefQuery)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		t.Helper()
		res, err := p.RunContext(context.Background(), WithMode(ModeGBU), WithScoreCache(CacheOn))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	cold := run()
	if cold.Stats.CacheMisses == 0 {
		t.Fatalf("cold run should miss: %+v", cold.Stats)
	}
	warm := run()
	if warm.Stats.CacheMisses != 0 || warm.Stats.ScoreEvals != 0 {
		t.Errorf("warm run should be all dictionary hits: %+v", warm.Stats)
	}
	if diff := cold.Rel.Diff(warm.Rel, 0); diff != "" {
		t.Errorf("warm run differs: %s", diff)
	}

	// DML on the referenced table bumps its version; the stale dictionary
	// must be dropped, and the new row scored fresh.
	if _, err := db.Exec("INSERT INTO movies VALUES (9, 'Midnight in Paris', 2011, 94, 2)"); err != nil {
		t.Fatal(err)
	}
	after := run()
	if after.Stats.CacheMisses == 0 {
		t.Errorf("post-DML run reused a stale dictionary: %+v", after.Stats)
	}
	if after.Rel.Len() != warm.Rel.Len()+1 {
		t.Fatalf("post-DML rows = %d, want %d", after.Rel.Len(), warm.Rel.Len()+1)
	}
	// Cached results match an uncached fresh query exactly.
	ref, err := db.QueryContext(context.Background(), cachePrefQuery, WithMode(ModeGBU), WithScoreCache(CacheOff))
	if err != nil {
		t.Fatal(err)
	}
	if diff := ref.Rel.Diff(after.Rel, 0); diff != "" {
		t.Errorf("cached post-DML result differs from uncached: %s", diff)
	}
	// 2011 scores recency(2011,2011)=1: the new movie must rank first.
	if got := after.Rel.Rows[0].Tuple[0].AsString(); got != "Midnight in Paris" {
		t.Errorf("top row = %q", got)
	}

	// An UPDATE invalidates too.
	if _, err := db.Exec("UPDATE movies SET year = 2010 WHERE m_id = 2"); err != nil {
		t.Fatal(err)
	}
	postUpdate := run()
	if postUpdate.Stats.CacheMisses == 0 {
		t.Errorf("post-UPDATE run reused a stale dictionary: %+v", postUpdate.Stats)
	}
	ref2, err := db.QueryContext(context.Background(), cachePrefQuery, WithMode(ModeGBU), WithScoreCache(CacheOff))
	if err != nil {
		t.Fatal(err)
	}
	if diff := ref2.Rel.Diff(postUpdate.Rel, 0); diff != "" {
		t.Errorf("post-UPDATE cached result differs from uncached: %s", diff)
	}
}

// TestAdHocQueriesSkipDictionary: only prepared statements get the
// cross-query dictionary; back-to-back ad-hoc runs each start cold (the
// per-query memo still works within a run).
func TestAdHocQueriesSkipDictionary(t *testing.T) {
	db := setupDB(t)
	for i := 0; i < 2; i++ {
		res, err := db.QueryContext(context.Background(), cachePrefQuery, WithMode(ModeGBU), WithScoreCache(CacheOn))
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.CacheMisses == 0 {
			t.Errorf("ad-hoc run %d should start cold: %+v", i, res.Stats)
		}
	}
}

// TestScoreCacheModesAgree runs the same query under all three cache modes
// and every strategy; results must be identical.
func TestScoreCacheModesAgree(t *testing.T) {
	db := setupDB(t)
	ref, err := db.QueryContext(context.Background(), cachePrefQuery, WithMode(ModeGBU), WithScoreCache(CacheOff))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Modes() {
		for _, cache := range []CacheMode{CacheAuto, CacheOff, CacheOn} {
			res, err := db.QueryContext(context.Background(), cachePrefQuery, WithMode(m), WithScoreCache(cache))
			if err != nil {
				t.Fatalf("%v cache=%v: %v", m, cache, err)
			}
			if diff := ref.Rel.Diff(res.Rel, 1e-9); diff != "" {
				t.Errorf("%v cache=%v differs: %s", m, cache, diff)
			}
		}
	}
}

// TestExplainShowsCacheDecision: on a relation past the heuristic's row
// floor with a low-cardinality key, EXPLAIN reports the optimizer's
// decision to cache (operator marker with the ndv estimate).
func TestExplainShowsCacheDecision(t *testing.T) {
	db := setupDB(t)
	tbl, err := db.Catalog().Table("movies")
	if err != nil {
		t.Fatal(err)
	}
	// Grow movies past scoreCacheMinRows with ~50 distinct years.
	for i := 0; i < 2000; i++ {
		err := tbl.Insert([]types.Value{
			types.Int(int64(100 + i)), types.Str(fmt.Sprintf("bulk-%d", i)),
			types.Int(int64(1960 + i%50)), types.Int(int64(90 + i%60)), types.Int(int64(1 + i%3)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Exec("EXPLAIN " + cachePrefQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Message, "[cache ndv≈") {
		t.Errorf("EXPLAIN misses the cache decision:\n%s", res.Message)
	}
	// The small genres-keyed query in setupDB stays unannotated.
	small, err := db.Exec(`EXPLAIN SELECT director FROM directors
		PREFERRING director = 'W. Allen' SCORE 1 CONF 0.9 ON directors RANK BY score`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(small.Message, "[cache ndv≈") {
		t.Errorf("small relation wrongly annotated:\n%s", small.Message)
	}
}
