package engine

import (
	"time"

	"prefdb/internal/exec"
	"prefdb/internal/pref"
	"prefdb/internal/profile"
)

// QueryOption configures one query execution (ExecContext, QueryContext,
// RunPlanContext, Prepared.RunContext) or — passed to NewSession — a
// session's defaults. Options not given fall back through the precedence
// chain Open defaults < session defaults < per-query options; resource
// guards default to "unbounded".
type QueryOption func(*queryConfig)

// optMask records which options were explicitly given, so layered
// resolution (database → session → query) can tell an untouched field
// from one deliberately set to its zero value, and so the wire protocol
// ships only the options the caller actually chose.
type optMask uint16

const (
	optMode optMask = 1 << iota
	optWorkers
	optTimeout
	optMaxRows
	optMaxCells
	optMemory
	optCache
	optBatch
	optBatchSize
	optColstore
	optProfile
)

// profileBinding attaches a per-user preference profile: queries plan with
// the user's context-active preferences injected after the query's own
// PREFERRING clauses (§V's automatic integration).
type profileBinding struct {
	store    *profile.Store
	user     string
	contexts []string
}

// queryConfig is the resolved per-query configuration.
type queryConfig struct {
	mode      Mode
	workers   int
	timeout   time.Duration
	limits    exec.Limits
	cache     CacheMode
	batch     BatchMode
	batchSize int
	colstore  ColstoreMode
	prof      *profileBinding

	set optMask
}

// queryConfig resolves the options against the database defaults.
func (db *DB) queryConfig(opts []QueryOption) queryConfig {
	cfg := queryConfig{mode: db.Mode, workers: db.Workers, cache: db.ScoreCache,
		batch: db.Batch, batchSize: db.BatchSize, colstore: db.Colstore}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithMode selects the evaluation strategy for this query, overriding the
// database default.
func WithMode(m Mode) QueryOption {
	return func(c *queryConfig) { c.mode = m; c.set |= optMode }
}

// WithTimeout bounds the query's wall-clock time: the execution context
// is wrapped in context.WithTimeout and expiry surfaces as
// ErrDeadlineExceeded. Non-positive d means no extra deadline (a deadline
// already on the caller's context still applies).
func WithTimeout(d time.Duration) QueryOption {
	return func(c *queryConfig) { c.timeout = d; c.set |= optTimeout }
}

// WithWorkers sets the executor pool width for this query (0 =
// GOMAXPROCS, 1 = sequential), overriding the database default.
func WithWorkers(n int) QueryOption {
	return func(c *queryConfig) { c.workers = n; c.set |= optWorkers }
}

// WithMaxRows caps the tuples the query may materialize (intermediate
// relations included); exceeding it fails the query with
// ErrResourceExhausted. 0 means unlimited.
func WithMaxRows(n int) QueryOption {
	return func(c *queryConfig) { c.limits.MaxRows = n; c.set |= optMaxRows }
}

// WithMaxCells caps the attribute values (rows × width) the query may
// materialize; exceeding it fails with ErrResourceExhausted. 0 means
// unlimited.
func WithMaxCells(n int) QueryOption {
	return func(c *queryConfig) { c.limits.MaxCells = n; c.set |= optMaxCells }
}

// WithMemoryBudget caps the query's estimated materialized bytes
// (cells × exec.BytesPerCell); exceeding it fails with
// ErrResourceExhausted. 0 means unlimited.
func WithMemoryBudget(bytes int64) QueryOption {
	return func(c *queryConfig) { c.limits.MemoryBudget = bytes; c.set |= optMemory }
}

// WithScoreCache selects the preference score-cache mode for this query
// (CacheAuto follows the optimizer's hints, CacheOff disables
// memoization, CacheOn forces it), overriding the database default.
func WithScoreCache(m CacheMode) QueryOption {
	return func(c *queryConfig) { c.cache = m; c.set |= optCache }
}

// WithBatch selects the executor's evaluation style for this query
// (BatchOn runs supported operators vectorized over row batches, BatchOff
// forces the row-at-a-time path), overriding the database default.
// Results, order and stats (modulo the diagnostic batch counter) are
// identical in both modes.
func WithBatch(m BatchMode) QueryOption {
	return func(c *queryConfig) { c.batch = m; c.set |= optBatch }
}

// WithBatchSize overrides the vectorized path's rows-per-batch block size
// for this query (0 = the executor default).
func WithBatchSize(n int) QueryOption {
	return func(c *queryConfig) { c.batchSize = n; c.set |= optBatchSize }
}

// WithColstore selects the storage side batch scans read for this query
// (ColstoreOn serves sealed pages from the columnar segment store with
// zone-map pruning, ColstoreOff reads the row heap), overriding the
// database default. Results, order and stats (modulo the diagnostic
// segment counters) are identical in both modes.
func WithColstore(m ColstoreMode) QueryOption {
	return func(c *queryConfig) { c.colstore = m; c.set |= optColstore }
}

// WithProfile binds a per-user preference profile: queries plan with the
// user's context-active preferences from store injected after the query's
// own PREFERRING clauses (§V's automatic integration). Typically given as
// a session default (NewSession), making the session the per-user handle
// of the paper's multi-user model. Profile bindings are resolved locally
// at plan time and do not travel over a network connection.
func WithProfile(store *profile.Store, user string, contexts ...string) QueryOption {
	return func(c *queryConfig) {
		c.prof = &profileBinding{store: store, user: user, contexts: contexts}
		c.set |= optProfile
	}
}

// profilePreferences resolves the bound profile into the preferences to
// inject at plan time (nil without a binding).
func (c *queryConfig) profilePreferences() []pref.Preference {
	if c.prof == nil || c.prof.store == nil {
		return nil
	}
	return c.prof.store.PreferencesInContext(c.prof.user, c.prof.contexts...)
}

// Settings is the explicit, inspectable form of an option list: for every
// per-query option, whether it was given and with what value. It is the
// session/wire currency — CollectSettings flattens options into Settings,
// Options turns Settings back into the equivalent option list — and is
// what the network protocol serializes, so a remote session resolves the
// same precedence chain as an embedded one.
//
// Profile bindings (WithProfile) are deliberately not representable:
// they reference a live in-process profile.Store and stay local.
type Settings struct {
	HasMode bool
	Mode    Mode

	HasWorkers bool
	Workers    int

	HasTimeout bool
	Timeout    time.Duration

	HasMaxRows bool
	MaxRows    int

	HasMaxCells bool
	MaxCells    int

	HasMemoryBudget bool
	MemoryBudget    int64

	HasCache bool
	Cache    CacheMode

	HasBatch bool
	Batch    BatchMode

	HasBatchSize bool
	BatchSize    int

	HasColstore bool
	Colstore    ColstoreMode

	// HasProfile reports that a WithProfile option was present. Settings
	// cannot carry the binding itself; network clients use this to reject
	// the option with a clear error instead of silently dropping it.
	HasProfile bool
}

// CollectSettings applies opts to an empty configuration and reports which
// options were given and their values.
func CollectSettings(opts ...QueryOption) Settings {
	var c queryConfig
	for _, o := range opts {
		o(&c)
	}
	return Settings{
		HasMode: c.set&optMode != 0, Mode: c.mode,
		HasWorkers: c.set&optWorkers != 0, Workers: c.workers,
		HasTimeout: c.set&optTimeout != 0, Timeout: c.timeout,
		HasMaxRows: c.set&optMaxRows != 0, MaxRows: c.limits.MaxRows,
		HasMaxCells: c.set&optMaxCells != 0, MaxCells: c.limits.MaxCells,
		HasMemoryBudget: c.set&optMemory != 0, MemoryBudget: c.limits.MemoryBudget,
		HasCache: c.set&optCache != 0, Cache: c.cache,
		HasBatch: c.set&optBatch != 0, Batch: c.batch,
		HasBatchSize: c.set&optBatchSize != 0, BatchSize: c.batchSize,
		HasColstore: c.set&optColstore != 0, Colstore: c.colstore,
		HasProfile: c.set&optProfile != 0,
	}
}

// Options converts the settings back into the equivalent option list,
// preserving which options were explicitly given. Profile bindings do not
// survive the Settings round trip (see HasProfile).
func (s Settings) Options() []QueryOption {
	var opts []QueryOption
	if s.HasMode {
		opts = append(opts, WithMode(s.Mode))
	}
	if s.HasWorkers {
		opts = append(opts, WithWorkers(s.Workers))
	}
	if s.HasTimeout {
		opts = append(opts, WithTimeout(s.Timeout))
	}
	if s.HasMaxRows {
		opts = append(opts, WithMaxRows(s.MaxRows))
	}
	if s.HasMaxCells {
		opts = append(opts, WithMaxCells(s.MaxCells))
	}
	if s.HasMemoryBudget {
		opts = append(opts, WithMemoryBudget(s.MemoryBudget))
	}
	if s.HasCache {
		opts = append(opts, WithScoreCache(s.Cache))
	}
	if s.HasBatch {
		opts = append(opts, WithBatch(s.Batch))
	}
	if s.HasBatchSize {
		opts = append(opts, WithBatchSize(s.BatchSize))
	}
	if s.HasColstore {
		opts = append(opts, WithColstore(s.Colstore))
	}
	return opts
}

// OpenOption configures a database at Open (or Load) time, replacing
// direct struct-field pokes on DB.
type OpenOption func(*DB)

// WithDefaultMode sets the default evaluation strategy used by Exec and
// by queries that pass no WithMode option.
func WithDefaultMode(m Mode) OpenOption {
	return func(db *DB) { db.Mode = m }
}

// WithDefaultWorkers sets the default executor pool width (0 =
// GOMAXPROCS, 1 = sequential) used by queries that pass no WithWorkers
// option.
func WithDefaultWorkers(n int) OpenOption {
	return func(db *DB) { db.Workers = n }
}

// WithOptimizer toggles the preference-aware query optimizer (enabled by
// default).
func WithOptimizer(enabled bool) OpenOption {
	return func(db *DB) { db.Optimize = enabled }
}

// WithDefaultScoreCache sets the default score-cache mode used by queries
// that pass no WithScoreCache option.
func WithDefaultScoreCache(m CacheMode) OpenOption {
	return func(db *DB) { db.ScoreCache = m }
}

// WithDefaultBatch sets the default execution style used by queries that
// pass no WithBatch option.
func WithDefaultBatch(m BatchMode) OpenOption {
	return func(db *DB) { db.Batch = m }
}

// WithDefaultColstore sets the default batch-scan storage side used by
// queries that pass no WithColstore option.
func WithDefaultColstore(m ColstoreMode) OpenOption {
	return func(db *DB) { db.Colstore = m }
}
