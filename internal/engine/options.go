package engine

import (
	"time"

	"prefdb/internal/exec"
)

// QueryOption configures one query execution (ExecContext, QueryContext,
// RunPlanContext, Prepared.RunContext). Options not given fall back to
// the database's defaults (Mode, Workers) or to "unbounded" for the
// resource guards.
type QueryOption func(*queryConfig)

// queryConfig is the resolved per-query configuration.
type queryConfig struct {
	mode      Mode
	workers   int
	timeout   time.Duration
	limits    exec.Limits
	cache     CacheMode
	batch     BatchMode
	batchSize int
	colstore  ColstoreMode
}

// queryConfig resolves the options against the database defaults.
func (db *DB) queryConfig(opts []QueryOption) queryConfig {
	cfg := queryConfig{mode: db.Mode, workers: db.Workers, cache: db.ScoreCache,
		batch: db.Batch, batchSize: db.BatchSize, colstore: db.Colstore}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithMode selects the evaluation strategy for this query, overriding the
// database default.
func WithMode(m Mode) QueryOption {
	return func(c *queryConfig) { c.mode = m }
}

// WithTimeout bounds the query's wall-clock time: the execution context
// is wrapped in context.WithTimeout and expiry surfaces as
// ErrDeadlineExceeded. Non-positive d means no extra deadline (a deadline
// already on the caller's context still applies).
func WithTimeout(d time.Duration) QueryOption {
	return func(c *queryConfig) { c.timeout = d }
}

// WithWorkers sets the executor pool width for this query (0 =
// GOMAXPROCS, 1 = sequential), overriding the database default.
func WithWorkers(n int) QueryOption {
	return func(c *queryConfig) { c.workers = n }
}

// WithMaxRows caps the tuples the query may materialize (intermediate
// relations included); exceeding it fails the query with
// ErrResourceExhausted. 0 means unlimited.
func WithMaxRows(n int) QueryOption {
	return func(c *queryConfig) { c.limits.MaxRows = n }
}

// WithMaxCells caps the attribute values (rows × width) the query may
// materialize; exceeding it fails with ErrResourceExhausted. 0 means
// unlimited.
func WithMaxCells(n int) QueryOption {
	return func(c *queryConfig) { c.limits.MaxCells = n }
}

// WithMemoryBudget caps the query's estimated materialized bytes
// (cells × exec.BytesPerCell); exceeding it fails with
// ErrResourceExhausted. 0 means unlimited.
func WithMemoryBudget(bytes int64) QueryOption {
	return func(c *queryConfig) { c.limits.MemoryBudget = bytes }
}

// WithScoreCache selects the preference score-cache mode for this query
// (CacheAuto follows the optimizer's hints, CacheOff disables
// memoization, CacheOn forces it), overriding the database default.
func WithScoreCache(m CacheMode) QueryOption {
	return func(c *queryConfig) { c.cache = m }
}

// WithBatch selects the executor's evaluation style for this query
// (BatchOn runs supported operators vectorized over row batches, BatchOff
// forces the row-at-a-time path), overriding the database default.
// Results, order and stats (modulo the diagnostic batch counter) are
// identical in both modes.
func WithBatch(m BatchMode) QueryOption {
	return func(c *queryConfig) { c.batch = m }
}

// WithBatchSize overrides the vectorized path's rows-per-batch block size
// for this query (0 = the executor default).
func WithBatchSize(n int) QueryOption {
	return func(c *queryConfig) { c.batchSize = n }
}

// WithColstore selects the storage side batch scans read for this query
// (ColstoreOn serves sealed pages from the columnar segment store with
// zone-map pruning, ColstoreOff reads the row heap), overriding the
// database default. Results, order and stats (modulo the diagnostic
// segment counters) are identical in both modes.
func WithColstore(m ColstoreMode) QueryOption {
	return func(c *queryConfig) { c.colstore = m }
}

// OpenOption configures a database at Open (or Load) time, replacing
// direct struct-field pokes on DB.
type OpenOption func(*DB)

// WithDefaultMode sets the default evaluation strategy used by Exec and
// by queries that pass no WithMode option.
func WithDefaultMode(m Mode) OpenOption {
	return func(db *DB) { db.Mode = m }
}

// WithDefaultWorkers sets the default executor pool width (0 =
// GOMAXPROCS, 1 = sequential) used by queries that pass no WithWorkers
// option.
func WithDefaultWorkers(n int) OpenOption {
	return func(db *DB) { db.Workers = n }
}

// WithOptimizer toggles the preference-aware query optimizer (enabled by
// default).
func WithOptimizer(enabled bool) OpenOption {
	return func(db *DB) { db.Optimize = enabled }
}

// WithDefaultScoreCache sets the default score-cache mode used by queries
// that pass no WithScoreCache option.
func WithDefaultScoreCache(m CacheMode) OpenOption {
	return func(db *DB) { db.ScoreCache = m }
}

// WithDefaultBatch sets the default execution style used by queries that
// pass no WithBatch option.
func WithDefaultBatch(m BatchMode) OpenOption {
	return func(db *DB) { db.Batch = m }
}

// WithDefaultColstore sets the default batch-scan storage side used by
// queries that pass no WithColstore option.
func WithDefaultColstore(m ColstoreMode) OpenOption {
	return func(db *DB) { db.Colstore = m }
}
