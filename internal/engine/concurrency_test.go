package engine

import (
	"fmt"
	"sync"
	"testing"

	"prefdb/internal/datagen"
	"prefdb/internal/prel"
	"prefdb/internal/types"
)

// TestConcurrentReadOnlyQueries runs many queries in parallel against one
// database: each query gets its own executor, so read-only workloads must
// be race-free (run with -race).
func TestConcurrentReadOnlyQueries(t *testing.T) {
	db := setupDB(t)
	queries := []string{
		`SELECT title FROM movies WHERE year >= 2000
		 PREFERRING year >= 2005 SCORE recency(year, 2011) CONF 0.9 ON movies
		 TOP 3 BY score`,
		`SELECT title FROM movies JOIN genres ON movies.m_id = genres.m_id
		 PREFERRING genre = 'Comedy' SCORE 1 CONF 0.8 ON genres
		 RANK BY score`,
		`SELECT title FROM movies JOIN ratings ON movies.m_id = ratings.m_id
		 PREFERRING votes > 500 SCORE linear(rating, 0.1) CONF 0.7 ON ratings
		 SKYLINE`,
	}
	modes := []Mode{ModeNative, ModeGBU, ModeFtP, ModePluginNaive}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				q := queries[(w+i)%len(queries)]
				m := modes[(w+i)%len(modes)]
				res, err := db.Query(q, m)
				if err != nil {
					errs <- err
					return
				}
				if res.Rel == nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// workloadQueries is the six-query evaluation workload (Table II),
// inlined from internal/bench to avoid an import cycle: queries named
// DBLP-* run against the bibliography database, the rest against IMDB.
var workloadQueries = map[string]string{
	"IMDB-1": `SELECT title, year FROM movies
	      JOIN genres ON movies.m_id = genres.m_id
	      WHERE year >= 1990
	      PREFERRING genre = 'Comedy' SCORE 1 CONF 0.9 ON genres,
	                 year >= 2000 SCORE recency(year, 2011) CONF 0.8 ON movies
	      USING sum TOP 10 BY score`,
	"IMDB-2": `SELECT title, director FROM movies
	      JOIN directors ON movies.d_id = directors.d_id
	      JOIN genres ON movies.m_id = genres.m_id
	      JOIN ratings ON movies.m_id = ratings.m_id
	      WHERE year >= 1980
	      PREFERRING genre = 'Drama' SCORE 0.9 CONF 0.8 ON genres,
	                 votes > 500 SCORE linear(rating, 0.1) CONF 0.8 ON ratings,
	                 duration <= 120 SCORE around(duration, 120) CONF 0.5 ON movies
	      USING sum TOP 20 BY score`,
	"IMDB-3": `SELECT title, actor FROM movies
	      JOIN cast ON movies.m_id = cast.m_id
	      JOIN actors ON cast.a_id = actors.a_id
	      JOIN genres ON movies.m_id = genres.m_id
	      WHERE year >= 2000
	      PREFERRING genre = 'Action' SCORE recency(year, 2011) CONF 0.8 ON (movies, genres),
	                 genre = 'Drama' SCORE 1 CONF 0.6 ON genres
	      USING sum THRESHOLD conf >= 0.6`,
	"DBLP-1": `SELECT title, name FROM publications
	      JOIN conferences ON publications.p_id = conferences.p_id
	      PREFERRING name = 'ICDE' SCORE 1 CONF 0.9 ON conferences,
	                 year >= 2000 SCORE recency(year, 2011) CONF 0.8 ON conferences
	      USING sum TOP 10 BY score`,
	"DBLP-2": `SELECT title, name FROM publications
	      JOIN pub_authors ON publications.p_id = pub_authors.p_id
	      JOIN authors ON pub_authors.a_id = authors.a_id
	      PREFERRING pub_type = 'article' SCORE 0.8 CONF 0.9 ON publications,
	                 pub_authors.a_id < 100 SCORE 1 CONF 0.7 ON pub_authors
	      USING sum TOP 25 BY score`,
	"DBLP-3": `SELECT title FROM publications
	      JOIN citations ON publications.p_id = citations.p2_id
	      JOIN conferences ON publications.p_id = conferences.p_id
	      WHERE year >= 1990
	      PREFERRING name IN ('SIGMOD', 'VLDB', 'ICDE') SCORE 1 CONF 0.8 ON conferences,
	                 year >= 2005 SCORE recency(year, 2011) CONF 0.9 ON conferences
	      USING max SKYLINE`,
}

// sameRelation reports whether two p-relations are identical in
// cardinality, row order, tuples and ⟨S,C⟩ pairs.
func sameRelation(want, got *prel.PRelation) error {
	if want.Len() != got.Len() {
		return fmt.Errorf("cardinality %d, want %d", got.Len(), want.Len())
	}
	for i := range want.Rows {
		if !types.TupleEqual(want.Rows[i].Tuple, got.Rows[i].Tuple) {
			return fmt.Errorf("row %d tuple = %v, want %v", i, got.Rows[i].Tuple, want.Rows[i].Tuple)
		}
		if want.Rows[i].SC != got.Rows[i].SC {
			return fmt.Errorf("row %d SC = %v, want %v", i, got.Rows[i].SC, want.Rows[i].SC)
		}
	}
	return nil
}

// TestConcurrentParallelWorkload stress-tests the morsel-driven executor:
// the full six-query workload runs from eight goroutines against shared
// databases with Workers=4 (each query gets its own executor and worker
// pool), and every result must match the sequential Workers=1 reference
// exactly. Run with -race.
func TestConcurrentParallelWorkload(t *testing.T) {
	imdb, dblp := Open(), Open()
	if _, err := datagen.LoadIMDB(imdb.Catalog(), datagen.Config{Scale: 0.1, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	if _, err := datagen.LoadDBLP(dblp.Catalog(), datagen.Config{Scale: 0.1, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	dbFor := func(name string) *DB {
		if name[0] == 'D' {
			return dblp
		}
		return imdb
	}

	// Sequential references, computed before any goroutine starts.
	modes := []Mode{ModeNative, ModeGBU, ModeFtP, ModePluginNaive}
	type key struct {
		query string
		mode  Mode
	}
	imdb.Workers, dblp.Workers = 1, 1
	refs := make(map[key]*prel.PRelation)
	names := make([]string, 0, len(workloadQueries))
	for name, sql := range workloadQueries {
		names = append(names, name)
		for _, m := range modes {
			res, err := dbFor(name).Query(sql, m)
			if err != nil {
				t.Fatalf("%s %v: %v", name, m, err)
			}
			refs[key{name, m}] = res.Rel
		}
	}

	imdb.Workers, dblp.Workers = 4, 4
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2*len(names); i++ {
				name := names[(w+i)%len(names)]
				m := modes[(w+i)%len(modes)]
				res, err := dbFor(name).Query(workloadQueries[name], m)
				if err != nil {
					errs <- fmt.Errorf("%s %v: %w", name, m, err)
					return
				}
				if err := sameRelation(refs[key{name, m}], res.Rel); err != nil {
					errs <- fmt.Errorf("%s %v: %w", name, m, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
