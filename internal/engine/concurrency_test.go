package engine

import (
	"sync"
	"testing"
)

// TestConcurrentReadOnlyQueries runs many queries in parallel against one
// database: each query gets its own executor, so read-only workloads must
// be race-free (run with -race).
func TestConcurrentReadOnlyQueries(t *testing.T) {
	db := setupDB(t)
	queries := []string{
		`SELECT title FROM movies WHERE year >= 2000
		 PREFERRING year >= 2005 SCORE recency(year, 2011) CONF 0.9 ON movies
		 TOP 3 BY score`,
		`SELECT title FROM movies JOIN genres ON movies.m_id = genres.m_id
		 PREFERRING genre = 'Comedy' SCORE 1 CONF 0.8 ON genres
		 RANK BY score`,
		`SELECT title FROM movies JOIN ratings ON movies.m_id = ratings.m_id
		 PREFERRING votes > 500 SCORE linear(rating, 0.1) CONF 0.7 ON ratings
		 SKYLINE`,
	}
	modes := []Mode{ModeNative, ModeGBU, ModeFtP, ModePluginNaive}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				q := queries[(w+i)%len(queries)]
				m := modes[(w+i)%len(modes)]
				res, err := db.Query(q, m)
				if err != nil {
					errs <- err
					return
				}
				if res.Rel == nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
