package engine

import (
	"context"

	"prefdb/internal/algebra"
	"prefdb/internal/exec"
	"prefdb/internal/planner"
	"prefdb/internal/prel"
)

// Prepared is a planned and optimized preferential query that can be
// executed repeatedly without re-parsing, re-planning or re-optimizing.
// Preparing pays the compilation cost once; Run only executes.
//
// A prepared query is bound to the database state at preparation time only
// loosely: plans reference tables by name, so inserted rows are visible to
// later runs, but schema changes (new tables/columns) require re-preparing.
type Prepared struct {
	db *DB
	// plan holds the baseline plan (used by the plug-in modes, which by
	// definition cannot use the preference-aware optimizer).
	plan *planner.Plan
	// optimized is the optimizer's output (equal to plan.Root when the
	// optimizer is disabled at preparation time).
	optimized algebra.Node
}

// Prepare parses, plans and (if enabled) optimizes a query for repeated
// execution.
func (db *DB) Prepare(sql string) (*Prepared, error) {
	plan, err := db.pl.PlanQuery(sql)
	if err != nil {
		return nil, err
	}
	optimized := plan.Root
	if db.Optimize {
		optimized = db.opt.Optimize(plan.Root)
	}
	return &Prepared{db: db, plan: plan, optimized: optimized}, nil
}

// Run executes the prepared query with the given mode; it is RunContext
// under context.Background with WithMode.
func (p *Prepared) Run(mode Mode) (*Result, error) {
	return p.RunContext(context.Background(), WithMode(mode))
}

// RunContext executes the prepared query under ctx and the given options
// (mode, workers, timeout, resource budgets). The plan is not re-planned
// or re-optimized; only execution is guarded. See DB.ExecContext for the
// error contract.
func (p *Prepared) RunContext(ctx context.Context, opts ...QueryOption) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := p.db.queryConfig(opts)
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	ex := exec.New(p.db.cat)
	ex.Agg = p.plan.Agg
	ex.Workers = cfg.workers
	ex.Limits = cfg.limits
	ex.ScoreCache = cfg.cache
	ex.Batch = cfg.batch
	ex.BatchSize = cfg.batchSize
	ex.Colstore = cfg.colstore
	if cfg.cache != CacheOff {
		// Prepared statements additionally get the engine's cross-query
		// (level-2) score dictionaries; ad-hoc queries use only the
		// per-query memo since their compiled plans die with the run.
		ex.DictFor = p.db.dictFor
	}

	var rel *prel.PRelation
	var err error
	switch cfg.mode {
	case ModePluginNaive, ModePluginMerged:
		ex.Begin(ctx)
		runner := &pluginRunner{exec: ex, merged: cfg.mode == ModePluginMerged}
		rel, err = runner.run(p.plan.Root)
		if gErr := ex.GuardErr(); gErr != nil {
			rel, err = nil, gErr
		}
	default:
		strategy, sErr := execStrategy(cfg.mode)
		if sErr != nil {
			return nil, sErr
		}
		rel, err = ex.RunContext(ctx, p.optimized, strategy)
	}
	if err != nil {
		return nil, err
	}
	trimmed, err := trimResult(rel, p.plan)
	if err != nil {
		return nil, err
	}
	return &Result{Rel: trimmed, Stats: ex.Stats(), Plan: algebra.Format(p.optimized)}, nil
}

// Plan returns the optimized plan in explain format.
func (p *Prepared) Plan() string { return algebra.Format(p.optimized) }
