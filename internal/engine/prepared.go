package engine

import (
	"prefdb/internal/algebra"
	"prefdb/internal/exec"
	"prefdb/internal/planner"
	"prefdb/internal/prel"
)

// Prepared is a planned and optimized preferential query that can be
// executed repeatedly without re-parsing, re-planning or re-optimizing.
// Preparing pays the compilation cost once; Run only executes.
//
// A prepared query is bound to the database state at preparation time only
// loosely: plans reference tables by name, so inserted rows are visible to
// later runs, but schema changes (new tables/columns) require re-preparing.
type Prepared struct {
	db *DB
	// plan holds the baseline plan (used by the plug-in modes, which by
	// definition cannot use the preference-aware optimizer).
	plan *planner.Plan
	// optimized is the optimizer's output (equal to plan.Root when the
	// optimizer is disabled at preparation time).
	optimized algebra.Node
}

// Prepare parses, plans and (if enabled) optimizes a query for repeated
// execution.
func (db *DB) Prepare(sql string) (*Prepared, error) {
	plan, err := db.pl.PlanQuery(sql)
	if err != nil {
		return nil, err
	}
	optimized := plan.Root
	if db.Optimize {
		optimized = db.opt.Optimize(plan.Root)
	}
	return &Prepared{db: db, plan: plan, optimized: optimized}, nil
}

// Run executes the prepared query with the given mode.
func (p *Prepared) Run(mode Mode) (*Result, error) {
	ex := exec.New(p.db.cat)
	ex.Agg = p.plan.Agg
	ex.Workers = p.db.Workers

	var rel *prel.PRelation
	var err error
	switch mode {
	case ModePluginNaive, ModePluginMerged:
		runner := &pluginRunner{exec: ex, merged: mode == ModePluginMerged}
		rel, err = runner.run(p.plan.Root)
	default:
		strategy, sErr := execStrategy(mode)
		if sErr != nil {
			return nil, sErr
		}
		rel, err = ex.Run(p.optimized, strategy)
	}
	if err != nil {
		return nil, err
	}
	trimmed, err := trimResult(rel, p.plan)
	if err != nil {
		return nil, err
	}
	return &Result{Rel: trimmed, Stats: ex.Stats(), Plan: algebra.Format(p.optimized)}, nil
}

// Plan returns the optimized plan in explain format.
func (p *Prepared) Plan() string { return algebra.Format(p.optimized) }
