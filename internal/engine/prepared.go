package engine

import (
	"context"

	"prefdb/internal/algebra"
	"prefdb/internal/planner"
)

// Prepared is a planned and optimized preferential query that can be
// executed repeatedly without re-parsing, re-planning or re-optimizing.
// Preparing pays the compilation cost once; Run only executes.
//
// A prepared query is bound to the database state at preparation time only
// loosely: plans reference tables by name, so inserted rows are visible to
// later runs, but schema changes (new tables/columns) require re-preparing.
//
// A Prepared is safe for concurrent RunContext/StreamContext calls: every
// run builds its own executor; the plan and its compiled expressions are
// read-only.
type Prepared struct {
	db *DB
	// plan holds the baseline plan (used by the plug-in modes, which by
	// definition cannot use the preference-aware optimizer).
	plan *planner.Plan
	// optimized is the optimizer's output (equal to plan.Root when the
	// optimizer is disabled at preparation time).
	optimized algebra.Node
	// defaults are the owning session's default options (nil for
	// statements prepared directly on the DB); per-run options override
	// them, completing the Open < session < query precedence chain.
	defaults []QueryOption
}

// Prepare parses, plans and (if enabled) optimizes a query for repeated
// execution.
func (db *DB) Prepare(sql string) (*Prepared, error) {
	return db.prepareWith(sql, nil)
}

// prepareWith is Prepare carrying session default options.
func (db *DB) prepareWith(sql string, defaults []QueryOption) (*Prepared, error) {
	plan, err := db.pl.PlanQuery(sql)
	if err != nil {
		return nil, err
	}
	optimized := plan.Root
	if db.Optimize {
		optimized = db.opt.Optimize(plan.Root)
	}
	return &Prepared{db: db, plan: plan, optimized: optimized, defaults: defaults}, nil
}

// Run executes the prepared query with the given mode; it is RunContext
// under context.Background with WithMode.
//
// Deprecated: use RunContext with WithMode, which adds cancellation,
// deadlines and per-query options. Run remains as a thin wrapper and will
// not be removed.
func (p *Prepared) Run(mode Mode) (*Result, error) {
	return p.RunContext(context.Background(), WithMode(mode))
}

// config resolves the run options through the full precedence chain:
// database defaults, then the owning session's defaults (if any), then
// the per-run options.
func (p *Prepared) config(opts []QueryOption) queryConfig {
	if len(p.defaults) == 0 {
		return p.db.queryConfig(opts)
	}
	merged := make([]QueryOption, 0, len(p.defaults)+len(opts))
	merged = append(merged, p.defaults...)
	merged = append(merged, opts...)
	return p.db.queryConfig(merged)
}

// RunContext executes the prepared query under ctx and the given options
// (mode, workers, timeout, resource budgets). The plan is not re-planned
// or re-optimized; only execution is guarded. See DB.ExecContext for the
// error contract.
func (p *Prepared) RunContext(ctx context.Context, opts ...QueryOption) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := p.config(opts)
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	// Prepared statements additionally get the engine's cross-query
	// (level-2) score dictionaries; ad-hoc queries use only the per-query
	// memo since their compiled plans die with the run.
	ex := p.db.executorFor(&cfg, p.plan.Agg, p.db.dictFor)
	rel, err := p.db.runMaterialized(ctx, ex, &cfg, p.plan.Root, p.optimized)
	if err != nil {
		return nil, err
	}
	trimmed, err := trimResult(rel, p.plan)
	if err != nil {
		return nil, err
	}
	return &Result{Rel: trimmed, Stats: ex.Stats(), Plan: algebra.Format(p.optimized)}, nil
}

// StreamContext executes the prepared query under ctx and the given
// options, returning a streaming result instead of a materialized one;
// see Session.StreamContext for the streaming contract.
func (p *Prepared) StreamContext(ctx context.Context, opts ...QueryOption) (Rows, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := p.config(opts)
	ctx, cancel := cfg.streamContext(ctx)
	ex := p.db.executorFor(&cfg, p.plan.Agg, p.db.dictFor)
	rows, err := p.db.streamPlan(ctx, cancel, ex, &cfg, p.plan, p.optimized)
	if err != nil {
		cancel()
		return nil, err
	}
	return rows, nil
}

// Plan returns the optimized plan in explain format.
func (p *Prepared) Plan() string { return algebra.Format(p.optimized) }

// Close releases the prepared statement. For the embedded engine it is a
// no-op (plans are garbage collected); it exists so embedded and remote
// prepared statements share one interface — the network client's Close
// deallocates the server-side statement.
func (p *Prepared) Close() error { return nil }
