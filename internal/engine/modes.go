// Generic mode registry: one table per enumerated option (evaluation
// mode, score cache, batch style, colstore side) resolving names to
// values with uniform error text and a uniform listing, replacing the
// four hand-written Parse*Mode switches that had drifted apart in error
// wording. The exported Parse*/*Modes functions remain thin wrappers so
// existing call sites and flag parsing keep compiling unchanged.
package engine

import (
	"fmt"
	"strings"
)

// modeRegistry resolves the names of one enumerated option. Entries are
// listed in presentation order; the first name of an entry is canonical
// (used in listings and error text), the rest are accepted aliases.
type modeRegistry[T any] struct {
	// option names the setting in error messages ("mode", "cache mode").
	option string
	// empty, when set, is the value resolved for the empty string (the
	// "flag left at its default" convention of the evaluation mode).
	empty   *T
	entries []modeEntry[T]
}

type modeEntry[T any] struct {
	names []string // names[0] is canonical
	value T
}

// parse resolves a name (case-insensitive) to its value. Unknown names
// fail with the uniform shape:
//
//	engine: unknown <option> "<name>" (valid: a, b, c)
func (r *modeRegistry[T]) parse(name string) (T, error) {
	if name == "" && r.empty != nil {
		return *r.empty, nil
	}
	lower := strings.ToLower(name)
	for _, e := range r.entries {
		for _, n := range e.names {
			if n == lower {
				return e.value, nil
			}
		}
	}
	var zero T
	return zero, fmt.Errorf("engine: unknown %s %q (valid: %s)", r.option, name, strings.Join(r.names(), ", "))
}

// names lists the canonical name of every entry in presentation order.
func (r *modeRegistry[T]) names() []string {
	out := make([]string, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.names[0]
	}
	return out
}

// values lists every value in presentation order.
func (r *modeRegistry[T]) values() []T {
	out := make([]T, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.value
	}
	return out
}

var (
	modeReg = &modeRegistry[Mode]{option: "mode", empty: ptr(ModeGBU), entries: []modeEntry[Mode]{
		{names: []string{"native"}, value: ModeNative},
		{names: []string{"bu", "bottom-up"}, value: ModeBU},
		{names: []string{"gbu", "group-bottom-up"}, value: ModeGBU},
		{names: []string{"ftp", "filter-then-prefer"}, value: ModeFtP},
		{names: []string{"plugin-naive", "plugin"}, value: ModePluginNaive},
		{names: []string{"plugin-merged"}, value: ModePluginMerged},
	}}
	cacheReg = &modeRegistry[CacheMode]{option: "cache mode", entries: []modeEntry[CacheMode]{
		{names: []string{"auto"}, value: CacheAuto},
		{names: []string{"off"}, value: CacheOff},
		{names: []string{"on"}, value: CacheOn},
	}}
	batchReg = &modeRegistry[BatchMode]{option: "batch mode", entries: []modeEntry[BatchMode]{
		{names: []string{"on"}, value: BatchOn},
		{names: []string{"off"}, value: BatchOff},
	}}
	colstoreReg = &modeRegistry[ColstoreMode]{option: "colstore mode", entries: []modeEntry[ColstoreMode]{
		{names: []string{"off"}, value: ColstoreOff},
		{names: []string{"on"}, value: ColstoreOn},
		{names: []string{"rows"}, value: ColstoreRows},
	}}
)

func ptr[T any](v T) *T { return &v }

// ParseMode resolves an evaluation mode by name ("gbu", "ftp", ...); the
// empty string resolves to the default, ModeGBU.
func ParseMode(name string) (Mode, error) { return modeReg.parse(name) }

// Modes lists every evaluation mode in presentation order.
func Modes() []Mode { return modeReg.values() }

// ParseCacheMode resolves a score-cache mode by name ("auto", "off", "on").
func ParseCacheMode(name string) (CacheMode, error) { return cacheReg.parse(name) }

// CacheModes lists every score-cache mode in presentation order.
func CacheModes() []CacheMode { return cacheReg.values() }

// ParseBatchMode resolves a batch mode by name ("on", "off").
func ParseBatchMode(name string) (BatchMode, error) { return batchReg.parse(name) }

// BatchModes lists every batch mode in presentation order.
func BatchModes() []BatchMode { return batchReg.values() }

// ParseColstoreMode resolves a colstore mode by name ("on", "rows", "off").
func ParseColstoreMode(name string) (ColstoreMode, error) { return colstoreReg.parse(name) }

// ColstoreModes lists every colstore mode in presentation order.
func ColstoreModes() []ColstoreMode { return colstoreReg.values() }
