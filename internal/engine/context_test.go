package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"prefdb/internal/datagen"
	"prefdb/internal/exec"
)

const prefQuery = `
	SELECT title, year FROM movies
	JOIN genres ON movies.m_id = genres.m_id
	PREFERRING genre = 'Drama' SCORE 1 CONF 0.9 ON genres,
	           year >= 2000 SCORE recency(year, 2011) CONF 0.8 ON movies
	USING sum TOP 3 BY score`

// bigDB loads a generated dataset large enough for the guards to trip
// mid-query.
func bigDB(t testing.TB) *DB {
	t.Helper()
	db := Open()
	if _, err := datagen.LoadIMDB(db.Catalog(), datagen.Config{Scale: 0.1, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestQueryContextCancellation(t *testing.T) {
	db := setupDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, mode := range Modes() {
		_, err := db.QueryContext(ctx, prefQuery, WithMode(mode))
		if !errors.Is(err, exec.ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want ErrCanceled", mode, err)
		}
	}
	// A live context behaves exactly like the legacy positional API.
	for _, mode := range Modes() {
		want, err := db.Query(prefQuery, mode)
		if err != nil {
			t.Fatalf("%v legacy: %v", mode, err)
		}
		got, err := db.QueryContext(context.Background(), prefQuery, WithMode(mode))
		if err != nil {
			t.Fatalf("%v ctx: %v", mode, err)
		}
		if want.Rel.Len() != got.Rel.Len() || want.Stats != got.Stats || want.Plan != got.Plan {
			t.Fatalf("%v: context result differs from legacy result", mode)
		}
	}
}

func TestExecContextDDLAndDML(t *testing.T) {
	db := setupDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// DDL/DML observe cancellation up front and leave the catalog untouched.
	if _, err := db.ExecContext(ctx, `CREATE TABLE extra (x INT)`); !errors.Is(err, exec.ErrCanceled) {
		t.Fatalf("DDL on canceled ctx: err = %v", err)
	}
	if _, err := db.Catalog().Table("extra"); err == nil {
		t.Fatal("canceled DDL must not create the table")
	}
	if _, err := db.ExecContext(ctx, `INSERT INTO directors VALUES (9, 'Nobody')`); !errors.Is(err, exec.ErrCanceled) {
		t.Fatalf("DML on canceled ctx: err = %v", err)
	}
	// A nil context is treated as context.Background().
	if _, err := db.ExecContext(nil, `INSERT INTO directors VALUES (9, 'Somebody')`); err != nil { //nolint:staticcheck
		t.Fatalf("nil ctx insert: %v", err)
	}
}

func TestQueryTimeoutOption(t *testing.T) {
	db := bigDB(t)
	_, err := db.QueryContext(context.Background(), prefQuery, WithTimeout(time.Nanosecond))
	if !errors.Is(err, exec.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	// A generous timeout does not interfere.
	if _, err := db.QueryContext(context.Background(), prefQuery, WithTimeout(time.Minute)); err != nil {
		t.Fatalf("generous timeout: %v", err)
	}
}

func TestQueryResourceOptions(t *testing.T) {
	db := bigDB(t)
	for _, tc := range []struct {
		name string
		opt  QueryOption
		kind exec.LimitKind
	}{
		{"rows", WithMaxRows(100), exec.LimitRows},
		{"cells", WithMaxCells(500), exec.LimitCells},
		{"memory", WithMemoryBudget(8 << 10), exec.LimitMemory},
	} {
		_, err := db.QueryContext(context.Background(), prefQuery, WithMode(ModeGBU), tc.opt)
		if !errors.Is(err, exec.ErrResourceExhausted) {
			t.Fatalf("%s: err = %v, want ErrResourceExhausted", tc.name, err)
		}
		var ge *exec.GuardError
		if !errors.As(err, &ge) || ge.Limit != tc.kind {
			t.Fatalf("%s: err = %+v, want limit %s", tc.name, err, tc.kind)
		}
	}
	// WithWorkers overrides the per-DB pool width for one query only.
	res, err := db.QueryContext(context.Background(), prefQuery, WithWorkers(2))
	if err != nil || res.Rel.Len() == 0 {
		t.Fatalf("WithWorkers(2): %v", err)
	}
	if db.Workers != 0 {
		t.Fatalf("WithWorkers leaked into the DB default: %d", db.Workers)
	}
}

func TestOpenOptions(t *testing.T) {
	db := Open(WithDefaultMode(ModeFtP), WithDefaultWorkers(2), WithOptimizer(false))
	if db.Mode != ModeFtP || db.Workers != 2 || db.Optimize {
		t.Fatalf("Open options not applied: mode=%v workers=%d optimize=%v", db.Mode, db.Workers, db.Optimize)
	}
}

func TestPreparedRunContext(t *testing.T) {
	db := setupDB(t)
	p, err := db.Prepare(prefQuery)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Run(ModeGBU)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.RunContext(context.Background(), WithMode(ModeGBU))
	if err != nil {
		t.Fatal(err)
	}
	if want.Rel.Len() != got.Rel.Len() || want.Stats != got.Stats {
		t.Fatal("RunContext result differs from Run")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, mode := range Modes() {
		if _, err := p.RunContext(ctx, WithMode(mode)); !errors.Is(err, exec.ErrCanceled) {
			t.Fatalf("%v: err = %v, want ErrCanceled", mode, err)
		}
	}
	if _, err := p.RunContext(context.Background(), WithMode(ModeGBU), WithTimeout(time.Nanosecond)); !errors.Is(err, exec.ErrDeadlineExceeded) {
		t.Fatalf("prepared timeout: err = %v", err)
	}
}
