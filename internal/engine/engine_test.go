package engine

import (
	"bytes"
	"strings"
	"testing"
)

// setupDB builds the movie database end-to-end through SQL.
func setupDB(t testing.TB) *DB {
	t.Helper()
	db := Open()
	stmts := []string{
		`CREATE TABLE movies (m_id INT, title TEXT, year INT, duration INT, d_id INT, PRIMARY KEY (m_id))`,
		`CREATE TABLE directors (d_id INT, director TEXT, PRIMARY KEY (d_id))`,
		`CREATE TABLE genres (m_id INT, genre TEXT, PRIMARY KEY (m_id, genre))`,
		`CREATE TABLE ratings (m_id INT, rating FLOAT, votes INT, PRIMARY KEY (m_id))`,
		`CREATE BTREE INDEX ON movies (year)`,
		`CREATE HASH INDEX ON genres (genre)`,
		`INSERT INTO movies VALUES
			(1, 'Gran Torino', 2008, 116, 1),
			(2, 'Wall Street', 1987, 126, 3),
			(3, 'Million Dollar Baby', 2004, 132, 1),
			(4, 'Match Point', 2005, 124, 2),
			(5, 'Scoop', 2006, 96, 2)`,
		`INSERT INTO directors VALUES (1, 'C. Eastwood'), (2, 'W. Allen'), (3, 'O. Stone')`,
		`INSERT INTO genres VALUES (1, 'Drama'), (2, 'Drama'), (3, 'Drama'), (3, 'Sport'),
			(4, 'Thriller'), (4, 'Comedy'), (5, 'Comedy')`,
		`INSERT INTO ratings VALUES (1, 8.2, 900), (2, 7.4, 600), (3, 8.1, 1200), (4, 7.7, 400), (5, 6.8, 300)`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	return db
}

func TestDDLAndDML(t *testing.T) {
	db := setupDB(t)
	tbl, err := db.Catalog().Table("movies")
	if err != nil || tbl.Len() != 5 {
		t.Fatalf("movies table: %v, %d rows", err, tbl.Len())
	}
	// DDL errors surface.
	if _, err := db.Exec("CREATE TABLE movies (x INT)"); err == nil {
		t.Error("duplicate table should error")
	}
	if _, err := db.Exec("CREATE TABLE bad (x INT, PRIMARY KEY (nope))"); err == nil {
		t.Error("bad primary key should error")
	}
	if _, err := db.Exec("INSERT INTO nope VALUES (1)"); err == nil {
		t.Error("insert into missing table should error")
	}
	if _, err := db.Exec("INSERT INTO directors VALUES (9)"); err == nil {
		t.Error("arity mismatch should error")
	}
	if _, err := db.Exec("INSERT INTO directors VALUES ('x', 'y')"); err == nil {
		t.Error("type mismatch should error")
	}
	// Int literals coerce into FLOAT columns.
	if _, err := db.Exec("INSERT INTO ratings VALUES (6, 7, 100)"); err != nil {
		t.Errorf("int->float coercion failed: %v", err)
	}
	// Exact float->int coercion works; lossy fails.
	if _, err := db.Exec("INSERT INTO directors VALUES (4.0, 'Z')"); err != nil {
		t.Errorf("float->int exact coercion failed: %v", err)
	}
	if _, err := db.Exec("INSERT INTO directors VALUES (4.5, 'Z')"); err == nil {
		t.Error("lossy float->int coercion should error")
	}
}

func TestBasicQuery(t *testing.T) {
	db := setupDB(t)
	res, err := db.Exec("SELECT title FROM movies WHERE year >= 2005")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 3 {
		t.Errorf("rows = %d", res.Rel.Len())
	}
	cols := res.Columns()
	if len(cols) != 3 || cols[0] != "movies.title" || cols[1] != "score" || cols[2] != "conf" {
		t.Errorf("columns = %v", cols)
	}
}

// TestQ1Example9 runs the paper's Q1: top-k recent movies under Alice's
// preferences.
func TestQ1Example9(t *testing.T) {
	db := setupDB(t)
	q := `SELECT title, director FROM movies
	      JOIN directors ON movies.d_id = directors.d_id
	      JOIN genres ON movies.m_id = genres.m_id
	      WHERE year >= 2004
	      PREFERRING genre = 'Comedy' SCORE 0.8 CONF 0.9 ON genres,
	                 director = 'C. Eastwood' SCORE 0.9 CONF 0.8 ON directors
	      USING sum
	      TOP 3 BY score`
	res, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 3 {
		t.Fatalf("rows = %d\n%s", res.Rel.Len(), res.Rel)
	}
	// Result trimmed to the requested columns only.
	if res.Rel.Schema.Len() != 2 {
		t.Errorf("width = %d, want 2 (title, director)", res.Rel.Schema.Len())
	}
	// Top movie: an Eastwood film (0.9) or a Comedy (0.8) — Eastwood wins.
	top := res.Rel.Rows[0]
	if top.Tuple[1].AsString() != "C. Eastwood" {
		t.Errorf("top row = %v (%v)", top.Tuple, top.SC)
	}
}

// TestQ2ConfidenceThreshold runs the paper's Q2 pattern.
func TestQ2ConfidenceThreshold(t *testing.T) {
	db := setupDB(t)
	q := `SELECT title FROM movies JOIN genres ON movies.m_id = genres.m_id
	      PREFERRING genre = 'Comedy' SCORE 1 CONF 0.9 ON genres,
	                 year >= 2005 SCORE recency(year, 2011) CONF 0.5 ON movies
	      THRESHOLD conf >= 1.2`
	res, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	// Only tuples matching both preferences reach confidence 1.4.
	for _, row := range res.Rel.Rows {
		if row.SC.Conf < 1.2 {
			t.Errorf("row below threshold: %v", row)
		}
	}
	if res.Rel.Len() == 0 {
		t.Error("expected at least one confident row")
	}
}

func TestAllModesAgree(t *testing.T) {
	q := `SELECT title, year FROM movies
	      JOIN genres ON movies.m_id = genres.m_id
	      WHERE duration < 130
	      PREFERRING genre = 'Drama' SCORE 0.9 CONF 0.8 ON genres,
	                 year >= 2000 SCORE recency(year, 2011) CONF 1 ON movies
	      USING sum
	      RANK BY score`
	db := setupDB(t)
	ref, err := db.Query(q, ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Modes() {
		res, err := db.Query(q, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if diff := ref.Rel.Diff(res.Rel, 1e-9); diff != "" {
			t.Errorf("%v differs from native: %s", m, diff)
		}
	}
	// Unoptimized execution agrees too.
	db.Optimize = false
	res, err := db.Query(q, ModeGBU)
	if err != nil {
		t.Fatal(err)
	}
	if diff := ref.Rel.Diff(res.Rel, 1e-9); diff != "" {
		t.Errorf("unoptimized differs: %s", diff)
	}
}

func TestMembershipPreference(t *testing.T) {
	// The paper's p7: award-winning (here: rated) movies are preferred —
	// a membership preference over a join with TRUE condition.
	db := setupDB(t)
	q := `SELECT title FROM movies JOIN ratings ON movies.m_id = ratings.m_id
	      PREFERRING true SCORE 1 CONF 0.9 ON (movies, ratings)
	      RANK BY score`
	res, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rel.Rows {
		if !row.SC.Known || row.SC.Score != 1 {
			t.Errorf("membership row = %v", row)
		}
	}
}

func TestMultiAttributeScoring(t *testing.T) {
	// The paper's p5: 0.5·S_m(year,2011) + 0.5·S_d(duration,120).
	db := setupDB(t)
	q := `SELECT title FROM movies
	      PREFERRING year >= 2000 SCORE 0.5*recency(year,2011) + 0.5*around(duration,120) CONF 0.9 ON movies
	      TOP 1 BY score`
	res, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 1 || res.Rel.Rows[0].Tuple[0].AsString() != "Gran Torino" {
		t.Errorf("top = %v", res.Rel.Rows)
	}
}

func TestSkylineQuery(t *testing.T) {
	db := setupDB(t)
	q := `SELECT title FROM movies
	      PREFERRING year >= 2000 SCORE recency(year, 2011) CONF 0.5 ON movies,
	                 duration <= 120 SCORE around(duration, 120) CONF 1 ON movies
	      USING max
	      SKYLINE`
	res, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() == 0 || res.Rel.Len() >= 5 {
		t.Errorf("skyline size = %d", res.Rel.Len())
	}
}

func TestQueryErrors(t *testing.T) {
	db := setupDB(t)
	bad := []string{
		"SELECT nope FROM movies",
		"SELECT title FROM nope",
		"SELECT title FROM movies PREFERRING genre = 'X' SCORE 1 CONF 0.5 ON genres", // genres not in query
		"SELECT title FROM movies PREFERRING year > 1 SCORE 1 CONF 2 ON movies",      // conf out of range
		"SELECT title FROM movies USING bogus",
		"SELECT m1.title FROM movies m1, movies m1", // duplicate alias
		"SELECT title FROM movies WHERE title + 1 = 2",
	}
	for _, q := range bad {
		if _, err := db.Exec(q); err == nil {
			t.Errorf("%q should fail", q)
		}
	}
	if _, err := db.Query("CREATE TABLE t (x INT)", ModeGBU); err == nil {
		t.Error("Query should reject DDL")
	}
}

func TestParseMode(t *testing.T) {
	for _, m := range Modes() {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if m, err := ParseMode(""); err != nil || m != ModeGBU {
		t.Error("empty mode should default to GBU")
	}
	if _, err := ParseMode("quantum"); err == nil {
		t.Error("unknown mode should error")
	}
	if Mode(99).String() == "" {
		t.Error("unknown mode string")
	}
}

func TestQueryPlanExplain(t *testing.T) {
	db := setupDB(t)
	plan, err := db.QueryPlan(`SELECT title FROM movies JOIN genres ON movies.m_id = genres.m_id
		PREFERRING genre = 'Comedy' SCORE 1 CONF 0.8 ON genres TOP 2 BY score`)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Preferences) != 1 {
		t.Errorf("preferences = %d", len(plan.Preferences))
	}
	res, err := db.Exec(`SELECT title FROM movies JOIN genres ON movies.m_id = genres.m_id
		PREFERRING genre = 'Comedy' SCORE 1 CONF 0.8 ON genres TOP 2 BY score`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "Prefer(") || !strings.Contains(res.Plan, "Scan(genres)") {
		t.Errorf("explain plan missing operators:\n%s", res.Plan)
	}
	// Optimizer pushed the prefer next to the genres scan.
	lines := strings.Split(res.Plan, "\n")
	for i, l := range lines {
		if strings.Contains(l, "Prefer(") && i+1 < len(lines) {
			if !strings.Contains(lines[i+1], "genres") {
				t.Errorf("prefer not adjacent to genres scan:\n%s", res.Plan)
			}
		}
	}
}

func TestSelectStarIncludesSC(t *testing.T) {
	db := setupDB(t)
	res, err := db.Exec("SELECT * FROM directors")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Schema.Len() != 2 || res.Rel.Len() < 3 {
		t.Errorf("star query = %v", res.Rel)
	}
	cols := res.Columns()
	if cols[len(cols)-2] != "score" || cols[len(cols)-1] != "conf" {
		t.Errorf("columns = %v", cols)
	}
	// DDL results have no columns.
	r2, _ := db.Exec("CREATE TABLE tmp (x INT)")
	if r2.Columns() != nil || r2.Message == "" {
		t.Errorf("DDL result = %+v", r2)
	}
}

func TestAggregatesAndFunctionsExported(t *testing.T) {
	if len(Aggregates()) != 4 {
		t.Errorf("aggregates = %v", Aggregates())
	}
	if _, ok := Functions().Lookup("recency"); !ok {
		t.Error("scoring functions not exposed")
	}
}

func TestDeleteStatement(t *testing.T) {
	db := setupDB(t)
	res, err := db.Exec("DELETE FROM movies WHERE year < 2000")
	if err != nil {
		t.Fatal(err)
	}
	if res.Message != "deleted 1 rows from movies" {
		t.Errorf("message = %q", res.Message)
	}
	left, err := db.Exec("SELECT title FROM movies")
	if err != nil {
		t.Fatal(err)
	}
	if left.Rel.Len() != 4 {
		t.Errorf("rows after delete = %d", left.Rel.Len())
	}
	// Indexes skip deleted rows.
	idx, err := db.Exec("SELECT title FROM movies WHERE year >= 1980")
	if err != nil {
		t.Fatal(err)
	}
	if idx.Rel.Len() != 4 {
		t.Errorf("index path saw deleted rows: %d", idx.Rel.Len())
	}
	// DELETE without WHERE empties the table.
	if _, err := db.Exec("DELETE FROM genres"); err != nil {
		t.Fatal(err)
	}
	g, _ := db.Catalog().Table("genres")
	if g.Len() != 0 {
		t.Errorf("genres not emptied: %d", g.Len())
	}
	// Errors.
	if _, err := db.Exec("DELETE FROM nope"); err == nil {
		t.Error("unknown table should error")
	}
	if _, err := db.Exec("DELETE FROM movies WHERE ghost = 1"); err == nil {
		t.Error("bad condition should error")
	}
}

func TestEngineSnapshotRoundTrip(t *testing.T) {
	db := setupDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q := `SELECT title FROM movies JOIN genres ON movies.m_id = genres.m_id
	      PREFERRING genre = 'Comedy' SCORE 1 CONF 0.9 ON genres TOP 2 BY score`
	a, err := db.Query(q, ModeGBU)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.Query(q, ModeGBU)
	if err != nil {
		t.Fatal(err)
	}
	if diff := a.Rel.Diff(b.Rel, 1e-9); diff != "" {
		t.Errorf("restored database differs: %s", diff)
	}
}

func TestUpdateStatement(t *testing.T) {
	db := setupDB(t)
	res, err := db.Exec("UPDATE movies SET year = year + 1 WHERE m_id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Message != "updated 1 rows in movies" {
		t.Errorf("message = %q", res.Message)
	}
	check, _ := db.Exec("SELECT year FROM movies WHERE m_id = 1")
	if check.Rel.Rows[0].Tuple[0].AsInt() != 2009 {
		t.Errorf("year after update = %v", check.Rel.Rows[0].Tuple[0])
	}
	// Indexes reflect the new value.
	byYear, _ := db.Exec("SELECT title FROM movies WHERE year = 2009")
	if byYear.Rel.Len() != 1 {
		t.Errorf("btree index stale after update: %d rows", byYear.Rel.Len())
	}
	old, _ := db.Exec("SELECT title FROM movies WHERE year = 2008")
	if old.Rel.Len() != 0 {
		t.Errorf("old index entry still live: %d rows", old.Rel.Len())
	}
	// Multi-column update without WHERE touches every row.
	res2, err := db.Exec("UPDATE directors SET director = upper(director)")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Message != "updated 3 rows in directors" {
		t.Errorf("message = %q", res2.Message)
	}
	d, _ := db.Exec("SELECT director FROM directors WHERE d_id = 1")
	if d.Rel.Rows[0].Tuple[0].AsString() != "C. EASTWOOD" {
		t.Errorf("director = %v", d.Rel.Rows[0].Tuple[0])
	}
	// Errors: unknown table/column, type mismatch (atomic: no partial writes).
	if _, err := db.Exec("UPDATE nope SET x = 1"); err == nil {
		t.Error("unknown table should error")
	}
	if _, err := db.Exec("UPDATE movies SET ghost = 1"); err == nil {
		t.Error("unknown column should error")
	}
	if _, err := db.Exec("UPDATE movies SET year = 'nineteen'"); err == nil {
		t.Error("type mismatch should error")
	}
	before, _ := db.Exec("SELECT year FROM movies WHERE m_id = 2")
	if _, err := db.Exec("UPDATE movies SET year = 1.5"); err == nil {
		t.Error("lossy coercion should error")
	}
	after, _ := db.Exec("SELECT year FROM movies WHERE m_id = 2")
	if before.Rel.Rows[0].Tuple[0].AsInt() != after.Rel.Rows[0].Tuple[0].AsInt() {
		t.Error("failed update mutated rows (should be atomic)")
	}
}

func TestPreparedQueries(t *testing.T) {
	db := setupDB(t)
	q := `SELECT title FROM movies JOIN genres ON movies.m_id = genres.m_id
	      PREFERRING genre = 'Comedy' SCORE 1 CONF 0.9 ON genres
	      TOP 2 BY score`
	p, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := db.Query(q, ModeGBU)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Modes() {
		res, err := p.Run(m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if diff := ref.Rel.Diff(res.Rel, 1e-9); diff != "" {
			t.Errorf("%v prepared differs: %s", m, diff)
		}
	}
	// Prepared plans see later inserts.
	if _, err := db.Exec("INSERT INTO movies VALUES (9, 'Midnight in Paris', 2011, 94, 2)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO genres VALUES (9, 'Comedy')"); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(ModeGBU)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range res.Rel.Rows {
		if row.Tuple[0].AsString() == "Midnight in Paris" {
			found = true
		}
	}
	if !found {
		t.Error("prepared query did not see new rows")
	}
	if p.Plan() == "" {
		t.Error("Plan() empty")
	}
	if _, err := db.Prepare("SELECT nope FROM movies"); err == nil {
		t.Error("bad query should fail to prepare")
	}
}

func TestExplainStatement(t *testing.T) {
	db := setupDB(t)
	res, err := db.Exec(`EXPLAIN SELECT title FROM movies JOIN genres ON movies.m_id = genres.m_id
		PREFERRING genre = 'Comedy' SCORE 1 CONF 0.8 ON genres TOP 2 BY score`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel != nil {
		t.Error("EXPLAIN must not execute the query")
	}
	if !strings.Contains(res.Plan, "Prefer(") || !strings.Contains(res.Message, "Top(2, score)") {
		t.Errorf("explain output:\n%s", res.Message)
	}
	if _, err := db.Exec("EXPLAIN INSERT INTO movies VALUES (1)"); err == nil {
		t.Error("EXPLAIN of non-SELECT should fail")
	}
}

func TestInsertSelect(t *testing.T) {
	db := setupDB(t)
	if _, err := db.Exec(`CREATE TABLE recent (m_id INT, title TEXT, PRIMARY KEY (m_id))`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`INSERT INTO recent SELECT m_id, title FROM movies WHERE year >= 2005`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Message != "inserted 3 rows into recent" {
		t.Errorf("message = %q", res.Message)
	}
	check, _ := db.Exec("SELECT title FROM recent")
	if check.Rel.Len() != 3 {
		t.Errorf("rows = %d", check.Rel.Len())
	}
	// Preferential source query: scores are dropped, data lands.
	if _, err := db.Exec(`CREATE TABLE favs (m_id INT, title TEXT, PRIMARY KEY (m_id))`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO favs SELECT m_id, title FROM movies
		PREFERRING year >= 2000 SCORE 1 CONF 0.9 ON movies TOP 2 BY score`); err != nil {
		t.Fatal(err)
	}
	favs, _ := db.Exec("SELECT m_id FROM favs")
	if favs.Rel.Len() != 2 {
		t.Errorf("favs rows = %d", favs.Rel.Len())
	}
	for _, row := range favs.Rel.Rows {
		if row.SC.Known {
			t.Error("stored rows must not keep query-time scores")
		}
	}
	// Arity mismatch fails before mutating.
	before, _ := db.Exec("SELECT m_id FROM recent")
	if _, err := db.Exec(`INSERT INTO recent SELECT title FROM movies`); err == nil {
		t.Error("arity mismatch should fail")
	}
	after, _ := db.Exec("SELECT m_id FROM recent")
	if before.Rel.Len() != after.Rel.Len() {
		t.Error("failed INSERT SELECT mutated the table")
	}
	// Type mismatch fails too.
	if _, err := db.Exec(`INSERT INTO recent SELECT title, m_id FROM movies`); err == nil {
		t.Error("type mismatch should fail")
	}
}
