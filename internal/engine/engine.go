// Package engine is prefdb's top-level façade: it owns a catalog, parses
// SQL statements (including the PREFERRING dialect), plans and optimizes
// preferential queries, and executes them with a chosen evaluation mode
// (native, BU, GBU, FtP, or one of the plug-in baselines).
package engine

import (
	"context"
	"fmt"

	"prefdb/internal/algebra"
	"prefdb/internal/catalog"
	"prefdb/internal/exec"
	"prefdb/internal/expr"
	"prefdb/internal/optimizer"
	"prefdb/internal/parser"
	"prefdb/internal/planner"
	"prefdb/internal/pref"
	"prefdb/internal/prel"
	"prefdb/internal/schema"
	"prefdb/internal/types"
)

// Mode selects the query evaluation strategy.
type Mode uint8

const (
	// ModeGBU is the default: Group Bottom-Up (Alg. 2).
	ModeGBU Mode = iota
	// ModeBU executes operator-at-a-time (the paper's BU).
	ModeBU
	// ModeFtP is Filter-then-Prefer (Alg. 1).
	ModeFtP
	// ModeNative runs the whole extended plan in one pipeline.
	ModeNative
	// ModePluginNaive is the plug-in baseline with one query per preference.
	ModePluginNaive
	// ModePluginMerged is the plug-in baseline with one disjunctive query.
	ModePluginMerged
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeGBU:
		return "gbu"
	case ModeBU:
		return "bu"
	case ModeFtP:
		return "ftp"
	case ModeNative:
		return "native"
	case ModePluginNaive:
		return "plugin-naive"
	case ModePluginMerged:
		return "plugin-merged"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// DB is a prefdb database instance. A DB is safe for concurrent use; for
// per-user or per-connection defaults, derive Session handles with
// NewSession instead of mutating the exported default fields after Open.
type DB struct {
	cat *catalog.Catalog
	pl  *planner.Planner
	opt *optimizer.Optimizer

	// Mode is the default evaluation strategy for Query.
	Mode Mode
	// Optimize toggles the preference-aware query optimizer.
	Optimize bool
	// Workers is the executor's parallel pool width: 0 uses GOMAXPROCS,
	// 1 forces sequential execution. Results, order and stats are
	// identical at every setting; only wall-clock changes.
	Workers int
	// ScoreCache is the default preference score-cache mode for queries
	// that pass no WithScoreCache option: CacheAuto (the zero value)
	// follows the optimizer's per-operator hints, CacheOff disables
	// memoization, CacheOn forces it.
	ScoreCache CacheMode
	// Batch is the default execution style for queries that pass no
	// WithBatch option: BatchOn (the zero value) evaluates supported
	// operators vectorized over row batches, BatchOff forces the
	// row-at-a-time path. Results, order and stats (modulo the diagnostic
	// batch counter) are identical in both modes.
	Batch BatchMode
	// BatchSize overrides the vectorized path's rows-per-batch block size
	// (0 = the executor default).
	BatchSize int
	// Colstore is the default storage side for batch scans of queries that
	// pass no WithColstore option: ColstoreOff (the zero value) reads the
	// row heap, ColstoreOn reads the columnar segment store with zone-map
	// pruning and direct column kernels, ColstoreRows reads it with
	// pruning but packs row views up front (the pre-direct baseline).
	// Results, order and stats (modulo the diagnostic segment/columnar
	// counters) are identical in every mode.
	Colstore ColstoreMode

	// dicts holds the cross-query (level-2) score dictionaries used by
	// prepared statements; see dicts.go.
	dicts *dictCache
}

// CacheMode re-exports the executor's score-cache mode for option values.
type CacheMode = exec.CacheMode

// Score-cache modes (see exec.CacheMode).
const (
	CacheAuto = exec.CacheAuto
	CacheOff  = exec.CacheOff
	CacheOn   = exec.CacheOn
)

// BatchMode re-exports the executor's execution-style mode for option
// values.
type BatchMode = exec.BatchMode

// Batch modes (see exec.BatchMode).
const (
	BatchOn  = exec.BatchOn
	BatchOff = exec.BatchOff
)

// ColstoreMode re-exports the executor's columnar-storage mode for option
// values.
type ColstoreMode = exec.ColstoreMode

// Colstore modes (see exec.ColstoreMode).
const (
	ColstoreOff  = exec.ColstoreOff
	ColstoreOn   = exec.ColstoreOn
	ColstoreRows = exec.ColstoreRows
)

// Open creates an empty database. Options override the defaults (GBU
// strategy, optimizer on, Workers = GOMAXPROCS).
func Open(opts ...OpenOption) *DB {
	return openWith(catalog.New(), opts...)
}

// Catalog exposes the underlying catalog (for loaders and benchmarks).
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Optimizer exposes the preference-aware optimizer so benchmarks can toggle
// individual heuristics (ablation experiments).
func (db *DB) Optimizer() *optimizer.Optimizer { return db.opt }

// Result is the answer to a statement.
type Result struct {
	// Rel is the result p-relation (nil for DDL/DML).
	Rel *prel.PRelation
	// Stats holds the execution counters for queries.
	Stats exec.Stats
	// Plan is the executed (optimized) logical plan, for EXPLAIN-style use.
	Plan string
	// Message describes the effect of DDL/DML statements.
	Message string
}

// Columns returns the result header including the score and confidence
// attributes of the p-relation.
func (r *Result) Columns() []string {
	if r.Rel == nil {
		return nil
	}
	out := make([]string, 0, r.Rel.Schema.Len()+2)
	for _, c := range r.Rel.Schema.Columns {
		out = append(out, c.QualifiedName())
	}
	return append(out, "score", "conf")
}

// Exec parses and executes any statement (DDL, DML or query) with the
// database defaults and no cancellation; it is ExecContext under
// context.Background.
//
// Deprecated: use ExecContext (or a Session from NewSession), which adds
// cancellation, deadlines and per-query options. Exec remains as a thin
// wrapper and will not be removed.
func (db *DB) Exec(sql string) (*Result, error) {
	return db.ExecContext(context.Background(), sql)
}

// ExecContext parses and executes any statement (DDL, DML or query)
// under ctx and the given per-query options. Queries observe
// cancellation, deadlines and resource budgets cooperatively (see
// exec.Limits); DDL/DML statements check ctx before running. Lifecycle
// failures return a *exec.GuardError matching exec.ErrCanceled,
// exec.ErrDeadlineExceeded or exec.ErrResourceExhausted via errors.Is.
func (db *DB) ExecContext(ctx context.Context, sql string, opts ...QueryOption) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	stmt, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	if s, ok := stmt.(*parser.SelectStmt); ok {
		return db.runSelect(ctx, s, opts...)
	}
	// DDL/DML statements are short and atomic: honor an already-canceled
	// context, but do not interrupt them midway.
	if err := ctx.Err(); err != nil {
		return nil, exec.WrapContextErr(err)
	}
	switch s := stmt.(type) {
	case *parser.CreateTableStmt:
		return db.createTable(s)
	case *parser.CreateIndexStmt:
		return db.createIndex(s)
	case *parser.InsertStmt:
		return db.insert(ctx, s, opts...)
	case *parser.DeleteStmt:
		return db.delete(s)
	case *parser.UpdateStmt:
		return db.update(s)
	case *parser.ExplainStmt:
		return db.explain(s)
	default:
		return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
}

// Query parses, plans and executes a preferential query with the given
// mode and no cancellation; it is QueryContext under context.Background
// with WithMode.
//
// Deprecated: use QueryContext with WithMode (or a Session from
// NewSession), which adds cancellation, deadlines and per-query options.
// Query remains as a thin wrapper and will not be removed.
func (db *DB) Query(sql string, mode Mode) (*Result, error) {
	return db.QueryContext(context.Background(), sql, WithMode(mode))
}

// QueryContext parses, plans and executes a preferential query under ctx
// and the given options (mode, workers, timeout, resource budgets); see
// ExecContext for the error contract.
func (db *DB) QueryContext(ctx context.Context, sql string, opts ...QueryOption) (*Result, error) {
	q, err := parser.ParseQuery(sql)
	if err != nil {
		return nil, err
	}
	return db.runSelect(ctx, q, opts...)
}

// QueryPlan plans (and optionally optimizes) a query without executing it.
func (db *DB) QueryPlan(sql string) (*planner.Plan, error) {
	plan, err := db.pl.PlanQuery(sql)
	if err != nil {
		return nil, err
	}
	if db.Optimize {
		plan.Root = db.opt.Optimize(plan.Root)
	}
	return plan, nil
}

func (db *DB) runSelect(ctx context.Context, q *parser.SelectStmt, opts ...QueryOption) (*Result, error) {
	cfg := db.queryConfig(opts)
	plan, err := db.planSelect(q, &cfg)
	if err != nil {
		return nil, err
	}
	return db.runPlanCfg(ctx, plan, &cfg)
}

// planSelect plans a parsed query, injecting the configuration's bound
// profile preferences (WithProfile / session bindings) when present.
func (db *DB) planSelect(q *parser.SelectStmt, cfg *queryConfig) (*planner.Plan, error) {
	if ps := cfg.profilePreferences(); len(ps) > 0 {
		return db.pl.PlanWithPreferences(q, ps)
	}
	return db.pl.Plan(q)
}

// RunPlan executes an already-built plan with the given mode; it is
// RunPlanContext under context.Background with WithMode.
//
// Deprecated: use RunPlanContext with WithMode, which adds cancellation,
// deadlines and per-query options. RunPlan remains as a thin wrapper and
// will not be removed.
func (db *DB) RunPlan(plan *planner.Plan, mode Mode) (*Result, error) {
	return db.RunPlanContext(context.Background(), plan, WithMode(mode))
}

// RunPlanContext executes an already-built plan under ctx and the given
// options, applying the optimizer when enabled and trimming the result to
// the user-requested columns. A WithTimeout option wraps ctx in a
// deadline for the duration of the execution.
func (db *DB) RunPlanContext(ctx context.Context, plan *planner.Plan, opts ...QueryOption) (*Result, error) {
	cfg := db.queryConfig(opts)
	return db.runPlanCfg(ctx, plan, &cfg)
}

// runPlanCfg executes an already-built plan under an already-resolved
// configuration — the shared back end of RunPlanContext, runSelect and
// the session entry points.
func (db *DB) runPlanCfg(ctx context.Context, plan *planner.Plan, cfg *queryConfig) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}

	root, err := db.optimizeRoot(ctx, plan)
	if err != nil {
		return nil, err
	}
	ex := db.executorFor(cfg, plan.Agg, nil)
	rel, err := db.runMaterialized(ctx, ex, cfg, plan.Root, root)
	if err != nil {
		return nil, err
	}

	// Trim the extended projection back to the user's columns.
	trimmed, err := trimResult(rel, plan)
	if err != nil {
		return nil, err
	}
	return &Result{Rel: trimmed, Stats: ex.Stats(), Plan: algebra.Format(root)}, nil
}

// optimizeRoot applies the preference-aware optimizer under ctx when
// enabled, returning the plan root to execute.
func (db *DB) optimizeRoot(ctx context.Context, plan *planner.Plan) (algebra.Node, error) {
	if !db.Optimize {
		return plan.Root, nil
	}
	root, err := db.opt.OptimizeContext(ctx, plan.Root)
	if err != nil {
		return nil, exec.WrapContextErr(err)
	}
	return root, nil
}

// executorFor builds an executor configured for one query resolution.
// dictFor, when non-nil, enables the engine's cross-query score
// dictionaries (the prepared-statement path) unless the cache is off.
func (db *DB) executorFor(cfg *queryConfig, agg pref.Aggregate, dictFor func(pref.Preference, []string) *exec.ScoreDict) *exec.Executor {
	ex := exec.New(db.cat)
	ex.Agg = agg
	ex.Workers = cfg.workers
	ex.Limits = cfg.limits
	ex.ScoreCache = cfg.cache
	ex.Batch = cfg.batch
	ex.BatchSize = cfg.batchSize
	ex.Colstore = cfg.colstore
	if dictFor != nil && cfg.cache != CacheOff {
		ex.DictFor = dictFor
	}
	return ex
}

// runMaterialized evaluates a plan to a materialized p-relation under the
// resolved configuration. baseline is the non-optimized root the plug-in
// modes require (the preference-aware optimizer is precisely what a
// plug-in cannot use); root is the optimized root for the strategies.
func (db *DB) runMaterialized(ctx context.Context, ex *exec.Executor, cfg *queryConfig, baseline, root algebra.Node) (*prel.PRelation, error) {
	switch cfg.mode {
	case ModePluginNaive, ModePluginMerged:
		// Begin arms the executor's guard so every query the runner
		// delegates observes ctx and the budgets; GuardErr surfaces a trip
		// with the Stats at failure.
		ex.Begin(ctx)
		runner := &pluginRunner{exec: ex, merged: cfg.mode == ModePluginMerged}
		rel, err := runner.run(baseline)
		if gErr := ex.GuardErr(); gErr != nil {
			return nil, gErr
		}
		return rel, err
	default:
		strategy, sErr := execStrategy(cfg.mode)
		if sErr != nil {
			return nil, sErr
		}
		return ex.RunContext(ctx, root, strategy)
	}
}

func execStrategy(mode Mode) (exec.Strategy, error) {
	switch mode {
	case ModeNative:
		return exec.Native, nil
	case ModeBU:
		return exec.BU, nil
	case ModeGBU:
		return exec.GBU, nil
	case ModeFtP:
		return exec.FtP, nil
	default:
		return 0, fmt.Errorf("engine: mode %v is not an executor strategy", mode)
	}
}

func trimResult(rel *prel.PRelation, plan *planner.Plan) (*prel.PRelation, error) {
	ords, err := plan.TrimToOutput(rel.Schema)
	if err != nil {
		return nil, err
	}
	if len(ords) == rel.Schema.Len() {
		identity := true
		for i, o := range ords {
			if o != i {
				identity = false
				break
			}
		}
		if identity {
			return rel, nil
		}
	}
	out := prel.New(rel.Schema.Project(ords))
	for _, row := range rel.Rows {
		tuple := make([]types.Value, len(ords))
		for i, o := range ords {
			tuple[i] = row.Tuple[o]
		}
		out.Append(prel.Row{Tuple: tuple, SC: row.SC})
	}
	return out, nil
}

// --- DDL / DML ---

func (db *DB) createTable(s *parser.CreateTableStmt) (*Result, error) {
	cols := make([]schema.Column, len(s.Columns))
	for i, c := range s.Columns {
		cols[i] = schema.Column{Name: c.Name, Kind: c.Kind}
	}
	sch := schema.New(cols...)
	if len(s.Key) > 0 {
		for _, k := range s.Key {
			if _, err := sch.IndexOf("", k); err != nil {
				return nil, fmt.Errorf("engine: PRIMARY KEY column %q not in table", k)
			}
		}
		sch.WithKey(s.Key...)
	}
	if _, err := db.cat.CreateTable(s.Name, sch); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("created table %s (%d columns)", s.Name, len(cols))}, nil
}

func (db *DB) createIndex(s *parser.CreateIndexStmt) (*Result, error) {
	var err error
	kind := "hash"
	if s.BTree {
		kind = "btree"
		err = db.cat.CreateBTreeIndex(s.Table, s.Col)
	} else {
		err = db.cat.CreateHashIndex(s.Table, s.Col)
	}
	if err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("created %s index on %s(%s)", kind, s.Table, s.Col)}, nil
}

func (db *DB) insert(ctx context.Context, s *parser.InsertStmt, opts ...QueryOption) (*Result, error) {
	t, err := db.cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	sch := t.Schema()
	if s.Query != nil {
		return db.insertSelect(ctx, t, s, opts...)
	}
	for ri, row := range s.Rows {
		if len(row) != sch.Len() {
			return nil, fmt.Errorf("engine: row %d has %d values, table %s has %d columns", ri+1, len(row), s.Table, sch.Len())
		}
		coerced := make([]types.Value, len(row))
		for i, v := range row {
			cv, err := coerce(v, sch.Columns[i].Kind)
			if err != nil {
				return nil, fmt.Errorf("engine: row %d column %s: %w", ri+1, sch.Columns[i].Name, err)
			}
			coerced[i] = cv
		}
		if err := t.Insert(coerced); err != nil {
			return nil, err
		}
	}
	return &Result{Message: fmt.Sprintf("inserted %d rows into %s", len(s.Rows), s.Table)}, nil
}

func (db *DB) delete(s *parser.DeleteStmt) (*Result, error) {
	t, err := db.cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	pred := func([]types.Value) bool { return true }
	if s.Where != nil {
		cond, err := expr.CompileCondition(s.Where, t.Schema(), db.pl.Funcs)
		if err != nil {
			return nil, err
		}
		pred = cond.Truthy
	}
	n := t.DeleteWhere(pred)
	return &Result{Message: fmt.Sprintf("deleted %d rows from %s", n, s.Table)}, nil
}

func (db *DB) update(s *parser.UpdateStmt) (*Result, error) {
	t, err := db.cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	sch := t.Schema()
	pred := func([]types.Value) bool { return true }
	if s.Where != nil {
		cond, err := expr.CompileCondition(s.Where, sch, db.pl.Funcs)
		if err != nil {
			return nil, err
		}
		pred = cond.Truthy
	}
	type setter struct {
		ord  int
		kind types.Kind
		eval *expr.Compiled
	}
	setters := make([]setter, len(s.Set))
	for i, a := range s.Set {
		ord, err := sch.IndexOf("", a.Col)
		if err != nil {
			return nil, err
		}
		c, err := expr.Compile(a.Expr, sch, db.pl.Funcs)
		if err != nil {
			return nil, err
		}
		setters[i] = setter{ord: ord, kind: sch.Columns[ord].Kind, eval: c}
	}
	n, err := t.UpdateWhere(pred, func(tuple []types.Value) ([]types.Value, error) {
		out := append([]types.Value(nil), tuple...)
		for _, st := range setters {
			v, cErr := coerce(st.eval.Eval(tuple), st.kind)
			if cErr != nil {
				return nil, fmt.Errorf("engine: column %s: %w", sch.Columns[st.ord].Name, cErr)
			}
			out[st.ord] = v
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("updated %d rows in %s", n, s.Table)}, nil
}

// insertSelect materializes a query and inserts its tuples into the target
// table (score-confidence pairs are dropped: base tables hold data; scores
// are query-dependent, as §VI argues against storing them permanently).
func (db *DB) insertSelect(ctx context.Context, t *catalog.Table, s *parser.InsertStmt, opts ...QueryOption) (*Result, error) {
	res, err := db.runSelect(ctx, s.Query, opts...)
	if err != nil {
		return nil, err
	}
	sch := t.Schema()
	if res.Rel.Schema.Len() != sch.Len() {
		return nil, fmt.Errorf("engine: INSERT SELECT yields %d columns, table %s has %d",
			res.Rel.Schema.Len(), s.Table, sch.Len())
	}
	// Validate and coerce everything before mutating (atomicity).
	coercedRows := make([][]types.Value, 0, res.Rel.Len())
	for ri, row := range res.Rel.Rows {
		coerced := make([]types.Value, len(row.Tuple))
		for i, v := range row.Tuple {
			cv, err := coerce(v, sch.Columns[i].Kind)
			if err != nil {
				return nil, fmt.Errorf("engine: row %d column %s: %w", ri+1, sch.Columns[i].Name, err)
			}
			coerced[i] = cv
		}
		coercedRows = append(coercedRows, coerced)
	}
	for _, row := range coercedRows {
		if err := t.Insert(row); err != nil {
			return nil, err
		}
	}
	return &Result{Message: fmt.Sprintf("inserted %d rows into %s", len(coercedRows), s.Table)}, nil
}

// explain plans and optimizes a query without executing it.
func (db *DB) explain(s *parser.ExplainStmt) (*Result, error) {
	plan, err := db.pl.Plan(s.Query)
	if err != nil {
		return nil, err
	}
	root := plan.Root
	if db.Optimize {
		root = db.opt.Optimize(root)
	}
	return &Result{Message: "plan:\n" + algebra.Format(root), Plan: algebra.Format(root)}, nil
}

// coerce converts a literal to the declared column kind where lossless.
func coerce(v types.Value, kind types.Kind) (types.Value, error) {
	if v.IsNull() || v.Kind() == kind {
		return v, nil
	}
	switch {
	case kind == types.KindFloat && v.Kind() == types.KindInt:
		return types.Float(float64(v.AsInt())), nil
	case kind == types.KindInt && v.Kind() == types.KindFloat:
		f := v.AsFloat()
		if f == float64(int64(f)) {
			return types.Int(int64(f)), nil
		}
		return types.Value{}, fmt.Errorf("value %v is not an integer", v)
	default:
		return types.Value{}, fmt.Errorf("cannot store %s value in %s column", v.Kind(), kind)
	}
}

// --- plug-in bridge (avoids exposing internal/plugin in the public API) ---

type pluginRunner struct {
	exec   *exec.Executor
	merged bool
}

// run defers to internal/plugin through a tiny indirection set in init by
// the plugin bridge file.
func (p *pluginRunner) run(plan algebra.Node) (*prel.PRelation, error) {
	return runPlugin(p.exec, p.merged, plan)
}

// Aggregates re-exports the aggregate registry for callers configuring
// queries programmatically.
func Aggregates() []string { return pref.AggregateNames() }

// Functions exposes the scoring-function registry (for docs and REPL help).
func Functions() *expr.Registry { return pref.Functions() }
