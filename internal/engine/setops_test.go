package engine

import (
	"strings"
	"testing"
)

// TestUnionQuery covers the paper's Example 6 shape: combining two users'
// movie sets, with duplicate tuples merging their score-confidence pairs
// through F.
func TestUnionQuery(t *testing.T) {
	db := setupDB(t)
	q := `SELECT title FROM movies WHERE year >= 2005
	      PREFERRING year >= 2005 SCORE 1 CONF 0.5 ON movies
	      UNION
	      SELECT title FROM movies WHERE duration <= 120
	      PREFERRING duration <= 120 SCORE 1 CONF 0.5 ON movies
	      USING sum
	      RANK BY score`
	res, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	// recent = {Gran Torino, Match Point, Scoop}; short = {Gran Torino, Scoop}.
	if res.Rel.Len() != 3 {
		t.Fatalf("union rows = %d\n%s", res.Rel.Len(), res.Rel)
	}
	// Gran Torino and Scoop are in both arms: their pairs combine to conf 1.
	byTitle := map[string]float64{}
	for _, row := range res.Rel.Rows {
		byTitle[row.Tuple[0].AsString()] = row.SC.Conf
	}
	if byTitle["Gran Torino"] != 1 || byTitle["Scoop"] != 1 {
		t.Errorf("duplicate tuples should combine confidences: %v", byTitle)
	}
	if byTitle["Match Point"] != 0.5 {
		t.Errorf("single-arm tuple conf = %v", byTitle["Match Point"])
	}
}

func TestIntersectAndExcept(t *testing.T) {
	db := setupDB(t)
	inter, err := db.Exec(`SELECT title FROM movies WHERE year >= 2005
	                       INTERSECT
	                       SELECT title FROM movies WHERE duration <= 120`)
	if err != nil {
		t.Fatal(err)
	}
	if inter.Rel.Len() != 2 {
		t.Errorf("intersect rows = %d", inter.Rel.Len())
	}
	except, err := db.Exec(`SELECT title FROM movies WHERE year >= 2005
	                        EXCEPT
	                        SELECT title FROM movies WHERE duration <= 120`)
	if err != nil {
		t.Fatal(err)
	}
	if except.Rel.Len() != 1 || except.Rel.Rows[0].Tuple[0].AsString() != "Match Point" {
		t.Errorf("except = %v", except.Rel.Rows)
	}
	// MINUS is an alias for EXCEPT.
	minus, err := db.Exec(`SELECT title FROM movies WHERE year >= 2005
	                       MINUS
	                       SELECT title FROM movies WHERE duration <= 120`)
	if err != nil {
		t.Fatal(err)
	}
	if minus.Rel.Len() != 1 {
		t.Errorf("minus rows = %d", minus.Rel.Len())
	}
}

func TestCompoundChainsLeftToRight(t *testing.T) {
	db := setupDB(t)
	// (recent ∪ short) − dramas
	q := `SELECT title FROM movies WHERE year >= 2005
	      UNION SELECT title FROM movies WHERE duration <= 120
	      EXCEPT SELECT title FROM movies JOIN genres ON movies.m_id = genres.m_id WHERE genre = 'Drama'`
	res, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	titles := map[string]bool{}
	for _, row := range res.Rel.Rows {
		titles[row.Tuple[0].AsString()] = true
	}
	// Gran Torino is a Drama → excluded. Match Point (Thriller/Comedy) and
	// Scoop (Comedy) remain.
	if len(titles) != 2 || !titles["Match Point"] || !titles["Scoop"] {
		t.Errorf("chain result = %v", titles)
	}
}

func TestCompoundStrategiesAgree(t *testing.T) {
	db := setupDB(t)
	q := `SELECT title, year FROM movies WHERE year >= 2005
	      PREFERRING year >= 2006 SCORE recency(year, 2011) CONF 0.8 ON movies
	      UNION
	      SELECT title, year FROM movies WHERE duration <= 126
	      USING sum
	      TOP 4 BY score`
	ref, err := db.Query(q, ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Modes() {
		res, err := db.Query(q, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if diff := ref.Rel.Diff(res.Rel, 1e-9); diff != "" {
			t.Errorf("%v differs: %s", m, diff)
		}
	}
}

func TestCompoundErrors(t *testing.T) {
	db := setupDB(t)
	bad := []struct{ q, reason string }{
		{`SELECT title FROM movies UNION SELECT title, year FROM movies`, "arity mismatch"},
		{`SELECT title FROM movies UNION SELECT year FROM movies`, "layout mismatch"},
		{`SELECT * FROM movies UNION SELECT title FROM movies`, "star/list mix"},
		{`SELECT title FROM movies USING sum UNION SELECT title FROM movies`, "USING before UNION"},
		{`SELECT title FROM movies TOP 3 UNION SELECT title FROM movies`, "filter before UNION"},
		{`SELECT title FROM movies UNION`, "missing arm"},
	}
	for _, c := range bad {
		if _, err := db.Exec(c.q); err == nil {
			t.Errorf("%s: %q should fail", c.reason, c.q)
		}
	}
	// Star-star compound is fine.
	if _, err := db.Exec(`SELECT * FROM directors UNION SELECT * FROM directors`); err != nil {
		t.Errorf("star union: %v", err)
	}
}

func TestCompoundPlanShape(t *testing.T) {
	db := setupDB(t)
	res, err := db.Exec(`SELECT title FROM movies WHERE year >= 2005
	                     UNION SELECT title FROM movies WHERE duration <= 96`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "Union()") {
		t.Errorf("plan missing union:\n%s", res.Plan)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	db := setupDB(t)
	res, err := db.Exec(`SELECT title, year FROM movies ORDER BY year DESC LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 2 {
		t.Fatalf("rows = %d", res.Rel.Len())
	}
	if res.Rel.Rows[0].Tuple[1].AsInt() != 2008 || res.Rel.Rows[1].Tuple[1].AsInt() != 2006 {
		t.Errorf("order = %v", res.Rel.Rows)
	}
	// OFFSET skips; ascending is the default direction.
	res2, err := db.Exec(`SELECT year FROM movies ORDER BY year LIMIT 2 OFFSET 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rel.Rows[0].Tuple[0].AsInt() != 2004 || res2.Rel.Rows[1].Tuple[0].AsInt() != 2005 {
		t.Errorf("offset order = %v", res2.Rel.Rows)
	}
	// Multi-key ordering with explicit ASC.
	res3, err := db.Exec(`SELECT d_id, year FROM movies ORDER BY d_id ASC, year DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Rel.Rows[0].Tuple[0].AsInt() != 1 || res3.Rel.Rows[0].Tuple[1].AsInt() != 2008 {
		t.Errorf("multi-key order = %v", res3.Rel.Rows[0].Tuple)
	}
	// ORDER BY columns need not be projected.
	res4, err := db.Exec(`SELECT title FROM movies ORDER BY duration LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res4.Rel.Rows[0].Tuple[0].AsString() != "Scoop" {
		t.Errorf("unprojected order key = %v", res4.Rel.Rows[0].Tuple)
	}
	if res4.Rel.Schema.Len() != 1 {
		t.Errorf("result width = %d, want 1", res4.Rel.Schema.Len())
	}
}

func TestOrderByAfterPreferenceFilter(t *testing.T) {
	db := setupDB(t)
	// TOP picks the best-scored movies; ORDER BY then rearranges them by year.
	q := `SELECT title, year FROM movies
	      PREFERRING year >= 2000 SCORE recency(year, 2011) CONF 0.9 ON movies
	      TOP 3 BY score
	      ORDER BY year ASC`
	res, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 3 {
		t.Fatalf("rows = %d", res.Rel.Len())
	}
	years := []int64{res.Rel.Rows[0].Tuple[1].AsInt(), res.Rel.Rows[1].Tuple[1].AsInt(), res.Rel.Rows[2].Tuple[1].AsInt()}
	if !(years[0] <= years[1] && years[1] <= years[2]) {
		t.Errorf("years = %v", years)
	}
	// All strategies agree.
	ref, err := db.Query(q, ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Modes() {
		got, err := db.Query(q, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if diff := ref.Rel.Diff(got.Rel, 1e-9); diff != "" {
			t.Errorf("%v differs: %s", m, diff)
		}
	}
}

func TestOrderByLimitOnCompound(t *testing.T) {
	db := setupDB(t)
	res, err := db.Exec(`SELECT title, year FROM movies WHERE year >= 2005
	                     UNION SELECT title, year FROM movies WHERE duration <= 120
	                     ORDER BY year DESC LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 2 || res.Rel.Rows[0].Tuple[1].AsInt() != 2008 {
		t.Errorf("compound order/limit = %v", res.Rel.Rows)
	}
}

func TestOrderByLimitErrors(t *testing.T) {
	db := setupDB(t)
	for _, q := range []string{
		"SELECT title FROM movies ORDER BY ghost",
		"SELECT title FROM movies ORDER BY",
		"SELECT title FROM movies LIMIT",
		"SELECT title FROM movies LIMIT -1",
		"SELECT title FROM movies LIMIT 2 OFFSET",
	} {
		if _, err := db.Exec(q); err == nil {
			t.Errorf("%q should fail", q)
		}
	}
	// LIMIT 0 is valid and empty.
	res, err := db.Exec("SELECT title FROM movies LIMIT 0")
	if err != nil || res.Rel.Len() != 0 {
		t.Errorf("LIMIT 0 = %v, %v", res, err)
	}
}
