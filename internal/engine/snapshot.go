package engine

import (
	"io"

	"prefdb/internal/catalog"
	"prefdb/internal/optimizer"
	"prefdb/internal/planner"
	"prefdb/internal/snapshot"
)

// Save serializes the database (schemas, keys, index definitions, rows) to
// w; restore it with Load.
func (db *DB) Save(w io.Writer) error {
	return snapshot.Save(db.cat, w)
}

// Load restores a database previously written by Save, rebuilding all
// indexes and statistics lazily.
func Load(r io.Reader) (*DB, error) {
	cat, err := snapshot.Load(r)
	if err != nil {
		return nil, err
	}
	return openWith(cat), nil
}

func openWith(cat *catalog.Catalog) *DB {
	return &DB{
		cat:      cat,
		pl:       planner.New(cat),
		opt:      optimizer.New(cat),
		Mode:     ModeGBU,
		Optimize: true,
	}
}
