package engine

import (
	"io"

	"prefdb/internal/catalog"
	"prefdb/internal/optimizer"
	"prefdb/internal/planner"
	"prefdb/internal/snapshot"
)

// Save serializes the database (schemas, keys, index definitions, rows) to
// w; restore it with Load.
func (db *DB) Save(w io.Writer) error {
	return snapshot.Save(db.cat, w)
}

// Load restores a database previously written by Save, rebuilding all
// indexes and statistics lazily. Options apply as in Open.
func Load(r io.Reader, opts ...OpenOption) (*DB, error) {
	cat, err := snapshot.Load(r)
	if err != nil {
		return nil, err
	}
	return openWith(cat, opts...), nil
}

func openWith(cat *catalog.Catalog, opts ...OpenOption) *DB {
	db := &DB{
		cat:      cat,
		pl:       planner.New(cat),
		opt:      optimizer.New(cat),
		Mode:     ModeGBU,
		Optimize: true,
		dicts:    newDictCache(),
	}
	for _, o := range opts {
		o(db)
	}
	// Engine-owned catalogs compact sealed pages into columnar segments in
	// the background, so a colstore-enabled scan rarely pays the build.
	cat.SetAutoCompact(true)
	return db
}
