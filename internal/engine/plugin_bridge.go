package engine

import (
	"prefdb/internal/algebra"
	"prefdb/internal/exec"
	"prefdb/internal/plugin"
	"prefdb/internal/prel"
)

// runPlugin dispatches to the plug-in baseline implementation.
func runPlugin(ex *exec.Executor, merged bool, plan algebra.Node) (*prel.PRelation, error) {
	r := &plugin.Runner{Exec: ex, Merged: merged}
	return r.Run(plan)
}
