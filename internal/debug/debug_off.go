//go:build !prefdbdebug

package debug

import "prefdb/internal/types"

// Enabled reports whether assertions are compiled in. In normal builds it
// is a false constant, so `if debug.Enabled { … }` blocks are dead code
// and every function below inlines to nothing.
const Enabled = false

// Assertf is a no-op in normal builds.
func Assertf(bool, string, ...any) {}

// SelValid is a no-op in normal builds.
func SelValid([]int32, int) {}

// SameLen is a no-op in normal builds.
func SameLen(string, int, int) {}

// ZoneContains is a no-op in normal builds.
func ZoneContains(types.Value, types.Value, types.Value) {}
