package debug

import "testing"

// expectPanic runs fn and reports whether it panicked.
func panics(fn func()) (panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	fn()
	return false
}

// TestAssertions pins both build flavors with one file: under prefdbdebug
// violations panic, in normal builds every call is a no-op. Enabled tells
// the test which contract to hold the package to.
func TestAssertions(t *testing.T) {
	cases := []struct {
		name    string
		violate func()
		hold    func()
	}{
		{
			name:    "Assertf",
			violate: func() { Assertf(false, "boom %d", 1) },
			hold:    func() { Assertf(true, "fine") },
		},
		{
			name:    "SelValid/unsorted",
			violate: func() { SelValid([]int32{2, 1}, 4) },
			hold:    func() { SelValid([]int32{0, 1, 3}, 4) },
		},
		{
			name:    "SelValid/duplicate",
			violate: func() { SelValid([]int32{1, 1}, 4) },
			hold:    func() { SelValid(nil, 0) },
		},
		{
			name:    "SelValid/out-of-bounds",
			violate: func() { SelValid([]int32{0, 4}, 4) },
			hold:    func() { SelValid([]int32{3}, 4) },
		},
		{
			name:    "SameLen",
			violate: func() { SameLen("cols", 2, 3) },
			hold:    func() { SameLen("cols", 3, 3) },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if panics(tc.hold) {
				t.Error("assertion panicked on a holding invariant")
			}
			if got := panics(tc.violate); got != Enabled {
				t.Errorf("violation panicked = %v, want %v (Enabled)", got, Enabled)
			}
		})
	}
}
