//go:build prefdbdebug

// Package debug is prefdb's build-tagged runtime assertion layer: the
// invariants prefdbvet checks statically (DESIGN.md §11) have dynamic
// counterparts — selection vectors sorted, unique and in bounds; batch
// columns aligned; memo keys the width of their column set — that only
// a running query can confirm. Under the `prefdbdebug` build tag every
// assertion panics with a diagnostic on violation; in normal builds the
// package compiles to empty inlineable functions, so the hot paths pay
// nothing.
//
//	go test -tags prefdbdebug ./...
package debug

import (
	"fmt"

	"prefdb/internal/types"
)

// Enabled reports whether assertions are compiled in; guards let callers
// skip building expensive diagnostic arguments in normal builds.
const Enabled = true

// Assertf panics with the formatted message when cond is false.
func Assertf(cond bool, format string, args ...any) {
	if !cond {
		panic("prefdbdebug: " + fmt.Sprintf(format, args...))
	}
}

// SelValid panics unless sel is strictly increasing with every index in
// [0, n) — the selection-vector layout invariant of prel.Batch.
func SelValid(sel []int32, n int) {
	prev := int32(-1)
	for i, j := range sel {
		if j <= prev {
			panic(fmt.Sprintf("prefdbdebug: selection vector not strictly increasing at %d: %d after %d", i, j, prev))
		}
		if int(j) >= n {
			panic(fmt.Sprintf("prefdbdebug: selection index %d out of bounds (batch holds %d rows)", j, n))
		}
		prev = j
	}
}

// SameLen panics unless a == b, naming the columns that diverged.
func SameLen(what string, a, b int) {
	if a != b {
		panic(fmt.Sprintf("prefdbdebug: %s length mismatch: %d vs %d", what, a, b))
	}
}

// ZoneContains panics unless min ≤ v ≤ max under types.Compare — the
// zone-map soundness invariant of the columnar segment store: every live
// non-null value a scan surfaces must lie within its segment's published
// bounds, or pruning could drop rows a filter would keep.
func ZoneContains(min, max, v types.Value) {
	if c, ok := types.Compare(v, min); !ok || c < 0 {
		panic(fmt.Sprintf("prefdbdebug: zone-map violation: value %v below segment min %v", v, min))
	}
	if c, ok := types.Compare(v, max); !ok || c > 0 {
		panic(fmt.Sprintf("prefdbdebug: zone-map violation: value %v above segment max %v", v, max))
	}
}
