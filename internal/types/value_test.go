package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "NULL",
		KindInt:    "INT",
		KindFloat:  "FLOAT",
		KindString: "TEXT",
		KindBool:   "BOOL",
		Kind(99):   "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null() should be null")
	}
	if got := Int(42).AsInt(); got != 42 {
		t.Errorf("Int(42).AsInt() = %d", got)
	}
	if got := Float(2.5).AsFloat(); got != 2.5 {
		t.Errorf("Float(2.5).AsFloat() = %v", got)
	}
	if got := Int(7).AsFloat(); got != 7.0 {
		t.Errorf("Int(7).AsFloat() = %v", got)
	}
	if got := Str("hi").AsString(); got != "hi" {
		t.Errorf("Str(hi).AsString() = %q", got)
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("Bool round-trip failed")
	}
	var zero Value
	if !zero.IsNull() {
		t.Error("zero Value must be NULL")
	}
}

func TestAccessorPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"AsInt on string", func() { Str("x").AsInt() }},
		{"AsFloat on string", func() { Str("x").AsFloat() }},
		{"AsString on int", func() { Int(1).AsString() }},
		{"AsBool on int", func() { Int(1).AsBool() }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			c.fn()
		})
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(-3), "-3"},
		{Float(1.5), "1.5"},
		{Str("abc"), "abc"},
		{Bool(true), "true"},
		{Bool(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
	if got := Str("abc").SQL(); got != "'abc'" {
		t.Errorf("SQL() = %q", got)
	}
	if got := Int(5).SQL(); got != "5" {
		t.Errorf("SQL() = %q", got)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b   Value
		want   int
		wantOK bool
	}{
		{Int(1), Int(2), -1, true},
		{Int(2), Int(2), 0, true},
		{Int(3), Int(2), 1, true},
		{Float(1.5), Int(2), -1, true},
		{Int(2), Float(2.0), 0, true},
		{Str("a"), Str("b"), -1, true},
		{Str("b"), Str("b"), 0, true},
		{Bool(false), Bool(true), -1, true},
		{Null(), Null(), 0, true},
		{Null(), Int(0), -1, false},
		{Int(0), Null(), 1, false},
		{Str("1"), Int(1), 0, false}, // incomparable kinds
	}
	for _, c := range cases {
		got, ok := Compare(c.a, c.b)
		if ok != c.wantOK || (c.wantOK && got != c.want) {
			t.Errorf("Compare(%v,%v) = (%d,%v), want (%d,%v)", c.a, c.b, got, ok, c.want, c.wantOK)
		}
	}
}

func TestEqualMixedNumeric(t *testing.T) {
	if !Int(3).Equal(Float(3.0)) {
		t.Error("Int(3) should equal Float(3.0)")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Error("Int(3) should not equal Float(3.5)")
	}
	if Str("3").Equal(Int(3)) {
		t.Error("Str(3) should not equal Int(3)")
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	pairs := [][2]Value{
		{Int(3), Float(3.0)},
		{Str("x"), Str("x")},
		{Bool(true), Bool(true)},
		{Null(), Null()},
	}
	for _, p := range pairs {
		if p[0].Equal(p[1]) && p[0].Hash() != p[1].Hash() {
			t.Errorf("equal values %v and %v hash differently", p[0], p[1])
		}
	}
}

func TestHashDistinguishes(t *testing.T) {
	// Not required, but a sanity check for basic dispersion.
	vals := []Value{Int(0), Int(1), Str(""), Str("0"), Bool(false), Null(), Float(0.5)}
	seen := map[uint64]Value{}
	for _, v := range vals {
		h := v.Hash()
		if prev, ok := seen[h]; ok && !prev.Equal(v) {
			t.Errorf("hash collision between %v and %v", prev, v)
		}
		seen[h] = v
	}
}

func TestHashProperty(t *testing.T) {
	// Property: for random int64 i, Int(i) and Float(float64(i)) hash equal
	// when they compare equal.
	f := func(i int32) bool {
		a, b := Int(int64(i)), Float(float64(i))
		return a.Equal(b) && a.Hash() == b.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		c1, _ := Compare(Int(a), Int(b))
		c2, _ := Compare(Int(b), Int(a))
		return c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleHelpers(t *testing.T) {
	a := []Value{Int(1), Str("x")}
	b := []Value{Int(1), Str("x")}
	c := []Value{Int(1), Str("y")}
	if !TupleEqual(a, b) {
		t.Error("equal tuples reported unequal")
	}
	if TupleEqual(a, c) {
		t.Error("unequal tuples reported equal")
	}
	if TupleEqual(a, a[:1]) {
		t.Error("different-length tuples reported equal")
	}
	if HashTuple(a) != HashTuple(b) {
		t.Error("equal tuples hash differently")
	}
	if got := CompareTuples(a, c); got != -1 {
		t.Errorf("CompareTuples = %d, want -1", got)
	}
	if got := CompareTuples(a, a[:1]); got != 1 {
		t.Errorf("CompareTuples length = %d, want 1", got)
	}
	if got := CompareTuples(a, b); got != 0 {
		t.Errorf("CompareTuples equal = %d, want 0", got)
	}
}

func TestSCBasics(t *testing.T) {
	var zero SC
	if !zero.IsBottom() {
		t.Error("zero SC must be bottom")
	}
	if Bottom().String() != "⟨⊥,0⟩" {
		t.Errorf("Bottom().String() = %q", Bottom().String())
	}
	p := NewSC(0.8, 1.0)
	if p.IsBottom() {
		t.Error("NewSC should be known")
	}
	if p.String() != "⟨0.800,1.000⟩" {
		t.Errorf("String() = %q", p.String())
	}
}

func TestSCApproxEqual(t *testing.T) {
	a := NewSC(0.5, 0.5)
	b := NewSC(0.5+1e-12, 0.5-1e-12)
	if !a.ApproxEqual(b, 1e-9) {
		t.Error("nearly equal pairs should be approx-equal")
	}
	if a.ApproxEqual(NewSC(0.6, 0.5), 1e-9) {
		t.Error("distinct scores should not be approx-equal")
	}
	if a.ApproxEqual(Bottom(), 1e-9) {
		t.Error("known should not equal bottom")
	}
	if !Bottom().ApproxEqual(Bottom(), 0) {
		t.Error("bottom should equal bottom")
	}
}

func TestSCDominates(t *testing.T) {
	cases := []struct {
		a, b SC
		want bool
	}{
		{NewSC(0.9, 0.9), NewSC(0.5, 0.5), true},
		{NewSC(0.9, 0.5), NewSC(0.5, 0.9), false},
		{NewSC(0.5, 0.5), NewSC(0.5, 0.5), false}, // equal: no strict gain
		{NewSC(0.5, 0.6), NewSC(0.5, 0.5), true},
		{NewSC(0.1, 0.1), Bottom(), true},
		{Bottom(), NewSC(0.0, 0.0), false},
		{Bottom(), Bottom(), false},
	}
	for i, c := range cases {
		if got := c.a.Dominates(c.b); got != c.want {
			t.Errorf("case %d: %v.Dominates(%v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestSCDominationIsStrictPartialOrderProperty(t *testing.T) {
	// Irreflexive and asymmetric.
	f := func(s1, c1, s2, c2 uint8) bool {
		a := NewSC(float64(s1)/255, float64(c1)/255)
		b := NewSC(float64(s2)/255, float64(c2)/255)
		if a.Dominates(a) {
			return false
		}
		if a.Dominates(b) && b.Dominates(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashNaNAndInf(t *testing.T) {
	// Must not panic; NaN/Inf values are hashable.
	_ = Float(math.NaN()).Hash()
	_ = Float(math.Inf(1)).Hash()
	_ = Float(math.Inf(-1)).Hash()
}
