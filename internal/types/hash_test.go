package types

import (
	"hash/fnv"
	"math"
	"testing"
)

// refHash is the pre-inlining implementation of Value.Hash built on
// hash/fnv; the inlined loop must stay byte-identical to it so digests
// (and therefore hash-join buckets and cache keys) are stable.
func refHash(v Value) uint64 {
	h := fnv.New64a()
	var buf [9]byte
	switch v.Kind() {
	case KindNull:
		buf[0] = 0
		h.Write(buf[:1])
	case KindInt, KindFloat:
		buf[0] = 1
		f := v.AsFloat()
		var bits uint64
		if f == math.Trunc(f) && !math.IsInf(f, 0) && math.Abs(f) < 1e18 {
			bits = uint64(int64(f))
		} else {
			bits = math.Float64bits(f)
		}
		for i := 0; i < 8; i++ {
			buf[1+i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:9])
	case KindString:
		buf[0] = 2
		h.Write(buf[:1])
		h.Write([]byte(v.AsString()))
	case KindBool:
		buf[0] = 3
		if v.AsBool() {
			buf[1] = 1
		}
		h.Write(buf[:2])
	}
	return h.Sum64()
}

func TestHashMatchesFNVReference(t *testing.T) {
	cases := []Value{
		Null(),
		Int(0), Int(1), Int(-1), Int(42), Int(math.MaxInt64), Int(math.MinInt64),
		Float(0), Float(1), Float(-1.5), Float(3.14159), Float(1e30),
		Float(math.NaN()), Float(math.Inf(1)), Float(math.Inf(-1)),
		Str(""), Str("a"), Str("hello world"), Str("ünïcödé"),
		Bool(true), Bool(false),
	}
	for _, v := range cases {
		if got, want := v.Hash(), refHash(v); got != want {
			t.Errorf("Hash(%v) = %#x, want %#x (fnv reference)", v, got, want)
		}
	}
}

func TestHashZeroAlloc(t *testing.T) {
	vals := []Value{Int(7), Float(2.5), Str("some string key"), Bool(true), Null()}
	tuple := vals
	allocs := testing.AllocsPerRun(100, func() {
		for _, v := range vals {
			_ = v.Hash()
		}
		_ = HashTuple(tuple)
	})
	if allocs != 0 {
		t.Errorf("Hash/HashTuple allocated %.1f times per run, want 0", allocs)
	}
}

func BenchmarkValueHash(b *testing.B) {
	bench := func(name string, v Value) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = v.Hash()
			}
		})
	}
	bench("int", Int(123456))
	bench("float", Float(3.14159))
	bench("string", Str("a medium length string key"))
	bench("bool", Bool(true))
}

func BenchmarkHashTuple(b *testing.B) {
	tuple := []Value{Int(42), Str("drama"), Float(7.5), Bool(true)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = HashTuple(tuple)
	}
}
