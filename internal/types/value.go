// Package types defines the scalar value system used throughout prefdb:
// dynamically typed relational values, their ordering and hashing, and the
// score-confidence pair ⟨S, C⟩ that extends tuples into p-relation rows.
package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

const (
	// KindNull is the SQL NULL / absent value.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE float.
	KindFloat
	// KindString is a UTF-8 string.
	KindString
	// KindBool is a boolean.
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "TEXT"
	case KindBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed relational scalar. The zero Value is NULL.
//
// Value is a small value type (no pointers except the string header) so
// tuples can be stored as []Value without per-cell allocation.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a float value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Str returns a string value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Kind reports the runtime kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload. It panics unless Kind is KindInt.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("types: AsInt on %s value", v.kind))
	}
	return v.i
}

// AsFloat returns the float payload, converting integers. It panics for
// non-numeric kinds.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	default:
		panic(fmt.Sprintf("types: AsFloat on %s value", v.kind))
	}
}

// AsString returns the string payload. It panics unless Kind is KindString.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("types: AsString on %s value", v.kind))
	}
	return v.s
}

// AsBool returns the boolean payload. It panics unless Kind is KindBool.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("types: AsBool on %s value", v.kind))
	}
	return v.i != 0
}

// IsNumeric reports whether v is an INT or FLOAT.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// SQL renders the value as a SQL literal (strings quoted, embedded quotes
// escaped by doubling, so the output re-parses to the same value).
func (v Value) SQL() string {
	if v.kind == KindString {
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	}
	return v.String()
}

// Equal reports whether two values are equal. NULL equals only NULL here
// (useful for set semantics); expression evaluation applies SQL three-valued
// logic separately.
func (v Value) Equal(o Value) bool {
	c, ok := Compare(v, o)
	return ok && c == 0
}

// Compare orders two values: -1, 0, +1. The boolean result is false when the
// values are incomparable (e.g. string vs int, or either side NULL while the
// other is not). NULLs order equal to each other and before everything else.
func Compare(a, b Value) (int, bool) {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == KindNull && b.kind == KindNull:
			return 0, true
		case a.kind == KindNull:
			return -1, false
		default:
			return 1, false
		}
	}
	if a.IsNumeric() && b.IsNumeric() {
		if a.kind == KindInt && b.kind == KindInt {
			return cmpInt(a.i, b.i), true
		}
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	}
	if a.kind != b.kind {
		// Incomparable kinds: order deterministically by kind for sorting
		// stability, but flag as incomparable.
		return cmpInt(int64(a.kind), int64(b.kind)), false
	}
	switch a.kind {
	case KindString:
		switch {
		case a.s < b.s:
			return -1, true
		case a.s > b.s:
			return 1, true
		default:
			return 0, true
		}
	case KindBool:
		return cmpInt(a.i, b.i), true
	default:
		return 0, false
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// FNV-1a constants (matching hash/fnv's 64-bit variant).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// Hash returns a 64-bit hash of the value, such that Equal values hash
// identically (ints and floats representing the same number collide, since
// they compare equal).
//
// The digest is the FNV-1a hash of a tag byte followed by the payload
// (little-endian for numerics), inlined so the hot paths — hash joins,
// dedup, the preference score cache — never allocate a hasher.
func (v Value) Hash() uint64 {
	h := fnvOffset64
	switch v.kind {
	case KindNull:
		h = (h ^ 0) * fnvPrime64
	case KindInt, KindFloat:
		// Normalize numerics: integral floats hash as ints.
		f := v.AsFloat()
		var bits uint64
		if f == math.Trunc(f) && !math.IsInf(f, 0) && math.Abs(f) < 1e18 {
			bits = uint64(int64(f))
		} else {
			bits = math.Float64bits(f)
		}
		h = (h ^ 1) * fnvPrime64
		for i := 0; i < 64; i += 8 {
			h = (h ^ (bits >> i & 0xff)) * fnvPrime64
		}
	case KindString:
		h = (h ^ 2) * fnvPrime64
		for i := 0; i < len(v.s); i++ {
			h = (h ^ uint64(v.s[i])) * fnvPrime64
		}
	case KindBool:
		h = (h ^ 3) * fnvPrime64
		h = (h ^ uint64(byte(v.i))) * fnvPrime64
	}
	return h
}

// HashTuple hashes a sequence of values (order-sensitive).
func HashTuple(vs []Value) uint64 {
	h := uint64(1469598103934665603) // seed (kept from the original implementation)
	for _, v := range vs {
		h ^= v.Hash()
		h *= fnvPrime64
	}
	return h
}

// TupleEqual reports element-wise equality of two tuples.
func TupleEqual(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// CompareTuples orders tuples lexicographically.
func CompareTuples(a, b []Value) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c, _ := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return cmpInt(int64(len(a)), int64(len(b)))
}
