package types

// ColVec is one attribute of a columnar batch: borrowed windows of the
// typed vectors a colstore segment holds (exactly one of Ints / Floats /
// Codes / Bools set for a typed column, all nil for a Raw-encoded one).
// Indices are batch-local: the ColVec slices, the batch's decoded row
// views and its selection vector all address the same 0..Cap window.
//
// Borrowed-vector contract (prefdb:col-view): every slice aliases
// segment storage shared by concurrent readers. Kernels may only read;
// writing through a ColVec corrupts the store for every other query.
// The scratchalias analyzer enforces this statically, and prefdbdebug
// builds fingerprint the vectors when a batch borrows them and re-check
// on reuse.
// Run-length form: an RLE-encoded int or code column hands out its runs
// instead of a dense vector (Ints/Codes stay nil). RunVals or RunCodes
// holds one value per run and RunEnds the run's exclusive end slot in
// *segment* coordinates; batch-local slot i corresponds to segment slot
// RunBase+i. Run-aware kernels evaluate once per run; kernels without a
// run arm treat the column as untyped and fall back to the row views.
type ColVec struct {
	Ints   []int64 // prefdb:col-view
	Floats []float64
	Codes  []int32  // dictionary codes (string columns)
	Dict   []string // segment dictionary the Codes index into
	Bools  []bool
	Nulls  []bool // nil when the window has no NULLs

	RunVals  []int64 // RLE int runs (one value per run)
	RunCodes []int32 // RLE code runs (with Dict set)
	RunEnds  []int32 // exclusive end slot of each run, segment-relative
	RunBase  int32   // segment slot of batch-local slot 0
}

// HasRuns reports whether the window is in run-length form.
func (cv *ColVec) HasRuns() bool { return cv.RunEnds != nil }

// RunAt returns the index (into RunVals/RunCodes/RunEnds) of the run
// covering batch-local slot i, starting the scan at hint (callers iterate
// ascending slots and pass the previous result, so the walk is amortized
// O(runs) per batch).
func (cv *ColVec) RunAt(i int32, hint int) int {
	abs := cv.RunBase + i
	k := hint
	for cv.RunEnds[k] <= abs {
		k++
	}
	return k
}
