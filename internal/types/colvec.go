package types

// ColVec is one attribute of a columnar batch: borrowed windows of the
// typed vectors a colstore segment holds (exactly one of Ints / Floats /
// Codes / Bools set for a typed column, all nil for a Raw-encoded one).
// Indices are batch-local: the ColVec slices, the batch's decoded row
// views and its selection vector all address the same 0..Cap window.
//
// Borrowed-vector contract (prefdb:col-view): every slice aliases
// segment storage shared by concurrent readers. Kernels may only read;
// writing through a ColVec corrupts the store for every other query.
// The scratchalias analyzer enforces this statically, and prefdbdebug
// builds fingerprint the vectors when a batch borrows them and re-check
// on reuse.
type ColVec struct {
	Ints   []int64 // prefdb:col-view
	Floats []float64
	Codes  []int32  // dictionary codes (string columns)
	Dict   []string // segment dictionary the Codes index into
	Bools  []bool
	Nulls  []bool // nil when the window has no NULLs
}
