package types

import (
	"fmt"
	"math"
)

// SC is a score-confidence pair ⟨S, C⟩ attached to a p-relation tuple
// (Definition 2 of the paper). The default pair is ⟨⊥, 0⟩: the score ⊥
// denotes lack of knowledge about how interesting a tuple is and is the
// identity element for aggregate functions.
//
// The zero SC is ⟨⊥, 0⟩, so p-relation rows need no initialization.
type SC struct {
	// Score in [0,1] per single preference; combined scores may exceed 1
	// depending on the aggregate function. Meaningless when Known is false.
	Score float64
	// Conf is the accumulated confidence (≥ 0).
	Conf float64
	// Known distinguishes a real score from ⊥.
	Known bool
}

// Bottom returns the identity pair ⟨⊥, 0⟩.
func Bottom() SC { return SC{} }

// NewSC returns a known score-confidence pair.
func NewSC(score, conf float64) SC { return SC{Score: score, Conf: conf, Known: true} }

// IsBottom reports whether the pair is the identity ⟨⊥, 0⟩.
func (p SC) IsBottom() bool { return !p.Known }

// String renders the pair; ⊥ for unknown scores.
func (p SC) String() string {
	if !p.Known {
		return "⟨⊥,0⟩"
	}
	return fmt.Sprintf("⟨%.3f,%.3f⟩", p.Score, p.Conf)
}

// ApproxEqual compares two pairs with tolerance eps, treating ⊥ as equal
// only to ⊥. Aggregate functions on floats are associative only up to
// rounding, so all cross-strategy result comparisons use this.
func (p SC) ApproxEqual(o SC, eps float64) bool {
	if p.Known != o.Known {
		return false
	}
	if !p.Known {
		return true
	}
	return math.Abs(p.Score-o.Score) <= eps && math.Abs(p.Conf-o.Conf) <= eps
}

// Dominates reports whether p dominates o in the (score, conf) plane:
// p is at least as good in both dimensions and strictly better in one.
// ⊥ is dominated by every known pair and does not dominate anything.
func (p SC) Dominates(o SC) bool {
	if !p.Known {
		return false
	}
	if !o.Known {
		return true
	}
	geq := p.Score >= o.Score && p.Conf >= o.Conf
	gt := p.Score > o.Score || p.Conf > o.Conf
	return geq && gt
}
