// Package datagen generates the synthetic IMDB- and DBLP-shaped datasets
// used to reproduce the paper's experiments. The real datasets (an IMDB
// snapshot from March 2010 and a DBLP XML dump from June 2011) are not
// redistributable; the generators reproduce the paper's schemas (Fig. 1 and
// Fig. 8), the relative table sizes of Table I, and skewed value
// distributions (Zipfian genres, ratings, author productivity) so that
// selectivity-driven effects behave like the originals. Generation is
// deterministic given a seed.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"prefdb/internal/catalog"
	"prefdb/internal/schema"
	"prefdb/internal/types"
)

// Config parameterizes dataset generation.
type Config struct {
	// Scale multiplies every table's reference cardinality; 1.0 yields a
	// laptop-sized database with the paper's Table I ratios.
	Scale float64
	// Seed drives the deterministic generator.
	Seed int64
}

// DefaultConfig is scale 1.0 with a fixed seed.
func DefaultConfig() Config { return Config{Scale: 1.0, Seed: 42} }

// Sizes reports the generated cardinality per table.
type Sizes map[string]int

// String renders the sizes sorted by table name (Table I style).
func (s Sizes) String() string {
	names := make([]string, 0, len(s))
	for n := range s {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for _, n := range names {
		out += fmt.Sprintf("%-12s %d\n", n, s[n])
	}
	return out
}

// Reference cardinalities at scale 1.0. The ratios between tables follow
// the paper's Table I (e.g. CAST ≈ 8.4× MOVIES, PUB_AUTHORS ≈ 2× PUBLICATIONS).
const (
	imdbMovies    = 20000
	imdbDirectors = 2400  // ≈ 0.12 × movies
	imdbGenres    = 12700 // ≈ 0.63 × movies (movies with ≥1 genre row)
	imdbActors    = 12000
	imdbCast      = 167000 // ≈ 8.35 × movies
	imdbRatings   = 4000   // ≈ 0.20 × movies
	imdbAwards    = 800

	dblpPubs        = 20000
	dblpAuthors     = 7350  // ≈ 0.37 × publications
	dblpPubAuthors  = 40600 // ≈ 2.03 × publications
	dblpConferences = 7200  // ≈ 0.36 × publications
	dblpJournals    = 5200  // ≈ 0.26 × publications
	dblpCitations   = 60000
)

var genreNames = []string{
	"Drama", "Comedy", "Documentary", "Action", "Thriller", "Romance",
	"Horror", "Crime", "Adventure", "Sci-Fi", "Animation", "Family",
	"Mystery", "Fantasy", "Biography", "War", "History", "Music",
	"Western", "Sport", "Musical", "Film-Noir",
}

var awardNames = []string{"Oscar", "Golden Globe", "BAFTA", "Palme d'Or", "Golden Lion"}

var confVenues = []string{"ICDE", "SIGMOD", "VLDB", "EDBT", "CIKM", "KDD", "WWW", "ICDM", "SODA", "PODS"}
var journalVenues = []string{"TODS", "VLDBJ", "TKDE", "Inf. Syst.", "DKE", "JACM", "CACM", "TOIS"}
var locations = []string{"Washington", "Istanbul", "Athens", "San Jose", "Seoul", "Shanghai", "Paris", "Tokyo"}

func scaled(base int, scale float64) int {
	n := int(math.Round(float64(base) * scale))
	if n < 1 {
		n = 1
	}
	return n
}

// LoadIMDB creates and populates the movie schema of Fig. 1 plus secondary
// indexes used by the optimizer's access paths.
func LoadIMDB(cat *catalog.Catalog, cfg Config) (Sizes, error) {
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("datagen: scale must be positive, got %v", cfg.Scale)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	sizes := Sizes{}

	nMovies := scaled(imdbMovies, cfg.Scale)
	nDirectors := scaled(imdbDirectors, cfg.Scale)
	nActors := scaled(imdbActors, cfg.Scale)
	nGenres := scaled(imdbGenres, cfg.Scale)
	nCast := scaled(imdbCast, cfg.Scale)
	nRatings := scaled(imdbRatings, cfg.Scale)
	nAwards := scaled(imdbAwards, cfg.Scale)

	movies, err := cat.CreateTable("movies", schema.New(
		schema.Column{Name: "m_id", Kind: types.KindInt},
		schema.Column{Name: "title", Kind: types.KindString},
		schema.Column{Name: "year", Kind: types.KindInt},
		schema.Column{Name: "duration", Kind: types.KindInt},
		schema.Column{Name: "d_id", Kind: types.KindInt},
	).WithKey("m_id"))
	if err != nil {
		return nil, err
	}
	directors, err := cat.CreateTable("directors", schema.New(
		schema.Column{Name: "d_id", Kind: types.KindInt},
		schema.Column{Name: "director", Kind: types.KindString},
	).WithKey("d_id"))
	if err != nil {
		return nil, err
	}
	genres, err := cat.CreateTable("genres", schema.New(
		schema.Column{Name: "m_id", Kind: types.KindInt},
		schema.Column{Name: "genre", Kind: types.KindString},
	).WithKey("m_id", "genre"))
	if err != nil {
		return nil, err
	}
	actors, err := cat.CreateTable("actors", schema.New(
		schema.Column{Name: "a_id", Kind: types.KindInt},
		schema.Column{Name: "actor", Kind: types.KindString},
	).WithKey("a_id"))
	if err != nil {
		return nil, err
	}
	cast, err := cat.CreateTable("cast", schema.New(
		schema.Column{Name: "m_id", Kind: types.KindInt},
		schema.Column{Name: "a_id", Kind: types.KindInt},
		schema.Column{Name: "role", Kind: types.KindString},
	).WithKey("m_id", "a_id"))
	if err != nil {
		return nil, err
	}
	ratings, err := cat.CreateTable("ratings", schema.New(
		schema.Column{Name: "m_id", Kind: types.KindInt},
		schema.Column{Name: "rating", Kind: types.KindFloat},
		schema.Column{Name: "votes", Kind: types.KindInt},
	).WithKey("m_id"))
	if err != nil {
		return nil, err
	}
	awards, err := cat.CreateTable("awards", schema.New(
		schema.Column{Name: "m_id", Kind: types.KindInt},
		schema.Column{Name: "award", Kind: types.KindString},
		schema.Column{Name: "year", Kind: types.KindInt},
	).WithKey("m_id", "award"))
	if err != nil {
		return nil, err
	}

	for d := 0; d < nDirectors; d++ {
		if err := directors.Insert(row(types.Int(int64(d)), types.Str(fmt.Sprintf("Director %05d", d)))); err != nil {
			return nil, err
		}
	}
	for a := 0; a < nActors; a++ {
		if err := actors.Insert(row(types.Int(int64(a)), types.Str(fmt.Sprintf("Actor %05d", a)))); err != nil {
			return nil, err
		}
	}

	// Movies: release years skew recent (the snapshot was taken in 2010),
	// durations center near 100 minutes.
	dirZipf := newZipf(r, nDirectors, 1.2)
	genreZipf := newZipf(r, len(genreNames), 1.3)
	actorZipf := newZipf(r, nActors, 1.1)
	votesZipf := newZipf(r, 50000, 1.05)
	for m := 0; m < nMovies; m++ {
		year := 1930 + int(81*math.Pow(r.Float64(), 0.45)) // skewed towards 2011
		if year > 2011 {
			year = 2011
		}
		duration := int(clampF(r.NormFloat64()*25+104, 45, 280))
		dID := int64(dirZipf())
		if err := movies.Insert(row(
			types.Int(int64(m)), types.Str(fmt.Sprintf("Movie %06d", m)),
			types.Int(int64(year)), types.Int(int64(duration)), types.Int(dID),
		)); err != nil {
			return nil, err
		}
	}

	// Genres: Zipf-popular genres; movies with genre rows get 1-3 of them.
	genreCount := 0
	for m := 0; genreCount < nGenres; m = (m + 1) % nMovies {
		k := 1 + r.Intn(3)
		seen := map[int]bool{}
		for i := 0; i < k && genreCount < nGenres; i++ {
			g := genreZipf()
			if seen[g] {
				continue
			}
			seen[g] = true
			if err := genres.Insert(row(types.Int(int64(m)), types.Str(genreNames[g]))); err != nil {
				return nil, err
			}
			genreCount++
		}
	}

	// Cast: actor popularity is Zipfian.
	for i := 0; i < nCast; i++ {
		m := r.Intn(nMovies)
		a := actorZipf()
		if err := cast.Insert(row(
			types.Int(int64(m)), types.Int(int64(a)),
			types.Str(fmt.Sprintf("Role %d", i%37)),
		)); err != nil {
			return nil, err
		}
	}

	// Ratings: ratings cluster between 5 and 8; votes follow a heavy tail.
	for i := 0; i < nRatings; i++ {
		m := i * nMovies / nRatings
		rating := clampF(r.NormFloat64()*1.4+6.4, 1, 10)
		votes := int64(10 + votesZipf())
		if err := ratings.Insert(row(
			types.Int(int64(m)), types.Float(round1(rating)), types.Int(votes),
		)); err != nil {
			return nil, err
		}
	}

	for i := 0; i < nAwards; i++ {
		m := r.Intn(nMovies)
		if err := awards.Insert(row(
			types.Int(int64(m)), types.Str(awardNames[i%len(awardNames)]),
			types.Int(int64(1980+r.Intn(31))),
		)); err != nil {
			return nil, err
		}
	}

	// Secondary indexes used by the optimizer's access paths.
	for _, ix := range [][2]string{
		{"movies", "d_id"}, {"genres", "m_id"}, {"genres", "genre"},
		{"cast", "m_id"}, {"cast", "a_id"}, {"ratings", "m_id"}, {"awards", "m_id"},
	} {
		if err := cat.CreateHashIndex(ix[0], ix[1]); err != nil {
			return nil, err
		}
	}
	for _, ix := range [][2]string{{"movies", "year"}, {"movies", "duration"}, {"ratings", "votes"}, {"ratings", "rating"}} {
		if err := cat.CreateBTreeIndex(ix[0], ix[1]); err != nil {
			return nil, err
		}
	}

	for _, t := range []*catalog.Table{movies, directors, genres, actors, cast, ratings, awards} {
		sizes[t.Name] = t.Len()
	}
	return sizes, nil
}

// LoadDBLP creates and populates the bibliography schema of Fig. 8.
func LoadDBLP(cat *catalog.Catalog, cfg Config) (Sizes, error) {
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("datagen: scale must be positive, got %v", cfg.Scale)
	}
	r := rand.New(rand.NewSource(cfg.Seed + 1))
	sizes := Sizes{}

	nPubs := scaled(dblpPubs, cfg.Scale)
	nAuthors := scaled(dblpAuthors, cfg.Scale)
	nPubAuthors := scaled(dblpPubAuthors, cfg.Scale)
	nConfs := scaled(dblpConferences, cfg.Scale)
	nJournals := scaled(dblpJournals, cfg.Scale)
	nCitations := scaled(dblpCitations, cfg.Scale)

	pubs, err := cat.CreateTable("publications", schema.New(
		schema.Column{Name: "p_id", Kind: types.KindInt},
		schema.Column{Name: "title", Kind: types.KindString},
		schema.Column{Name: "pub_type", Kind: types.KindString},
	).WithKey("p_id"))
	if err != nil {
		return nil, err
	}
	authors, err := cat.CreateTable("authors", schema.New(
		schema.Column{Name: "a_id", Kind: types.KindInt},
		schema.Column{Name: "name", Kind: types.KindString},
	).WithKey("a_id"))
	if err != nil {
		return nil, err
	}
	pubAuthors, err := cat.CreateTable("pub_authors", schema.New(
		schema.Column{Name: "p_id", Kind: types.KindInt},
		schema.Column{Name: "a_id", Kind: types.KindInt},
	).WithKey("p_id", "a_id"))
	if err != nil {
		return nil, err
	}
	confs, err := cat.CreateTable("conferences", schema.New(
		schema.Column{Name: "p_id", Kind: types.KindInt},
		schema.Column{Name: "name", Kind: types.KindString},
		schema.Column{Name: "year", Kind: types.KindInt},
		schema.Column{Name: "location", Kind: types.KindString},
	).WithKey("p_id"))
	if err != nil {
		return nil, err
	}
	journals, err := cat.CreateTable("journals", schema.New(
		schema.Column{Name: "p_id", Kind: types.KindInt},
		schema.Column{Name: "name", Kind: types.KindString},
		schema.Column{Name: "year", Kind: types.KindInt},
		schema.Column{Name: "volume", Kind: types.KindInt},
	).WithKey("p_id"))
	if err != nil {
		return nil, err
	}
	citations, err := cat.CreateTable("citations", schema.New(
		schema.Column{Name: "p1_id", Kind: types.KindInt},
		schema.Column{Name: "p2_id", Kind: types.KindInt},
	).WithKey("p1_id", "p2_id"))
	if err != nil {
		return nil, err
	}

	for a := 0; a < nAuthors; a++ {
		if err := authors.Insert(row(types.Int(int64(a)), types.Str(fmt.Sprintf("Author %05d", a)))); err != nil {
			return nil, err
		}
	}
	// The first nConfs publications are conference papers, the next
	// nJournals journal articles, the rest informal (tech reports etc.).
	for p := 0; p < nPubs; p++ {
		pubType := "informal"
		switch {
		case p < nConfs:
			pubType = "inproceedings"
		case p < nConfs+nJournals:
			pubType = "article"
		}
		if err := pubs.Insert(row(
			types.Int(int64(p)), types.Str(fmt.Sprintf("Paper %06d", p)), types.Str(pubType),
		)); err != nil {
			return nil, err
		}
	}
	confZipf := newZipf(r, len(confVenues), 1.2)
	journalZipf := newZipf(r, len(journalVenues), 1.2)
	authorZipf := newZipf(r, nAuthors, 1.15)
	citeZipf := newZipf(r, nPubs, 1.1)
	for p := 0; p < nConfs; p++ {
		year := 1970 + int(42*math.Pow(r.Float64(), 0.5))
		if year > 2011 {
			year = 2011
		}
		if err := confs.Insert(row(
			types.Int(int64(p)), types.Str(confVenues[confZipf()]),
			types.Int(int64(year)), types.Str(locations[r.Intn(len(locations))]),
		)); err != nil {
			return nil, err
		}
	}
	for i := 0; i < nJournals; i++ {
		p := nConfs + i
		year := 1970 + int(42*math.Pow(r.Float64(), 0.5))
		if year > 2011 {
			year = 2011
		}
		if err := journals.Insert(row(
			types.Int(int64(p)), types.Str(journalVenues[journalZipf()]),
			types.Int(int64(year)), types.Int(int64(1+r.Intn(40))),
		)); err != nil {
			return nil, err
		}
	}
	// Authorship: productivity is Zipfian; each paper gets >= 1 author.
	inserted := 0
	for p := 0; p < nPubs && inserted < nPubAuthors; p++ {
		k := 1 + r.Intn(4)
		seen := map[int]bool{}
		for i := 0; i < k && inserted < nPubAuthors; i++ {
			a := authorZipf()
			if seen[a] {
				continue
			}
			seen[a] = true
			if err := pubAuthors.Insert(row(types.Int(int64(p)), types.Int(int64(a)))); err != nil {
				return nil, err
			}
			inserted++
		}
	}
	for inserted < nPubAuthors {
		p := r.Intn(nPubs)
		a := r.Intn(nAuthors)
		if err := pubAuthors.Insert(row(types.Int(int64(p)), types.Int(int64(a)))); err != nil {
			return nil, err
		}
		inserted++
	}
	// Citations: popular papers attract most citations.
	seenCite := map[[2]int]bool{}
	for i := 0; i < nCitations; i++ {
		from := r.Intn(nPubs)
		to := citeZipf()
		if from == to || seenCite[[2]int{from, to}] {
			continue
		}
		seenCite[[2]int{from, to}] = true
		if err := citations.Insert(row(types.Int(int64(from)), types.Int(int64(to)))); err != nil {
			return nil, err
		}
	}

	for _, ix := range [][2]string{
		{"pub_authors", "p_id"}, {"pub_authors", "a_id"}, {"conferences", "p_id"},
		{"journals", "p_id"}, {"citations", "p1_id"}, {"citations", "p2_id"},
		{"conferences", "name"}, {"journals", "name"}, {"publications", "pub_type"},
	} {
		if err := cat.CreateHashIndex(ix[0], ix[1]); err != nil {
			return nil, err
		}
	}
	for _, ix := range [][2]string{{"conferences", "year"}, {"journals", "year"}} {
		if err := cat.CreateBTreeIndex(ix[0], ix[1]); err != nil {
			return nil, err
		}
	}

	for _, t := range []*catalog.Table{pubs, authors, pubAuthors, confs, journals, citations} {
		sizes[t.Name] = t.Len()
	}
	return sizes, nil
}

func row(vs ...types.Value) []types.Value { return vs }

// newZipf returns a sampler of indexes in [0, n) with Zipf-distributed
// popularity.
func newZipf(r *rand.Rand, n int, s float64) func() int {
	if n <= 1 {
		return func() int { return 0 }
	}
	z := rand.NewZipf(r, s, 1, uint64(n-1))
	return func() int { return int(z.Uint64()) }
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func round1(v float64) float64 { return math.Round(v*10) / 10 }
