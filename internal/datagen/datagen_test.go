package datagen

import (
	"strings"
	"testing"

	"prefdb/internal/catalog"
	"prefdb/internal/storage"
	"prefdb/internal/types"
)

func TestLoadIMDBSizesAndRatios(t *testing.T) {
	cat := catalog.New()
	sizes, err := LoadIMDB(cat, Config{Scale: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, tbl := range []string{"movies", "directors", "genres", "actors", "cast", "ratings", "awards"} {
		if sizes[tbl] == 0 {
			t.Errorf("table %s empty", tbl)
		}
	}
	// Table I ratios hold approximately: CAST >> MOVIES > GENRES > RATINGS.
	if !(sizes["cast"] > 5*sizes["movies"]) {
		t.Errorf("cast/movies ratio off: %d vs %d", sizes["cast"], sizes["movies"])
	}
	if !(sizes["movies"] > sizes["genres"] && sizes["genres"] > sizes["ratings"]) {
		t.Errorf("ordering off: %v", sizes)
	}
	if !(sizes["directors"] < sizes["movies"]/4) {
		t.Errorf("directors too many: %v", sizes)
	}
}

func TestLoadIMDBDeterministic(t *testing.T) {
	load := func() string {
		cat := catalog.New()
		if _, err := LoadIMDB(cat, Config{Scale: 0.02, Seed: 99}); err != nil {
			t.Fatal(err)
		}
		tbl, _ := cat.Table("movies")
		var sb strings.Builder
		tbl.Heap.Scan(func(_ storage.RowID, tuple []types.Value) bool {
			for _, v := range tuple {
				sb.WriteString(v.String())
				sb.WriteByte('|')
			}
			return true
		})
		return sb.String()
	}
	if load() != load() {
		t.Error("generation is not deterministic for a fixed seed")
	}
}

func TestLoadIMDBDistributions(t *testing.T) {
	cat := catalog.New()
	if _, err := LoadIMDB(cat, Config{Scale: 0.1, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	movies, _ := cat.Table("movies")
	st := movies.Stats()
	yearIdx := movies.Schema().MustIndexOf("year")
	ys := st.Columns[yearIdx]
	if ys.Min < 1930 || ys.Max > 2011 {
		t.Errorf("year range = [%v, %v]", ys.Min, ys.Max)
	}
	// Genre popularity is skewed: Drama should dominate.
	genres, _ := cat.Table("genres")
	gst := genres.Stats()
	gIdx := genres.Schema().MustIndexOf("genre")
	drama, _ := gst.Columns[gIdx].MCVFreq(types.Str("Drama"))
	if drama == 0 || float64(drama) < 0.25*float64(gst.Rows) {
		t.Errorf("Drama frequency = %d of %d, want skewed head", drama, gst.Rows)
	}
	// Ratings within [1,10].
	ratings, _ := cat.Table("ratings")
	rs := ratings.Stats().Columns[ratings.Schema().MustIndexOf("rating")]
	if rs.Min < 1 || rs.Max > 10 {
		t.Errorf("rating range = [%v, %v]", rs.Min, rs.Max)
	}
	// Indexes exist for the optimizer.
	if _, ok := genres.HashIndexOn("genre"); !ok {
		t.Error("genres(genre) hash index missing")
	}
	if _, ok := movies.BTreeIndexOn("year"); !ok {
		t.Error("movies(year) btree index missing")
	}
}

func TestLoadDBLP(t *testing.T) {
	cat := catalog.New()
	sizes, err := LoadDBLP(cat, Config{Scale: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, tbl := range []string{"publications", "authors", "pub_authors", "conferences", "journals", "citations"} {
		if sizes[tbl] == 0 {
			t.Errorf("table %s empty", tbl)
		}
	}
	// PUB_AUTHORS ≈ 2× PUBLICATIONS.
	ratio := float64(sizes["pub_authors"]) / float64(sizes["publications"])
	if ratio < 1.5 || ratio > 2.6 {
		t.Errorf("pub_authors ratio = %v", ratio)
	}
	// Conference papers carry the inproceedings type.
	pubs, _ := cat.Table("publications")
	st := pubs.Stats()
	tIdx := pubs.Schema().MustIndexOf("pub_type")
	if freq, _ := st.Columns[tIdx].MCVFreq(types.Str("inproceedings")); freq == 0 {
		t.Error("no inproceedings rows")
	}
	// Conference p_ids reference publications of the right type.
	confs, _ := cat.Table("conferences")
	if confs.Len() != sizes["conferences"] {
		t.Errorf("conferences size mismatch")
	}
}

func TestScaleValidation(t *testing.T) {
	if _, err := LoadIMDB(catalog.New(), Config{Scale: 0}); err == nil {
		t.Error("zero scale should error")
	}
	if _, err := LoadDBLP(catalog.New(), Config{Scale: -1}); err == nil {
		t.Error("negative scale should error")
	}
}

func TestScaleProportionality(t *testing.T) {
	small, err := LoadIMDB(catalog.New(), Config{Scale: 0.02, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	big, err := LoadIMDB(catalog.New(), Config{Scale: 0.04, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := float64(big["movies"]) / float64(small["movies"])
	if r < 1.8 || r > 2.2 {
		t.Errorf("scale proportionality = %v", r)
	}
}

func TestSizesString(t *testing.T) {
	s := Sizes{"b": 2, "a": 1}
	out := s.String()
	if !strings.Contains(out, "a") || strings.Index(out, "a") > strings.Index(out, "b") {
		t.Errorf("Sizes.String = %q", out)
	}
}
