// Package prel defines the runtime representation of p-relations
// (Definition 2): relations whose tuples carry a score-confidence pair
// ⟨S, C⟩ with defaults ⟨⊥, 0⟩, plus the score-relation sidecar
// R_P(pk, score, conf) used by the paper's hybrid implementation to store
// only non-default pairs.
package prel

import (
	"fmt"
	"sort"
	"strings"

	"prefdb/internal/schema"
	"prefdb/internal/types"
)

// Row is one p-relation tuple: attribute values plus its ⟨S, C⟩ pair.
type Row struct {
	Tuple []types.Value
	SC    types.SC
}

// PRelation is a materialized p-relation.
type PRelation struct {
	Schema *schema.Schema
	Rows   []Row
}

// New returns an empty p-relation with the given schema.
func New(s *schema.Schema) *PRelation { return &PRelation{Schema: s} }

// Len returns the number of tuples.
func (r *PRelation) Len() int { return len(r.Rows) }

// Append adds a row.
func (r *PRelation) Append(row Row) { r.Rows = append(r.Rows, row) }

// ScoredCount returns how many tuples carry a non-default pair — the size
// the score relation R_P would have ("each score relation contains only
// tuples with non-default scores and confidences, consequently R_P ≤ R").
func (r *PRelation) ScoredCount() int {
	n := 0
	for _, row := range r.Rows {
		if !row.SC.IsBottom() {
			n++
		}
	}
	return n
}

// Clone deep-copies the relation (tuple slices are shared; rows are not).
func (r *PRelation) Clone() *PRelation {
	out := &PRelation{Schema: r.Schema, Rows: make([]Row, len(r.Rows))}
	copy(out.Rows, r.Rows)
	return out
}

// SortByScore orders rows by score descending (⊥ last), breaking ties by
// confidence descending then tuple order, so rankings are deterministic.
func (r *PRelation) SortByScore() { r.sortBy(true) }

// SortByConf orders rows by confidence descending (⊥ last), breaking ties
// by score descending then tuple order.
func (r *PRelation) SortByConf() { r.sortBy(false) }

func (r *PRelation) sortBy(score bool) {
	sort.SliceStable(r.Rows, func(i, j int) bool {
		a, b := r.Rows[i], r.Rows[j]
		if a.SC.Known != b.SC.Known {
			return a.SC.Known
		}
		if !a.SC.Known {
			return types.CompareTuples(a.Tuple, b.Tuple) < 0
		}
		p1, s1, p2, s2 := a.SC.Score, a.SC.Conf, b.SC.Score, b.SC.Conf
		if !score {
			p1, s1, p2, s2 = a.SC.Conf, a.SC.Score, b.SC.Conf, b.SC.Score
		}
		if p1 != p2 {
			return p1 > p2
		}
		if s1 != s2 {
			return s1 > s2
		}
		return types.CompareTuples(a.Tuple, b.Tuple) < 0
	})
}

// Fingerprint returns a canonical string identity for a tuple (used for
// duplicate elimination and cross-strategy comparison).
func Fingerprint(tuple []types.Value) string {
	var b strings.Builder
	for i, v := range tuple {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(v.Kind().String())
		b.WriteByte(':')
		b.WriteString(v.String())
	}
	return b.String()
}

// ApproxEqual compares two p-relations as multisets of (tuple, ⟨S,C⟩) with
// tolerance eps on scores and confidences. Execution strategies evaluate
// aggregate functions in different orders, so exact float equality is too
// strict; associativity guarantees equality only up to rounding.
func (r *PRelation) ApproxEqual(o *PRelation, eps float64) bool {
	return r.Diff(o, eps) == ""
}

// Diff explains the first difference between two p-relations compared as
// multisets, or returns "" when they match within eps.
func (r *PRelation) Diff(o *PRelation, eps float64) string {
	if r.Len() != o.Len() {
		return fmt.Sprintf("cardinality %d vs %d", r.Len(), o.Len())
	}
	a, b := r.Clone(), o.Clone()
	canonical := func(p *PRelation) {
		sort.SliceStable(p.Rows, func(i, j int) bool {
			if c := types.CompareTuples(p.Rows[i].Tuple, p.Rows[j].Tuple); c != 0 {
				return c < 0
			}
			if p.Rows[i].SC.Known != p.Rows[j].SC.Known {
				return !p.Rows[i].SC.Known
			}
			if p.Rows[i].SC.Score != p.Rows[j].SC.Score {
				return p.Rows[i].SC.Score < p.Rows[j].SC.Score
			}
			return p.Rows[i].SC.Conf < p.Rows[j].SC.Conf
		})
	}
	canonical(a)
	canonical(b)
	for i := range a.Rows {
		if !types.TupleEqual(a.Rows[i].Tuple, b.Rows[i].Tuple) {
			return fmt.Sprintf("row %d tuple mismatch: %v vs %v", i, a.Rows[i].Tuple, b.Rows[i].Tuple)
		}
		if !a.Rows[i].SC.ApproxEqual(b.Rows[i].SC, eps) {
			return fmt.Sprintf("row %d (%v) SC mismatch: %v vs %v", i, a.Rows[i].Tuple, a.Rows[i].SC, b.Rows[i].SC)
		}
	}
	return ""
}

// String renders the relation as a small table (for examples and debugging);
// large relations are truncated.
func (r *PRelation) String() string {
	const maxRows = 50
	var b strings.Builder
	for i, c := range r.Schema.Columns {
		if i > 0 {
			b.WriteString(" | ")
		}
		b.WriteString(c.QualifiedName())
	}
	b.WriteString(" | score | conf\n")
	for i, row := range r.Rows {
		if i == maxRows {
			fmt.Fprintf(&b, "... (%d more)\n", len(r.Rows)-maxRows)
			break
		}
		for j, v := range row.Tuple {
			if j > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(v.String())
		}
		if row.SC.IsBottom() {
			b.WriteString(" | ⊥ | 0\n")
		} else {
			fmt.Fprintf(&b, " | %.3f | %.3f\n", row.SC.Score, row.SC.Conf)
		}
	}
	return b.String()
}

// ScoreRelation is the paper's R_P(pk, score, conf): a sidecar keyed by the
// base relation's (possibly composite) primary key, holding only
// non-default pairs. The plug-in baselines and the FtP engine aggregate
// partial scores through it.
type ScoreRelation struct {
	pairs map[string]types.SC
}

// NewScoreRelation returns an empty score relation.
func NewScoreRelation() *ScoreRelation { return &ScoreRelation{pairs: map[string]types.SC{}} }

// Len returns the number of keyed pairs.
func (s *ScoreRelation) Len() int { return len(s.pairs) }

// Get returns the pair for a key, or ⟨⊥,0⟩ when absent.
func (s *ScoreRelation) Get(key []types.Value) types.SC {
	return s.pairs[Fingerprint(key)]
}

// Combine merges a new pair into the entry for key using combine; entries
// are only stored when non-default.
func (s *ScoreRelation) Combine(key []types.Value, sc types.SC, combine func(a, b types.SC) types.SC) {
	if sc.IsBottom() {
		return
	}
	k := Fingerprint(key)
	s.pairs[k] = combine(s.pairs[k], sc)
}

// Set overwrites the entry for key; bottom pairs delete it.
func (s *ScoreRelation) Set(key []types.Value, sc types.SC) {
	k := Fingerprint(key)
	if sc.IsBottom() {
		delete(s.pairs, k)
		return
	}
	s.pairs[k] = sc
}
