package prel

import (
	"container/heap"
	"sort"

	"prefdb/internal/types"
)

// TopK returns the k best rows under the same ordering as SortByScore /
// SortByConf (score or confidence descending, ⊥ last, deterministic
// tie-breaks), in ranked order. It runs in O(n log k) with a bounded heap
// instead of sorting the whole input, which matters for top-k filtering
// over large evaluated relations.
func TopK(rows []Row, k int, byConf bool) []Row {
	if k <= 0 {
		return nil
	}
	if k >= len(rows) {
		out := PRelation{Rows: append([]Row(nil), rows...)}
		if byConf {
			out.SortByConf()
		} else {
			out.SortByScore()
		}
		return out.Rows
	}
	h := &rowHeap{byConf: byConf, rows: make([]Row, 0, k+1)}
	for _, r := range rows {
		if h.Len() < k {
			heap.Push(h, r)
			continue
		}
		// Keep r only if it beats the current worst (the heap root).
		if rowBetter(r, h.rows[0], byConf) {
			h.rows[0] = r
			heap.Fix(h, 0)
		}
	}
	// Pop into descending rank order.
	out := make([]Row, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Row)
	}
	return out
}

// rowBetter reports whether a ranks strictly before b under the score (or
// confidence) ordering used by SortByScore/SortByConf.
func rowBetter(a, b Row, byConf bool) bool {
	if a.SC.Known != b.SC.Known {
		return a.SC.Known
	}
	if !a.SC.Known {
		return compareTuplesLess(a, b)
	}
	p1, s1 := a.SC.Score, a.SC.Conf
	p2, s2 := b.SC.Score, b.SC.Conf
	if byConf {
		p1, s1 = a.SC.Conf, a.SC.Score
		p2, s2 = b.SC.Conf, b.SC.Score
	}
	if p1 != p2 {
		return p1 > p2
	}
	if s1 != s2 {
		return s1 > s2
	}
	return compareTuplesLess(a, b)
}

func compareTuplesLess(a, b Row) bool {
	return types.CompareTuples(a.Tuple, b.Tuple) < 0
}

// SeqRow tags a row with its position in the original input. The parallel
// top-k path ranks SeqRows under a strict total order — rowBetter with
// ties broken towards the earlier position — so partitioned selection is
// deterministic and matches the sequential bounded heap, which keeps the
// earliest-seen rows at the k boundary.
type SeqRow struct {
	Row Row
	Seq int
}

// betterSeq is that strict total order.
func betterSeq(a, b SeqRow, byConf bool) bool {
	if rowBetter(a.Row, b.Row, byConf) {
		return true
	}
	if rowBetter(b.Row, a.Row, byConf) {
		return false
	}
	return a.Seq < b.Seq
}

// TopKSeq returns the k best rows of one input partition, ranked
// best-first and tagged with global positions firstSeq, firstSeq+1, ...
// It is the per-worker half of a partitioned top-k: each worker keeps a
// bounded heap over its partition and MergeTopK combines the candidates.
func TopKSeq(rows []Row, firstSeq, k int, byConf bool) []SeqRow {
	if k <= 0 || len(rows) == 0 {
		return nil
	}
	if k > len(rows) {
		k = len(rows)
	}
	h := &seqHeap{byConf: byConf, rows: make([]SeqRow, 0, k+1)}
	for i, r := range rows {
		sr := SeqRow{Row: r, Seq: firstSeq + i}
		if h.Len() < k {
			heap.Push(h, sr)
			continue
		}
		if betterSeq(sr, h.rows[0], byConf) {
			h.rows[0] = sr
			heap.Fix(h, 0)
		}
	}
	out := make([]SeqRow, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(SeqRow)
	}
	return out
}

// MergeTopK merges per-partition ranked candidate lists (as produced by
// TopKSeq) into the global top k, in ranked order. Candidates number at
// most partitions × k, so a direct sort is cheap relative to the scans
// that produced them.
func MergeTopK(parts [][]SeqRow, k int, byConf bool) []Row {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	all := make([]SeqRow, 0, total)
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.Slice(all, func(i, j int) bool { return betterSeq(all[i], all[j], byConf) })
	if k > len(all) {
		k = len(all)
	}
	out := make([]Row, k)
	for i := range out {
		out[i] = all[i].Row
	}
	return out
}

// seqHeap is a min-heap under betterSeq: the root is the worst kept row.
type seqHeap struct {
	rows   []SeqRow
	byConf bool
}

func (h *seqHeap) Len() int           { return len(h.rows) }
func (h *seqHeap) Less(i, j int) bool { return betterSeq(h.rows[j], h.rows[i], h.byConf) }
func (h *seqHeap) Swap(i, j int)      { h.rows[i], h.rows[j] = h.rows[j], h.rows[i] }
func (h *seqHeap) Push(x any)         { h.rows = append(h.rows, x.(SeqRow)) }
func (h *seqHeap) Pop() any {
	n := len(h.rows)
	r := h.rows[n-1]
	h.rows = h.rows[:n-1]
	return r
}

// rowHeap is a min-heap on the ranking order: the root is the worst of the
// kept rows.
type rowHeap struct {
	rows   []Row
	byConf bool
}

func (h *rowHeap) Len() int           { return len(h.rows) }
func (h *rowHeap) Less(i, j int) bool { return rowBetter(h.rows[j], h.rows[i], h.byConf) }
func (h *rowHeap) Swap(i, j int)      { h.rows[i], h.rows[j] = h.rows[j], h.rows[i] }
func (h *rowHeap) Push(x any)         { h.rows = append(h.rows, x.(Row)) }
func (h *rowHeap) Pop() any {
	n := len(h.rows)
	r := h.rows[n-1]
	h.rows = h.rows[:n-1]
	return r
}
