package prel

import (
	"container/heap"

	"prefdb/internal/types"
)

// TopK returns the k best rows under the same ordering as SortByScore /
// SortByConf (score or confidence descending, ⊥ last, deterministic
// tie-breaks), in ranked order. It runs in O(n log k) with a bounded heap
// instead of sorting the whole input, which matters for top-k filtering
// over large evaluated relations.
func TopK(rows []Row, k int, byConf bool) []Row {
	if k <= 0 {
		return nil
	}
	if k >= len(rows) {
		out := PRelation{Rows: append([]Row(nil), rows...)}
		if byConf {
			out.SortByConf()
		} else {
			out.SortByScore()
		}
		return out.Rows
	}
	h := &rowHeap{byConf: byConf, rows: make([]Row, 0, k+1)}
	for _, r := range rows {
		if h.Len() < k {
			heap.Push(h, r)
			continue
		}
		// Keep r only if it beats the current worst (the heap root).
		if rowBetter(r, h.rows[0], byConf) {
			h.rows[0] = r
			heap.Fix(h, 0)
		}
	}
	// Pop into descending rank order.
	out := make([]Row, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Row)
	}
	return out
}

// rowBetter reports whether a ranks strictly before b under the score (or
// confidence) ordering used by SortByScore/SortByConf.
func rowBetter(a, b Row, byConf bool) bool {
	if a.SC.Known != b.SC.Known {
		return a.SC.Known
	}
	if !a.SC.Known {
		return compareTuplesLess(a, b)
	}
	p1, s1 := a.SC.Score, a.SC.Conf
	p2, s2 := b.SC.Score, b.SC.Conf
	if byConf {
		p1, s1 = a.SC.Conf, a.SC.Score
		p2, s2 = b.SC.Conf, b.SC.Score
	}
	if p1 != p2 {
		return p1 > p2
	}
	if s1 != s2 {
		return s1 > s2
	}
	return compareTuplesLess(a, b)
}

func compareTuplesLess(a, b Row) bool {
	return types.CompareTuples(a.Tuple, b.Tuple) < 0
}

// rowHeap is a min-heap on the ranking order: the root is the worst of the
// kept rows.
type rowHeap struct {
	rows   []Row
	byConf bool
}

func (h *rowHeap) Len() int           { return len(h.rows) }
func (h *rowHeap) Less(i, j int) bool { return rowBetter(h.rows[j], h.rows[i], h.byConf) }
func (h *rowHeap) Swap(i, j int)      { h.rows[i], h.rows[j] = h.rows[j], h.rows[i] }
func (h *rowHeap) Push(x any)         { h.rows = append(h.rows, x.(Row)) }
func (h *rowHeap) Pop() any {
	n := len(h.rows)
	r := h.rows[n-1]
	h.rows = h.rows[:n-1]
	return r
}
