package prel

import (
	"testing"

	"prefdb/internal/debug"
	"prefdb/internal/types"
)

func batchRow(id int64, score float64) Row {
	return Row{Tuple: []types.Value{types.Int(id)}, SC: types.SC{Known: true, Score: score, Conf: 1}}
}

func TestBatchFillAndDrain(t *testing.T) {
	b := NewBatch(4)
	rows := []Row{batchRow(1, 0.1), batchRow(2, 0.2), batchRow(3, 0.3)}
	b.FillRows(rows)
	if b.Live() != 3 || b.Cap() != 3 {
		t.Fatalf("Live=%d Cap=%d, want 3/3", b.Live(), b.Cap())
	}
	for i := range rows {
		got := b.Row(i)
		if !got.Tuple[0].Equal(rows[i].Tuple[0]) || got.SC != rows[i].SC {
			t.Fatalf("Row(%d) = %+v, want %+v", i, got, rows[i])
		}
	}
	out := b.AppendRows(nil)
	if len(out) != 3 || !out[2].Tuple[0].Equal(types.Int(3)) {
		t.Fatalf("AppendRows = %+v", out)
	}
}

func TestBatchSelectionCompaction(t *testing.T) {
	b := NewBatch(4)
	b.FillRows([]Row{batchRow(1, 0), batchRow(2, 0), batchRow(3, 0), batchRow(4, 0)})
	// Drop rows 0 and 2 the way a filter kernel would: compact Sel in place.
	b.Sel = append(b.Sel[:0], 1, 3)
	if b.Live() != 2 || b.Cap() != 4 {
		t.Fatalf("Live=%d Cap=%d after compaction, want 2/4", b.Live(), b.Cap())
	}
	out := b.AppendRows(nil)
	if len(out) != 2 || !out[0].Tuple[0].Equal(types.Int(2)) || !out[1].Tuple[0].Equal(types.Int(4)) {
		t.Fatalf("selected rows = %+v, want ids 2 and 4 in input order", out)
	}
}

func TestBatchResetKeepsCapacity(t *testing.T) {
	b := NewBatch(2)
	b.FillRows([]Row{batchRow(1, 0), batchRow(2, 0)})
	tupCap, selCap := cap(b.Tuples), cap(b.Sel)
	b.Reset()
	if b.Live() != 0 || b.Cap() != 0 {
		t.Fatalf("Reset left Live=%d Cap=%d", b.Live(), b.Cap())
	}
	if cap(b.Tuples) != tupCap || cap(b.Sel) != selCap {
		t.Fatal("Reset dropped the backing arrays")
	}
}

func TestBatchSCIsPrivate(t *testing.T) {
	src := batchRow(1, 0.5)
	b := NewBatch(1)
	b.FillRows([]Row{src})
	b.SetSC(0, types.SC{Known: true, Score: 0.9, Conf: 1})
	if src.SC.Score != 0.5 {
		t.Fatalf("mutating batch SC column changed the source row: %+v", src.SC)
	}
	if got := b.Row(0).SC.Score; got != 0.9 {
		t.Fatalf("batch SC column lost the kernel's write: %v", got)
	}
}

// TestColumnarBorrowCanary pins both flavors of the prefdb:col-view
// contract check: under prefdbdebug a kernel that writes through a
// borrowed column vector panics at Reset (the end of the borrow); in
// normal builds the check compiles away and Reset just clears the form.
func TestColumnarBorrowCanary(t *testing.T) {
	mk := func() (*Batch, []types.ColVec) {
		cols := []types.ColVec{{Ints: []int64{10, 20, 30}}}
		view := [][]types.Value{
			{types.Int(10)}, {types.Int(20)}, {types.Int(30)},
		}
		b := NewBatch(3)
		b.SetColumnar(cols, view)
		b.Sel = append(b.Sel, 0, 1, 2)
		b.Check()
		return b, cols
	}

	b, _ := mk()
	if !b.Columnar() || b.Cap() != 3 || b.Live() != 3 {
		t.Fatalf("columnar batch shape: columnar=%v cap=%d live=%d", b.Columnar(), b.Cap(), b.Live())
	}
	b.Reset() // clean borrow: never panics in either flavor
	if b.Columnar() {
		t.Fatal("Reset left the batch columnar")
	}

	b, cols := mk()
	cols[0].Ints[1] = 999 // prefdb:alias-ok canary deliberately mutates the borrow to arm the debug check
	panicked := func() (p bool) {
		defer func() { p = recover() != nil }()
		b.Reset()
		return
	}()
	if panicked != debug.Enabled {
		t.Fatalf("mutated borrow: panicked=%v, want %v (debug.Enabled)", panicked, debug.Enabled)
	}
}
