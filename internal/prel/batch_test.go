package prel

import (
	"testing"

	"prefdb/internal/types"
)

func batchRow(id int64, score float64) Row {
	return Row{Tuple: []types.Value{types.Int(id)}, SC: types.SC{Known: true, Score: score, Conf: 1}}
}

func TestBatchFillAndDrain(t *testing.T) {
	b := NewBatch(4)
	rows := []Row{batchRow(1, 0.1), batchRow(2, 0.2), batchRow(3, 0.3)}
	b.FillRows(rows)
	if b.Live() != 3 || b.Cap() != 3 {
		t.Fatalf("Live=%d Cap=%d, want 3/3", b.Live(), b.Cap())
	}
	for i := range rows {
		got := b.Row(i)
		if !got.Tuple[0].Equal(rows[i].Tuple[0]) || got.SC != rows[i].SC {
			t.Fatalf("Row(%d) = %+v, want %+v", i, got, rows[i])
		}
	}
	out := b.AppendRows(nil)
	if len(out) != 3 || !out[2].Tuple[0].Equal(types.Int(3)) {
		t.Fatalf("AppendRows = %+v", out)
	}
}

func TestBatchSelectionCompaction(t *testing.T) {
	b := NewBatch(4)
	b.FillRows([]Row{batchRow(1, 0), batchRow(2, 0), batchRow(3, 0), batchRow(4, 0)})
	// Drop rows 0 and 2 the way a filter kernel would: compact Sel in place.
	b.Sel = append(b.Sel[:0], 1, 3)
	if b.Live() != 2 || b.Cap() != 4 {
		t.Fatalf("Live=%d Cap=%d after compaction, want 2/4", b.Live(), b.Cap())
	}
	out := b.AppendRows(nil)
	if len(out) != 2 || !out[0].Tuple[0].Equal(types.Int(2)) || !out[1].Tuple[0].Equal(types.Int(4)) {
		t.Fatalf("selected rows = %+v, want ids 2 and 4 in input order", out)
	}
}

func TestBatchResetKeepsCapacity(t *testing.T) {
	b := NewBatch(2)
	b.FillRows([]Row{batchRow(1, 0), batchRow(2, 0)})
	tupCap, selCap := cap(b.Tuples), cap(b.Sel)
	b.Reset()
	if b.Live() != 0 || b.Cap() != 0 {
		t.Fatalf("Reset left Live=%d Cap=%d", b.Live(), b.Cap())
	}
	if cap(b.Tuples) != tupCap || cap(b.Sel) != selCap {
		t.Fatal("Reset dropped the backing arrays")
	}
}

func TestBatchSCIsPrivate(t *testing.T) {
	src := batchRow(1, 0.5)
	b := NewBatch(1)
	b.FillRows([]Row{src})
	b.SC[0] = types.SC{Known: true, Score: 0.9, Conf: 1}
	if src.SC.Score != 0.5 {
		t.Fatalf("mutating batch SC column changed the source row: %+v", src.SC)
	}
	if got := b.Row(0).SC.Score; got != 0.9 {
		t.Fatalf("batch SC column lost the kernel's write: %v", got)
	}
}
