package prel

import (
	"strings"
	"testing"

	"prefdb/internal/pref"
	"prefdb/internal/schema"
	"prefdb/internal/types"
)

func sch() *schema.Schema {
	return schema.New(
		schema.Column{Name: "id", Kind: types.KindInt},
		schema.Column{Name: "name", Kind: types.KindString},
	).WithKey("id")
}

func mk(id int64, name string, sc types.SC) Row {
	return Row{Tuple: []types.Value{types.Int(id), types.Str(name)}, SC: sc}
}

func TestAppendLenScoredCount(t *testing.T) {
	r := New(sch())
	r.Append(mk(1, "a", types.Bottom()))
	r.Append(mk(2, "b", types.NewSC(0.5, 1)))
	r.Append(mk(3, "c", types.NewSC(0.7, 0.5)))
	if r.Len() != 3 {
		t.Errorf("Len = %d", r.Len())
	}
	if r.ScoredCount() != 2 {
		t.Errorf("ScoredCount = %d", r.ScoredCount())
	}
}

func TestSortByScoreAndConf(t *testing.T) {
	r := New(sch())
	r.Append(mk(1, "a", types.NewSC(0.5, 0.9)))
	r.Append(mk(2, "b", types.Bottom()))
	r.Append(mk(3, "c", types.NewSC(0.9, 0.1)))
	r.Append(mk(4, "d", types.NewSC(0.5, 0.95)))
	r.SortByScore()
	ids := func() []int64 {
		out := make([]int64, r.Len())
		for i, row := range r.Rows {
			out[i] = row.Tuple[0].AsInt()
		}
		return out
	}
	got := ids()
	// score desc: 3 (0.9), then 4 (0.5 conf .95), then 1 (0.5 conf .9), ⊥ last.
	want := []int64{3, 4, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortByScore = %v, want %v", got, want)
		}
	}
	r.SortByConf()
	got = ids()
	want = []int64{4, 1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortByConf = %v, want %v", got, want)
		}
	}
}

func TestSortDeterministicOnTies(t *testing.T) {
	r := New(sch())
	r.Append(mk(2, "b", types.NewSC(0.5, 0.5)))
	r.Append(mk(1, "a", types.NewSC(0.5, 0.5)))
	r.SortByScore()
	if r.Rows[0].Tuple[0].AsInt() != 1 {
		t.Error("ties should order by tuple")
	}
}

func TestFingerprint(t *testing.T) {
	a := Fingerprint([]types.Value{types.Int(1), types.Str("x")})
	b := Fingerprint([]types.Value{types.Int(1), types.Str("x")})
	c := Fingerprint([]types.Value{types.Int(1), types.Str("y")})
	if a != b {
		t.Error("equal tuples should fingerprint equal")
	}
	if a == c {
		t.Error("different tuples should differ")
	}
	// Type-tagged: Int(1) vs Str("1") differ.
	d := Fingerprint([]types.Value{types.Str("1"), types.Str("x")})
	if a == d {
		t.Error("fingerprint must distinguish kinds")
	}
}

func TestApproxEqualAndDiff(t *testing.T) {
	a := New(sch())
	a.Append(mk(1, "a", types.NewSC(0.5, 1)))
	a.Append(mk(2, "b", types.Bottom()))
	b := New(sch())
	// Different order, tiny float noise.
	b.Append(mk(2, "b", types.Bottom()))
	b.Append(mk(1, "a", types.NewSC(0.5+1e-12, 1)))
	if !a.ApproxEqual(b, 1e-9) {
		t.Errorf("ApproxEqual failed: %s", a.Diff(b, 1e-9))
	}
	// Cardinality mismatch.
	c := New(sch())
	c.Append(mk(1, "a", types.NewSC(0.5, 1)))
	if a.ApproxEqual(c, 1e-9) || !strings.Contains(a.Diff(c, 1e-9), "cardinality") {
		t.Error("cardinality mismatch not detected")
	}
	// SC mismatch.
	d := New(sch())
	d.Append(mk(1, "a", types.NewSC(0.6, 1)))
	d.Append(mk(2, "b", types.Bottom()))
	if a.ApproxEqual(d, 1e-9) || !strings.Contains(a.Diff(d, 1e-9), "SC mismatch") {
		t.Error("SC mismatch not detected")
	}
	// Tuple mismatch.
	e := New(sch())
	e.Append(mk(1, "a", types.NewSC(0.5, 1)))
	e.Append(mk(3, "z", types.Bottom()))
	if a.ApproxEqual(e, 1e-9) || !strings.Contains(a.Diff(e, 1e-9), "tuple mismatch") {
		t.Error("tuple mismatch not detected")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(sch())
	a.Append(mk(1, "a", types.Bottom()))
	b := a.Clone()
	b.Rows[0].SC = types.NewSC(1, 1)
	if !a.Rows[0].SC.IsBottom() {
		t.Error("clone shares row headers")
	}
}

func TestStringRendering(t *testing.T) {
	r := New(sch())
	r.Append(mk(1, "a", types.NewSC(0.5, 1)))
	r.Append(mk(2, "b", types.Bottom()))
	s := r.String()
	if !strings.Contains(s, "id | name | score | conf") {
		t.Errorf("header missing: %q", s)
	}
	if !strings.Contains(s, "0.500") || !strings.Contains(s, "⊥") {
		t.Errorf("rows missing: %q", s)
	}
	// Truncation.
	big := New(sch())
	for i := 0; i < 60; i++ {
		big.Append(mk(int64(i), "x", types.Bottom()))
	}
	if !strings.Contains(big.String(), "more)") {
		t.Error("large relation should truncate")
	}
}

func TestScoreRelation(t *testing.T) {
	sr := NewScoreRelation()
	key1 := []types.Value{types.Int(1)}
	key2 := []types.Value{types.Int(2)}
	if !sr.Get(key1).IsBottom() {
		t.Error("missing key should be ⊥")
	}
	f := pref.FSum{}
	sr.Combine(key1, types.NewSC(1, 1), f.Combine)
	sr.Combine(key1, types.NewSC(0, 1), f.Combine)
	got := sr.Get(key1)
	if got.Score != 0.5 || got.Conf != 2 {
		t.Errorf("combined = %v", got)
	}
	// Bottom combine is a no-op; only non-default rows are stored.
	sr.Combine(key2, types.Bottom(), f.Combine)
	if sr.Len() != 1 {
		t.Errorf("Len = %d, want 1 (R_P holds only non-default pairs)", sr.Len())
	}
	sr.Set(key2, types.NewSC(0.3, 0.3))
	if sr.Len() != 2 {
		t.Errorf("Len after Set = %d", sr.Len())
	}
	sr.Set(key2, types.Bottom())
	if sr.Len() != 1 {
		t.Errorf("Set(⊥) should delete, Len = %d", sr.Len())
	}
}

func TestTopKMatchesFullSort(t *testing.T) {
	// Property: TopK(rows, k) equals the first k of a full sort, for both
	// ranking dimensions and pseudo-random inputs including ⊥ rows.
	rng := []float64{0.31, 0.87, 0.12, 0.99, 0.44, 0.62, 0.05, 0.71, 0.44, 0.31, 0.93, 0.27}
	var rows []Row
	for i := 0; i < 40; i++ {
		sc := types.NewSC(rng[i%len(rng)], rng[(i+5)%len(rng)])
		if i%7 == 0 {
			sc = types.Bottom()
		}
		rows = append(rows, mk(int64(i), "x", sc))
	}
	for _, byConf := range []bool{false, true} {
		full := PRelation{Rows: append([]Row(nil), rows...)}
		if byConf {
			full.SortByConf()
		} else {
			full.SortByScore()
		}
		for _, k := range []int{0, 1, 3, 10, 40, 100} {
			got := TopK(rows, k, byConf)
			want := full.Rows
			if k < len(want) {
				want = want[:k]
			}
			if k == 0 {
				want = nil
			}
			if len(got) != len(want) {
				t.Fatalf("byConf=%v k=%d: len %d, want %d", byConf, k, len(got), len(want))
			}
			for i := range want {
				if !types.TupleEqual(got[i].Tuple, want[i].Tuple) || got[i].SC != want[i].SC {
					t.Fatalf("byConf=%v k=%d row %d: %v %v, want %v %v",
						byConf, k, i, got[i].Tuple, got[i].SC, want[i].Tuple, want[i].SC)
				}
			}
		}
	}
}

func TestTopKAllBottom(t *testing.T) {
	rows := []Row{mk(2, "b", types.Bottom()), mk(1, "a", types.Bottom()), mk(3, "c", types.Bottom())}
	got := TopK(rows, 2, false)
	if len(got) != 2 || got[0].Tuple[0].AsInt() != 1 || got[1].Tuple[0].AsInt() != 2 {
		t.Errorf("all-bottom topk = %v", got)
	}
}
