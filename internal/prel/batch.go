package prel

import (
	"prefdb/internal/debug"
	"prefdb/internal/types"
)

// Batch is a morsel-sized block of rows in batch layout: the tuple
// pointers, the ⟨S,C⟩ pairs as a separate column, and a selection vector
// of live row indices. Vectorized operators (internal/exec) process one
// Batch per call instead of one row per call, so dynamic dispatch, guard
// polling and stats accounting amortize over the whole block.
//
// Layout invariants:
//
//   - len(Tuples) == len(SC) == the batch capacity actually filled; Sel
//     holds indices into that range, strictly increasing, so selected rows
//     keep their input order.
//   - Tuples aliases the producer's tuple storage and is never mutated
//     through the batch; tuples are immutable by pipeline contract.
//   - SC is a private column (copied at fill time), so prefer kernels may
//     combine pairs in place without touching shared row storage.
//
// Aliasing contract: a Batch returned by a batch iterator is valid only
// until the next nextBatch call on the same iterator. Consumers that keep
// rows across calls must copy them out first (AppendRows); the Row copies
// share tuple storage, which is safe because tuples are immutable.
type Batch struct {
	Tuples [][]types.Value
	SC     []types.SC
	Sel    []int32
}

// NewBatch returns a batch with capacity for n rows.
func NewBatch(n int) *Batch {
	return &Batch{
		Tuples: make([][]types.Value, 0, n),
		SC:     make([]types.SC, 0, n),
		Sel:    make([]int32, 0, n),
	}
}

// Reset empties the batch for refilling, keeping the backing arrays.
func (b *Batch) Reset() {
	b.Tuples = b.Tuples[:0]
	b.SC = b.SC[:0]
	b.Sel = b.Sel[:0]
}

// Push appends one row to the batch and selects it.
func (b *Batch) Push(r Row) {
	b.Sel = append(b.Sel, int32(len(b.Tuples)))
	b.Tuples = append(b.Tuples, r.Tuple)
	b.SC = append(b.SC, r.SC)
}

// PushTuple appends one tuple with the default ⟨⊥,0⟩ pair and selects it
// (the shape base-table scans produce).
func (b *Batch) PushTuple(t []types.Value) {
	b.Sel = append(b.Sel, int32(len(b.Tuples)))
	b.Tuples = append(b.Tuples, t)
	b.SC = append(b.SC, types.SC{})
}

// FillRows resets the batch and fills it from a row slice (all selected).
func (b *Batch) FillRows(rows []Row) {
	b.Reset()
	for _, r := range rows {
		b.Push(r)
	}
	b.Check()
}

// Check asserts the layout invariants above in prefdbdebug builds: the
// SC column aligned with Tuples and the selection vector strictly
// increasing within bounds. A no-op (inlined away) in normal builds.
func (b *Batch) Check() {
	if !debug.Enabled {
		return
	}
	debug.SameLen("batch SC column", len(b.SC), len(b.Tuples))
	debug.SelValid(b.Sel, len(b.Tuples))
}

// Live returns the number of selected rows.
func (b *Batch) Live() int { return len(b.Sel) }

// Cap returns the number of rows the batch holds (selected or not).
func (b *Batch) Cap() int { return len(b.Tuples) }

// Row returns the i-th selected row (a value copy sharing tuple storage).
func (b *Batch) Row(i int) Row {
	j := b.Sel[i]
	return Row{Tuple: b.Tuples[j], SC: b.SC[j]}
}

// AppendRows copies the selected rows out of the batch, appending to dst.
// The copies remain valid after the batch is reused.
func (b *Batch) AppendRows(dst []Row) []Row {
	b.Check()
	for _, j := range b.Sel {
		dst = append(dst, Row{Tuple: b.Tuples[j], SC: b.SC[j]})
	}
	return dst
}
