package prel

import (
	"prefdb/internal/debug"
	"prefdb/internal/types"
)

// Batch is a morsel-sized block of rows in batch layout: the tuple
// pointers, the ⟨S,C⟩ pairs as plain float columns prefer kernels update
// in place, and a selection vector of live row indices. Vectorized
// operators (internal/exec) process one Batch per call instead of one row
// per call, so dynamic dispatch, guard polling and stats accounting
// amortize over the whole block.
//
// A batch comes in two forms:
//
//   - Row form (Push/PushTuple/FillRows): Tuples holds the row views,
//     Cols and View are nil. This is the only form the parallel morsel
//     path and non-columnar sources produce.
//   - Columnar form (SetColumnar): Cols holds borrowed typed column
//     vectors and View the matching pre-decoded row views, both straight
//     from a colstore segment; Tuples stays empty. Filter and score
//     kernels read Cols directly; anything that needs tuples reads
//     Rows(), which is the late-materialization boundary.
//
// Layout invariants:
//
//   - len(S) == len(C) == len(Known) == Cap(); Sel holds indices into
//     that range, strictly increasing, so selected rows keep their input
//     order.
//   - Tuples/View alias the producer's tuple storage and are never
//     mutated through the batch; tuples are immutable by pipeline
//     contract, and Cols obeys the prefdb:col-view contract above.
//   - S/C/Known are private columns (copied or zeroed at fill time), so
//     prefer kernels may combine pairs in place without touching shared
//     row storage.
//
// Aliasing contract: a Batch returned by a batch iterator is valid only
// until the next nextBatch call on the same iterator. Consumers that keep
// rows across calls must copy them out first (AppendRows); the Row copies
// share tuple storage, which is safe because tuples are immutable.
type Batch struct {
	Tuples [][]types.Value
	// ⟨S,C⟩ as structure-of-arrays: score, confidence, and whether the
	// pair has been scored at all (types.SC.Known). The zero triple is
	// the bottom pair ⟨⊥,0⟩.
	S     []float64
	C     []float64
	Known []bool
	Sel   []int32

	// Columnar form. Cols[ord] is the vector window for attribute ord;
	// View[i] is the pre-decoded row view for slot i. Both borrowed from
	// the producing segment, nil in row form.
	Cols []types.ColVec
	View [][]types.Value

	// fp fingerprints the borrowed vectors in prefdbdebug builds so
	// Reset can assert no kernel wrote through them.
	fp colsFingerprint
}

// NewBatch returns a batch with capacity for n rows.
func NewBatch(n int) *Batch {
	return &Batch{
		Tuples: make([][]types.Value, 0, n),
		S:      make([]float64, 0, n),
		C:      make([]float64, 0, n),
		Known:  make([]bool, 0, n),
		Sel:    make([]int32, 0, n),
	}
}

// Reset empties the batch for refilling, keeping the backing arrays. In
// prefdbdebug builds the borrowed vectors of a columnar batch are
// fingerprint-checked here — the end of their borrow — so a kernel that
// wrote through the prefdb:col-view contract is caught on the very next
// refill; the fingerprint is then cleared, letting the producer reuse
// its vector and scratch buffers for the next window.
func (b *Batch) Reset() {
	if debug.Enabled && b.Cols != nil {
		b.fp.check(b.Cols)
		b.fp.clear()
	}
	b.Tuples = b.Tuples[:0]
	b.S = b.S[:0]
	b.C = b.C[:0]
	b.Known = b.Known[:0]
	b.Sel = b.Sel[:0]
	b.Cols = nil
	b.View = nil
}

// SetColumnar resets the batch into columnar form over a segment window:
// cols are the borrowed per-attribute vectors and view the matching
// pre-decoded row views (len(view) == Cap). The ⟨S,C⟩ columns are zeroed
// to ⟨⊥,0⟩; the caller appends the window's live slots to Sel.
func (b *Batch) SetColumnar(cols []types.ColVec, view [][]types.Value) {
	b.Reset()
	b.Cols, b.View = cols, view
	n := len(view)
	b.S = zeroFloats(b.S, n)
	b.C = zeroFloats(b.C, n)
	b.Known = zeroBools(b.Known, n)
	if debug.Enabled {
		b.fp.capture(cols)
	}
}

// Columnar reports whether the batch is in columnar form.
func (b *Batch) Columnar() bool { return b.View != nil }

// Rows returns the batch's tuple view: the owned Tuples in row form, or
// the borrowed segment row views in columnar form. This is the
// late-materialization boundary — operators that can run on Cols should
// not call it; exec counts the selected rows of every batch that crosses
// it as materialized (Stats.RowsMaterialized).
func (b *Batch) Rows() [][]types.Value {
	if b.View != nil {
		return b.View
	}
	return b.Tuples
}

// Push appends one row to the batch and selects it.
func (b *Batch) Push(r Row) {
	b.Sel = append(b.Sel, int32(len(b.Tuples)))
	b.Tuples = append(b.Tuples, r.Tuple)
	b.S = append(b.S, r.SC.Score)
	b.C = append(b.C, r.SC.Conf)
	b.Known = append(b.Known, r.SC.Known)
}

// PushTuple appends one tuple with the default ⟨⊥,0⟩ pair and selects it
// (the shape base-table scans produce).
func (b *Batch) PushTuple(t []types.Value) {
	b.Sel = append(b.Sel, int32(len(b.Tuples)))
	b.Tuples = append(b.Tuples, t)
	b.S = append(b.S, 0)
	b.C = append(b.C, 0)
	b.Known = append(b.Known, false)
}

// FillRows resets the batch and fills it from a row slice (all selected).
func (b *Batch) FillRows(rows []Row) {
	b.Reset()
	for _, r := range rows {
		b.Push(r)
	}
	b.Check()
}

// SCAt returns slot j's ⟨S,C⟩ pair.
func (b *Batch) SCAt(j int32) types.SC {
	return types.SC{Score: b.S[j], Conf: b.C[j], Known: b.Known[j]}
}

// SetSC stores slot j's ⟨S,C⟩ pair.
func (b *Batch) SetSC(j int32, sc types.SC) {
	b.S[j], b.C[j], b.Known[j] = sc.Score, sc.Conf, sc.Known
}

// Check asserts the layout invariants above in prefdbdebug builds: the
// ⟨S,C⟩ columns aligned with the row capacity and the selection vector
// strictly increasing within bounds. A no-op (inlined away) in normal
// builds.
func (b *Batch) Check() {
	if !debug.Enabled {
		return
	}
	n := b.Cap()
	debug.SameLen("batch S column", len(b.S), n)
	debug.SameLen("batch C column", len(b.C), n)
	debug.SameLen("batch Known column", len(b.Known), n)
	debug.SelValid(b.Sel, n)
}

// Live returns the number of selected rows.
func (b *Batch) Live() int { return len(b.Sel) }

// Cap returns the number of rows the batch holds (selected or not).
func (b *Batch) Cap() int {
	if b.View != nil {
		return len(b.View)
	}
	return len(b.Tuples)
}

// Row returns the i-th selected row (a value copy sharing tuple storage).
func (b *Batch) Row(i int) Row {
	j := b.Sel[i]
	return Row{Tuple: b.rowAt(j), SC: b.SCAt(j)}
}

// AppendRows copies the selected rows out of the batch, appending to dst.
// The copies remain valid after the batch is reused (segment row views
// outlive the batch: their arenas are immutable and owned by the store).
func (b *Batch) AppendRows(dst []Row) []Row {
	b.Check()
	for _, j := range b.Sel {
		dst = append(dst, Row{Tuple: b.rowAt(j), SC: b.SCAt(j)})
	}
	return dst
}

func (b *Batch) rowAt(j int32) []types.Value {
	if b.View != nil {
		return b.View[j]
	}
	return b.Tuples[j]
}

func zeroFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func zeroBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// colsFingerprint samples the borrowed column vectors (first, middle and
// last element of each typed slice) so prefdbdebug builds can detect a
// kernel writing through the prefdb:col-view contract between
// SetColumnar and the next Reset. Sampling keeps the check O(columns),
// not O(rows), so debug builds stay usable at scale.
type colsFingerprint struct {
	ints   [][3]int64
	floats [][3]float64
	codes  [][3]int32
	bools  [][3]bool
	nulls  [][3]bool
	// Run-length windows: the run value/end slices are borrowed segment
	// storage like the dense vectors and get the same treatment.
	runVals  [][3]int64
	runCodes [][3]int32
	runEnds  [][3]int32
}

func sample3[T comparable](s []T) [3]T {
	var out [3]T
	if len(s) > 0 {
		out[0], out[1], out[2] = s[0], s[len(s)/2], s[len(s)-1]
	}
	return out
}

func (f *colsFingerprint) clear() {
	f.ints, f.floats, f.codes, f.bools, f.nulls = f.ints[:0], f.floats[:0], f.codes[:0], f.bools[:0], f.nulls[:0]
	f.runVals, f.runCodes, f.runEnds = f.runVals[:0], f.runCodes[:0], f.runEnds[:0]
}

func (f *colsFingerprint) capture(cols []types.ColVec) {
	f.clear()
	for i := range cols {
		f.ints = append(f.ints, sample3(cols[i].Ints))
		f.floats = append(f.floats, sample3(cols[i].Floats))
		f.codes = append(f.codes, sample3(cols[i].Codes))
		f.bools = append(f.bools, sample3(cols[i].Bools))
		f.nulls = append(f.nulls, sample3(cols[i].Nulls))
		f.runVals = append(f.runVals, sample3(cols[i].RunVals))
		f.runCodes = append(f.runCodes, sample3(cols[i].RunCodes))
		f.runEnds = append(f.runEnds, sample3(cols[i].RunEnds))
	}
}

func (f *colsFingerprint) check(cols []types.ColVec) {
	if len(f.ints) != len(cols) {
		return
	}
	for i := range cols {
		ok := f.ints[i] == sample3(cols[i].Ints) &&
			f.floats[i] == sample3(cols[i].Floats) &&
			f.codes[i] == sample3(cols[i].Codes) &&
			f.bools[i] == sample3(cols[i].Bools) &&
			f.nulls[i] == sample3(cols[i].Nulls) &&
			f.runVals[i] == sample3(cols[i].RunVals) &&
			f.runCodes[i] == sample3(cols[i].RunCodes) &&
			f.runEnds[i] == sample3(cols[i].RunEnds)
		debug.Assertf(ok, "borrowed column vector %d mutated between SetColumnar and Reset (prefdb:col-view contract)", i)
	}
}
