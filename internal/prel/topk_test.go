package prel

import (
	"testing"

	"prefdb/internal/types"
)

// seqRows builds a pseudo-random relation with ties and ⊥ rows — the
// shapes where partitioned selection could diverge from the sequential
// heap if tie-breaking were not deterministic.
func seqRows(n int) []Row {
	rng := []float64{0.31, 0.87, 0.12, 0.99, 0.44, 0.62, 0.05, 0.71, 0.44, 0.31, 0.93, 0.27}
	rows := make([]Row, 0, n)
	for i := 0; i < n; i++ {
		sc := types.NewSC(rng[i%len(rng)], rng[(i+5)%len(rng)])
		if i%11 == 0 {
			sc = types.Bottom()
		}
		rows = append(rows, mk(int64(i), "x", sc))
	}
	return rows
}

// TestMergeTopKMatchesSequential checks the parallel top-k contract: for
// any partitioning of the input into contiguous chunks, merging the
// per-chunk TopKSeq candidates yields exactly the sequential TopK.
func TestMergeTopKMatchesSequential(t *testing.T) {
	rows := seqRows(200)
	for _, byConf := range []bool{false, true} {
		for _, k := range []int{1, 7, 25, 199, 200, 500} {
			want := TopK(rows, k, byConf)
			for _, chunks := range []int{1, 2, 3, 7} {
				chunk := (len(rows) + chunks - 1) / chunks
				var parts [][]SeqRow
				for lo := 0; lo < len(rows); lo += chunk {
					hi := lo + chunk
					if hi > len(rows) {
						hi = len(rows)
					}
					parts = append(parts, TopKSeq(rows[lo:hi], lo, k, byConf))
				}
				got := MergeTopK(parts, k, byConf)
				if len(got) != len(want) {
					t.Fatalf("byConf=%v k=%d chunks=%d: len %d, want %d", byConf, k, chunks, len(got), len(want))
				}
				for i := range want {
					if !types.TupleEqual(got[i].Tuple, want[i].Tuple) || got[i].SC != want[i].SC {
						t.Fatalf("byConf=%v k=%d chunks=%d row %d: %v %v, want %v %v",
							byConf, k, chunks, i, got[i].Tuple, got[i].SC, want[i].Tuple, want[i].SC)
					}
				}
			}
		}
	}
}

func TestTopKSeqEdgeCases(t *testing.T) {
	if got := TopKSeq(nil, 0, 5, false); got != nil {
		t.Errorf("empty input = %v, want nil", got)
	}
	if got := TopKSeq(seqRows(3), 0, 0, false); got != nil {
		t.Errorf("k=0 = %v, want nil", got)
	}
	// Sequence numbers carry the partition offset.
	part := TopKSeq(seqRows(4), 100, 4, false)
	for _, sr := range part {
		if sr.Seq < 100 || sr.Seq >= 104 {
			t.Errorf("seq %d outside [100, 104)", sr.Seq)
		}
	}
	if got := MergeTopK(nil, 3, false); len(got) != 0 {
		t.Errorf("merge of nothing = %v, want empty", got)
	}
}
