package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one typechecked package ready for analysis.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	ForTest    string
	DepOnly    bool
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
}

// Loader resolves and typechecks packages with the standard library only:
// `go list` supplies the build-tag-filtered file sets and the import
// graph, go/parser and go/types do the rest. Every package — the standard
// library included — is typechecked from source, so no export data or
// compiled artifacts are required.
type Loader struct {
	// Dir is the directory `go list` runs in (the module root or below).
	Dir string

	fset *token.FileSet
	meta map[string]*listPkg
	pkgs map[string]*types.Package
	// loading guards against import cycles (which would indicate corrupt
	// metadata; the go command rejects real cycles).
	loading map[string]bool
	// forTest is the test-variant suffix of the package currently being
	// typechecked, so its imports resolve to test variants first.
	forTest string
}

// NewLoader returns a loader rooted at dir.
func NewLoader(dir string) *Loader {
	return &Loader{
		Dir:     dir,
		fset:    token.NewFileSet(),
		meta:    map[string]*listPkg{},
		pkgs:    map[string]*types.Package{},
		loading: map[string]bool{},
	}
}

// list runs `go list -e -json` with the given arguments and folds the
// resulting package metadata into the loader.
func (l *Loader) list(args ...string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json"}, args...)...)
	cmd.Dir = l.Dir
	// CGO off keeps every listed package pure Go, so source typechecking
	// never meets a cgo-generated file.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(args, " "), err, errb.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(&out)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if _, have := l.meta[p.ImportPath]; !have {
			cp := p
			l.meta[p.ImportPath] = &cp
		}
		pkgs = append(pkgs, l.meta[p.ImportPath])
	}
	return pkgs, nil
}

// Import implements types.Importer by typechecking the named package on
// demand (memoized). While typechecking a test variant, imports resolve to
// sibling test variants first, so external test packages observe the
// in-package test declarations (the export_test.go idiom).
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.forTest != "" {
		variant := path + " [" + l.forTest + "]"
		if _, ok := l.meta[variant]; ok {
			path = variant
		}
	}
	return l.typecheck(path)
}

// typecheck parses and checks one package by import path, loading its
// metadata through `go list` if it has not been seen yet.
func (l *Loader) typecheck(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	lp, ok := l.meta[path]
	if !ok {
		if _, err := l.list("-deps", "--", path); err != nil {
			return nil, err
		}
		if lp, ok = l.meta[path]; !ok {
			return nil, fmt.Errorf("lint: package %q not found by go list", path)
		}
	}
	if lp.Error != nil {
		return nil, fmt.Errorf("lint: loading %s: %s", path, lp.Error.Err)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	pkg, _, _, err := l.check(lp, nil)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// check parses lp's files (plus any extra files) and typechecks them. The
// returned info is non-nil only when wantInfo is.
func (l *Loader) check(lp *listPkg, wantInfo *types.Info) (*types.Package, []*ast.File, *types.Info, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("lint: parsing %s: %w", path, err)
		}
		files = append(files, f)
	}

	savedForTest := l.forTest
	if i := strings.IndexByte(lp.ImportPath, '['); i >= 0 {
		l.forTest = strings.TrimSuffix(lp.ImportPath[i+1:], "]")
	} else {
		l.forTest = ""
	}
	defer func() { l.forTest = savedForTest }()

	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		// Dependency packages only need their exported shape; tolerate
		// benign errors (e.g. platform-conditional declarations) instead of
		// aborting the whole run.
		Error:            func(error) {},
		IgnoreFuncBodies: false,
	}
	info := wantInfo
	basePath := lp.ImportPath
	if i := strings.IndexByte(basePath, ' '); i >= 0 {
		basePath = basePath[:i]
	}
	pkg, err := conf.Check(basePath, l.fset, files, info)
	if err != nil && pkg == nil {
		return nil, nil, nil, fmt.Errorf("lint: typechecking %s: %w", lp.ImportPath, err)
	}
	return pkg, files, info, nil
}

// newInfo allocates the typechecker fact tables the analyzers consume.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// LoadPatterns loads the packages matched by the go list patterns —
// including their in-package and external test files — typechecked and
// ready for analysis. When a package has a test variant (test files
// present), the variant supersedes the plain package so annotations and
// findings in test helpers are covered.
func (l *Loader) LoadPatterns(patterns ...string) ([]*Package, error) {
	listed, err := l.list(append([]string{"-deps", "-test", "--"}, patterns...)...)
	if err != nil {
		return nil, err
	}

	// Pick analysis targets: pattern-matched entries, preferring the test
	// variant "p [p.test]" over the plain "p" it shadows.
	shadowed := map[string]bool{}
	var targets []*listPkg
	for _, lp := range listed {
		if lp.DepOnly || strings.HasSuffix(lp.ImportPath, ".test") || len(lp.GoFiles) == 0 {
			continue
		}
		if lp.ForTest != "" && !strings.Contains(lp.ImportPath, "_test [") {
			shadowed[lp.ForTest] = true
		}
		targets = append(targets, lp)
	}
	var out []*Package
	for _, lp := range targets {
		if lp.ForTest == "" && shadowed[lp.ImportPath] {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: loading %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, files, info, err := l.check(lp, newInfo())
		if err != nil {
			return nil, err
		}
		l.pkgs[lp.ImportPath] = pkg
		out = append(out, &Package{
			ImportPath: lp.ImportPath,
			Fset:       l.fset,
			Files:      files,
			Pkg:        pkg,
			Info:       info,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// CheckDir typechecks every .go file in one directory as a single package
// — the fixture loader for analyzer tests (testdata packages are invisible
// to go list patterns, so they are parsed directly; their imports resolve
// through the normal loader).
func (l *Loader) CheckDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	lp := &listPkg{Dir: dir, ImportPath: "fixture/" + filepath.Base(dir), GoFiles: names}
	pkg, files, info, err := l.check(lp, newInfo())
	if err != nil {
		return nil, err
	}
	return &Package{ImportPath: lp.ImportPath, Fset: l.fset, Files: files, Pkg: pkg, Info: info}, nil
}
