package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// WrapCheck enforces the typed-error protocol of the query lifecycle
// (DESIGN.md §8): *GuardError and the sentinel errors flow through
// multiple wrapping layers (executor → engine → facade), so
//
//   - sentinel error variables (package-level `Err…` vars of type error)
//     must be matched with errors.Is, never ==/!= (wrapping breaks
//     identity);
//   - concrete error types must be extracted with errors.As, never a
//     direct type assertion on an error value;
//   - fmt.Errorf calls whose arguments include an error must wrap it with
//     %w, so errors.Is/As keep seeing the chain.
//
// Deliberate chain breaks are annotated `// prefdb:nowrap <reason>` on
// the line.
var WrapCheck = &Analyzer{
	Name: "wrapcheck",
	Doc:  "typed errors must be wrapped with %w and matched with errors.Is/As",
	Run:  runWrapCheck,
}

func runWrapCheck(pass *Pass) error {
	pass.WalkStack(func(n ast.Node, stack []ast.Node) {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			if x.Op != token.EQL && x.Op != token.NEQ {
				return
			}
			for _, side := range []ast.Expr{x.X, x.Y} {
				if !isSentinelErr(pass, side) {
					continue
				}
				if _, ok := pass.Marker(x.Pos(), "nowrap"); ok {
					return
				}
				pass.Reportf(x.Pos(),
					"sentinel error compared with %s; wrapped errors break identity — use errors.Is", x.Op)
				return
			}
		case *ast.TypeAssertExpr:
			if x.Type == nil {
				return // type switch handled by the compiler's exhaustiveness
			}
			tv, ok := pass.TypesInfo.Types[x.X]
			if !ok || !types.IsInterface(tv.Type) {
				return
			}
			if name, _ := namedOf(tv.Type); name != "error" && !isErrorInterface(tv.Type) {
				return
			}
			assertedTV, ok := pass.TypesInfo.Types[x.Type]
			if !ok || !IsErrorType(assertedTV.Type) {
				return
			}
			if _, ok := pass.Marker(x.Pos(), "nowrap"); ok {
				return
			}
			pass.Reportf(x.Pos(),
				"type assertion on an error; wrapped errors defeat it — use errors.As")
		case *ast.CallExpr:
			if !isPkgFunc(pass, x.Fun, "fmt", "Errorf") || len(x.Args) < 2 {
				return
			}
			format, ok := stringLit(x.Args[0])
			if !ok || strings.Contains(format, "%w") {
				return
			}
			for _, arg := range x.Args[1:] {
				tv, ok := pass.TypesInfo.Types[arg]
				if !ok || !IsErrorType(tv.Type) {
					continue
				}
				if _, ok := pass.Marker(x.Pos(), "nowrap"); ok {
					return
				}
				pass.Reportf(x.Pos(),
					"fmt.Errorf formats an error without %%w; errors.Is/As lose the chain — wrap it (or annotate // prefdb:nowrap <reason>)")
				return
			}
		}
	})
	return nil
}

// isSentinelErr reports whether e names a package-level error variable
// whose name starts with Err (the sentinel convention).
func isSentinelErr(pass *Pass, e ast.Expr) bool {
	var obj types.Object
	switch x := e.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[x]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[x.Sel]
	default:
		return false
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Parent() == nil || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return false
	}
	if !strings.HasPrefix(v.Name(), "Err") {
		return false
	}
	name, _ := namedOf(v.Type())
	return name == "error" || isErrorInterface(v.Type())
}

func isErrorInterface(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isPkgFunc reports whether fun is a selector <pkg>.<name> where <pkg> is
// an import of the named package (matched by package name).
func isPkgFunc(pass *Pass, fun ast.Expr, pkgName, funcName string) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != funcName {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Name() == pkgName
}

// stringLit extracts a constant string value from an expression.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s := lit.Value
	if len(s) >= 2 {
		return s[1 : len(s)-1], true
	}
	return "", false
}
