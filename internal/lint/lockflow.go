// Flow-sensitive lock-set dataflow over function bodies, the engine under
// the lockset and lockorder analyzers. The interpreter walks each function
// structurally, carrying the set of held mutexes: branches fork the state
// and merge by intersection (must-hold semantics), deferred unlocks are
// marked for release at function exit, loops are checked for net lock
// acquisition or release per iteration, and `go` bodies start from an
// empty set (a new goroutine inherits no locks). One-level summaries of
// unexported same-package helpers (what they require, release and acquire)
// let the analysis see through the lock-helper idiom without becoming
// inter-procedural in general.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockID identifies one mutex during flow analysis: the types.Object of
// the mutex field or variable plus the rendered base expression, so two
// fields of the same type on different instances ("a.mu" vs "b.mu") stay
// distinct while "r.c.mu" and "c.mu" reaching the same field object can
// still be matched by object when needed.
type lockID struct {
	obj  types.Object
	base string
}

// heldInfo records how one held lock was acquired.
type heldInfo struct {
	pos      token.Pos
	name     string // display form, e.g. "t.colMu"
	canon    string // global name "pkg.Type.field" / "pkg.var"; "" for locals
	rlock    bool
	deferred bool // release scheduled by a defer
	seeded   bool // held at entry per prefdb:locked
	// acqObj carries the mutex object when the info lives in a summary's
	// acquires list (the lockID is reconstructed at the call site).
	acqObj types.Object
}

// lockState is the set of locks held on the current path.
type lockState struct {
	held map[lockID]heldInfo
}

func newLockState() *lockState { return &lockState{held: map[lockID]heldInfo{}} }

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.held {
		c.held[k] = v
	}
	return c
}

// findObj locates a held lock by mutex object identity, ignoring the base
// expression (r.c.mu and c.mu are the same lock when c is shared).
func (s *lockState) findObj(obj types.Object) (lockID, bool) {
	if obj == nil {
		return lockID{}, false
	}
	for k := range s.held {
		if k.obj == obj {
			return k, true
		}
	}
	return lockID{}, false
}

func (s *lockState) holdsObj(obj types.Object) bool {
	_, ok := s.findObj(obj)
	return ok
}

// list returns the held locks sorted by display name, for deterministic
// diagnostics and hook payloads.
func (s *lockState) list() []heldInfo {
	out := make([]heldInfo, 0, len(s.held))
	for _, v := range s.held {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// lockSummary is the one-level effect summary of an unexported helper.
type lockSummary struct {
	requires []types.Object // locks that must be held at entry (prefdb:locked)
	releases []types.Object // entry locks absent on every return path
	acquires []heldInfo     // locks held on every return path but not at entry
}

// lockHooks lets lockorder observe acquisitions and calls during a quiet
// flow run without duplicating the interpreter.
type lockHooks struct {
	acquire func(funcKey string, held []heldInfo, canon string, pos token.Pos)
	call    func(funcKey string, held []heldInfo, callee *types.Func, pos token.Pos)
}

type callMode int

const (
	callNormal callMode = iota
	callDefer
)

// lockFlow is one flow-analysis run over a package.
type lockFlow struct {
	pass      *Pass
	guards    map[types.Object]types.Object // guarded field -> mutex object
	summaries map[types.Object]*lockSummary
	quiet     bool // collect facts only, no diagnostics
	hooks     *lockHooks
	pkgName   string

	// Per-function state.
	funcKey     string
	escapes     map[types.Object]bool // prefdb:lock-escapes targets
	escapeNames map[string]bool
	exits       []map[lockID]heldInfo
	goSeq       int
}

// analyzePackage runs the flow interpreter over every function body.
func (fl *lockFlow) analyzePackage() {
	for _, f := range fl.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fl.analyzeDecl(fd)
		}
	}
}

func (fl *lockFlow) analyzeDecl(fd *ast.FuncDecl) {
	fl.funcKey = fl.declKey(fd)
	fl.exits = nil
	fl.goSeq = 0
	fl.escapes = map[types.Object]bool{}
	fl.escapeNames = map[string]bool{}
	st := newLockState()
	if args, ok := fl.pass.Marker(fd.Pos(), "locked", fd.Doc); ok {
		for _, path := range strings.Fields(args) {
			id, name, canon, ok := fl.resolveLockPath(fd, path)
			if !ok {
				if !fl.quiet {
					fl.pass.Reportf(fd.Pos(), "prefdb:locked names %q, which does not resolve to a mutex reachable from the parameters", path)
				}
				continue
			}
			st.held[id] = heldInfo{pos: fd.Pos(), name: name, canon: canon, seeded: true}
		}
	}
	if args, ok := fl.pass.Marker(fd.Pos(), "lock-escapes", fd.Doc); ok {
		for _, path := range strings.Fields(args) {
			fl.escapeNames[path] = true
			if id, _, _, ok := fl.resolveLockPath(fd, path); ok && id.obj != nil {
				fl.escapes[id.obj] = true
			}
		}
	}
	if !fl.block(fd.Body.List, st) {
		fl.ret(fd.Body.Rbrace, st)
	}
}

// declKey names a function for cross-package lockorder bookkeeping,
// matching funcObjKey for the same declaration.
func (fl *lockFlow) declKey(fd *ast.FuncDecl) string {
	if obj, ok := fl.pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		return funcObjKey(obj)
	}
	return fl.pkgName + "." + fd.Name.Name
}

// funcObjKey renders pkg.Type.method or pkg.func for a function object.
func funcObjKey(f *types.Func) string {
	pkg := ""
	if f.Pkg() != nil {
		pkg = f.Pkg().Name()
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		if rt, _ := namedOf(sig.Recv().Type()); rt != "" {
			return pkg + "." + rt + "." + f.Name()
		}
	}
	return pkg + "." + f.Name()
}

// resolveLockPath resolves an annotation path like "mu" or "c.mu" against
// the function's receiver and parameters to a lock identity. A single
// name may be a receiver field, a parameter, or a package-level mutex.
func (fl *lockFlow) resolveLockPath(fd *ast.FuncDecl, path string) (lockID, string, string, bool) {
	parts := strings.Split(path, ".")
	info := fl.pass.TypesInfo

	var roots []*ast.Ident
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			roots = append(roots, f.Names...)
		}
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			roots = append(roots, f.Names...)
		}
	}

	walk := func(rootName string, rootType types.Type, fields []string) (lockID, string, string, bool) {
		t := rootType
		base := rootName
		for i, name := range fields {
			v := fieldOf(t, name)
			if v == nil {
				return lockID{}, "", "", false
			}
			if i == len(fields)-1 {
				canon := ""
				if ot, op := namedOf(t); ot != "" {
					canon = op + "." + ot + "." + name
				}
				return lockID{obj: v, base: base}, base + "." + name, canon, true
			}
			base += "." + name
			t = v.Type()
		}
		return lockID{}, "", "", false
	}

	// parts[0] names a receiver or parameter directly.
	if len(parts) > 1 {
		for _, r := range roots {
			if r.Name == parts[0] {
				if obj := info.Defs[r]; obj != nil {
					return walk(r.Name, obj.Type(), parts[1:])
				}
			}
		}
	}
	// The whole path is fields of the receiver ("mu", "c.mu" via field c).
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			for _, r := range f.Names {
				if obj := info.Defs[r]; obj != nil {
					if id, name, canon, ok := walk(r.Name, obj.Type(), parts); ok {
						return id, name, canon, true
					}
				}
			}
		}
	}
	// A package-level mutex variable.
	if len(parts) == 1 {
		if obj := fl.pass.Pkg.Scope().Lookup(parts[0]); obj != nil {
			return lockID{obj: obj}, parts[0], fl.pkgName + "." + parts[0], true
		}
	}
	return lockID{}, "", "", false
}

// fieldOf finds a struct field by name after stripping pointers/aliases.
func fieldOf(t types.Type, name string) *types.Var {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			t = x.Underlying()
		case *types.Alias:
			t = types.Unalias(t)
		case *types.Struct:
			for i := 0; i < x.NumFields(); i++ {
				if f := x.Field(i); f.Name() == name {
					return f
				}
			}
			return nil
		default:
			return nil
		}
	}
}

// report emits a diagnostic unless the run is quiet or the line carries a
// prefdb:lockset-ok suppression.
func (fl *lockFlow) report(pos token.Pos, format string, args ...any) {
	if fl.quiet {
		return
	}
	if _, ok := fl.pass.Marker(pos, "lockset-ok"); ok {
		return
	}
	fl.pass.Reportf(pos, format, args...)
}

// block interprets a statement list; true means every path terminated.
func (fl *lockFlow) block(list []ast.Stmt, st *lockState) bool {
	for _, s := range list {
		if fl.stmt(s, st) {
			return true
		}
	}
	return false
}

// stmt interprets one statement against st, returning true when control
// cannot fall through to the next statement (return/break/continue/goto).
func (fl *lockFlow) stmt(s ast.Stmt, st *lockState) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		return fl.block(s.List, st)
	case *ast.ExprStmt:
		fl.expr(s.X, st)
	case *ast.SendStmt:
		fl.expr(s.Chan, st)
		fl.expr(s.Value, st)
	case *ast.IncDecStmt:
		fl.expr(s.X, st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			fl.expr(e, st)
		}
		for _, e := range s.Lhs {
			fl.expr(e, st)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						fl.expr(e, st)
					}
				}
			}
		}
	case *ast.DeferStmt:
		fl.deferCall(s.Call, st)
	case *ast.GoStmt:
		fl.goStmt(s, st)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			fl.expr(e, st)
		}
		fl.ret(s.Pos(), st)
		return true
	case *ast.BranchStmt:
		// break/continue/goto/fallthrough end the current path; the loop
		// join below conservatively intersects with the pre-loop state.
		return true
	case *ast.LabeledStmt:
		return fl.stmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			fl.stmt(s.Init, st)
		}
		fl.expr(s.Cond, st)
		var branches []*lockState
		thenSt := st.clone()
		if !fl.stmt(s.Body, thenSt) {
			branches = append(branches, thenSt)
		}
		elseSt := st.clone()
		if s.Else != nil {
			if !fl.stmt(s.Else, elseSt) {
				branches = append(branches, elseSt)
			}
		} else {
			branches = append(branches, elseSt)
		}
		return fl.mergeInto(st, branches)
	case *ast.ForStmt:
		if s.Init != nil {
			fl.stmt(s.Init, st)
		}
		if s.Cond != nil {
			fl.expr(s.Cond, st)
		}
		fl.loop(s.Pos(), s.Body, s.Post, st)
	case *ast.RangeStmt:
		fl.expr(s.X, st)
		fl.loop(s.Pos(), s.Body, nil, st)
	case *ast.SwitchStmt:
		if s.Init != nil {
			fl.stmt(s.Init, st)
		}
		if s.Tag != nil {
			fl.expr(s.Tag, st)
		}
		return fl.clauses(s.Body.List, st, true)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			fl.stmt(s.Init, st)
		}
		fl.stmt(s.Assign, st)
		return fl.clauses(s.Body.List, st, true)
	case *ast.SelectStmt:
		if len(s.Body.List) == 0 {
			return true // select{} blocks forever
		}
		// A select without default still runs exactly one of its cases.
		return fl.clauses(s.Body.List, st, false)
	}
	return false
}

// clauses interprets switch/select cases as parallel branches. With
// implicitDefault, a missing default contributes the unmodified pre-state.
func (fl *lockFlow) clauses(list []ast.Stmt, st *lockState, implicitDefault bool) bool {
	var branches []*lockState
	hasDefault := false
	for _, c := range list {
		cs := st.clone()
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				fl.expr(e, cs)
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				fl.stmt(c.Comm, cs)
			}
			body = c.Body
		}
		if !fl.block(body, cs) {
			branches = append(branches, cs)
		}
	}
	if implicitDefault && !hasDefault {
		branches = append(branches, st.clone())
	}
	return fl.mergeInto(st, branches)
}

// mergeInto joins the live branch states into st by intersection; true
// when no branch falls through.
func (fl *lockFlow) mergeInto(st *lockState, branches []*lockState) bool {
	if len(branches) == 0 {
		return true
	}
	st.held = branches[0].held
	for _, b := range branches[1:] {
		for k, info := range st.held {
			other, ok := b.held[k]
			if !ok {
				delete(st.held, k)
				continue
			}
			if other.deferred && !info.deferred {
				info.deferred = true
				st.held[k] = info
			}
		}
	}
	return false
}

// loop interprets a loop body once and checks that an iteration is
// lock-neutral: a lock acquired in the body and still held at its end
// double-locks on the next iteration, and releasing a lock that was held
// at loop entry unlocks an unheld mutex on the second pass.
func (fl *lockFlow) loop(loopPos token.Pos, body *ast.BlockStmt, post ast.Stmt, st *lockState) {
	pre := st.clone()
	term := fl.stmt(body, st)
	if !term && post != nil {
		fl.stmt(post, st)
	}
	if term {
		// The body never completes an iteration (it returns or breaks on
		// every path); the loop runs at most once and falls out with the
		// entry state.
		st.held = pre.held
		return
	}
	for k, info := range st.held {
		if _, was := pre.held[k]; was {
			continue
		}
		if info.deferred {
			fl.report(info.pos, "%s is locked in a loop body with only a deferred unlock; defers run at function exit, so the next iteration double-locks it", info.name)
		} else {
			fl.report(info.pos, "%s is still held at the end of the loop body; the next iteration would double-lock it", info.name)
		}
	}
	for k, info := range pre.held {
		if _, still := st.held[k]; still || info.deferred {
			continue
		}
		fl.report(loopPos, "%s held at loop entry is released inside the loop body; a second iteration would unlock an unheld mutex", info.name)
	}
	// After the loop: only locks held both before and after an iteration.
	for k := range st.held {
		if _, ok := pre.held[k]; !ok {
			delete(st.held, k)
		}
	}
}

// ret records an exit snapshot (deferred releases applied) and flags
// locks leaking out of the function.
func (fl *lockFlow) ret(pos token.Pos, st *lockState) {
	exit := map[lockID]heldInfo{}
	for k, info := range st.held {
		if info.deferred {
			continue
		}
		exit[k] = info
	}
	fl.exits = append(fl.exits, exit)
	if fl.quiet {
		return
	}
	for k, info := range exit {
		if info.seeded || fl.escapes[k.obj] || fl.escapeNames[info.name] {
			continue
		}
		fl.report(pos, "%s is still held at return (locked at %s); unlock on every path, defer the unlock, or annotate the function prefdb:lock-escapes %s",
			info.name, fl.pass.Fset.Position(info.pos), lastComponent(info.name))
	}
}

func lastComponent(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// expr scans an expression for lock operations, calls, guarded-field
// accesses and function literals.
func (fl *lockFlow) expr(e ast.Expr, st *lockState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal passed as a callback (or stored) is assumed to run
			// synchronously under the current lock set; its state changes
			// do not flow back.
			fl.subFunc(n, st.clone(), fl.funcKey)
			return false
		case *ast.CallExpr:
			fl.call(n, st, callNormal)
			return false
		case *ast.SelectorExpr:
			fl.fieldAccess(n, st)
			return true
		}
		return true
	})
}

// subFunc interprets a function literal body with its own exit tracking.
func (fl *lockFlow) subFunc(lit *ast.FuncLit, st *lockState, key string) {
	savedExits, savedKey := fl.exits, fl.funcKey
	fl.exits, fl.funcKey = nil, key
	if !fl.block(lit.Body.List, st) {
		fl.ret(lit.Body.Rbrace, st)
	}
	fl.exits, fl.funcKey = savedExits, savedKey
}

// fieldAccess enforces prefdb:guarded-by at one selector.
func (fl *lockFlow) fieldAccess(sel *ast.SelectorExpr, st *lockState) {
	if fl.quiet || len(fl.guards) == 0 {
		return
	}
	selection := fl.pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return
	}
	guard, ok := fl.guards[selection.Obj()]
	if !ok || st.holdsObj(guard) {
		return
	}
	fl.report(sel.Pos(), "access to %s.%s without holding %s (prefdb:guarded-by %s)",
		typeNameOf(selection), sel.Sel.Name, guard.Name(), guard.Name())
}

// goStmt evaluates the spawn's arguments in the current goroutine and the
// spawned body with an empty lock set (locks do not cross goroutines).
func (fl *lockFlow) goStmt(g *ast.GoStmt, st *lockState) {
	for _, a := range g.Call.Args {
		fl.expr(a, st)
	}
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		fl.goSeq++
		fl.subFunc(lit, newLockState(), fmt.Sprintf("%s#go%d", fl.funcKey, fl.goSeq))
	} else {
		fl.expr(g.Call.Fun, st)
	}
}

// deferCall interprets `defer f(...)`: unlocks become exit releases, a
// deferred literal runs against a copy of the current set, and helper
// summaries apply their releases at exit.
func (fl *lockFlow) deferCall(call *ast.CallExpr, st *lockState) {
	for _, a := range call.Args {
		fl.expr(a, st)
	}
	if op, id, name, _, ok := fl.lockOp(call); ok {
		switch op {
		case "Unlock", "RUnlock":
			k := id
			if _, held := st.held[k]; !held {
				var found bool
				if k, found = st.findObj(id.obj); !found {
					fl.report(call.Pos(), "deferred %s of %s, which is not held at the defer statement", op, name)
					return
				}
			}
			info := st.held[k]
			info.deferred = true
			st.held[k] = info
		default:
			fl.report(call.Pos(), "deferred %s of %s; acquiring a lock at function exit is almost certainly a bug", op, name)
		}
		return
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		sub := st.clone()
		fl.subFunc(lit, sub, fl.funcKey)
		// Locks the deferred literal released become exit releases.
		for k, info := range st.held {
			if _, still := sub.held[k]; !still {
				info.deferred = true
				st.held[k] = info
			}
		}
		return
	}
	if callee := calleeOf(fl.pass, call); callee != nil {
		if sum := fl.summaries[callee]; sum != nil {
			for _, rel := range sum.releases {
				if k, ok := st.findObj(rel); ok {
					info := st.held[k]
					info.deferred = true
					st.held[k] = info
				}
			}
		}
	}
}

// call interprets one call expression: lock operations, blocking drains,
// helper summaries, then the nested expressions.
func (fl *lockFlow) call(call *ast.CallExpr, st *lockState, mode callMode) {
	if op, id, name, canon, ok := fl.lockOp(call); ok {
		fl.applyLock(op, id, name, canon, call.Pos(), st)
		return
	}
	if desc, ok := fl.drainCall(call); ok && mode == callNormal && len(st.held) > 0 {
		held := st.list()
		fl.report(call.Pos(), "blocking %s while holding %s; a drain can wait on work that needs the same lock — release it first", desc, held[0].name)
	}
	callee := calleeOf(fl.pass, call)
	if callee != nil && fl.hooks != nil && fl.hooks.call != nil {
		fl.hooks.call(fl.funcKey, st.list(), callee, call.Pos())
	}
	if callee != nil {
		if sum := fl.summaries[callee]; sum != nil {
			for _, req := range sum.requires {
				if !st.holdsObj(req) {
					fl.report(call.Pos(), "call to %s requires %s held at entry (prefdb:locked)", callee.Name(), req.Name())
				}
			}
			for _, rel := range sum.releases {
				if k, ok := st.findObj(rel); ok {
					delete(st.held, k)
				}
			}
			for _, acq := range sum.acquires {
				if acq.acqObj == nil || st.holdsObj(acq.acqObj) {
					continue
				}
				st.held[lockID{obj: acq.acqObj}] = heldInfo{pos: call.Pos(), name: acq.name, canon: acq.canon}
			}
		}
	}
	fl.expr(call.Fun, st)
	for _, a := range call.Args {
		fl.expr(a, st)
	}
}

// applyLock transitions the state for one Lock/Unlock/RLock/RUnlock.
func (fl *lockFlow) applyLock(op string, id lockID, name, canon string, pos token.Pos, st *lockState) {
	switch op {
	case "Lock", "RLock":
		if fl.hooks != nil && fl.hooks.acquire != nil {
			fl.hooks.acquire(fl.funcKey, st.list(), canon, pos)
		}
		if prev, dup := st.held[id]; dup {
			fl.report(pos, "%s is locked again while already held (acquired at %s); double-lock self-deadlocks",
				name, fl.pass.Fset.Position(prev.pos))
		}
		st.held[id] = heldInfo{pos: pos, name: name, canon: canon, rlock: op == "RLock"}
	case "Unlock", "RUnlock":
		k := id
		info, held := st.held[k]
		if !held {
			var found bool
			if k, found = st.findObj(id.obj); !found {
				fl.report(pos, "%s of %s, which is not held on this path; unlocking an unheld mutex panics", op, name)
				return
			}
			info = st.held[k]
		}
		if info.rlock != (op == "RUnlock") {
			if info.rlock {
				fl.report(pos, "%s was acquired with RLock but released with Unlock", name)
			} else {
				fl.report(pos, "%s was acquired with Lock but released with RUnlock", name)
			}
		}
		delete(st.held, k)
	}
}

// lockOp classifies mu.Lock/Unlock/RLock/RUnlock calls and identifies the
// mutex. Matching is by type name (Mutex/RWMutex) so fixtures with
// stand-in types behave like sync.
func (fl *lockFlow) lockOp(call *ast.CallExpr) (op string, id lockID, name, canon string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return
	}
	tn, _ := NamedType(fl.pass.TypesInfo, sel.X)
	if tn != "Mutex" && tn != "RWMutex" {
		return
	}
	op = sel.Sel.Name
	info := fl.pass.TypesInfo
	switch x := sel.X.(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		canon := ""
		if v, isVar := obj.(*types.Var); isVar && !v.IsField() && v.Parent() == fl.pass.Pkg.Scope() {
			canon = fl.pkgName + "." + v.Name()
		}
		return op, lockID{obj: obj}, x.Name, canon, true
	case *ast.SelectorExpr:
		var obj types.Object
		canon := ""
		if s := info.Selections[x]; s != nil && s.Kind() == types.FieldVal {
			obj = s.Obj()
			if rt, rp := namedOf(s.Recv()); rt != "" {
				canon = rp + "." + rt + "." + x.Sel.Name
			}
		} else if u := info.Uses[x.Sel]; u != nil {
			obj = u
			if pi, isIdent := x.X.(*ast.Ident); isIdent {
				if pn, isPkg := info.Uses[pi].(*types.PkgName); isPkg {
					canon = pn.Imported().Name() + "." + x.Sel.Name
				}
			}
		}
		base := renderExpr(x.X)
		return op, lockID{obj: obj, base: base}, base + "." + x.Sel.Name, canon, true
	default:
		base := renderExpr(sel.X)
		return op, lockID{base: base}, base, "", true
	}
}

// drainCall recognizes blocking waits that must not run under a mutex:
// WaitGroup.Wait and the catalog's full-table Stats/WaitCompaction.
func (fl *lockFlow) drainCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	tn, _ := NamedType(fl.pass.TypesInfo, sel.X)
	switch sel.Sel.Name {
	case "Wait":
		if tn == "WaitGroup" {
			return "WaitGroup.Wait", true
		}
	case "Stats":
		if tn == "Table" {
			return "Table.Stats (lazy full-table analyze)", true
		}
	case "WaitCompaction":
		if tn == "Table" {
			return "Table.WaitCompaction", true
		}
	}
	return "", false
}

// calleeOf resolves a call's static target function, nil for interface
// methods, function values and builtins.
func calleeOf(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if s := pass.TypesInfo.Selections[fun]; s != nil {
			if s.Kind() == types.MethodVal {
				if f, ok := s.Obj().(*types.Func); ok {
					// Interface dispatch has no body to summarize.
					if _, isIface := s.Recv().Underlying().(*types.Interface); isIface {
						return nil
					}
					return f
				}
			}
			return nil
		}
		if f, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// renderExpr prints the base expression of a lock for identity and
// diagnostics.
func renderExpr(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return renderExpr(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return renderExpr(e.X)
	case *ast.StarExpr:
		return "*" + renderExpr(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() + renderExpr(e.X)
	case *ast.CallExpr:
		return renderExpr(e.Fun) + "()"
	case *ast.IndexExpr:
		return renderExpr(e.X) + "[_]"
	default:
		return "?"
	}
}

// buildLockSummaries computes one-level effect summaries for unexported
// functions: what prefdb:locked requires, which entry locks are released
// on every path, and which new locks are held on every path out. The
// summary pass runs quiet and without nested summaries, keeping the
// analysis strictly one level deep.
func buildLockSummaries(pass *Pass, guards map[types.Object]types.Object) map[types.Object]*lockSummary {
	sums := map[types.Object]*lockSummary{}
	fl := &lockFlow{pass: pass, guards: guards, quiet: true, pkgName: pass.Pkg.Name()}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name.IsExported() {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fl.analyzeDecl(fd)

			// Seeds: the locks prefdb:locked put in the entry state.
			seeds := map[types.Object]bool{}
			var seedOrder []types.Object
			if args, hasMarker := pass.Marker(fd.Pos(), "locked", fd.Doc); hasMarker {
				for _, path := range strings.Fields(args) {
					if id, _, _, ok := fl.resolveLockPath(fd, path); ok && id.obj != nil {
						seeds[id.obj] = true
						seedOrder = append(seedOrder, id.obj)
					}
				}
			}
			// Merged exit: locks held on every return path.
			exit := map[types.Object]heldInfo{}
			if len(fl.exits) > 0 {
				for k, info := range fl.exits[0] {
					if k.obj != nil {
						exit[k.obj] = info
					}
				}
				for _, e := range fl.exits[1:] {
					byObj := map[types.Object]bool{}
					for k := range e {
						if k.obj != nil {
							byObj[k.obj] = true
						}
					}
					for o := range exit {
						if !byObj[o] {
							delete(exit, o)
						}
					}
				}
			}
			sum := &lockSummary{}
			for _, o := range seedOrder {
				sum.requires = append(sum.requires, o)
				if _, still := exit[o]; !still {
					sum.releases = append(sum.releases, o)
				}
			}
			for o, info := range exit {
				if seeds[o] {
					continue
				}
				sum.acquires = append(sum.acquires, heldInfo{name: info.name, canon: info.canon, acqObj: o})
			}
			sort.Slice(sum.acquires, func(i, j int) bool { return sum.acquires[i].name < sum.acquires[j].name })
			if len(sum.requires)+len(sum.releases)+len(sum.acquires) > 0 {
				sums[obj] = sum
			}
		}
	}
	return sums
}
