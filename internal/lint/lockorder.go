package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the repo-global lock acquisition graph from the
// lock-set facts: an edge A -> B is recorded whenever mutex B is acquired
// while A is held — directly inside one function, or transitively when a
// function holding A calls (through any chain of statically resolvable
// calls) a function that acquires B. Locks are identified by their global
// name (pkg.Type.field for struct mutexes, pkg.var for package-level
// ones); function-local mutexes cannot participate in cross-goroutine
// deadlocks and are excluded.
//
// Cycles in the graph are potential deadlocks (two goroutines acquiring
// the same pair of locks in opposite orders) and are reported at the
// earliest edge of the cycle. The acyclic remainder is the derived lock
// hierarchy, exposed via LockHierarchy for `prefdbvet -lockgraph` and
// pinned in DESIGN.md §16; CI diffs the two so the graph cannot drift
// silently.
var LockOrder = &Analyzer{
	Name:   "lockorder",
	Doc:    "repo-global lock acquisition graph: cycles are potential deadlocks; the derived hierarchy is pinned in DESIGN.md §16",
	Run:    runLockOrder,
	Begin:  beginLockOrder,
	Finish: finishLockOrder,
}

// loCall is one call site annotated with the locks held around it.
type loCall struct {
	held   []string
	callee string
	pos    token.Position
}

// loFunc collects one function's direct acquisitions and outgoing calls.
type loFunc struct {
	acquires map[string]bool
	calls    []loCall
}

// lockOrderState is the whole-program fact base, reset per Run.
var lockOrderState struct {
	funcs map[string]*loFunc
	// edges maps A -> B to the earliest position where B was acquired (or
	// a B-acquiring callee was entered) under A.
	edges map[[2]string]token.Position
	hier  string
}

func beginLockOrder() {
	lockOrderState.funcs = map[string]*loFunc{}
	lockOrderState.edges = map[[2]string]token.Position{}
	lockOrderState.hier = ""
}

func loFuncFor(key string) *loFunc {
	fn := lockOrderState.funcs[key]
	if fn == nil {
		fn = &loFunc{acquires: map[string]bool{}}
		lockOrderState.funcs[key] = fn
	}
	return fn
}

// earlierPos orders positions by file, then line/column.
func earlierPos(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

func addEdge(from, to string, pos token.Position) {
	key := [2]string{from, to}
	if prev, ok := lockOrderState.edges[key]; !ok || earlierPos(pos, prev) {
		lockOrderState.edges[key] = pos
	}
}

// runLockOrder collects per-package facts through a quiet flow run.
func runLockOrder(pass *Pass) error {
	if lockOrderState.funcs == nil {
		beginLockOrder()
	}
	sums := buildLockSummaries(pass, nil)
	fl := &lockFlow{
		pass:      pass,
		summaries: sums,
		quiet:     true,
		pkgName:   pass.Pkg.Name(),
		hooks: &lockHooks{
			acquire: func(funcKey string, held []heldInfo, canon string, pos token.Pos) {
				if canon == "" {
					return
				}
				loFuncFor(funcKey).acquires[canon] = true
				p := pass.Fset.Position(pos)
				for _, h := range held {
					if h.canon != "" && h.canon != canon {
						addEdge(h.canon, canon, p)
					}
				}
			},
			call: func(funcKey string, held []heldInfo, callee *types.Func, pos token.Pos) {
				var names []string
				for _, h := range held {
					if h.canon != "" {
						names = append(names, h.canon)
					}
				}
				loFuncFor(funcKey).calls = append(loFuncFor(funcKey).calls, loCall{
					held:   names,
					callee: funcObjKey(callee),
					pos:    pass.Fset.Position(pos),
				})
			},
		},
	}
	fl.analyzePackage()
	return nil
}

// finishLockOrder closes the call graph, derives the acquisition edges,
// reports cycles, and renders the hierarchy.
func finishLockOrder(report func(Diagnostic)) {
	funcs := lockOrderState.funcs

	// Transitive closure: total[f] = every lock f may acquire, directly or
	// through any chain of statically resolved calls.
	total := map[string]map[string]bool{}
	for k, fn := range funcs {
		set := map[string]bool{}
		for l := range fn.acquires {
			set[l] = true
		}
		total[k] = set
	}
	for changed := true; changed; {
		changed = false
		for k, fn := range funcs {
			for _, c := range fn.calls {
				for l := range total[c.callee] {
					if !total[k][l] {
						total[k][l] = true
						changed = true
					}
				}
			}
		}
	}

	// Call edges: holding A across a call that (transitively) acquires B.
	for _, fn := range funcs {
		for _, c := range fn.calls {
			if len(c.held) == 0 {
				continue
			}
			for l := range total[c.callee] {
				for _, h := range c.held {
					if h != l {
						addEdge(h, l, c.pos)
					}
				}
			}
		}
	}

	// Adjacency over the edge set only: locks with no ordering edge do not
	// constrain anything and stay out of the hierarchy.
	succ := map[string][]string{}
	nodeSet := map[string]bool{}
	for e := range lockOrderState.edges {
		succ[e[0]] = append(succ[e[0]], e[1])
		nodeSet[e[0]], nodeSet[e[1]] = true, true
	}
	var nodes []string
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, s := range succ {
		sort.Strings(s)
	}

	cyclic := reportCycles(nodes, succ, report)
	lockOrderState.hier = renderHierarchy(nodes, cyclic)
}

// reportCycles finds strongly connected components (Tarjan) and reports
// each non-trivial one as a potential deadlock; it returns the set of
// locks on a cycle.
func reportCycles(nodes []string, succ map[string][]string, report func(Diagnostic)) map[string]bool {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var sccs [][]string

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succ[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}

	cyclic := map[string]bool{}
	for _, scc := range sccs {
		selfLoop := false
		if len(scc) == 1 {
			for _, w := range succ[scc[0]] {
				if w == scc[0] {
					selfLoop = true
				}
			}
		}
		if len(scc) < 2 && !selfLoop {
			continue
		}
		sort.Strings(scc)
		inSCC := map[string]bool{}
		for _, n := range scc {
			cyclic[n] = true
			inSCC[n] = true
		}
		// Anchor the diagnostic at the earliest edge inside the component.
		var pos token.Position
		havePos := false
		for e, p := range lockOrderState.edges {
			if inSCC[e[0]] && inSCC[e[1]] && (!havePos || earlierPos(p, pos)) {
				pos = p
				havePos = true
			}
		}
		report(Diagnostic{
			Pos:      pos,
			Analyzer: "lockorder",
			Message: fmt.Sprintf("lock-order cycle (potential deadlock): %s -> %s; acquire these locks in one fixed order and pin it in DESIGN.md §16",
				strings.Join(scc, " -> "), scc[0]),
		})
	}
	return cyclic
}

// renderHierarchy prints the derived acquisition order: every lock that
// participates in an ordering edge, then the sorted edge list. The format
// is committed verbatim in DESIGN.md §16 and diffed by CI.
func renderHierarchy(nodes []string, cyclic map[string]bool) string {
	var b strings.Builder
	b.WriteString("# prefdb lock hierarchy — derived by `prefdbvet -lockgraph` (lockorder analyzer).\n")
	b.WriteString("# \"edge A -> B\" means B is acquired while A is held somewhere in the tree;\n")
	b.WriteString("# acquire locks top-down along the arrows. Locks with no ordering edge are\n")
	b.WriteString("# unconstrained and omitted. A new edge that closes a cycle is a deadlock\n")
	b.WriteString("# candidate and fails the lockorder analyzer.\n")
	for _, n := range nodes {
		if cyclic[n] {
			fmt.Fprintf(&b, "lock %s  # ON A CYCLE\n", n)
		} else {
			fmt.Fprintf(&b, "lock %s\n", n)
		}
	}
	var edges [][2]string
	for e := range lockOrderState.edges {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "edge %s -> %s\n", e[0], e[1])
	}
	return b.String()
}

// LockHierarchy returns the lock acquisition hierarchy derived by the
// most recent Run that included the lockorder analyzer.
func LockHierarchy() string { return lockOrderState.hier }
