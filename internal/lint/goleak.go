package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak ties every goroutine spawn to a visible join point. A `go`
// statement passes when the spawned body and its spawning function show
// one of the accepted lifecycle shapes:
//
//   - WaitGroup pairing: the body calls wg.Done() and the spawner calls
//     wg.Add(...) on the same WaitGroup (the Wait may live elsewhere, as
//     in server.Serve / server.Close);
//   - context loop: the body receives from ctx.Done();
//   - joined channel: the body closes or sends on a channel the spawner
//     receives from, or the body receives from a channel the spawner
//     closes or sends on (shutdown signal).
//
// Anything else must carry `prefdb:fire-and-forget <reason>` on the go
// statement — the reason is mandatory, an empty marker is itself a
// finding. The analyzer is intentionally shallow about where the join
// runs (same function only), which is exactly the discipline the MVCC
// and scatter-gather work needs: a spawn whose join is not visible near
// the spawn site is a review hazard even when some distant code joins it.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "every go statement needs a visible join (WaitGroup Add/Done, joined channel, ctx.Done loop) or a reasoned prefdb:fire-and-forget marker",
	Run:  runGoLeak,
}

// chanRef identifies a channel or WaitGroup operand for matching between
// the goroutine body and its spawner.
type chanRef struct {
	obj  types.Object
	name string
}

func refOf(info *types.Info, e ast.Expr) chanRef {
	e = ast.Unparen(e)
	var obj types.Object
	switch x := e.(type) {
	case *ast.Ident:
		obj = info.Uses[x]
	case *ast.SelectorExpr:
		if s := info.Selections[x]; s != nil {
			obj = s.Obj()
		} else {
			obj = info.Uses[x.Sel]
		}
	}
	return chanRef{obj: obj, name: renderExpr(e)}
}

func refsMatch(a, b chanRef) bool {
	if a.obj != nil && b.obj != nil {
		return a.obj == b.obj
	}
	return a.name == b.name && a.name != "?"
}

func anyMatch(as, bs []chanRef) bool {
	for _, a := range as {
		for _, b := range bs {
			if refsMatch(a, b) {
				return true
			}
		}
	}
	return false
}

// joinFacts are the lifecycle-relevant operations found in one region.
type joinFacts struct {
	wgDone   []chanRef // wg.Done() calls
	wgAdd    []chanRef // wg.Add(n) calls
	ctxDone  bool      // receives from a Context's Done()
	chanSend []chanRef // ch <- v and close(ch)
	chanRecv []chanRef // <-ch, range ch
}

// scanJoin collects join facts under root, skipping one subtree (the
// goroutine body must not witness itself when scanning the spawner).
func scanJoin(info *types.Info, root ast.Node, skip ast.Node) *joinFacts {
	facts := &joinFacts{}
	ast.Inspect(root, func(n ast.Node) bool {
		if n == skip {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) == 1 {
					facts.chanSend = append(facts.chanSend, refOf(info, n.Args[0]))
				}
				return true
			}
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			tn, _ := NamedType(info, sel.X)
			switch sel.Sel.Name {
			case "Done":
				switch tn {
				case "WaitGroup":
					facts.wgDone = append(facts.wgDone, refOf(info, sel.X))
				case "Context":
					facts.ctxDone = true
				}
			case "Add":
				if tn == "WaitGroup" {
					facts.wgAdd = append(facts.wgAdd, refOf(info, sel.X))
				}
			}
		case *ast.SendStmt:
			facts.chanSend = append(facts.chanSend, refOf(info, n.Chan))
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				facts.chanRecv = append(facts.chanRecv, refOf(info, n.X))
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					facts.chanRecv = append(facts.chanRecv, refOf(info, n.X))
				}
			}
		}
		return true
	})
	return facts
}

func runGoLeak(pass *Pass) error {
	// Bodies of same-package named functions, for `go c.method()` spawns.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}

	pass.WalkStack(func(n ast.Node, stack []ast.Node) {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return
		}
		if reason, ok := pass.Marker(g.Pos(), "fire-and-forget"); ok {
			if reason == "" {
				pass.Reportf(g.Pos(), "prefdb:fire-and-forget needs a reason (why is this goroutine safe without a join?)")
			}
			return
		}

		// Resolve the spawned body. For a named callee, also map its
		// parameter objects to the call-site arguments so a wg.Done() on a
		// parameter matches the spawner's wg.Add() on the argument.
		var body ast.Node
		var skipInEnclosing ast.Node
		var paramArgs map[types.Object]ast.Expr
		if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
			body = lit.Body
			skipInEnclosing = lit
		} else if callee := calleeOf(pass, g.Call); callee != nil {
			if fd, ok := decls[callee]; ok {
				body = fd.Body
				paramArgs = map[types.Object]ast.Expr{}
				i := 0
				for _, field := range fd.Type.Params.List {
					for _, name := range field.Names {
						if i < len(g.Call.Args) {
							if obj := pass.TypesInfo.Defs[name]; obj != nil {
								paramArgs[obj] = g.Call.Args[i]
							}
						}
						i++
					}
				}
			}
		}
		enclosing := EnclosingFunc(stack)
		if body == nil || enclosing == nil {
			pass.Reportf(g.Pos(), "goroutine spawned here has no visible join (the spawned function's body is outside this package); join it with a WaitGroup or channel, or annotate prefdb:fire-and-forget <reason>")
			return
		}

		bodyFacts := scanJoin(pass.TypesInfo, body, nil)
		if len(paramArgs) > 0 {
			translate := func(refs []chanRef) []chanRef {
				out := refs[:0]
				for _, r := range refs {
					if arg, ok := paramArgs[r.obj]; ok {
						r = refOf(pass.TypesInfo, arg)
					}
					out = append(out, r)
				}
				return out
			}
			bodyFacts.wgDone = translate(bodyFacts.wgDone)
			bodyFacts.chanSend = translate(bodyFacts.chanSend)
			bodyFacts.chanRecv = translate(bodyFacts.chanRecv)
		}
		spawnerFacts := scanJoin(pass.TypesInfo, enclosing, skipInEnclosing)

		switch {
		case anyMatch(bodyFacts.wgDone, spawnerFacts.wgAdd):
			return // Add in the spawner, Done in the body
		case bodyFacts.ctxDone:
			return // context-cancelled loop
		case anyMatch(bodyFacts.chanSend, spawnerFacts.chanRecv):
			return // body signals a channel the spawner joins on
		case anyMatch(bodyFacts.chanRecv, spawnerFacts.chanSend):
			return // body waits on a shutdown channel the spawner owns
		}
		pass.Reportf(g.Pos(), "goroutine spawned here has no visible join: pair WaitGroup Add/Done, join a channel, or loop on ctx.Done(); if it is deliberately unsupervised, annotate prefdb:fire-and-forget <reason>")
	})
	return nil
}
