package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// analyzerFixtures pairs each analyzer with its testdata directory.
var analyzerFixtures = []struct {
	analyzer *Analyzer
	dir      string
}{
	{AtomicField, "atomicfield"},
	{CtxLoop, "ctxloop"},
	{GoLeak, "goleak"},
	{LockOrder, "lockorder"},
	{LockSet, "lockset"},
	{ScratchAlias, "scratchalias"},
	{ValueConv, "valueconv"},
	{WrapCheck, "wrapcheck"},
}

// repoRoot returns the module root (two levels above internal/lint), the
// directory `go list` must run in so fixture imports of prefdb packages
// resolve.
func repoRoot(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// TestAnalyzerFixtures runs each analyzer over its fixture package and
// checks the findings against the `// want "regexp"` comments, in the
// style of analysistest: every diagnostic must be wanted on its line, and
// every want must be matched by a diagnostic.
func TestAnalyzerFixtures(t *testing.T) {
	for _, tc := range analyzerFixtures {
		t.Run(tc.dir, func(t *testing.T) {
			root := repoRoot(t)
			loader := NewLoader(root)
			dir := filepath.Join(root, "internal", "lint", "testdata", tc.dir)
			pkg, err := loader.CheckDir(dir)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			diags := Run([]*Package{pkg}, []*Analyzer{tc.analyzer})
			checkWants(t, pkg, diags)
		})
	}
}

// want is one expectation parsed from a fixture comment.
type want struct {
	re      *regexp.Regexp
	matched bool
}

// collectWants parses `// want "…"` (or backquoted) comments from the
// fixture files, keyed by file:line.
func collectWants(t *testing.T, pkg *Package) map[string][]*want {
	t.Helper()
	wants := map[string][]*want{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := posKey(pos)
				for _, m := range wantRe.FindAllStringSubmatch(text, -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}

func posKey(pos token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
}

// checkWants cross-checks diagnostics against want comments.
func checkWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	for _, d := range diags {
		key := posKey(d.Pos)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: want %q not reported", key, w.re)
			}
		}
	}
}

// TestSuppressionsNeedAnnotations flips the fixtures' suppression lines
// sanity check: the fixtures above contain prefdb:*-ok annotated lines
// that must NOT be reported; checkWants already fails on any unexpected
// diagnostic, so this test just pins that each fixture has at least one
// want (a fixture with zero wants would silently test nothing).
func TestSuppressionsNeedAnnotations(t *testing.T) {
	root := repoRoot(t)
	loader := NewLoader(root)
	for _, tc := range analyzerFixtures {
		dir := filepath.Join(root, "internal", "lint", "testdata", tc.dir)
		pkg, err := loader.CheckDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", tc.dir, err)
		}
		if wants := collectWants(t, pkg); len(wants) == 0 {
			t.Errorf("fixture %s has no want comments; it would pass vacuously", tc.dir)
		}
	}
}

// TestPrefdbvetRepoClean is the smoke test the CI gate relies on: the full
// analyzer suite over the whole repository (tests included) must be
// silent. Any true positive is fixed at the source; any sanctioned
// exception carries its annotation.
func TestPrefdbvetRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole repository")
	}
	root := repoRoot(t)
	pkgs, err := NewLoader(root).LoadPatterns("./...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; loader lost targets", len(pkgs))
	}
	diags := Run(pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}

	// The derived lock hierarchy must match the block pinned in
	// DESIGN.md §16 (CI re-checks the same invariant with -lockgraph).
	raw, err := os.ReadFile(filepath.Join(root, "DESIGN.md"))
	if err != nil {
		t.Fatalf("reading DESIGN.md: %v", err)
	}
	pinned := designLockBlock(t, string(raw))
	if got := LockHierarchy(); got != pinned {
		t.Errorf("lock hierarchy drifted from DESIGN.md §16:\n--- DESIGN.md\n%s\n--- derived\n%s\nrun `go run ./cmd/prefdbvet -run lockorder -lockgraph - ./...` and update the block", pinned, got)
	}
}

// designLockBlock extracts the pinned hierarchy between the
// lock-hierarchy markers in DESIGN.md, dropping the code-fence lines.
func designLockBlock(t *testing.T, md string) string {
	t.Helper()
	_, rest, ok := strings.Cut(md, "<!-- lock-hierarchy:begin -->")
	if !ok {
		t.Fatal("DESIGN.md: lock-hierarchy:begin marker missing")
	}
	block, _, ok := strings.Cut(rest, "<!-- lock-hierarchy:end -->")
	if !ok {
		t.Fatal("DESIGN.md: lock-hierarchy:end marker missing")
	}
	var b strings.Builder
	for _, line := range strings.Split(block, "\n") {
		if strings.TrimSpace(line) == "" || strings.HasPrefix(line, "```") {
			continue
		}
		b.WriteString(line)
		b.WriteString("\n")
	}
	return b.String()
}

// TestLoaderTestVariants pins the loader's package-selection rules: test
// variants supersede the plain package, external test packages load, and
// the fixture loader refuses an empty directory.
func TestLoaderTestVariants(t *testing.T) {
	root := repoRoot(t)
	pkgs, err := NewLoader(root).LoadPatterns("./internal/prel/...")
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.ImportPath)
	}
	joined := strings.Join(paths, " ")
	if !strings.Contains(joined, "prefdb/internal/prel [prefdb/internal/prel.test]") {
		t.Errorf("test variant missing from %q", joined)
	}
	for _, p := range pkgs {
		if p.ImportPath == "prefdb/internal/prel" {
			t.Errorf("plain package not superseded by its test variant")
		}
	}
	if _, err := NewLoader(root).CheckDir(filepath.Join(root, "internal", "lint", "testdata")); err == nil {
		t.Error("CheckDir on a directory with no .go files should fail")
	}
}
