package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ScratchAlias enforces the batch-path aliasing contract (DESIGN.md §10):
// a Batch's selection vector, the per-caller segScratch buffers, and
// projectArena tuples are reused across nextBatch calls, so values derived
// from them must not outlive the operator. Concretely:
//
//   - no store of a derived value into a struct field, except back into
//     the scratch fields themselves (Batch.Sel, segScratch.sel/.scores,
//     projectArena.buf);
//   - no send of a derived value on a channel;
//   - no returning a raw selection vector or scratch buffer (arena tuples
//     are exempt: handing them out wrapped in a Row is their purpose, and
//     their storage is stable for the query's lifetime).
//
// Derivation is tracked syntactically through parentheses, slicing,
// append-in-place and local variables. Escapes the contract permits
// knowingly are annotated on the offending line:
//
//	// prefdb:alias-ok <reason>
//
// The columnar segment store inverts the contract: its decoded row views
// (Segment.Tuple and fields declared with a `prefdb:segment-view` marker)
// are immutable shared storage, so aliasing them out zero-copy is exactly
// their purpose and none of the escape rules apply. What is forbidden for
// them is mutation — writing through a segment view corrupts every reader
// of the store — and the analyzer flags element assignments through one.
//
// Borrowed column vectors obey the same inverted contract (prefdb:col-view):
// the typed slices of a types.ColVec, a columnar Batch's Cols, and the
// windows Segment.ColVecs hands out all alias segment storage shared by
// concurrent queries. Kernels may hold and pass them freely — borrowing is
// the point of the direct-on-column path — but an element write through one
// corrupts the store, so the analyzer flags it. Sources are matched by type
// (types.ColVec fields, prel.Batch.Cols, Segment.ColVecs calls) and by
// fields declared with a `prefdb:col-view` marker.
//
// One refinement on top of that freedom: structs that buffer state across
// batches — hash-join build tables, aggregation accumulators — declare the
// build-side borrow contract with a `prefdb:col-transient` marker on their
// type declaration. A column window is only valid until the producer's next
// nextBatch, so parking one in such a struct's fields is a use-after-reset
// waiting to happen; the analyzer reports it. Values *copied out* of the
// window (key hashes, dictionary codes, row views over the stable decode
// arena) are exactly what these structs are meant to retain and stay clean.
var ScratchAlias = &Analyzer{
	Name: "scratchalias",
	Doc:  "selection vectors, segScratch buffers and arena tuples must not escape their operator without a copy; segment views and borrowed column vectors may escape but not be written through, and prefdb:col-transient structs must not retain column windows across batches",
	Run:  runScratchAlias,
}

type trackKind int

const (
	trackNone trackKind = iota
	// trackScratch marks selection vectors and scratch buffers (strict:
	// no field store, send, or return).
	trackScratch
	// trackArena marks arena-backed tuples (no field store or send;
	// returning them inside rows is sanctioned).
	trackArena
	// trackSegView marks segment-store row views (`prefdb:segment-view`):
	// immutable shared storage that may escape freely but must never be
	// written through.
	trackSegView
	// trackColView marks borrowed column vectors (`prefdb:col-view`):
	// typed slices aliasing segment storage, same rule as segment views —
	// escape freely, never write through.
	trackColView
)

// isView reports whether k names shared read-only storage, exempt from the
// escape rules but protected against writes.
func isView(k trackKind) bool { return k == trackSegView || k == trackColView }

// blessedFields are the scratch fields a derived value may be stored back
// into, keyed by receiver type name.
var blessedFields = map[string]map[string]bool{
	"Batch":        {"Sel": true},
	"segScratch":   {"sel": true, "scores": true},
	"projectArena": {"buf": true},
}

func runScratchAlias(pass *Pass) error {
	// Flow-insensitive pre-pass: locals ever assigned from a tracked
	// expression are tracked everywhere in the package.
	tracked := map[types.Object]trackKind{}
	classify := func(e ast.Expr) trackKind { return classifyExpr(pass, tracked, e) }
	for changed := true; changed; { // fixpoint: chains of local assignments
		changed = false
		pass.WalkStack(func(n ast.Node, stack []ast.Node) {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return
			}
			for i, lhs := range assign.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				var obj types.Object
				if assign.Tok == token.DEFINE {
					obj = pass.TypesInfo.Defs[id]
				} else {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil {
					continue
				}
				if _, isVar := obj.(*types.Var); !isVar {
					continue
				}
				if k := classify(assign.Rhs[i]); k != trackNone && tracked[obj] < k {
					tracked[obj] = k
					changed = true
				}
			}
		})
	}

	pass.WalkStack(func(n ast.Node, stack []ast.Node) {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return
			}
			for i, lhs := range x.Lhs {
				// Writing through a segment view or a borrowed column
				// vector mutates storage every reader of the store shares.
				if idx, ok := lhs.(*ast.IndexExpr); ok {
					if k := classify(idx.X); isView(k) {
						if _, ok := pass.Marker(x.Pos(), "alias-ok"); ok {
							continue
						}
						if k == trackColView {
							pass.Reportf(x.Pos(),
								"borrowed column vector written through; column storage is shared by concurrent readers (prefdb:col-view)")
						} else {
							pass.Reportf(x.Pos(),
								"segment view written through; segment storage is immutable and shared (prefdb:segment-view)")
						}
						continue
					}
				}
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				selection := pass.TypesInfo.Selections[sel]
				if selection == nil || selection.Kind() != types.FieldVal {
					continue
				}
				k := classify(x.Rhs[i])
				if k == trackNone {
					continue
				}
				recvName, _ := namedOf(selection.Recv())
				if isView(k) {
					// Shared views normally escape freely. The exception is
					// the build-side borrow contract: a `prefdb:col-transient`
					// struct buffers state across batches, and a column window
					// dies at the producer's next nextBatch — retaining one in
					// its fields is a use-after-reset.
					if k == trackColView && colTransient(pass, selection.Recv()) {
						if _, ok := pass.Marker(x.Pos(), "alias-ok"); ok {
							continue
						}
						pass.Reportf(x.Pos(),
							"borrowed column vector stored into field %s.%s of a prefdb:col-transient struct; windows die at the producer's next batch — retain hashes, codes or row views instead",
							recvName, sel.Sel.Name)
					}
					continue
				}
				if blessedFields[recvName][sel.Sel.Name] {
					continue
				}
				if _, ok := pass.Marker(x.Pos(), "alias-ok"); ok {
					continue
				}
				pass.Reportf(x.Pos(),
					"%s stored into field %s.%s outlives the operator; copy it first (aliasing contract, DESIGN.md §10)",
					kindNoun(k), recvName, sel.Sel.Name)
			}
		case *ast.SendStmt:
			if k := classify(x.Value); k != trackNone && !isView(k) {
				if _, ok := pass.Marker(x.Pos(), "alias-ok"); ok {
					return
				}
				pass.Reportf(x.Pos(), "%s sent on a channel escapes the operator; copy it first", kindNoun(k))
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if k := classify(res); k == trackScratch {
					if _, ok := pass.Marker(x.Pos(), "alias-ok"); ok {
						continue
					}
					pass.Reportf(x.Pos(), "%s returned raw; the caller would alias reused scratch storage", kindNoun(k))
				}
			}
		}
	})
	return nil
}

func kindNoun(k trackKind) string {
	switch k {
	case trackArena:
		return "arena tuple"
	case trackSegView:
		return "segment view"
	case trackColView:
		return "borrowed column vector"
	}
	return "selection-vector/scratch slice"
}

// colTransient reports whether t (pointers and aliases stripped) is a named
// type whose declaration carries a `prefdb:col-transient` marker. Like the
// field markers, the annotation is only visible when the declaring package
// is the one under analysis.
func colTransient(pass *Pass, t types.Type) bool {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Alias:
			t = types.Unalias(t)
		case *types.Named:
			_, ok := pass.Marker(x.Obj().Pos(), "col-transient")
			return ok
		default:
			return false
		}
	}
}

// classifyExpr reports whether e derives from a tracked scratch source.
func classifyExpr(pass *Pass, tracked map[types.Object]trackKind, e ast.Expr) trackKind {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return classifyExpr(pass, tracked, x.X)
	case *ast.SliceExpr:
		return classifyExpr(pass, tracked, x.X)
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[x]; obj != nil {
			return tracked[obj]
		}
		return trackNone
	case *ast.SelectorExpr:
		selection := pass.TypesInfo.Selections[x]
		if selection == nil || selection.Kind() != types.FieldVal {
			return trackNone
		}
		recvName, recvPkg := namedOf(selection.Recv())
		switch {
		case recvName == "Batch" && recvPkg == "prel" && x.Sel.Name == "Sel":
			return trackScratch
		case recvName == "segScratch" && (x.Sel.Name == "sel" || x.Sel.Name == "scores"):
			return trackScratch
		// Every typed slice of a ColVec is a borrowed window of segment
		// storage, as is a columnar batch's vector set (prefdb:col-view).
		case recvName == "ColVec" && recvPkg == "types":
			return trackColView
		case recvName == "Batch" && recvPkg == "prel" && x.Sel.Name == "Cols":
			return trackColView
		}
		// Fields declared with a `prefdb:segment-view` or `prefdb:col-view`
		// marker hand out shared storage (only visible when the declaring
		// package is the one under analysis — cross-package reads go
		// through the type- and accessor-based matches above and below).
		if obj := selection.Obj(); obj != nil {
			if _, ok := pass.Marker(obj.Pos(), "segment-view"); ok {
				return trackSegView
			}
			if _, ok := pass.Marker(obj.Pos(), "col-view"); ok {
				return trackColView
			}
		}
		return trackNone
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "append" && len(x.Args) > 0 {
			// append writes into its first argument's storage; the result
			// aliases it (element spreads of tracked slices copy values and
			// are therefore fine).
			return classifyExpr(pass, tracked, x.Args[0])
		}
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "tuple" {
			if recvName, _ := NamedType(pass.TypesInfo, sel.X); recvName == "projectArena" {
				return trackArena
			}
		}
		// Segment.Tuple hands out a shared immutable row view over the
		// segment's decode arena (`prefdb:segment-view`); Segment.ColVecs
		// hands out borrowed typed windows of the same storage
		// (`prefdb:col-view`).
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Tuple" || sel.Sel.Name == "ColVecs") {
			if recvName, _ := NamedType(pass.TypesInfo, sel.X); recvName == "Segment" {
				if sel.Sel.Name == "ColVecs" {
					return trackColView
				}
				return trackSegView
			}
		}
		return trackNone
	case *ast.IndexExpr:
		// Indexing a shared-view container (the marked tuples field, a
		// batch's Cols, ColVecs scratch) yields another shared view; other
		// tracked kinds index to scalars, which copy.
		if k := classifyExpr(pass, tracked, x.X); isView(k) {
			return k
		}
		return trackNone
	default:
		return trackNone
	}
}
