package lint

import (
	"go/ast"
)

// CtxLoop enforces the cooperative-cancellation discipline of the
// executor's pull loops (DESIGN.md §8): any `next`/`nextBatch` method
// that loops pulling from an upstream iterator can spin unboundedly over
// rejected rows, so the loop must consult the amortized lifecycle tick —
// a pollTick.stop/stopN, matTick.row/rows/flush or guard.poll/add call —
// or the method must be annotated:
//
//	// prefdb:nolifecycle <reason>
//
// for loops that are provably bounded (offset skips, batch refills capped
// by the block size). An annotation without a reason is itself a finding.
var CtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc:  "iterator next/nextBatch pull loops must tick the lifecycle guard or carry prefdb:nolifecycle <reason>",
	Run:  runCtxLoop,
}

// tickMethods maps sanctioned lifecycle-helper receivers to their methods.
var tickMethods = map[string]map[string]bool{
	"pollTick": {"stop": true, "stopN": true},
	"matTick":  {"row": true, "rows": true, "flush": true},
	"guard":    {"poll": true, "add": true},
}

func runCtxLoop(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil {
				continue
			}
			if fn.Name.Name != "next" && fn.Name.Name != "nextBatch" {
				continue
			}
			reason, annotated := pass.Marker(fn.Pos(), "nolifecycle", fn.Doc)
			if annotated && reason == "" {
				pass.Reportf(fn.Pos(), "prefdb:nolifecycle annotation on %s needs a reason", fn.Name.Name)
				continue
			}
			if !hasPullLoop(pass, fn.Body) {
				continue
			}
			if annotated {
				continue
			}
			if !ticksGuard(pass, fn.Body) {
				pass.Reportf(fn.Pos(),
					"%s pulls from an upstream iterator in a loop without a lifecycle tick; call pollTick.stop/stopN (or annotate // prefdb:nolifecycle <reason>)",
					fn.Name.Name)
			}
		}
	}
	return nil
}

// hasPullLoop reports whether body contains a for/range loop whose body
// calls an upstream next/nextBatch — the shape that can spin unboundedly.
func hasPullLoop(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		var loopBody *ast.BlockStmt
		switch l := n.(type) {
		case *ast.ForStmt:
			loopBody = l.Body
		case *ast.RangeStmt:
			loopBody = l.Body
		default:
			return true
		}
		ast.Inspect(loopBody, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "next" || sel.Sel.Name == "nextBatch" {
					found = true
					return false
				}
			}
			return true
		})
		return !found
	})
	return found
}

// ticksGuard reports whether body contains a call to one of the lifecycle
// tick helpers (matched by receiver type name and method name, so test
// fixtures can declare stand-ins).
func ticksGuard(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		typeName, _ := NamedType(pass.TypesInfo, sel.X)
		if methods, ok := tickMethods[typeName]; ok && methods[sel.Sel.Name] {
			found = true
			return false
		}
		return true
	})
	return found
}
