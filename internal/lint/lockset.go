package lint

import (
	"go/ast"
	"go/types"
)

// LockSet is the flow-sensitive lock discipline analyzer. It replaces the
// flow-insensitive guarded-by heuristic from PR 5 ("the enclosing function
// contains a Lock() call somewhere") with a per-path lock-set dataflow:
//
//   - every access to a prefdb:guarded-by field must happen while the
//     guarding mutex is in the held set on that path;
//   - locking a mutex already held (double-lock) and unlocking one not
//     held are reported, as are RLock/Unlock pairing mismatches;
//   - a lock still held at return is a leak unless the function is
//     annotated prefdb:lock-escapes <mu> (it intentionally hands the lock
//     to the caller, e.g. wire.Client.stream);
//   - a loop iteration must be lock-neutral (defer-in-loop is the classic
//     violation);
//   - blocking drains (WaitGroup.Wait, catalog Table.Stats /
//     WaitCompaction) must not run while any mutex is held.
//
// Annotation grammar (DESIGN.md §16):
//
//	// prefdb:locked <path>       function runs with <path> already held
//	// prefdb:lock-escapes <path> function may return still holding <path>
//	// prefdb:lockset-ok <why>    per-line suppression
//
// Unexported same-package helpers get one-level summaries, so the
// lock-in-one-function / unlock-in-another idiom (clientRows.finish) is
// analyzed precisely instead of suppressed.
var LockSet = &Analyzer{
	Name: "lockset",
	Doc:  "flow-sensitive lock-set dataflow: guarded-by enforcement on every path, double-lock, unlock-without-lock, leaked locks at return, lock-held drains",
	Run:  runLockSet,
}

func runLockSet(pass *Pass) error {
	guards := collectGuards(pass)
	sums := buildLockSummaries(pass, guards)
	fl := &lockFlow{
		pass:      pass,
		guards:    guards,
		summaries: sums,
		pkgName:   pass.Pkg.Name(),
	}
	fl.analyzePackage()
	return nil
}

// collectGuards maps every prefdb:guarded-by annotated field to the
// types.Object of its guarding sibling mutex field.
func collectGuards(pass *Pass) map[types.Object]types.Object {
	guards := map[types.Object]types.Object{}
	pass.WalkStack(func(n ast.Node, stack []ast.Node) {
		st, ok := n.(*ast.StructType)
		if !ok {
			return
		}
		for _, field := range st.Fields.List {
			mu, ok := pass.Marker(field.Pos(), "guarded-by", field.Doc, field.Comment)
			if !ok || mu == "" {
				continue
			}
			var muObj types.Object
			for _, sibling := range st.Fields.List {
				for _, name := range sibling.Names {
					if name.Name == mu {
						muObj = pass.TypesInfo.Defs[name]
					}
				}
			}
			if muObj == nil {
				pass.Reportf(field.Pos(), "prefdb:guarded-by names %q, which is not a sibling field of the struct", mu)
				continue
			}
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					guards[obj] = muObj
				}
			}
		}
	})
	return guards
}
